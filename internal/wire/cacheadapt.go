package wire

import (
	"time"

	"difane/internal/cachepolicy"
	"difane/internal/flowspace"
	"difane/internal/proto"
	"difane/internal/tcam"
)

// This file runs the cost-aware caching policy (internal/cachepolicy)
// against a live wire cluster. The hot path is untouched: region
// statistics are derived from TCAM entry counters and the telemetry
// registry on the adaptation cadence, never per packet, and the victim
// scorer only runs when a full cache must evict.

// aggIDBase offsets aggregation cover-rule IDs above every other band
// (matches the simulator).
const aggIDBase uint64 = 1 << 52

// regionOfMatch maps a cache rule's match to its partition index. Cache
// rules are clipped to one partition's region, so the match's Value
// fields (wildcard bits zero) are a member key identifying it. c.assign
// is immutable after construction, so this is safe from any goroutine —
// including under a TCAM's table lock.
func (c *Cluster) regionOfMatch(m flowspace.Match) int {
	var k flowspace.Key
	for f := flowspace.FieldID(0); f < flowspace.NumFields; f++ {
		k[f] = m.Fields[f].Value
	}
	for i := range c.assign.Partitions {
		if c.assign.Partitions[i].Region.Matches(k) {
			return i
		}
	}
	return -1
}

// cacheVictimFn builds the custom victim picker for ingress caches, or
// nil when the cluster is not cost-aware.
func (c *Cluster) cacheVictimFn() tcam.VictimFunc {
	if c.cachePol == nil {
		return nil
	}
	return func(now float64, cands []tcam.VictimCandidate) int {
		cc := make([]cachepolicy.Candidate, len(cands))
		for i, cand := range cands {
			cc[i] = cachepolicy.Candidate{
				ID:        cand.ID,
				Region:    c.regionOfMatch(cand.Rule.Match),
				Packets:   cand.Packets,
				LastHit:   cand.LastHit,
				Installed: cand.Installed,
			}
		}
		return c.cachePol.Victim(now, cc)
	}
}

// cacheAdaptLoop paces adaptCachesWire until shutdown.
func (c *Cluster) cacheAdaptLoop() {
	defer c.wg.Done()
	tick := time.NewTicker(c.cfg.CacheAdaptInterval)
	defer tick.Stop()
	for {
		select {
		case <-c.ctx.Done():
			return
		case <-tick.C:
			c.adaptCachesWire()
		}
	}
}

// adaptCachesWire is one adaptation round: refresh deployment-wide priors
// from the metric registry, derive per-region inter-arrival times from
// live cache entry counters, push materially-changed idle timeouts to the
// authority handlers (under each node's lock — HandleMiss mutates the
// same state), and aggregate near-microflow entries into cover rules.
func (c *Cluster) adaptCachesWire() {
	pol := c.cachePol
	if pol == nil {
		return
	}
	now := nowSec()
	pol.ScrapeRegistry(c.reg)

	for _, n := range c.nodes {
		if n.killed.Load() {
			continue
		}
		for _, e := range n.sw.Table(proto.TableCache).Entries() {
			if e.Packets < 2 {
				continue
			}
			span := e.LastHit() - e.Installed()
			if span <= 0 {
				continue
			}
			pol.ObserveInterArrival(c.regionOfMatch(e.Rule.Match), span/float64(e.Packets-1))
		}
	}

	for _, region := range pol.Regions() {
		idle, changed := pol.AdaptIdle(region)
		if !changed {
			continue
		}
		for _, n := range c.nodes {
			n.mu.Lock()
			for _, a := range n.auths {
				if a.RegionIndex == region {
					a.SetCacheTimeouts(idle, a.CacheHardTimeout)
				}
			}
			n.mu.Unlock()
		}
	}

	regions := make([]cachepolicy.Region, len(c.assign.Partitions))
	for i, p := range c.assign.Partitions {
		regions[i] = cachepolicy.Region{Index: i, Match: p.Region, Rules: p.Rules}
	}
	allocID := func() uint64 { return aggIDBase + c.aggSeq.Add(1) }
	for _, n := range c.nodes {
		if n.killed.Load() {
			continue
		}
		tb := n.sw.Table(proto.TableCache)
		for _, p := range pol.PlanAggregation(tb.Entries(), regions, allocID) {
			// Delete first so the freed slots guarantee the cover lands
			// without evicting an unrelated entry.
			for _, rid := range p.Replace {
				tb.Delete(rid)
			}
			idle := pol.IdleTimeout(p.Region)
			if idle <= 0 {
				idle = c.cfg.CacheIdle
			}
			mod := proto.FlowMod{
				Table: proto.TableCache, Op: proto.OpAdd, Rule: p.Cover,
				Idle: idle, Hard: c.cfg.CacheHard,
			}
			_ = n.sw.ApplyFlowMod(now, &mod)
		}
	}
}
