package wire

import (
	"net/http"
	"sort"
	"strconv"

	"difane/internal/metrics"
	"difane/internal/packet"
	"difane/internal/proto"
	"difane/internal/tcam"
	"difane/internal/telemetry"
)

// TelemetryConfig tunes the cluster's observability layer. The flight
// recorder and metric registry always exist (a scrape costs nothing until
// read); this config controls whether tracing starts enabled and whether
// an HTTP endpoint serves them.
type TelemetryConfig struct {
	// Addr, when non-empty, serves the telemetry HTTP endpoint on this
	// address (":0" picks an ephemeral port — read it back with
	// Cluster.TelemetryAddr):
	//
	//	/metrics      Prometheus text exposition
	//	/vars         expvar-style JSON
	//	/trace        flight-recorder dump with filters
	//	/status       the cluster status report
	//	/debug/pprof  the standard profiling endpoints
	Addr string
	// Tracing starts the flight recorder enabled. Off, the data plane pays
	// one atomic load per would-be event; on, events are recorded into
	// per-node lock-free rings that never block forwarding. Toggle at
	// runtime with Cluster.SetTracing.
	Tracing bool
	// TraceBuffer is each node's ring capacity in events, rounded up to a
	// power of two (default 4096). Old events are overwritten when a ring
	// wraps; the overwrite count is exported as difane_trace_dropped_total.
	TraceBuffer int
}

func (t *TelemetryConfig) applyDefaults() {
	if t.TraceBuffer <= 0 {
		t.TraceBuffer = 4096
	}
}

// flowOf projects a packet header onto the trace event flow tuple.
func flowOf(h *packet.Header) telemetry.FlowTuple {
	return telemetry.Tuple(h.IPSrc, h.IPDst, h.TPSrc, h.TPDst, h.IPProto)
}

// initTelemetry builds the recorder and attaches the TCAM install/evict
// hooks. Called after the assignment pre-installs (so boot-time rule
// pushes don't flood the rings) and before any switch goroutine starts
// (the hook-set-before-sharing contract).
func (c *Cluster) initTelemetry() {
	ids := make([]uint32, 0, len(c.switches)+1)
	for id := range c.switches {
		ids = append(ids, id)
	}
	ids = append(ids, telemetry.ClusterNode)
	c.rec = telemetry.NewRecorder(ids, c.cfg.Telemetry.TraceBuffer, c.cfg.Telemetry.Tracing)
	for _, n := range c.switches {
		c.attachTableHooks(n)
	}
	c.reg = telemetry.NewRegistry()
	c.buildRegistry()
	if c.cachePol != nil {
		c.cachePol.RegisterMetrics(c.reg)
	}
}

// attachTableHooks publishes install/evict/expire trace events for one
// switch's three rule tables.
func (c *Cluster) attachTableHooks(n *node) {
	id := n.id
	for _, t := range []proto.Table{proto.TableCache, proto.TableAuthority, proto.TablePartition} {
		table := n.sw.Table(t)
		code := uint8(t) // proto table numbering matches the telemetry codes
		table.OnInstall = func(e tcam.Entry) {
			if c.rec.Enabled() {
				c.rec.Publish(telemetry.Event{
					Kind: telemetry.EvInstall, Node: id, Table: code, RuleID: e.Rule.ID,
				})
			}
		}
		table.OnEvict = func(e tcam.Entry) {
			if c.rec.Enabled() {
				c.rec.Publish(telemetry.Event{
					Kind: telemetry.EvEvict, Node: id, Table: code, RuleID: e.Rule.ID,
				})
			}
		}
		table.OnExpire = func(e tcam.Entry) {
			if c.rec.Enabled() {
				c.rec.Publish(telemetry.Event{
					Kind: telemetry.EvExpire, Node: id, Table: code, RuleID: e.Rule.ID,
				})
			}
		}
	}
}

// startTelemetryServer binds the HTTP endpoint when configured.
func (c *Cluster) startTelemetryServer() error {
	if c.cfg.Telemetry.Addr == "" {
		return nil
	}
	srv, err := telemetry.Serve(c.cfg.Telemetry.Addr, c.reg, c.rec,
		map[string]http.Handler{"/status": c.StatusHandler(), "/ha": c.HAHandler()})
	if err != nil {
		return err
	}
	c.tsrv = srv
	return nil
}

// SetTracing toggles the flight recorder at runtime.
func (c *Cluster) SetTracing(on bool) { c.rec.SetEnabled(on) }

// TracingEnabled reports the flight recorder's state.
func (c *Cluster) TracingEnabled() bool { return c.rec.Enabled() }

// Recorder exposes the flight recorder (tests, embedding servers).
func (c *Cluster) Recorder() *telemetry.Recorder { return c.rec }

// Registry exposes the metric registry.
func (c *Cluster) Registry() *telemetry.Registry { return c.reg }

// TraceEvents snapshots the flight recorder through a filter.
func (c *Cluster) TraceEvents(f telemetry.Filter) []telemetry.Event {
	return c.rec.Events(f)
}

// Telemetry returns one scrape of the registry plus recorder accounting —
// the Deployment.Telemetry() surface.
func (c *Cluster) Telemetry() *telemetry.Snapshot {
	return &telemetry.Snapshot{Metrics: c.reg.Snapshot(), Trace: c.rec.Stats()}
}

// TelemetryAddr returns the bound HTTP endpoint address, or "" when no
// endpoint was configured.
func (c *Cluster) TelemetryAddr() string {
	if c.tsrv == nil {
		return ""
	}
	return c.tsrv.Addr()
}

// sumStats folds one counter across every measurement shard.
func (c *Cluster) sumStats(f func(*nodeStats) uint64) float64 {
	total := f(c.ext)
	for _, n := range c.switches {
		total += f(n.stats)
	}
	return float64(total)
}

// mergedDelay merges one latency distribution across every shard into an
// independent Dist (Dist is internally synchronized, so this is safe
// against live writers).
func (c *Cluster) mergedDelay(sel func(*nodeStats) *metrics.Dist) telemetry.SummaryView {
	var d metrics.Dist
	d.Merge(sel(c.ext))
	for _, n := range c.switches {
		d.Merge(sel(n.stats))
	}
	return telemetry.DistSummary(&d)
}

// buildRegistry registers the cluster's metric schema. Everything is
// collected at scrape time from the same sharded atomics the data plane
// writes, so scrapes cost the scraper, never the forwarding path.
func (c *Cluster) buildRegistry() {
	reg := c.reg
	counter := func(name, help string, fn func() float64) {
		reg.RegisterFunc(name, help, telemetry.TypeCounter, fn)
	}
	gauge := func(name, help string, fn func() float64) {
		reg.RegisterFunc(name, help, telemetry.TypeGauge, fn)
	}

	counter("difane_injected_total", "Packets accepted at an ingress queue.",
		func() float64 { return float64(c.injected.Load()) })
	counter("difane_delivered_total", "Packets delivered to their egress.",
		func() float64 { return c.sumStats(func(s *nodeStats) uint64 { return s.delivered.Load() }) })
	counter("difane_dropped_total", "Packets lost (queues, holes, unreachable, shed).",
		func() float64 { return float64(c.dropped.Load()) })
	counter("difane_setups_completed_total", "Flow setups resolved at an authority.",
		func() float64 { return c.sumStats(func(s *nodeStats) uint64 { return s.setupsCompleted.Load() }) })
	counter("difane_failovers_local_total", "Ingress-local partition-rule repoints onto a backup authority.",
		func() float64 { return c.sumStats(func(s *nodeStats) uint64 { return s.failoversLocal.Load() }) })
	counter("difane_cache_installs_shed_total", "Cache installs suppressed by the install token bucket.",
		func() float64 { return c.sumStats(func(s *nodeStats) uint64 { return s.cacheInstallsShed.Load() }) })

	reg.Register("difane_drops_total", "Terminal packet losses by kind.", telemetry.TypeCounter,
		func() []telemetry.Point {
			kind := func(k string, f func(*nodeStats) uint64) telemetry.Point {
				return telemetry.Point{
					Labels: []telemetry.Label{{Key: "kind", Value: k}},
					Value:  c.sumStats(f),
				}
			}
			return []telemetry.Point{
				kind("policy", func(s *nodeStats) uint64 { return s.dropPolicy.Load() }),
				kind("hole", func(s *nodeStats) uint64 { return s.dropHole.Load() }),
				kind("queue", func(s *nodeStats) uint64 { return s.dropQueue.Load() }),
				kind("unreachable", func(s *nodeStats) uint64 { return s.dropUnreachable.Load() }),
				kind("redirect-shed", func(s *nodeStats) uint64 { return s.dropRedirectShed.Load() }),
			}
		})

	// Control-plane (cold) counters.
	counter("difane_authority_deaths_total", "Switches the failure detector declared dead.",
		func() float64 { return float64(c.cold.authorityDeaths.Load()) })
	counter("difane_failovers_promoted_total", "Partition rules withdrawn by controller-driven promotion.",
		func() float64 { return float64(c.cold.failoversPromoted.Load()) })
	counter("difane_control_reconnects_total", "Control connections re-established.",
		func() float64 { return float64(c.cold.controlReconnects.Load()) })
	counter("difane_controller_outages_total", "Controller losses ridden out.",
		func() float64 { return float64(c.cold.controllerOutages.Load()) })
	counter("difane_outage_buffered_total", "Controller-bound events parked during outages.",
		func() float64 { return float64(c.cold.outageBuffered.Load()) })
	counter("difane_outage_drained_total", "Parked events replayed after outages.",
		func() float64 { return float64(c.cold.outageDrained.Load()) })
	counter("difane_outage_dropped_total", "Parked events shed on outage-buffer overflow.",
		func() float64 { return float64(c.cold.outageDropped.Load()) })
	counter("difane_stale_installs_rejected_total", "FlowMods refused by epoch fencing.",
		func() float64 { return float64(c.cold.staleInstallsRejected.Load()) })
	counter("difane_leader_elections_total", "Controller leader elections completed.",
		func() float64 { return float64(c.cold.leaderElections.Load()) })

	gauge("difane_ha_leader", "Current leader replica id (-1 when none holds office).",
		func() float64 { return float64(c.Leader()) })
	gauge("difane_epoch", "Controller fencing epoch.",
		func() float64 { return float64(c.epoch.Load()) })
	gauge("difane_controller_down", "1 while a simulated controller outage is active.",
		func() float64 {
			if c.ctrlDown.Load() {
				return 1
			}
			return 0
		})
	gauge("difane_fabric_inflight", "Data frames in flight inside the TCP fabric.",
		func() float64 {
			if c.fabric == nil {
				return 0
			}
			return float64(c.fabric.pending())
		})

	// Per-switch series, labeled by switch ID.
	ids := make([]uint32, 0, len(c.switches))
	for id := range c.switches {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	perSwitch := func(name, help string, typ telemetry.MetricType, fn func(*node) float64) {
		reg.Register(name, help, typ, func() []telemetry.Point {
			pts := make([]telemetry.Point, 0, len(ids))
			for _, id := range ids {
				n := c.switches[id]
				pts = append(pts, telemetry.Point{
					Labels: []telemetry.Label{{Key: "switch", Value: switchLabel(id)}},
					Value:  fn(n),
				})
			}
			return pts
		})
	}
	perSwitch("difane_switch_cache_hits_total", "Classifications terminated by the cache table.",
		telemetry.TypeCounter, func(n *node) float64 { return float64(n.sw.Stats.CacheHits.Load()) })
	perSwitch("difane_switch_authority_hits_total", "Classifications terminated by the authority table.",
		telemetry.TypeCounter, func(n *node) float64 { return float64(n.sw.Stats.AuthorityHits.Load()) })
	perSwitch("difane_switch_partition_hits_total", "Classifications terminated by the partition table.",
		telemetry.TypeCounter, func(n *node) float64 { return float64(n.sw.Stats.PartitionHits.Load()) })
	perSwitch("difane_switch_misses_total", "Classifications matching no table (policy holes).",
		telemetry.TypeCounter, func(n *node) float64 { return float64(n.sw.Stats.Misses.Load()) })
	perSwitch("difane_switch_cache_entries", "Installed cache rules.",
		telemetry.TypeGauge, func(n *node) float64 { return float64(n.sw.Table(proto.TableCache).Len()) })
	perSwitch("difane_switch_cache_evictions_total", "Cache entries evicted for capacity.",
		telemetry.TypeCounter, func(n *node) float64 { return float64(n.sw.Table(proto.TableCache).Evictions.Load()) })
	perSwitch("difane_switch_queue_depth", "Current input-ring occupancy (all rings).",
		telemetry.TypeGauge, func(n *node) float64 { return float64(n.queueLen()) })
	perSwitch("difane_switch_peak_queue_depth", "Data-queue high-water mark.",
		telemetry.TypeGauge, func(n *node) float64 { return float64(n.peakQueue.Load()) })
	perSwitch("difane_switch_outbox_len", "Buffered controller-bound events.",
		telemetry.TypeGauge, func(n *node) float64 { return float64(len(n.outbox)) })
	perSwitch("difane_switch_epoch", "The switch's accepted install fence.",
		telemetry.TypeGauge, func(n *node) float64 { return float64(n.epoch.Load()) })
	perSwitch("difane_switch_alive", "1 while the failure detector believes the switch serves traffic.",
		telemetry.TypeGauge, func(n *node) float64 {
			if !n.killed.Load() && n.alive.Load() {
				return 1
			}
			return 0
		})

	// Latency summaries, merged across shards at scrape time.
	reg.RegisterSummary("difane_first_packet_delay_seconds",
		"Delivery latency of flow-setup packets (via an authority).",
		func() telemetry.SummaryView {
			return c.mergedDelay(func(s *nodeStats) *metrics.Dist { return &s.firstDelay })
		})
	reg.RegisterSummary("difane_later_packet_delay_seconds",
		"Delivery latency of cache-hit packets.",
		func() telemetry.SummaryView {
			return c.mergedDelay(func(s *nodeStats) *metrics.Dist { return &s.laterDelay })
		})
	reg.RegisterSummary("difane_failover_detection_seconds",
		"Fault-injection to death-verdict detection latency.",
		func() telemetry.SummaryView {
			c.cold.haMu.Lock()
			d := c.cold.failoverDetect.Clone()
			c.cold.haMu.Unlock()
			return telemetry.DistSummary(&d)
		})
	reg.RegisterSummary("difane_leader_election_seconds",
		"Leader-kill to new-leader-seated election duration.",
		func() telemetry.SummaryView {
			c.cold.haMu.Lock()
			d := c.cold.electionTime.Clone()
			c.cold.haMu.Unlock()
			return telemetry.DistSummary(&d)
		})

	// The recorder's own accounting.
	gauge("difane_trace_enabled", "1 while the flight recorder is recording.",
		func() float64 {
			if c.rec.Enabled() {
				return 1
			}
			return 0
		})
	counter("difane_trace_writes_total", "Trace events published.",
		func() float64 { return float64(c.rec.Stats().Writes) })
	counter("difane_trace_dropped_total", "Trace events overwritten by ring wraparound.",
		func() float64 { return float64(c.rec.Stats().Dropped) })
}

func switchLabel(id uint32) string { return strconv.FormatUint(uint64(id), 10) }
