// Package workload synthesizes the inputs DIFANE's evaluation consumed but
// which are proprietary: network topologies with policies shaped like the
// paper's four networks (campus, VPN, IPTV, ISP backbone), a
// ClassBench-style ACL generator with controllable dependency depth, and
// Zipf-popularity flow traces. All generators are seeded and deterministic.
package workload

import (
	"math/rand"

	"difane/internal/flowspace"
	"difane/internal/topo"
)

// Spec bundles a synthetic network: its topology, its edge (ingress)
// switches, and its global policy.
type Spec struct {
	Name string
	// Graph is the switch topology.
	Graph *topo.Graph
	// Edges are the switches where traffic enters and exits.
	Edges []uint32
	// Policy is the global prioritized rule set.
	Policy []flowspace.Rule
	// Describe summarizes the network for the report tables.
	Describe string
}

// ACLConfig tunes the ClassBench-style generator.
type ACLConfig struct {
	// Rules is the total rule count including the default rule.
	Rules int
	// MaxDepth bounds the nesting depth of prefix chains; deeper chains
	// mean longer rule dependencies (ClassBench seeds go to ~10).
	MaxDepth int
	// PortRangeFrac is the fraction of rules matching a transport port
	// range (expanded to prefixes, inflating entry counts like real ACLs).
	PortRangeFrac float64
	// DropFrac is the fraction of deny rules.
	DropFrac float64
	// Egresses supplies the forward targets for permit rules.
	Egresses []uint32
	// Seed makes the generator deterministic.
	Seed int64
}

// ClassBenchLike generates an ACL-shaped policy: chains of nested
// source/destination prefixes (dependencies), optional port ranges, a mix
// of permit and deny, over a catch-all default deny. The returned rules
// are in TCAM order with deeper (more specific) rules at higher priority.
func ClassBenchLike(cfg ACLConfig) []flowspace.Rule {
	if cfg.Rules < 1 {
		cfg.Rules = 1
	}
	if cfg.MaxDepth < 1 {
		cfg.MaxDepth = 1
	}
	if len(cfg.Egresses) == 0 {
		cfg.Egresses = []uint32{0}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	rules := make([]flowspace.Rule, 0, cfg.Rules)
	id := uint64(1)

	// Grow prefix chains: pick a base /8, extend it MaxDepth times, each
	// level becoming a more specific, higher-priority rule.
	for len(rules) < cfg.Rules-1 {
		srcBase := uint64(rng.Intn(224)) << 24
		dstBase := uint64(rng.Intn(224)) << 24
		srcLen, dstLen := uint(8), uint(8)
		depth := 1 + rng.Intn(cfg.MaxDepth)
		for d := 0; d < depth && len(rules) < cfg.Rules-1; d++ {
			m := flowspace.MatchAll().
				WithPrefix(flowspace.FIPSrc, srcBase, srcLen).
				WithPrefix(flowspace.FIPDst, dstBase, dstLen)
			var expanded []flowspace.Field
			if rng.Float64() < cfg.PortRangeFrac {
				lo := uint64(rng.Intn(1024))
				hi := lo + uint64(rng.Intn(30000))
				expanded = flowspace.RangeToFields(lo, hi, 16)
				m = m.WithExact(flowspace.FIPProto, 6)
			}
			action := flowspace.Action{Kind: flowspace.ActForward,
				Arg: cfg.Egresses[rng.Intn(len(cfg.Egresses))]}
			if rng.Float64() < cfg.DropFrac {
				action = flowspace.Action{Kind: flowspace.ActDrop}
			}
			prio := int32(10 * (d + 1)) // deeper ⇒ more specific ⇒ higher
			if len(expanded) == 0 {
				rules = append(rules, flowspace.Rule{ID: id, Priority: prio, Match: m, Action: action})
				id++
			} else {
				// Range expansion: one logical rule becomes several TCAM
				// entries sharing priority and action.
				for _, fd := range expanded {
					if len(rules) >= cfg.Rules-1 {
						break
					}
					rules = append(rules, flowspace.Rule{
						ID: id, Priority: prio,
						Match:  m.With(flowspace.FTPDst, fd),
						Action: action,
					})
					id++
				}
			}
			// Narrow for the next level, keeping the child prefix nested
			// inside the parent (only bits below the old prefix change).
			srcBase, srcLen = narrow(rng, srcBase, srcLen)
			dstBase, dstLen = narrow(rng, dstBase, dstLen)
		}
	}
	rules = append(rules, flowspace.Rule{
		ID: id, Priority: 0, Match: flowspace.MatchAll(),
		Action: flowspace.Action{Kind: flowspace.ActDrop},
	})
	flowspace.SortRules(rules)
	return rules
}

// narrow extends a prefix by 1-4 random bits, staying inside the parent.
func narrow(rng *rand.Rand, base uint64, plen uint) (uint64, uint) {
	newLen := plen + uint(1+rng.Intn(4))
	if newLen > 32 {
		newLen = 32
	}
	delta := newLen - plen
	if delta > 0 {
		base |= uint64(rng.Intn(1<<delta)) << (32 - newLen)
	}
	return base, newLen
}

// RoutingLike generates an ISP-style forwarding table: mostly disjoint
// destination prefixes with shallow dependencies (a covering /8 over /16s
// and /24s) and forward actions only.
func RoutingLike(seed int64, n int, egresses []uint32) []flowspace.Rule {
	if len(egresses) == 0 {
		egresses = []uint32{0}
	}
	rng := rand.New(rand.NewSource(seed))
	rules := make([]flowspace.Rule, 0, n)
	id := uint64(1)
	for len(rules) < n-1 {
		base := uint64(rng.Intn(224)) << 24
		// A covering /8 plus several more-specific routes inside it.
		rules = append(rules, flowspace.Rule{
			ID: id, Priority: 8,
			Match:  flowspace.MatchAll().WithPrefix(flowspace.FIPDst, base, 8),
			Action: flowspace.Action{Kind: flowspace.ActForward, Arg: egresses[rng.Intn(len(egresses))]},
		})
		id++
		specifics := rng.Intn(12)
		for s := 0; s < specifics && len(rules) < n-1; s++ {
			plen := uint(16 + 8*rng.Intn(2)) // /16 or /24
			addr := base | uint64(rng.Uint32())&^uint64(0xFF000000)
			rules = append(rules, flowspace.Rule{
				ID: id, Priority: int32(plen),
				Match:  flowspace.MatchAll().WithPrefix(flowspace.FIPDst, addr, plen),
				Action: flowspace.Action{Kind: flowspace.ActForward, Arg: egresses[rng.Intn(len(egresses))]},
			})
			id++
		}
	}
	rules = append(rules, flowspace.Rule{
		ID: id, Priority: 0, Match: flowspace.MatchAll(),
		Action: flowspace.Action{Kind: flowspace.ActDrop},
	})
	flowspace.SortRules(rules)
	return rules
}

// MulticastLike generates IPTV-style rules: exact multicast group
// destinations (224/4 space) fanned out to egress switches, shallow
// dependencies.
func MulticastLike(seed int64, n int, egresses []uint32) []flowspace.Rule {
	if len(egresses) == 0 {
		egresses = []uint32{0}
	}
	rng := rand.New(rand.NewSource(seed))
	rules := make([]flowspace.Rule, 0, n)
	for i := 0; i < n-1; i++ {
		group := uint64(0xE0000000) | uint64(rng.Intn(1<<20))
		rules = append(rules, flowspace.Rule{
			ID: uint64(i + 1), Priority: 10,
			Match: flowspace.MatchAll().
				WithExact(flowspace.FIPDst, group).
				WithExact(flowspace.FIPProto, 17),
			Action: flowspace.Action{Kind: flowspace.ActForward, Arg: egresses[rng.Intn(len(egresses))]},
		})
	}
	rules = append(rules, flowspace.Rule{
		ID: uint64(n), Priority: 0, Match: flowspace.MatchAll(),
		Action: flowspace.Action{Kind: flowspace.ActDrop},
	})
	flowspace.SortRules(rules)
	return rules
}

// toUint32 converts edge NodeIDs.
func toUint32(ids []topo.NodeID) []uint32 {
	out := make([]uint32, len(ids))
	for i, id := range ids {
		out[i] = uint32(id)
	}
	return out
}

// NetworkScale shrinks the canonical networks for fast tests vs full
// benches.
type NetworkScale float64

// Scales for the canonical networks.
const (
	ScaleTest  NetworkScale = 0.05
	ScaleBench NetworkScale = 1.0
)

func scaled(n int, s NetworkScale) int {
	v := int(float64(n) * float64(s))
	if v < 8 {
		v = 8
	}
	return v
}

// CampusNetwork approximates the paper's campus network: a three-tier
// topology with ACL-heavy policy (deep dependencies, port ranges).
func CampusNetwork(seed int64, scale NetworkScale) *Spec {
	g, access := topo.Campus(4, 3, 5, 0.0005)
	edges := toUint32(access)
	policy := ClassBenchLike(ACLConfig{
		Rules:         scaled(10000, scale),
		MaxDepth:      8,
		PortRangeFrac: 0.25,
		DropFrac:      0.3,
		Egresses:      edges,
		Seed:          seed,
	})
	return &Spec{
		Name: "campus", Graph: g, Edges: edges, Policy: policy,
		Describe: "3-tier campus, ACL policy with deep dependencies",
	}
}

// VPNNetwork approximates the provider VPN network: hub-and-spoke sites
// with src/dst pair rules of moderate depth.
func VPNNetwork(seed int64, scale NetworkScale) *Spec {
	g, edgeIDs := topo.FatTreeish(2, 4, 4, 0.001, 0.0005)
	edges := toUint32(edgeIDs)
	policy := ClassBenchLike(ACLConfig{
		Rules:         scaled(2000, scale),
		MaxDepth:      3,
		PortRangeFrac: 0.05,
		DropFrac:      0.15,
		Egresses:      edges,
		Seed:          seed + 1,
	})
	return &Spec{
		Name: "vpn", Graph: g, Edges: edges, Policy: policy,
		Describe: "provider VPN, src/dst pair rules, shallow chains",
	}
}

// IPTVNetwork approximates the IPTV network: multicast group forwarding.
func IPTVNetwork(seed int64, scale NetworkScale) *Spec {
	g, edgeIDs := topo.FatTreeish(2, 3, 6, 0.001, 0.0005)
	edges := toUint32(edgeIDs)
	policy := MulticastLike(seed+2, scaled(5000, scale), edges)
	return &Spec{
		Name: "iptv", Graph: g, Edges: edges, Policy: policy,
		Describe: "IPTV, exact multicast groups, flat priorities",
	}
}

// ISPNetwork approximates the tier-1 ISP backbone: a ring of POPs with a
// large destination-prefix forwarding table.
func ISPNetwork(seed int64, scale NetworkScale) *Spec {
	g := topo.NewGraph()
	const pops = 12
	for i := 0; i < pops; i++ {
		g.AddLink(topo.NodeID(i), topo.NodeID((i+1)%pops), 0.002)
	}
	// A few chords for path diversity.
	g.AddLink(0, 6, 0.004)
	g.AddLink(3, 9, 0.004)
	edges := make([]uint32, pops)
	for i := range edges {
		edges[i] = uint32(i)
	}
	policy := RoutingLike(seed+3, scaled(40000, scale), edges)
	return &Spec{
		Name: "isp", Graph: g, Edges: edges, Policy: policy,
		Describe: "ISP backbone, dst-prefix routes, shallow nesting",
	}
}

// AllNetworks returns the four canonical evaluation networks.
func AllNetworks(seed int64, scale NetworkScale) []*Spec {
	return []*Spec{
		CampusNetwork(seed, scale),
		VPNNetwork(seed, scale),
		IPTVNetwork(seed, scale),
		ISPNetwork(seed, scale),
	}
}

// MaxDependencyDepth measures the longest overlap chain in a policy by
// sampling: for each rule, the count of higher-priority overlapping rules
// bounds its chain. Exact chain computation is exponential; this proxy is
// what the report table shows.
func MaxDependencyDepth(rules []flowspace.Rule, sample int) int {
	if sample <= 0 || sample > len(rules) {
		sample = len(rules)
	}
	max := 0
	step := len(rules) / sample
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(rules); i += step {
		n := len(flowspace.DependentSet(rules, i))
		if n > max {
			max = n
		}
	}
	// Always include the lowest-priority rule: default/catch-all rules
	// have the largest dependent sets and strided sampling can skip them.
	if len(rules) > 0 {
		if n := len(flowspace.DependentSet(rules, len(rules)-1)); n > max {
			max = n
		}
	}
	return max
}
