package scencheck

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"difane/internal/core"
	"difane/internal/flowspace"
)

var (
	seedCount = flag.Int("seeds", defaultSeedCount(), "number of scenario seeds TestDifferential sweeps")
	oneSeed   = flag.Int64("seed", -1, "replay a single scenario seed (repro mode)")
	artifacts = flag.String("artifacts", "", "directory to write failing-seed reports into")
)

// defaultSeedCount trims the sweep under the race detector (~10× slower
// per seed) so a plain `go test -race ./...` fits the per-package
// timeout; pass -seeds explicitly for bigger race sweeps.
func defaultSeedCount() int {
	if raceEnabled {
		return 16
	}
	return 64
}

// TestDifferential sweeps seeded scenarios through all three deployments
// and diffs every packet verdict against the reference oracle, plus the
// accounting, epoch, cache-soundness, and convergence invariants. On
// failure it shrinks the scenario and prints a minimal repro.
func TestDifferential(t *testing.T) {
	seeds := make([]int64, 0, *seedCount)
	if *oneSeed >= 0 {
		seeds = append(seeds, *oneSeed)
	} else {
		for s := int64(1); s <= int64(*seedCount); s++ {
			seeds = append(seeds, s)
		}
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			res := CheckSeed(seed, DefaultConfig(), Options{})
			if !res.Failed() {
				return
			}
			report := res.Report()
			// Shrink in the cheapest failing mode to keep repros fast.
			mode := res.Failures[0].Mode
			shrunk := Shrink(res.Scenario, Options{Modes: []string{mode}})
			small := Check(shrunk, Options{Modes: []string{mode}})
			if small.Failed() {
				report += "shrunk repro:\n" + small.Report()
				report += fmt.Sprintf("shrunk scenario: %d steps, %d base rules\n%s",
					len(shrunk.Steps), len(shrunk.Policy), describe(shrunk))
			}
			writeArtifact(t, seed, report)
			t.Fatalf("\n%s", report)
		})
	}
}

func describe(sc Scenario) string {
	s := fmt.Sprintf("  switches=%v authorities=%v strategy=%v\n", sc.Switches, sc.Authorities, sc.Strategy)
	for i, r := range sc.Policy {
		s += fmt.Sprintf("  rule[%d]: %+v\n", i, r)
	}
	for i, st := range sc.Steps {
		s += fmt.Sprintf("  step[%d]: %s ingress=%d switch=%d key=%v\n", i, st.Kind, st.Ingress, st.Switch, st.Key)
	}
	return s
}

func writeArtifact(t *testing.T, seed int64, report string) {
	if *artifacts == "" {
		return
	}
	if err := os.MkdirAll(*artifacts, 0o755); err != nil {
		t.Logf("artifacts dir: %v", err)
		return
	}
	path := filepath.Join(*artifacts, fmt.Sprintf("seed-%d.txt", seed))
	if err := os.WriteFile(path, []byte(report), 0o644); err != nil {
		t.Logf("artifact write: %v", err)
	}
}

// TestGeneratorDeterministic pins the scenario generator: the same seed
// must produce byte-identical scenarios (no map iteration, no wall clock).
func TestGeneratorDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		a := Generate(seed, DefaultConfig())
		b := Generate(seed, DefaultConfig())
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: generator not deterministic:\n%+v\nvs\n%+v", seed, a, b)
		}
	}
}

// TestReplayDeterministic pins the virtual-time deployments: replaying the
// same scenario twice must give identical per-packet traces, terminal
// accounting, and (sim) bit-identical Measurements. Wire mode is excluded:
// it runs real goroutines in real time, so latency distributions differ
// even when behaviour matches.
func TestReplayDeterministic(t *testing.T) {
	opt := Options{Modes: []string{ModeSim, ModeBaseline}}
	for _, seed := range []int64{3, 7, 11} {
		r1 := CheckSeed(seed, DefaultConfig(), opt)
		r2 := CheckSeed(seed, DefaultConfig(), opt)
		if r1.Failed() || r2.Failed() {
			t.Fatalf("seed %d failed outright:\n%s%s", seed, r1.Report(), r2.Report())
		}
		if !reflect.DeepEqual(r1.Traces, r2.Traces) {
			t.Fatalf("seed %d: traces differ between runs:\n%+v\nvs\n%+v", seed, r1.Traces, r2.Traces)
		}
		if !reflect.DeepEqual(r1.Finals, r2.Finals) {
			t.Fatalf("seed %d: final accounting differs: %+v vs %+v", seed, r1.Finals, r2.Finals)
		}
		if !reflect.DeepEqual(r1.SimMeasurements, r2.SimMeasurements) {
			t.Fatalf("seed %d: sim measurements differ between runs", seed)
		}
	}
}

// TestParallelSeedDeterminism re-runs seeds concurrently (t.Parallel())
// and requires each seed's traces and terminal accounting to be identical
// across the two runs. TestReplayDeterministic already pins this serially;
// running the seeds in parallel additionally proves the harness carries no
// shared mutable state between concurrent replays — a leak would show up
// as cross-seed nondeterminism here long before it corrupted a real sweep.
func TestParallelSeedDeterminism(t *testing.T) {
	opt := Options{Modes: []string{ModeSim, ModeBaseline}}
	for _, seed := range []int64{2, 5, 9, 13, 17, 23} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			r1 := CheckSeed(seed, DefaultConfig(), opt)
			r2 := CheckSeed(seed, DefaultConfig(), opt)
			if r1.Failed() || r2.Failed() {
				t.Fatalf("seed %d failed outright:\n%s%s", seed, r1.Report(), r2.Report())
			}
			if !reflect.DeepEqual(r1.Traces, r2.Traces) {
				t.Fatalf("seed %d: traces differ under parallel replay", seed)
			}
			if !reflect.DeepEqual(r1.Finals, r2.Finals) {
				t.Fatalf("seed %d: final accounting differs under parallel replay: %+v vs %+v",
					seed, r1.Finals, r2.Finals)
			}
		})
	}
}

// TestChaosSmoke is the chaos companion to TestDifferential, aimed at the
// wire prototype's failure machinery: it sweeps only scenarios whose
// schedules kill switches AND controllers, so every run exercises BFD
// detection, backup promotion, leader elections (the wire backend runs
// three controller replicas), and epoch fencing — and still demands zero
// verdict divergence from the oracle. CI runs it under -race as the
// chaos-smoke job.
func TestChaosSmoke(t *testing.T) {
	want := 4
	if raceEnabled {
		want = 3
	}
	cfg := Config{Packets: 20, Faults: true, Updates: true}
	ran := 0
	for seed := int64(1); seed <= 200 && ran < want; seed++ {
		sc := Generate(seed, cfg)
		ctlKills, swKills := 0, 0
		for _, st := range sc.Steps {
			switch st.Kind {
			case StepKillController:
				ctlKills++
			case StepKillSwitch:
				swKills++
			}
		}
		if ctlKills == 0 || swKills == 0 {
			continue
		}
		ran++
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			res := Check(sc, Options{Modes: []string{ModeWire}})
			if res.Failed() {
				t.Fatalf("chaos scenario diverged:\n%s%s", res.Report(), describe(sc))
			}
		})
	}
	if ran < want {
		t.Fatalf("only %d of %d chaos scenarios found in 200 seeds", ran, want)
	}
}

// TestAdaptiveCaching sweeps budget-constrained adaptive-caching scenarios
// — flash-crowd / region-scan / revisit packet phases under a hard TCAM
// budget with randomized eviction policies — through the virtual-time
// deployments, demanding the usual zero-divergence bar: every verdict
// matches the oracle, and the end-of-scenario audit holds CacheRuleSound
// over whatever the adaptation loop left behind (re-timed entries and
// aggregated cover rules included).
func TestAdaptiveCaching(t *testing.T) {
	seeds := 12
	if raceEnabled {
		seeds = 6
	}
	sawCostAware, sawBudgetSqueeze := false, false
	for s := int64(1); s <= int64(seeds); s++ {
		sc := Generate(s, AdaptiveConfig())
		if sc.TCAMBudget <= 0 {
			t.Fatalf("seed %d: adaptive scenario generated without a TCAM budget", s)
		}
		sawCostAware = sawCostAware || sc.Eviction == core.EvictCostAware
		sawBudgetSqueeze = sawBudgetSqueeze || sc.TCAMBudget < cacheCapacity+2*len(sc.Policy)
		s := s
		t.Run(fmt.Sprintf("seed=%d", s), func(t *testing.T) {
			t.Parallel()
			res := Check(sc, Options{Modes: []string{ModeSim, ModeBaseline}})
			if !res.Failed() {
				return
			}
			report := res.Report()
			mode := res.Failures[0].Mode
			shrunk := Shrink(res.Scenario, Options{Modes: []string{mode}})
			if small := Check(shrunk, Options{Modes: []string{mode}}); small.Failed() {
				report += "shrunk repro:\n" + small.Report() + describe(shrunk)
			}
			t.Fatalf("\n%s", report)
		})
	}
	if !sawCostAware {
		t.Errorf("no seed in 1..%d ran the cost-aware policy", seeds)
	}
	if !sawBudgetSqueeze {
		t.Errorf("no seed in 1..%d generated a cache-squeezing budget", seeds)
	}
}

// TestAdaptiveCachingWire replays a couple of adaptive scenarios through
// the wire prototype, whose adaptation loop runs on real time against live
// goroutines — the cross-check that budget enforcement and cover
// aggregation stay verdict-neutral outside virtual time.
func TestAdaptiveCachingWire(t *testing.T) {
	seeds := []int64{2, 5}
	if raceEnabled {
		seeds = seeds[:1]
	}
	for _, s := range seeds {
		s := s
		t.Run(fmt.Sprintf("seed=%d", s), func(t *testing.T) {
			t.Parallel()
			res := CheckSeed(s, AdaptiveConfig(), Options{Modes: []string{ModeWire}})
			if res.Failed() {
				t.Fatalf("\n%s%s", res.Report(), describe(res.Scenario))
			}
		})
	}
}

// TestInjectedPriorityInversionCaught proves the harness can actually
// catch a planted bug: deployments get a policy whose priorities are
// inverted (the oracle keeps the original), and the checker must flag a
// divergence and shrink it to a tiny repro.
func TestInjectedPriorityInversionCaught(t *testing.T) {
	invert := func(rules []flowspace.Rule) []flowspace.Rule {
		for i := range rules {
			if rules[i].Priority > 0 {
				rules[i].Priority = 6 - rules[i].Priority
			}
		}
		return rules
	}
	// Packet-heavy fault-free scenarios: the bug is pure policy semantics.
	cfg := Config{Packets: 24, Faults: false, Updates: false}
	opt := Options{Modes: []string{ModeSim}, MutatePolicy: invert}
	var failing *Result
	for seed := int64(1); seed <= 100; seed++ {
		res := CheckSeed(seed, cfg, opt)
		if res.Failed() {
			failing = res
			break
		}
	}
	if failing == nil {
		t.Fatal("priority inversion survived 100 seeds — the checker is blind to it")
	}
	shrunk := Shrink(failing.Scenario, opt)
	res := Check(shrunk, opt)
	if !res.Failed() {
		t.Fatal("shrunk scenario no longer fails")
	}
	if len(shrunk.Policy) > 5 {
		t.Errorf("shrunk policy has %d rules, want <= 5:\n%s", len(shrunk.Policy), describe(shrunk))
	}
	if shrunk.Packets() > 3 {
		t.Errorf("shrunk scenario has %d packets, want <= 3:\n%s", shrunk.Packets(), describe(shrunk))
	}
	t.Logf("shrunk repro (seed %d): %d rules, %d packets\n%s",
		shrunk.Seed, len(shrunk.Policy), shrunk.Packets(), describe(shrunk))
}
