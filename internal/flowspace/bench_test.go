package flowspace

import (
	"math/rand"
	"testing"
)

func benchRules(n int) []Rule {
	rng := rand.New(rand.NewSource(151))
	rules := make([]Rule, 0, n)
	for i := 0; i < n; i++ {
		rules = append(rules, Rule{
			ID: uint64(i + 1), Priority: int32(rng.Intn(100)),
			Match: MatchAll().
				WithPrefix(FIPSrc, rng.Uint64(), uint(8+rng.Intn(17))).
				WithPrefix(FIPDst, rng.Uint64(), uint(8+rng.Intn(17))),
			Action: Action{Kind: ActForward, Arg: uint32(i)},
		})
	}
	return rules
}

func BenchmarkMatchOverlaps(b *testing.B) {
	rules := benchRules(2)
	a, c := rules[0].Match, rules[1].Match
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Overlaps(c)
	}
}

func BenchmarkMatchSubtract(b *testing.B) {
	a := MatchAll().WithPrefix(FIPSrc, 0x0A000000, 8)
	c := MatchAll().WithPrefix(FIPSrc, 0x0A0B0000, 16).WithExact(FTPDst, 80)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pieces := a.Subtract(c); len(pieces) == 0 {
			b.Fatal("unexpected empty subtraction")
		}
	}
}

func BenchmarkEvalTable1k(b *testing.B) {
	rules := benchRules(1000)
	var k Key
	k[FIPSrc] = 0x0A0B0C0D
	k[FIPDst] = 0xC0A80101
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EvalTable(rules, k)
	}
}

func BenchmarkCoverFor(b *testing.B) {
	// The firewall-shaped worst case: one broad rule under many denies.
	rules := make([]Rule, 0, 65)
	for i := 0; i < 64; i++ {
		rules = append(rules, Rule{
			ID: uint64(i + 1), Priority: 100,
			Match:  MatchAll().WithExact(FTPDst, uint64(i+1)),
			Action: Action{Kind: ActDrop},
		})
	}
	rules = append(rules, Rule{ID: 65, Priority: 0, Match: MatchAll(),
		Action: Action{Kind: ActForward}})
	var k Key
	k[FTPDst] = 9999
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := CoverFor(rules, 64, MatchAll(), k); !ok {
			b.Fatal("cover must exist")
		}
	}
}

func BenchmarkDependentSet(b *testing.B) {
	rules := benchRules(500)
	SortRules(rules)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DependentSet(rules, len(rules)-1)
	}
}
