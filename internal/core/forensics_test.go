package core

import (
	"testing"

	"difane/internal/telemetry"
)

// TestSimJourneyRedirectedFlow mirrors the wire-mode journey test in the
// simulator: a first packet's authority detour must assemble into one
// complete journey — ingress → redirect → authority → delivered — with
// virtual-time timestamps.
func TestSimJourneyRedirectedFlow(t *testing.T) {
	n := testNet(t, NetworkConfig{Tracing: true, TraceSample: 1})
	n.InjectPacket(0, 0, flowKey(1, 80), 100, 0)
	n.Run(1)

	js, stats := n.Journeys(telemetry.JourneyFilter{})
	if stats.Total != 1 || stats.Complete != 1 {
		t.Fatalf("stats = %+v, want 1 complete journey", stats)
	}
	j := js[0]
	if !j.Complete || j.Dropped || j.Terminal != "delivered" {
		t.Fatalf("journey = %+v", j)
	}
	if j.LatencyNS <= 0 {
		t.Fatalf("delivery latency = %d, want the verdict's virtual latency", j.LatencyNS)
	}
	var sawIngress, sawRedirect, sawAuthority, sawVerdict bool
	for _, ev := range j.Events {
		switch ev.Kind {
		case telemetry.EvIngress:
			sawIngress = ev.Node == 0
		case telemetry.EvRedirect:
			sawRedirect = ev.Node == 0 && ev.Peer == 2
		case telemetry.EvAuthority:
			sawAuthority = ev.Node == 2
		case telemetry.EvVerdict:
			sawVerdict = ev.Node == 4 && ev.Verdict == telemetry.VDelivered
		}
	}
	if !sawIngress || !sawRedirect || !sawAuthority || !sawVerdict {
		t.Fatalf("incomplete story (ingress %v redirect %v authority %v verdict %v): %+v",
			sawIngress, sawRedirect, sawAuthority, sawVerdict, j.Events)
	}
}

// TestSimSamplingOffLeavesNoSpans: with the recorder on but sampling off,
// per-packet spans must not record (only trace-stamped packets do once a
// sampler exists — and rate 0 stamps nothing).
func TestSimSamplingOffLeavesNoSpans(t *testing.T) {
	n := testNet(t, NetworkConfig{Tracing: true})
	n.InjectPacket(0, 0, flowKey(1, 80), 100, 0)
	n.Run(1)
	if _, stats := n.Journeys(telemetry.JourneyFilter{}); stats.Total != 0 {
		t.Fatalf("journeys assembled with sampling off: %+v", stats)
	}
}

// TestPolicyUpdateConvergenceTimeline is the acceptance check for epoch
// convergence timelines: a consistent policy update must produce a
// non-empty timeline whose quiescence timestamp is the simulator's
// accounting-identity quiesce point (the drained event queue at the end
// of Run), with the update's installs and withdrawals attributed to it.
func TestPolicyUpdateConvergenceTimeline(t *testing.T) {
	n, c := consistentNet(t)
	switchAt, cleanupAt, err := c.UpdatePolicyConsistent(denyPolicy())
	if err != nil {
		t.Fatal(err)
	}
	// Traffic on both sides of the switch point keeps the window honest.
	n.InjectPacket(switchAt-0.05, 0, flowKey(1, 80), 100, 0)
	n.InjectPacket(switchAt+0.05, 0, flowKey(2, 80), 100, 0)
	n.Run(cleanupAt + 1)

	tl := n.Convergence().Timelines()
	if len(tl) != 1 {
		t.Fatalf("got %d timelines, want 1 for the update", len(tl))
	}
	got := tl[0]
	if !got.Converged {
		t.Fatalf("update never quiesced: %+v", got)
	}
	if got.Installs == 0 || got.Withdraws == 0 {
		t.Fatalf("make-before-break must install then withdraw: %+v", got)
	}
	// The window opens at the first fenced FlowMod (phase 1, before the
	// switch point) and closes exactly at the drained-queue quiesce stamp.
	if got.FirstModTS <= 0 || float64(got.FirstModTS)/1e9 >= switchAt {
		t.Fatalf("FirstModTS = %d, want within (0, switchAt=%v)", got.FirstModTS, switchAt)
	}
	if got.QuiesceTS != n.vnow() {
		t.Fatalf("QuiesceTS = %d, want the quiesce point %d", got.QuiesceTS, n.vnow())
	}
	if got.DurationNS != got.QuiesceTS-got.FirstModTS {
		t.Fatalf("DurationNS = %d, want QuiesceTS-FirstModTS = %d",
			got.DurationNS, got.QuiesceTS-got.FirstModTS)
	}
	if since := n.Convergence().ActiveSinceNS(); since != 0 {
		t.Fatalf("tracker still reports an active update at %d", since)
	}
	v := n.Convergence().View(n.vnow())
	if v.Updates != 1 || v.Converged != 1 {
		t.Fatalf("view = %+v", v)
	}
}

// TestSimWatchdogEvalOnce drives the watchdog at virtual instants: healthy
// steady-state traffic must not fire any rule.
func TestSimWatchdogEvalOnce(t *testing.T) {
	n := testNet(t, NetworkConfig{})
	w := n.Watchdog()
	w.EvalOnce(n.vnow())
	for i := 0; i < 600; i++ {
		seq := uint64(i) % 3
		n.InjectPacket(float64(i)*0.001, 0, flowKey(uint32(i%8), 80), 100, seq)
	}
	n.Run(2)
	st := w.EvalOnce(n.vnow())
	for _, s := range st {
		if s.Firing {
			t.Fatalf("rule %s fired on healthy traffic: %+v", s.Name, s)
		}
	}
	if sum := w.Summary(); sum.Evals != 2 || sum.Firing != 0 {
		t.Fatalf("summary = %+v", sum)
	}
}
