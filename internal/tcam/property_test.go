package tcam

import (
	"math/rand"
	"testing"

	"difane/internal/flowspace"
)

// refModel is a brute-force reference for eviction/timeout behaviour:
// a plain slice of entries with the same bookkeeping, no ordering tricks.
type refModel struct {
	capacity int
	policy   EvictionPolicy
	entries  []refEntry
}

type refEntry struct {
	rule       flowspace.Rule
	packets    uint64
	lastHit    float64
	installed  float64
	idle, hard float64
}

func (m *refModel) insert(now float64, r flowspace.Rule, idle, hard float64) bool {
	for i := range m.entries {
		if m.entries[i].rule.ID == r.ID {
			m.entries = append(m.entries[:i], m.entries[i+1:]...)
			break
		}
	}
	if m.capacity > 0 && len(m.entries) >= m.capacity {
		if m.policy == EvictNone {
			return false
		}
		victim := 0
		better := func(a, b refEntry) bool {
			switch m.policy {
			case EvictLRU:
				if a.lastHit != b.lastHit {
					return a.lastHit < b.lastHit
				}
				if a.packets != b.packets {
					return a.packets < b.packets
				}
			case EvictLFU:
				if a.packets != b.packets {
					return a.packets < b.packets
				}
				if a.lastHit != b.lastHit {
					return a.lastHit < b.lastHit
				}
			}
			return a.rule.ID < b.rule.ID
		}
		for i := 1; i < len(m.entries); i++ {
			if better(m.entries[i], m.entries[victim]) {
				victim = i
			}
		}
		m.entries = append(m.entries[:victim], m.entries[victim+1:]...)
	}
	m.entries = append(m.entries, refEntry{
		rule: r, lastHit: now, installed: now, idle: idle, hard: hard,
	})
	return true
}

func (m *refModel) lookup(now float64, k flowspace.Key) (flowspace.Rule, bool) {
	best := -1
	for i := range m.entries {
		if !m.entries[i].rule.Match.Matches(k) {
			continue
		}
		if best < 0 || m.entries[i].rule.Before(m.entries[best].rule) {
			best = i
		}
	}
	if best < 0 {
		return flowspace.Rule{}, false
	}
	m.entries[best].packets++
	m.entries[best].lastHit = now
	return m.entries[best].rule, true
}

func (m *refModel) advance(now float64) {
	kept := m.entries[:0]
	for _, e := range m.entries {
		expired := false
		if e.idle > 0 && e.lastHit+e.idle <= now {
			expired = true
		}
		if e.hard > 0 && e.installed+e.hard <= now {
			expired = true
		}
		if !expired {
			kept = append(kept, e)
		}
	}
	m.entries = kept
}

func (m *refModel) ids() map[uint64]bool {
	out := map[uint64]bool{}
	for _, e := range m.entries {
		out[e.rule.ID] = true
	}
	return out
}

// TestTableMatchesReferenceModel drives random operation sequences through
// the TCAM table and the brute-force model and requires identical
// observable behaviour: same lookup results, same resident rule sets.
func TestTableMatchesReferenceModel(t *testing.T) {
	for _, policy := range []EvictionPolicy{EvictNone, EvictLRU, EvictLFU} {
		rng := rand.New(rand.NewSource(149 + int64(policy)))
		tb := New("prop", 8, policy)
		ref := &refModel{capacity: 8, policy: policy}
		now := 0.0
		for step := 0; step < 4000; step++ {
			now += rng.Float64() * 0.5
			switch rng.Intn(10) {
			case 0, 1, 2, 3: // insert
				r := rule(uint64(1+rng.Intn(20)), int32(rng.Intn(5)), uint64(rng.Intn(8)))
				idle := 0.0
				if rng.Intn(3) == 0 {
					idle = 1 + rng.Float64()*3
				}
				hard := 0.0
				if rng.Intn(4) == 0 {
					hard = 2 + rng.Float64()*5
				}
				tb.Advance(now)
				ref.advance(now)
				gotErr := tb.Insert(now, r, idle, hard) != nil
				wantErr := !ref.insert(now, r, idle, hard)
				if gotErr != wantErr {
					t.Fatalf("%v step %d: insert err=%v want %v", policy, step, gotErr, wantErr)
				}
			case 4, 5, 6, 7: // lookup
				k := keyPort(uint64(rng.Intn(8)))
				tb.Advance(now)
				ref.advance(now)
				got, gotOK := tb.Lookup(now, k, 64)
				want, wantOK := ref.lookup(now, k)
				if gotOK != wantOK || (gotOK && got.ID != want.ID) {
					t.Fatalf("%v step %d: lookup %v/%v want %v/%v", policy, step, got, gotOK, want, wantOK)
				}
			case 8: // delete
				id := uint64(1 + rng.Intn(20))
				tb.Delete(id)
				for i := range ref.entries {
					if ref.entries[i].rule.ID == id {
						ref.entries = append(ref.entries[:i], ref.entries[i+1:]...)
						break
					}
				}
			case 9: // expiry sweep + resident-set comparison
				tb.Advance(now)
				ref.advance(now)
				gotIDs := map[uint64]bool{}
				for _, r := range tb.Rules() {
					gotIDs[r.ID] = true
				}
				wantIDs := ref.ids()
				if len(gotIDs) != len(wantIDs) {
					t.Fatalf("%v step %d: resident %v want %v", policy, step, gotIDs, wantIDs)
				}
				for id := range wantIDs {
					if !gotIDs[id] {
						t.Fatalf("%v step %d: missing rule %d", policy, step, id)
					}
				}
			}
		}
	}
}
