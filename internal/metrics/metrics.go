// Package metrics collects and renders the statistics the evaluation
// harness reports: sample distributions (CDFs, percentiles), fixed-width
// tables, and simple x/y series in the text form the benchmark binary
// prints.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// Dist accumulates float64 samples and answers distribution queries.
//
// All methods are safe for concurrent use: mutators and queries serialize
// on an internal lock, and queries read a lazily rebuilt sorted copy, so
// the insertion-order sample slice is never reordered behind a reader's
// back. Copying a Dist (assignment, Snapshot-style struct copies) yields a
// handle onto the same shared state; use Clone for an independent one.
//
// One caveat: the internal state is allocated lazily on first use, and
// that first allocation is not synchronized. The first Add/Merge on a
// zero-value Dist must happen-before any concurrent access — which holds
// for every Dist in this repo (shards are written by one goroutine and
// merged after, harness dists are populated before being read).
type Dist struct {
	s *distState
}

type distState struct {
	mu      sync.Mutex
	samples []float64 // insertion order; never reordered
	sorted  []float64 // lazily rebuilt sorted copy, nil when stale
	sum     float64
}

func (d *Dist) state() *distState {
	if d.s == nil {
		d.s = &distState{}
	}
	return d.s
}

// Add appends a sample.
func (d *Dist) Add(v float64) {
	s := d.state()
	s.mu.Lock()
	s.samples = append(s.samples, v)
	s.sorted = nil
	s.sum += v
	s.mu.Unlock()
}

// N returns the sample count.
func (d *Dist) N() int {
	if d.s == nil {
		return 0
	}
	d.s.mu.Lock()
	defer d.s.mu.Unlock()
	return len(d.s.samples)
}

// Clone returns an independent copy with its own state.
func (d *Dist) Clone() Dist {
	if d.s == nil {
		return Dist{}
	}
	d.s.mu.Lock()
	defer d.s.mu.Unlock()
	return Dist{s: &distState{
		samples: append([]float64(nil), d.s.samples...),
		sum:     d.s.sum,
	}}
}

// Sum returns the sum of all samples.
func (d *Dist) Sum() float64 {
	if d.s == nil {
		return 0
	}
	d.s.mu.Lock()
	defer d.s.mu.Unlock()
	return d.s.sum
}

// Merge appends all of o's samples into d.
func (d *Dist) Merge(o *Dist) {
	if o == nil || o.s == nil {
		return
	}
	o.s.mu.Lock()
	samples := append([]float64(nil), o.s.samples...)
	sum := o.s.sum
	o.s.mu.Unlock()
	if len(samples) == 0 {
		return
	}
	s := d.state()
	s.mu.Lock()
	s.samples = append(s.samples, samples...)
	s.sorted = nil
	s.sum += sum
	s.mu.Unlock()
}

// Mean returns the sample mean (0 with no samples).
func (d *Dist) Mean() float64 {
	if d.s == nil {
		return 0
	}
	d.s.mu.Lock()
	defer d.s.mu.Unlock()
	if len(d.s.samples) == 0 {
		return 0
	}
	return d.s.sum / float64(len(d.s.samples))
}

// sortedLocked returns the sorted view, rebuilding it if samples changed
// since the last query. Callers must hold s.mu.
func (s *distState) sortedLocked() []float64 {
	if s.sorted == nil && len(s.samples) > 0 {
		s.sorted = append([]float64(nil), s.samples...)
		sort.Float64s(s.sorted)
	}
	return s.sorted
}

// Percentile returns the p-th percentile (p in [0,100]) by nearest-rank,
// or 0 with no samples.
func (d *Dist) Percentile(p float64) float64 {
	if d.s == nil {
		return 0
	}
	d.s.mu.Lock()
	defer d.s.mu.Unlock()
	sorted := d.s.sortedLocked()
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// Quantile returns the q-th quantile (q in [0,1]); equivalent to
// Percentile(q*100).
func (d *Dist) Quantile(q float64) float64 { return d.Percentile(q * 100) }

// Min and Max return the extremes (0 with no samples).
func (d *Dist) Min() float64 { return d.Percentile(0) }

// Max returns the largest sample (0 with no samples).
func (d *Dist) Max() float64 { return d.Percentile(100) }

// CDF returns (value, fraction ≤ value) pairs at the given fractions
// (each in [0,1]).
func (d *Dist) CDF(fractions []float64) [][2]float64 {
	out := make([][2]float64, 0, len(fractions))
	for _, f := range fractions {
		out = append(out, [2]float64{d.Percentile(f * 100), f})
	}
	return out
}

// Quantiles is the standard set of CDF points the harness prints.
var Quantiles = []float64{0.01, 0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.0}

// --- Rendering ---------------------------------------------------------------

// Table renders rows with aligned columns. The first row is the header.
type Table struct {
	rows [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

// AddRowf appends a row formatting each value with %v.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with two-space gutters.
func (t *Table) String() string {
	if len(t.rows) == 0 {
		return ""
	}
	cols := 0
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	for ri, r := range t.rows {
		for i, c := range r {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(r)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
		if ri == 0 {
			total := 0
			for i, w := range widths {
				if i > 0 {
					total += 2
				}
				total += w
			}
			b.WriteString(strings.Repeat("-", total))
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// FormatFloat renders a float compactly: integers without decimals, small
// values with enough precision to be readable.
func FormatFloat(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	case math.Abs(v) >= 0.01:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// FormatDuration renders seconds in engineering units (µs/ms/s).
func FormatDuration(sec float64) string {
	switch {
	case sec < 1e-3:
		return fmt.Sprintf("%.1fµs", sec*1e6)
	case sec < 1:
		return fmt.Sprintf("%.2fms", sec*1e3)
	default:
		return fmt.Sprintf("%.3fs", sec)
	}
}

// Series renders an x→y mapping as "x<tab>y" lines with a header, the form
// the figure benches print for plotting.
type Series struct {
	Name   string
	XLabel string
	YLabel string
	points [][2]float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.points = append(s.points, [2]float64{x, y}) }

// Points returns the accumulated points.
func (s *Series) Points() [][2]float64 { return s.points }

// String renders the series.
func (s *Series) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# series %s: %s vs %s\n", s.Name, s.YLabel, s.XLabel)
	for _, p := range s.points {
		fmt.Fprintf(&b, "%s\t%s\n", FormatFloat(p[0]), FormatFloat(p[1]))
	}
	return b.String()
}

// Counter is a labeled monotonically increasing count.
type Counter struct {
	Name  string
	Value uint64
}

// Inc adds n.
func (c *Counter) Inc(n uint64) { c.Value += n }
