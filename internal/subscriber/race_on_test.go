//go:build race

package subscriber

// raceEnabled steers test defaults: the race detector slows the wire
// soak several-fold, so TestSoakSmoke and the engine scale tests trim
// their modeled durations and session rates to stay inside go test's
// per-package timeout. CI's soak-smoke job runs the full size through
// cmd/difane-soak instead.
const raceEnabled = true
