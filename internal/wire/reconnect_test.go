package wire

import (
	"context"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"difane/internal/core"
	"difane/internal/testutil"
)

func reconnectCfg(useTCP bool) ClusterConfig {
	return ClusterConfig{
		Switches:    []uint32{0, 1, 2, 3, 4},
		Authorities: []uint32{2, 3},
		Policy:      failoverPolicy(),
		Strategy:    core.StrategyExact,
		UseTCP:      useTCP,
		Heartbeat:   HeartbeatConfig{Interval: 5 * time.Millisecond, MissThreshold: 3},
		Retry:       RetryPolicy{MaxAttempts: 10, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond},
	}
}

func awaitReconnects(t *testing.T, c *Cluster, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.Measurements().ControlReconnects < want {
		if time.Now().After(deadline) {
			t.Fatalf("reconnects = %d, want ≥ %d",
				c.Measurements().ControlReconnects, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPartitionHealReconnects exercises the full partition → detect dead →
// heal → reconnect → revive cycle, over both transports.
func TestPartitionHealReconnects(t *testing.T) {
	for _, tc := range []struct {
		name   string
		useTCP bool
	}{{"pipe", false}, {"tcp", true}} {
		t.Run(tc.name, func(t *testing.T) {
			c, err := NewCluster(reconnectCfg(tc.useTCP))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { c.Close() })

			if !c.PartitionControl(1) {
				t.Fatal("PartitionControl failed")
			}
			// Heartbeats are suppressed: the detector marks 1 dead.
			deadline := time.Now().Add(5 * time.Second)
			for c.NodeAlive(1) {
				if time.Now().After(deadline) {
					t.Fatal("partitioned switch never detected dead")
				}
				time.Sleep(time.Millisecond)
			}

			if !c.HealControl(1) {
				t.Fatal("HealControl failed")
			}
			awaitReconnects(t, c, 1)
			// Heartbeats resume; after the holddown the verdict flips back.
			deadline = time.Now().Add(5 * time.Second)
			for !c.NodeAlive(1) {
				if time.Now().After(deadline) {
					t.Fatal("healed switch never revived")
				}
				time.Sleep(time.Millisecond)
			}
			// The healed switch serves traffic again.
			if !c.Inject(1, httpHeader(9), 100) {
				t.Fatal("inject after heal failed")
			}
			if d := awaitDelivery(t, c); d.Egress != 4 {
				t.Fatalf("delivery after heal: %+v", d)
			}
		})
	}
}

// flakyConn wraps a net.Conn and fails permanently after a set number of
// writes, simulating a control link that keeps dying.
type flakyConn struct {
	net.Conn
	writesLeft *atomic.Int64
}

func (f *flakyConn) Write(b []byte) (int, error) {
	if f.writesLeft.Add(-1) < 0 {
		f.Conn.Close()
		return 0, fmt.Errorf("flaky conn: link died")
	}
	return f.Conn.Write(b)
}

// flakyTransport hands out pipe connections whose switch side dies after
// writesPerConn writes; after maxDrops connections it hands out healthy
// ones, so the cluster eventually stabilizes.
type flakyTransport struct {
	writesPerConn int64
	maxDrops      int64
	handed        atomic.Int64
	dialAttempts  atomic.Int64
}

func (f *flakyTransport) connect(ctx context.Context, id uint32) (net.Conn, net.Conn, error) {
	f.dialAttempts.Add(1)
	a, b := net.Pipe()
	if f.handed.Add(1) > f.maxDrops {
		return a, b, nil
	}
	left := &atomic.Int64{}
	left.Store(f.writesPerConn)
	return &flakyConn{Conn: a, writesLeft: left}, b, nil
}

func (f *flakyTransport) close() {}

// TestReconnectWithFlakyConn drives the connection manager through
// repeated link deaths: each flaky conn fails mid-session, the manager
// backs off and redials, and once the transport stops sabotaging the
// cluster works normally.
func TestReconnectWithFlakyConn(t *testing.T) {
	ft := &flakyTransport{writesPerConn: 3, maxDrops: int64(5 + 3)} // 5 initial conns + 3 flaky redials
	cfg := reconnectCfg(false)
	cfg.trans = ft
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	// Heartbeat echoes burn the write budget; every flaky conn dies and is
	// re-established.
	awaitReconnects(t, c, 3)

	// With healthy connections handed out, the full miss path (redirect,
	// cache install over the control plane, delivery) works.
	deadline := time.Now().Add(5 * time.Second)
	for c.CacheLen(0) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("cache install never arrived after flaky phase")
		}
		if c.Inject(0, httpHeader(uint32(100+c.CacheLen(0))), 100) {
			select {
			case <-c.Deliveries:
			case <-time.After(100 * time.Millisecond):
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if ft.dialAttempts.Load() < 8 {
		t.Errorf("dial attempts = %d, want ≥ 8", ft.dialAttempts.Load())
	}
}

// TestBackoffDeterministic pins the backoff schedule with an injected
// randomness source.
func TestBackoffDeterministic(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond,
		MaxDelay: 80 * time.Millisecond, Jitter: 0.5}
	zero := func() float64 { return 0 }
	want := []time.Duration{
		10 * time.Millisecond, // attempt 1
		20 * time.Millisecond,
		40 * time.Millisecond,
		80 * time.Millisecond, // capped
		80 * time.Millisecond,
	}
	for i, w := range want {
		if got := p.backoff(i+1, zero); got != w {
			t.Errorf("backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
	// Full jitter draw halves every delay (Jitter = 0.5, rnd = 1).
	one := func() float64 { return 1 }
	for i, w := range want {
		if got := p.backoff(i+1, one); got != w/2 {
			t.Errorf("jittered backoff(%d) = %v, want %v", i+1, got, w/2)
		}
	}
	// Out-of-range attempts clamp instead of misbehaving.
	if got := p.backoff(0, zero); got != 10*time.Millisecond {
		t.Errorf("backoff(0) = %v", got)
	}
	if got := p.backoff(64, zero); got != 80*time.Millisecond {
		t.Errorf("backoff(64) = %v", got)
	}
}

func TestValidateDefaults(t *testing.T) {
	cfg := ClusterConfig{
		Switches:    []uint32{0, 1},
		Authorities: []uint32{1},
		Policy:      failoverPolicy(),
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.QueueDepth != 1024 {
		t.Errorf("QueueDepth = %d", cfg.QueueDepth)
	}
	if cfg.Heartbeat.Interval != 50*time.Millisecond || cfg.Heartbeat.MissThreshold != 3 {
		t.Errorf("heartbeat defaults: %+v", cfg.Heartbeat)
	}
	if cfg.Heartbeat.RedirectTimeout != 300*time.Millisecond {
		t.Errorf("RedirectTimeout = %v", cfg.Heartbeat.RedirectTimeout)
	}
	if cfg.Retry.MaxAttempts != 4 || cfg.Retry.BaseDelay != 10*time.Millisecond {
		t.Errorf("retry defaults: %+v", cfg.Retry)
	}

	dup := ClusterConfig{Switches: []uint32{0, 0}, Authorities: []uint32{0},
		Policy: failoverPolicy()}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate switch must fail validation")
	}
}

func TestNewClusterContextCancelShutsDown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c, err := NewClusterContext(ctx, reconnectCfg(false))
	if err != nil {
		t.Fatal(err)
	}
	c.Inject(0, httpHeader(1), 100)
	awaitDelivery(t, c)
	cancel()
	// Close after cancel must not hang; the goroutines are already gone.
	done := make(chan struct{})
	go func() { c.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung after context cancel")
	}
}

// TestNoGoroutineLeaks runs a full lifecycle — traffic, faults, reconnect,
// close — over both transports and checks the goroutine count returns to
// its baseline (a goleak-style check that also guards dialControlTCP's
// successor against leaking on partial failure).
func TestNoGoroutineLeaks(t *testing.T) {
	for _, tc := range []struct {
		name   string
		useTCP bool
	}{{"pipe", false}, {"tcp", true}} {
		t.Run(tc.name, func(t *testing.T) {
			check := testutil.CheckGoroutineLeaks(t, 2)
			c, err := NewCluster(reconnectCfg(tc.useTCP))
			if err != nil {
				t.Fatal(err)
			}
			c.Inject(0, httpHeader(1), 100)
			awaitDelivery(t, c)
			c.PartitionControl(1)
			c.HealControl(1)
			c.KillSwitch(4)
			if err := c.Close(); err != nil {
				t.Fatal(err)
			}
			check()
		})
	}
}

// TestTCPTransportConnectFailureCleansUp covers the dial-path error
// branches: a cancelled context and a closed transport both fail fast
// without leaving pending state behind.
func TestTCPTransportConnectFailureCleansUp(t *testing.T) {
	tr, err := newTCPTransport()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := tr.connect(ctx, 7); err == nil {
		t.Fatal("connect with cancelled context must fail")
	}
	tr.mu.Lock()
	pending := len(tr.pending)
	tr.mu.Unlock()
	if pending != 0 {
		t.Errorf("pending waiters leaked: %d", pending)
	}
	tr.close()
	if _, _, err := tr.connect(context.Background(), 7); err == nil {
		t.Fatal("connect after close must fail")
	}
	tr.close() // idempotent
}
