package core

import (
	"difane/internal/flowspace"
	"difane/internal/telemetry"
)

// This file is the simulator's half of the cross-backend forensics layer:
// the same flight recorder, trace sampler, convergence tracker, and health
// watchdog wire mode runs, with virtual-time timestamps. Span events are
// published at the exact virtual instants the discrete-event engine
// processes them, so a journey assembled from a simulation reads like one
// assembled from a live cluster — only the clock base differs.

// vnow is the recorder timestamp for the current virtual instant:
// nanoseconds of simulated time, floored at 1 so Recorder.Publish never
// mistakes a t=0 event for "stamp me with wall time".
func (n *Network) vnow() int64 {
	ts := int64(n.Eng.Now() * 1e9)
	if ts <= 0 {
		ts = 1
	}
	return ts
}

// tupleOfKey projects a flowspace key onto the telemetry flow tuple.
func tupleOfKey(k flowspace.Key) telemetry.FlowTuple {
	return telemetry.Tuple(
		uint32(k[flowspace.FIPSrc]), uint32(k[flowspace.FIPDst]),
		uint16(k[flowspace.FTPSrc]), uint16(k[flowspace.FTPDst]),
		uint8(k[flowspace.FIPProto]))
}

// traceID mints the packet's trace ID, or 0 when unsampled. Cost with
// sampling off: one atomic load, same as wire mode.
func (n *Network) traceID(k flowspace.Key, seq uint64) uint64 {
	if n.sampler.Rate() == 0 {
		return 0
	}
	return n.sampler.TraceID(tupleOfKey(k).Hash, seq)
}

// span publishes one trace event stamped with the current virtual time.
func (n *Network) span(ev telemetry.Event) {
	if !n.rec.Enabled() {
		return
	}
	if ev.TS == 0 {
		ev.TS = n.vnow()
	}
	n.rec.Publish(ev)
}

// VerdictCode maps the simulator's terminal outcomes onto the shared
// telemetry verdict codes (also used by the baseline backend's spans).
func VerdictCode(kind VerdictKind) uint8 {
	switch kind {
	case VerdictDelivered:
		return telemetry.VDelivered
	case VerdictPolicyDrop:
		return telemetry.VDropPolicy
	case VerdictHole:
		return telemetry.VDropHole
	case VerdictQueueDrop:
		return telemetry.VDropQueue
	case VerdictUnreachable:
		return telemetry.VUnreachable
	default:
		return telemetry.VNone
	}
}

// finish reports a packet's terminal outcome: exactly one Observer emit
// per injected packet (the accounting-identity bijection), plus a terminal
// verdict span at the deciding node when the packet is sampled. latNS is
// the delivery latency for delivered packets, 0 otherwise.
func (n *Network) finish(kind VerdictKind, node uint32, k flowspace.Key, seq uint64, egress uint32, detour bool, trace uint64, latNS uint64) {
	n.emit(kind, k, seq, egress, detour)
	if trace != 0 && n.rec.Enabled() {
		n.span(telemetry.Event{
			Kind:    telemetry.EvVerdict,
			Node:    node,
			Verdict: VerdictCode(kind),
			Value:   latNS,
			Trace:   trace,
			Flow:    tupleOfKey(k),
		})
	}
}

// noteMods records count fenced FlowMods of one staged generation on the
// convergence tracker, all stamped at the current virtual instant.
func (n *Network) noteMods(generation uint64, withdraw bool, count uint64) {
	if count == 0 {
		return
	}
	ts, totals := n.vnow(), n.counterTotals()
	for i := uint64(0); i < count; i++ {
		n.conv.NoteMod(generation, withdraw, ts, totals)
	}
}

// counterTotals snapshots the counters the convergence tracker diffs
// across a policy-update window.
func (n *Network) counterTotals() telemetry.CounterTotals {
	d := n.M.Drops
	return telemetry.CounterTotals{
		Redirects: n.M.Redirects,
		Shed:      d.RedirectShed + n.M.CacheInstallsShed,
		Dropped:   d.Policy + d.Hole + d.AuthorityQueue + d.RedirectShed + d.Unreachable,
	}
}

// Recorder exposes the network's flight recorder.
func (n *Network) Recorder() *telemetry.Recorder { return n.rec }

// SetTracing toggles the flight recorder at runtime.
func (n *Network) SetTracing(on bool) { n.rec.SetEnabled(on) }

// SetTraceSample changes the 1-in-N per-packet trace sampling rate at
// runtime (0 = off).
func (n *Network) SetTraceSample(rate int) { n.sampler.SetRate(rate) }

// TraceSampleRate returns the current 1-in-N sampling rate (0 = off).
func (n *Network) TraceSampleRate() int { return n.sampler.Rate() }

// Convergence exposes the policy-update convergence tracker.
func (n *Network) Convergence() *telemetry.Convergence { return n.conv }

// Watchdog exposes the health watchdog, building the metric registry it
// scrapes on first use. The simulator has no ticker; drive EvalOnce at
// the virtual instants of interest (e.g. once per simulated second).
func (n *Network) Watchdog() *telemetry.Watchdog {
	n.Telemetry() // force registry + watchdog construction
	return n.wd
}

// Journeys assembles end-to-end packet journeys from the flight recorder.
// The filter's freshness clock defaults to the current virtual time.
func (n *Network) Journeys(f telemetry.JourneyFilter) ([]telemetry.Journey, telemetry.JourneyStats) {
	if f.NowNS == 0 {
		f.NowNS = n.vnow()
	}
	return telemetry.AssembleJourneys(n.rec, f)
}
