package wire

import (
	"sort"

	"difane/internal/flowspace"
	"difane/internal/proto"
)

// TableRules returns a snapshot of one switch's rules in the given table,
// sorted by rule ID. It exists for the differential checker
// (internal/scencheck), which audits cached ingress rules against the
// authority rules they claim to stand for; it is safe to call while the
// cluster is running.
func (c *Cluster) TableRules(sw uint32, t proto.Table) []flowspace.Rule {
	n, ok := c.switches[sw]
	if !ok {
		return nil
	}
	rules := n.sw.Table(t).Rules()
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })
	return rules
}

// SwitchIDs returns every switch ID in the cluster, sorted.
func (c *Cluster) SwitchIDs() []uint32 {
	out := make([]uint32, 0, len(c.switches))
	for id := range c.switches {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
