package cachepolicy

import (
	"strconv"

	"difane/internal/telemetry"
)

// RegisterMetrics adds the difane_cache_* schema to a telemetry registry:
// cost-model counters plus per-region gauges for the adapted idle
// timeouts and the observed latency / inter-arrival inputs behind them.
func (p *Policy) RegisterMetrics(reg *telemetry.Registry) {
	reg.RegisterFunc("difane_cache_cost_evictions_total",
		"victims selected by the cost-aware eviction scorer",
		telemetry.TypeCounter, func() float64 { return float64(p.costEvictions.Load()) })
	reg.RegisterFunc("difane_cache_idle_adaptations_total",
		"material per-region idle-timeout adaptations",
		telemetry.TypeCounter, func() float64 { return float64(p.adaptations.Load()) })
	reg.RegisterFunc("difane_cache_aggregations_total",
		"cover rules installed by cache aggregation",
		telemetry.TypeCounter, func() float64 { return float64(p.aggregations.Load()) })
	reg.RegisterFunc("difane_cache_aggregated_entries_total",
		"near-microflow cache entries replaced by aggregation covers",
		telemetry.TypeCounter, func() float64 { return float64(p.aggReplaced.Load()) })
	perRegion := func(value func(*regionStats) (float64, bool)) func() []telemetry.Point {
		return func() []telemetry.Point {
			p.mu.Lock()
			defer p.mu.Unlock()
			idxs := make([]int, 0, len(p.regions))
			for i := range p.regions {
				idxs = append(idxs, i)
			}
			sortInts(idxs)
			var out []telemetry.Point
			for _, i := range idxs {
				if v, ok := value(p.regions[i]); ok {
					out = append(out, telemetry.Point{
						Labels: []telemetry.Label{{Key: "region", Value: strconv.Itoa(i)}},
						Value:  v,
					})
				}
			}
			return out
		}
	}
	reg.Register("difane_cache_region_idle_seconds",
		"adapted cache idle timeout per policy region",
		telemetry.TypeGauge, perRegion(func(st *regionStats) (float64, bool) {
			return st.idle, st.idle > 0
		}))
	reg.Register("difane_cache_region_redirect_latency_seconds",
		"observed redirect latency per policy region (EWMA)",
		telemetry.TypeGauge, perRegion(func(st *regionStats) (float64, bool) {
			return st.latency, st.latOK
		}))
	reg.Register("difane_cache_region_inter_arrival_seconds",
		"observed packet inter-arrival per policy region (EWMA)",
		telemetry.TypeGauge, perRegion(func(st *regionStats) (float64, bool) {
			return st.inter, st.interOK
		}))
}

// ScrapeRegistry refreshes the policy's deployment-wide priors from a
// telemetry registry: the mean first-packet delay (the measured cost of a
// redirect detour) and the cache hit rate implied by the delivered vs
// redirected totals. Regions without direct observations score against
// these priors, so the cost model starts sane on a cold deployment.
func (p *Policy) ScrapeRegistry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	var lat, delivered, redirects float64
	for _, m := range reg.Snapshot() {
		switch m.Name {
		case "difane_first_packet_delay_seconds":
			if m.Summary != nil && m.Summary.Count > 0 {
				lat = m.Summary.Sum / float64(m.Summary.Count)
			}
		case "difane_delivered_total":
			if len(m.Points) > 0 {
				delivered = m.Points[0].Value
			}
		case "difane_redirects_total":
			if len(m.Points) > 0 {
				redirects = m.Points[0].Value
			}
		}
	}
	p.mu.Lock()
	if lat > 0 {
		p.globalLatency = lat
	}
	if total := delivered + redirects; total > 0 {
		hr := delivered / total
		if hr < 0.05 {
			hr = 0.05
		}
		p.globalHitRate = hr
	}
	p.mu.Unlock()
}
