package sim

import (
	"math"
	"testing"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	e := New()
	var order []int
	e.At(3, func() { order = append(order, 3) })
	e.At(1, func() { order = append(order, 1) })
	e.At(2, func() { order = append(order, 2) })
	e.Run(10)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 10 {
		t.Fatalf("clock must advance to horizon, got %v", e.Now())
	}
}

func TestTiesRunInScheduleOrder(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run(10)
	for i, v := range order {
		if v != i {
			t.Fatalf("tie order broken: %v", order)
		}
	}
}

func TestEventsCanScheduleEvents(t *testing.T) {
	e := New()
	hits := 0
	var tick func()
	tick = func() {
		hits++
		if hits < 5 {
			e.After(1, tick)
		}
	}
	e.After(1, tick)
	e.Run(100)
	if hits != 5 {
		t.Fatalf("hits = %d", hits)
	}
	if e.Processed != 5 {
		t.Fatalf("processed = %d", e.Processed)
	}
}

func TestHorizonStopsExecution(t *testing.T) {
	e := New()
	ran := false
	e.At(50, func() { ran = true })
	n := e.Run(10)
	if n != 0 || ran {
		t.Fatal("event beyond horizon must not run")
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d", e.Pending())
	}
	e.Run(100)
	if !ran {
		t.Fatal("event must run once horizon passes")
	}
}

func TestSchedulingInThePastClamps(t *testing.T) {
	e := New()
	var at float64 = -1
	e.At(5, func() {
		e.At(1, func() { at = e.Now() }) // in the past
	})
	e.Run(10)
	if at != 5 {
		t.Fatalf("past event must run at current time, got %v", at)
	}
}

func TestStationInfiniteRate(t *testing.T) {
	e := New()
	s := NewStation(e, 0, 0)
	var done []float64
	e.At(2, func() { s.Submit(func(at float64) { done = append(done, at) }) })
	e.Run(10)
	if len(done) != 1 || done[0] != 2 {
		t.Fatalf("infinite-rate completion = %v", done)
	}
}

func TestStationServiceRate(t *testing.T) {
	e := New()
	s := NewStation(e, 10, 0) // 10 jobs/s → 0.1s service
	var done []float64
	for i := 0; i < 3; i++ {
		e.At(0, func() { s.Submit(func(at float64) { done = append(done, at) }) })
	}
	e.Run(10)
	want := []float64{0.1, 0.2, 0.3}
	if len(done) != 3 {
		t.Fatalf("done = %v", done)
	}
	for i := range want {
		if math.Abs(done[i]-want[i]) > 1e-9 {
			t.Fatalf("completion %d = %v want %v", i, done[i], want[i])
		}
	}
}

func TestStationSaturationThroughput(t *testing.T) {
	// Offer 2x the station's capacity for 10s; completed jobs must track
	// capacity, not offered load — the saturation shape the throughput
	// figures rely on.
	e := New()
	s := NewStation(e, 100, 0)
	completed := 0
	for i := 0; i < 2000; i++ {
		at := float64(i) * 0.005 // 200/s offered
		e.At(at, func() { s.Submit(func(float64) { completed++ }) })
	}
	e.Run(10)
	if completed < 950 || completed > 1001 {
		t.Fatalf("completed = %d, want ~1000 (capacity-bound)", completed)
	}
}

func TestStationQueueLimitDrops(t *testing.T) {
	e := New()
	s := NewStation(e, 1, 2)
	accepted := 0
	e.At(0, func() {
		for i := 0; i < 5; i++ {
			if s.Submit(func(float64) {}) {
				accepted++
			}
		}
	})
	e.Run(100)
	if accepted != 2 || s.Drops != 3 {
		t.Fatalf("accepted=%d drops=%d", accepted, s.Drops)
	}
	if s.Backlog() != 0 {
		t.Fatalf("backlog after drain = %d", s.Backlog())
	}
}

func TestStationQueueDrainsOverTime(t *testing.T) {
	e := New()
	s := NewStation(e, 10, 3)
	drops := 0
	// Submit one job every 0.05s (20/s) against 10/s capacity with a short
	// queue: roughly half must drop once the queue fills.
	for i := 0; i < 100; i++ {
		e.At(float64(i)*0.05, func() {
			if !s.Submit(func(float64) {}) {
				drops++
			}
		})
	}
	e.Run(100)
	if drops < 30 || drops > 60 {
		t.Fatalf("drops = %d, want roughly half", drops)
	}
}

func TestStationUtilization(t *testing.T) {
	e := New()
	s := NewStation(e, 10, 0)
	for i := 0; i < 5; i++ {
		e.At(0, func() { s.Submit(func(float64) {}) })
	}
	e.Run(1) // 5 jobs × 0.1s service = 0.5s busy over 1s
	if u := s.Utilization(); math.Abs(u-0.5) > 1e-9 {
		t.Fatalf("utilization = %v", u)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		e := New()
		s := NewStation(e, 7, 5)
		var out []float64
		for i := 0; i < 50; i++ {
			e.At(float64(i%13)*0.01, func() {
				s.Submit(func(at float64) { out = append(out, at) })
			})
		}
		e.Run(100)
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("runs differ in length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
