package telemetry

import "sync"

// CounterTotals is the slice of cluster counters the convergence tracker
// diffs across an update window: a snapshot is taken when the first fenced
// FlowMod of an epoch lands and again at quiescence, and the deltas become
// the "packets redirected/shed/dropped during generation overlap" figures.
type CounterTotals struct {
	Redirects uint64 `json:"redirects"`
	Shed      uint64 `json:"shed"`
	Dropped   uint64 `json:"dropped"`
}

// EpochTimeline is one policy-update generation's convergence record.
// Timestamps are nanoseconds on the owning backend's clock (wall ns since
// cluster start in wire mode, virtual ns in the simulator).
type EpochTimeline struct {
	Epoch      uint64 `json:"epoch"`
	FirstModTS int64  `json:"first_mod_ts_ns"`
	LastModTS  int64  `json:"last_mod_ts_ns"`
	QuiesceTS  int64  `json:"quiesce_ts_ns,omitempty"` // 0 until converged
	DurationNS int64  `json:"duration_ns,omitempty"`   // FirstMod→Quiesce
	Installs   uint64 `json:"installs"`
	Withdraws  uint64 `json:"withdraws"`
	Rejects    uint64 `json:"rejects"` // stale FlowMods fenced off during the window
	// Traffic disturbed while the generation was converging.
	RedirectsDuring uint64 `json:"redirects_during"`
	ShedDuring      uint64 `json:"shed_during"`
	DroppedDuring   uint64 `json:"dropped_during"`
	Converged       bool   `json:"converged"`
}

// Convergence tracks per-epoch policy-update timelines: who installed and
// withdrew how many rules, how long first-FlowMod→quiescence took, and how
// much traffic was redirected, shed, or dropped while two generations
// overlapped. Feed it NoteMod/NoteReject from wherever fenced FlowMods are
// applied and NoteQuiesce from the deployment's quiesce point (the
// accounting-identity check in wire mode, the cleanup phase in the
// simulator).
type Convergence struct {
	mu        sync.Mutex
	timelines []*EpochTimeline
	index     map[uint64]*EpochTimeline
	baseline  CounterTotals // totals at the open of the active window
	keep      int

	updates   uint64
	converged uint64
	installs  uint64
	withdraws uint64
	rejects   uint64
	last      EpochTimeline // most recently converged timeline
}

// NewConvergence returns a tracker retaining the last keep timelines
// (default 64).
func NewConvergence(keep int) *Convergence {
	if keep <= 0 {
		keep = 64
	}
	return &Convergence{index: make(map[uint64]*EpochTimeline), keep: keep}
}

// NoteMod records one fenced FlowMod of the given epoch landing at ts.
// The first mod of an unseen epoch opens its timeline and snapshots the
// counter baseline the quiesce deltas are computed against.
func (c *Convergence) NoteMod(epoch uint64, withdraw bool, ts int64, totals CounterTotals) {
	if epoch == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.index[epoch]
	if t == nil {
		t = &EpochTimeline{Epoch: epoch, FirstModTS: ts, LastModTS: ts}
		c.index[epoch] = t
		c.timelines = append(c.timelines, t)
		if len(c.timelines) > c.keep {
			drop := c.timelines[0]
			delete(c.index, drop.Epoch)
			c.timelines = c.timelines[1:]
		}
		c.baseline = totals
		c.updates++
	}
	if ts > t.LastModTS {
		t.LastModTS = ts
	}
	if withdraw {
		t.Withdraws++
		c.withdraws++
	} else {
		t.Installs++
		c.installs++
	}
}

// NoteReject records a stale FlowMod fenced off while epoch was active.
func (c *Convergence) NoteReject(epoch uint64, ts int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rejects++
	for i := len(c.timelines) - 1; i >= 0; i-- {
		if t := c.timelines[i]; !t.Converged {
			t.Rejects++
			return
		}
	}
	_ = epoch // the rejected mod's own (stale) epoch isn't a timeline key
}

// NoteQuiesce stamps every open timeline converged at ts, computing the
// disturbed-traffic deltas against the baseline snapshotted when the
// window opened. Call it from the deployment's quiesce point — the moment
// injected == completed and the fabric drained.
func (c *Convergence) NoteQuiesce(ts int64, totals CounterTotals) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, t := range c.timelines {
		if t.Converged {
			continue
		}
		t.Converged = true
		t.QuiesceTS = ts
		t.DurationNS = ts - t.FirstModTS
		t.RedirectsDuring = totals.Redirects - c.baseline.Redirects
		t.ShedDuring = totals.Shed - c.baseline.Shed
		t.DroppedDuring = totals.Dropped - c.baseline.Dropped
		c.converged++
		c.last = *t
	}
}

// ActiveSinceNS returns the FirstModTS of the oldest unconverged timeline,
// or 0 when every update has quiesced — the convergence-stall health
// rule's input, exported as difane_epoch_active_since_ns.
func (c *Convergence) ActiveSinceNS() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, t := range c.timelines {
		if !t.Converged {
			return t.FirstModTS
		}
	}
	return 0
}

// Timelines returns a copy of the retained timelines, oldest first.
func (c *Convergence) Timelines() []EpochTimeline {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]EpochTimeline, 0, len(c.timelines))
	for _, t := range c.timelines {
		out = append(out, *t)
	}
	return out
}

// Last returns the most recently converged timeline (ok=false if none).
func (c *Convergence) Last() (EpochTimeline, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.last, c.last.Converged
}

// ConvergenceView is the /convergence JSON shape.
type ConvergenceView struct {
	NowNS         int64           `json:"now_ns"`
	ActiveSinceNS int64           `json:"active_since_ns,omitempty"`
	Updates       uint64          `json:"updates"`
	Converged     uint64          `json:"converged"`
	Timelines     []EpochTimeline `json:"timelines"`
}

// View assembles the endpoint shape at the caller's now.
func (c *Convergence) View(nowNS int64) ConvergenceView {
	v := ConvergenceView{NowNS: nowNS, ActiveSinceNS: c.ActiveSinceNS(), Timelines: c.Timelines()}
	c.mu.Lock()
	v.Updates, v.Converged = c.updates, c.converged
	c.mu.Unlock()
	return v
}

// RegisterMetrics exports the tracker as difane_epoch_* series.
func (c *Convergence) RegisterMetrics(reg *Registry) {
	counter := func(name, help string, fn func() float64) {
		reg.RegisterFunc(name, help, TypeCounter, fn)
	}
	gauge := func(name, help string, fn func() float64) {
		reg.RegisterFunc(name, help, TypeGauge, fn)
	}
	locked := func(fn func() float64) func() float64 {
		return func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return fn()
		}
	}
	counter("difane_epoch_updates_total", "Policy-update generations observed.",
		locked(func() float64 { return float64(c.updates) }))
	counter("difane_epoch_converged_total", "Generations that reached quiescence.",
		locked(func() float64 { return float64(c.converged) }))
	counter("difane_epoch_installs_total", "Fenced rule installs across all generations.",
		locked(func() float64 { return float64(c.installs) }))
	counter("difane_epoch_withdraws_total", "Fenced rule withdrawals across all generations.",
		locked(func() float64 { return float64(c.withdraws) }))
	counter("difane_epoch_rejects_total", "Stale FlowMods fenced off during updates.",
		locked(func() float64 { return float64(c.rejects) }))
	gauge("difane_epoch_active_since_ns", "FirstModTS of the oldest unconverged generation (0 = quiet).",
		func() float64 { return float64(c.ActiveSinceNS()) })
	gauge("difane_epoch_last_duration_ns", "First-FlowMod→quiescence duration of the last converged generation.",
		locked(func() float64 { return float64(c.last.DurationNS) }))
	gauge("difane_epoch_last_redirects_during", "Packets redirected while the last generation converged.",
		locked(func() float64 { return float64(c.last.RedirectsDuring) }))
	gauge("difane_epoch_last_shed_during", "Packets shed while the last generation converged.",
		locked(func() float64 { return float64(c.last.ShedDuring) }))
	gauge("difane_epoch_last_dropped_during", "Packets dropped while the last generation converged.",
		locked(func() float64 { return float64(c.last.DroppedDuring) }))
}
