package workload

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"difane/internal/flowspace"
)

func TestTraceRoundTrip(t *testing.T) {
	spec := VPNNetwork(13, ScaleTest)
	flows := GenerateTraffic(spec, TrafficConfig{Flows: 500, Rate: 1000, Seed: 3})
	// Zero the fields the trace format doesn't carry so equality holds.
	for i := range flows {
		for _, f := range []flowspace.FieldID{
			flowspace.FInPort, flowspace.FEthSrc, flowspace.FEthDst,
			flowspace.FEthType, flowspace.FVLAN,
		} {
			flows[i].Key[f] = 0
		}
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, flows); err != nil {
		t.Fatal(err)
	}
	again, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(flows, again) {
		for i := range flows {
			if flows[i] != again[i] {
				t.Fatalf("flow %d differs:\n%+v\n%+v", i, flows[i], again[i])
			}
		}
		t.Fatal("traces differ")
	}
}

func TestReadTraceErrors(t *testing.T) {
	bad := []string{
		"1.0\t2\t10.0.0.1\t10.0.0.2\t6\t1\t2\t3\t0.1", // 9 columns
		"x\t2\t10.0.0.1\t10.0.0.2\t6\t1\t2\t3\t0.1\t100",
		"1.0\tx\t10.0.0.1\t10.0.0.2\t6\t1\t2\t3\t0.1\t100",
		"1.0\t2\t10.0.0\t10.0.0.2\t6\t1\t2\t3\t0.1\t100",
		"1.0\t2\t10.0.0.1\t10.0.0.2\t999\t1\t2\t3\t0.1\t100",
		"1.0\t2\t10.0.0.1\t10.0.0.2\t6\t99999\t2\t3\t0.1\t100",
		"1.0\t2\t10.0.0.1\t10.0.0.2\t6\t1\t2\tx\t0.1\t100",
	}
	for _, line := range bad {
		if _, err := ReadTrace(strings.NewReader(line)); err == nil {
			t.Fatalf("line %q must fail", line)
		}
	}
}

func TestReadTraceSkipsHeaderAndBlank(t *testing.T) {
	in := "# header\n\n1.5\t7\t10.0.0.1\t10.0.0.2\t6\t1000\t80\t3\t0.01\t800\n"
	flows, err := ReadTrace(strings.NewReader(in))
	if err != nil || len(flows) != 1 {
		t.Fatalf("flows=%d err=%v", len(flows), err)
	}
	f := flows[0]
	if f.Start != 1.5 || f.Ingress != 7 || f.Packets != 3 || f.Size != 800 {
		t.Fatalf("flow = %+v", f)
	}
	if f.Key[flowspace.FIPSrc] != 0x0A000001 || f.Key[flowspace.FTPDst] != 80 {
		t.Fatalf("key = %v", f.Key)
	}
}
