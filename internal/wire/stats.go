package wire

import (
	"sync"
	"sync/atomic"

	"difane/internal/core"
	"difane/internal/metrics"
)

// Measurement sharding: the wire data plane used to funnel every delivery
// and drop through one cluster-wide mutex, serializing all switches'
// packet handling on a single lock. Instead, each node now owns a
// nodeStats shard (plus one extra shard for injection-path accounting
// outside any node goroutine): the hot path touches only its own shard's
// atomics, and Measurements() merges the shards into one
// core.Measurements snapshot on read. The latency distributions need a
// slice append, so they sit behind a per-shard mutex — effectively
// single-writer, since a node's deliveries all happen on its own data
// goroutine.

// nodeStats is one shard of the cluster's hot-path measurement state.
// Each shard is separately heap-allocated so different nodes' counters
// do not share cache lines.
type nodeStats struct {
	delivered         atomic.Uint64
	setupsCompleted   atomic.Uint64
	redirects         atomic.Uint64
	dropPolicy        atomic.Uint64
	dropHole          atomic.Uint64
	dropQueue         atomic.Uint64
	dropUnreachable   atomic.Uint64
	dropRedirectShed  atomic.Uint64
	cacheInstallsShed atomic.Uint64
	failoversLocal    atomic.Uint64

	// latMu keeps the two distributions consistent as a pair and orders
	// their lazy first-Add initialization against concurrent readers.
	// Uncontended in steady state: only the owning node's data goroutine
	// records deliveries. (Dist itself is internally synchronized, so the
	// clones taken under this lock are about pairing, not safety.)
	latMu      sync.Mutex
	firstDelay metrics.Dist
	laterDelay metrics.Dist
}

// recordDelivery records one delivered packet's latency (seconds).
func (s *nodeStats) recordDelivery(latSec float64, detour bool) {
	s.latMu.Lock()
	if detour {
		s.firstDelay.Add(latSec)
	} else {
		s.laterDelay.Add(latSec)
	}
	s.latMu.Unlock()
	if detour {
		s.setupsCompleted.Add(1)
	}
	s.delivered.Add(1)
}

// recordDeliveryBatch records a burst's deliveries in one shard update:
// first holds the latencies (seconds) of detoured packets, later the rest.
// One latency-mutex acquisition and one add per counter, however large the
// burst.
func (s *nodeStats) recordDeliveryBatch(first, later []float64) {
	if len(first)+len(later) == 0 {
		return
	}
	s.latMu.Lock()
	for _, v := range first {
		s.firstDelay.Add(v)
	}
	for _, v := range later {
		s.laterDelay.Add(v)
	}
	s.latMu.Unlock()
	if len(first) > 0 {
		s.setupsCompleted.Add(uint64(len(first)))
	}
	s.delivered.Add(uint64(len(first) + len(later)))
}

// mergeInto folds the shard into a cluster-wide snapshot.
func (s *nodeStats) mergeInto(m *core.Measurements) {
	m.Delivered += s.delivered.Load()
	m.SetupsCompleted += s.setupsCompleted.Load()
	m.Redirects += s.redirects.Load()
	m.Drops.Policy += s.dropPolicy.Load()
	m.Drops.Hole += s.dropHole.Load()
	m.Drops.AuthorityQueue += s.dropQueue.Load()
	m.Drops.Unreachable += s.dropUnreachable.Load()
	m.Drops.RedirectShed += s.dropRedirectShed.Load()
	m.CacheInstallsShed += s.cacheInstallsShed.Load()
	m.FailoversLocal += s.failoversLocal.Load()

	s.latMu.Lock()
	first := s.firstDelay.Clone()
	later := s.laterDelay.Clone()
	s.latMu.Unlock()
	m.FirstPacketDelay.Merge(&first)
	m.LaterPacketDelay.Merge(&later)
}

// coldStats holds the control-plane counters: rare events (deaths,
// reconnects, outages) that never sit on the packet path, kept as plain
// cluster-wide atomics.
type coldStats struct {
	authorityDeaths       atomic.Uint64
	failoversPromoted     atomic.Uint64
	controlReconnects     atomic.Uint64
	controllerOutages     atomic.Uint64
	outageBuffered        atomic.Uint64
	outageDrained         atomic.Uint64
	outageDropped         atomic.Uint64
	staleInstallsRejected atomic.Uint64
	leaderElections       atomic.Uint64

	// haMu orders the lazy first-Add initialization of the two HA timing
	// distributions against concurrent Measurements readers (Dist is
	// internally synchronized once initialized).
	haMu sync.Mutex
	// failoverDetect samples fault→death-verdict latency (seconds).
	failoverDetect metrics.Dist
	// electionTime samples leader-kill→new-leader-seated latency (seconds).
	electionTime metrics.Dist
}

// recordDetection samples one fault→verdict detection latency.
func (s *coldStats) recordDetection(sec float64) {
	s.haMu.Lock()
	s.failoverDetect.Add(sec)
	s.haMu.Unlock()
}

// recordElection samples one leader-election duration.
func (s *coldStats) recordElection(sec float64) {
	s.haMu.Lock()
	s.electionTime.Add(sec)
	s.haMu.Unlock()
}

// mergeInto folds the cold counters into a snapshot.
func (s *coldStats) mergeInto(m *core.Measurements) {
	m.AuthorityDeaths += s.authorityDeaths.Load()
	m.FailoversPromoted += s.failoversPromoted.Load()
	m.ControlReconnects += s.controlReconnects.Load()
	m.ControllerOutages += s.controllerOutages.Load()
	m.OutageBuffered += s.outageBuffered.Load()
	m.OutageDrained += s.outageDrained.Load()
	m.OutageDropped += s.outageDropped.Load()
	m.StaleInstallsRejected += s.staleInstallsRejected.Load()
	m.LeaderElections += s.leaderElections.Load()

	s.haMu.Lock()
	detect := s.failoverDetect.Clone()
	elect := s.electionTime.Clone()
	s.haMu.Unlock()
	m.FailoverDetection.Merge(&detect)
	m.LeaderElection.Merge(&elect)
}
