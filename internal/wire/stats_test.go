package wire

import (
	"sync"
	"sync/atomic"
	"testing"

	"difane/internal/core"
	"difane/internal/flowspace"
)

// TestMeasurementsMergeIdentity floods an 8-switch cluster from concurrent
// injectors on every ingress while readers snapshot Measurements() mid-run,
// then checks the merged shards against the scencheck accounting identity:
// every injected packet is accounted exactly once across delivered and the
// drop buckets, and the latency distributions carry exactly one sample per
// delivered packet. A lost or double-counted update in the per-node shard
// merge would break the identity.
func TestMeasurementsMergeIdentity(t *testing.T) {
	const (
		injectors = 8
		perInj    = 500
	)
	c, err := NewCluster(ClusterConfig{
		Switches:    []uint32{0, 1, 2, 3, 4, 5, 6, 7},
		Authorities: []uint32{2, 5},
		Policy:      testPolicy(),
		Strategy:    core.StrategyExact,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	d := Deploy(c)

	var stop atomic.Bool
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() { // concurrent snapshot readers: merge must be safe and monotone
			defer readers.Done()
			var lastDelivered uint64
			for !stop.Load() {
				m := d.Measurements()
				if m.Delivered < lastDelivered {
					t.Error("Delivered went backwards across snapshots")
					return
				}
				lastDelivered = m.Delivered
			}
		}()
	}

	var wg sync.WaitGroup
	for g := 0; g < injectors; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ports := [3]uint64{80, 22, 443} // forward, policy-drop, catch-all
			for i := 0; i < perInj; i++ {
				var k flowspace.Key
				k[flowspace.FIPSrc] = uint64(g)<<16 | uint64(i%37)
				k[flowspace.FTPDst] = ports[i%len(ports)]
				d.InjectPacket(0, uint32(g), k, 100, 0)
			}
		}(g)
	}
	wg.Wait()
	d.Run(30)
	stop.Store(true)
	readers.Wait()

	m := d.Measurements()
	accounted := m.Delivered + m.Drops.Policy + m.Drops.Hole +
		m.Drops.AuthorityQueue + m.Drops.RedirectShed + m.Drops.Unreachable
	if want := uint64(injectors * perInj); accounted != want {
		t.Fatalf("accounting identity broken: injected %d, accounted %d (%+v)",
			want, accounted, m.Drops)
	}
	if samples := uint64(m.FirstPacketDelay.N() + m.LaterPacketDelay.N()); samples != m.Delivered {
		t.Fatalf("latency samples = %d, delivered = %d: shard merge lost or duplicated samples",
			samples, m.Delivered)
	}
}
