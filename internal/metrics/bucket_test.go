package metrics

import (
	"testing"
	"time"
)

func TestTokenBucketBurstThenRefill(t *testing.T) {
	b := NewTokenBucket(10, 3)
	start := b.last // exact clock base: refill arithmetic is deterministic
	for i := 0; i < 3; i++ {
		if !b.AllowAt(start) {
			t.Fatalf("burst token %d refused", i)
		}
	}
	if b.AllowAt(start) {
		t.Fatal("admitted past the burst with no refill")
	}
	// 100ms at 10 tokens/s refills exactly one token.
	later := start.Add(100 * time.Millisecond)
	if !b.AllowAt(later) {
		t.Fatal("refilled token refused")
	}
	if b.AllowAt(later) {
		t.Fatal("admitted two events off one refilled token")
	}
}

func TestTokenBucketCapsAtBurst(t *testing.T) {
	b := NewTokenBucket(1000, 2)
	// A long idle period must not accumulate more than the burst.
	later := b.last.Add(time.Hour)
	admitted := 0
	for i := 0; i < 10; i++ {
		if b.AllowAt(later) {
			admitted++
		}
	}
	if admitted != 2 {
		t.Fatalf("admitted %d, want burst cap 2", admitted)
	}
}

func TestNilBucketAdmitsEverything(t *testing.T) {
	var b *TokenBucket
	for i := 0; i < 100; i++ {
		if !b.Allow() {
			t.Fatal("nil bucket must admit")
		}
	}
	if NewTokenBucket(0, 5) != nil {
		t.Fatal("zero rate must mean unlimited (nil)")
	}
}
