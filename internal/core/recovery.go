package core

import (
	"encoding/json"
	"fmt"
	"sort"

	"difane/internal/flowspace"
	"difane/internal/journal"
	"difane/internal/proto"
	"difane/internal/tcam"
)

// ControllerState is the controller's durable state: everything a restarted
// controller needs to pick up exactly where its predecessor stopped. It is
// what the journal records on every commit and what recovery replays.
type ControllerState struct {
	Epoch         uint64           `json:"epoch"`
	PolicyVersion int              `json:"policy_version"`
	Generation    uint64           `json:"generation"`
	PinRouting    bool             `json:"pin_routing,omitempty"`
	Policy        []flowspace.Rule `json:"policy"`
	Assignment    Assignment       `json:"assignment"`
}

// stateKind is the WAL record kind for full controller states. Each commit
// journals the complete state rather than a delta: states are small (the
// policy plus the partition tree), and full records make replay trivially
// idempotent — the last valid record wins.
const stateKind = "state"

func (c *Controller) currentState() ControllerState {
	n := c.net
	return ControllerState{
		Epoch:         c.Epoch,
		PolicyVersion: c.PolicyVersion,
		Generation:    c.gen,
		PinRouting:    n.pinRouting,
		Policy:        append([]flowspace.Rule(nil), n.Policy...),
		Assignment:    n.Assignment,
	}
}

// logState appends the current state to the journal, if one is attached.
// Append failures land in JournalErr because commits run inside scheduled
// callbacks that cannot return errors.
func (c *Controller) logState() {
	if c.jour == nil {
		return
	}
	if _, err := c.jour.Append(stateKind, c.currentState()); err != nil {
		c.JournalErr = err
	}
}

// Checkpoint folds the journal into a snapshot of the current state,
// truncating the WAL. Call it periodically to bound recovery time.
func (c *Controller) Checkpoint() error {
	if c.jour == nil {
		return fmt.Errorf("core: controller has no journal")
	}
	return c.jour.WriteSnapshot(c.currentState())
}

// Journal returns the attached journal, or nil.
func (c *Controller) Journal() *journal.Journal { return c.jour }

// NewControllerWithJournal attaches a fresh controller to the network and
// to a journal at dir: every committed policy update, rebalance, and
// recovery is durably recorded. The initial state is journaled immediately
// so a crash before the first update still recovers the running epoch.
func NewControllerWithJournal(n *Network, dir string) (*Controller, error) {
	j, err := journal.Open(dir)
	if err != nil {
		return nil, err
	}
	c := NewController(n)
	c.jour = j
	c.logState()
	if c.JournalErr != nil {
		j.Close()
		return nil, c.JournalErr
	}
	return c, nil
}

// AttachJournal starts journaling an existing controller to dir: the
// current state is recorded immediately, and every later commit follows.
// It refuses to replace a journal that is already attached.
func (c *Controller) AttachJournal(dir string) error {
	if c.jour != nil {
		return fmt.Errorf("core: controller already has a journal at %s", c.jour.Dir())
	}
	j, err := journal.Open(dir)
	if err != nil {
		return err
	}
	c.jour = j
	c.logState()
	if c.JournalErr != nil {
		c.jour = nil
		j.Close()
		return c.JournalErr
	}
	return nil
}

// replayState loads the newest durable ControllerState from an open
// journal: snapshot first, then every valid WAL state record (last wins).
func replayState(j *journal.Journal) (ControllerState, bool, error) {
	var st ControllerState
	found := false
	_, hadSnap, err := j.Replay(&st, func(rec journal.Record) error {
		if rec.Kind != stateKind {
			return nil
		}
		var s ControllerState
		if err := json.Unmarshal(rec.Data, &s); err != nil {
			return fmt.Errorf("core: journal record %d: %w", rec.Seq, err)
		}
		st = s
		found = true
		return nil
	})
	if err != nil {
		return ControllerState{}, false, err
	}
	return st, found || hadSnap, nil
}

// LoadState reads the newest durable controller state from a journal
// directory without attaching to it. ok is false when the journal holds no
// state (fresh directory).
func LoadState(dir string) (ControllerState, bool, error) {
	j, err := journal.Open(dir)
	if err != nil {
		return ControllerState{}, false, err
	}
	defer j.Close()
	return replayState(j)
}

// RecoveryReport says what a journal recovery found and repaired.
type RecoveryReport struct {
	// HadState is false when the journal was empty (fresh start).
	HadState bool
	// Installed / Deleted count the authority rules reconciliation had to
	// add or withdraw. Both are zero when the switches never diverged from
	// the journaled state — the common crash-restart case.
	Installed int
	Deleted   int
}

// NewControllerFromJournal restarts a controller from its journal: the
// durable state (policy, assignment, generation) is replayed, the fencing
// epoch is bumped past the dead controller's, and the live switch tables
// are *reconciled* against the recovered state rather than cleared and
// reinstalled — ingress caches survive, and authority rules that never
// diverged keep their counters. The bumped epoch is journaled before
// returning, so a second crash cannot resurrect the old epoch.
func NewControllerFromJournal(n *Network, dir string) (*Controller, RecoveryReport, error) {
	j, err := journal.Open(dir)
	if err != nil {
		return nil, RecoveryReport{}, err
	}
	st, found, err := replayState(j)
	if err != nil {
		j.Close()
		return nil, RecoveryReport{}, err
	}
	c := NewController(n)
	c.jour = j
	var rep RecoveryReport
	if found {
		rep.HadState = true
		c.Epoch = st.Epoch + 1
		c.PolicyVersion = st.PolicyVersion
		c.gen = st.Generation
		n.Policy = append([]flowspace.Rule(nil), st.Policy...)
		n.Assignment = st.Assignment
		n.pinRouting = st.PinRouting
		rep.Installed, rep.Deleted = c.Reconcile()
	}
	c.logState()
	if c.JournalErr != nil {
		err := c.JournalErr
		j.Close()
		return nil, rep, err
	}
	return c, rep, nil
}

// Reconcile makes every switch's installed state match the controller's
// desired state while leaving already-correct entries untouched: ingress
// caches survive, matching authority rules keep their counters, and only
// genuinely stale rules are withdrawn or missing ones added. It is the
// recovery path's alternative to tearing everything down and reinstalling,
// and is also the repair for any detected divergence between controller
// intent and switch reality. Returns the authority rules added and the
// stale rules removed.
func (c *Controller) Reconcile() (installed, deleted int) {
	n := c.net
	now := n.Eng.Now()
	// Desired authority rules per host, keyed by banded entry ID (the ID
	// they carry once installed) so clips of one rule from two partitions
	// hosted on the same switch stay distinct.
	want := make(map[uint32]map[uint64]flowspace.Rule)
	for i, p := range n.Assignment.Partitions {
		for _, host := range n.Assignment.ReplicasFor(i) {
			m := want[host]
			if m == nil {
				m = make(map[uint64]flowspace.Rule, len(p.Rules))
				want[host] = m
			}
			for _, r := range p.Rules {
				r.ID = AuthorityEntryID(i, r.ID)
				m[r.ID] = r
			}
		}
	}
	// Partition rules use fixed per-partition IDs; anything beyond the
	// current partition count is a leftover from a larger old assignment.
	maxPartID := partitionIDBase + uint64(2*len(n.Assignment.Partitions))
	// Iterate switches and desired rules in sorted order: with a
	// capacity-bounded authority table, install order decides which rules
	// land before ErrFull, so map-ordered iteration would make recovery
	// nondeterministic across runs of the same seed.
	swIDs := make([]uint32, 0, len(n.Switches))
	for id := range n.Switches {
		swIDs = append(swIDs, id)
	}
	sortU32(swIDs)
	for _, id := range swIDs {
		sw := n.Switches[id]
		desired := want[id]
		tb := sw.Table(proto.TableAuthority)
		deleted += tb.DeleteWhere(func(e tcam.Entry) bool {
			r, ok := desired[e.Rule.ID]
			return !ok || r != e.Rule
		})
		ruleIDs := make([]uint64, 0, len(desired))
		for rid := range desired {
			ruleIDs = append(ruleIDs, rid)
		}
		sort.Slice(ruleIDs, func(i, j int) bool { return ruleIDs[i] < ruleIDs[j] })
		for _, rid := range ruleIDs {
			r := desired[rid]
			if _, _, ok := tb.Counters(r.ID); ok {
				continue // already installed and identical: keep counters
			}
			// r.ID already carries the partition band, so install directly.
			mod := proto.FlowMod{Table: proto.TableAuthority, Op: proto.OpAdd, Rule: r}
			if sw.ApplyFlowMod(now, &mod) == nil {
				installed++
			}
		}
		deleted += sw.Table(proto.TablePartition).DeleteWhere(func(e tcam.Entry) bool {
			return e.Rule.ID >= maxPartID
		})
	}
	n.M.PolicyRuleInstalls += uint64(installed)
	n.M.PolicyRuleDeletes += uint64(deleted)
	// Rebuild the miss handlers from the recovered assignment and refresh
	// partition rules (fixed IDs replace in place — churn-free when the
	// targets are unchanged).
	n.authorityAt = make(map[uint32][]*Authority)
	for i, p := range n.Assignment.Partitions {
		for _, host := range n.Assignment.ReplicasFor(i) {
			auth := NewAuthority(host, p, n.cfg.Strategy)
			auth.RegionIndex = i
			n.configureAuthority(auth)
			n.authorityAt[host] = append(n.authorityAt[host], auth)
		}
	}
	n.installPartitionRules()
	return installed, deleted
}
