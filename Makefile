# The one-command check CI and contributors run before merging.
.PHONY: verify fmt vet build test bench perf-smoke telemetry-smoke forensics-smoke cache-ablation-smoke trace-demo fuzz-smoke check chaos-smoke soak soak-smoke soak-diff regen-golden

verify: fmt vet build test fuzz-smoke

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	go vet ./...

build:
	go build ./...

test:
	go test -race ./...

bench:
	go test -bench=. -benchmem ./...

# Quick wire-mode perf sweep gated against the committed baseline — the
# same command CI's perf-smoke job runs (>15% regression fails, and the
# cache-hit wire cells must hold the absolute allocs/op budget). The
# report lands in gitignored bench-out/; refreshing the committed baseline
# is an explicit act: difane-bench -wire -out BENCH_wire.baseline.json.
perf-smoke:
	go run ./cmd/difane-bench -wire -quick -compare BENCH_wire.baseline.json -alloc-budget 3

# Price the telemetry layer: the cache-hit/wire cell with tracing off and
# on. Tracing-off must stay within 2% of the committed baseline — the
# flight recorder is one atomic load when disabled.
telemetry-smoke:
	go run ./cmd/difane-bench -telemetry-smoke -quick \
		-compare BENCH_wire.baseline.json

# Price journey sampling: the cache-hit/wire cell with sampling off (held
# to the same 2% baseline gate — the sampler is one atomic load when off)
# and at 1-in-256 (held to 5% of the sampling-off run). On failure the
# journeys a sampled run assembles land in bench-out/ for CI's artifact
# upload.
forensics-smoke:
	go run ./cmd/difane-bench -forensics-smoke -quick \
		-compare BENCH_wire.baseline.json

# The adaptive-caching gate: the short F6b eviction ablation on a fixed
# seed — a flash-crowd + scan workload under hard TCAM budgets — fails
# unless the cost-aware policy's miss rate is at or below LRU's at every
# budget. On failure the rendered table lands in bench-out/ for CI's
# artifact upload.
cache-ablation-smoke:
	go run ./cmd/difane-bench -cache-ablation-smoke -quick

# Boot an 8-switch wire cluster with the telemetry endpoint live, scrape
# it, and shut down — the quickest look at the ops surface.
trace-demo:
	@go run ./cmd/difanectl serve -telemetry 127.0.0.1:9090 -duration 8s & \
	sleep 4; \
	echo "--- /metrics (excerpt) ---"; \
	curl -s http://127.0.0.1:9090/metrics | grep -E '^difane_(delivered|dropped|trace)' ; \
	echo "--- /trace (last 8 events) ---"; \
	curl -s 'http://127.0.0.1:9090/trace?limit=8'; \
	wait

# Quick differential sweep: seeded scenarios through all three deployments
# (sim, baseline, wire), every packet verdict diffed against the oracle.
check:
	go test ./internal/scencheck -run TestDifferential -seeds 16

# Chaos smoke under the race detector: differential scenarios that kill
# switches AND controllers mid-traffic (BFD detection, backup promotion,
# leader elections, epoch fencing — zero verdict divergence allowed),
# plus the wire HA suite with its leader-churn goroutine-leak check and
# the bench guard holding BFD detection at ≤ 1/10th of the heartbeat's.
chaos-smoke:
	go test -race ./internal/scencheck -run TestChaosSmoke -timeout 10m
	go test -race ./internal/wire -timeout 10m \
		-run 'TestLeaderKillAutoFailover|TestKillAllReplicasNeedsRestore|TestLeaderChurnNoGoroutineLeak|TestStaleLeaderInstallFenced|TestBFDDetectionTenfoldFaster|TestJournalReplicationAcrossElection'

# Subscriber-scale soak — not part of tier-1. Streams ≥1M modeled
# subscriber sessions (Poisson churn, host mobility, a flash crowd and a
# cache-thrashing scan) through a live wire cluster, sampling 1-in-4096
# packet verdicts against the oracle; exits nonzero on any divergence or
# accounting-identity break. The JSON report (phase summaries plus
# miss-rate / TCAM-occupancy / redirect-load time series) lands in
# bench-out/.
soak:
	go run ./cmd/difane-soak -subscribers 2097152 -rate 25000 -duration 50 \
		-sample 4096 -out bench-out/SOAK_report.json

# CI-sized soak: the same engine with flash-crowd and churn phases on a
# 30-second wall budget, gated on zero sampled-verdict divergences plus
# the forensics gates — 1-in-64 journey sampling must assemble ≥ 99% of
# sampled packets into complete journeys, and no critical SLO rule may be
# firing at the end. CI uploads bench-out/SOAK_smoke.json when it fails.
soak-smoke:
	go run ./cmd/difane-soak -smoke -subscribers 262144 -rate 4000 \
		-duration 16 -sample 1024 -wall-budget 30s \
		-trace-sample 64 -journey-gate 0.99 \
		-out bench-out/SOAK_smoke.json

# Long differential soak — not part of tier-1. Failing-seed reports land in
# artifacts/ with a minimal shrunk repro each.
SOAK_SEEDS ?= 256
soak-diff:
	go test ./internal/scencheck -run TestDifferential -seeds $(SOAK_SEEDS) \
		-artifacts artifacts -timeout 30m

# Refresh the experiment golden outputs after an intentional change.
regen-golden:
	go test ./experiments -run TestGoldenOutputs -update-golden

# Short fuzz runs over the decoders that face untrusted bytes: decode
# must return an error, never panic or over-allocate.
fuzz-smoke:
	go test -run=^$$ -fuzz=FuzzDecodeFrame -fuzztime=10s ./internal/proto/
	go test -run=^$$ -fuzz=FuzzReadMessage -fuzztime=10s ./internal/proto/
	go test -run=^$$ -fuzz=FuzzDecodeWire -fuzztime=10s ./internal/packet/
	go test -run=^$$ -fuzz=FuzzParseRule -fuzztime=10s ./internal/policyio/
