package main

// `difanectl journey` renders end-to-end packet journeys assembled by a
// cluster's /journeys endpoint: every span a sampled packet left across
// the nodes it touched, joined on trace ID and told as one story.

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"

	"difane/internal/telemetry"
)

// journeysResponse mirrors telemetry.JourneysResponse for decoding.
type journeysResponse struct {
	NowNS    int64                   `json:"now_ns"`
	Enabled  bool                    `json:"enabled"`
	Sampled  bool                    `json:"sampled"`
	Stats    telemetry.JourneyStats  `json:"stats"`
	Journeys []telemetry.JourneyJSON `json:"journeys"`
}

func fetchJourneys(addr string, params url.Values) (*journeysResponse, error) {
	u := "http://" + addr + "/journeys"
	if len(params) > 0 {
		u += "?" + params.Encode()
	}
	resp, err := httpClient().Get(u)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var jr journeysResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		return nil, fmt.Errorf("decoding /journeys response: %w", err)
	}
	return &jr, nil
}

// runJourney is `difanectl journey`: answer "why was this packet slow or
// dropped" in one command.
func runJourney(args []string) int {
	fs := flag.NewFlagSet("journey", flag.ExitOnError)
	addr := fs.String("addr", "", "telemetry endpoint (host:port), required")
	flow := fs.Uint64("flow", 0, "only journeys of this flow hash")
	trace := fs.Uint64("trace", 0, "only the journey with this trace ID")
	dropped := fs.Bool("dropped", false, "only journeys that ended in a drop or shed")
	slowest := fs.Bool("slowest", false, "order by delivery latency, slowest first")
	limit := fs.Int("limit", 16, "max journeys to print (0 = all)")
	asJSON := fs.Bool("json", false, "print the raw /journeys response")
	_ = fs.Parse(args)
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "journey: -addr is required (see `difanectl serve`)")
		return 2
	}

	params := url.Values{}
	if *flow != 0 {
		params.Set("flow", fmt.Sprint(*flow))
	}
	if *trace != 0 {
		params.Set("trace", fmt.Sprint(*trace))
	}
	if *dropped {
		params.Set("dropped", "1")
	}
	if *slowest {
		params.Set("slowest", "1")
	}
	params.Set("limit", fmt.Sprint(*limit))

	jr, err := fetchJourneys(*addr, params)
	if err != nil {
		fmt.Fprintln(os.Stderr, "journey:", err)
		return 1
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(jr)
		return 0
	}
	if !jr.Enabled {
		fmt.Println("(tracing is disabled on this cluster; enable Telemetry.Tracing and set TraceSample)")
	}
	if !jr.Sampled {
		fmt.Println("no sampled journeys (set Telemetry.TraceSample, e.g. 64 for 1-in-64)")
		return 0
	}
	s := jr.Stats
	fmt.Printf("%d journeys: %d complete, %d gapped (ring wrapped), %d in flight, %d unexplained (%.1f%% completeness)\n",
		s.Total, s.Complete, s.Gapped, s.InFlight, s.Unexplained, 100*s.Completeness())
	for _, j := range jr.Journeys {
		printJourney(j)
	}
	return 0
}

// printJourney renders one journey: a summary header plus its spans in
// global timestamp order.
func printJourney(j telemetry.JourneyJSON) {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %016x", j.Trace)
	if j.Src != "" || j.Dst != "" {
		fmt.Fprintf(&b, "  %s -> %s", j.Src, j.Dst)
	}
	switch {
	case j.Complete && !j.Dropped:
		fmt.Fprintf(&b, "  delivered in %s", time.Duration(j.LatencyNS))
	case j.Complete:
		fmt.Fprintf(&b, "  %s after %s", j.Terminal, time.Duration(j.LatencyNS))
	case j.Gap:
		b.WriteString("  incomplete (ring wrapped over its window)")
	case j.InFlight:
		b.WriteString("  in flight")
	default:
		b.WriteString("  incomplete (unexplained)")
	}
	fmt.Println(b.String())
	for _, e := range orderEvents(j.Events) {
		fmt.Println("  " + formatEvent(e))
	}
}
