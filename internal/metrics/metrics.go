// Package metrics collects and renders the statistics the evaluation
// harness reports: sample distributions (CDFs, percentiles), fixed-width
// tables, and simple x/y series in the text form the benchmark binary
// prints.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Dist accumulates float64 samples and answers distribution queries.
type Dist struct {
	samples []float64
	sorted  bool
	sum     float64
}

// Add appends a sample.
func (d *Dist) Add(v float64) {
	d.samples = append(d.samples, v)
	d.sorted = false
	d.sum += v
}

// N returns the sample count.
func (d *Dist) N() int { return len(d.samples) }

// Clone returns an independent copy. Query methods sort samples in place,
// so a Dist shared across goroutines must be cloned under the writer's
// lock before being read elsewhere.
func (d *Dist) Clone() Dist {
	return Dist{
		samples: append([]float64(nil), d.samples...),
		sorted:  d.sorted,
		sum:     d.sum,
	}
}

// Sum returns the sum of all samples.
func (d *Dist) Sum() float64 { return d.sum }

// Merge appends all of o's samples into d. The caller must ensure o is not
// concurrently mutated (clone it under its writer's lock first, or merge
// shards that have quiesced).
func (d *Dist) Merge(o *Dist) {
	if o == nil || len(o.samples) == 0 {
		return
	}
	d.samples = append(d.samples, o.samples...)
	d.sorted = false
	d.sum += o.sum
}

// Mean returns the sample mean (0 with no samples).
func (d *Dist) Mean() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	return d.sum / float64(len(d.samples))
}

func (d *Dist) ensureSorted() {
	if !d.sorted {
		sort.Float64s(d.samples)
		d.sorted = true
	}
}

// Percentile returns the p-th percentile (p in [0,100]) by nearest-rank,
// or 0 with no samples.
func (d *Dist) Percentile(p float64) float64 {
	if len(d.samples) == 0 {
		return 0
	}
	d.ensureSorted()
	if p <= 0 {
		return d.samples[0]
	}
	if p >= 100 {
		return d.samples[len(d.samples)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(d.samples))))
	if rank < 1 {
		rank = 1
	}
	return d.samples[rank-1]
}

// Min and Max return the extremes (0 with no samples).
func (d *Dist) Min() float64 { return d.Percentile(0) }

// Max returns the largest sample (0 with no samples).
func (d *Dist) Max() float64 { return d.Percentile(100) }

// CDF returns (value, fraction ≤ value) pairs at the given fractions
// (each in [0,1]).
func (d *Dist) CDF(fractions []float64) [][2]float64 {
	out := make([][2]float64, 0, len(fractions))
	for _, f := range fractions {
		out = append(out, [2]float64{d.Percentile(f * 100), f})
	}
	return out
}

// Quantiles is the standard set of CDF points the harness prints.
var Quantiles = []float64{0.01, 0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.0}

// --- Rendering ---------------------------------------------------------------

// Table renders rows with aligned columns. The first row is the header.
type Table struct {
	rows [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

// AddRowf appends a row formatting each value with %v.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with two-space gutters.
func (t *Table) String() string {
	if len(t.rows) == 0 {
		return ""
	}
	cols := 0
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	for ri, r := range t.rows {
		for i, c := range r {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(r)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
		if ri == 0 {
			total := 0
			for i, w := range widths {
				if i > 0 {
					total += 2
				}
				total += w
			}
			b.WriteString(strings.Repeat("-", total))
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// FormatFloat renders a float compactly: integers without decimals, small
// values with enough precision to be readable.
func FormatFloat(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	case math.Abs(v) >= 0.01:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// FormatDuration renders seconds in engineering units (µs/ms/s).
func FormatDuration(sec float64) string {
	switch {
	case sec < 1e-3:
		return fmt.Sprintf("%.1fµs", sec*1e6)
	case sec < 1:
		return fmt.Sprintf("%.2fms", sec*1e3)
	default:
		return fmt.Sprintf("%.3fs", sec)
	}
}

// Series renders an x→y mapping as "x<tab>y" lines with a header, the form
// the figure benches print for plotting.
type Series struct {
	Name   string
	XLabel string
	YLabel string
	points [][2]float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.points = append(s.points, [2]float64{x, y}) }

// Points returns the accumulated points.
func (s *Series) Points() [][2]float64 { return s.points }

// String renders the series.
func (s *Series) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# series %s: %s vs %s\n", s.Name, s.YLabel, s.XLabel)
	for _, p := range s.points {
		fmt.Fprintf(&b, "%s\t%s\n", FormatFloat(p[0]), FormatFloat(p[1]))
	}
	return b.String()
}

// Counter is a labeled monotonically increasing count.
type Counter struct {
	Name  string
	Value uint64
}

// Inc adds n.
func (c *Counter) Inc(n uint64) { c.Value += n }
