package core

import (
	"testing"

	"difane/internal/flowspace"
)

// Regression tests for the timeout-propagation bug: cfg.CacheIdle/CacheHard
// used to be copied into each Authority once at build time, so changing
// them later silently kept issuing the old timeouts — and even a direct
// Authority field write kept serving stale FlowMods out of the miss memo.

func missIdle(t *testing.T, a *Authority, k flowspace.Key) float64 {
	t.Helper()
	res := a.HandleMiss(k)
	if !res.OK || len(res.CacheMods) == 0 {
		t.Fatalf("HandleMiss(%v) = %+v, want cache mods", k, res)
	}
	return res.CacheMods[0].Idle
}

func TestSetCacheTimeoutsPropagatesToAuthorities(t *testing.T) {
	n := testNet(t, NetworkConfig{CacheIdle: 5, CacheHard: 60})
	auths := n.AllAuthorities()
	if len(auths) == 0 {
		t.Fatal("no authorities")
	}
	k := flowKey(1, 80)
	if got := missIdle(t, auths[0], k); got != 5 {
		t.Fatalf("initial miss Idle = %g, want 5", got)
	}

	n.SetCacheTimeouts(1.5, 30)
	for _, a := range auths {
		if a.CacheIdleTimeout != 1.5 || a.CacheHardTimeout != 30 {
			t.Fatalf("authority %d timeouts = (%g,%g), want (1.5,30)",
				a.SwitchID, a.CacheIdleTimeout, a.CacheHardTimeout)
		}
	}
	// The same key was already memoized: the new timeout must reach its
	// FlowMods anyway (the setter flushes the memo).
	if got := missIdle(t, auths[0], k); got != 1.5 {
		t.Fatalf("post-update miss Idle = %g, want 1.5 (memo served stale timeouts)", got)
	}
}

func TestControllerSetCacheTimeouts(t *testing.T) {
	n := testNet(t, NetworkConfig{CacheIdle: 5})
	c := NewController(n)
	c.SetCacheTimeouts(2, 0)
	if got := missIdle(t, n.AllAuthorities()[0], flowKey(1, 80)); got != 2 {
		t.Fatalf("miss Idle = %g, want 2", got)
	}
	if n.cfg.CacheIdle != 2 {
		t.Fatalf("cfg.CacheIdle = %g, want 2 (rebuilt authorities would revert)", n.cfg.CacheIdle)
	}
}

func TestAuthoritySetCacheTimeoutsFlushesMemo(t *testing.T) {
	n := testNet(t, NetworkConfig{CacheIdle: 5})
	a := n.AllAuthorities()[0]
	k := flowKey(9, 80)
	idBefore := a.HandleMiss(k).CacheMods[0].Rule.ID

	// No-op set: memo intact, the generated rule ID is stable.
	a.SetCacheTimeouts(5, 0)
	if id := a.HandleMiss(k).CacheMods[0].Rule.ID; id != idBefore {
		t.Fatalf("no-op SetCacheTimeouts flushed the memo (rule ID %d → %d)", idBefore, id)
	}

	a.SetCacheTimeouts(1, 0)
	if got := missIdle(t, a, k); got != 1 {
		t.Fatalf("miss Idle after change = %g, want 1", got)
	}
}

func TestRegionIndexSetOnAllConstructionPaths(t *testing.T) {
	n := testNet(t, NetworkConfig{})
	check := func(stage string) {
		t.Helper()
		for _, a := range n.AllAuthorities() {
			if a.RegionIndex < 0 || a.RegionIndex >= len(n.Assignment.Partitions) {
				t.Fatalf("%s: authority on %d has RegionIndex %d", stage, a.SwitchID, a.RegionIndex)
			}
			if n.Assignment.Partitions[a.RegionIndex].Region != a.Partition.Region {
				t.Fatalf("%s: RegionIndex %d does not match the handler's region", stage, a.RegionIndex)
			}
		}
	}
	check("initial install")
	c := NewController(n)
	if _, err := c.UpdatePolicy(n.Policy); err != nil {
		t.Fatal(err)
	}
	n.Run(1)
	check("after UpdatePolicy")
	c.RebalanceByLoad()
	check("after RebalanceByLoad")
}
