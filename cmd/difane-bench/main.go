// Command difane-bench regenerates every table and figure of the DIFANE
// evaluation (see DESIGN.md §3 for the experiment index) and prints them
// as text tables/series.
//
// Usage:
//
//	difane-bench [-quick] [-only T1,F1,...] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"difane/experiments"
)

type renderer interface{ Render() string }

func main() {
	quick := flag.Bool("quick", false, "run reduced-scale workloads")
	only := flag.String("only", "", "comma-separated experiment IDs to run (default all)")
	seed := flag.Int64("seed", 42, "generator seed")
	flag.Parse()

	opts := experiments.Bench()
	if *quick {
		opts = experiments.Quick()
	}
	opts.Seed = *seed

	all := []struct {
		id  string
		run func(experiments.Options) renderer
	}{
		{"T1", func(o experiments.Options) renderer { return experiments.TableNetworks(o) }},
		{"F1", func(o experiments.Options) renderer { return experiments.FigFirstPacketDelay(o) }},
		{"F2", func(o experiments.Options) renderer { return experiments.FigThroughput(o) }},
		{"F3", func(o experiments.Options) renderer { return experiments.FigAuthorityScaling(o) }},
		{"F4", func(o experiments.Options) renderer { return experiments.FigPartitionTCAM(o) }},
		{"F5", func(o experiments.Options) renderer { return experiments.FigSplitOverhead(o) }},
		{"F6", func(o experiments.Options) renderer { return experiments.FigCacheMiss(o) }},
		{"F7", func(o experiments.Options) renderer { return experiments.FigStretch(o) }},
		{"F8", func(o experiments.Options) renderer { return experiments.FigFailover(o) }},
		{"F9", func(o experiments.Options) renderer { return experiments.FigPolicyChange(o) }},
		{"F10", func(o experiments.Options) renderer { return experiments.FigCacheTimeout(o) }},
		{"F11", func(o experiments.Options) renderer { return experiments.FigControlLoad(o) }},
		{"F12", func(o experiments.Options) renderer { return experiments.FigLinkLoad(o) }},
		{"A1", func(o experiments.Options) renderer { return experiments.AblationCacheStrategy(o) }},
		{"A2", func(o experiments.Options) renderer { return experiments.AblationPartitioner(o) }},
		{"A3", func(o experiments.Options) renderer { return experiments.AblationEviction(o) }},
		{"A4", func(o experiments.Options) renderer { return experiments.AblationRebalance(o) }},
		{"W3", func(o experiments.Options) renderer { return experiments.WireRobustness(o) }},
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	ran := 0
	for _, exp := range all {
		if len(want) > 0 && !want[exp.id] {
			continue
		}
		start := time.Now()
		result := exp.run(opts)
		fmt.Println(result.Render())
		fmt.Printf("(%s completed in %v)\n\n", exp.id, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiments matched -only=%q\n", *only)
		os.Exit(2)
	}
}
