package wire

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"difane/internal/core"
	"difane/internal/telemetry"
)

// newForensicsCluster boots a traced cluster sampling every packet, with
// the HTTP telemetry surface live.
func newForensicsCluster(t *testing.T) *Cluster {
	t.Helper()
	c, err := NewCluster(ClusterConfig{
		Switches:    []uint32{0, 1, 2, 3, 4},
		Authorities: []uint32{2},
		Policy:      testPolicy(),
		Strategy:    core.StrategyCover,
		Telemetry: TelemetryConfig{
			Addr: "127.0.0.1:0", Tracing: true, TraceSample: 1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestJourneyAssemblesRedirectedFlow drives the canonical first-packet
// detour and asserts journey assembly joins the per-node spans into one
// complete causal story: ingress → redirect → authority resolution →
// delivered, with the cache install riding the same trace.
func TestJourneyAssemblesRedirectedFlow(t *testing.T) {
	c := newForensicsCluster(t)
	h := httpHeader(1)

	c.Inject(0, h, 100)
	awaitDelivery(t, c)

	js, stats := c.Journeys(telemetry.JourneyFilter{Flow: flowOf(&h).Hash})
	if stats.Total < 1 {
		t.Fatalf("no journeys assembled: %+v", stats)
	}
	if len(js) != 1 {
		t.Fatalf("want 1 journey for the flow, got %d", len(js))
	}
	j := js[0]
	if !j.Complete || j.Dropped {
		t.Fatalf("journey not complete+delivered: %+v", j)
	}
	if j.Terminal != "delivered" || j.LatencyNS <= 0 {
		t.Fatalf("terminal = %q latency = %d", j.Terminal, j.LatencyNS)
	}
	kinds := make(map[telemetry.EventKind]*telemetry.Event, len(j.Events))
	for i := range j.Events {
		kinds[j.Events[i].Kind] = &j.Events[i]
	}
	ing, ok := kinds[telemetry.EvIngress]
	if !ok || ing.Node != 0 {
		t.Fatalf("missing ingress span at node 0: %+v", j.Events)
	}
	rd, ok := kinds[telemetry.EvRedirect]
	if !ok || rd.Node != 0 || rd.Peer != 2 {
		t.Fatalf("missing redirect span 0 -> 2: %+v", j.Events)
	}
	auth, ok := kinds[telemetry.EvAuthority]
	if !ok || auth.Node != 2 {
		t.Fatalf("missing authority span at node 2: %+v", j.Events)
	}
	v, ok := kinds[telemetry.EvVerdict]
	if !ok || v.Node != 4 || v.Verdict != telemetry.VDelivered {
		t.Fatalf("missing delivered verdict at egress 4: %+v", j.Events)
	}
	// The spans must already be in causal (timestamp) order.
	for i := 1; i < len(j.Events); i++ {
		if j.Events[i-1].TS > j.Events[i].TS {
			t.Fatalf("journey events out of order: %+v", j.Events)
		}
	}
}

// TestJourneySamplingRecordsOnlySampledPackets checks the sampled-mode
// recording discipline: with 1-in-N sampling active, unsampled packets
// must leave no spans (the whole point of sampling is to not pay for
// them), while every sampled packet still assembles completely.
func TestJourneySamplingRecordsOnlySampledPackets(t *testing.T) {
	c := newForensicsCluster(t)
	c.SetTraceSample(1 << 30) // effectively: nothing is sampled
	h := httpHeader(3)
	c.Inject(0, h, 100)
	awaitDelivery(t, c)
	if evs := c.TraceEvents(telemetry.Filter{Flow: flowOf(&h).Hash}); len(evs) != 0 {
		t.Fatalf("unsampled packet left %d spans: %+v", len(evs), evs)
	}
	_, stats := c.Journeys(telemetry.JourneyFilter{})
	if stats.Total != 0 {
		t.Fatalf("journeys assembled without sampled packets: %+v", stats)
	}
}

// TestForensicsEndpointsUnderChurn is the -race exercise for the
// observability surface: concurrent HTTP scrapes of every endpoint while
// tracing and the sampling rate are toggled, traffic flows, and a switch
// dies mid-run. It asserts absence of data races and that every endpoint
// stays 200 throughout; the chaos is the point, not the values.
func TestForensicsEndpointsUnderChurn(t *testing.T) {
	c := newForensicsCluster(t)
	addr := c.TelemetryAddr()
	if addr == "" {
		t.Fatal("telemetry server did not start")
	}

	// Drain deliveries so injectors never block on the channel. The drain
	// goroutine outlives the workers; it is stopped after wg.Wait().
	stop := make(chan struct{})
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for {
			select {
			case <-stop:
				return
			case <-c.Deliveries:
			}
		}
	}()
	var wg sync.WaitGroup

	const workers = 3
	errc := make(chan error, workers+2)
	get := func(path string) error {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET %s: %s", path, resp.Status)
		}
		return nil
	}
	paths := []string{"/metrics", "/vars", "/trace?limit=32", "/journeys", "/convergence", "/health", "/status"}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				if err := get(paths[(i+w)%len(paths)]); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	// Toggle the recorder and sampler while the scrapers run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rates := []int{0, 1, 64, 1}
		for i := 0; i < 40; i++ {
			c.SetTracing(i%2 == 0)
			c.SetTraceSample(rates[i%len(rates)])
		}
		c.SetTracing(true)
		c.SetTraceSample(1)
	}()
	// Traffic plus a mid-run switch death (node 1 is neither the ingress,
	// the authority, nor an egress of the test policy).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 60; i++ {
			c.Inject(0, httpHeader(uint32(10+i)), 100)
			if i == 30 {
				c.KillSwitch(1)
			}
			time.Sleep(time.Millisecond)
		}
	}()

	wg.Wait()
	close(stop)
	<-drained
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	// The surface must still be coherent after the churn.
	if err := get("/health"); err != nil {
		t.Fatal(err)
	}
	if err := get("/journeys"); err != nil {
		t.Fatal(err)
	}
}
