// Package telemetry is the observability layer for a running DIFANE
// deployment: a lock-free flight recorder of fixed-size trace events, a
// pull-model metrics registry rendered as Prometheus text or expvar-style
// JSON, and an optional HTTP server exposing both (plus pprof) while the
// cluster serves traffic.
//
// The package is a leaf: it imports only the standard library, so core,
// wire, and the commands can all depend on it without cycles.
package telemetry

import (
	"fmt"
	"strconv"
	"strings"
)

// EventKind identifies what a trace event records.
type EventKind uint8

// Event kinds. The data-plane kinds (Forward..Verdict) fire per packet
// when tracing is on; the control-plane kinds fire on rare transitions
// and are cheap regardless.
const (
	EvNone EventKind = iota

	// Data plane.
	EvForward   // ingress matched a forwarding rule (cache or authority hit)
	EvRedirect  // ingress matched a partition rule; packet sent to an authority
	EvAuthority // an authority resolved a redirected packet against its rules
	EvVerdict   // terminal outcome at a node: delivered or dropped (see Verdict)
	EvShed      // overload protection dropped work (redirect or cache install)

	// Rule churn (fired from TCAM install/evict/expire hooks).
	EvInstall
	EvEvict
	EvExpire

	// Failures and recovery.
	EvDeath         // failure detector declared a switch dead
	EvRevive        // a dead switch came back; its rules were restored
	EvFailoverLocal // ingress repointed a partition rule onto a backup authority
	EvPromote       // controller withdrew a dead authority's partition rules

	// Control plane.
	EvEpochRaise     // a switch's epoch fence advanced (Value = new epoch)
	EvEpochReject    // a stale-epoch FlowMod was refused (Value = its epoch)
	EvReconnect      // a switch re-established its control connection
	EvControllerDown // the controller was lost; switches buffer control traffic
	EvControllerUp   // the controller came back; outage buffers drain

	// BFD failure detection and controller HA.
	EvBFDUp         // a BFD session reached Up (Peer = remote discriminator)
	EvBFDDown       // an established BFD session left Up
	EvLeaderElected // a controller replica won an election (Peer = id, Value = epoch)

	// Forensics spans (appended — kind codes are stable across versions).
	EvIngress          // a sampled packet entered the data plane at Node
	EvInstallTriggered // an authority decided cache rules for Peer (the ingress)
)

var kindNames = map[EventKind]string{
	EvNone:             "none",
	EvForward:          "forward",
	EvRedirect:         "redirect",
	EvAuthority:        "authority",
	EvVerdict:          "verdict",
	EvShed:             "shed",
	EvInstall:          "install",
	EvEvict:            "evict",
	EvExpire:           "expire",
	EvDeath:            "death",
	EvRevive:           "revive",
	EvFailoverLocal:    "failover-local",
	EvPromote:          "promote",
	EvEpochRaise:       "epoch-raise",
	EvEpochReject:      "epoch-reject",
	EvReconnect:        "reconnect",
	EvControllerDown:   "controller-down",
	EvControllerUp:     "controller-up",
	EvBFDUp:            "bfd-up",
	EvBFDDown:          "bfd-down",
	EvLeaderElected:    "leader-elected",
	EvIngress:          "ingress",
	EvInstallTriggered: "install-triggered",
}

// String returns the kind's wire name (used in JSON and difanectl output).
func (k EventKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// KindFromString parses a kind name as produced by String. Returns EvNone
// and false for unknown names.
func KindFromString(s string) (EventKind, bool) {
	for k, name := range kindNames {
		if name == s {
			return k, true
		}
	}
	return EvNone, false
}

// ClusterNode is the reserved Event.Node value for cluster-scope events
// that belong to no single switch (controller outages). Recorders built
// with it in their node list give it its own ring.
const ClusterNode uint32 = 0xFFFFFFFF

// Table codes for rule events, matching the DIFANE lookup order.
const (
	TableNone      uint8 = 0
	TableCache     uint8 = 1
	TableAuthority uint8 = 2
	TablePartition uint8 = 3
)

// TableName renders a table code.
func TableName(t uint8) string {
	switch t {
	case TableCache:
		return "cache"
	case TableAuthority:
		return "authority"
	case TablePartition:
		return "partition"
	default:
		return ""
	}
}

// Verdict / detail codes carried in Event.Verdict.
const (
	VNone         uint8 = 0
	VDelivered    uint8 = 1
	VDropPolicy   uint8 = 2
	VDropHole     uint8 = 3
	VDropQueue    uint8 = 4
	VUnreachable  uint8 = 5
	VShedRedirect uint8 = 6 // EvShed: redirect token bucket ran dry
	VShedInstall  uint8 = 7 // EvShed: cache-install token bucket ran dry
)

// VerdictName renders a verdict/detail code.
func VerdictName(v uint8) string {
	switch v {
	case VDelivered:
		return "delivered"
	case VDropPolicy:
		return "drop-policy"
	case VDropHole:
		return "drop-hole"
	case VDropQueue:
		return "drop-queue"
	case VUnreachable:
		return "drop-unreachable"
	case VShedRedirect:
		return "shed-redirect"
	case VShedInstall:
		return "shed-install"
	default:
		return ""
	}
}

// FlowTuple identifies the flow an event belongs to. Hash is a stable
// 64-bit digest of the 5-tuple, usable as a compact filter key.
type FlowTuple struct {
	Hash  uint64
	IPSrc uint32
	IPDst uint32
	TPSrc uint16
	TPDst uint16
	Proto uint8
}

// HashFlow digests a 5-tuple with FNV-1a, the same function FlowTuple
// carries in Hash. Zero-valued tuples hash to a nonzero value, so 0 can
// mean "no flow filter".
func HashFlow(ipSrc, ipDst uint32, tpSrc, tpDst uint16, proto uint8) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, b := range [13]byte{
		byte(ipSrc >> 24), byte(ipSrc >> 16), byte(ipSrc >> 8), byte(ipSrc),
		byte(ipDst >> 24), byte(ipDst >> 16), byte(ipDst >> 8), byte(ipDst),
		byte(tpSrc >> 8), byte(tpSrc),
		byte(tpDst >> 8), byte(tpDst),
		proto,
	} {
		h ^= uint64(b)
		h *= prime
	}
	return h
}

// Tuple builds a FlowTuple, computing the hash.
func Tuple(ipSrc, ipDst uint32, tpSrc, tpDst uint16, proto uint8) FlowTuple {
	return FlowTuple{
		Hash:  HashFlow(ipSrc, ipDst, tpSrc, tpDst, proto),
		IPSrc: ipSrc, IPDst: ipDst,
		TPSrc: tpSrc, TPDst: tpDst,
		Proto: proto,
	}
}

// Event is one fixed-size flight-recorder record. Field meaning varies by
// Kind:
//
//   - Node is always the switch where the event happened (or the subject
//     switch for death/revive/promote).
//   - Peer is the other switch involved: redirect target, tunnel egress,
//     redirect origin (EvAuthority), backup target (EvFailoverLocal).
//   - Table/RuleID describe the matched or installed rule.
//   - Verdict carries a V* code for EvVerdict/EvShed.
//   - Value is kind-specific: delivery latency in ns for EvVerdict
//     deliveries, the epoch for epoch events.
type Event struct {
	Seq     uint64 // per-node ring sequence, assigned at publish
	TS      int64  // ns since the recorder started
	Kind    EventKind
	Node    uint32
	Peer    uint32
	Table   uint8
	Verdict uint8
	RuleID  uint64
	Value   uint64
	// Trace is the sampled per-packet trace ID joining this event into a
	// cross-node journey (0 = packet not sampled).
	Trace uint64
	Flow  FlowTuple
}

// EventJSON is the JSON shape served by /trace and decoded by difanectl.
type EventJSON struct {
	Seq     uint64 `json:"seq"`
	TS      int64  `json:"ts_ns"`
	Kind    string `json:"kind"`
	Node    uint32 `json:"node"`
	Peer    uint32 `json:"peer,omitempty"`
	Table   string `json:"table,omitempty"`
	Verdict string `json:"verdict,omitempty"`
	RuleID  uint64 `json:"rule_id,omitempty"`
	Value   uint64 `json:"value,omitempty"`
	Trace   uint64 `json:"trace,omitempty"`
	Flow    uint64 `json:"flow,omitempty"`
	Src     string `json:"src,omitempty"`
	Dst     string `json:"dst,omitempty"`
	Proto   uint8  `json:"proto,omitempty"`
}

// JSON converts an Event to its wire shape.
func (e Event) JSON() EventJSON {
	j := EventJSON{
		Seq:     e.Seq,
		TS:      e.TS,
		Kind:    e.Kind.String(),
		Node:    e.Node,
		Peer:    e.Peer,
		Table:   TableName(e.Table),
		Verdict: VerdictName(e.Verdict),
		RuleID:  e.RuleID,
		Value:   e.Value,
		Trace:   e.Trace,
		Flow:    e.Flow.Hash,
		Proto:   e.Flow.Proto,
	}
	if e.Flow.IPSrc != 0 || e.Flow.TPSrc != 0 {
		j.Src = ipPort(e.Flow.IPSrc, e.Flow.TPSrc)
	}
	if e.Flow.IPDst != 0 || e.Flow.TPDst != 0 {
		j.Dst = ipPort(e.Flow.IPDst, e.Flow.TPDst)
	}
	return j
}

func ipPort(ip uint32, port uint16) string {
	var b strings.Builder
	b.WriteString(IPString(ip))
	b.WriteByte(':')
	b.WriteString(strconv.Itoa(int(port)))
	return b.String()
}

// IPString renders an IPv4 address in dotted-quad form.
func IPString(ip uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// ParseIP parses a dotted-quad IPv4 address into the uint32 form events
// carry. Returns 0 and false on malformed input.
func ParseIP(s string) (uint32, bool) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, false
	}
	var ip uint32
	for _, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 || n > 255 {
			return 0, false
		}
		ip = ip<<8 | uint32(n)
	}
	return ip, true
}
