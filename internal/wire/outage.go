package wire

import (
	"time"

	"difane/internal/telemetry"
)

// Controller-outage mode: a wire cluster can simulate the central
// controller crashing while every switch keeps running. Switches detect
// the outage through the existing heartbeat machinery (probes stop
// arriving), keep serving traffic from their cached and authority rules —
// DIFANE's data plane never depends on the controller — and park
// controller-bound events (cache installs) in a bounded per-switch outbox.
// When the controller returns, heartbeats resume, outboxes drain in order,
// and the restarted controller fences the old one out with a higher epoch.

// KillController simulates a controller crash. In single-controller mode
// probing stops, every control connection drops, and reconnection holds
// until RestoreController. With HA replicas (cfg.HA.Replicas ≥ 2) it
// kills the current LEADER replica; the surviving replicas elect a new
// leader automatically and the switches fail their control channels over
// to it — no RestoreController call required. Returns false if the
// controller is already down (or, under HA, no leader holds office).
func (c *Cluster) KillController() bool {
	if len(c.replicas) > 0 {
		return c.killLeader()
	}
	if !c.ctrlDown.CompareAndSwap(false, true) {
		return false
	}
	c.cold.controllerOutages.Add(1)
	if c.rec.Enabled() {
		c.rec.Publish(telemetry.Event{
			Kind: telemetry.EvControllerDown, Node: telemetry.ClusterNode,
			Value: c.epoch.Load(),
		})
	}
	for _, n := range c.switches {
		n.closeConns()
	}
	return true
}

// RestoreController brings the controller back, as a recovered process
// would: its fencing epoch is bumped past the dead incarnation's, every
// switch's liveness clock is reset so the returning probes don't race a
// spurious death verdict, and the connection managers re-establish control
// connections (draining the switches' outage buffers as heartbeats
// resume). Returns false if the controller was not down. With HA replicas
// it instead revives dead replicas (catching them up from the leader's
// journal) — elections already restored service without it — and promotes
// a leader itself only if every replica was killed.
func (c *Cluster) RestoreController() bool {
	if len(c.replicas) > 0 {
		return c.restoreReplicas()
	}
	if !c.ctrlDown.CompareAndSwap(true, false) {
		return false
	}
	newEpoch := c.epoch.Add(1)
	if c.rec.Enabled() {
		c.rec.Publish(telemetry.Event{
			Kind: telemetry.EvControllerUp, Node: telemetry.ClusterNode,
			Value: newEpoch,
		})
	}
	c.resetBFD()
	now := time.Now().UnixNano()
	for _, n := range c.switches {
		n.lastBeat.Store(now)
		n.lastProbe.Store(now)
	}
	return true
}

// ControllerDown reports whether a simulated controller outage is active.
func (c *Cluster) ControllerDown() bool { return c.ctrlDown.Load() }

// Epoch returns the controller's current fencing epoch.
func (c *Cluster) Epoch() uint64 { return c.epoch.Load() }

// SetEpoch raises the controller's fencing epoch — the integration point
// for an external controller recovering from a journal whose durable epoch
// is ahead of this incarnation's. Lowering is refused.
func (c *Cluster) SetEpoch(e uint64) bool {
	for {
		cur := c.epoch.Load()
		if e < cur {
			return false
		}
		if e == cur || c.epoch.CompareAndSwap(cur, e) {
			return true
		}
	}
}

// PeakQueueDepth returns the highest data-queue occupancy any switch has
// seen — the bounded-queue evidence the miss-storm bench reports.
func (c *Cluster) PeakQueueDepth() int {
	max := int64(0)
	for _, n := range c.switches {
		if d := n.peakQueue.Load(); d > max {
			max = d
		}
	}
	return int(max)
}

// OutboxLen returns the number of buffered controller-bound events at a
// switch.
func (c *Cluster) OutboxLen(id uint32) int {
	n, ok := c.switches[id]
	if !ok {
		return 0
	}
	return len(n.outbox)
}
