package baseline

import (
	"testing"

	"difane/internal/flowspace"
	"difane/internal/topo"
)

func testPolicy() []flowspace.Rule {
	return []flowspace.Rule{
		{ID: 1, Priority: 10,
			Match:  flowspace.MatchAll().WithExact(flowspace.FTPDst, 80),
			Action: flowspace.Action{Kind: flowspace.ActForward, Arg: 4}},
		{ID: 2, Priority: 0, Match: flowspace.MatchAll(),
			Action: flowspace.Action{Kind: flowspace.ActDrop}},
	}
}

func flowKey(src uint32, port uint64) flowspace.Key {
	var k flowspace.Key
	k[flowspace.FIPSrc] = uint64(src)
	k[flowspace.FTPDst] = port
	return k
}

func newNet(t *testing.T, cfg Config) *Network {
	t.Helper()
	g := topo.Linear(5, 0.001)
	if cfg.ControllerNode == 0 {
		cfg.ControllerNode = 2
	}
	n, err := NewNetwork(g, testPolicy(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestFirstPacketWaitsForControllerRoundTrip(t *testing.T) {
	n := newNet(t, Config{SetupOverhead: 0.010})
	n.InjectPacket(0, 0, flowKey(1, 80), 100, 0)
	n.Run(1)
	if n.M.Delivered != 1 {
		t.Fatalf("delivered = %d drops=%+v", n.M.Delivered, n.M.Drops)
	}
	// 2ms to controller + 10ms overhead + 2ms back + 4ms to egress = 18ms.
	d := n.M.FirstPacketDelay.Mean()
	if d < 0.0179 || d > 0.0181 {
		t.Fatalf("first packet delay = %v, want ~18ms", d)
	}
	if n.ControllerSetups != 1 {
		t.Fatalf("controller setups = %d", n.ControllerSetups)
	}
}

func TestSecondPacketUsesMicroflowRule(t *testing.T) {
	n := newNet(t, Config{})
	n.InjectPacket(0, 0, flowKey(1, 80), 100, 0)
	n.InjectPacket(0.5, 0, flowKey(1, 80), 100, 1)
	n.Run(1)
	if n.ControllerSetups != 1 {
		t.Fatalf("second packet must not reach the controller: %d", n.ControllerSetups)
	}
	d := n.M.LaterPacketDelay.Mean()
	if d < 0.0039 || d > 0.0041 {
		t.Fatalf("later packet delay = %v, want direct 4ms", d)
	}
}

func TestMicroflowRuleIsExact(t *testing.T) {
	// A different source hitting the same wildcard policy rule must still
	// punt to the controller — exact-match caching shares nothing.
	n := newNet(t, Config{})
	n.InjectPacket(0, 0, flowKey(1, 80), 100, 0)
	n.InjectPacket(0.5, 0, flowKey(2, 80), 100, 0)
	n.Run(1)
	if n.ControllerSetups != 2 {
		t.Fatalf("controller setups = %d, want 2", n.ControllerSetups)
	}
}

func TestControllerSaturates(t *testing.T) {
	n := newNet(t, Config{ControllerRate: 50, ControllerQueue: 10})
	for i := 0; i < 500; i++ {
		n.InjectPacket(float64(i)*0.001, 0, flowKey(uint32(i+10), 80), 100, 0)
	}
	n.Run(1)
	if n.M.Drops.AuthorityQueue == 0 {
		t.Fatal("overloaded controller must shed setups")
	}
	// Completions bounded by rate × time.
	if n.M.SetupsCompleted > 60 {
		t.Fatalf("setups completed = %d exceeds controller capacity", n.M.SetupsCompleted)
	}
}

func TestPolicyDrop(t *testing.T) {
	n := newNet(t, Config{})
	n.InjectPacket(0, 0, flowKey(1, 22), 100, 0)
	n.Run(1)
	if n.M.Drops.Policy != 1 || n.M.SetupsCompleted != 1 {
		t.Fatalf("drops=%+v setups=%d", n.M.Drops, n.M.SetupsCompleted)
	}
}

func TestPolicyHole(t *testing.T) {
	g := topo.Linear(3, 0.001)
	n, err := NewNetwork(g, nil, Config{ControllerNode: 1})
	if err != nil {
		t.Fatal(err)
	}
	n.InjectPacket(0, 0, flowKey(1, 80), 100, 0)
	n.Run(1)
	if n.M.Drops.Hole != 1 {
		t.Fatalf("drops = %+v", n.M.Drops)
	}
}

func TestRuleTimeoutReSetup(t *testing.T) {
	n := newNet(t, Config{RuleIdle: 1})
	n.InjectPacket(0, 0, flowKey(1, 80), 100, 0)
	n.InjectPacket(5, 0, flowKey(1, 80), 100, 1)
	n.Run(10)
	if n.ControllerSetups != 2 {
		t.Fatalf("expired microflow must re-setup: %d", n.ControllerSetups)
	}
}

func TestValidation(t *testing.T) {
	g := topo.Linear(3, 0.001)
	if _, err := NewNetwork(g, nil, Config{ControllerNode: 99}); err == nil {
		t.Fatal("controller outside topology must error")
	}
}

func TestControllerUnreachableAfterPartition(t *testing.T) {
	n := newNet(t, Config{})
	n.Topo.SetNode(1, false) // cut 0 off from controller at 2
	n.InjectPacket(0, 0, flowKey(1, 80), 100, 0)
	n.Run(1)
	if n.M.Drops.Unreachable != 1 {
		t.Fatalf("drops = %+v", n.M.Drops)
	}
}
