package core

import (
	"fmt"

	"difane/internal/flowspace"
	"difane/internal/proto"
)

// CacheStrategy selects how an authority switch turns a rule hit into
// cache rules for the ingress switch.
type CacheStrategy int

const (
	// StrategyCover generates a single wildcard cache rule covering the
	// packet, clipped to the partition and carved out of every
	// higher-priority overlapping rule — DIFANE's wildcard-safe caching.
	StrategyCover CacheStrategy = iota
	// StrategyDependent caches the matched rule together with all of its
	// higher-priority overlapping rules (clipped to the partition). Simple
	// and safe, but burns cache entries on deep dependency chains.
	StrategyDependent
	// StrategyExact caches a microflow exact-match rule for just this
	// header — the Ethane-style fallback, safe but per-flow.
	StrategyExact
)

func (s CacheStrategy) String() string {
	switch s {
	case StrategyCover:
		return "cover"
	case StrategyDependent:
		return "dependent"
	case StrategyExact:
		return "exact"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// cacheIDBase offsets generated cache-rule IDs away from policy rule IDs.
const cacheIDBase uint64 = 1 << 40

// Authority is the control logic an authority switch runs for one
// partition: answer cache misses with a forwarding decision plus cache
// rules for the ingress switch.
type Authority struct {
	// SwitchID is the switch hosting this partition.
	SwitchID uint32
	// Partition holds the region and its clipped rules in TCAM order.
	Partition Partition
	// Strategy picks the cache-rule generation scheme.
	Strategy CacheStrategy
	// RegionIndex is the partition's index in the network assignment (−1
	// when unknown): the key the cost-aware cache policy tracks per-region
	// statistics and adapted idle timeouts under.
	RegionIndex int
	// CacheIdleTimeout / CacheHardTimeout are applied to generated cache
	// rules (seconds, 0 = none). Change them only through
	// SetCacheTimeouts: memoized HandleMiss results bake the values into
	// their FlowMods, so a bare field write silently keeps issuing the old
	// timeouts for every already-seen flow.
	CacheIdleTimeout float64
	CacheHardTimeout float64

	// Misses counts handled cache misses; CacheRulesSent counts generated
	// cache rules.
	Misses         uint64
	CacheRulesSent uint64

	nextID uint64
	// originOf maps generated cache-rule IDs back to the policy rule they
	// stand for, preserving per-policy-rule accounting.
	originOf map[uint64]uint64
	// memo caches HandleMiss results by exact key. A flow whose ingress
	// cache rule has not landed yet redirects every packet here, and cover
	// synthesis (CoverFor's rule subtraction) is by far the costliest step
	// on the miss path — recomputing it per packet of the same flow melts
	// the authority under a redirect storm. Memoized results also pin the
	// generated rule ID, so repeat misses refresh the same ingress cache
	// entry instead of installing a duplicate under a fresh ID. The memo
	// dies with the Authority, which is rebuilt on every partition or
	// policy change, so it can never serve a stale partition's answer.
	memo map[flowspace.Key]MissResult
}

// memoCap bounds the per-authority miss memo; when full it is flushed
// wholesale (repopulating costs one CoverFor per live flow, and tracking
// recency would put map bookkeeping on every memoized hit).
const memoCap = 8192

// NewAuthority builds the authority logic for a partition.
func NewAuthority(switchID uint32, p Partition, strategy CacheStrategy) *Authority {
	return &Authority{
		SwitchID:    switchID,
		Partition:   p,
		Strategy:    strategy,
		RegionIndex: -1,
		originOf:    make(map[uint64]uint64),
	}
}

// SetCacheTimeouts updates the timeouts stamped onto generated cache
// rules. On a material change the miss memo is flushed: its entries carry
// fully-built FlowMods with the old Idle/Hard baked in, and serving those
// would pin every known flow to the superseded timeouts until the memo
// happened to cycle.
func (a *Authority) SetCacheTimeouts(idle, hard float64) {
	if a.CacheIdleTimeout == idle && a.CacheHardTimeout == hard {
		return
	}
	a.CacheIdleTimeout = idle
	a.CacheHardTimeout = hard
	clear(a.memo)
}

// OriginOf maps a generated cache-rule ID back to its policy rule ID (the
// ID itself for rules cached verbatim).
func (a *Authority) OriginOf(cacheID uint64) (uint64, bool) {
	if cacheID < cacheIDBase {
		return cacheID, true
	}
	id, ok := a.originOf[cacheID]
	return id, ok
}

func (a *Authority) allocID(origin uint64) uint64 {
	a.nextID++
	id := cacheIDBase + (uint64(a.SwitchID) << 24) + a.nextID
	a.originOf[id] = origin
	return id
}

// MissResult is the authority's answer to one redirected packet.
type MissResult struct {
	// Rule is the policy rule that matched (clipped to the partition).
	Rule flowspace.Rule
	// CacheMods are the flow-mods to install at the ingress switch.
	CacheMods []proto.FlowMod
	// OK is false when no rule in the partition matches the packet — a
	// policy hole (the packet is dropped).
	OK bool
}

// HandleMiss processes a redirected packet: find the matching rule, decide
// the action, and generate ingress cache rules per the strategy. Repeat
// misses for a key already answered return the memoized result — the same
// rule, the same cache mods, the same generated IDs. Callers must treat
// the returned CacheMods as read-only.
func (a *Authority) HandleMiss(k flowspace.Key) MissResult {
	a.Misses++
	if res, ok := a.memo[k]; ok {
		a.CacheRulesSent += uint64(len(res.CacheMods))
		return res
	}
	res := a.handleMissSlow(k)
	if a.memo == nil {
		a.memo = make(map[flowspace.Key]MissResult)
	} else if len(a.memo) >= memoCap {
		clear(a.memo)
	}
	a.memo[k] = res
	return res
}

func (a *Authority) handleMissSlow(k flowspace.Key) MissResult {
	rules := a.Partition.Rules
	hitRule, ok := flowspace.EvalTable(rules, k)
	if !ok {
		return MissResult{}
	}
	hit := -1
	for i := range rules {
		if rules[i].ID == hitRule.ID {
			hit = i
			break
		}
	}

	var mods []proto.FlowMod
	addMod := func(r flowspace.Rule) {
		mods = append(mods, proto.FlowMod{
			Table: proto.TableCache,
			Op:    proto.OpAdd,
			Rule:  r,
			Idle:  a.CacheIdleTimeout,
			Hard:  a.CacheHardTimeout,
		})
	}

	switch a.Strategy {
	case StrategyCover:
		cover, coverOK := flowspace.CoverFor(rules, hit, a.Partition.Region, k)
		if coverOK {
			addMod(flowspace.Rule{
				ID:       a.allocID(hitRule.ID),
				Priority: hitRule.Priority,
				Match:    cover,
				Action:   hitRule.Action,
			})
			break
		}
		fallthrough // sliver the subtraction couldn't isolate: exact rule
	case StrategyExact:
		addMod(flowspace.Rule{
			ID:       a.allocID(hitRule.ID),
			Priority: hitRule.Priority,
			Match:    exactMatch(k),
			Action:   hitRule.Action,
		})
	case StrategyDependent:
		// The matched rule plus everything above it that overlaps — cached
		// verbatim (already clipped to the partition), so the ingress cache
		// reproduces the partition's semantics for this region.
		addMod(rules[hit])
		for _, j := range flowspace.DependentSet(rules, hit) {
			addMod(rules[j])
		}
	}
	a.CacheRulesSent += uint64(len(mods))
	return MissResult{Rule: hitRule, CacheMods: mods, OK: true}
}

func exactMatch(k flowspace.Key) flowspace.Match {
	m := flowspace.MatchAll()
	for f := flowspace.FieldID(0); f < flowspace.NumFields; f++ {
		m = m.WithExact(f, k[f])
	}
	return m
}
