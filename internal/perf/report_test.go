package perf

import (
	"path/filepath"
	"strings"
	"testing"
)

func row(wl, backend string, pps, allocs float64) Result {
	return Result{
		Workload: wl, Backend: backend, Packets: 1000,
		PktsPerSec: pps, AllocsPerOp: allocs,
		P50FirstMs: 1, P99FirstMs: 5, Goroutines: 100,
	}
}

func report(rs ...Result) *Report {
	return &Report{Version: reportVersion, Seed: 42, Results: rs}
}

func TestCompareCatchesRealRegression(t *testing.T) {
	base := report(row("cache-hit", "wire", 100000, 20))
	cur := report(row("cache-hit", "wire", 40000, 20)) // 2.5× slower
	regs := Compare(base, cur, DefaultTolerance())
	if len(regs) != 1 || !strings.Contains(regs[0], "throughput") {
		t.Fatalf("want one throughput regression, got %v", regs)
	}

	cur = report(row("cache-hit", "wire", 100000, 60)) // 3× the allocs
	regs = Compare(base, cur, DefaultTolerance())
	if len(regs) != 1 || !strings.Contains(regs[0], "allocs") {
		t.Fatalf("want one allocs regression, got %v", regs)
	}
}

func TestComparePassesWithinTolerance(t *testing.T) {
	base := report(row("cache-hit", "wire", 100000, 20))
	cur := report(row("cache-hit", "wire", 90000, 22)) // 10% off on both
	if regs := Compare(base, cur, DefaultTolerance()); len(regs) != 0 {
		t.Fatalf("10%% drift must pass the 15%% gate, got %v", regs)
	}
}

func TestCompareWidensToRecordedNoise(t *testing.T) {
	b := row("miss-storm", "wire-tcp", 100000, 20)
	b.NoisePkts = 0.40 // this machine can't time the cell tighter
	base := report(b)
	cur := report(row("miss-storm", "wire-tcp", 65000, 20)) // 35% drop
	if regs := Compare(base, cur, DefaultTolerance()); len(regs) != 0 {
		t.Fatalf("drop within recorded noise must pass, got %v", regs)
	}
	cur = report(row("miss-storm", "wire-tcp", 50000, 20)) // 50% drop
	if regs := Compare(base, cur, DefaultTolerance()); len(regs) != 1 {
		t.Fatalf("drop past recorded noise must fail, got %v", regs)
	}
}

func TestCompareFlagsShapeDrift(t *testing.T) {
	base := report(row("cache-hit", "wire", 100000, 20),
		row("miss-storm", "wire", 50000, 25))
	cur := report(row("cache-hit", "wire", 100000, 20),
		row("failover", "wire", 70000, 18))
	regs := Compare(base, cur, DefaultTolerance())
	if len(regs) != 2 {
		t.Fatalf("want missing-row and new-row findings, got %v", regs)
	}
}

func TestCompareGoroutineLeakGate(t *testing.T) {
	base := report(row("cache-hit", "wire", 100000, 20))
	leaky := row("cache-hit", "wire", 100000, 20)
	leaky.Goroutines = 100 + 65
	regs := Compare(base, report(leaky), DefaultTolerance())
	if len(regs) != 1 || !strings.Contains(regs[0], "goroutines") {
		t.Fatalf("want goroutine leak finding, got %v", regs)
	}
}

func TestMergeBestKeepsFastestAndWidensNoise(t *testing.T) {
	a := report(row("cache-hit", "wire", 80000, 30))
	b := report(row("cache-hit", "wire", 100000, 25))
	m := MergeBest(a, b)
	if len(m.Results) != 1 {
		t.Fatalf("want 1 merged row, got %d", len(m.Results))
	}
	r := m.Results[0]
	if r.PktsPerSec != 100000 {
		t.Fatalf("merged throughput = %v, want the faster attempt's", r.PktsPerSec)
	}
	if r.AllocsPerOp != 25 {
		t.Fatalf("merged allocs = %v, want the lower attempt's", r.AllocsPerOp)
	}
	// 80k vs 100k is 20% drift; the merged noise must cover it.
	if r.NoisePkts < 0.19 {
		t.Fatalf("merged noise %v does not cover the observed 20%% drift", r.NoisePkts)
	}
}

func TestReportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	in := report(row("cache-hit", "wire", 100000, 20), row("failover", "sim", 500000, 6))
	in.Quick = true
	if err := in.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	out, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 2 || !out.Quick || out.Seed != 42 {
		t.Fatalf("round trip mangled report: %+v", out)
	}
	if regs := Compare(in, out, DefaultTolerance()); len(regs) != 0 {
		t.Fatalf("report must compare clean against itself, got %v", regs)
	}
}

// TestHarnessSmoke runs a miniature end-to-end matrix: every backend,
// every workload, tiny trace — asserting each produced row did real work.
func TestHarnessSmoke(t *testing.T) {
	cfg := Config{
		Seed: 7, Switches: 4, Rules: 16, Flows: 60, Horizon: 10, Reps: 1,
		Backends:  AllBackends(),
		Workloads: AllWorkloads(),
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// failover is skipped on the baseline (no authorities to kill).
	want := len(cfg.Backends)*len(cfg.Workloads) - 1
	if len(rep.Results) != want {
		t.Fatalf("got %d rows, want %d: %s", len(rep.Results), want, rep.Render())
	}
	for _, r := range rep.Results {
		if r.Packets == 0 || r.PktsPerSec <= 0 {
			t.Fatalf("%s/%s did no work: %+v", r.Workload, r.Backend, r)
		}
		if r.Delivered == 0 {
			t.Fatalf("%s/%s delivered nothing", r.Workload, r.Backend)
		}
	}
}
