package wire

import (
	"encoding/json"
	"net/http"
	"sort"

	"difane/internal/proto"
)

// SwitchStatus is one switch's state in the status report.
type SwitchStatus struct {
	ID             uint32 `json:"id"`
	CacheEntries   int    `json:"cache_entries"`
	AuthorityRules int    `json:"authority_rules"`
	PartitionRules int    `json:"partition_rules"`
	CacheHits      uint64 `json:"cache_hits"`
	AuthorityHits  uint64 `json:"authority_hits"`
	PartitionHits  uint64 `json:"partition_hits"`
	Misses         uint64 `json:"misses"`
	QueueDepth     int    `json:"queue_depth"`
	PeakQueueDepth int    `json:"peak_queue_depth"`
	OutboxLen      int    `json:"outbox_len"`
	Epoch          uint64 `json:"epoch"`
	ReportedEpoch  uint64 `json:"reported_epoch,omitempty"`
	Alive          bool   `json:"alive"`
	Killed         bool   `json:"killed"`
}

// Status is the cluster-wide state report served at /status.
type Status struct {
	Switches       []SwitchStatus `json:"switches"`
	Dropped        uint64         `json:"dropped"`
	Epoch          uint64         `json:"epoch"`
	ControllerDown bool           `json:"controller_down,omitempty"`
}

// Status snapshots the cluster's state.
func (c *Cluster) Status() Status {
	ids := make([]uint32, 0, len(c.switches))
	for id := range c.switches {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	st := Status{
		Dropped:        c.dropped.Load(),
		Epoch:          c.epoch.Load(),
		ControllerDown: c.ctrlDown.Load(),
	}
	for _, id := range ids {
		n := c.switches[id]
		stats := n.sw.Stats.Snapshot()
		ss := SwitchStatus{
			ID:             id,
			CacheEntries:   n.sw.Table(proto.TableCache).Len(),
			AuthorityRules: n.sw.Table(proto.TableAuthority).Len(),
			PartitionRules: n.sw.Table(proto.TablePartition).Len(),
			CacheHits:      stats.CacheHits,
			AuthorityHits:  stats.AuthorityHits,
			PartitionHits:  stats.PartitionHits,
			Misses:         stats.Misses,
			QueueDepth:     n.queueLen(),
			PeakQueueDepth: int(n.peakQueue.Load()),
			OutboxLen:      len(n.outbox),
			Epoch:          n.epoch.Load(),
			ReportedEpoch:  n.reportedEpoch.Load(),
			Alive:          n.alive.Load(),
			Killed:         n.killed.Load(),
		}
		st.Switches = append(st.Switches, ss)
	}
	return st
}

// StatusHandler returns an http.Handler serving the cluster status as
// JSON — mountable into any mux for operational visibility:
//
//	http.Handle("/status", cluster.StatusHandler())
func (c *Cluster) StatusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(c.Status()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
