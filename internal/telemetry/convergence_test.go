package telemetry

import (
	"strings"
	"testing"
)

func TestConvergenceTimelineLifecycle(t *testing.T) {
	c := NewConvergence(0)
	if since := c.ActiveSinceNS(); since != 0 {
		t.Fatalf("quiet tracker reports active since %d", since)
	}

	// First fenced mod of an epoch opens its window and snapshots the
	// counter baseline the quiesce deltas are diffed against.
	base := CounterTotals{Redirects: 100, Shed: 10, Dropped: 5}
	c.NoteMod(7, false, 1000, base)
	c.NoteMod(7, false, 1500, base)
	c.NoteMod(7, true, 2000, base)
	if since := c.ActiveSinceNS(); since != 1000 {
		t.Fatalf("active since = %d, want 1000 (the first mod)", since)
	}
	if _, ok := c.Last(); ok {
		t.Fatal("Last must report nothing before quiescence")
	}

	c.NoteQuiesce(9000, CounterTotals{Redirects: 130, Shed: 12, Dropped: 5})
	tl := c.Timelines()
	if len(tl) != 1 {
		t.Fatalf("got %d timelines", len(tl))
	}
	got := tl[0]
	if got.Epoch != 7 || got.Installs != 2 || got.Withdraws != 1 {
		t.Fatalf("timeline = %+v", got)
	}
	if got.FirstModTS != 1000 || got.LastModTS != 2000 {
		t.Fatalf("mod window = [%d, %d]", got.FirstModTS, got.LastModTS)
	}
	if !got.Converged || got.QuiesceTS != 9000 || got.DurationNS != 8000 {
		t.Fatalf("quiesce stamp wrong: %+v", got)
	}
	if got.RedirectsDuring != 30 || got.ShedDuring != 2 || got.DroppedDuring != 0 {
		t.Fatalf("disturbed-traffic deltas wrong: %+v", got)
	}
	if since := c.ActiveSinceNS(); since != 0 {
		t.Fatalf("active since = %d after quiescence", since)
	}
	last, ok := c.Last()
	if !ok || last.Epoch != 7 {
		t.Fatalf("Last = %+v, %v", last, ok)
	}
	// A second quiesce with no open window is a no-op.
	c.NoteQuiesce(10000, CounterTotals{})
	if tl := c.Timelines(); tl[0].QuiesceTS != 9000 {
		t.Fatalf("idle quiesce restamped the timeline: %+v", tl[0])
	}
}

func TestConvergenceRejectAttributedToOpenWindow(t *testing.T) {
	c := NewConvergence(0)
	c.NoteMod(3, false, 100, CounterTotals{})
	c.NoteReject(1, 150) // a stale epoch-1 straggler fenced off mid-update
	c.NoteQuiesce(200, CounterTotals{})
	tl := c.Timelines()
	if len(tl) != 1 || tl[0].Rejects != 1 {
		t.Fatalf("timelines = %+v, want 1 reject on epoch 3's window", tl)
	}
	// Rejects with no open window still count in the totals.
	c.NoteReject(1, 300)
	v := c.View(400)
	if v.Updates != 1 || v.Converged != 1 {
		t.Fatalf("view = %+v", v)
	}
}

func TestConvergenceKeepBoundEvictsOldest(t *testing.T) {
	c := NewConvergence(2)
	c.NoteMod(1, false, 10, CounterTotals{})
	c.NoteMod(2, false, 20, CounterTotals{})
	c.NoteMod(3, false, 30, CounterTotals{})
	tl := c.Timelines()
	if len(tl) != 2 || tl[0].Epoch != 2 || tl[1].Epoch != 3 {
		t.Fatalf("keep=2 retained %+v", tl)
	}
	// The evicted epoch can be reopened without confusing the index.
	c.NoteMod(1, false, 40, CounterTotals{})
	if tl := c.Timelines(); len(tl) != 2 || tl[1].Epoch != 1 {
		t.Fatalf("reopened epoch missing: %+v", tl)
	}
}

func TestConvergenceRegisterMetrics(t *testing.T) {
	c := NewConvergence(0)
	c.NoteMod(5, false, 1000, CounterTotals{})
	c.NoteQuiesce(4000, CounterTotals{Redirects: 8})
	reg := NewRegistry()
	c.RegisterMetrics(reg)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"difane_epoch_updates_total 1",
		"difane_epoch_converged_total 1",
		"difane_epoch_installs_total 1",
		"difane_epoch_active_since_ns 0",
		"difane_epoch_last_duration_ns 3000",
		"difane_epoch_last_redirects_during 8",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in scrape:\n%s", want, out)
		}
	}
}
