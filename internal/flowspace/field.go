// Package flowspace implements ternary-match arithmetic over the
// OpenFlow-style header tuple used throughout DIFANE.
//
// A Field is a (value, mask) pair over up to 64 bits where a mask bit of 1
// means "this bit must match exactly" and 0 means "don't care". A Match is
// one Field per header field. The package provides the set algebra the
// DIFANE algorithms need — overlap, containment, intersection and
// subtraction (the header-space complement construction) — together with a
// prioritized Rule model and whole-table semantics (highest-priority match,
// shadowing, dependency analysis).
package flowspace

import (
	"fmt"
	"math/bits"
	"strings"
)

// FieldID identifies one header field of the match tuple.
type FieldID int

// The match tuple. The widths follow the OpenFlow 1.0 twelve-tuple, minus
// the VLAN priority and ToS bits which DIFANE's evaluation never exercises.
const (
	FInPort FieldID = iota
	FEthSrc
	FEthDst
	FEthType
	FVLAN
	FIPProto
	FIPSrc
	FIPDst
	FTPSrc
	FTPDst
	NumFields
)

// fieldWidths gives the number of significant bits per field.
var fieldWidths = [NumFields]uint{
	FInPort:  16,
	FEthSrc:  48,
	FEthDst:  48,
	FEthType: 16,
	FVLAN:    12,
	FIPProto: 8,
	FIPSrc:   32,
	FIPDst:   32,
	FTPSrc:   16,
	FTPDst:   16,
}

var fieldNames = [NumFields]string{
	"in_port", "eth_src", "eth_dst", "eth_type", "vlan",
	"ip_proto", "ip_src", "ip_dst", "tp_src", "tp_dst",
}

// Width returns the bit width of field f.
func (f FieldID) Width() uint { return fieldWidths[f] }

// String returns the OpenFlow-style name of the field.
func (f FieldID) String() string {
	if f < 0 || f >= NumFields {
		return fmt.Sprintf("field(%d)", int(f))
	}
	return fieldNames[f]
}

// Field is a ternary value over a single header field. Bits above the
// field's width are always zero in both Value and Mask.
type Field struct {
	Value uint64
	Mask  uint64
}

// WildcardField matches any value of the field.
func WildcardField() Field { return Field{} }

// ExactField matches exactly v over width bits.
func ExactField(f FieldID, v uint64) Field {
	w := fieldWidths[f]
	m := widthMask(w)
	return Field{Value: v & m, Mask: m}
}

// PrefixField matches the top plen bits of v over the field's width, the
// ternary encoding of an IP prefix.
func PrefixField(f FieldID, v uint64, plen uint) Field {
	w := fieldWidths[f]
	if plen > w {
		plen = w
	}
	m := widthMask(w) &^ widthMask(w-plen)
	return Field{Value: v & m, Mask: m}
}

func widthMask(w uint) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << w) - 1
}

// IsWildcard reports whether the field matches every value.
func (fd Field) IsWildcard() bool { return fd.Mask == 0 }

// IsExact reports whether the field pins every bit of width w.
func (fd Field) IsExact(w uint) bool { return fd.Mask == widthMask(w) }

// Matches reports whether the concrete value v satisfies the ternary field.
func (fd Field) Matches(v uint64) bool { return (v^fd.Value)&fd.Mask == 0 }

// Overlaps reports whether some concrete value satisfies both fields.
func (fd Field) Overlaps(o Field) bool { return (fd.Value^o.Value)&fd.Mask&o.Mask == 0 }

// Contains reports whether every value matching o also matches fd.
func (fd Field) Contains(o Field) bool {
	return fd.Mask&^o.Mask == 0 && (fd.Value^o.Value)&fd.Mask == 0
}

// Intersect returns the field matching exactly the values matched by both,
// and false if that set is empty.
func (fd Field) Intersect(o Field) (Field, bool) {
	if !fd.Overlaps(o) {
		return Field{}, false
	}
	m := fd.Mask | o.Mask
	v := (fd.Value & fd.Mask) | (o.Value & o.Mask)
	return Field{Value: v & m, Mask: m}, true
}

// FreeBits returns the number of wildcard bits within width w.
func (fd Field) FreeBits(w uint) int { return int(w) - bits.OnesCount64(fd.Mask) }

// format renders the field as a ternary bit string of width w, with 'x' for
// wildcard bits, or "*" when fully wildcarded.
func (fd Field) format(w uint) string {
	if fd.Mask == 0 {
		return "*"
	}
	var b strings.Builder
	for i := int(w) - 1; i >= 0; i-- {
		bit := uint64(1) << uint(i)
		switch {
		case fd.Mask&bit == 0:
			b.WriteByte('x')
		case fd.Value&bit != 0:
			b.WriteByte('1')
		default:
			b.WriteByte('0')
		}
	}
	return b.String()
}

// RangeToFields decomposes the inclusive integer range [lo, hi] over width w
// into the minimal set of ternary prefixes covering it — the classic TCAM
// range expansion that makes ACL port ranges expensive.
func RangeToFields(lo, hi uint64, w uint) []Field {
	if lo > hi {
		return nil
	}
	max := widthMask(w)
	if hi > max {
		hi = max
	}
	var out []Field
	for lo <= hi {
		// Largest power-of-two block starting at lo that stays within hi.
		var size uint64 = 1
		for {
			next := size << 1
			if next == 0 || lo&(next-1) != 0 || lo+next-1 > hi {
				break
			}
			size = next
		}
		out = append(out, Field{
			Value: lo &^ (size - 1),
			Mask:  max &^ (size - 1),
		})
		if lo+size-1 == max {
			break // avoid wraparound
		}
		lo += size
	}
	return out
}
