package cachepolicy

import (
	"sort"

	"difane/internal/flowspace"
	"difane/internal/tcam"
)

// Region pairs one flow-space partition with its clipped rules in TCAM
// order — the authority-side ground truth aggregation must stay sound
// against.
type Region struct {
	Index int
	Match flowspace.Match
	Rules []flowspace.Rule
}

// Plan is one aggregation step: install Cover and delete the Replace
// entries it subsumes. The cover is computed by the same CoverFor
// subtraction StrategyCover installs from, so it satisfies the oracle's
// CacheRuleSound invariant by construction.
type Plan struct {
	Region  int
	Cover   flowspace.Rule
	Replace []uint64
}

// aggGroup accumulates the exact-match entries that collapse into one
// cover.
type aggGroup struct {
	region   int
	cover    flowspace.Match
	priority int32
	action   flowspace.Action
	ids      []uint64
}

// PlanAggregation scans a switch's cache entries for groups of at least
// AggregateMin exact-match entries whose keys yield the same CoverFor
// cover inside one region — near-microflow shards of a single wildcard
// decision (the exact-strategy and cover-sliver fallback paths mint
// these) — and returns one plan per such group. allocID mints each cover
// rule's table ID. Deterministic: plans are ordered by (region, smallest
// replaced ID).
func (p *Policy) PlanAggregation(entries []tcam.Entry, regions []Region, allocID func() uint64) []Plan {
	type groupKey struct {
		region int
		cover  flowspace.Match
	}
	groups := make(map[groupKey]*aggGroup)
	for _, e := range entries {
		k, ok := exactKeyOf(e.Rule.Match)
		if !ok {
			continue
		}
		var reg *Region
		for i := range regions {
			if regions[i].Match.Matches(k) {
				reg = &regions[i]
				break
			}
		}
		if reg == nil {
			continue
		}
		hitRule, ok := flowspace.EvalTable(reg.Rules, k)
		if !ok || hitRule.Action != e.Rule.Action {
			continue // stale or foreign entry; aggregation must not launder it
		}
		hit := -1
		for i := range reg.Rules {
			if reg.Rules[i].ID == hitRule.ID {
				hit = i
				break
			}
		}
		if hit < 0 {
			continue
		}
		cover, ok := flowspace.CoverFor(reg.Rules, hit, reg.Match, k)
		if !ok || cover == e.Rule.Match {
			continue // no wider cover exists for this key
		}
		gk := groupKey{region: reg.Index, cover: cover}
		g := groups[gk]
		if g == nil {
			g = &aggGroup{region: reg.Index, cover: cover,
				priority: hitRule.Priority, action: hitRule.Action}
			groups[gk] = g
		}
		g.ids = append(g.ids, e.Rule.ID)
	}

	var picked []*aggGroup
	for _, g := range groups {
		if len(g.ids) >= p.cfg.AggregateMin {
			sort.Slice(g.ids, func(i, j int) bool { return g.ids[i] < g.ids[j] })
			picked = append(picked, g)
		}
	}
	sort.Slice(picked, func(i, j int) bool {
		if picked[i].region != picked[j].region {
			return picked[i].region < picked[j].region
		}
		return picked[i].ids[0] < picked[j].ids[0]
	})

	var plans []Plan
	for _, g := range picked {
		plans = append(plans, Plan{
			Region: g.region,
			Cover: flowspace.Rule{
				ID:       allocID(),
				Priority: g.priority,
				Match:    g.cover,
				Action:   g.action,
			},
			Replace: g.ids,
		})
		p.aggregations.Add(1)
		p.aggReplaced.Add(uint64(len(g.ids)))
	}
	return plans
}

// exactKeyOf extracts the concrete key of a fully exact match, or false
// when any field carries a wildcard bit.
func exactKeyOf(m flowspace.Match) (flowspace.Key, bool) {
	var k flowspace.Key
	for f := flowspace.FieldID(0); f < flowspace.NumFields; f++ {
		if !m.Fields[f].IsExact(f.Width()) {
			return k, false
		}
		k[f] = m.Fields[f].Value
	}
	return k, true
}
