package experiments

import (
	"fmt"
	"strings"
	"time"

	"difane/internal/core"
	"difane/internal/flowspace"
	"difane/internal/metrics"
	"difane/internal/packet"
	"difane/internal/wire"
)

// --- W3: controller outage + miss-storm overload (wire prototype) ---------------

// RobustnessResult reports the two wire-mode robustness scenarios: a miss
// storm against a configured redirect budget, and a controller crash
// ridden out by the switches.
type RobustnessResult struct {
	// Miss-storm phase.
	StormInjected  uint64
	StormDelivered uint64
	RedirectShed   uint64
	InstallShed    uint64
	PeakQueue      int
	QueueBound     int
	StormLost      uint64 // drops other than deliberate shedding

	// Controller-outage phase.
	OutageInjected uint64
	OutageServed   uint64
	OutageLost     uint64
	Buffered       uint64
	Drained        uint64
	EpochBefore    uint64
	EpochAfter     uint64
}

// wireRobustPolicy forwards HTTP to switch 4 and drops the rest —
// small enough that authority rules fit one partition per authority.
func wireRobustPolicy() []flowspace.Rule {
	return []flowspace.Rule{
		{ID: 1, Priority: 10,
			Match:  flowspace.MatchAll().WithExact(flowspace.FTPDst, 80),
			Action: flowspace.Action{Kind: flowspace.ActForward, Arg: 4}},
		{ID: 2, Priority: 0, Match: flowspace.MatchAll(),
			Action: flowspace.Action{Kind: flowspace.ActForward, Arg: 4}},
	}
}

func wireHTTP(src uint32) packet.Header {
	return packet.Header{
		EthType: packet.EthTypeIPv4, IPProto: packet.ProtoTCP,
		IPSrc: src, IPDst: packet.IP4(10, 0, 0, 1), TPDst: 80,
	}
}

// settle polls cond for up to 10s — wire mode runs on real goroutines, so
// results are awaited, not stepped.
func settle(cond func() bool) bool {
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
	return true
}

// WireRobustness measures the two failure modes PR'd into wire mode: an
// ingress miss storm against a token-bucket redirect budget (the tail is
// shed, the authority queue stays bounded, every packet is accounted
// for), and a controller crash mid-trace (switches keep forwarding from
// cached + authority rules, buffer their controller-bound installs, and
// drain them when a restarted controller returns under a higher epoch).
func WireRobustness(o Options) *RobustnessResult {
	res := &RobustnessResult{}
	storm := scaleInt(o, 300)
	const queueDepth = 1024

	// Phase 1: miss storm. Exact caching makes every distinct source a
	// genuine miss; the redirect budget sheds most of a burst of `storm`
	// simultaneous arrivals, and the tighter install budget suppresses
	// cache installs for most of the redirects that do get through.
	{
		c, err := wire.NewCluster(wire.ClusterConfig{
			Switches:    []uint32{0, 1, 2, 3, 4},
			Authorities: []uint32{2, 3},
			Policy:      wireRobustPolicy(),
			Strategy:    core.StrategyExact,
			QueueDepth:  queueDepth,
			Overload: wire.OverloadConfig{
				RedirectRate: 100, RedirectBurst: 32,
				CacheInstallRate: 10, CacheInstallBurst: 2,
			},
		})
		if err != nil {
			panic(err)
		}
		var injected uint64
		for i := 0; i < storm; i++ {
			if c.Inject(0, wireHTTP(uint32(1000+i)), 100) {
				injected++
			}
		}
		// Every injected packet reaches a terminal accounting point:
		// delivered, policy-dropped, or shed.
		settle(func() bool {
			m := c.Measurements()
			total := m.Delivered + m.Drops.Policy + m.Drops.RedirectShed +
				m.Drops.Hole + m.Drops.Unreachable + m.Drops.AuthorityQueue
			return total >= injected
		})
		m := c.Measurements()
		res.StormInjected = injected
		res.StormDelivered = m.Delivered
		res.RedirectShed = m.Drops.RedirectShed
		res.InstallShed = m.CacheInstallsShed
		res.PeakQueue = c.PeakQueueDepth()
		res.QueueBound = queueDepth
		res.StormLost = m.Drops.Hole + m.Drops.Unreachable + m.Drops.AuthorityQueue
		c.Close()
	}

	// Phase 2: controller outage. Warm one cached flow, kill the
	// controller, then push cached and brand-new flows: both must be
	// served entirely in the data plane, with cache installs buffered and
	// drained on restore.
	{
		c, err := wire.NewCluster(wire.ClusterConfig{
			Switches:    []uint32{0, 1, 2, 3, 4},
			Authorities: []uint32{2, 3},
			Policy:      wireRobustPolicy(),
			Strategy:    core.StrategyExact,
			Heartbeat:   wire.HeartbeatConfig{Interval: 5 * time.Millisecond, MissThreshold: 3},
		})
		if err != nil {
			panic(err)
		}
		c.Inject(0, wireHTTP(1), 100)
		settle(func() bool { return c.Measurements().Delivered >= 1 && c.CacheLen(0) > 0 })
		base := c.Measurements()
		res.EpochBefore = c.Epoch()

		c.KillController()
		const cachedPkts, newFlows = 20, 10
		var injected uint64
		for i := 0; i < cachedPkts; i++ {
			if c.Inject(0, wireHTTP(1), 100) {
				injected++
			}
		}
		for i := 0; i < newFlows; i++ {
			if c.Inject(1, wireHTTP(uint32(5000+i)), 100) {
				injected++
			}
		}
		settle(func() bool { return c.Measurements().Delivered >= base.Delivered+injected })
		mid := c.Measurements()
		res.OutageInjected = injected
		res.OutageServed = mid.Delivered - base.Delivered
		res.OutageLost = (mid.Drops.Hole - base.Drops.Hole) +
			(mid.Drops.Unreachable - base.Drops.Unreachable) +
			(mid.Drops.AuthorityQueue - base.Drops.AuthorityQueue)

		c.RestoreController()
		settle(func() bool {
			m := c.Measurements()
			return m.OutageDrained >= 1 || m.OutageBuffered == 0
		})
		m := c.Measurements()
		res.Buffered = m.OutageBuffered
		res.Drained = m.OutageDrained
		res.EpochAfter = c.Epoch()
		c.Close()
	}
	return res
}

// Render prints the W3 tables.
func (r *RobustnessResult) Render() string {
	var b strings.Builder
	b.WriteString(header("W3", "wire-mode robustness: miss storm + controller outage"))
	var tb metrics.Table
	tb.AddRow("miss storm (100/s redirect budget)", "value")
	tb.AddRowf("injected", r.StormInjected)
	tb.AddRowf("delivered", r.StormDelivered)
	tb.AddRowf("redirects shed", r.RedirectShed)
	tb.AddRowf("cache installs shed", r.InstallShed)
	tb.AddRow("peak switch queue", fmt.Sprintf("%d / %d", r.PeakQueue, r.QueueBound))
	tb.AddRowf("lost (non-shed drops)", r.StormLost)
	b.WriteString(tb.String())
	accounted := r.StormDelivered + r.RedirectShed + r.StormLost
	fmt.Fprintf(&b, "accounting: %d delivered + %d shed + %d lost = %d of %d injected\n\n",
		r.StormDelivered, r.RedirectShed, r.StormLost, accounted, r.StormInjected)

	var tb2 metrics.Table
	tb2.AddRow("controller outage", "value")
	tb2.AddRowf("packets injected mid-outage", r.OutageInjected)
	tb2.AddRowf("served data-plane only", r.OutageServed)
	tb2.AddRowf("lost", r.OutageLost)
	tb2.AddRowf("installs buffered", r.Buffered)
	tb2.AddRowf("installs drained on restore", r.Drained)
	tb2.AddRow("epoch before -> after", fmt.Sprintf("%d -> %d", r.EpochBefore, r.EpochAfter))
	b.WriteString(tb2.String())
	return b.String()
}
