package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"
)

// Snapshot is the Deployment.Telemetry() return shape: one scrape of the
// metric registry plus the flight recorder's accounting. Backends without
// a recorder (sim, baseline) leave Trace zeroed with Enabled=false.
type Snapshot struct {
	Metrics []MetricSnapshot `json:"metrics"`
	Trace   RecorderStats    `json:"trace"`
}

// Value looks up an unlabeled (or first-point) metric value by name.
func (s *Snapshot) Value(name string) (float64, bool) {
	for i := range s.Metrics {
		m := &s.Metrics[i]
		if m.Name != name || len(m.Points) == 0 {
			continue
		}
		return m.Points[0].Value, true
	}
	return 0, false
}

// Server serves a registry and recorder over HTTP:
//
//	/metrics       Prometheus text exposition
//	/vars          expvar-style JSON scrape
//	/trace         flight-recorder dump (JSON), filterable via query params
//	/debug/pprof/  the standard profiling endpoints
//
// plus any extra handlers the caller mounts (wire adds /status).
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Handler builds the telemetry mux without binding a listener — used by
// the server and directly by tests. extra maps additional patterns to
// handlers; rec may be nil (the /trace endpoint then reports tracing
// unavailable).
func Handler(reg *Registry, rec *Recorder, extra map[string]http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = reg.WriteJSON(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		serveTrace(w, r, rec)
	})
	mux.HandleFunc("/journeys", func(w http.ResponseWriter, r *http.Request) {
		serveJourneys(w, r, rec)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for pattern, h := range extra {
		mux.Handle(pattern, h)
	}
	return mux
}

// TraceResponse is the /trace JSON shape.
type TraceResponse struct {
	NowNS   int64         `json:"now_ns"`
	Enabled bool          `json:"enabled"`
	Stats   RecorderStats `json:"stats"`
	Events  []EventJSON   `json:"events"`
}

// serveTrace dumps filtered flight-recorder events. Query params: node,
// kind (comma-separated names), flow (hash), ipsrc/ipdst (dotted quad),
// tpdst, since (ns timestamp from a prior response; only newer events are
// returned), limit (default 256, 0 = all).
func serveTrace(w http.ResponseWriter, r *http.Request, rec *Recorder) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if rec == nil {
		http.Error(w, `{"error":"no flight recorder on this deployment"}`, http.StatusNotFound)
		return
	}
	q := r.URL.Query()
	f := Filter{Limit: 256}
	var err error
	if v := q.Get("node"); v != "" {
		n, perr := strconv.ParseUint(v, 10, 32)
		if perr != nil {
			err = fmt.Errorf("bad node %q", v)
		} else {
			f.Node = Node(uint32(n))
		}
	}
	if v := q.Get("kind"); v != "" && err == nil {
		for _, name := range strings.Split(v, ",") {
			k, ok := KindFromString(strings.TrimSpace(name))
			if !ok {
				err = fmt.Errorf("unknown kind %q", name)
				break
			}
			f.Kinds = append(f.Kinds, k)
		}
	}
	if v := q.Get("flow"); v != "" && err == nil {
		f.Flow, err = strconv.ParseUint(v, 10, 64)
	}
	if v := q.Get("ipsrc"); v != "" && err == nil {
		ip, ok := ParseIP(v)
		if !ok {
			err = fmt.Errorf("bad ipsrc %q", v)
		}
		f.IPSrc = ip
	}
	if v := q.Get("ipdst"); v != "" && err == nil {
		ip, ok := ParseIP(v)
		if !ok {
			err = fmt.Errorf("bad ipdst %q", v)
		}
		f.IPDst = ip
	}
	if v := q.Get("tpdst"); v != "" && err == nil {
		var n uint64
		n, err = strconv.ParseUint(v, 10, 16)
		f.TPDst = uint16(n)
	}
	if v := q.Get("trace"); v != "" && err == nil {
		f.Trace, err = strconv.ParseUint(v, 10, 64)
	}
	if v := q.Get("since"); v != "" && err == nil {
		f.SinceTS, err = strconv.ParseInt(v, 10, 64)
	}
	if v := q.Get("limit"); v != "" && err == nil {
		f.Limit, err = strconv.Atoi(v)
	}
	if err != nil {
		http.Error(w, fmt.Sprintf(`{"error":%q}`, err), http.StatusBadRequest)
		return
	}
	events := rec.Events(f)
	resp := TraceResponse{
		NowNS:   rec.Now(),
		Enabled: rec.Enabled(),
		Stats:   rec.Stats(),
		Events:  make([]EventJSON, 0, len(events)),
	}
	for _, ev := range events {
		resp.Events = append(resp.Events, ev.JSON())
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp)
}

// JourneysResponse is the /journeys JSON shape.
type JourneysResponse struct {
	NowNS    int64         `json:"now_ns"`
	Enabled  bool          `json:"enabled"`
	Sampled  bool          `json:"sampled"` // false when no trace-stamped events exist
	Stats    JourneyStats  `json:"stats"`
	Journeys []JourneyJSON `json:"journeys"`
}

// serveJourneys assembles and dumps end-to-end journeys. Query params:
// flow (hash), trace (ID), dropped (=1 keeps only dropped/shed journeys),
// slowest (=1 orders by latency descending), limit (default 64, 0 = all),
// fresh (ns window for the in-flight classification).
func serveJourneys(w http.ResponseWriter, r *http.Request, rec *Recorder) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if rec == nil {
		http.Error(w, `{"error":"no flight recorder on this deployment"}`, http.StatusNotFound)
		return
	}
	q := r.URL.Query()
	f := JourneyFilter{Limit: 64, NowNS: rec.Now()}
	var err error
	if v := q.Get("flow"); v != "" {
		f.Flow, err = strconv.ParseUint(v, 10, 64)
	}
	if v := q.Get("trace"); v != "" && err == nil {
		f.Trace, err = strconv.ParseUint(v, 10, 64)
	}
	if v := q.Get("dropped"); v != "" && err == nil {
		f.DroppedOnly = v == "1" || v == "true"
	}
	if v := q.Get("slowest"); v != "" && err == nil {
		f.Slowest = v == "1" || v == "true"
	}
	if v := q.Get("limit"); v != "" && err == nil {
		f.Limit, err = strconv.Atoi(v)
	}
	if v := q.Get("fresh"); v != "" && err == nil {
		f.FreshNS, err = strconv.ParseInt(v, 10, 64)
	}
	if err != nil {
		http.Error(w, fmt.Sprintf(`{"error":%q}`, err), http.StatusBadRequest)
		return
	}
	journeys, stats := AssembleJourneys(rec, f)
	resp := JourneysResponse{
		NowNS:    rec.Now(),
		Enabled:  rec.Enabled(),
		Sampled:  stats.Total > 0,
		Stats:    stats,
		Journeys: make([]JourneyJSON, 0, len(journeys)),
	}
	for _, j := range journeys {
		resp.Journeys = append(resp.Journeys, j.JSON())
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp)
}

// Serve binds addr (":0" picks an ephemeral port) and serves the
// telemetry endpoints until Close.
func Serve(addr string, reg *Registry, rec *Recorder, extra map[string]http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{
		ln:  ln,
		srv: &http.Server{Handler: Handler(reg, rec, extra), ReadHeaderTimeout: 5 * time.Second},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }
