// Package oracle is the reference semantics every DIFANE deployment is
// differentially tested against: it evaluates the operator's prioritized
// wildcard policy directly — one linear priority scan over the raw rule
// list, no partitioning, no authority switches, no caching — and returns
// the authoritative verdict for a packet. DIFANE's core correctness claim
// (PAPER.md §1) is that the distributed machinery is observationally
// equivalent to this single-point evaluation; internal/scencheck replays
// seeded scenarios through the simulator, the reactive baseline, and the
// wire prototype and asserts each packet's outcome against this oracle.
//
// The implementation deliberately repeats the priority/tie-break logic
// instead of delegating to flowspace.EvalTable, so a bug in the shared
// table semantics cannot hide by infecting both sides of the comparison.
package oracle

import (
	"fmt"

	"difane/internal/flowspace"
)

// VerdictKind classifies what the policy says happens to a packet.
type VerdictKind uint8

const (
	// Deliver means the packet is forwarded to Verdict.Egress.
	Deliver VerdictKind = iota
	// Drop means the packet matched a deny rule — an intentional drop.
	Drop
	// Hole means no rule matched (or the matched action is not a
	// data-plane action): the packet falls into a policy hole.
	Hole
)

func (k VerdictKind) String() string {
	switch k {
	case Deliver:
		return "deliver"
	case Drop:
		return "drop"
	case Hole:
		return "hole"
	default:
		return fmt.Sprintf("verdict(%d)", uint8(k))
	}
}

// Verdict is the oracle's authoritative answer for one packet.
type Verdict struct {
	Kind VerdictKind
	// Egress is the destination switch when Kind == Deliver.
	Egress uint32
	// RuleID identifies the winning rule (0 when Kind == Hole and no rule
	// matched).
	RuleID uint64
}

func (v Verdict) String() string {
	switch v.Kind {
	case Deliver:
		return fmt.Sprintf("deliver(%d) via rule %d", v.Egress, v.RuleID)
	case Drop:
		return fmt.Sprintf("drop via rule %d", v.RuleID)
	default:
		return "hole"
	}
}

// Evaluate runs the reference single-table semantics: scan every rule,
// keep the one with the highest priority (ties break toward the lower
// ID), and map its action to a verdict. Rules may be in any order.
func Evaluate(policy []flowspace.Rule, k flowspace.Key) Verdict {
	best := -1
	for i := range policy {
		if !policy[i].Match.Matches(k) {
			continue
		}
		if best < 0 ||
			policy[i].Priority > policy[best].Priority ||
			(policy[i].Priority == policy[best].Priority && policy[i].ID < policy[best].ID) {
			best = i
		}
	}
	if best < 0 {
		return Verdict{Kind: Hole}
	}
	r := policy[best]
	switch r.Action.Kind {
	case flowspace.ActForward, flowspace.ActCount:
		return Verdict{Kind: Deliver, Egress: r.Action.Arg, RuleID: r.ID}
	case flowspace.ActDrop:
		return Verdict{Kind: Drop, RuleID: r.ID}
	default:
		// Redirect/controller actions are implementation artifacts, not
		// operator policy; a policy containing them has a semantic hole.
		return Verdict{Kind: Hole, RuleID: r.ID}
	}
}

// CacheRuleSound reports whether a cached ingress rule is semantically
// justified by a set of clipped authority rule lists: some authority rule
// must cover the cached rule's entire region with the same action. Every
// cache-generation strategy (cover, dependent, exact) produces rules that
// are subsets of the clipped rule they stand for, so an unsound cache
// rule means the caching machinery invented semantics the policy never
// had. Rule IDs are compared modulo the consistent-update generation band
// (the low 32 bits), since staged generations re-key IDs.
func CacheRuleSound(cached flowspace.Rule, partitions [][]flowspace.Rule) bool {
	for _, rules := range partitions {
		for _, r := range rules {
			if r.Action == cached.Action && r.Match.Contains(cached.Match) {
				return true
			}
		}
	}
	return false
}

// ExactKey reconstructs the concrete key of an exact-match rule (every
// field fully pinned), reporting false if any field has wildcard bits.
// The baseline's microflow cache rules are validated by evaluating the
// oracle at this key.
func ExactKey(m flowspace.Match) (flowspace.Key, bool) {
	var k flowspace.Key
	for f := flowspace.FieldID(0); f < flowspace.NumFields; f++ {
		if !m.Fields[f].IsExact(f.Width()) {
			return flowspace.Key{}, false
		}
		k[f] = m.Fields[f].Value
	}
	return k, true
}
