package telemetry

import "testing"

// journeyRecorder builds an enabled recorder whose rings are big enough
// that nothing wraps unless a test floods one deliberately.
func journeyRecorder(nodes ...uint32) *Recorder {
	return NewRecorder(nodes, 64, true)
}

func TestAssembleJourneysCompleteStory(t *testing.T) {
	rec := journeyRecorder(0, 2, 4)
	flow := Tuple(1, 2, 0, 80, 6)
	const trace = 0xabc
	rec.Publish(Event{TS: 10, Kind: EvIngress, Node: 0, Trace: trace, Flow: flow})
	rec.Publish(Event{TS: 20, Kind: EvRedirect, Node: 0, Peer: 2, Trace: trace, Flow: flow})
	rec.Publish(Event{TS: 30, Kind: EvAuthority, Node: 2, Peer: 0, RuleID: 1, Trace: trace, Flow: flow})
	rec.Publish(Event{TS: 40, Kind: EvVerdict, Node: 4, Verdict: VDelivered, Value: 35, Trace: trace, Flow: flow})

	js, stats := AssembleJourneys(rec, JourneyFilter{})
	if stats.Total != 1 || stats.Complete != 1 {
		t.Fatalf("stats = %+v, want 1 complete", stats)
	}
	if len(js) != 1 {
		t.Fatalf("got %d journeys", len(js))
	}
	j := js[0]
	if !j.Complete || j.Gap || j.InFlight || j.Dropped {
		t.Fatalf("classification wrong: %+v", j)
	}
	if j.Trace != trace || j.Flow.Hash != flow.Hash {
		t.Fatalf("identity wrong: %+v", j)
	}
	if j.Terminal != "delivered" {
		t.Fatalf("terminal = %q", j.Terminal)
	}
	// Delivery verdicts carry the latency in Value; it wins over EndTS−StartTS.
	if j.LatencyNS != 35 {
		t.Fatalf("latency = %d, want 35 (from verdict Value)", j.LatencyNS)
	}
	if j.StartTS != 10 || j.EndTS != 40 {
		t.Fatalf("span window = [%d, %d]", j.StartTS, j.EndTS)
	}
	for i := 1; i < len(j.Events); i++ {
		if j.Events[i-1].TS > j.Events[i].TS {
			t.Fatalf("events out of timestamp order: %+v", j.Events)
		}
	}
	if stats.Completeness() != 1 {
		t.Fatalf("completeness = %v", stats.Completeness())
	}
}

func TestAssembleJourneysDroppedOnlyFilter(t *testing.T) {
	rec := journeyRecorder(0)
	good := Tuple(1, 2, 0, 80, 6)
	bad := Tuple(3, 2, 0, 22, 6)
	rec.Publish(Event{TS: 10, Kind: EvIngress, Node: 0, Trace: 1, Flow: good})
	rec.Publish(Event{TS: 20, Kind: EvVerdict, Node: 0, Verdict: VDelivered, Value: 9, Trace: 1, Flow: good})
	rec.Publish(Event{TS: 30, Kind: EvIngress, Node: 0, Trace: 2, Flow: bad})
	rec.Publish(Event{TS: 40, Kind: EvVerdict, Node: 0, Verdict: VDropPolicy, Trace: 2, Flow: bad})

	js, stats := AssembleJourneys(rec, JourneyFilter{DroppedOnly: true})
	if stats.Total != 2 || stats.Complete != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	if len(js) != 1 || js[0].Trace != 2 || !js[0].Dropped || js[0].Terminal != "drop-policy" {
		t.Fatalf("dropped-only filter returned %+v", js)
	}
}

// A journey missing its ingress is Gap-classified when some ring wrapped
// over the window where the missing spans would have been recorded.
func TestAssembleJourneysGapOnRingWrap(t *testing.T) {
	rec := NewRecorder([]uint32{0, 1}, 8, true)
	// Node 1 retains only the tail of a journey that began at TS 100.
	rec.Publish(Event{TS: 100, Kind: EvAuthority, Node: 1, Trace: 5, Flow: Tuple(1, 2, 0, 80, 6)})
	// Flood node 0's ring with unsampled events so it wraps; its oldest
	// retained TS (≥ 500) is after the incomplete journey's start, so the
	// missing ingress may have been overwritten.
	for i := 0; i < 12; i++ {
		rec.Publish(Event{TS: int64(500 + i), Kind: EvForward, Node: 0})
	}
	if rec.Ring(0).Dropped() == 0 {
		t.Fatal("test setup: node 0's ring must have wrapped")
	}

	_, stats := AssembleJourneys(rec, JourneyFilter{})
	if stats.Total != 1 || stats.Gapped != 1 {
		t.Fatalf("stats = %+v, want the TS-100 journey gap-classified", stats)
	}
	// Gapped journeys leave the completeness denominator: the recorder, not
	// the data plane, lost the evidence.
	if got := stats.Completeness(); got != 1 {
		t.Fatalf("completeness = %v, want 1 (gap excuses the journey)", got)
	}
}

func TestAssembleJourneysInFlightVsUnexplained(t *testing.T) {
	rec := journeyRecorder(0)
	flow := Tuple(1, 2, 0, 80, 6)
	// Incomplete journey whose newest span is 1ms old at assembly time.
	rec.Publish(Event{TS: 1_000_000, Kind: EvIngress, Node: 0, Trace: 3, Flow: flow})

	_, fresh := AssembleJourneys(rec, JourneyFilter{NowNS: 2_000_000, FreshNS: 250_000_000})
	if fresh.InFlight != 1 || fresh.Unexplained != 0 {
		t.Fatalf("fresh stats = %+v, want in-flight", fresh)
	}
	// The same journey judged long after: no excuse left.
	_, stale := AssembleJourneys(rec, JourneyFilter{NowNS: 2_000_000_000, FreshNS: 250_000_000})
	if stale.Unexplained != 1 || stale.InFlight != 0 {
		t.Fatalf("stale stats = %+v, want unexplained", stale)
	}
	// In-flight journeys don't count against completeness; unexplained do.
	if fresh.Completeness() != 1 {
		t.Fatalf("fresh completeness = %v", fresh.Completeness())
	}
	if stale.Completeness() != 0 {
		t.Fatalf("stale completeness = %v", stale.Completeness())
	}
}

func TestAssembleJourneysOrderingAndLimit(t *testing.T) {
	rec := journeyRecorder(0)
	mk := func(trace uint64, start, latency int64) {
		flow := Tuple(uint32(trace), 2, 0, 80, 6)
		rec.Publish(Event{TS: start, Kind: EvIngress, Node: 0, Trace: trace, Flow: flow})
		rec.Publish(Event{TS: start + latency, Kind: EvVerdict, Node: 0,
			Verdict: VDelivered, Value: uint64(latency), Trace: trace, Flow: flow})
	}
	mk(1, 100, 50)
	mk(2, 200, 300)
	mk(3, 300, 10)

	byStart, _ := AssembleJourneys(rec, JourneyFilter{})
	if len(byStart) != 3 || byStart[0].Trace != 1 || byStart[2].Trace != 3 {
		t.Fatalf("default order wrong: %+v", byStart)
	}
	slowest, _ := AssembleJourneys(rec, JourneyFilter{Slowest: true, Limit: 1})
	if len(slowest) != 1 || slowest[0].Trace != 2 {
		t.Fatalf("slowest-first limit 1 returned %+v", slowest)
	}
	one, stats := AssembleJourneys(rec, JourneyFilter{Trace: 3})
	if len(one) != 1 || one[0].Trace != 3 {
		t.Fatalf("trace filter returned %+v", one)
	}
	// Stats always cover every assembled journey, not just the filtered view.
	if stats.Total != 3 {
		t.Fatalf("stats.Total = %d, want 3", stats.Total)
	}
}

func TestJourneyJSONShape(t *testing.T) {
	rec := journeyRecorder(0)
	flow := Tuple(0x0a000001, 0x0a000002, 1234, 80, 6)
	rec.Publish(Event{TS: 10, Kind: EvIngress, Node: 0, Trace: 7, Flow: flow})
	rec.Publish(Event{TS: 25, Kind: EvVerdict, Node: 0, Verdict: VDelivered, Value: 15, Trace: 7, Flow: flow})
	js, _ := AssembleJourneys(rec, JourneyFilter{})
	if len(js) != 1 {
		t.Fatalf("got %d journeys", len(js))
	}
	j := js[0].JSON()
	if j.Src != "10.0.0.1:1234" || j.Dst != "10.0.0.2:80" {
		t.Fatalf("endpoints = %q -> %q", j.Src, j.Dst)
	}
	if !j.Complete || j.Terminal != "delivered" || j.LatencyNS != 15 || len(j.Events) != 2 {
		t.Fatalf("JSON shape wrong: %+v", j)
	}
}
