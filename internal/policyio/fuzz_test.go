package policyio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseRule throws arbitrary lines at the rule parser: it must never
// panic, and any line it accepts must survive Write→Parse unchanged.
func FuzzParseRule(f *testing.F) {
	f.Add("rule 1 prio 100 ip_src=10.0.0.0/8 tp_dst=80 -> forward(4)")
	f.Add("rule 2 prio 0 -> drop")
	f.Add("rule 3 prio 5 tp_dst=1-1024 ip_proto=udp -> drop")
	f.Add("rule 4 prio 5 eth_src=00:11:22:33:44:55 vlan=12 -> count")
	f.Add("-> drop")
	f.Add("rule")
	f.Add("rule 9 prio 9 ip_src=1.2.3.4/33 -> drop")

	f.Fuzz(func(t *testing.T, line string) {
		rules, err := ParseRule(line)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, rules); err != nil {
			// Parsed rules are always writable (prefixes + exacts only).
			t.Fatalf("accepted rule not writable: %v (line %q)", err, line)
		}
		again, err := Parse(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("round trip parse failed: %v\n%s", err, buf.String())
		}
		if len(again) != len(rules) {
			t.Fatalf("round trip rule count %d != %d", len(again), len(rules))
		}
		for i := range rules {
			if rules[i] != again[i] {
				t.Fatalf("rule %d changed:\n%+v\n%+v", i, rules[i], again[i])
			}
		}
	})
}
