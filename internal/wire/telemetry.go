package wire

import (
	"net/http"
	"sort"
	"strconv"
	"time"

	"difane/internal/metrics"
	"difane/internal/packet"
	"difane/internal/proto"
	"difane/internal/tcam"
	"difane/internal/telemetry"
)

// TelemetryConfig tunes the cluster's observability layer. The flight
// recorder and metric registry always exist (a scrape costs nothing until
// read); this config controls whether tracing starts enabled and whether
// an HTTP endpoint serves them.
type TelemetryConfig struct {
	// Addr, when non-empty, serves the telemetry HTTP endpoint on this
	// address (":0" picks an ephemeral port — read it back with
	// Cluster.TelemetryAddr):
	//
	//	/metrics      Prometheus text exposition
	//	/vars         expvar-style JSON
	//	/trace        flight-recorder dump with filters
	//	/status       the cluster status report
	//	/debug/pprof  the standard profiling endpoints
	Addr string
	// Tracing starts the flight recorder enabled. Off, the data plane pays
	// one atomic load per would-be event; on, events are recorded into
	// per-node lock-free rings that never block forwarding. Toggle at
	// runtime with Cluster.SetTracing.
	Tracing bool
	// TraceBuffer is each node's ring capacity in events, rounded up to a
	// power of two (default 4096). Old events are overwritten when a ring
	// wraps; the overwrite count is exported as difane_trace_dropped_total.
	TraceBuffer int
	// TraceSample turns on per-packet journey sampling: 1 in N injected
	// packets (chosen by a deterministic hash of flow and sequence) is
	// stamped with a trace ID that follows it across every hop, so its
	// span events assemble into an end-to-end journey at /journeys. 0
	// disables sampling — the injection path then pays one atomic load.
	// Requires Tracing (or a later SetTracing(true)) for spans to record.
	// Adjustable at runtime with Cluster.SetTraceSample.
	TraceSample int
	// Health tunes the SLO watchdog's rule thresholds (zero values take
	// the documented defaults).
	Health telemetry.HealthConfig
	// HealthInterval paces the watchdog's registry scrapes (default 1s).
	HealthInterval time.Duration
	// DisableHealth turns the watchdog ticker off. The watchdog itself
	// still exists: EvalOnce-driven tests and /health keep working.
	DisableHealth bool
}

func (t *TelemetryConfig) applyDefaults() {
	if t.TraceBuffer <= 0 {
		t.TraceBuffer = 4096
	}
	if t.TraceSample < 0 {
		t.TraceSample = 0
	}
	if t.HealthInterval <= 0 {
		t.HealthInterval = time.Second
	}
}

// flowOf projects a packet header onto the trace event flow tuple.
func flowOf(h *packet.Header) telemetry.FlowTuple {
	return telemetry.Tuple(h.IPSrc, h.IPDst, h.TPSrc, h.TPDst, h.IPProto)
}

// initTelemetry builds the recorder and attaches the TCAM install/evict
// hooks. Called after the assignment pre-installs (so boot-time rule
// pushes don't flood the rings) and before any switch goroutine starts
// (the hook-set-before-sharing contract).
func (c *Cluster) initTelemetry() {
	ids := make([]uint32, 0, len(c.switches)+1)
	for id := range c.switches {
		ids = append(ids, id)
	}
	ids = append(ids, telemetry.ClusterNode)
	c.rec = telemetry.NewRecorder(ids, c.cfg.Telemetry.TraceBuffer, c.cfg.Telemetry.Tracing)
	c.sampler = telemetry.NewSampler(c.cfg.Telemetry.TraceSample)
	c.conv = telemetry.NewConvergence(0)
	for _, n := range c.switches {
		c.attachTableHooks(n)
	}
	c.reg = telemetry.NewRegistry()
	c.buildRegistry()
	c.conv.RegisterMetrics(c.reg)
	// The watchdog scrapes the registry it is registered into; its EvalOnce
	// snapshots before locking, so its own gauges stay deadlock-free.
	c.wd = telemetry.NewWatchdog(c.reg, telemetry.DefaultHealthRules(c.cfg.Telemetry.Health))
	c.wd.RegisterMetrics(c.reg)
	if c.cachePol != nil {
		c.cachePol.RegisterMetrics(c.reg)
	}
}

// counterTotals snapshots the disturbed-traffic counters the convergence
// tracker diffs across a policy-update window.
func (c *Cluster) counterTotals() telemetry.CounterTotals {
	t := telemetry.CounterTotals{Dropped: c.dropped.Load()}
	add := func(s *nodeStats) {
		t.Redirects += s.redirects.Load()
		t.Shed += s.dropRedirectShed.Load() + s.cacheInstallsShed.Load()
	}
	add(c.ext)
	for _, n := range c.switches {
		add(n.stats)
	}
	return t
}

// healthLoop drives the SLO watchdog on its ticker until the cluster stops.
func (c *Cluster) healthLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.Telemetry.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-c.ctx.Done():
			return
		case <-t.C:
			c.wd.EvalOnce(nowNS())
		}
	}
}

// attachTableHooks publishes install/evict/expire trace events for one
// switch's three rule tables. The hooks fire per rule-table mutation —
// a firehose under cache churn — so they record only in full-tracing
// mode: once journey sampling is on, the recording budget belongs to
// sampled packets (whose installs land in their journeys via the traced
// EvInstall in the CacheInstall path).
func (c *Cluster) attachTableHooks(n *node) {
	id := n.id
	record := func() bool { return c.rec.Enabled() && c.sampler.Rate() == 0 }
	for _, t := range []proto.Table{proto.TableCache, proto.TableAuthority, proto.TablePartition} {
		table := n.sw.Table(t)
		code := uint8(t) // proto table numbering matches the telemetry codes
		table.OnInstall = func(e tcam.Entry) {
			if record() {
				c.rec.Publish(telemetry.Event{
					Kind: telemetry.EvInstall, Node: id, Table: code, RuleID: e.Rule.ID,
				})
			}
		}
		table.OnEvict = func(e tcam.Entry) {
			if record() {
				c.rec.Publish(telemetry.Event{
					Kind: telemetry.EvEvict, Node: id, Table: code, RuleID: e.Rule.ID,
				})
			}
		}
		table.OnExpire = func(e tcam.Entry) {
			if record() {
				c.rec.Publish(telemetry.Event{
					Kind: telemetry.EvExpire, Node: id, Table: code, RuleID: e.Rule.ID,
				})
			}
		}
	}
}

// startTelemetryServer binds the HTTP endpoint when configured.
func (c *Cluster) startTelemetryServer() error {
	if c.cfg.Telemetry.Addr == "" {
		return nil
	}
	srv, err := telemetry.Serve(c.cfg.Telemetry.Addr, c.reg, c.rec,
		map[string]http.Handler{
			"/status":      c.StatusHandler(),
			"/ha":          c.HAHandler(),
			"/convergence": c.ConvergenceHandler(),
			"/health":      c.HealthHandler(),
		})
	if err != nil {
		return err
	}
	c.tsrv = srv
	return nil
}

// tracePkt reports whether a per-packet span should record: every packet
// in full-tracing mode, but only trace-stamped packets once journey
// sampling is on — 1-in-N sampling must cost 1-in-N of the recording,
// not all of it. Non-packet events (installs, deaths, elections) keep
// gating on rec.Enabled alone.
func (c *Cluster) tracePkt(trace uint64) bool {
	if trace != 0 {
		return c.rec.Enabled()
	}
	// Unsampled packet: records only in full-tracing mode. Checking the
	// rate first keeps the common sampled-mode case to one atomic load.
	return c.sampler.Rate() == 0 && c.rec.Enabled()
}

// SetTracing toggles the flight recorder at runtime.
func (c *Cluster) SetTracing(on bool) { c.rec.SetEnabled(on) }

// TracingEnabled reports the flight recorder's state.
func (c *Cluster) TracingEnabled() bool { return c.rec.Enabled() }

// SetTraceSample changes the journey sampling rate at runtime (1-in-n,
// 0 disables).
func (c *Cluster) SetTraceSample(n int) { c.sampler.SetRate(n) }

// TraceSampleRate returns the current 1-in-N journey sampling rate.
func (c *Cluster) TraceSampleRate() int { return c.sampler.Rate() }

// Convergence exposes the per-epoch policy-update tracker.
func (c *Cluster) Convergence() *telemetry.Convergence { return c.conv }

// Watchdog exposes the SLO health watchdog.
func (c *Cluster) Watchdog() *telemetry.Watchdog { return c.wd }

// ConvergenceHandler serves the epoch convergence timelines as JSON.
func (c *Cluster) ConvergenceHandler() http.Handler {
	return jsonHandler(func() any { return c.conv.View(nowNS()) })
}

// HealthHandler serves the watchdog's latest rule statuses as JSON.
func (c *Cluster) HealthHandler() http.Handler {
	return jsonHandler(func() any { return c.wd.View(nowNS()) })
}

// Journeys assembles end-to-end journeys from the flight recorder.
func (c *Cluster) Journeys(f telemetry.JourneyFilter) ([]telemetry.Journey, telemetry.JourneyStats) {
	if f.NowNS == 0 {
		f.NowNS = c.rec.Now()
	}
	return telemetry.AssembleJourneys(c.rec, f)
}

// Recorder exposes the flight recorder (tests, embedding servers).
func (c *Cluster) Recorder() *telemetry.Recorder { return c.rec }

// Registry exposes the metric registry.
func (c *Cluster) Registry() *telemetry.Registry { return c.reg }

// TraceEvents snapshots the flight recorder through a filter.
func (c *Cluster) TraceEvents(f telemetry.Filter) []telemetry.Event {
	return c.rec.Events(f)
}

// Telemetry returns one scrape of the registry plus recorder accounting —
// the Deployment.Telemetry() surface.
func (c *Cluster) Telemetry() *telemetry.Snapshot {
	return &telemetry.Snapshot{Metrics: c.reg.Snapshot(), Trace: c.rec.Stats()}
}

// TelemetryAddr returns the bound HTTP endpoint address, or "" when no
// endpoint was configured.
func (c *Cluster) TelemetryAddr() string {
	if c.tsrv == nil {
		return ""
	}
	return c.tsrv.Addr()
}

// sumStats folds one counter across every measurement shard.
func (c *Cluster) sumStats(f func(*nodeStats) uint64) float64 {
	total := f(c.ext)
	for _, n := range c.switches {
		total += f(n.stats)
	}
	return float64(total)
}

// mergedDelay merges one latency distribution across every shard into an
// independent Dist. Each shard is cloned under its latMu: a Dist is
// internally synchronized once initialized, but its lazy first-Add
// allocation is only ordered against readers by that lock (see nodeStats).
func (c *Cluster) mergedDelay(sel func(*nodeStats) *metrics.Dist) telemetry.SummaryView {
	var d metrics.Dist
	merge := func(s *nodeStats) {
		s.latMu.Lock()
		one := sel(s).Clone()
		s.latMu.Unlock()
		d.Merge(&one)
	}
	merge(c.ext)
	for _, n := range c.switches {
		merge(n.stats)
	}
	return telemetry.DistSummary(&d)
}

// buildRegistry registers the cluster's metric schema. Everything is
// collected at scrape time from the same sharded atomics the data plane
// writes, so scrapes cost the scraper, never the forwarding path.
func (c *Cluster) buildRegistry() {
	reg := c.reg
	counter := func(name, help string, fn func() float64) {
		reg.RegisterFunc(name, help, telemetry.TypeCounter, fn)
	}
	gauge := func(name, help string, fn func() float64) {
		reg.RegisterFunc(name, help, telemetry.TypeGauge, fn)
	}

	counter("difane_injected_total", "Packets accepted at an ingress queue.",
		func() float64 { return float64(c.injected.Load()) })
	counter("difane_delivered_total", "Packets delivered to their egress.",
		func() float64 { return c.sumStats(func(s *nodeStats) uint64 { return s.delivered.Load() }) })
	counter("difane_dropped_total", "Packets lost (queues, holes, unreachable, shed).",
		func() float64 { return float64(c.dropped.Load()) })
	counter("difane_setups_completed_total", "Flow setups resolved at an authority.",
		func() float64 { return c.sumStats(func(s *nodeStats) uint64 { return s.setupsCompleted.Load() }) })
	counter("difane_failovers_local_total", "Ingress-local partition-rule repoints onto a backup authority.",
		func() float64 { return c.sumStats(func(s *nodeStats) uint64 { return s.failoversLocal.Load() }) })
	counter("difane_cache_installs_shed_total", "Cache installs suppressed by the install token bucket.",
		func() float64 { return c.sumStats(func(s *nodeStats) uint64 { return s.cacheInstallsShed.Load() }) })

	reg.Register("difane_drops_total", "Terminal packet losses by kind.", telemetry.TypeCounter,
		func() []telemetry.Point {
			kind := func(k string, f func(*nodeStats) uint64) telemetry.Point {
				return telemetry.Point{
					Labels: []telemetry.Label{{Key: "kind", Value: k}},
					Value:  c.sumStats(f),
				}
			}
			return []telemetry.Point{
				kind("policy", func(s *nodeStats) uint64 { return s.dropPolicy.Load() }),
				kind("hole", func(s *nodeStats) uint64 { return s.dropHole.Load() }),
				kind("queue", func(s *nodeStats) uint64 { return s.dropQueue.Load() }),
				kind("unreachable", func(s *nodeStats) uint64 { return s.dropUnreachable.Load() }),
				kind("redirect-shed", func(s *nodeStats) uint64 { return s.dropRedirectShed.Load() }),
			}
		})

	// Control-plane (cold) counters.
	counter("difane_authority_deaths_total", "Switches the failure detector declared dead.",
		func() float64 { return float64(c.cold.authorityDeaths.Load()) })
	counter("difane_failovers_promoted_total", "Partition rules withdrawn by controller-driven promotion.",
		func() float64 { return float64(c.cold.failoversPromoted.Load()) })
	counter("difane_control_reconnects_total", "Control connections re-established.",
		func() float64 { return float64(c.cold.controlReconnects.Load()) })
	counter("difane_controller_outages_total", "Controller losses ridden out.",
		func() float64 { return float64(c.cold.controllerOutages.Load()) })
	counter("difane_outage_buffered_total", "Controller-bound events parked during outages.",
		func() float64 { return float64(c.cold.outageBuffered.Load()) })
	counter("difane_outage_drained_total", "Parked events replayed after outages.",
		func() float64 { return float64(c.cold.outageDrained.Load()) })
	counter("difane_outage_dropped_total", "Parked events shed on outage-buffer overflow.",
		func() float64 { return float64(c.cold.outageDropped.Load()) })
	counter("difane_stale_installs_rejected_total", "FlowMods refused by epoch fencing.",
		func() float64 { return float64(c.cold.staleInstallsRejected.Load()) })
	counter("difane_leader_elections_total", "Controller leader elections completed.",
		func() float64 { return float64(c.cold.leaderElections.Load()) })

	gauge("difane_ha_leader", "Current leader replica id (-1 when none holds office).",
		func() float64 { return float64(c.Leader()) })
	gauge("difane_epoch", "Controller fencing epoch.",
		func() float64 { return float64(c.epoch.Load()) })
	gauge("difane_controller_down", "1 while a simulated controller outage is active.",
		func() float64 {
			if c.ctrlDown.Load() {
				return 1
			}
			return 0
		})
	gauge("difane_fabric_inflight", "Data frames in flight inside the TCP fabric.",
		func() float64 {
			if c.fabric == nil {
				return 0
			}
			return float64(c.fabric.pending())
		})

	// Per-switch series, labeled by switch ID.
	ids := make([]uint32, 0, len(c.switches))
	for id := range c.switches {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	perSwitch := func(name, help string, typ telemetry.MetricType, fn func(*node) float64) {
		reg.Register(name, help, typ, func() []telemetry.Point {
			pts := make([]telemetry.Point, 0, len(ids))
			for _, id := range ids {
				n := c.switches[id]
				pts = append(pts, telemetry.Point{
					Labels: []telemetry.Label{{Key: "switch", Value: switchLabel(id)}},
					Value:  fn(n),
				})
			}
			return pts
		})
	}
	perSwitch("difane_switch_cache_hits_total", "Classifications terminated by the cache table.",
		telemetry.TypeCounter, func(n *node) float64 { return float64(n.sw.Stats.CacheHits.Load()) })
	perSwitch("difane_switch_authority_hits_total", "Classifications terminated by the authority table.",
		telemetry.TypeCounter, func(n *node) float64 { return float64(n.sw.Stats.AuthorityHits.Load()) })
	perSwitch("difane_switch_partition_hits_total", "Classifications terminated by the partition table.",
		telemetry.TypeCounter, func(n *node) float64 { return float64(n.sw.Stats.PartitionHits.Load()) })
	perSwitch("difane_switch_misses_total", "Classifications matching no table (policy holes).",
		telemetry.TypeCounter, func(n *node) float64 { return float64(n.sw.Stats.Misses.Load()) })
	perSwitch("difane_switch_cache_entries", "Installed cache rules.",
		telemetry.TypeGauge, func(n *node) float64 { return float64(n.sw.Table(proto.TableCache).Len()) })
	perSwitch("difane_switch_cache_evictions_total", "Cache entries evicted for capacity.",
		telemetry.TypeCounter, func(n *node) float64 { return float64(n.sw.Table(proto.TableCache).Evictions.Load()) })
	perSwitch("difane_switch_queue_depth", "Current input-ring occupancy (all rings).",
		telemetry.TypeGauge, func(n *node) float64 { return float64(n.queueLen()) })
	perSwitch("difane_switch_peak_queue_depth", "Data-queue high-water mark.",
		telemetry.TypeGauge, func(n *node) float64 { return float64(n.peakQueue.Load()) })
	perSwitch("difane_switch_outbox_len", "Buffered controller-bound events.",
		telemetry.TypeGauge, func(n *node) float64 { return float64(len(n.outbox)) })
	perSwitch("difane_switch_epoch", "The switch's accepted install fence.",
		telemetry.TypeGauge, func(n *node) float64 { return float64(n.epoch.Load()) })
	perSwitch("difane_switch_alive", "1 while the failure detector believes the switch serves traffic.",
		telemetry.TypeGauge, func(n *node) float64 {
			if !n.killed.Load() && n.alive.Load() {
				return 1
			}
			return 0
		})

	// Latency summaries, merged across shards at scrape time.
	reg.RegisterSummary("difane_first_packet_delay_seconds",
		"Delivery latency of flow-setup packets (via an authority).",
		func() telemetry.SummaryView {
			return c.mergedDelay(func(s *nodeStats) *metrics.Dist { return &s.firstDelay })
		})
	reg.RegisterSummary("difane_later_packet_delay_seconds",
		"Delivery latency of cache-hit packets.",
		func() telemetry.SummaryView {
			return c.mergedDelay(func(s *nodeStats) *metrics.Dist { return &s.laterDelay })
		})
	reg.RegisterSummary("difane_failover_detection_seconds",
		"Fault-injection to death-verdict detection latency.",
		func() telemetry.SummaryView {
			c.cold.haMu.Lock()
			d := c.cold.failoverDetect.Clone()
			c.cold.haMu.Unlock()
			return telemetry.DistSummary(&d)
		})
	reg.RegisterSummary("difane_leader_election_seconds",
		"Leader-kill to new-leader-seated election duration.",
		func() telemetry.SummaryView {
			c.cold.haMu.Lock()
			d := c.cold.electionTime.Clone()
			c.cold.haMu.Unlock()
			return telemetry.DistSummary(&d)
		})

	// The recorder's own accounting.
	gauge("difane_trace_enabled", "1 while the flight recorder is recording.",
		func() float64 {
			if c.rec.Enabled() {
				return 1
			}
			return 0
		})
	counter("difane_trace_writes_total", "Trace events published.",
		func() float64 { return float64(c.rec.Stats().Writes) })
	counter("difane_trace_dropped_total", "Trace events overwritten by ring wraparound.",
		func() float64 { return float64(c.rec.Stats().Dropped) })
	gauge("difane_trace_sample", "1-in-N journey sampling rate (0 = off).",
		func() float64 { return float64(c.sampler.Rate()) })

	// BFD session churn, summed across every controller-side session — the
	// bfd-flap health rule's input.
	counter("difane_bfd_transitions_total", "BFD session state transitions across all sessions.",
		func() float64 {
			var total uint64
			for _, info := range c.BFDSessions() {
				total += info.Transitions
			}
			return float64(total)
		})
}

func switchLabel(id uint32) string { return strconv.FormatUint(uint64(id), 10) }
