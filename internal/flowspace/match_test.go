package flowspace

import (
	"math/rand"
	"testing"
)

// randMatch builds a random match that only constrains a few fields, biased
// toward prefixes on the IP fields — the structure real policies have.
func randMatch(rng *rand.Rand) Match {
	m := MatchAll()
	if rng.Intn(2) == 0 {
		m = m.WithPrefix(FIPSrc, rng.Uint64(), uint(rng.Intn(33)))
	}
	if rng.Intn(2) == 0 {
		m = m.WithPrefix(FIPDst, rng.Uint64(), uint(rng.Intn(33)))
	}
	if rng.Intn(3) == 0 {
		m = m.WithExact(FTPDst, uint64(rng.Intn(1024)))
	}
	if rng.Intn(4) == 0 {
		m = m.WithExact(FIPProto, uint64([]int{6, 17, 1}[rng.Intn(3)]))
	}
	return m
}

func randKey(rng *rand.Rand) Key {
	var k Key
	for f := FieldID(0); f < NumFields; f++ {
		k[f] = rng.Uint64() & widthMask(fieldWidths[f])
	}
	return k
}

func randKeyIn(rng *rand.Rand, m Match) Key {
	var r [NumFields]uint64
	for i := range r {
		r[i] = rng.Uint64()
	}
	return m.RandomKeyIn(r)
}

func TestMatchAllMatchesEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := MatchAll()
	if !m.IsAll() {
		t.Fatal("MatchAll must be IsAll")
	}
	for i := 0; i < 100; i++ {
		if !m.Matches(randKey(rng)) {
			t.Fatal("MatchAll must match any key")
		}
	}
}

func TestMatchBuildersAndString(t *testing.T) {
	m := MatchAll().
		WithPrefix(FIPSrc, 0x0A000000, 8).
		WithExact(FTPDst, 80)
	k := Key{}
	k[FIPSrc] = 0x0A010203
	k[FTPDst] = 80
	if !m.Matches(k) {
		t.Fatal("key inside both fields must match")
	}
	k[FTPDst] = 443
	if m.Matches(k) {
		t.Fatal("key with wrong port must not match")
	}
	if s := m.String(); s == "" || s == "*" {
		t.Fatalf("constrained match must render fields, got %q", s)
	}
	if MatchAll().String() != "*" {
		t.Fatal("MatchAll must render as *")
	}
}

// Property: Intersect is exactly the AND of the two membership predicates.
func TestMatchIntersectMembership(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		a, b := randMatch(rng), randMatch(rng)
		inter, ok := a.Intersect(b)
		for j := 0; j < 32; j++ {
			var k Key
			switch j % 3 {
			case 0:
				k = randKeyIn(rng, a)
			case 1:
				k = randKeyIn(rng, b)
			default:
				k = randKey(rng)
			}
			want := a.Matches(k) && b.Matches(k)
			got := ok && inter.Matches(k)
			if got != want {
				t.Fatalf("intersect membership mismatch: a=%s b=%s k=%v want %v got %v",
					a, b, k, want, got)
			}
		}
	}
}

// Property: Subtract(a,b) is exactly a AND NOT b, and pieces are disjoint.
func TestMatchSubtractMembershipAndDisjointness(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 400; i++ {
		a, b := randMatch(rng), randMatch(rng)
		pieces := a.Subtract(b)
		for pi := range pieces {
			for pj := pi + 1; pj < len(pieces); pj++ {
				if pieces[pi].Overlaps(pieces[pj]) {
					t.Fatalf("pieces overlap: %s and %s", pieces[pi], pieces[pj])
				}
			}
			if !a.Contains(pieces[pi]) {
				t.Fatalf("piece %s escapes a=%s", pieces[pi], a)
			}
			if pieces[pi].Overlaps(b) {
				// Overlap test is exact for ternary matches, so any overlap
				// with b is a correctness bug.
				t.Fatalf("piece %s overlaps subtracted b=%s", pieces[pi], b)
			}
		}
		for j := 0; j < 48; j++ {
			var k Key
			if j%2 == 0 {
				k = randKeyIn(rng, a)
			} else {
				k = randKey(rng)
			}
			want := a.Matches(k) && !b.Matches(k)
			got := false
			for _, p := range pieces {
				if p.Matches(k) {
					got = true
					break
				}
			}
			if got != want {
				t.Fatalf("subtract membership mismatch: a=%s b=%s want %v got %v", a, b, want, got)
			}
		}
	}
}

func TestMatchSubtractEdgeCases(t *testing.T) {
	a := MatchAll().WithPrefix(FIPSrc, 0x0A000000, 8)
	if got := a.Subtract(a); got != nil {
		t.Fatalf("a - a must be empty, got %v", got)
	}
	disjoint := MatchAll().WithPrefix(FIPSrc, 0x0B000000, 8)
	got := a.Subtract(disjoint)
	if len(got) != 1 || got[0] != a {
		t.Fatalf("a - disjoint must be {a}, got %v", got)
	}
	super := MatchAll()
	if got := a.Subtract(super); got != nil {
		t.Fatalf("a - everything must be empty, got %v", got)
	}
}

func TestSubtractAll(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := MatchAll().WithPrefix(FIPSrc, 0x0A000000, 8)
	subs := []Match{
		MatchAll().WithPrefix(FIPSrc, 0x0A000000, 16),
		MatchAll().WithPrefix(FIPSrc, 0x0A800000, 9),
		MatchAll().WithExact(FTPDst, 80),
	}
	pieces := a.SubtractAll(subs)
	for i := 0; i < 2000; i++ {
		k := randKeyIn(rng, a)
		want := true
		for _, s := range subs {
			if s.Matches(k) {
				want = false
				break
			}
		}
		got := false
		for _, p := range pieces {
			if p.Matches(k) {
				got = true
				break
			}
		}
		if got != want {
			t.Fatalf("SubtractAll membership mismatch at %v: want %v got %v", k, want, got)
		}
	}
}

func TestMatchContainsTransitivity(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for i := 0; i < 300; i++ {
		a := randMatch(rng)
		b, okB := a.Intersect(randMatch(rng))
		if !okB {
			continue
		}
		c, okC := b.Intersect(randMatch(rng))
		if !okC {
			continue
		}
		if !a.Contains(b) || !b.Contains(c) {
			t.Fatal("intersection must be contained in its operands")
		}
		if !a.Contains(c) {
			t.Fatalf("containment must be transitive: a=%s b=%s c=%s", a, b, c)
		}
	}
}

func TestFreeBits(t *testing.T) {
	total := 0
	for f := FieldID(0); f < NumFields; f++ {
		total += int(fieldWidths[f])
	}
	if got := MatchAll().FreeBits(); got != total {
		t.Fatalf("MatchAll free bits = %d want %d", got, total)
	}
	m := MatchAll().WithPrefix(FIPSrc, 0, 8)
	if got := m.FreeBits(); got != total-8 {
		t.Fatalf("after /8: %d want %d", got, total-8)
	}
}

func TestRandomKeyInRespectsMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 500; i++ {
		m := randMatch(rng)
		k := randKeyIn(rng, m)
		if !m.Matches(k) {
			t.Fatalf("RandomKeyIn produced key outside match %s: %v", m, k)
		}
		for f := FieldID(0); f < NumFields; f++ {
			if k[f] > widthMask(fieldWidths[f]) {
				t.Fatalf("key field %s exceeds width: %x", f, k[f])
			}
		}
	}
}
