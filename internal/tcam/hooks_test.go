package tcam

import "testing"

func TestInstallEvictHooks(t *testing.T) {
	tb := New("test", 2, EvictLRU)
	var installs, evicts []uint64
	tb.OnInstall = func(e Entry) { installs = append(installs, e.Rule.ID) }
	tb.OnEvict = func(e Entry) { evicts = append(evicts, e.Rule.ID) }

	mustInsert(t, tb, 0, rule(1, 10, 80))
	mustInsert(t, tb, 1, rule(2, 10, 81))
	// Touch rule 2 so rule 1 is the LRU victim.
	tb.Lookup(2, keyPort(81), 64)
	mustInsert(t, tb, 3, rule(3, 10, 82))

	if len(installs) != 3 || installs[0] != 1 || installs[1] != 2 || installs[2] != 3 {
		t.Fatalf("installs = %v", installs)
	}
	if len(evicts) != 1 || evicts[0] != 1 {
		t.Fatalf("evicts = %v", evicts)
	}

	// Replace-in-place fires OnInstall but not OnEvict.
	mustInsert(t, tb, 4, rule(3, 10, 82))
	if len(installs) != 4 || len(evicts) != 1 {
		t.Fatalf("after replace: installs=%v evicts=%v", installs, evicts)
	}
}

func TestInstallHookMayReenterTable(t *testing.T) {
	// Hooks run outside the table's mutex, so a hook reading the table must
	// not deadlock.
	tb := New("test", 0, EvictNone)
	var sawLen int
	tb.OnInstall = func(Entry) { sawLen = tb.Len() }
	mustInsert(t, tb, 0, rule(1, 10, 80))
	if sawLen != 1 {
		t.Fatalf("hook saw len %d", sawLen)
	}
}

func TestEvictNoneFullFiresNoHooks(t *testing.T) {
	tb := New("test", 1, EvictNone)
	fired := 0
	tb.OnInstall = func(Entry) { fired++ }
	tb.OnEvict = func(Entry) { fired++ }
	mustInsert(t, tb, 0, rule(1, 10, 80))
	if err := tb.Insert(0, rule(2, 10, 81), 0, 0); err != ErrFull {
		t.Fatalf("err = %v", err)
	}
	if fired != 1 { // only the successful insert
		t.Fatalf("hooks fired %d times", fired)
	}
}
