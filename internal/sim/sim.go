// Package sim is a small deterministic discrete-event simulator. It drives
// the DIFANE and baseline evaluations: events carry closures, time is
// float64 seconds, and per-node service stations model the finite
// processing capacity that produces the paper's saturation behaviour
// (a NOX controller that tops out at tens of thousands of flow setups per
// second, an authority switch at hundreds of thousands).
package sim

import (
	"container/heap"
	"math"
)

// Engine runs events in nondecreasing time order; ties run in schedule
// order, which makes runs fully deterministic.
type Engine struct {
	now    float64
	seq    uint64
	events eventHeap

	// Processed counts executed events, as a runaway guard for tests.
	Processed uint64
}

type event struct {
	at  float64
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// New returns an engine at time zero.
func New() *Engine { return &Engine{} }

// Now returns the current simulation time in seconds.
func (e *Engine) Now() float64 { return e.now }

// At schedules fn at absolute time t. Scheduling in the past runs the event
// at the current time (never rewinding the clock).
func (e *Engine) At(t float64, fn func()) {
	if t < e.now {
		t = e.now
	}
	heap.Push(&e.events, event{at: t, seq: e.seq, fn: fn})
	e.seq++
}

// After schedules fn delay seconds from now.
func (e *Engine) After(delay float64, fn func()) { e.At(e.now+delay, fn) }

// Run executes events until the queue empties or the time horizon passes.
// It returns the number of events executed.
func (e *Engine) Run(horizon float64) uint64 {
	var n uint64
	for e.events.Len() > 0 {
		if e.events[0].at > horizon {
			break
		}
		ev := heap.Pop(&e.events).(event)
		e.now = ev.at
		ev.fn()
		n++
		e.Processed++
	}
	if e.now < horizon {
		e.now = horizon
	}
	return n
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.events.Len() }

// Station models a finite-rate FIFO processing resource: a controller CPU,
// a switch's rule-install path, or a software datapath. A job submitted at
// time t begins service when the server frees up and completes one service
// time later; jobs beyond QueueLimit are dropped.
type Station struct {
	eng *Engine

	// Rate is in jobs per second; zero or negative means infinitely fast.
	Rate float64
	// QueueLimit bounds jobs waiting or in service (0 = unbounded).
	QueueLimit int

	busyUntil float64
	inFlight  int

	// Jobs and Drops count submissions and queue-limit drops.
	Jobs  uint64
	Drops uint64
	// BusyTime accumulates total service time, for utilization reports.
	BusyTime float64
}

// NewStation attaches a station to an engine.
func NewStation(eng *Engine, rate float64, queueLimit int) *Station {
	return &Station{eng: eng, Rate: rate, QueueLimit: queueLimit}
}

// Submit enqueues a job; done runs at its completion time with the
// completion timestamp. Returns false (and counts a drop) if the queue is
// full. Service times are deterministic (1/Rate), which keeps saturation
// thresholds sharp — the behaviour the throughput figures measure.
func (s *Station) Submit(done func(at float64)) bool {
	now := s.eng.now
	if s.Rate <= 0 {
		s.Jobs++
		s.eng.At(now, func() { done(now) })
		return true
	}
	if s.QueueLimit > 0 && s.inFlight >= s.QueueLimit {
		s.Drops++
		return false
	}
	s.Jobs++
	s.inFlight++
	svc := 1.0 / s.Rate
	start := math.Max(now, s.busyUntil)
	finish := start + svc
	s.busyUntil = finish
	s.BusyTime += svc
	s.eng.At(finish, func() {
		s.inFlight--
		done(finish)
	})
	return true
}

// Backlog returns the number of jobs queued or in service.
func (s *Station) Backlog() int { return s.inFlight }

// Utilization returns BusyTime divided by elapsed time (0 if none).
func (s *Station) Utilization() float64 {
	if s.eng.now <= 0 {
		return 0
	}
	return s.BusyTime / s.eng.now
}
