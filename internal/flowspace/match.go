package flowspace

import (
	"strings"
)

// Match is a ternary predicate over the whole header tuple: one Field per
// header field, all of which must match. The zero Match matches every
// packet.
type Match struct {
	Fields [NumFields]Field
}

// MatchAll returns the match covering the entire flow space.
func MatchAll() Match { return Match{} }

// With returns a copy of m with field f replaced.
func (m Match) With(f FieldID, fd Field) Match {
	m.Fields[f] = fd
	return m
}

// WithExact returns a copy of m matching field f exactly.
func (m Match) WithExact(f FieldID, v uint64) Match {
	return m.With(f, ExactField(f, v))
}

// WithPrefix returns a copy of m matching the top plen bits of field f.
func (m Match) WithPrefix(f FieldID, v uint64, plen uint) Match {
	return m.With(f, PrefixField(f, v, plen))
}

// Key is a fully concrete header tuple — the projection of a packet header
// onto the match fields.
type Key [NumFields]uint64

// Matches reports whether the concrete header k satisfies m.
func (m Match) Matches(k Key) bool {
	for i := range m.Fields {
		if (k[i]^m.Fields[i].Value)&m.Fields[i].Mask != 0 {
			return false
		}
	}
	return true
}

// Overlaps reports whether some header satisfies both matches.
func (m Match) Overlaps(o Match) bool {
	for i := range m.Fields {
		if !m.Fields[i].Overlaps(o.Fields[i]) {
			return false
		}
	}
	return true
}

// Contains reports whether every header matching o also matches m.
func (m Match) Contains(o Match) bool {
	for i := range m.Fields {
		if !m.Fields[i].Contains(o.Fields[i]) {
			return false
		}
	}
	return true
}

// Intersect returns the match satisfied exactly by the headers satisfying
// both m and o, and false if no header does.
func (m Match) Intersect(o Match) (Match, bool) {
	var out Match
	for i := range m.Fields {
		fd, ok := m.Fields[i].Intersect(o.Fields[i])
		if !ok {
			return Match{}, false
		}
		out.Fields[i] = fd
	}
	return out, true
}

// Subtract returns a set of pairwise-disjoint matches whose union is
// exactly the headers matching m but not o. It follows the header-space
// complement construction: walk the exact bits of o that are free in
// m∩o's frame; for each, emit a piece where that bit is flipped and all
// previously visited bits agree with o.
func (m Match) Subtract(o Match) []Match {
	if !m.Overlaps(o) {
		return []Match{m} // disjoint: nothing to remove
	}
	if o.Contains(m) {
		return nil // fully covered
	}
	var out []Match
	// cur narrows toward inter one bit at a time; each emitted piece flips
	// the current bit, keeping the pieces pairwise disjoint.
	cur := m
	for f := FieldID(0); f < NumFields; f++ {
		w := fieldWidths[f]
		for i := int(w) - 1; i >= 0; i-- {
			bit := uint64(1) << uint(i)
			if o.Fields[f].Mask&bit == 0 || m.Fields[f].Mask&bit != 0 {
				continue // o doesn't pin this bit, or m already pins it
			}
			flipped := cur
			fd := flipped.Fields[f]
			fd.Mask |= bit
			fd.Value = (fd.Value &^ bit) | (^o.Fields[f].Value & bit)
			flipped.Fields[f] = fd

			fixed := cur.Fields[f]
			fixed.Mask |= bit
			fixed.Value = (fixed.Value &^ bit) | (o.Fields[f].Value & bit)
			cur.Fields[f] = fixed

			out = append(out, flipped)
		}
	}
	return out
}

// SubtractAll removes every match in os from m, returning disjoint pieces.
func (m Match) SubtractAll(os []Match) []Match {
	pieces := []Match{m}
	for _, o := range os {
		var next []Match
		for _, p := range pieces {
			next = append(next, p.Subtract(o)...)
		}
		pieces = next
		if len(pieces) == 0 {
			break
		}
	}
	return pieces
}

// FreeBits returns the total number of wildcard bits across all fields —
// log2 of the number of concrete headers the match covers.
func (m Match) FreeBits() int {
	n := 0
	for f := FieldID(0); f < NumFields; f++ {
		n += m.Fields[f].FreeBits(fieldWidths[f])
	}
	return n
}

// IsAll reports whether the match covers the entire flow space.
func (m Match) IsAll() bool {
	for i := range m.Fields {
		if m.Fields[i].Mask != 0 {
			return false
		}
	}
	return true
}

// String renders the non-wildcard fields as "name=ternary" pairs.
func (m Match) String() string {
	var parts []string
	for f := FieldID(0); f < NumFields; f++ {
		if m.Fields[f].Mask != 0 {
			parts = append(parts, f.String()+"="+m.Fields[f].format(fieldWidths[f]))
		}
	}
	if len(parts) == 0 {
		return "*"
	}
	return strings.Join(parts, ",")
}

// RandomKeyIn returns a concrete header inside m, with the wildcard bits
// filled from the given 64-bit random values (one per field, masked to
// width). Deterministic for fixed inputs.
func (m Match) RandomKeyIn(rand [NumFields]uint64) Key {
	var k Key
	for f := FieldID(0); f < NumFields; f++ {
		w := widthMask(fieldWidths[f])
		k[f] = (m.Fields[f].Value & m.Fields[f].Mask) | (rand[f] & w &^ m.Fields[f].Mask)
	}
	return k
}
