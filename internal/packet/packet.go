// Package packet models the packets that flow through the simulated and
// wire-mode DIFANE networks: a typed header tuple, a compact binary wire
// format (Ethernet → IPv4 → L4 in the gopacket layered style), and the
// DIFANE encapsulation header used to tunnel cache-miss packets to
// authority switches and tunneled packets to egress switches.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"

	"difane/internal/flowspace"
)

// Header is the parsed header tuple of a packet — the fields DIFANE rules
// match on.
type Header struct {
	InPort  uint16
	EthSrc  uint64 // 48 bits significant
	EthDst  uint64 // 48 bits significant
	EthType uint16
	VLAN    uint16 // 12 bits significant
	IPProto uint8
	IPSrc   uint32
	IPDst   uint32
	TPSrc   uint16
	TPDst   uint16
}

// Common EtherType and IP protocol numbers used by the workloads.
const (
	EthTypeIPv4 = 0x0800
	EthTypeARP  = 0x0806

	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
)

// Key projects the header onto the flowspace match tuple.
func (h Header) Key() flowspace.Key {
	var k flowspace.Key
	k[flowspace.FInPort] = uint64(h.InPort)
	k[flowspace.FEthSrc] = h.EthSrc & 0xFFFFFFFFFFFF
	k[flowspace.FEthDst] = h.EthDst & 0xFFFFFFFFFFFF
	k[flowspace.FEthType] = uint64(h.EthType)
	k[flowspace.FVLAN] = uint64(h.VLAN & 0xFFF)
	k[flowspace.FIPProto] = uint64(h.IPProto)
	k[flowspace.FIPSrc] = uint64(h.IPSrc)
	k[flowspace.FIPDst] = uint64(h.IPDst)
	k[flowspace.FTPSrc] = uint64(h.TPSrc)
	k[flowspace.FTPDst] = uint64(h.TPDst)
	return k
}

// HeaderFromKey reconstructs a Header from a concrete flowspace key.
func HeaderFromKey(k flowspace.Key) Header {
	return Header{
		InPort:  uint16(k[flowspace.FInPort]),
		EthSrc:  k[flowspace.FEthSrc],
		EthDst:  k[flowspace.FEthDst],
		EthType: uint16(k[flowspace.FEthType]),
		VLAN:    uint16(k[flowspace.FVLAN]),
		IPProto: uint8(k[flowspace.FIPProto]),
		IPSrc:   uint32(k[flowspace.FIPSrc]),
		IPDst:   uint32(k[flowspace.FIPDst]),
		TPSrc:   uint16(k[flowspace.FTPSrc]),
		TPDst:   uint16(k[flowspace.FTPDst]),
	}
}

func (h Header) String() string {
	return fmt.Sprintf("%s:%d -> %s:%d proto=%d", IPString(h.IPSrc), h.TPSrc,
		IPString(h.IPDst), h.TPDst, h.IPProto)
}

// IPString renders a uint32 IPv4 address in dotted-quad form.
func IPString(a uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// Packet is a packet in flight: its header, payload size (payload contents
// are never materialized — the simulator only needs sizes), and optional
// DIFANE encapsulation state.
type Packet struct {
	Header  Header
	Size    int // total bytes on the wire, for counters and byte rates
	Encap   *Encap
	FlowSeq uint64 // sequence of the packet within its flow (0 = first)
	FlowID  uint64 // workload-assigned flow identity, for tracing
}

// EncapReason says why a packet was encapsulated.
type EncapReason uint8

const (
	// EncapRedirect marks a cache-miss packet on its way from an ingress
	// switch to an authority switch.
	EncapRedirect EncapReason = iota + 1
	// EncapTunnel marks a packet tunneled from an authority switch (or an
	// ingress hit) to its egress switch.
	EncapTunnel
)

func (r EncapReason) String() string {
	switch r {
	case EncapRedirect:
		return "redirect"
	case EncapTunnel:
		return "tunnel"
	default:
		return fmt.Sprintf("encap(%d)", uint8(r))
	}
}

// Encap is the DIFANE encapsulation header. Ingress is the switch that
// encapsulated the packet (so the authority switch knows where to install
// the cache rule); Target is the switch the tunnel terminates at.
type Encap struct {
	Reason  EncapReason
	Ingress uint32
	Target  uint32
}

// --- Wire format -----------------------------------------------------------
//
// The wire format is deliberately small and fixed-layout:
//
//   [1B kind] [encap? 9B] [eth 14B] [vlan? 4B] [ipv4 20B-ish: 12B used] [l4 4B]
//
// kind bit0 set => encap header present, bit1 set => VLAN tag present.

const (
	flagEncap = 1 << 0
	flagVLAN  = 1 << 1
)

// ErrTruncated is returned when a buffer is too short to decode.
var ErrTruncated = errors.New("packet: truncated")

// MaxWireLen is the maximum encoded header length.
const MaxWireLen = 1 + 9 + 14 + 4 + 12 + 4

// AppendWire appends the encoded packet headers to b and returns the
// extended slice. Payload bytes are not encoded; Size travels in the
// simulator/protocol metadata.
func (p *Packet) AppendWire(b []byte) []byte {
	return p.AppendWireEncap(b, p.Encap)
}

// AppendWireEncap is AppendWire for callers that carry the encapsulation
// state outside the Packet (wire mode's burst data plane keeps it by value
// to avoid a per-hop heap allocation); e == nil encodes no encapsulation,
// and p.Encap is ignored.
func (p *Packet) AppendWireEncap(b []byte, e *Encap) []byte {
	kind := byte(0)
	if e != nil {
		kind |= flagEncap
	}
	if p.Header.VLAN != 0 {
		kind |= flagVLAN
	}
	b = append(b, kind)
	if e != nil {
		b = append(b, byte(e.Reason))
		b = binary.BigEndian.AppendUint32(b, e.Ingress)
		b = binary.BigEndian.AppendUint32(b, e.Target)
	}
	var mac [8]byte
	binary.BigEndian.PutUint64(mac[:], p.Header.EthDst<<16)
	b = append(b, mac[:6]...)
	binary.BigEndian.PutUint64(mac[:], p.Header.EthSrc<<16)
	b = append(b, mac[:6]...)
	b = binary.BigEndian.AppendUint16(b, p.Header.EthType)
	if kind&flagVLAN != 0 {
		b = binary.BigEndian.AppendUint16(b, 0x8100)
		b = binary.BigEndian.AppendUint16(b, p.Header.VLAN&0xFFF)
	}
	// Compact IPv4: proto, src, dst, plus in-port carried as metadata.
	b = append(b, p.Header.IPProto)
	b = append(b, 0) // reserved
	b = binary.BigEndian.AppendUint16(b, p.Header.InPort)
	b = binary.BigEndian.AppendUint32(b, p.Header.IPSrc)
	b = binary.BigEndian.AppendUint32(b, p.Header.IPDst)
	b = binary.BigEndian.AppendUint16(b, p.Header.TPSrc)
	b = binary.BigEndian.AppendUint16(b, p.Header.TPDst)
	return b
}

// DecodeWire parses an encoded packet header, returning the decoded packet
// and the number of bytes consumed. The decode writes into p in place
// (DecodingLayerParser style); an encapsulation header, if present, is the
// one allocation (see DecodeWireEncap for the allocation-free variant).
func (p *Packet) DecodeWire(b []byte) (int, error) {
	var e Encap
	n, hasEncap, err := p.DecodeWireEncap(b, &e)
	if err != nil {
		return n, err
	}
	if hasEncap {
		p.Encap = &e
	}
	return n, nil
}

// DecodeWireEncap is DecodeWire writing any encapsulation header into *e
// (caller-provided storage) instead of allocating; hasEncap reports whether
// e was filled. p.Encap is always left nil.
func (p *Packet) DecodeWireEncap(b []byte, e *Encap) (n int, hasEncap bool, err error) {
	if len(b) < 1 {
		return 0, false, ErrTruncated
	}
	kind := b[0]
	off := 1
	p.Encap = nil
	if kind&flagEncap != 0 {
		if len(b) < off+9 {
			return 0, false, ErrTruncated
		}
		*e = Encap{
			Reason:  EncapReason(b[off]),
			Ingress: binary.BigEndian.Uint32(b[off+1:]),
			Target:  binary.BigEndian.Uint32(b[off+5:]),
		}
		hasEncap = true
		off += 9
	}
	if len(b) < off+14 {
		return 0, false, ErrTruncated
	}
	var mac [8]byte
	copy(mac[:6], b[off:])
	p.Header.EthDst = binary.BigEndian.Uint64(mac[:]) >> 16
	copy(mac[:6], b[off+6:])
	p.Header.EthSrc = binary.BigEndian.Uint64(mac[:]) >> 16
	p.Header.EthType = binary.BigEndian.Uint16(b[off+12:])
	off += 14
	p.Header.VLAN = 0
	if kind&flagVLAN != 0 {
		if len(b) < off+4 {
			return 0, false, ErrTruncated
		}
		p.Header.VLAN = binary.BigEndian.Uint16(b[off+2:]) & 0xFFF
		off += 4
	}
	if len(b) < off+12+4 {
		return 0, false, ErrTruncated
	}
	p.Header.IPProto = b[off]
	p.Header.InPort = binary.BigEndian.Uint16(b[off+2:])
	p.Header.IPSrc = binary.BigEndian.Uint32(b[off+4:])
	p.Header.IPDst = binary.BigEndian.Uint32(b[off+8:])
	off += 12
	p.Header.TPSrc = binary.BigEndian.Uint16(b[off:])
	p.Header.TPDst = binary.BigEndian.Uint16(b[off+2:])
	off += 4
	return off, hasEncap, nil
}

// Clone returns a deep copy of the packet.
func (p *Packet) Clone() *Packet {
	q := *p
	if p.Encap != nil {
		e := *p.Encap
		q.Encap = &e
	}
	return &q
}

// Encapsulate wraps the packet for redirection/tunneling.
func (p *Packet) Encapsulate(reason EncapReason, ingress, target uint32) {
	p.Encap = &Encap{Reason: reason, Ingress: ingress, Target: target}
}

// Decapsulate strips the encapsulation header, returning it.
func (p *Packet) Decapsulate() *Encap {
	e := p.Encap
	p.Encap = nil
	return e
}

// IP4 builds a uint32 IPv4 address from dotted-quad components.
func IP4(a, b, c, d byte) uint32 {
	return uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d)
}
