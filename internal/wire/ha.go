package wire

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"difane/internal/journal"
	"difane/internal/telemetry"
)

// Replicated controller HA. With cfg.HA.Replicas ≥ 2 the cluster runs a
// set of controller replicas, each owning a WAL journal (internal/journal).
// The leader appends every control-plane event (death, revive, epoch
// raise) to its journal and ships the sealed record to live followers —
// log shipping over the control fabric. Killing the leader
// (KillController) triggers an automatic election: after ElectionDelay the
// most caught-up live follower wins, catches the other followers up,
// raises the fencing epoch (so the dead leader's straggling FlowMods are
// rejected by the epoch machinery), and takes over — the switches'
// control channels re-establish toward it and their outage buffers drain.
// No RestoreController call is needed; RestoreController's HA role shrinks
// to reviving dead replicas (and promoting one only when every replica
// was killed).

// ctrlReplica is one controller replica: an identity, a journal, and a
// liveness flag.
type ctrlReplica struct {
	id   int
	dir  string
	jrnl *journal.Journal
	// alive is guarded by Cluster.haMu for writes; reads are lock-free.
	alive bool
}

// initHA opens the replica journals and seats replica 0 as leader. A
// journal directory that survived a previous incarnation re-seeds the
// fencing epoch from its durable records.
func (c *Cluster) initHA() error {
	if c.cfg.HA.Replicas < 2 {
		return nil
	}
	dir := c.cfg.HA.Dir
	if dir == "" {
		d, err := os.MkdirTemp("", "difane-ha-")
		if err != nil {
			return fmt.Errorf("wire: ha journal dir: %w", err)
		}
		dir = d
		c.haDirOwned = true
	}
	c.haDir = dir
	for i := 0; i < c.cfg.HA.Replicas; i++ {
		rdir := filepath.Join(dir, fmt.Sprintf("replica-%d", i))
		j, err := journal.Open(rdir)
		if err != nil {
			c.closeHA()
			return err
		}
		r := &ctrlReplica{id: i, dir: rdir, jrnl: j, alive: true}
		// Resume: adopt the highest epoch any replica made durable, so a
		// restarted cluster fences out every previous incarnation.
		recs, err := j.RecordsAfter(0)
		if err != nil {
			c.closeHA()
			return err
		}
		for _, rec := range recs {
			if rec.Kind == "epoch" {
				var e struct {
					Epoch uint64 `json:"epoch"`
				}
				if json.Unmarshal(rec.Data, &e) == nil {
					c.SetEpoch(e.Epoch)
				}
			}
		}
		c.replicas = append(c.replicas, r)
	}
	c.leaderID.Store(0)
	c.journalAppend("boot", map[string]any{
		"switches": len(c.cfg.Switches), "replicas": c.cfg.HA.Replicas,
		"epoch": c.epoch.Load(),
	})
	return nil
}

// journalAppend durably records a control-plane event at the leader and
// ships it to every live follower. A no-op in single-controller mode or
// while no leader holds office (the event is control-plane telemetry, not
// packet state — losing it across an election window is acceptable).
func (c *Cluster) journalAppend(kind string, payload any) {
	if len(c.replicas) == 0 {
		return
	}
	c.haMu.Lock()
	c.journalAppendLocked(kind, payload)
	c.haMu.Unlock()
}

// journalAppendLocked is journalAppend with haMu held.
func (c *Cluster) journalAppendLocked(kind string, payload any) {
	lid := int(c.leaderID.Load())
	if lid < 0 {
		return
	}
	leader := c.replicas[lid]
	rec, err := leader.jrnl.AppendEntry(kind, payload)
	if err != nil {
		return
	}
	for _, r := range c.replicas {
		if r.id != lid && r.alive {
			// A gap error means the follower revived without catch-up; it
			// is repaired by catchUpLocked at the next election/revival.
			_ = r.jrnl.AppendReplica(rec)
		}
	}
}

// catchUpLocked streams the source replica's records to every other live
// replica that is behind. Caller holds haMu.
func (c *Cluster) catchUpLocked(src int) {
	leader := c.replicas[src]
	for _, r := range c.replicas {
		if r.id == src || !r.alive {
			continue
		}
		missing, err := leader.jrnl.RecordsAfter(r.jrnl.NextSeq() - 1)
		if err != nil {
			continue
		}
		for _, rec := range missing {
			if r.jrnl.AppendReplica(rec) != nil {
				break
			}
		}
	}
}

// killLeader is KillController's HA path: crash the leader replica, drop
// every control connection, and schedule the election.
func (c *Cluster) killLeader() bool {
	c.haMu.Lock()
	lid := int(c.leaderID.Load())
	if lid < 0 || !c.ctrlDown.CompareAndSwap(false, true) {
		c.haMu.Unlock()
		return false
	}
	killedAt := time.Now()
	r := c.replicas[lid]
	r.alive = false
	r.jrnl.Close()
	c.leaderID.Store(-1)
	anyFollower := false
	for _, f := range c.replicas {
		if f.alive {
			anyFollower = true
			break
		}
	}
	c.haMu.Unlock()
	c.cold.controllerOutages.Add(1)
	if c.rec.Enabled() {
		c.rec.Publish(telemetry.Event{
			Kind: telemetry.EvControllerDown, Node: telemetry.ClusterNode,
			Value: c.epoch.Load(),
		})
	}
	// The leader's connections are gone: switches reconnect (toward the
	// next leader) once the election seats one.
	for _, n := range c.switches {
		n.closeConns()
	}
	if anyFollower {
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.runElection(killedAt)
		}()
	}
	return true
}

// runElection seats a new leader after the election delay: the most
// caught-up live replica wins (highest durable sequence, ties to the
// lowest id), catches the other followers up, and fences the old leader
// out with a raised epoch.
func (c *Cluster) runElection(killedAt time.Time) {
	if !sleepCtx(c.ctx, c.cfg.HA.ElectionDelay) {
		return
	}
	c.haMu.Lock()
	if c.leaderID.Load() >= 0 || c.closed.Load() {
		// Someone else (RestoreController) already seated a leader.
		c.haMu.Unlock()
		return
	}
	winner := c.pickWinnerLocked()
	if winner < 0 {
		c.haMu.Unlock()
		return
	}
	c.catchUpLocked(winner)
	newEpoch := c.epoch.Add(1)
	c.leaderID.Store(int32(winner))
	c.journalAppendLocked("epoch", map[string]any{"epoch": newEpoch, "leader": winner})
	c.haMu.Unlock()
	c.cold.leaderElections.Add(1)
	c.cold.recordElection(time.Since(killedAt).Seconds())
	if c.rec.Enabled() {
		c.rec.Publish(telemetry.Event{
			Kind: telemetry.EvLeaderElected, Node: telemetry.ClusterNode,
			Peer: uint32(winner), Value: newEpoch,
		})
	}
	c.finishFailover(newEpoch)
}

// pickWinnerLocked returns the most caught-up live replica, or -1.
func (c *Cluster) pickWinnerLocked() int {
	winner, best := -1, uint64(0)
	for _, r := range c.replicas {
		if !r.alive {
			continue
		}
		if seq := r.jrnl.NextSeq(); winner < 0 || seq > best {
			winner, best = r.id, seq
		}
	}
	return winner
}

// finishFailover completes a controller failover under the new leader:
// BFD sessions restart their handshakes quietly, the fallback detector's
// clocks restart, and the switches' connection managers (held while
// ctrlDown) re-establish control channels toward the new leader.
func (c *Cluster) finishFailover(newEpoch uint64) {
	c.resetBFD()
	now := time.Now().UnixNano()
	for _, n := range c.switches {
		n.lastBeat.Store(now)
		n.lastProbe.Store(now)
	}
	c.ctrlDown.Store(false)
	if c.rec.Enabled() {
		c.rec.Publish(telemetry.Event{
			Kind: telemetry.EvControllerUp, Node: telemetry.ClusterNode,
			Value: newEpoch,
		})
	}
}

// restoreReplicas is RestoreController's HA path: revive every dead
// replica (reopening its journal) and catch it up from the leader. Only
// when no leader holds office — every replica was killed, or restore
// raced ahead of the election — does it promote one itself.
func (c *Cluster) restoreReplicas() bool {
	c.haMu.Lock()
	changed := false
	for _, r := range c.replicas {
		if r.alive {
			continue
		}
		j, err := journal.Open(r.dir)
		if err != nil {
			continue
		}
		r.jrnl = j
		r.alive = true
		changed = true
	}
	lid := int(c.leaderID.Load())
	if lid >= 0 {
		c.catchUpLocked(lid)
		c.haMu.Unlock()
		return changed
	}
	winner := c.pickWinnerLocked()
	if winner < 0 {
		c.haMu.Unlock()
		return changed
	}
	c.catchUpLocked(winner)
	newEpoch := c.epoch.Add(1)
	c.leaderID.Store(int32(winner))
	c.journalAppendLocked("epoch", map[string]any{"epoch": newEpoch, "leader": winner})
	c.haMu.Unlock()
	c.finishFailover(newEpoch)
	return true
}

// closeHA closes the replica journals and removes the journal root when
// the cluster created it.
func (c *Cluster) closeHA() {
	c.haMu.Lock()
	for _, r := range c.replicas {
		if r.jrnl != nil {
			r.jrnl.Close()
		}
	}
	owned, dir := c.haDirOwned, c.haDir
	c.haDirOwned = false
	c.haMu.Unlock()
	if owned && dir != "" {
		os.RemoveAll(dir)
	}
}

// Leader returns the current leader replica's id, or -1 (no leader in
// office, or single-controller mode).
func (c *Cluster) Leader() int {
	if len(c.replicas) == 0 {
		return -1
	}
	return int(c.leaderID.Load())
}

// ReplicaAlive reports whether replica id is live.
func (c *Cluster) ReplicaAlive(id int) bool {
	c.haMu.Lock()
	defer c.haMu.Unlock()
	if id < 0 || id >= len(c.replicas) {
		return false
	}
	return c.replicas[id].alive
}
