package experiments

import (
	"strings"
	"testing"

	"difane/internal/core"
)

func TestTableNetworks(t *testing.T) {
	r := TableNetworks(Quick())
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	names := map[string]bool{}
	for _, row := range r.Rows {
		names[row.Name] = true
		if row.Rules == 0 || row.Switches == 0 {
			t.Fatalf("degenerate row: %+v", row)
		}
		if row.Overhead < 1.0 {
			t.Fatalf("overhead below 1 is impossible: %+v", row)
		}
		if row.Overhead > 5.0 {
			t.Fatalf("splitting overhead out of band: %+v", row)
		}
	}
	for _, want := range []string{"campus", "vpn", "iptv", "isp"} {
		if !names[want] {
			t.Fatalf("missing network %q", want)
		}
	}
	if out := r.Render(); !strings.Contains(out, "T1") || !strings.Contains(out, "campus") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestFigFirstPacketDelayShape(t *testing.T) {
	r := FigFirstPacketDelay(Quick())
	if r.DIFANE.N() == 0 || r.NOX.N() == 0 {
		t.Fatal("both systems must record delays")
	}
	// The paper's core latency claim: DIFANE first packets are much
	// faster because they never wait on the controller.
	if r.NOX.Mean() < 2*r.DIFANE.Mean() {
		t.Fatalf("NOX mean %v must far exceed DIFANE %v", r.NOX.Mean(), r.DIFANE.Mean())
	}
	// The tail (miss traffic) is where the controller round trip shows.
	if r.NOX.Percentile(90) <= r.DIFANE.Percentile(90) {
		t.Fatalf("p90 ordering must hold: nox=%v difane=%v",
			r.NOX.Percentile(90), r.DIFANE.Percentile(90))
	}
	if out := r.Render(); !strings.Contains(out, "F1") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestFigThroughputShape(t *testing.T) {
	r := FigThroughput(Quick())
	if len(r.Points) == 0 {
		t.Fatal("no points")
	}
	for _, p := range r.Points {
		// DIFANE must track offered load while under authority capacity.
		if p.Offered <= r.DIFANERate && p.DIFANE < 0.85*p.Offered {
			t.Fatalf("DIFANE at %v offered only completed %v", p.Offered, p.DIFANE)
		}
		// NOX must cap near its controller rate.
		if p.NOX > 1.2*r.NOXRate {
			t.Fatalf("NOX exceeded its capacity: %+v", p)
		}
	}
	last := r.Points[len(r.Points)-1]
	if last.Offered > 2*r.NOXRate && last.NOX > 1.1*r.NOXRate {
		t.Fatalf("NOX must saturate at high load: %+v", last)
	}
	if out := r.Render(); !strings.Contains(out, "F2") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestFigAuthorityScalingShape(t *testing.T) {
	r := FigAuthorityScaling(Quick())
	if len(r.Points) < 3 {
		t.Fatalf("points = %d", len(r.Points))
	}
	// Setups must grow with k (near-linear until offered load is met).
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].Setups < r.Points[i-1].Setups {
			t.Fatalf("throughput must not shrink with more authorities: %+v", r.Points)
		}
	}
	first, last := r.Points[0], r.Points[len(r.Points)-1]
	growth := last.Setups / first.Setups
	kGrowth := float64(last.Authorities) / float64(first.Authorities)
	if growth < 0.6*kGrowth {
		t.Fatalf("scaling too sublinear: %vx setups for %vx authorities", growth, kGrowth)
	}
	if out := r.Render(); !strings.Contains(out, "F3") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestFigPartitionTCAMShape(t *testing.T) {
	r := FigPartitionTCAM(Quick())
	byNet := map[string][]PartitionPoint{}
	for _, p := range r.Points {
		byNet[p.Network] = append(byNet[p.Network], p)
	}
	for net, pts := range byNet {
		// Per-switch load must decay as k grows.
		first, last := pts[0], pts[len(pts)-1]
		if first.Authorities != 1 {
			t.Fatalf("%s: first point must be k=1", net)
		}
		if last.MaxEntries >= first.MaxEntries {
			t.Fatalf("%s: load must fall with k: %+v", net, pts)
		}
		// And stay within a small factor of ideal n/k.
		ideal := float64(last.Rules) / float64(last.Authorities)
		if float64(last.MaxEntries) > 6*ideal {
			t.Fatalf("%s: max entries %d too far above ideal %v", net, last.MaxEntries, ideal)
		}
	}
	if out := r.Render(); !strings.Contains(out, "F4") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestFigSplitOverheadShape(t *testing.T) {
	r := FigSplitOverhead(Quick())
	for _, p := range r.Points {
		if p.Overhead < 1.0 {
			t.Fatalf("impossible overhead: %+v", p)
		}
		if p.Overhead > 6.0 {
			t.Fatalf("overhead out of band: %+v", p)
		}
	}
	if out := r.Render(); !strings.Contains(out, "F5") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestFigCacheMissShape(t *testing.T) {
	r := FigCacheMiss(Quick())
	byStrat := map[core.CacheStrategy][]CacheMissPoint{}
	for _, p := range r.Points {
		byStrat[p.Strategy] = append(byStrat[p.Strategy], p)
	}
	for strat, pts := range byStrat {
		if len(pts) < 2 {
			t.Fatalf("%v: too few points", strat)
		}
		// Miss rate must fall (weakly) as the cache grows, and the largest
		// cache must beat the smallest clearly.
		first, last := pts[0], pts[len(pts)-1]
		if last.MissRate > first.MissRate {
			t.Fatalf("%v: miss rate must fall with cache size: %+v", strat, pts)
		}
	}
	// Cover must beat dependent-set at the smallest cache size on this
	// dependency-heavy policy.
	cover := byStrat[core.StrategyCover][0]
	dep := byStrat[core.StrategyDependent][0]
	if cover.MissRate > dep.MissRate*1.05 {
		t.Fatalf("cover (%v) must not lose to dependent-set (%v) at small caches",
			cover.MissRate, dep.MissRate)
	}
	if out := r.Render(); !strings.Contains(out, "F6") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestFigStretchShape(t *testing.T) {
	r := FigStretch(Quick())
	if len(r.Dists) != len(r.Ks) {
		t.Fatal("dist per k")
	}
	for i := range r.Ks {
		if r.Dists[i].N() == 0 {
			t.Fatalf("k=%d: no stretch samples", r.Ks[i])
		}
		if r.Dists[i].Min() < 1.0 {
			t.Fatalf("stretch below 1 impossible: %v", r.Dists[i].Min())
		}
	}
	// More authorities must not worsen mean stretch.
	if r.Dists[len(r.Dists)-1].Mean() > r.Dists[0].Mean()*1.1 {
		t.Fatalf("stretch must improve with more authorities: k=1 %v vs k=max %v",
			r.Dists[0].Mean(), r.Dists[len(r.Dists)-1].Mean())
	}
	if out := r.Render(); !strings.Contains(out, "F7") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestFigFailoverShape(t *testing.T) {
	r := FigFailover(Quick())
	// With a backup, losses are bounded by the failover window; without,
	// everything after the failure is lost.
	if r.WithBackupDelivered == 0 {
		t.Fatal("backup config must deliver after convergence")
	}
	if r.WithoutBackupDelivered != 0 {
		t.Fatalf("single-authority config must lose all post-failure flows, delivered %d",
			r.WithoutBackupDelivered)
	}
	if r.WithBackupLost >= r.WithoutBackupLost {
		t.Fatalf("backup must reduce losses: %d vs %d", r.WithBackupLost, r.WithoutBackupLost)
	}
	if out := r.Render(); !strings.Contains(out, "F8") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestFigPolicyChangeShape(t *testing.T) {
	r := FigPolicyChange(Quick())
	// The stale window is bounded by the push delay (25 flows at 10ms
	// spacing for a 250ms push), with scheduling jitter allowance.
	bound := uint64(r.PushDelay/0.01) + 3
	if r.StaleServed > bound {
		t.Fatalf("stale-served %d exceeds push-delay bound %d", r.StaleServed, bound)
	}
	if r.ConvergedCorrect == 0 {
		t.Fatal("post-convergence traffic must hit the new policy")
	}
	if out := r.Render(); !strings.Contains(out, "F9") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestAblationCacheStrategyShape(t *testing.T) {
	r := AblationCacheStrategy(Quick())
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	var cover, dep, exact StrategyRow
	for _, row := range r.Rows {
		switch row.Strategy {
		case core.StrategyCover:
			cover = row
		case core.StrategyDependent:
			dep = row
		case core.StrategyExact:
			exact = row
		}
	}
	// Dependent-set burns more cache rules than cover for the same traffic.
	if dep.RulesSent <= cover.RulesSent {
		t.Fatalf("dependent-set (%d rules) must send more than cover (%d)",
			dep.RulesSent, cover.RulesSent)
	}
	// Exact matching generalizes worst: highest miss rate.
	if exact.MissRate < cover.MissRate {
		t.Fatalf("exact (%v) must miss at least as much as cover (%v)",
			exact.MissRate, cover.MissRate)
	}
	if out := r.Render(); !strings.Contains(out, "A1") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestAblationPartitionerShape(t *testing.T) {
	r := AblationPartitioner(Quick())
	for _, row := range r.Rows[1:] { // skip k=1 where both are equal-ish
		if row.TreeMax >= row.ReplicateMax {
			t.Fatalf("tree must beat replication at k=%d: %+v", row.Authorities, row)
		}
	}
	if out := r.Render(); !strings.Contains(out, "A2") {
		t.Fatalf("render:\n%s", out)
	}
}
