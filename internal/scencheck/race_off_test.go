//go:build !race

package scencheck

const raceEnabled = false
