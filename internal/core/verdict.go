package core

import "difane/internal/flowspace"

// VerdictKind classifies a packet's terminal outcome inside a deployment.
// Exactly one verdict is emitted per injected packet, mirroring the
// accounting identity: every packet ends in Delivered or exactly one of
// the Drops counters.
type VerdictKind uint8

// Terminal packet outcomes.
const (
	// VerdictDelivered: the packet reached its egress switch.
	VerdictDelivered VerdictKind = iota
	// VerdictPolicyDrop: the packet matched an operator deny rule.
	VerdictPolicyDrop
	// VerdictHole: no rule covered the packet (or a non-data-plane action
	// won), counted in Drops.Hole.
	VerdictHole
	// VerdictQueueDrop: shed by an overloaded authority (or, in the
	// baseline, the controller) queue.
	VerdictQueueDrop
	// VerdictUnreachable: the delivery or redirect path was partitioned
	// away (dead ingress, dead egress, withdrawn partition rule).
	VerdictUnreachable
)

func (k VerdictKind) String() string {
	switch k {
	case VerdictDelivered:
		return "delivered"
	case VerdictPolicyDrop:
		return "policy-drop"
	case VerdictHole:
		return "hole"
	case VerdictQueueDrop:
		return "queue-drop"
	case VerdictUnreachable:
		return "unreachable"
	default:
		return "verdict(?)"
	}
}

// VerdictEvent reports one packet's terminal outcome to an Observer.
type VerdictEvent struct {
	Key  flowspace.Key
	Seq  uint64
	Kind VerdictKind
	// Egress is the delivery switch, valid when Kind == VerdictDelivered.
	Egress uint32
	// Detour is true when delivery went through an authority redirect.
	Detour bool
}

// emit reports a terminal packet outcome to the observer, if one is set.
// Every counter-incrementing terminal path in the packet pipeline calls it
// exactly once, so observers see a bijection with the accounting identity.
func (n *Network) emit(kind VerdictKind, k flowspace.Key, seq uint64, egress uint32, detour bool) {
	if n.Observer != nil {
		n.Observer(VerdictEvent{Key: k, Seq: seq, Kind: kind, Egress: egress, Detour: detour})
	}
}
