package wire

import (
	"testing"
	"time"

	"difane/internal/core"
	"difane/internal/packet"
)

func newTCPCluster(t *testing.T) *Cluster {
	t.Helper()
	c, err := NewCluster(ClusterConfig{
		Switches:    []uint32{0, 1, 2, 3, 4},
		Authorities: []uint32{2},
		Policy:      testPolicy(),
		Strategy:    core.StrategyCover,
		UseTCP:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestTCPClusterEndToEnd(t *testing.T) {
	c := newTCPCluster(t)
	if !c.Inject(0, httpHeader(1), 100) {
		t.Fatal("inject failed")
	}
	d := awaitDelivery(t, c)
	if d.Egress != 4 || !d.Detour {
		t.Fatalf("delivery = %+v", d)
	}
	// Cache install travels switch → controller → ingress over real TCP.
	deadline := time.Now().Add(5 * time.Second)
	for c.CacheLen(0) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("cache install never arrived over TCP")
		}
		time.Sleep(time.Millisecond)
	}
	c.Inject(0, httpHeader(2), 100)
	if d := awaitDelivery(t, c); d.Detour {
		t.Fatal("second packet must hit the TCP-installed cache")
	}
}

func TestTCPBarrierAndStats(t *testing.T) {
	c := newTCPCluster(t)
	for xid := uint32(1); xid <= 3; xid++ {
		if err := c.Barrier(1, xid); err != nil {
			t.Fatal(err)
		}
	}
	c.Inject(0, httpHeader(5), 100)
	awaitDelivery(t, c)
	rep, err := c.Stats(2, 1, 9)
	if err != nil || !rep.OK {
		t.Fatalf("stats over TCP: %+v err=%v", rep, err)
	}
}

func TestTCPManyFlows(t *testing.T) {
	c := newTCPCluster(t)
	const flows = 100
	go func() {
		for i := 0; i < flows; i++ {
			for !c.Inject(uint32(i%2), httpHeader(uint32(i+10)), 100) {
				time.Sleep(time.Millisecond)
			}
		}
	}()
	for i := 0; i < flows; i++ {
		if d := awaitDelivery(t, c); d.Egress != 4 {
			t.Fatalf("egress = %d", d.Egress)
		}
	}
}

func TestTCPCloseReleasesSockets(t *testing.T) {
	c := newTCPCluster(t)
	c.Close()
	// Building a second cluster immediately must work (no port conflicts —
	// ephemeral ports — and no goroutine leaks blocking accept loops).
	c2 := newTCPCluster(t)
	c2.Inject(0, packet.Header{TPDst: 80}, 64)
	awaitDelivery(t, c2)
}
