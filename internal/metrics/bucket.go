package metrics

import (
	"sync"
	"time"
)

// TokenBucket is a thread-safe token-bucket rate limiter: tokens refill at
// a fixed rate up to a burst ceiling, and each admitted event consumes one.
// It is the shedding primitive wire mode uses to protect authority switches
// and the control plane from miss storms.
//
// A nil *TokenBucket admits everything, so callers can treat "no limit
// configured" and "bucket" uniformly.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

// NewTokenBucket builds a bucket refilling at rate tokens/second with the
// given burst capacity (minimum 1). A rate ≤ 0 returns nil: unlimited.
func NewTokenBucket(rate float64, burst int) *TokenBucket {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	return &TokenBucket{
		rate:   rate,
		burst:  float64(burst),
		tokens: float64(burst),
		last:   time.Now(),
	}
}

// Allow consumes one token if available, reporting whether the event is
// admitted. Nil-safe: a nil bucket always admits.
func (b *TokenBucket) Allow() bool { return b.AllowAt(time.Now()) }

// AllowAt is Allow with an explicit clock, for tests.
func (b *TokenBucket) AllowAt(now time.Time) bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Tokens returns the current token count (after refill), for inspection.
func (b *TokenBucket) Tokens() float64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if dt := time.Since(b.last).Seconds(); dt > 0 {
		b.tokens += dt * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = time.Now()
	}
	return b.tokens
}
