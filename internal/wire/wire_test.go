package wire

import (
	"testing"
	"time"

	"difane/internal/core"
	"difane/internal/flowspace"
	"difane/internal/packet"
)

func testPolicy() []flowspace.Rule {
	return []flowspace.Rule{
		{ID: 1, Priority: 10,
			Match:  flowspace.MatchAll().WithExact(flowspace.FTPDst, 80),
			Action: flowspace.Action{Kind: flowspace.ActForward, Arg: 4}},
		{ID: 2, Priority: 5,
			Match:  flowspace.MatchAll().WithExact(flowspace.FTPDst, 22),
			Action: flowspace.Action{Kind: flowspace.ActDrop}},
		{ID: 3, Priority: 0, Match: flowspace.MatchAll(),
			Action: flowspace.Action{Kind: flowspace.ActForward, Arg: 3}},
	}
}

func newCluster(t *testing.T, strategy core.CacheStrategy) *Cluster {
	t.Helper()
	c, err := NewCluster(ClusterConfig{
		Switches:    []uint32{0, 1, 2, 3, 4},
		Authorities: []uint32{2},
		Policy:      testPolicy(),
		Strategy:    strategy,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func httpHeader(src uint32) packet.Header {
	return packet.Header{
		EthType: packet.EthTypeIPv4, IPProto: packet.ProtoTCP,
		IPSrc: src, IPDst: packet.IP4(10, 0, 0, 1), TPDst: 80,
	}
}

func awaitDelivery(t *testing.T, c *Cluster) Delivery {
	t.Helper()
	select {
	case d := <-c.Deliveries:
		return d
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for delivery")
		return Delivery{}
	}
}

func TestFirstPacketDetourDelivers(t *testing.T) {
	c := newCluster(t, core.StrategyCover)
	if !c.Inject(0, httpHeader(1), 100) {
		t.Fatal("inject failed")
	}
	d := awaitDelivery(t, c)
	if d.Egress != 4 {
		t.Fatalf("egress = %d, want 4", d.Egress)
	}
	if !d.Detour {
		t.Fatal("first packet must travel via the authority")
	}
	if d.Header.TPDst != 80 {
		t.Fatalf("header corrupted: %+v", d.Header)
	}
}

func TestCacheInstallMakesSecondPacketDirect(t *testing.T) {
	c := newCluster(t, core.StrategyCover)
	c.Inject(0, httpHeader(1), 100)
	awaitDelivery(t, c)
	// Wait for the cache install to land at ingress 0.
	deadline := time.Now().Add(5 * time.Second)
	for c.CacheLen(0) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("cache install never arrived")
		}
		time.Sleep(time.Millisecond)
	}
	c.Inject(0, httpHeader(2), 100)
	d := awaitDelivery(t, c)
	if d.Detour {
		t.Fatal("cached packet must go direct")
	}
	if d.Egress != 4 {
		t.Fatalf("egress = %d", d.Egress)
	}
}

func TestPolicyDropNeverDelivers(t *testing.T) {
	c := newCluster(t, core.StrategyCover)
	h := httpHeader(1)
	h.TPDst = 22
	c.Inject(0, h, 100)
	select {
	case d := <-c.Deliveries:
		t.Fatalf("dropped packet was delivered: %+v", d)
	case <-time.After(200 * time.Millisecond):
	}
}

func TestBarrierRoundTrip(t *testing.T) {
	c := newCluster(t, core.StrategyCover)
	for xid := uint32(1); xid <= 5; xid++ {
		if err := c.Barrier(0, xid); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Barrier(99, 1); err == nil {
		t.Fatal("barrier to unknown switch must fail")
	}
}

func TestStatsOverControlPlane(t *testing.T) {
	c := newCluster(t, core.StrategyCover)
	c.Inject(0, httpHeader(1), 100)
	awaitDelivery(t, c)
	// The authority switch (2) served the miss from its authority table.
	rep, err := c.Stats(2, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatal("authority must know rule 1")
	}
	if rep, err := c.Stats(2, 424242, 8); err != nil || rep.OK {
		t.Fatalf("unknown rule must reply !OK (err=%v)", err)
	}
}

func TestManyFlowsAllDeliveredConcurrently(t *testing.T) {
	c := newCluster(t, core.StrategyCover)
	const flows = 200
	go func() {
		for i := 0; i < flows; i++ {
			for !c.Inject(uint32(i%2), httpHeader(uint32(i+10)), 100) {
				time.Sleep(time.Millisecond)
			}
		}
	}()
	for i := 0; i < flows; i++ {
		d := awaitDelivery(t, c)
		if d.Egress != 4 {
			t.Fatalf("egress = %d", d.Egress)
		}
	}
}

func TestExactStrategyWire(t *testing.T) {
	c := newCluster(t, core.StrategyExact)
	c.Inject(0, httpHeader(1), 100)
	awaitDelivery(t, c)
	deadline := time.Now().Add(5 * time.Second)
	for c.CacheLen(0) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("cache install never arrived")
		}
		time.Sleep(time.Millisecond)
	}
	// A different flow must detour again (exact rules don't generalize).
	c.Inject(0, httpHeader(99), 100)
	d := awaitDelivery(t, c)
	if !d.Detour {
		t.Fatal("exact caching must not cover other flows")
	}
}

func TestInjectUnknownSwitch(t *testing.T) {
	c := newCluster(t, core.StrategyCover)
	if c.Inject(99, httpHeader(1), 100) {
		t.Fatal("inject at unknown switch must fail")
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{}); err == nil {
		t.Fatal("empty config must fail")
	}
	_, err := NewCluster(ClusterConfig{
		Switches:    []uint32{0},
		Authorities: []uint32{5}, // not a cluster switch
		Policy:      testPolicy(),
	})
	if err == nil {
		t.Fatal("authority outside cluster must fail")
	}
}

func TestCloseIsIdempotentAndStops(t *testing.T) {
	c := newCluster(t, core.StrategyCover)
	c.Close()
	c.Close()
	if c.Inject(0, httpHeader(1), 100) {
		// Inject into a closed cluster may enqueue but nothing drains;
		// the important property is no panic and no hang.
		time.Sleep(10 * time.Millisecond)
	}
}

// TestInjectBatchPoolReuse runs two InjectBatch calls back to back through
// the same deployment, so the second batch is staged in the pooled frame
// slab the first one used. Every delivery from the second batch must carry
// exactly its own header and size — any stale field surviving slab reuse
// (old headers, encap state, the detour bit) shows up as a corrupted or
// duplicated delivery here.
func TestInjectBatchPoolReuse(t *testing.T) {
	c := newCluster(t, core.StrategyCover)
	d := Deploy(c)

	const per = 32
	mkBatch := func(base uint32, size int) []core.PacketIn {
		batch := make([]core.PacketIn, per)
		for i := range batch {
			h := httpHeader(base + uint32(i))
			batch[i] = core.PacketIn{Ingress: uint32(i % 2), Key: h.Key(), Size: size}
		}
		return batch
	}
	first := mkBatch(1000, 100)
	d.InjectBatch(first)
	seen := make(map[uint32]int, per)
	for i := range first {
		seen[1000+uint32(i)] = 100
	}
	for n := 0; n < per; n++ {
		del := awaitDelivery(t, c)
		if _, ok := seen[del.Header.IPSrc]; !ok {
			t.Fatalf("first batch: unexpected src %d: %+v", del.Header.IPSrc, del)
		}
		delete(seen, del.Header.IPSrc)
	}

	second := mkBatch(2000, 700)
	d.InjectBatch(second)
	seen = make(map[uint32]int, per)
	for i := range second {
		seen[2000+uint32(i)] = 700
	}
	for n := 0; n < per; n++ {
		del := awaitDelivery(t, c)
		if _, ok := seen[del.Header.IPSrc]; !ok {
			t.Fatalf("second batch: stale or duplicate src %d leaked from pooled slab: %+v",
				del.Header.IPSrc, del)
		}
		delete(seen, del.Header.IPSrc)
		if del.Header.TPDst != 80 {
			t.Fatalf("second batch: header corrupted: %+v", del.Header)
		}
	}
	if len(seen) != 0 {
		t.Fatalf("second batch: %d deliveries missing", len(seen))
	}
	d.Run(5)
	m := d.Measurements()
	if m.Delivered != 2*per {
		t.Fatalf("delivered = %d, want %d", m.Delivered, 2*per)
	}
}
