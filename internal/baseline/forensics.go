package baseline

import (
	"difane/internal/core"
	"difane/internal/flowspace"
	"difane/internal/telemetry"
)

// The baseline carries the same forensics layer as the DIFANE backends —
// flight recorder, trace sampler, journey assembly — so `difanectl journey`
// reads a reactive deployment exactly like a DIFANE one. The span shapes
// reuse the DIFANE vocabulary: the punt to the controller is a "redirect"
// (Peer = the controller's node) and the controller's policy evaluation an
// "authority" hit, which keeps one renderer honest for both architectures.

// vnow is the recorder timestamp for the current virtual instant, floored
// at 1 so Recorder.Publish never mistakes t=0 for "stamp me with wall time".
func (n *Network) vnow() int64 {
	ts := int64(n.Eng.Now() * 1e9)
	if ts <= 0 {
		ts = 1
	}
	return ts
}

func tupleOfKey(k flowspace.Key) telemetry.FlowTuple {
	return telemetry.Tuple(
		uint32(k[flowspace.FIPSrc]), uint32(k[flowspace.FIPDst]),
		uint16(k[flowspace.FTPSrc]), uint16(k[flowspace.FTPDst]),
		uint8(k[flowspace.FIPProto]))
}

// traceID mints the packet's trace ID, or 0 when unsampled. Cost with
// sampling off: one atomic load.
func (n *Network) traceID(k flowspace.Key, seq uint64) uint64 {
	if n.sampler.Rate() == 0 {
		return 0
	}
	return n.sampler.TraceID(tupleOfKey(k).Hash, seq)
}

// span publishes one trace event stamped with the current virtual time.
func (n *Network) span(ev telemetry.Event) {
	if !n.rec.Enabled() {
		return
	}
	if ev.TS == 0 {
		ev.TS = n.vnow()
	}
	n.rec.Publish(ev)
}

// finish reports a packet's terminal outcome: the Observer emit plus a
// terminal verdict span at the deciding node when the packet is sampled.
func (n *Network) finish(kind core.VerdictKind, node uint32, k flowspace.Key, seq uint64, egress uint32, trace uint64, latNS uint64) {
	n.emit(kind, k, seq, egress)
	if trace != 0 && n.rec.Enabled() {
		n.span(telemetry.Event{
			Kind:    telemetry.EvVerdict,
			Node:    node,
			Verdict: core.VerdictCode(kind),
			Value:   latNS,
			Trace:   trace,
			Flow:    tupleOfKey(k),
		})
	}
}

// Recorder exposes the network's flight recorder.
func (n *Network) Recorder() *telemetry.Recorder { return n.rec }

// SetTracing toggles the flight recorder at runtime.
func (n *Network) SetTracing(on bool) { n.rec.SetEnabled(on) }

// SetTraceSample changes the 1-in-N per-packet trace sampling rate at
// runtime (0 = off).
func (n *Network) SetTraceSample(rate int) { n.sampler.SetRate(rate) }

// TraceSampleRate returns the current 1-in-N sampling rate (0 = off).
func (n *Network) TraceSampleRate() int { return n.sampler.Rate() }

// Journeys assembles end-to-end packet journeys from the flight recorder.
// The filter's freshness clock defaults to the current virtual time.
func (n *Network) Journeys(f telemetry.JourneyFilter) ([]telemetry.Journey, telemetry.JourneyStats) {
	if f.NowNS == 0 {
		f.NowNS = n.vnow()
	}
	return telemetry.AssembleJourneys(n.rec, f)
}
