package core

import (
	"reflect"
	"testing"

	"difane/internal/metrics"
)

// TestMeasurementsMergeAllFields pins Merge against the full field set by
// reflection: every uint64 counter gets a distinct value on both sides and
// must sum, every metrics.Dist must concatenate. Adding a field to
// Measurements without teaching Merge about it fails here — wire mode's
// cluster-wide snapshot (and the telemetry registry fed from it) silently
// under-reports otherwise.
func TestMeasurementsMergeAllFields(t *testing.T) {
	var a, b Measurements
	fill := func(m *Measurements, base uint64, samples []float64) {
		v := reflect.ValueOf(m).Elem()
		for i := 0; i < v.NumField(); i++ {
			f := v.Field(i)
			switch f.Type() {
			case reflect.TypeOf(uint64(0)):
				f.SetUint(base + uint64(i))
			case reflect.TypeOf(metrics.Dist{}):
				d := f.Addr().Interface().(*metrics.Dist)
				for _, s := range samples {
					d.Add(s)
				}
			case reflect.TypeOf(Drops{}):
				dv := f.Addr().Elem()
				for j := 0; j < dv.NumField(); j++ {
					dv.Field(j).SetUint(base + 100 + uint64(j))
				}
			default:
				t.Fatalf("Measurements has a field type this test does not model: %s %s",
					v.Type().Field(i).Name, f.Type())
			}
		}
	}
	fill(&a, 1000, []float64{1, 2, 3})
	fill(&b, 5000, []float64{4, 5})
	bBefore := b.Snapshot()

	a.Merge(&b)

	av := reflect.ValueOf(&a).Elem()
	for i := 0; i < av.NumField(); i++ {
		f := av.Field(i)
		name := av.Type().Field(i).Name
		switch f.Type() {
		case reflect.TypeOf(uint64(0)):
			want := (1000 + uint64(i)) + (5000 + uint64(i))
			if f.Uint() != want {
				t.Errorf("Merge dropped counter %s: got %d, want %d", name, f.Uint(), want)
			}
		case reflect.TypeOf(metrics.Dist{}):
			d := f.Addr().Interface().(*metrics.Dist)
			if d.N() != 5 {
				t.Errorf("Merge dropped samples in %s: N = %d, want 5", name, d.N())
			}
			if got, want := d.Sum(), 1.0+2+3+4+5; got != want {
				t.Errorf("%s sum = %v, want %v", name, got, want)
			}
		case reflect.TypeOf(Drops{}):
			dv := f
			for j := 0; j < dv.NumField(); j++ {
				want := (1000 + 100 + uint64(j)) + (5000 + 100 + uint64(j))
				if dv.Field(j).Uint() != want {
					t.Errorf("Merge dropped Drops.%s: got %d, want %d",
						dv.Type().Field(j).Name, dv.Field(j).Uint(), want)
				}
			}
		}
	}

	// b is the fold-in side and must come through untouched.
	if b.Delivered != bBefore.Delivered || b.FirstPacketDelay.N() != bBefore.FirstPacketDelay.N() {
		t.Error("Merge mutated its argument")
	}
}
