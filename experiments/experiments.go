// Package experiments regenerates the DIFANE paper's evaluation: one
// function per table/figure (reconstructed — see DESIGN.md's mismatch
// notice), each returning a typed result with a Render method that prints
// the rows/series the paper reports. cmd/difane-bench prints them all;
// bench_test.go wraps each in a testing.B benchmark and asserts the
// qualitative shape.
package experiments

import (
	"fmt"
	"strings"

	"difane/internal/baseline"
	"difane/internal/core"
	"difane/internal/flowspace"
	"difane/internal/metrics"
	"difane/internal/workload"
)

// Options tunes every experiment uniformly.
type Options struct {
	// Scale shrinks workloads (ScaleTest) or runs them full size
	// (ScaleBench).
	Scale workload.NetworkScale
	// Seed drives every generator.
	Seed int64
}

// Bench returns the full-size options used by the harness.
func Bench() Options { return Options{Scale: workload.ScaleBench, Seed: 42} }

// Quick returns reduced options for unit tests.
func Quick() Options { return Options{Scale: workload.ScaleTest, Seed: 42} }

func header(id, title string) string {
	return fmt.Sprintf("== %s: %s ==\n", id, title)
}

// --- T1: evaluation networks table ------------------------------------------

// NetworkRow is one row of the networks table.
type NetworkRow struct {
	Name       string
	Switches   int
	Rules      int
	DepDepth   int
	Partitions int
	Entries    int
	Overhead   float64 // entries ÷ rules
}

// TableNetworksResult is the T1 table.
type TableNetworksResult struct {
	Rows []NetworkRow
}

// TableNetworks characterizes the four synthetic evaluation networks and
// what the partitioner does to them (leaf capacity sized for 4 authority
// switches).
func TableNetworks(o Options) *TableNetworksResult {
	res := &TableNetworksResult{}
	for _, spec := range workload.AllNetworks(o.Seed, o.Scale) {
		leaf := len(spec.Policy)/4 + 1
		parts := core.BuildPartitions(spec.Policy, core.PartitionConfig{MaxRulesPerPartition: leaf})
		entries := core.TotalEntries(parts)
		// Dependency structure of the rules proper: the catch-all default
		// overlaps everything and would swamp the statistic.
		withoutDefault := spec.Policy[:len(spec.Policy)-1]
		res.Rows = append(res.Rows, NetworkRow{
			Name:       spec.Name,
			Switches:   spec.Graph.NumNodes(),
			Rules:      len(spec.Policy),
			DepDepth:   workload.MaxDependencyDepth(withoutDefault, 200),
			Partitions: len(parts),
			Entries:    entries,
			Overhead:   float64(entries) / float64(len(spec.Policy)),
		})
	}
	return res
}

// Render prints the T1 table.
func (r *TableNetworksResult) Render() string {
	var tb metrics.Table
	tb.AddRow("network", "switches", "rules", "max-deps", "partitions(k=4)", "entries", "overhead")
	for _, row := range r.Rows {
		tb.AddRowf(row.Name, row.Switches, row.Rules, row.DepDepth,
			row.Partitions, row.Entries, row.Overhead)
	}
	return header("T1", "evaluation networks") + tb.String()
}

// --- F1: first-packet delay CDF ----------------------------------------------

// FirstPacketDelayResult compares first-packet delay distributions.
type FirstPacketDelayResult struct {
	DIFANE metrics.Dist
	NOX    metrics.Dist
}

// FigFirstPacketDelay drives the same flow trace through DIFANE and the
// reactive baseline on the campus network and records first-packet RTTs.
// The paper's shape: DIFANE's first packets see a sub-millisecond detour
// while NOX's wait on a controller round trip an order of magnitude
// longer.
func FigFirstPacketDelay(o Options) *FirstPacketDelayResult {
	spec := workload.CampusNetwork(o.Seed, o.Scale)
	// Every flow is new (uniform keys): each first packet is a genuine
	// setup, which is what the paper's figure distributes. DIFANE still
	// benefits from covers installed by earlier flows in the same region —
	// that generalization is precisely its advantage over per-microflow
	// setups.
	flows := workload.UniformTraffic(spec, workload.TrafficConfig{
		Flows: scaleInt(o, 20000), Rate: 5000, Seed: o.Seed + 10,
	})

	auths := core.PlaceAuthorities(spec.Graph, 3)
	dn, err := core.NewNetwork(spec.Graph, auths, spec.Policy, core.NetworkConfig{
		Strategy:  core.StrategyCover,
		Partition: core.PartitionConfig{MaxRulesPerPartition: len(spec.Policy)/3 + 1},
	})
	if err != nil {
		panic(err)
	}
	runTrace(dn.InjectPacket, dn.Run, flows)

	bn, err := baseline.NewNetwork(spec.Graph, spec.Policy, baseline.Config{
		ControllerNode: uint32(spec.Graph.Nodes()[0]),
		SetupOverhead:  0.010, // controller software path, NOX-era
	})
	if err != nil {
		panic(err)
	}
	runTrace(bn.InjectPacket, bn.Run, flows)

	return &FirstPacketDelayResult{DIFANE: dn.M.FirstPacketDelay, NOX: bn.M.FirstPacketDelay}
}

// Render prints the F1 CDF.
func (r *FirstPacketDelayResult) Render() string {
	var b strings.Builder
	b.WriteString(header("F1", "first-packet delay CDF (campus)"))
	var tb metrics.Table
	tb.AddRow("quantile", "difane", "nox-like")
	for _, q := range metrics.Quantiles {
		tb.AddRow(fmt.Sprintf("p%g", q*100),
			metrics.FormatDuration(r.DIFANE.Percentile(q*100)),
			metrics.FormatDuration(r.NOX.Percentile(q*100)))
	}
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "mean: difane=%s nox=%s (ratio %.1fx)\n",
		metrics.FormatDuration(r.DIFANE.Mean()), metrics.FormatDuration(r.NOX.Mean()),
		r.NOX.Mean()/r.DIFANE.Mean())
	return b.String()
}

// --- F2: first-packet throughput vs offered load ------------------------------

// ThroughputPoint is one offered-load sample.
type ThroughputPoint struct {
	Offered float64 // flows/s
	DIFANE  float64 // completed setups/s
	NOX     float64
}

// ThroughputResult is the F2 sweep.
type ThroughputResult struct {
	Points []ThroughputPoint
	// Capacities note the modeled service rates.
	DIFANERate, NOXRate float64
}

// FigThroughput sweeps the offered new-flow rate and measures completed
// flow setups per second. The authority switch's data-plane path sustains
// roughly an order of magnitude more setups than the NOX controller, so
// DIFANE tracks the offered load long after NOX saturates. Rates are
// scaled down ~4x from the paper's 800k/50k to keep simulation time
// bounded; the ratio is preserved.
func FigThroughput(o Options) *ThroughputResult {
	authorityRate, noxRate := 200000.0, 12500.0
	const window = 1.0 // seconds of offered load per sample
	spec := workload.VPNNetwork(o.Seed, o.Scale)
	offered := []float64{2000, 5000, 10000, 20000, 50000, 100000, 200000, 400000}
	if o.Scale < workload.ScaleBench {
		authorityRate, noxRate = 20000, 1250
		offered = []float64{500, 2000, 5000}
	}
	res := &ThroughputResult{DIFANERate: authorityRate, NOXRate: noxRate}
	for _, rate := range offered {
		flows := workload.UniformTraffic(spec, workload.TrafficConfig{
			Flows: int(rate * window), Rate: rate, Seed: o.Seed + int64(rate),
		})

		auths := core.PlaceAuthorities(spec.Graph, 1)
		// Exact-match caching: every new flow is a genuine setup, which is
		// what this experiment stresses (wildcard covers would absorb new
		// flows without authority involvement).
		dn, err := core.NewNetwork(spec.Graph, auths, spec.Policy, core.NetworkConfig{
			Strategy:       core.StrategyExact,
			AuthorityRate:  authorityRate,
			AuthorityQueue: 2048,
		})
		if err != nil {
			panic(err)
		}
		runTraceHorizon(dn.InjectPacket, dn.Run, flows, window)

		bn, err := baseline.NewNetwork(spec.Graph, spec.Policy, baseline.Config{
			ControllerNode:  uint32(spec.Graph.Nodes()[0]),
			ControllerRate:  noxRate,
			ControllerQueue: 2048,
		})
		if err != nil {
			panic(err)
		}
		runTraceHorizon(bn.InjectPacket, bn.Run, flows, window)

		res.Points = append(res.Points, ThroughputPoint{
			Offered: rate,
			DIFANE:  float64(dn.M.SetupsCompleted) / window,
			NOX:     float64(bn.M.SetupsCompleted) / window,
		})
	}
	return res
}

// Render prints the F2 series.
func (r *ThroughputResult) Render() string {
	var b strings.Builder
	b.WriteString(header("F2", "first-packet throughput vs offered load"))
	fmt.Fprintf(&b, "(modeled capacities: authority %.0f/s, controller %.0f/s)\n",
		r.DIFANERate, r.NOXRate)
	var tb metrics.Table
	tb.AddRow("offered/s", "difane/s", "nox/s")
	for _, p := range r.Points {
		tb.AddRowf(p.Offered, p.DIFANE, p.NOX)
	}
	b.WriteString(tb.String())
	return b.String()
}

// --- F3: throughput scaling with authority switches ---------------------------

// ScalingPoint is one k sample.
type ScalingPoint struct {
	Authorities int
	Setups      float64 // completed setups/s
}

// ScalingResult is the F3 sweep.
type ScalingResult struct{ Points []ScalingPoint }

// FigAuthorityScaling fixes an offered load well above one authority's
// capacity and adds authority switches; completed setups scale near
// linearly until the offered load is met, the paper's parallelism claim.
func FigAuthorityScaling(o Options) *ScalingResult {
	perAuthority := 50000.0
	const window = 1.0
	spec := workload.VPNNetwork(o.Seed, o.Scale)
	ks := []int{1, 2, 3, 4, 6, 8}
	if o.Scale < workload.ScaleBench {
		perAuthority = 4000
		ks = []int{1, 2, 4}
	}
	offered := 4 * perAuthority
	res := &ScalingResult{}
	flows := workload.UniformTraffic(spec, workload.TrafficConfig{
		Flows: int(offered * window), Rate: offered, Seed: o.Seed + 77,
	})
	for _, k := range ks {
		auths := core.PlaceAuthorities(spec.Graph, k)
		dn, err := core.NewNetwork(spec.Graph, auths, spec.Policy, core.NetworkConfig{
			Strategy:       core.StrategyExact, // every new flow is a setup
			AuthorityRate:  perAuthority,
			AuthorityQueue: 4096,
			Partition:      core.PartitionConfig{MaxRulesPerPartition: len(spec.Policy)/(2*k) + 1},
		})
		if err != nil {
			panic(err)
		}
		runTraceHorizon(dn.InjectPacket, dn.Run, flows, window)
		res.Points = append(res.Points, ScalingPoint{
			Authorities: k,
			Setups:      float64(dn.M.SetupsCompleted) / window,
		})
	}
	return res
}

// Render prints the F3 series.
func (r *ScalingResult) Render() string {
	var b strings.Builder
	b.WriteString(header("F3", "setup throughput vs # authority switches (offered 200k/s, 50k/s each)"))
	var tb metrics.Table
	tb.AddRow("authorities", "setups/s")
	for _, p := range r.Points {
		tb.AddRowf(p.Authorities, p.Setups)
	}
	b.WriteString(tb.String())
	return b.String()
}

// --- helpers -----------------------------------------------------------------

func scaleInt(o Options, n int) int {
	v := int(float64(n) * float64(o.Scale))
	if v < 100 {
		v = 100
	}
	return v
}

func runTrace(inject func(float64, uint32, flowspace.Key, int, uint64), run func(float64), flows []workload.Flow) {
	runTraceHorizon(inject, run, flows, 0)
}

func runTraceHorizon(inject func(float64, uint32, flowspace.Key, int, uint64), run func(float64), flows []workload.Flow, horizon float64) {
	last := 0.0
	for _, f := range flows {
		for p := 0; p < f.Packets; p++ {
			at := f.Start + float64(p)*f.Gap
			if horizon > 0 && at > horizon {
				break
			}
			inject(at, f.Ingress, f.Key, f.Size, uint64(p))
			if at > last {
				last = at
			}
		}
	}
	if horizon <= 0 {
		horizon = last + 10
	}
	run(horizon)
}
