package wire

import (
	"time"

	"difane/internal/proto"
	"difane/internal/telemetry"
)

// This file is the cluster's failure detector and failover machinery.
//
// Liveness has two signals. The primary one is the heartbeat: the
// controller probes every switch each Heartbeat.Interval and the switch
// echoes; a switch silent for MissThreshold intervals is marked dead. The
// secondary one is redirect acknowledgement: an authority whose control
// plane still echoes but whose data plane has stopped processing
// redirected packets (oldest unacknowledged redirect older than
// RedirectTimeout) is also marked dead — the failure the paper's ingress
// switches must survive without a controller round trip.
//
// Death triggers two independent recovery paths:
//   - ingress-local: the next redirect toward the dead authority re-points
//     the partition rule at the first live host on the partition's
//     failover list, purely in the data plane (failoverLocal in wire.go);
//   - controller-driven: promoteBackups withdraws the dead switch's
//     partition rules from every live switch so backups (pre-installed at
//     lower priority) take over cluster-wide.

// heartbeatLoop is the controller's prober: every interval it sends a
// heartbeat to each switch and re-evaluates each switch's liveness.
func (c *Cluster) heartbeatLoop() {
	defer c.wg.Done()
	ticker := time.NewTicker(c.cfg.Heartbeat.Interval)
	defer ticker.Stop()
	var seq uint64
	for {
		select {
		case <-c.ctx.Done():
			return
		case <-ticker.C:
		}
		if c.ctrlDown.Load() {
			// Simulated controller crash: no probes, no verdicts. The
			// switches ride the outage out on their own.
			continue
		}
		seq++
		now := time.Now()
		for _, n := range c.switches {
			if !n.killed.Load() {
				hb := &proto.Heartbeat{Node: n.id, Seq: seq}
				target := n
				// Asynchronous: a wedged control connection must not stall
				// probing of the other switches.
				go func() { _ = c.writeToSwitch(target, hb) }()
			}
			c.checkLiveness(n, now)
		}
	}
}

// checkLiveness updates one switch's alive verdict from both signals, and
// revives a switch whose heartbeats returned (after a holddown so a
// flapping switch doesn't bounce traffic back and forth).
func (c *Cluster) checkLiveness(n *node, now time.Time) {
	hb := c.cfg.Heartbeat
	silence := now.Sub(time.Unix(0, n.lastBeat.Load()))
	stale := silence > time.Duration(hb.MissThreshold)*hb.Interval
	suspect := false
	if t, ok := c.oldestPending(n.id); ok && now.Sub(t) > hb.RedirectTimeout {
		suspect = true
	}
	if n.alive.Load() {
		if stale || suspect {
			c.markDead(n)
		}
		return
	}
	holddown := now.Sub(time.Unix(0, n.deadAt.Load())) > 2*hb.RedirectTimeout
	if !n.killed.Load() && !stale && !suspect && holddown {
		c.markAlive(n)
	}
}

// markDead records a death verdict and kicks off backup promotion. When
// the death traces back to a stamped fault injection, the fault→verdict
// latency lands in the FailoverDetection distribution — the number the
// BFD-vs-heartbeat bench guard compares.
func (c *Cluster) markDead(n *node) {
	if !n.alive.CompareAndSwap(true, false) {
		return
	}
	now := time.Now()
	n.deadAt.Store(now.UnixNano())
	if at := n.faultAt.Swap(0); at != 0 {
		c.cold.recordDetection(now.Sub(time.Unix(0, at)).Seconds())
	}
	c.clearPending(n.id)
	c.cold.authorityDeaths.Add(1)
	c.journalAppend("death", map[string]any{"switch": n.id})
	if c.rec.Enabled() {
		c.rec.Publish(telemetry.Event{Kind: telemetry.EvDeath, Node: n.id})
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		c.promoteBackups(n.id)
	}()
}

// markAlive reinstates a recovered switch: besides flipping the verdict it
// restores the partition rules promoteBackups withdrew (and any that
// failoverLocal re-pointed), so a flapping authority degrades service only
// while it is actually down. Without the reinstall, a switch that was ever
// suspected — even spuriously — would serve no redirects again, and a
// partition whose replicas were each suspected once would black-hole its
// whole region permanently.
func (c *Cluster) markAlive(n *node) {
	if !n.alive.CompareAndSwap(false, true) {
		return
	}
	n.lastBeat.Store(time.Now().UnixNano())
	c.journalAppend("revive", map[string]any{"switch": n.id})
	if c.rec.Enabled() {
		c.rec.Publish(telemetry.Event{Kind: telemetry.EvRevive, Node: n.id})
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		c.restoreRules(n.id)
	}()
}

// restoreRules re-pushes the revived switch's partition rules to every
// live switch — the inverse of promoteBackups. OpAdd replaces in place, so
// rules failoverLocal re-pointed at another replica snap back too.
func (c *Cluster) restoreRules(revived uint32) {
	var mods []proto.FlowMod
	for _, r := range c.assign.PartitionRules(partitionRuleBase) {
		if r.Action.Arg != revived {
			continue
		}
		mods = append(mods, proto.FlowMod{Table: proto.TablePartition, Op: proto.OpAdd, Rule: r})
	}
	if len(mods) == 0 {
		return
	}
	for _, n := range c.switches {
		if n.killed.Load() {
			continue
		}
		for i := range mods {
			_ = c.installRule(n, &mods[i])
		}
	}
}

// promoteBackups is the controller-driven half of failover: it withdraws
// the dead switch's partition rules from every live switch, exposing the
// lower-priority backup rules that were pre-installed at build time.
func (c *Cluster) promoteBackups(dead uint32) {
	var mods []proto.FlowMod
	for i := range c.assign.Partitions {
		if c.assign.Primary[i] == dead {
			mods = append(mods, deleteRuleMod(partitionRuleBase+uint64(2*i)))
		}
		if c.assign.Backup[i] == dead {
			mods = append(mods, deleteRuleMod(partitionRuleBase+uint64(2*i)+1))
		}
	}
	if len(mods) == 0 {
		return
	}
	promoted := false
	for _, n := range c.switches {
		if n.id == dead || n.killed.Load() {
			continue
		}
		for i := range mods {
			if err := c.installRule(n, &mods[i]); err == nil {
				promoted = true
			}
		}
	}
	if promoted {
		c.cold.failoversPromoted.Add(uint64(len(mods)))
		if c.rec.Enabled() {
			c.rec.Publish(telemetry.Event{
				Kind: telemetry.EvPromote, Node: dead, Value: uint64(len(mods)),
			})
		}
	}
}

func deleteRuleMod(id uint64) proto.FlowMod {
	mod := proto.FlowMod{Table: proto.TablePartition, Op: proto.OpDelete}
	mod.Rule.ID = id
	return mod
}

// notePending records a redirect sent toward an authority, keeping only
// the oldest outstanding one per authority.
func (c *Cluster) notePending(auth uint32) {
	c.pendMu.Lock()
	if _, ok := c.pending[auth]; !ok {
		c.pending[auth] = time.Now()
	}
	c.pendMu.Unlock()
}

// clearPending acknowledges an authority's data-plane liveness.
func (c *Cluster) clearPending(auth uint32) {
	c.pendMu.Lock()
	delete(c.pending, auth)
	c.pendMu.Unlock()
}

// oldestPending returns the send time of the authority's oldest
// unacknowledged redirect.
func (c *Cluster) oldestPending(auth uint32) (time.Time, bool) {
	c.pendMu.Lock()
	t, ok := c.pending[auth]
	c.pendMu.Unlock()
	return t, ok
}
