package subscriber

import (
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"time"

	"difane/internal/core"
	"difane/internal/flowspace"
	"difane/internal/oracle"
	"difane/internal/telemetry"
	"difane/internal/wire"
	"difane/internal/workload"
)

// SoakConfig tunes a soak run on top of an Engine.
type SoakConfig struct {
	// Engine tunes the subscriber session model.
	Engine Config
	// Phases is the soak script (default: DefaultScript over 30 modeled
	// seconds).
	Phases []Phase
	// TickDt is the modeled step per engine tick in seconds (default
	// 0.05). Ticks run flat out — the soak is throughput-bound, not
	// wall-clock paced.
	TickDt float64
	// SampleEvery checks roughly one packet verdict per this many
	// generated packets against the oracle (default 4096; 0 disables
	// sampling). Full replay cannot scale to millions of sessions; the
	// sampler quiesces the deployment, re-injects the sampled packet as a
	// probe, and diffs its terminal verdict against oracle.Evaluate.
	SampleEvery int
	// SeriesInterval is the modeled time between telemetry series points
	// (default 1s).
	SeriesInterval float64
	// QuiesceTimeout bounds each probe's drain wait in real seconds
	// (default 10).
	QuiesceTimeout float64
	// WallBudget stops the soak early when the real-time budget is spent
	// (0 = run the script to completion). The phases completed so far
	// still gate; an exhausted budget is reported, not failed.
	WallBudget time.Duration
	// TraceSample, when >0, turns on the flight recorder with 1-in-N
	// per-packet trace sampling for the run, and the report gains journey
	// assembly stats (how many sampled packets told a complete end-to-end
	// story).
	TraceSample int
	// JourneyGate, when >0, fails the report if journey completeness —
	// complete journeys over journeys with a fair chance to complete —
	// lands below it (e.g. 0.99). Only meaningful with TraceSample.
	JourneyGate float64
	// Log, when set, receives per-phase progress lines as the script runs
	// (difane-soak points it at stdout).
	Log func(format string, args ...any)
}

func (c SoakConfig) withDefaults() SoakConfig {
	if len(c.Phases) == 0 {
		c.Phases = DefaultScript(30)
	}
	if c.TickDt <= 0 {
		c.TickDt = 0.05
	}
	if c.SampleEvery < 0 {
		c.SampleEvery = 0
	} else if c.SampleEvery == 0 {
		c.SampleEvery = 4096
	}
	if c.SeriesInterval <= 0 {
		c.SeriesInterval = 1
	}
	if c.QuiesceTimeout <= 0 {
		c.QuiesceTimeout = 10
	}
	return c
}

// totals is the terminal-outcome accounting vector (the same five-way
// split scencheck audits; redirect sheds fold into queue drops).
type totals struct {
	delivered, policyDrops, holes, queueDrops, shed, unreachable uint64
}

func measTotals(m *core.Measurements) totals {
	return totals{
		delivered:   m.Delivered,
		policyDrops: m.Drops.Policy,
		holes:       m.Drops.Hole,
		queueDrops:  m.Drops.AuthorityQueue,
		shed:        m.Drops.RedirectShed,
		unreachable: m.Drops.Unreachable,
	}
}

func (t totals) sum() uint64 {
	return t.delivered + t.policyDrops + t.holes + t.queueDrops + t.shed + t.unreachable
}

func (t totals) sub(o totals) totals {
	return totals{
		delivered:   t.delivered - o.delivered,
		policyDrops: t.policyDrops - o.policyDrops,
		holes:       t.holes - o.holes,
		queueDrops:  t.queueDrops - o.queueDrops,
		shed:        t.shed - o.shed,
		unreachable: t.unreachable - o.unreachable,
	}
}

// SeriesPoint is one telemetry sample: rates are over the wall-clock
// window since the previous point, gauges are scraped from the cluster's
// metric registry at the sample instant.
type SeriesPoint struct {
	// T is the modeled time; Wall the real seconds since the soak began.
	T    float64 `json:"t"`
	Wall float64 `json:"wall"`
	// Phase names the script phase the sample fell in.
	Phase string `json:"phase"`
	// PktsPerSec is the sustained injection rate over the window.
	PktsPerSec float64 `json:"pkts_per_sec"`
	// MissRate is redirected packets / injected packets over the window —
	// the ingress cache miss rate.
	MissRate float64 `json:"miss_rate"`
	// RedirectsPerSec is the authority redirect load over the window.
	RedirectsPerSec float64 `json:"redirects_per_sec"`
	// TCAMEntries sums difane_switch_cache_entries across switches — the
	// cluster-wide ingress TCAM occupancy.
	TCAMEntries float64 `json:"tcam_entries"`
	// Evictions is the cumulative cache eviction count.
	Evictions float64 `json:"evictions"`
	// ActiveSessions is the live session count.
	ActiveSessions int `json:"active_sessions"`
	// SessionsTotal is the cumulative session count.
	SessionsTotal uint64 `json:"sessions_total"`
}

// Divergence records one sampled packet whose observed verdict differed
// from the oracle's.
type Divergence struct {
	T       float64        `json:"t"`
	Phase   string         `json:"phase"`
	Ingress uint32         `json:"ingress"`
	Key     flowspace.Key  `json:"key"`
	Want    string         `json:"want"`
	Got     string         `json:"got"`
	Delta   map[string]int `json:"delta,omitempty"`
}

// PhaseSummary aggregates one script phase.
type PhaseSummary struct {
	Phase    string  `json:"phase"`
	Start    float64 `json:"start"`
	Duration float64 `json:"duration"`
	Packets  uint64  `json:"packets"`
	Sessions uint64  `json:"sessions"`
	Moves    uint64  `json:"moves"`
	Probes   uint64  `json:"probes"`
	MissRate float64 `json:"miss_rate"`
	// Health watchdog state when the phase closed.
	HealthFiring   int `json:"health_firing"`
	HealthCritical int `json:"health_critical"`
}

// Report is what a soak run produced.
type Report struct {
	Seed            int64          `json:"seed"`
	Subscribers     int            `json:"subscribers"`
	ModeledSeconds  float64        `json:"modeled_seconds"`
	WallSeconds     float64        `json:"wall_seconds"`
	Packets         uint64         `json:"packets"`
	PktsPerSec      float64        `json:"pkts_per_sec"`
	Sessions        uint64         `json:"sessions"`
	PeakActive      int            `json:"peak_active"`
	Moves           uint64         `json:"moves"`
	Suppressed      uint64         `json:"suppressed"`
	Probes          uint64         `json:"probes"`
	ProbesSkipped   uint64         `json:"probes_skipped"`
	Inconclusive    uint64         `json:"inconclusive"`
	Divergences     []Divergence   `json:"divergences,omitempty"`
	AccountingError string         `json:"accounting_error,omitempty"`
	BudgetExhausted bool           `json:"budget_exhausted,omitempty"`
	Phases          []PhaseSummary `json:"phases"`
	Series          []SeriesPoint  `json:"series"`
	// Forensics: journey assembly stats (present when TraceSample was set),
	// per-epoch convergence timelines, and the watchdog's end-of-run
	// verdicts.
	Journeys            *telemetry.JourneyStats   `json:"journeys,omitempty"`
	JourneyCompleteness float64                   `json:"journey_completeness,omitempty"`
	JourneyGateError    string                    `json:"journey_gate_error,omitempty"`
	Convergence         []telemetry.EpochTimeline `json:"convergence,omitempty"`
	Health              *telemetry.HealthSummary  `json:"health,omitempty"`
}

// Failed reports whether a gate broke: a sampled verdict diverged from
// the oracle, the end-of-run accounting identity (injected = delivered +
// drops) did not hold, journey completeness fell below JourneyGate, or a
// critical SLO rule was firing when the run ended.
func (r *Report) Failed() bool {
	return len(r.Divergences) > 0 || r.AccountingError != "" ||
		r.JourneyGateError != "" ||
		(r.Health != nil && r.Health.Critical > 0)
}

// Render prints the report as difane-style text tables.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "subscriber soak: seed %d, %d subscribers, %.1f modeled s in %.1f wall s\n",
		r.Seed, r.Subscribers, r.ModeledSeconds, r.WallSeconds)
	fmt.Fprintf(&b, "  %d sessions (%d peak active, %d moves), %d packets (%.0f pkts/s sustained)\n",
		r.Sessions, r.PeakActive, r.Moves, r.Packets, r.PktsPerSec)
	fmt.Fprintf(&b, "  %d verdict probes vs oracle: %d divergences, %d inconclusive, %d skipped\n",
		r.Probes, len(r.Divergences), r.Inconclusive, r.ProbesSkipped)
	if r.Journeys != nil {
		j := r.Journeys
		fmt.Fprintf(&b, "  %d traced journeys: %d complete, %d gapped, %d in flight, %d unexplained (%.1f%% completeness)\n",
			j.Total, j.Complete, j.Gapped, j.InFlight, j.Unexplained, 100*r.JourneyCompleteness)
	}
	if r.JourneyGateError != "" {
		fmt.Fprintf(&b, "  JOURNEY GATE: %s\n", r.JourneyGateError)
	}
	if r.Health != nil {
		fmt.Fprintf(&b, "  health: %d evals, %d rules firing (%d critical)\n",
			r.Health.Evals, r.Health.Firing, r.Health.Critical)
		for _, rule := range r.Health.Rules {
			if rule.Firing {
				fmt.Fprintf(&b, "    FIRING [%s] %s: %s\n", rule.Severity, rule.Name, rule.Detail)
			}
		}
	}
	for _, tl := range r.Convergence {
		state := "still converging"
		if tl.Converged {
			state = fmt.Sprintf("converged in %s", time.Duration(tl.DurationNS))
		}
		fmt.Fprintf(&b, "  epoch %d: %d installs, %d withdraws, %d rejects, %s (%d redirected, %d shed, %d dropped during)\n",
			tl.Epoch, tl.Installs, tl.Withdraws, tl.Rejects, state,
			tl.RedirectsDuring, tl.ShedDuring, tl.DroppedDuring)
	}
	if r.AccountingError != "" {
		fmt.Fprintf(&b, "  ACCOUNTING: %s\n", r.AccountingError)
	}
	if r.BudgetExhausted {
		fmt.Fprintf(&b, "  (wall budget exhausted before the script completed)\n")
	}
	fmt.Fprintf(&b, "\n  %-12s %8s %10s %10s %8s %8s\n",
		"phase", "start", "packets", "sessions", "probes", "miss%")
	for _, p := range r.Phases {
		fmt.Fprintf(&b, "  %-12s %8.1f %10d %10d %8d %7.2f%%\n",
			p.Phase, p.Start, p.Packets, p.Sessions, p.Probes, 100*p.MissRate)
	}
	fmt.Fprintf(&b, "\n  %-8s %-12s %10s %8s %10s %8s %8s\n",
		"t", "phase", "pkts/s", "miss%", "redir/s", "tcam", "active")
	for _, s := range r.Series {
		fmt.Fprintf(&b, "  %-8.1f %-12s %10.0f %7.2f%% %10.0f %8.0f %8d\n",
			s.T, s.Phase, s.PktsPerSec, 100*s.MissRate, s.RedirectsPerSec,
			s.TCAMEntries, s.ActiveSessions)
	}
	for _, d := range r.Divergences {
		fmt.Fprintf(&b, "  DIVERGENCE t=%.2f phase=%s ingress=%d key=%v want=%s got=%s\n",
			d.T, d.Phase, d.Ingress, d.Key, d.Want, d.Got)
	}
	return b.String()
}

// maxDivergences bounds how many divergences a runaway soak records.
const maxDivergences = 32

// soak is the live harness state; its atomics feed the difane_soak_*
// registry collectors.
type soak struct {
	cfg    SoakConfig
	d      *wire.Deployment
	e      *Engine
	policy []flowspace.Rule

	injected uint64 // packets we pushed (engine traffic + probes)
	start    time.Time

	// Registry-visible gauges (atomics; floats carried as Float64bits).
	phaseIdx    atomic.Int64
	active      atomic.Int64
	sessions    atomic.Uint64
	probes      atomic.Uint64
	divergences atomic.Uint64
	missRate    atomic.Uint64
	tcamEntries atomic.Uint64
	redirectPS  atomic.Uint64

	// lastRedirects is the redirect counter at the previous series sample.
	lastRedirects uint64
}

func storeFloat(a *atomic.Uint64, v float64) { a.Store(math.Float64bits(v)) }
func loadFloat(a *atomic.Uint64) float64     { return math.Float64frombits(a.Load()) }

// RegisterSoakMetrics adds the soak's difane_soak_* schema to a registry.
// RunSoak calls it on the deployment's own registry, so a live /metrics
// endpoint shows the soak's phase, miss rate, TCAM occupancy, and
// redirect load alongside the cluster's difane_* series. Names are a
// fixed schema — registering twice on one registry panics, exactly like
// the cluster's own metrics.
func (s *soak) registerMetrics(reg *telemetry.Registry) {
	gauge := func(name, help string, fn func() float64) {
		reg.RegisterFunc(name, help, telemetry.TypeGauge, fn)
	}
	counter := func(name, help string, fn func() float64) {
		reg.RegisterFunc(name, help, telemetry.TypeCounter, fn)
	}
	gauge("difane_soak_phase", "Index of the running soak script phase.",
		func() float64 { return float64(s.phaseIdx.Load()) })
	gauge("difane_soak_active_sessions", "Live subscriber sessions.",
		func() float64 { return float64(s.active.Load()) })
	counter("difane_soak_sessions_total", "Cumulative subscriber sessions modeled.",
		func() float64 { return float64(s.sessions.Load()) })
	counter("difane_soak_probes_total", "Sampled packet verdicts diffed against the oracle.",
		func() float64 { return float64(s.probes.Load()) })
	counter("difane_soak_divergences_total", "Sampled verdicts that disagreed with the oracle.",
		func() float64 { return float64(s.divergences.Load()) })
	gauge("difane_soak_miss_rate", "Ingress cache miss rate over the last series window.",
		func() float64 { return loadFloat(&s.missRate) })
	gauge("difane_soak_tcam_entries", "Cluster-wide cache TCAM occupancy at the last sample.",
		func() float64 { return loadFloat(&s.tcamEntries) })
	gauge("difane_soak_redirects_per_sec", "Authority redirect load over the last series window.",
		func() float64 { return loadFloat(&s.redirectPS) })
}

// sumMetric totals a (possibly per-switch labeled) metric's points in one
// registry snapshot.
func sumMetric(snap []telemetry.MetricSnapshot, name string) float64 {
	for i := range snap {
		if snap[i].Name != name {
			continue
		}
		total := 0.0
		for _, p := range snap[i].Points {
			total += p.Value
		}
		return total
	}
	return 0
}

// RunSoak streams the configured subscriber workload through a live wire
// deployment, sampling ~1-in-SampleEvery packet verdicts against the
// oracle and recording miss-rate / TCAM-occupancy / redirect-load time
// series through the telemetry registry. The deployment must route the
// spec's edge switches; the caller closes it.
func RunSoak(d *wire.Deployment, spec *workload.Spec, cfg SoakConfig) (*Report, error) {
	cfg = cfg.withDefaults()
	if len(spec.Policy) == 0 || len(spec.Edges) == 0 {
		return nil, fmt.Errorf("subscriber: spec needs a policy and edge switches")
	}
	s := &soak{
		cfg:    cfg,
		d:      d,
		e:      NewEngine(spec, cfg.Engine, cfg.Phases),
		policy: spec.Policy,
		start:  time.Now(),
	}
	s.registerMetrics(d.C.Registry())
	if cfg.TraceSample > 0 {
		d.C.SetTraceSample(cfg.TraceSample)
		d.C.SetTracing(true)
	}
	return s.run()
}

// logPhase emits one per-phase progress line through cfg.Log, folding in
// the watchdog's live verdict and the most recent convergence timeline.
func (s *soak) logPhase(ps PhaseSummary) {
	if s.cfg.Log == nil {
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, "phase %-12s %d packets, %d sessions, %d probes, miss %.2f%%",
		ps.Phase, ps.Packets, ps.Sessions, ps.Probes, 100*ps.MissRate)
	if ps.HealthFiring > 0 {
		fmt.Fprintf(&b, ", health: %d firing (%d critical)", ps.HealthFiring, ps.HealthCritical)
	} else {
		b.WriteString(", health: ok")
	}
	if conv := s.d.C.Convergence(); conv != nil {
		if tl, ok := conv.Last(); ok {
			if tl.Converged {
				fmt.Fprintf(&b, ", epoch %d converged in %s", tl.Epoch, time.Duration(tl.DurationNS))
			} else {
				fmt.Fprintf(&b, ", epoch %d converging", tl.Epoch)
			}
		}
	}
	s.cfg.Log("%s", b.String())
}

func (s *soak) run() (*Report, error) {
	cfg := s.cfg
	rep := &Report{
		Seed:        cfg.Engine.withDefaults().Seed,
		Subscribers: cfg.Engine.withDefaults().Subscribers,
	}
	var (
		nextProbe   = uint64(cfg.SampleEvery)
		nextSeries  = cfg.SeriesInterval
		lastWall    = 0.0
		lastPkts    = uint64(0)
		curPhase    = -1
		phasePkts0  uint64
		phaseSess0  uint64
		phaseMoves0 uint64
		phaseProbe0 uint64
		phaseRedir0 uint64
		phaseInj0   uint64
	)
	closePhase := func(now float64) {
		if curPhase < 0 || curPhase >= len(cfg.Phases) {
			return
		}
		m := s.d.Measurements()
		ps := PhaseSummary{
			Phase:    cfg.Phases[curPhase].Name,
			Start:    math.Max(0, now-cfg.Phases[curPhase].Duration),
			Duration: cfg.Phases[curPhase].Duration,
			Packets:  s.e.TotalPackets() - phasePkts0,
			Sessions: s.e.TotalSessions() - phaseSess0,
			Moves:    s.e.TotalMoves() - phaseMoves0,
			Probes:   s.probes.Load() - phaseProbe0,
		}
		if inj := s.injected - phaseInj0; inj > 0 {
			ps.MissRate = float64(m.Redirects-phaseRedir0) / float64(inj)
		}
		if wd := s.d.C.Watchdog(); wd != nil {
			sum := wd.Summary()
			ps.HealthFiring, ps.HealthCritical = sum.Firing, sum.Critical
		}
		rep.Phases = append(rep.Phases, ps)
		s.logPhase(ps)
	}
	openPhase := func(idx int) {
		curPhase = idx
		m := s.d.Measurements()
		phasePkts0 = s.e.TotalPackets()
		phaseSess0 = s.e.TotalSessions()
		phaseMoves0 = s.e.TotalMoves()
		phaseProbe0 = s.probes.Load()
		phaseRedir0 = m.Redirects
		phaseInj0 = s.injected
		s.phaseIdx.Store(int64(idx))
	}
	openPhase(0)

	for !s.e.Done() {
		if cfg.WallBudget > 0 && time.Since(s.start) > cfg.WallBudget {
			rep.BudgetExhausted = true
			break
		}
		tick := s.e.Advance(cfg.TickDt)
		if tick.PhaseChanged {
			closePhase(tick.Now - cfg.TickDt)
			if tick.Done {
				curPhase = -1
			} else {
				openPhase(tick.PhaseIndex)
			}
		}
		if tick.Done {
			break
		}
		s.active.Store(int64(tick.Active))
		s.sessions.Store(s.e.TotalSessions())
		if rep.PeakActive < tick.Active {
			rep.PeakActive = tick.Active
		}

		if len(tick.Batch) > 0 {
			s.d.InjectBatch(tick.Batch)
			s.injected += uint64(len(tick.Batch))
		}

		// Verdict sampling: once the packet counter crosses the next probe
		// mark, re-inject one of this tick's packets against a quiesced
		// deployment and diff its terminal verdict against the oracle.
		if cfg.SampleEvery > 0 && s.e.TotalPackets() >= nextProbe && len(tick.Batch) > 0 {
			pick := tick.Batch[int(nextProbe%uint64(len(tick.Batch)))]
			s.probe(pick, tick, rep)
			nextProbe += uint64(cfg.SampleEvery)
			if len(rep.Divergences) >= maxDivergences {
				break
			}
		}

		// Telemetry series: scrape the registry and fold the window's
		// deltas into one point.
		if tick.Now >= nextSeries {
			wall := time.Since(s.start).Seconds()
			m := s.d.Measurements()
			snap := s.d.C.Registry().Snapshot()
			dwall := wall - lastWall
			dpkts := s.injected - lastPkts
			pt := SeriesPoint{
				T: tick.Now, Wall: wall, Phase: tick.Phase,
				TCAMEntries:    sumMetric(snap, "difane_switch_cache_entries"),
				Evictions:      sumMetric(snap, "difane_switch_cache_evictions_total"),
				ActiveSessions: tick.Active,
				SessionsTotal:  s.e.TotalSessions(),
			}
			redirDelta := m.Redirects - s.lastRedirects
			if dwall > 0 {
				pt.PktsPerSec = float64(dpkts) / dwall
				pt.RedirectsPerSec = float64(redirDelta) / dwall
			}
			if dpkts > 0 {
				pt.MissRate = float64(redirDelta) / float64(dpkts)
			}
			rep.Series = append(rep.Series, pt)
			storeFloat(&s.missRate, pt.MissRate)
			storeFloat(&s.tcamEntries, pt.TCAMEntries)
			storeFloat(&s.redirectPS, pt.RedirectsPerSec)
			lastWall, lastPkts = wall, s.injected
			s.lastRedirects = m.Redirects
			nextSeries += cfg.SeriesInterval
		}
	}
	if !rep.BudgetExhausted && len(rep.Divergences) < maxDivergences {
		closePhase(s.e.Now())
		curPhase = -1
	}

	// Drain everything still in flight, then audit the accounting
	// identity: every packet we injected must have reached exactly one
	// terminal counter.
	s.d.Run(cfg.QuiesceTimeout)
	final := measTotals(s.d.Measurements())
	if final.sum() != s.injected {
		rep.AccountingError = fmt.Sprintf(
			"identity: injected %d but accounted %d (delivered=%d policy=%d hole=%d queue=%d shed=%d unreachable=%d)",
			s.injected, final.sum(), final.delivered, final.policyDrops,
			final.holes, final.queueDrops, final.shed, final.unreachable)
	}

	// Forensics: fold the run's journeys, convergence timelines, and
	// watchdog verdicts into the report. The watchdog's own loop owns its
	// clock base, so we only read its summary — never EvalOnce from here.
	if s.d.C.TraceSampleRate() > 0 {
		_, js := s.d.C.Journeys(telemetry.JourneyFilter{})
		rep.Journeys = &js
		rep.JourneyCompleteness = js.Completeness()
		if cfg.JourneyGate > 0 && rep.JourneyCompleteness < cfg.JourneyGate {
			rep.JourneyGateError = fmt.Sprintf(
				"completeness %.2f%% below the %.2f%% gate (%d/%d complete, %d gapped, %d in flight)",
				100*rep.JourneyCompleteness, 100*cfg.JourneyGate,
				js.Complete, js.Total, js.Gapped, js.InFlight)
		}
	}
	if conv := s.d.C.Convergence(); conv != nil {
		if tl := conv.Timelines(); len(tl) > 0 {
			rep.Convergence = tl
		}
	}
	if wd := s.d.C.Watchdog(); wd != nil {
		sum := wd.Summary()
		rep.Health = &sum
	}

	rep.ModeledSeconds = s.e.Now()
	rep.WallSeconds = time.Since(s.start).Seconds()
	rep.Packets = s.e.TotalPackets()
	rep.Sessions = s.e.TotalSessions()
	rep.Moves = s.e.TotalMoves()
	rep.Suppressed = s.e.TotalSuppressed()
	rep.Probes = s.probes.Load()
	if rep.WallSeconds > 0 {
		rep.PktsPerSec = float64(s.injected) / rep.WallSeconds
	}
	return rep, nil
}

// probe quiesces the deployment, re-injects one sampled packet, and
// compares its terminal verdict with the oracle's. Quiescence is proven
// by the accounting identity (everything injected so far terminal);
// when the drain times out under a backlog the probe is skipped rather
// than risk attributing a straggler's counter to the probe.
func (s *soak) probe(p core.PacketIn, tick Tick, rep *Report) {
	s.d.Run(s.cfg.QuiesceTimeout)
	before := measTotals(s.d.Measurements())
	if before.sum() != s.injected {
		rep.ProbesSkipped++
		return
	}
	// Stale delivery notifications would masquerade as the probe's.
	for {
		select {
		case <-s.d.C.Deliveries:
			continue
		default:
		}
		break
	}
	s.d.InjectPacket(0, p.Ingress, p.Key, p.Size, 0)
	s.injected++
	s.d.Run(s.cfg.QuiesceTimeout)
	delta := measTotals(s.d.Measurements()).sub(before)
	s.probes.Add(1)

	want := oracle.Evaluate(s.policy, p.Key)
	got, ok := classify(delta)
	if !ok {
		// The counters did not move exactly once — the probe raced a
		// straggler or timed out mid-flight. Record it as inconclusive.
		rep.Inconclusive++
		return
	}
	if got == "queue-drop" || got == "shed" {
		// Load-shedding verdicts are a capacity statement, not a policy
		// one; the oracle has no opinion. Never expected on a quiesced
		// probe, so surface them as inconclusive for the report.
		rep.Inconclusive++
		return
	}
	msg := s.verdictMismatch(want, got, delta)
	if msg == "" {
		return
	}
	s.divergences.Add(1)
	rep.Divergences = append(rep.Divergences, Divergence{
		T: tick.Now, Phase: tick.Phase, Ingress: p.Ingress, Key: p.Key,
		Want: want.String(), Got: msg,
		Delta: map[string]int{
			"delivered": int(delta.delivered), "policy": int(delta.policyDrops),
			"hole": int(delta.holes), "queue": int(delta.queueDrops),
			"shed": int(delta.shed), "unreachable": int(delta.unreachable),
		},
	})
}

// classify names the single terminal counter a probe moved.
func classify(d totals) (string, bool) {
	if d.sum() != 1 {
		return "", false
	}
	switch {
	case d.delivered == 1:
		return "delivered", true
	case d.policyDrops == 1:
		return "policy-drop", true
	case d.holes == 1:
		return "hole", true
	case d.queueDrops == 1:
		return "queue-drop", true
	case d.shed == 1:
		return "shed", true
	default:
		return "unreachable", true
	}
}

// verdictMismatch compares the oracle's expectation against the observed
// terminal class (plus the delivery's egress), returning "" on agreement.
func (s *soak) verdictMismatch(want oracle.Verdict, got string, delta totals) string {
	switch want.Kind {
	case oracle.Deliver:
		if got != "delivered" {
			return fmt.Sprintf("%s (want delivery to %d)", got, want.Egress)
		}
		select {
		case del := <-s.d.C.Deliveries:
			if del.Egress != want.Egress {
				return fmt.Sprintf("delivered to %d (want %d)", del.Egress, want.Egress)
			}
		case <-time.After(2 * time.Second):
			// Notification shed under channel pressure; the counter already
			// proved delivery, so the verdict stands without the egress
			// check.
		}
	case oracle.Drop:
		if got != "policy-drop" {
			return fmt.Sprintf("%s (want policy drop)", got)
		}
	case oracle.Hole:
		// A hole may surface as a hole drop or — when no partition rule
		// covers the region — as unreachable; both mean "the policy said
		// nothing".
		if got != "hole" && got != "unreachable" {
			return fmt.Sprintf("%s (want hole)", got)
		}
	}
	return ""
}
