package proto

import (
	"bytes"
	"errors"
	"math/rand"
	"net"
	"reflect"
	"testing"

	"difane/internal/flowspace"
)

func sampleRule(id uint64) flowspace.Rule {
	return flowspace.Rule{
		ID:       id,
		Priority: 42,
		Match: flowspace.MatchAll().
			WithPrefix(flowspace.FIPSrc, 0x0A000000, 8).
			WithExact(flowspace.FTPDst, 80),
		Action: flowspace.Action{Kind: flowspace.ActForward, Arg: 9},
	}
}

func allMessages() []Message {
	return []Message{
		&Hello{Node: 7, Role: RoleAuthority},
		&FlowMod{Table: TableCache, Op: OpAdd, Rule: sampleRule(1), Idle: 10, Hard: 60},
		&FlowMod{Table: TablePartition, Op: OpDelete, Rule: sampleRule(2)},
		&PacketIn{Node: 3, Data: []byte{1, 2, 3}, Size: 1500},
		&PacketOut{Node: 4, Data: []byte{9, 8}, Size: 64},
		&CacheInstall{Ingress: 5, Rules: []FlowMod{
			{Table: TableCache, Op: OpAdd, Rule: sampleRule(3), Idle: 5},
			{Table: TableCache, Op: OpAdd, Rule: sampleRule(4), Hard: 30},
		}},
		&CacheInstall{Ingress: 6}, // empty rule list
		&BarrierReq{XID: 11},
		&BarrierReply{XID: 11},
		&StatsReq{XID: 12, RuleID: 99},
		&StatsReply{XID: 12, Packets: 1000, Bytes: 123456, OK: true},
		&StatsReply{XID: 13, OK: false},
		&Error{Code: 2, Text: "no such table"},
		&Error{Code: 0, Text: ""},
		&Heartbeat{Node: 8, Seq: 42},
		&Heartbeat{},
		&FlowMod{Table: TableAuthority, Op: OpAdd, Rule: sampleRule(5), Epoch: 3},
		&EpochReport{Node: 2, Epoch: 7},
		&EpochReport{},
		&BFDControl{
			Node: 3, State: 3, Flags: BFDPoll | BFDDemand,
			MyDiscr: 0x1001, YourDiscr: 0x2002,
			DesiredMinTx: 2_000_000, RequiredMinRx: 2_000_000, DetectMult: 3,
		},
		&BFDControl{Node: 1, State: 1, Flags: BFDFinal},
		&BFDControl{},
	}
}

func TestDecodeFrameMultiple(t *testing.T) {
	var buf []byte
	msgs := allMessages()
	for _, m := range msgs {
		buf = Encode(buf, m)
	}
	for i := 0; len(buf) > 0; i++ {
		m, n, err := DecodeFrame(buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(m, msgs[i]) {
			t.Fatalf("frame %d:\n got %+v\nwant %+v", i, m, msgs[i])
		}
		buf = buf[n:]
	}
}

func TestDecodeFrameTruncated(t *testing.T) {
	full := Encode(nil, &FlowMod{Table: TableCache, Op: OpAdd, Rule: sampleRule(1), Epoch: 2})
	for cut := 0; cut < len(full); cut++ {
		if _, n, err := DecodeFrame(full[:cut]); err == nil || n != 0 {
			t.Fatalf("cut=%d: accepted truncated frame (n=%d err=%v)", cut, n, err)
		}
	}
}

func TestCacheInstallForgedCountRejected(t *testing.T) {
	payload := appendU32(nil, 7)         // ingress
	payload = appendU32(payload, 100000) // count with no rule bytes behind it
	var m CacheInstall
	if err := m.decodePayload(payload); err == nil {
		t.Fatal("forged rule count must not decode")
	}
}

func TestRoundTripAllMessages(t *testing.T) {
	for _, m := range allMessages() {
		buf := Encode(nil, m)
		got, err := ReadMessage(bytes.NewReader(buf))
		if err != nil {
			t.Fatalf("%T: %v", m, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("%T round trip:\n got %+v\nwant %+v", m, got, m)
		}
	}
}

func TestStreamOfMessages(t *testing.T) {
	var buf bytes.Buffer
	msgs := allMessages()
	for _, m := range msgs {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if got.Type() != want.Type() {
			t.Fatalf("message %d type %v want %v", i, got.Type(), want.Type())
		}
	}
	if _, err := ReadMessage(&buf); err == nil {
		t.Fatal("reading past the stream end must fail")
	}
}

func TestRuleEncodingPreservesWildcards(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for i := 0; i < 300; i++ {
		r := flowspace.Rule{
			ID:       rng.Uint64(),
			Priority: int32(rng.Int31()),
			Action: flowspace.Action{
				Kind: flowspace.ActionKind(rng.Intn(5)),
				Arg:  rng.Uint32(),
			},
		}
		// Constrain a random subset of fields.
		for f := flowspace.FieldID(0); f < flowspace.NumFields; f++ {
			if rng.Intn(3) == 0 {
				r.Match = r.Match.WithPrefix(f, rng.Uint64(), uint(rng.Intn(int(f.Width())+1)))
			}
		}
		m := &FlowMod{Table: TableAuthority, Op: OpAdd, Rule: r}
		buf := Encode(nil, m)
		got, err := ReadMessage(bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.(*FlowMod).Rule, r) {
			t.Fatalf("rule round trip:\n got %+v\nwant %+v", got.(*FlowMod).Rule, r)
		}
	}
}

func TestTruncatedFrames(t *testing.T) {
	buf := Encode(nil, &FlowMod{Table: TableCache, Op: OpAdd, Rule: sampleRule(1)})
	for cut := 1; cut < len(buf); cut++ {
		if _, err := ReadMessage(bytes.NewReader(buf[:cut])); err == nil {
			t.Fatalf("truncated frame %d/%d must fail", cut, len(buf))
		}
	}
}

func TestCorruptLengthRejected(t *testing.T) {
	buf := Encode(nil, &BarrierReq{XID: 1})
	buf[0] = 0xFF // absurd length
	if _, err := ReadMessage(bytes.NewReader(buf)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
	zero := []byte{0, 0, 0, 0, 0}
	if _, err := ReadMessage(bytes.NewReader(zero)); err == nil {
		t.Fatal("zero-length frame must fail")
	}
}

func TestUnknownTypeRejected(t *testing.T) {
	buf := Encode(nil, &BarrierReq{XID: 1})
	buf[4] = 200 // type byte
	if _, err := ReadMessage(bytes.NewReader(buf)); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("err = %v, want ErrUnknownType", err)
	}
}

func TestTruncatedPayloadRejected(t *testing.T) {
	// A CacheInstall claiming more rules than the payload holds.
	m := &CacheInstall{Ingress: 1, Rules: []FlowMod{{Table: TableCache, Op: OpAdd, Rule: sampleRule(1)}}}
	buf := Encode(nil, m)
	// Bump the rule count field (4 bytes length + 1 type + 4 ingress +
	// 8 trace).
	buf[17+3]++
	if _, err := ReadMessage(bytes.NewReader(buf)); err == nil {
		t.Fatal("payload with overstated rule count must fail")
	}
}

func TestOverPipe(t *testing.T) {
	// Full framing across a real net.Pipe, as wire mode uses it.
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	done := make(chan error, 1)
	go func() {
		for _, m := range allMessages() {
			if err := WriteMessage(a, m); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for range allMessages() {
		if _, err := ReadMessage(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestMsgTypeString(t *testing.T) {
	if MsgFlowMod.String() != "flow-mod" {
		t.Fatalf("got %q", MsgFlowMod.String())
	}
	if MsgType(99).String() == "" {
		t.Fatal("unknown type must render")
	}
}
