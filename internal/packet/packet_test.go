package packet

import (
	"math/rand"
	"testing"
	"testing/quick"

	"difane/internal/flowspace"
)

func samplePacket() *Packet {
	return &Packet{
		Header: Header{
			InPort:  3,
			EthSrc:  0x001122334455,
			EthDst:  0xAABBCCDDEEFF,
			EthType: EthTypeIPv4,
			VLAN:    100,
			IPProto: ProtoTCP,
			IPSrc:   IP4(10, 0, 0, 1),
			IPDst:   IP4(192, 168, 1, 2),
			TPSrc:   43210,
			TPDst:   80,
		},
		Size:   1500,
		FlowID: 7,
	}
}

func TestWireRoundTrip(t *testing.T) {
	p := samplePacket()
	buf := p.AppendWire(nil)
	if len(buf) > MaxWireLen {
		t.Fatalf("encoded length %d exceeds MaxWireLen %d", len(buf), MaxWireLen)
	}
	var q Packet
	n, err := q.DecodeWire(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d bytes", n, len(buf))
	}
	if q.Header != p.Header {
		t.Fatalf("header mismatch:\n got %+v\nwant %+v", q.Header, p.Header)
	}
	if q.Encap != nil {
		t.Fatal("decoded packet must have no encap")
	}
}

func TestWireRoundTripWithEncap(t *testing.T) {
	p := samplePacket()
	p.Encapsulate(EncapRedirect, 42, 99)
	buf := p.AppendWire(nil)
	var q Packet
	if _, err := q.DecodeWire(buf); err != nil {
		t.Fatal(err)
	}
	if q.Encap == nil || *q.Encap != (Encap{Reason: EncapRedirect, Ingress: 42, Target: 99}) {
		t.Fatalf("encap mismatch: %+v", q.Encap)
	}
	if q.Header != p.Header {
		t.Fatal("header must survive encapsulated round trip")
	}
}

func TestWireRoundTripNoVLAN(t *testing.T) {
	p := samplePacket()
	p.Header.VLAN = 0
	buf := p.AppendWire(nil)
	var q Packet
	if _, err := q.DecodeWire(buf); err != nil {
		t.Fatal(err)
	}
	if q.Header != p.Header {
		t.Fatal("header mismatch without VLAN tag")
	}
}

func TestWireRoundTripProperty(t *testing.T) {
	check := func(inPort uint16, src, dst uint64, etype uint16, vlan uint16,
		proto uint8, ipSrc, ipDst uint32, sport, dport uint16, encap bool) bool {
		p := Packet{Header: Header{
			InPort: inPort, EthSrc: src & 0xFFFFFFFFFFFF, EthDst: dst & 0xFFFFFFFFFFFF,
			EthType: etype, VLAN: vlan & 0xFFF, IPProto: proto,
			IPSrc: ipSrc, IPDst: ipDst, TPSrc: sport, TPDst: dport,
		}}
		if encap {
			p.Encapsulate(EncapTunnel, 1, 2)
		}
		buf := p.AppendWire(nil)
		var q Packet
		n, err := q.DecodeWire(buf)
		if err != nil || n != len(buf) {
			return false
		}
		if q.Header != p.Header {
			return false
		}
		if encap != (q.Encap != nil) {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	p := samplePacket()
	p.Encapsulate(EncapRedirect, 1, 2)
	buf := p.AppendWire(nil)
	for cut := 0; cut < len(buf); cut++ {
		var q Packet
		if _, err := q.DecodeWire(buf[:cut]); err == nil {
			t.Fatalf("decode of %d/%d bytes must fail", cut, len(buf))
		}
	}
}

func TestDecodeReusesStruct(t *testing.T) {
	// DecodeWire must fully overwrite stale state, including clearing a
	// previous encap and VLAN.
	p1 := samplePacket()
	p1.Encapsulate(EncapRedirect, 1, 2)
	p2 := samplePacket()
	p2.Header.VLAN = 0

	var q Packet
	if _, err := q.DecodeWire(p1.AppendWire(nil)); err != nil {
		t.Fatal(err)
	}
	if _, err := q.DecodeWire(p2.AppendWire(nil)); err != nil {
		t.Fatal(err)
	}
	if q.Encap != nil {
		t.Fatal("stale encap must be cleared")
	}
	if q.Header.VLAN != 0 {
		t.Fatal("stale VLAN must be cleared")
	}
}

func TestKeyProjectionRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for i := 0; i < 500; i++ {
		h := Header{
			InPort:  uint16(rng.Uint32()),
			EthSrc:  rng.Uint64() & 0xFFFFFFFFFFFF,
			EthDst:  rng.Uint64() & 0xFFFFFFFFFFFF,
			EthType: uint16(rng.Uint32()),
			VLAN:    uint16(rng.Uint32()) & 0xFFF,
			IPProto: uint8(rng.Uint32()),
			IPSrc:   rng.Uint32(),
			IPDst:   rng.Uint32(),
			TPSrc:   uint16(rng.Uint32()),
			TPDst:   uint16(rng.Uint32()),
		}
		if got := HeaderFromKey(h.Key()); got != h {
			t.Fatalf("key projection not invertible:\n got %+v\nwant %+v", got, h)
		}
	}
}

func TestKeyMatchesRules(t *testing.T) {
	h := samplePacket().Header
	m := flowspace.MatchAll().
		WithPrefix(flowspace.FIPSrc, uint64(IP4(10, 0, 0, 0)), 8).
		WithExact(flowspace.FTPDst, 80)
	if !m.Matches(h.Key()) {
		t.Fatal("rule must match the sample packet")
	}
	m2 := m.WithExact(flowspace.FIPProto, ProtoUDP)
	if m2.Matches(h.Key()) {
		t.Fatal("UDP rule must not match a TCP packet")
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := samplePacket()
	p.Encapsulate(EncapTunnel, 5, 6)
	q := p.Clone()
	q.Encap.Target = 77
	q.Header.TPDst = 22
	if p.Encap.Target != 6 || p.Header.TPDst != 80 {
		t.Fatal("clone must not alias the original")
	}
}

func TestDecapsulate(t *testing.T) {
	p := samplePacket()
	p.Encapsulate(EncapRedirect, 1, 2)
	e := p.Decapsulate()
	if e == nil || e.Ingress != 1 || p.Encap != nil {
		t.Fatal("decapsulate must strip and return the encap header")
	}
	if p.Decapsulate() != nil {
		t.Fatal("second decapsulate must return nil")
	}
}

func TestStringHelpers(t *testing.T) {
	if IPString(IP4(10, 1, 2, 3)) != "10.1.2.3" {
		t.Fatalf("IPString = %q", IPString(IP4(10, 1, 2, 3)))
	}
	if samplePacket().Header.String() == "" {
		t.Fatal("header must render")
	}
	if EncapRedirect.String() != "redirect" || EncapTunnel.String() != "tunnel" {
		t.Fatal("encap reasons must render")
	}
	if EncapReason(9).String() == "" {
		t.Fatal("unknown encap reason must render")
	}
}
