package core

import (
	"testing"

	"difane/internal/flowspace"
	"difane/internal/topo"
)

func TestHopByHopDelaysMatchDistanceMode(t *testing.T) {
	run := func(hbh bool) *Network {
		g := topo.Linear(5, 0.001)
		policy := []flowspace.Rule{{
			ID: 1, Priority: 1, Match: flowspace.MatchAll(),
			Action: flowspace.Action{Kind: flowspace.ActForward, Arg: 4},
		}}
		n, err := NewNetwork(g, []uint32{2}, policy, NetworkConfig{HopByHop: hbh})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			n.InjectPacket(float64(i)*0.1, 0, flowKey(uint32(i), 80), 100, 0)
		}
		n.Run(10)
		return n
	}
	a, b := run(false), run(true)
	if a.M.Delivered != b.M.Delivered {
		t.Fatalf("delivered differ: %d vs %d", a.M.Delivered, b.M.Delivered)
	}
	if a.M.FirstPacketDelay.Mean() != b.M.FirstPacketDelay.Mean() {
		t.Fatalf("delays differ: %v vs %v",
			a.M.FirstPacketDelay.Mean(), b.M.FirstPacketDelay.Mean())
	}
}

func TestLinkLoadsCountTraversals(t *testing.T) {
	g := topo.Linear(4, 0.001) // 0-1-2-3
	policy := []flowspace.Rule{{
		ID: 1, Priority: 1, Match: flowspace.MatchAll(),
		Action: flowspace.Action{Kind: flowspace.ActForward, Arg: 3},
	}}
	n, err := NewNetwork(g, []uint32{1}, policy, NetworkConfig{
		HopByHop: true,
		Strategy: StrategyExact,
	})
	if err != nil {
		t.Fatal(err)
	}
	// One flow from 0: ingress 0 → authority 1 → egress 3.
	n.InjectPacket(0, 0, flowKey(1, 80), 100, 0)
	n.Run(1)
	if got := n.LinkLoads[LinkKey{0, 1}]; got != 1 {
		t.Fatalf("link 0→1 load = %d, want 1 (redirect leg)", got)
	}
	if got := n.LinkLoads[LinkKey{1, 2}]; got != 1 {
		t.Fatalf("link 1→2 load = %d, want 1 (tunnel leg)", got)
	}
	if got := n.LinkLoads[LinkKey{2, 3}]; got != 1 {
		t.Fatalf("link 2→3 load = %d, want 1 (tunnel leg)", got)
	}
	if got := n.LinkLoads[LinkKey{1, 0}]; got != 0 {
		t.Fatalf("reverse link must be unloaded, got %d", got)
	}
	// Second packet of the same flow: cache hit → direct 0→3, three links.
	n.InjectPacket(2, 0, flowKey(1, 80), 100, 1)
	n.Run(4)
	if got := n.LinkLoads[LinkKey{0, 1}]; got != 2 {
		t.Fatalf("link 0→1 after direct packet = %d, want 2", got)
	}
	if total := n.LinkLoads.Total(); total != 6 {
		t.Fatalf("total traversals = %d, want 6", total)
	}
}

func TestLinkLoadsStats(t *testing.T) {
	l := LinkLoads{}
	if l.Concentration() != 0 || l.Max() != 0 {
		t.Fatal("empty loads must report zeros")
	}
	l[LinkKey{0, 1}] = 9
	l[LinkKey{1, 2}] = 3
	if l.Max() != 9 || l.Total() != 12 {
		t.Fatalf("max=%d total=%d", l.Max(), l.Total())
	}
	// mean = 6, concentration = 1.5
	if c := l.Concentration(); c != 1.5 {
		t.Fatalf("concentration = %v", c)
	}
	hot := l.Hottest(1)
	if len(hot) != 1 || hot[0] != (LinkKey{0, 1}) {
		t.Fatalf("hottest = %v", hot)
	}
	if len(l.Hottest(10)) != 2 {
		t.Fatal("Hottest must clamp to available links")
	}
}

func TestLinkLoadsOffByDefault(t *testing.T) {
	n := testNet(t, NetworkConfig{})
	n.InjectPacket(0, 0, flowKey(1, 80), 100, 0)
	n.Run(1)
	if len(n.LinkLoads) != 0 {
		t.Fatal("link loads must stay empty without HopByHop")
	}
}
