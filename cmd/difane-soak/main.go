// Command difane-soak runs the subscriber-scale soak: a BNG-style
// session engine (Zipf popularity, Poisson churn, host mobility, diurnal
// swings, flash crowds, cache-thrashing scans) streamed through a live
// wire deployment while a sampling checker diffs ~1-in-N packet verdicts
// against the oracle and the telemetry registry reports cache miss rate,
// TCAM occupancy, and redirect load as time series per phase.
//
// Usage:
//
//	difane-soak [-subscribers N] [-rate R] [-duration SEC] [-sample N]
//	            [-smoke] [-wall-budget DUR] [-out FILE] [-seed N]
//	            [-trace-sample N] [-journey-gate FRAC]
//
// The default script is steady → churn-spike → flash-crowd → scan →
// steady over -duration modeled seconds; -smoke swaps in the CI-sized
// script (steady, churn, flash crowd, settle). Exit status is nonzero
// when any sampled verdict diverged from the oracle or the end-of-run
// accounting identity broke; -out always receives the JSON report so CI
// can upload it as a failure artifact.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"difane/internal/subscriber"
	"difane/internal/wire"
)

func main() {
	subscribers := flag.Int("subscribers", 1<<21, "modeled subscriber population")
	rate := flag.Float64("rate", 25000, "session arrival rate per modeled second")
	life := flag.Float64("life", 2, "mean session lifetime in modeled seconds")
	pktRate := flag.Float64("pkt-rate", 2, "per-session packet rate per modeled second")
	mobility := flag.Float64("mobility", 500, "session moves per modeled second")
	duration := flag.Float64("duration", 50, "modeled script length in seconds")
	sample := flag.Int("sample", 4096, "check one packet verdict per this many packets (0 disables)")
	switches := flag.Int("switches", 8, "edge switch count")
	rules := flag.Int("rules", 96, "policy rule count")
	cache := flag.Int("cache", 2048, "per-switch ingress cache capacity (0 = unlimited)")
	seed := flag.Int64("seed", 42, "seed for policy, sessions, and phases")
	smoke := flag.Bool("smoke", false, "run the CI-sized smoke script (steady, churn, flash crowd, settle)")
	traceSample := flag.Int("trace-sample", 0, "trace 1 in N packets into end-to-end journeys (0 disables)")
	traceBuffer := flag.Int("trace-buffer", 1<<16, "per-node flight-recorder ring capacity in events")
	journeyGate := flag.Float64("journey-gate", 0, "fail if journey completeness falls below this fraction (0 disables; needs -trace-sample)")
	wallBudget := flag.Duration("wall-budget", 0, "stop after this much real time (0 = run the script out)")
	out := flag.String("out", "bench-out/SOAK_report.json", "where the JSON report is written")
	metricsAddr := flag.String("metrics", "", "serve the cluster ops surface on this address during the soak")
	flag.Parse()

	setup := subscriber.Setup{
		Switches:      *switches,
		Rules:         *rules,
		CacheCapacity: *cache,
		Seed:          *seed,
		Telemetry: wire.TelemetryConfig{
			Addr:        *metricsAddr,
			Tracing:     *traceSample > 0,
			TraceSample: *traceSample,
			TraceBuffer: *traceBuffer,
		},
	}
	d, spec, err := setup.Deploy()
	if err != nil {
		fmt.Fprintf(os.Stderr, "difane-soak: deploy: %v\n", err)
		os.Exit(2)
	}
	defer d.Close()

	phases := subscriber.DefaultScript(*duration)
	if *smoke {
		phases = subscriber.SmokeScript(*duration)
	}
	cfg := subscriber.SoakConfig{
		Engine: subscriber.Config{
			Subscribers:     *subscribers,
			ArrivalRate:     *rate,
			MeanSessionLife: *life,
			PacketRate:      *pktRate,
			MobilityRate:    *mobility,
			DiurnalAmp:      0.3,
			DiurnalPeriod:   *duration,
			Seed:            *seed,
		},
		Phases:      phases,
		SampleEvery: *sample,
		WallBudget:  *wallBudget,
		TraceSample: *traceSample,
		JourneyGate: *journeyGate,
		Log: func(format string, args ...any) {
			fmt.Printf("difane-soak: "+format+"\n", args...)
		},
	}

	start := time.Now()
	rep, err := subscriber.RunSoak(d, spec, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "difane-soak: %v\n", err)
		os.Exit(2)
	}
	fmt.Print(rep.Render())
	fmt.Printf("total wall time %.1fs\n", time.Since(start).Seconds())

	if *out != "" {
		if err := writeReport(*out, rep); err != nil {
			fmt.Fprintf(os.Stderr, "difane-soak: write report: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("report written to %s\n", *out)
	}
	if rep.Failed() {
		critical := 0
		if rep.Health != nil {
			critical = rep.Health.Critical
		}
		fmt.Fprintf(os.Stderr, "difane-soak: FAILED — %d divergences, accounting=%q, journey-gate=%q, %d critical health rules (seed %d)\n",
			len(rep.Divergences), rep.AccountingError, rep.JourneyGateError, critical, *seed)
		os.Exit(1)
	}
}

func writeReport(path string, rep *subscriber.Report) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
