// Campus ACL scenario: the paper's motivating workload — an access-control
// policy with deep dependency chains (many specific denies over broad
// permits). Shows why naive rule caching is unsafe, and compares the
// cover-set and dependent-set cache strategies on the same trace.
package main

import (
	"fmt"

	"difane"
)

func main() {
	// A firewall-shaped policy on a chain topology: fifty high-priority
	// deny rules for specific ports, one broad permit underneath, and a
	// default drop. Caching the permit alone would leak denied traffic —
	// the dependency problem DIFANE's cache-rule generation solves.
	g := difane.LinearTopology(6, 0.001)
	var policy []difane.Rule
	for port := uint64(1); port <= 50; port++ {
		policy = append(policy, difane.Rule{
			ID: port, Priority: 100,
			Match:  difane.MatchAll().WithExact(difane.FTPDst, port),
			Action: difane.Action{Kind: difane.ActDrop},
		})
	}
	policy = append(policy,
		difane.Rule{ID: 51, Priority: 50,
			Match:  difane.MatchAll().WithPrefix(difane.FIPSrc, 0x0A000000, 8),
			Action: difane.Action{Kind: difane.ActForward, Arg: 5}},
		difane.Rule{ID: 52, Priority: 0,
			Match:  difane.MatchAll(),
			Action: difane.Action{Kind: difane.ActDrop}},
	)

	for _, strat := range []difane.CacheStrategy{difane.StrategyCover, difane.StrategyDependent} {
		net, err := difane.New(g, []uint32{3}, policy, difane.Config{
			Strategy:      strat,
			CacheCapacity: 64,
		})
		if err != nil {
			panic(err)
		}
		// One permitted flow (source in 10/8, high port) plus probes of
		// denied ports, twice each so the second packet can hit the cache.
		at := 0.0
		for i := 0; i < 40; i++ {
			var k difane.Key
			k[difane.FIPSrc] = 0x0A000000 | uint64(i+1)
			k[difane.FTPDst] = uint64(8000 + i)
			net.InjectPacket(at, 0, k, 100, 0)
			net.InjectPacket(at+1, 0, k, 100, 1)
			at += 0.01
		}
		// Denied probes: they must NEVER be delivered, cached or not.
		for port := uint64(1); port <= 10; port++ {
			var k difane.Key
			k[difane.FIPSrc] = 0x0A000000 | port
			k[difane.FTPDst] = port
			net.InjectPacket(at, 0, k, 100, 0)
			at += 0.01
		}
		net.Run(30)

		fmt.Printf("strategy=%-10s delivered=%3d policy-drops=%2d redirects=%2d cache-entries=%d\n",
			strat, net.M.Delivered, net.M.Drops.Policy, net.M.Redirects, net.CacheEntries())
		if net.M.Delivered != 80 {
			panic("permitted flows must all be delivered (2 packets × 40 flows)")
		}
		if net.M.Drops.Policy != 10 {
			panic("every denied probe must be dropped")
		}
	}

	fmt.Println("\nBoth strategies preserve the ACL exactly; note the cache-entry cost:")
	fmt.Println("cover-set splices the 50-deny chain into one wildcard rule per region,")
	fmt.Println("dependent-set must drag the overlapping denies into the cache with it.")
}
