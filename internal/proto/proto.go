// Package proto defines the control-plane protocol spoken between the
// DIFANE controller, authority switches, and ingress switches in wire mode
// (and reused, without serialization, inside the simulator).
//
// Framing is a 4-byte big-endian length followed by a 1-byte message type
// and the message payload. Rules are encoded with a field-presence bitmap
// so sparse matches (the common case) stay small.
package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"difane/internal/flowspace"
)

// MsgType identifies a control message.
type MsgType uint8

const (
	// MsgHello introduces a node and its role after connecting.
	MsgHello MsgType = iota + 1
	// MsgFlowMod adds or removes a rule in one of a switch's tables.
	MsgFlowMod
	// MsgPacketIn carries a data packet up to the controller (baseline) or
	// records a redirected packet (diagnostics).
	MsgPacketIn
	// MsgPacketOut injects a data packet at a switch.
	MsgPacketOut
	// MsgCacheInstall carries cache rules from an authority switch to an
	// ingress switch.
	MsgCacheInstall
	// MsgBarrierReq / MsgBarrierReply fence message processing.
	MsgBarrierReq
	// MsgBarrierReply acknowledges a barrier.
	MsgBarrierReply
	// MsgStatsReq asks for a rule's counters.
	MsgStatsReq
	// MsgStatsReply returns a rule's counters.
	MsgStatsReply
	// MsgError reports a failure processing a previous message.
	MsgError
	// MsgHeartbeat is the liveness probe the controller sends to every
	// switch; the switch echoes it back unchanged. A run of missed echoes
	// marks the switch dead in the failure detector.
	MsgHeartbeat
	// MsgEpochReport carries a switch's current controller epoch upstream.
	// A switch sends it when it rejects a FlowMod carrying a stale epoch,
	// telling the (recovered or lagging) controller what epoch currently
	// fences its tables.
	MsgEpochReport
	// MsgBFDControl carries one BFD-style session control packet (state,
	// poll/final/demand flags, discriminators, timing parameters) in either
	// direction of a controller↔switch pair. The async session state
	// machines in internal/bfd drive these over the control channel to
	// detect failures within a detect-multiplier of the (millisecond-class)
	// transmit interval instead of multiple heartbeat intervals.
	MsgBFDControl
)

var msgNames = map[MsgType]string{
	MsgHello: "hello", MsgFlowMod: "flow-mod", MsgPacketIn: "packet-in",
	MsgPacketOut: "packet-out", MsgCacheInstall: "cache-install",
	MsgBarrierReq: "barrier-req", MsgBarrierReply: "barrier-reply",
	MsgStatsReq: "stats-req", MsgStatsReply: "stats-reply", MsgError: "error",
	MsgHeartbeat: "heartbeat", MsgEpochReport: "epoch-report",
	MsgBFDControl: "bfd-control",
}

func (t MsgType) String() string {
	if s, ok := msgNames[t]; ok {
		return s
	}
	return fmt.Sprintf("msg(%d)", uint8(t))
}

// Role identifies what a connecting node is.
type Role uint8

const (
	RoleIngress Role = iota + 1
	RoleAuthority
	RoleController
)

// Table identifies which of a switch's rule tables a FlowMod targets.
type Table uint8

const (
	TableCache Table = iota + 1
	TableAuthority
	TablePartition
)

func (t Table) String() string {
	switch t {
	case TableCache:
		return "cache"
	case TableAuthority:
		return "authority"
	case TablePartition:
		return "partition"
	default:
		return fmt.Sprintf("table(%d)", uint8(t))
	}
}

// FlowModOp says whether a FlowMod adds or deletes.
type FlowModOp uint8

const (
	OpAdd FlowModOp = iota + 1
	OpDelete
)

func (o FlowModOp) String() string {
	switch o {
	case OpAdd:
		return "add"
	case OpDelete:
		return "delete"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Message is any control message.
type Message interface {
	Type() MsgType
	appendPayload(b []byte) []byte
	decodePayload(b []byte) error
}

// Hello introduces a node.
type Hello struct {
	Node uint32
	Role Role
}

// FlowMod adds or deletes a rule with timeouts (seconds; 0 = none).
//
// Epoch fences the install: a switch tracks the highest epoch it has
// accepted and rejects any FlowMod carrying a lower, nonzero epoch —
// answering with an EpochReport — so a recovered (or lagging pre-crash)
// controller cannot clobber newer state. Epoch 0 means unfenced: installs
// originating in the data plane (authority cache installs, local
// failover) bypass the fence.
type FlowMod struct {
	Table Table
	Op    FlowModOp
	Rule  flowspace.Rule
	Idle  float64
	Hard  float64
	Epoch uint64
}

// PacketIn carries a packet toward a controller.
type PacketIn struct {
	Node uint32 // the switch reporting the packet
	Data []byte // encoded packet headers
	Size uint32 // original wire size
}

// PacketOut injects a packet at a switch.
type PacketOut struct {
	Node uint32
	Data []byte
	Size uint32
}

// CacheInstall carries cache rules from an authority to an ingress switch.
// Trace, when nonzero, is the sampled trace ID of the packet whose miss
// triggered the install, so the install lands in that packet's journey.
type CacheInstall struct {
	Ingress uint32
	Trace   uint64
	Rules   []FlowMod
}

// BarrierReq fences processing; the peer replies with the same XID.
type BarrierReq struct{ XID uint32 }

// BarrierReply acknowledges a BarrierReq.
type BarrierReply struct{ XID uint32 }

// StatsReq asks for rule counters.
type StatsReq struct {
	XID    uint32
	RuleID uint64
}

// StatsReply returns rule counters; OK is false if the rule was unknown.
type StatsReply struct {
	XID     uint32
	Packets uint64
	Bytes   uint64
	OK      bool
}

// Error reports a failure.
type Error struct {
	Code uint16
	Text string
}

// Heartbeat is a liveness probe. The controller stamps the target node and
// a monotonically increasing sequence number; the switch echoes the
// message back verbatim.
type Heartbeat struct {
	Node uint32
	Seq  uint64
}

// EpochReport tells the controller which epoch currently fences a switch's
// tables (sent when the switch rejects a stale-epoch FlowMod).
type EpochReport struct {
	Node  uint32
	Epoch uint64
}

// BFD control-packet flag bits (BFDControl.Flags).
const (
	// BFDPoll asks the peer for an immediate BFDFinal-flagged response.
	BFDPoll uint8 = 1 << iota
	// BFDFinal answers a poll, closing the poll sequence.
	BFDFinal
	// BFDDemand advertises that the sender goes quiescent once Up.
	BFDDemand
)

// BFDControl is one BFD session control packet. Node routes the packet to
// the right per-switch session on the controller side; the remaining
// fields mirror internal/bfd's Packet (State uses bfd.State's encoding,
// intervals are nanoseconds).
type BFDControl struct {
	Node          uint32
	State         uint8
	Flags         uint8
	MyDiscr       uint32
	YourDiscr     uint32
	DesiredMinTx  uint64
	RequiredMinRx uint64
	DetectMult    uint8
}

func (*Hello) Type() MsgType        { return MsgHello }
func (*FlowMod) Type() MsgType      { return MsgFlowMod }
func (*PacketIn) Type() MsgType     { return MsgPacketIn }
func (*PacketOut) Type() MsgType    { return MsgPacketOut }
func (*CacheInstall) Type() MsgType { return MsgCacheInstall }
func (*BarrierReq) Type() MsgType   { return MsgBarrierReq }
func (*BarrierReply) Type() MsgType { return MsgBarrierReply }
func (*StatsReq) Type() MsgType     { return MsgStatsReq }
func (*StatsReply) Type() MsgType   { return MsgStatsReply }
func (*Error) Type() MsgType        { return MsgError }
func (*Heartbeat) Type() MsgType    { return MsgHeartbeat }
func (*EpochReport) Type() MsgType  { return MsgEpochReport }
func (*BFDControl) Type() MsgType   { return MsgBFDControl }

// --- Encoding helpers -------------------------------------------------------

var (
	// ErrTruncated reports a payload shorter than its structure requires.
	ErrTruncated = errors.New("proto: truncated message")
	// ErrUnknownType reports an unrecognized message type byte.
	ErrUnknownType = errors.New("proto: unknown message type")
	// ErrTooLarge reports a frame exceeding MaxFrame.
	ErrTooLarge = errors.New("proto: frame too large")
)

// MaxFrame bounds a single message frame, defending the decoder against
// corrupt length prefixes.
const MaxFrame = 1 << 22

type reader struct {
	b   []byte
	err error
}

func (r *reader) u8() uint8 {
	if r.err != nil || len(r.b) < 1 {
		r.err = ErrTruncated
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}
func (r *reader) u16() uint16 {
	if r.err != nil || len(r.b) < 2 {
		r.err = ErrTruncated
		return 0
	}
	v := binary.BigEndian.Uint16(r.b)
	r.b = r.b[2:]
	return v
}
func (r *reader) u32() uint32 {
	if r.err != nil || len(r.b) < 4 {
		r.err = ErrTruncated
		return 0
	}
	v := binary.BigEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}
func (r *reader) u64() uint64 {
	if r.err != nil || len(r.b) < 8 {
		r.err = ErrTruncated
		return 0
	}
	v := binary.BigEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}
func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }
func (r *reader) bytes() []byte {
	n := int(r.u32())
	if r.err != nil {
		return nil
	}
	if n > len(r.b) {
		r.err = ErrTruncated
		return nil
	}
	v := append([]byte(nil), r.b[:n]...)
	r.b = r.b[n:]
	return v
}

func appendU16(b []byte, v uint16) []byte  { return binary.BigEndian.AppendUint16(b, v) }
func appendU32(b []byte, v uint32) []byte  { return binary.BigEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte  { return binary.BigEndian.AppendUint64(b, v) }
func appendF64(b []byte, v float64) []byte { return appendU64(b, math.Float64bits(v)) }
func appendBytes(b, p []byte) []byte {
	b = appendU32(b, uint32(len(p)))
	return append(b, p...)
}

// AppendRule encodes a rule with a field-presence bitmap.
func AppendRule(b []byte, r flowspace.Rule) []byte {
	b = appendU64(b, r.ID)
	b = appendU32(b, uint32(r.Priority))
	b = append(b, byte(r.Action.Kind))
	b = appendU32(b, r.Action.Arg)
	var bitmap uint16
	for f := flowspace.FieldID(0); f < flowspace.NumFields; f++ {
		if r.Match.Fields[f].Mask != 0 {
			bitmap |= 1 << uint(f)
		}
	}
	b = appendU16(b, bitmap)
	for f := flowspace.FieldID(0); f < flowspace.NumFields; f++ {
		if bitmap&(1<<uint(f)) != 0 {
			b = appendU64(b, r.Match.Fields[f].Value)
			b = appendU64(b, r.Match.Fields[f].Mask)
		}
	}
	return b
}

func decodeRule(r *reader) flowspace.Rule {
	var rule flowspace.Rule
	rule.ID = r.u64()
	rule.Priority = int32(r.u32())
	rule.Action.Kind = flowspace.ActionKind(r.u8())
	rule.Action.Arg = r.u32()
	bitmap := r.u16()
	for f := flowspace.FieldID(0); f < flowspace.NumFields; f++ {
		if bitmap&(1<<uint(f)) != 0 {
			rule.Match.Fields[f].Value = r.u64()
			rule.Match.Fields[f].Mask = r.u64()
		}
	}
	return rule
}

// --- Per-message payloads ---------------------------------------------------

func (m *Hello) appendPayload(b []byte) []byte {
	b = appendU32(b, m.Node)
	return append(b, byte(m.Role))
}
func (m *Hello) decodePayload(b []byte) error {
	r := &reader{b: b}
	m.Node = r.u32()
	m.Role = Role(r.u8())
	return r.err
}

func appendFlowModBody(b []byte, m *FlowMod) []byte {
	b = append(b, byte(m.Table), byte(m.Op))
	b = AppendRule(b, m.Rule)
	b = appendF64(b, m.Idle)
	b = appendF64(b, m.Hard)
	b = appendU64(b, m.Epoch)
	return b
}

// flowModMinSize is the smallest possible encoded FlowMod body (all match
// fields wildcarded): table+op (2) + rule header (19) + idle/hard/epoch
// (24). Used to bound CacheInstall preallocation against forged counts.
const flowModMinSize = 2 + 19 + 24

func decodeFlowModBody(r *reader) FlowMod {
	var m FlowMod
	m.Table = Table(r.u8())
	m.Op = FlowModOp(r.u8())
	m.Rule = decodeRule(r)
	m.Idle = r.f64()
	m.Hard = r.f64()
	m.Epoch = r.u64()
	return m
}

func (m *FlowMod) appendPayload(b []byte) []byte { return appendFlowModBody(b, m) }
func (m *FlowMod) decodePayload(b []byte) error {
	r := &reader{b: b}
	*m = decodeFlowModBody(r)
	return r.err
}

func (m *PacketIn) appendPayload(b []byte) []byte {
	b = appendU32(b, m.Node)
	b = appendU32(b, m.Size)
	return appendBytes(b, m.Data)
}
func (m *PacketIn) decodePayload(b []byte) error {
	r := &reader{b: b}
	m.Node = r.u32()
	m.Size = r.u32()
	m.Data = r.bytes()
	return r.err
}

func (m *PacketOut) appendPayload(b []byte) []byte {
	b = appendU32(b, m.Node)
	b = appendU32(b, m.Size)
	return appendBytes(b, m.Data)
}
func (m *PacketOut) decodePayload(b []byte) error {
	r := &reader{b: b}
	m.Node = r.u32()
	m.Size = r.u32()
	m.Data = r.bytes()
	return r.err
}

func (m *CacheInstall) appendPayload(b []byte) []byte {
	b = appendU32(b, m.Ingress)
	b = appendU64(b, m.Trace)
	b = appendU32(b, uint32(len(m.Rules)))
	for i := range m.Rules {
		b = appendFlowModBody(b, &m.Rules[i])
	}
	return b
}
func (m *CacheInstall) decodePayload(b []byte) error {
	r := &reader{b: b}
	m.Ingress = r.u32()
	m.Trace = r.u64()
	n := int(r.u32())
	if r.err != nil {
		return r.err
	}
	if n > MaxFrame/16 {
		return ErrTooLarge
	}
	// A forged count larger than the remaining payload could possibly hold
	// must not drive the preallocation below: each encoded rule is at least
	// flowModMinSize bytes, so anything bigger is already truncated.
	if n > len(r.b)/flowModMinSize {
		return ErrTruncated
	}
	m.Rules = nil
	if n > 0 {
		m.Rules = make([]FlowMod, 0, n)
	}
	for i := 0; i < n && r.err == nil; i++ {
		m.Rules = append(m.Rules, decodeFlowModBody(r))
	}
	return r.err
}

func (m *BarrierReq) appendPayload(b []byte) []byte { return appendU32(b, m.XID) }
func (m *BarrierReq) decodePayload(b []byte) error {
	r := &reader{b: b}
	m.XID = r.u32()
	return r.err
}

func (m *BarrierReply) appendPayload(b []byte) []byte { return appendU32(b, m.XID) }
func (m *BarrierReply) decodePayload(b []byte) error {
	r := &reader{b: b}
	m.XID = r.u32()
	return r.err
}

func (m *StatsReq) appendPayload(b []byte) []byte {
	b = appendU32(b, m.XID)
	return appendU64(b, m.RuleID)
}
func (m *StatsReq) decodePayload(b []byte) error {
	r := &reader{b: b}
	m.XID = r.u32()
	m.RuleID = r.u64()
	return r.err
}

func (m *StatsReply) appendPayload(b []byte) []byte {
	b = appendU32(b, m.XID)
	b = appendU64(b, m.Packets)
	b = appendU64(b, m.Bytes)
	ok := byte(0)
	if m.OK {
		ok = 1
	}
	return append(b, ok)
}
func (m *StatsReply) decodePayload(b []byte) error {
	r := &reader{b: b}
	m.XID = r.u32()
	m.Packets = r.u64()
	m.Bytes = r.u64()
	m.OK = r.u8() != 0
	return r.err
}

func (m *Error) appendPayload(b []byte) []byte {
	b = appendU16(b, m.Code)
	return appendBytes(b, []byte(m.Text))
}
func (m *Error) decodePayload(b []byte) error {
	r := &reader{b: b}
	m.Code = r.u16()
	m.Text = string(r.bytes())
	return r.err
}

func (m *Heartbeat) appendPayload(b []byte) []byte {
	b = appendU32(b, m.Node)
	return appendU64(b, m.Seq)
}
func (m *Heartbeat) decodePayload(b []byte) error {
	r := &reader{b: b}
	m.Node = r.u32()
	m.Seq = r.u64()
	return r.err
}

func (m *EpochReport) appendPayload(b []byte) []byte {
	b = appendU32(b, m.Node)
	return appendU64(b, m.Epoch)
}
func (m *EpochReport) decodePayload(b []byte) error {
	r := &reader{b: b}
	m.Node = r.u32()
	m.Epoch = r.u64()
	return r.err
}

func (m *BFDControl) appendPayload(b []byte) []byte {
	b = appendU32(b, m.Node)
	b = append(b, m.State, m.Flags)
	b = appendU32(b, m.MyDiscr)
	b = appendU32(b, m.YourDiscr)
	b = appendU64(b, m.DesiredMinTx)
	b = appendU64(b, m.RequiredMinRx)
	return append(b, m.DetectMult)
}
func (m *BFDControl) decodePayload(b []byte) error {
	r := &reader{b: b}
	m.Node = r.u32()
	m.State = r.u8()
	m.Flags = r.u8()
	m.MyDiscr = r.u32()
	m.YourDiscr = r.u32()
	m.DesiredMinTx = r.u64()
	m.RequiredMinRx = r.u64()
	m.DetectMult = r.u8()
	return r.err
}

// --- Framing ----------------------------------------------------------------

// Encode appends the framed message to b.
func Encode(b []byte, m Message) []byte {
	start := len(b)
	b = appendU32(b, 0) // length placeholder
	b = append(b, byte(m.Type()))
	b = m.appendPayload(b)
	binary.BigEndian.PutUint32(b[start:], uint32(len(b)-start-4))
	return b
}

// WriteMessage writes one framed message to w.
//
// The encode buffer starts at a capacity covering every fixed-size
// message and a typical CacheInstall, so the common write is one
// allocation instead of append's doubling ladder from nil.
func WriteMessage(w io.Writer, m Message) error {
	buf := Encode(make([]byte, 0, 192), m)
	_, err := w.Write(buf)
	return err
}

// ReadMessage reads one framed message from r.
func ReadMessage(r io.Reader) (Message, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	length := binary.BigEndian.Uint32(hdr[:4])
	if length < 1 {
		return nil, ErrTruncated
	}
	if length > MaxFrame {
		return nil, ErrTooLarge
	}
	payload := make([]byte, length-1)
	if len(payload) > 0 {
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, err
		}
	}
	return decodeBody(MsgType(hdr[4]), payload)
}

// DecodeFrame decodes one framed message from the front of b, returning
// the message and the number of bytes consumed. It never panics on
// malformed or truncated input — errors are ErrTruncated, ErrTooLarge, or
// ErrUnknownType, with zero bytes consumed.
func DecodeFrame(b []byte) (Message, int, error) {
	if len(b) < 5 {
		return nil, 0, ErrTruncated
	}
	length := binary.BigEndian.Uint32(b[:4])
	if length < 1 {
		return nil, 0, ErrTruncated
	}
	if length > MaxFrame {
		return nil, 0, ErrTooLarge
	}
	total := 4 + int(length)
	if len(b) < total {
		return nil, 0, ErrTruncated
	}
	m, err := decodeBody(MsgType(b[4]), b[5:total])
	if err != nil {
		return nil, 0, err
	}
	return m, total, nil
}

// decodeBody builds and decodes a message of type t from its payload.
func decodeBody(t MsgType, payload []byte) (Message, error) {
	m, err := newMessage(t)
	if err != nil {
		return nil, err
	}
	if err := m.decodePayload(payload); err != nil {
		return nil, err
	}
	return m, nil
}

func newMessage(t MsgType) (Message, error) {
	switch t {
	case MsgHello:
		return &Hello{}, nil
	case MsgFlowMod:
		return &FlowMod{}, nil
	case MsgPacketIn:
		return &PacketIn{}, nil
	case MsgPacketOut:
		return &PacketOut{}, nil
	case MsgCacheInstall:
		return &CacheInstall{}, nil
	case MsgBarrierReq:
		return &BarrierReq{}, nil
	case MsgBarrierReply:
		return &BarrierReply{}, nil
	case MsgStatsReq:
		return &StatsReq{}, nil
	case MsgStatsReply:
		return &StatsReply{}, nil
	case MsgError:
		return &Error{}, nil
	case MsgHeartbeat:
		return &Heartbeat{}, nil
	case MsgEpochReport:
		return &EpochReport{}, nil
	case MsgBFDControl:
		return &BFDControl{}, nil
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownType, t)
	}
}
