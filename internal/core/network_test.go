package core

import (
	"math/rand"
	"testing"

	"difane/internal/flowspace"
	"difane/internal/proto"
	"difane/internal/topo"
)

// testNet builds a linear topology 0-1-2-3-4 with the authority at node 2,
// and a tiny policy forwarding port 80 to egress 4 and dropping the rest.
func testNet(t *testing.T, cfg NetworkConfig) *Network {
	t.Helper()
	g := topo.Linear(5, 0.001) // 1ms per hop
	policy := []flowspace.Rule{
		{ID: 1, Priority: 10,
			Match:  flowspace.MatchAll().WithExact(flowspace.FTPDst, 80),
			Action: flowspace.Action{Kind: flowspace.ActForward, Arg: 4}},
		{ID: 2, Priority: 0, Match: flowspace.MatchAll(),
			Action: flowspace.Action{Kind: flowspace.ActDrop}},
	}
	n, err := NewNetwork(g, []uint32{2}, policy, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func flowKey(src uint32, port uint64) flowspace.Key {
	var k flowspace.Key
	k[flowspace.FIPSrc] = uint64(src)
	k[flowspace.FTPDst] = port
	return k
}

func TestFirstPacketDetoursThroughAuthority(t *testing.T) {
	n := testNet(t, NetworkConfig{})
	n.InjectPacket(0, 0, flowKey(1, 80), 100, 0)
	n.Run(1)
	if n.M.Delivered != 1 {
		t.Fatalf("delivered = %d, drops = %+v", n.M.Delivered, n.M.Drops)
	}
	if n.M.Redirects != 1 {
		t.Fatalf("redirects = %d", n.M.Redirects)
	}
	// Path: 0→2 (2ms) + 2→4 (2ms) = 4ms; direct would be 4ms too (0→4),
	// so stretch is 1 on a line when the authority is en route.
	d := n.M.FirstPacketDelay.Mean()
	if d < 0.0039 || d > 0.0041 {
		t.Fatalf("first packet delay = %v, want ~4ms", d)
	}
}

func TestSecondPacketHitsCache(t *testing.T) {
	n := testNet(t, NetworkConfig{})
	n.InjectPacket(0, 0, flowKey(1, 80), 100, 0)
	n.InjectPacket(0.5, 0, flowKey(1, 80), 100, 1) // after install completes
	n.Run(1)
	if n.M.Redirects != 1 {
		t.Fatalf("second packet must hit the cache: redirects = %d", n.M.Redirects)
	}
	if n.M.Delivered != 2 {
		t.Fatalf("delivered = %d", n.M.Delivered)
	}
	// Second packet goes direct: 4 hops × 1ms.
	d := n.M.LaterPacketDelay.Mean()
	if d < 0.0039 || d > 0.0041 {
		t.Fatalf("later packet delay = %v", d)
	}
	sw := n.Switches[0]
	if sw.Stats.CacheHits.Load() != 1 {
		t.Fatalf("cache hits = %d", sw.Stats.CacheHits.Load())
	}
}

func TestPolicyDropCountsAsCompletedSetup(t *testing.T) {
	n := testNet(t, NetworkConfig{})
	n.InjectPacket(0, 0, flowKey(1, 22), 100, 0) // matches the drop rule
	n.Run(1)
	if n.M.Drops.Policy != 1 {
		t.Fatalf("drops = %+v", n.M.Drops)
	}
	if n.M.SetupsCompleted != 1 {
		t.Fatalf("setups = %d", n.M.SetupsCompleted)
	}
	if n.M.Delivered != 0 {
		t.Fatal("dropped packet must not be delivered")
	}
}

func TestDropRuleGetsCachedToo(t *testing.T) {
	n := testNet(t, NetworkConfig{})
	n.InjectPacket(0, 0, flowKey(1, 22), 100, 0)
	n.InjectPacket(0.5, 0, flowKey(1, 22), 100, 1)
	n.Run(1)
	if n.M.Redirects != 1 {
		t.Fatalf("drop decision must be cached: redirects = %d", n.M.Redirects)
	}
	if n.M.Drops.Policy != 2 {
		t.Fatalf("drops = %+v", n.M.Drops)
	}
}

func TestAuthorityCapacitySheds(t *testing.T) {
	n := testNet(t, NetworkConfig{AuthorityRate: 10, AuthorityQueue: 5})
	// 100 distinct flows at t=0 against a 10/s authority with queue 5.
	for i := 0; i < 100; i++ {
		n.InjectPacket(0, 0, flowKey(uint32(i+1000), 80), 100, 0)
	}
	n.Run(0.9)
	if n.M.Drops.AuthorityQueue == 0 {
		t.Fatal("overloaded authority must shed misses")
	}
	if n.M.Delivered == 0 {
		t.Fatal("some flows must still complete")
	}
	if n.M.Delivered > 15 {
		t.Fatalf("delivered %d exceeds authority capacity bound", n.M.Delivered)
	}
}

func TestCacheIdleTimeoutForcesNewMiss(t *testing.T) {
	n := testNet(t, NetworkConfig{CacheIdle: 1})
	n.InjectPacket(0, 0, flowKey(1, 80), 100, 0)
	n.InjectPacket(5, 0, flowKey(1, 80), 100, 1) // cache expired by then
	n.Run(10)
	if n.M.Redirects != 2 {
		t.Fatalf("expired cache must redirect again: redirects = %d", n.M.Redirects)
	}
}

func TestFailoverToBackupAuthority(t *testing.T) {
	// Ring topology so the data plane survives an authority failure:
	// 0-1-2-3-4-0, authorities at 1 and 3, all traffic forwarded to 0.
	g := topo.NewGraph()
	for i := 0; i < 5; i++ {
		g.AddLink(topo.NodeID(i), topo.NodeID((i+1)%5), 0.001)
	}
	policy := []flowspace.Rule{{
		ID: 1, Priority: 1, Match: flowspace.MatchAll(),
		Action: flowspace.Action{Kind: flowspace.ActForward, Arg: 0},
	}}
	// Exact-match caching so every distinct flow redirects — keeps the
	// failover window observable (a cover rule would absorb later flows).
	n, err := NewNetwork(g, []uint32{1, 3}, policy, NetworkConfig{Strategy: StrategyExact})
	if err != nil {
		t.Fatal(err)
	}
	c := NewController(n)
	c.FailoverDelay = 0.1

	// One partition replicated at both authorities. Ingress 0's nearest
	// replica is authority 1 (one hop); fail it. Authority 3 survives.
	const failed, survivor = 1, 3
	n.Eng.At(1, func() {
		n.FailAuthority(failed)
		c.OnAuthorityFailure(failed)
	})
	// Flow A before the failure: served by authority 1. Flow B during the
	// failover window: redirected at the dead authority → lost. Flow C
	// after convergence: the rule pointing at 1 is withdrawn, so the
	// lower-priority rule redirects to the survivor. All three are
	// distinct flows, and exact caching keeps each one a miss.
	n.InjectPacket(0.0, 0, flowKey(100, 80), 100, 0)
	n.InjectPacket(1.05, 0, flowKey(101, 80), 100, 0)
	n.InjectPacket(1.5, 0, flowKey(102, 80), 100, 0)
	n.Run(3)

	if n.M.Drops.Unreachable == 0 {
		t.Fatal("the failover-window flow must be lost")
	}
	if n.M.Delivered != 2 {
		t.Fatalf("delivered = %d, want 2 (before-failure and after-convergence), drops %+v",
			n.M.Delivered, n.M.Drops)
	}
	// After convergence, redirects land on the survivor: its authority
	// table must have seen traffic.
	if n.Switches[survivor].Stats.AuthorityHits.Load() == 0 {
		t.Fatal("surviving authority must have served the post-failover flow")
	}
}

func TestPolicyUpdateSwapsBehaviour(t *testing.T) {
	n := testNet(t, NetworkConfig{})
	c := NewController(n)
	// Prime the cache with the old policy.
	n.InjectPacket(0, 0, flowKey(1, 80), 100, 0)
	n.Run(0.5)
	if n.M.Delivered != 1 {
		t.Fatal("old policy must forward port 80")
	}
	// New policy: drop everything.
	newPolicy := []flowspace.Rule{{
		ID: 1, Priority: 0, Match: flowspace.MatchAll(),
		Action: flowspace.Action{Kind: flowspace.ActDrop},
	}}
	if _, err := c.UpdatePolicy(newPolicy); err != nil {
		t.Fatal(err)
	}
	n.Run(1) // let the push land
	if c.PolicyVersion != 1 {
		t.Fatalf("policy version = %d", c.PolicyVersion)
	}
	// Same flow now must be dropped (stale cache rules were cleared).
	n.InjectPacket(1.5, 0, flowKey(1, 80), 100, 42)
	n.Run(3)
	if n.M.Delivered != 1 {
		t.Fatalf("new policy must drop port 80: delivered = %d", n.M.Delivered)
	}
	if n.M.Drops.Policy != 1 {
		t.Fatalf("drops = %+v", n.M.Drops)
	}
}

func TestInvalidateHost(t *testing.T) {
	n := testNet(t, NetworkConfig{Strategy: StrategyExact})
	c := NewController(n)
	n.InjectPacket(0, 0, flowKey(777, 80), 100, 0)
	n.Run(0.5)
	if n.CacheEntries() == 0 {
		t.Fatal("a cache entry must exist")
	}
	removed := c.InvalidateHost(777)
	if removed == 0 {
		t.Fatal("mobility invalidation must remove the host's cache rules")
	}
	if n.CacheEntries() != 0 {
		t.Fatal("cache must be empty after invalidation")
	}
	if c.InvalidateHost(123456) != 0 {
		t.Fatal("unrelated host must remove nothing")
	}
}

func TestIngressIsAuthorityNoDetour(t *testing.T) {
	// When the ingress switch hosts the partition, misses are handled
	// locally: the authority table matches before the partition rule.
	g := topo.Linear(3, 0.001)
	policy := []flowspace.Rule{{
		ID: 1, Priority: 1, Match: flowspace.MatchAll(),
		Action: flowspace.Action{Kind: flowspace.ActForward, Arg: 2},
	}}
	n, err := NewNetwork(g, []uint32{0}, policy, NetworkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	n.InjectPacket(0, 0, flowKey(1, 80), 100, 0)
	n.Run(1)
	if n.M.Redirects != 0 {
		t.Fatalf("local authority must avoid redirects, got %d", n.M.Redirects)
	}
	if n.M.Delivered != 1 {
		t.Fatalf("delivered = %d", n.M.Delivered)
	}
}

func TestStretchRecordedOnDetour(t *testing.T) {
	// Authority off the direct path: line 0-1-2-3-4 with authority at 4,
	// traffic 0→2: detour 0→4→2 = 4+2 = 6ms vs direct 2ms → stretch 3.
	g := topo.Linear(5, 0.001)
	policy := []flowspace.Rule{{
		ID: 1, Priority: 1, Match: flowspace.MatchAll(),
		Action: flowspace.Action{Kind: flowspace.ActForward, Arg: 2},
	}}
	n, err := NewNetwork(g, []uint32{4}, policy, NetworkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	n.InjectPacket(0, 0, flowKey(1, 80), 100, 0)
	n.Run(1)
	if n.M.Stretch.N() != 1 {
		t.Fatalf("stretch samples = %d", n.M.Stretch.N())
	}
	if s := n.M.Stretch.Mean(); s < 2.99 || s > 3.01 {
		t.Fatalf("stretch = %v, want 3", s)
	}
}

func TestNetworkValidation(t *testing.T) {
	g := topo.Linear(3, 0.001)
	if _, err := NewNetwork(g, nil, nil, NetworkConfig{}); err == nil {
		t.Fatal("no authorities must error")
	}
	if _, err := NewNetwork(g, []uint32{99}, nil, NetworkConfig{}); err == nil {
		t.Fatal("authority outside the topology must error")
	}
}

func TestEgressOf(t *testing.T) {
	n := testNet(t, NetworkConfig{})
	if e, ok := n.EgressOf(flowKey(1, 80)); !ok || e != 4 {
		t.Fatalf("egress = %d ok=%v", e, ok)
	}
	if _, ok := n.EgressOf(flowKey(1, 22)); ok {
		t.Fatal("dropped traffic has no egress")
	}
}

func TestManyFlowsAllStrategiesDeliverCorrectly(t *testing.T) {
	// End-to-end consistency sweep: random policy, random flows; every
	// injected packet must be delivered iff the global policy forwards it,
	// under all three cache strategies.
	rng := rand.New(rand.NewSource(113))
	for _, strat := range []CacheStrategy{StrategyCover, StrategyDependent, StrategyExact} {
		g, access := topo.Campus(3, 2, 2, 0.001)
		policy := randPolicy(rng, 60)
		// Point forwards at real switches.
		for i := range policy {
			if policy[i].Action.Kind == flowspace.ActForward {
				policy[i].Action.Arg = uint32(access[int(policy[i].Action.Arg)%len(access)])
			}
		}
		auths := PlaceAuthorities(g, 2)
		n, err := NewNetwork(g, auths, policy, NetworkConfig{
			Strategy:  strat,
			Partition: PartitionConfig{MaxRulesPerPartition: 20},
		})
		if err != nil {
			t.Fatal(err)
		}
		wantDelivered := 0
		wantDropped := 0
		for i := 0; i < 150; i++ {
			k := randKey(rng)
			r, ok := flowspace.EvalTable(policy, k)
			if !ok {
				continue
			}
			if r.Action.Kind == flowspace.ActForward {
				wantDelivered += 2
			} else {
				wantDropped += 2
			}
			ingress := uint32(access[i%len(access)])
			n.InjectPacket(float64(i)*0.01, ingress, k, 100, 0)
			n.InjectPacket(float64(i)*0.01+2, ingress, k, 100, 1)
		}
		n.Run(10)
		if int(n.M.Delivered) != wantDelivered {
			t.Fatalf("%v: delivered %d want %d (drops %+v)",
				strat, n.M.Delivered, wantDelivered, n.M.Drops)
		}
		if int(n.M.Drops.Policy) != wantDropped {
			t.Fatalf("%v: policy drops %d want %d", strat, n.M.Drops.Policy, wantDropped)
		}
	}
}

func TestPartitionTableInstalledEverywhere(t *testing.T) {
	n := testNet(t, NetworkConfig{})
	for id, sw := range n.Switches {
		if sw.Table(proto.TablePartition).Len() == 0 {
			t.Fatalf("switch %d has no partition rules", id)
		}
	}
}
