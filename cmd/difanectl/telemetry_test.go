package main

import (
	"testing"

	"difane/internal/telemetry"
)

// orderEvents must merge per-node event streams into global timestamp
// order, breaking timestamp ties by node ID and then per-node sequence —
// a stable total order no matter how the server interleaved the rings.
func TestOrderEventsGlobalOrder(t *testing.T) {
	in := []telemetry.EventJSON{
		// Node 3's ring snapshotted first: its events arrive before node
		// 1's despite carrying later timestamps.
		{Seq: 10, TS: 500, Kind: "authority", Node: 3},
		{Seq: 11, TS: 900, Kind: "verdict", Node: 3},
		{Seq: 7, TS: 100, Kind: "ingress", Node: 1},
		{Seq: 8, TS: 300, Kind: "redirect", Node: 1},
		// A timestamp tie across nodes: node 1 must sort before node 2.
		{Seq: 4, TS: 700, Kind: "install", Node: 2},
		{Seq: 9, TS: 700, Kind: "forward", Node: 1},
		// A tie within one node resolves by sequence.
		{Seq: 3, TS: 700, Kind: "evict", Node: 2},
	}
	got := orderEvents(in)

	wantKinds := []string{"ingress", "redirect", "authority", "forward", "evict", "install", "verdict"}
	if len(got) != len(wantKinds) {
		t.Fatalf("got %d events, want %d", len(got), len(wantKinds))
	}
	for i, k := range wantKinds {
		if got[i].Kind != k {
			t.Errorf("position %d: got %s (node %d ts %d), want %s",
				i, got[i].Kind, got[i].Node, got[i].TS, k)
		}
	}
	for i := 1; i < len(got); i++ {
		a, b := got[i-1], got[i]
		if a.TS > b.TS {
			t.Errorf("timestamps out of order at %d: %d > %d", i, a.TS, b.TS)
		}
		if a.TS == b.TS && a.Node > b.Node {
			t.Errorf("node tie-break violated at %d: node %d before %d at ts %d", i, a.Node, b.Node, a.TS)
		}
		if a.TS == b.TS && a.Node == b.Node && a.Seq > b.Seq {
			t.Errorf("seq tie-break violated at %d", i)
		}
	}

	// The input must not be mutated (printStory reuses the response).
	if in[0].Kind != "authority" || in[2].Kind != "ingress" {
		t.Error("orderEvents mutated its input")
	}
}
