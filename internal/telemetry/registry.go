package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// MetricType classifies a registered metric.
type MetricType uint8

// Metric types.
const (
	TypeCounter MetricType = iota
	TypeGauge
	TypeSummary
)

func (t MetricType) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge:
		return "gauge"
	case TypeSummary:
		return "summary"
	default:
		return "untyped"
	}
}

// Label is one name=value pair on a point.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Point is one sample of a counter or gauge: a value plus optional labels.
type Point struct {
	Labels []Label `json:"labels,omitempty"`
	Value  float64 `json:"value"`
}

// SummaryView is what a summary metric's collector returns: quantile
// points plus count and sum, precomputed by the producer (typically from a
// metrics.Dist).
type SummaryView struct {
	Count     uint64       `json:"count"`
	Sum       float64      `json:"sum"`
	Quantiles [][2]float64 `json:"quantiles,omitempty"` // (q, value) pairs
}

type metric struct {
	name    string
	help    string
	typ     MetricType
	collect func() []Point
	summary func() SummaryView
}

// Registry is a pull-model metric registry: registration stores a name,
// help text, and a collect function; every scrape (Prometheus text, JSON,
// Snapshot) invokes the collectors. Nothing is cached, so a scrape always
// reflects live cluster state, and producers pay zero cost between
// scrapes.
type Registry struct {
	mu      sync.Mutex
	metrics []metric
	names   map[string]struct{}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]struct{})}
}

// Register adds a counter or gauge whose points are produced by collect at
// scrape time. Duplicate names panic: metric names are a fixed schema, so
// a collision is a programming error.
func (g *Registry) Register(name, help string, typ MetricType, collect func() []Point) {
	g.add(metric{name: name, help: help, typ: typ, collect: collect})
}

// RegisterFunc adds a single unlabeled counter or gauge.
func (g *Registry) RegisterFunc(name, help string, typ MetricType, fn func() float64) {
	g.Register(name, help, typ, func() []Point {
		return []Point{{Value: fn()}}
	})
}

// RegisterSummary adds a summary metric (quantiles + _sum/_count).
func (g *Registry) RegisterSummary(name, help string, collect func() SummaryView) {
	g.add(metric{name: name, help: help, typ: TypeSummary, summary: collect})
}

func (g *Registry) add(m metric) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, dup := g.names[m.name]; dup {
		panic(fmt.Sprintf("telemetry: duplicate metric %q", m.name))
	}
	g.names[m.name] = struct{}{}
	g.metrics = append(g.metrics, m)
}

// MetricSnapshot is one metric's scraped state.
type MetricSnapshot struct {
	Name    string       `json:"name"`
	Help    string       `json:"help,omitempty"`
	Type    string       `json:"type"`
	Points  []Point      `json:"points,omitempty"`
	Summary *SummaryView `json:"summary,omitempty"`
}

// Snapshot scrapes every metric, sorted by name.
func (g *Registry) Snapshot() []MetricSnapshot {
	g.mu.Lock()
	ms := append([]metric(nil), g.metrics...)
	g.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
	out := make([]MetricSnapshot, 0, len(ms))
	for _, m := range ms {
		snap := MetricSnapshot{Name: m.name, Help: m.help, Type: m.typ.String()}
		if m.typ == TypeSummary {
			v := m.summary()
			snap.Summary = &v
		} else {
			snap.Points = m.collect()
		}
		out = append(out, snap)
	}
	return out
}

// scrapeBuf pools the scratch buffers WritePrometheus renders into, so a
// scrape reuses one buffer across every collector instead of allocating
// per line. Concurrent scrapes each check out their own buffer.
var scrapeBuf = sync.Pool{New: func() any {
	b := make([]byte, 0, 1<<14)
	return &b
}}

// WritePrometheus renders a scrape in the Prometheus text exposition
// format (version 0.0.4). The whole scrape is appended into one pooled
// scratch buffer and written with a single Write.
func (g *Registry) WritePrometheus(w io.Writer) error {
	g.mu.Lock()
	ms := append([]metric(nil), g.metrics...)
	g.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })

	bp := scrapeBuf.Get().(*[]byte)
	b := (*bp)[:0]
	for _, m := range ms {
		if m.help != "" {
			b = append(b, "# HELP "...)
			b = append(b, m.name...)
			b = append(b, ' ')
			b = append(b, m.help...)
			b = append(b, '\n')
		}
		b = append(b, "# TYPE "...)
		b = append(b, m.name...)
		b = append(b, ' ')
		b = append(b, m.typ.String()...)
		b = append(b, '\n')
		if m.typ == TypeSummary {
			v := m.summary()
			for _, qv := range v.Quantiles {
				b = append(b, m.name...)
				b = append(b, `{quantile="`...)
				b = appendTrimFloat(b, qv[0])
				b = append(b, `"} `...)
				b = appendPromFloat(b, qv[1])
				b = append(b, '\n')
			}
			b = append(b, m.name...)
			b = append(b, "_sum "...)
			b = appendPromFloat(b, v.Sum)
			b = append(b, '\n')
			b = append(b, m.name...)
			b = append(b, "_count "...)
			b = strconv.AppendUint(b, v.Count, 10)
			b = append(b, '\n')
			continue
		}
		for _, p := range m.collect() {
			b = append(b, m.name...)
			b = appendPromLabels(b, p.Labels)
			b = append(b, ' ')
			b = appendPromFloat(b, p.Value)
			b = append(b, '\n')
		}
	}
	_, err := w.Write(b)
	*bp = b[:0]
	scrapeBuf.Put(bp)
	return err
}

func appendPromLabels(b []byte, labels []Label) []byte {
	if len(labels) == 0 {
		return b
	}
	b = append(b, '{')
	for i, l := range labels {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, l.Key...)
		b = append(b, '=')
		b = strconv.AppendQuote(b, l.Value)
	}
	return append(b, '}')
}

func appendPromFloat(b []byte, v float64) []byte {
	if v == float64(int64(v)) {
		return strconv.AppendInt(b, int64(v), 10)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

func appendTrimFloat(b []byte, v float64) []byte {
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

func trimFloat(v float64) string { return fmt.Sprintf("%g", v) }

// WriteJSON renders a scrape as one JSON object keyed by metric name, in
// the spirit of expvar: counters and gauges become numbers (or objects
// keyed by "k=v,..." label strings when labeled), summaries become
// {count, sum, q...} objects.
func (g *Registry) WriteJSON(w io.Writer) error {
	obj := make(map[string]any)
	for _, m := range g.Snapshot() {
		switch {
		case m.Summary != nil:
			s := map[string]any{"count": m.Summary.Count, "sum": m.Summary.Sum}
			for _, qv := range m.Summary.Quantiles {
				s["q"+trimFloat(qv[0])] = qv[1]
			}
			obj[m.Name] = s
		case len(m.Points) == 1 && len(m.Points[0].Labels) == 0:
			obj[m.Name] = m.Points[0].Value
		default:
			labeled := make(map[string]float64, len(m.Points))
			for _, p := range m.Points {
				parts := make([]string, 0, len(p.Labels))
				for _, l := range p.Labels {
					parts = append(parts, l.Key+"="+l.Value)
				}
				labeled[strings.Join(parts, ",")] = p.Value
			}
			obj[m.Name] = labeled
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(obj)
}
