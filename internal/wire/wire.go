// Package wire runs a DIFANE deployment as real concurrent components: one
// goroutine per switch, data-plane frames as encoded packets over
// channels, and control-plane messages as framed proto messages over
// net.Pipe or loopback-TCP connections — the prototype-style counterpart
// to the discrete-event simulator in internal/core. It validates that the
// protocol, the pipeline, and the cache-install feedback loop work under
// real concurrency, and adds the resilience layer the paper's failover
// story requires: a heartbeat failure detector, pre-installed backup
// authority rules with ingress-local failover, reconnecting control
// connections, and fault-injection hooks for testing all of it.
package wire

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"difane/internal/core"
	"difane/internal/flowspace"
	"difane/internal/metrics"
	"difane/internal/packet"
	"difane/internal/proto"
	"difane/internal/switchsim"
)

// Delivery reports one packet reaching its egress.
type Delivery struct {
	Egress  uint32
	Header  packet.Header
	Detour  bool // true if the packet travelled via an authority switch
	Latency time.Duration
}

// Cluster is a running wire-mode DIFANE deployment.
type Cluster struct {
	cfg    ClusterConfig
	assign core.Assignment
	// failover holds, per partition, the ordered authority hosts an
	// ingress switch walks when the current target is dead.
	failover [][]uint32

	switches map[uint32]*node
	// Deliveries receives every packet that reaches an egress.
	Deliveries chan Delivery

	dropped   atomic.Uint64
	injected  atomic.Uint64
	completed atomic.Uint64

	mMu sync.Mutex
	m   core.Measurements

	// pendMu guards pending: per authority switch, the send time of the
	// oldest redirect its data plane has not yet acknowledged (by
	// processing a redirected packet). The failure detector treats a stale
	// entry as a dead authority even when its control plane still echoes
	// heartbeats.
	pendMu  sync.Mutex
	pending map[uint32]time.Time

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	trans  transport

	// epoch is the controller's fencing token. Every FlowMod the
	// controller sends is stamped with it; switches reject installs whose
	// epoch is older than the highest they have accepted, so a dead
	// controller's straggling writes cannot clobber its successor's.
	epoch atomic.Uint64
	// ctrlDown simulates a controller crash (KillController): switches
	// keep serving from cached and authority rules, buffer
	// controller-bound events, and drain them on RestoreController.
	ctrlDown atomic.Bool

	closed    atomic.Bool
	closeOnce sync.Once
}

// node is one switch goroutine with its tables, data queue, and control
// connection.
type node struct {
	id uint32
	mu sync.Mutex
	sw *switchsim.Switch

	auths []*core.Authority

	data chan dataFrame

	// connMu guards the current control-connection pair. ctrl is the
	// switch side and ctrlPeer the controller side; the connection manager
	// replaces both on reconnect. Cache installs from authority switches
	// travel switch → controller → target ingress switch, as in the
	// paper's prototype.
	connMu   sync.Mutex
	ctrl     net.Conn
	ctrlPeer net.Conn

	// replies carries barrier/stats replies back to controller-side
	// callers (Barrier, Stats).
	replies chan proto.Message

	// done is closed by KillSwitch: the node's goroutines stop, simulating
	// a crashed switch.
	done     chan struct{}
	killOnce sync.Once

	killed      atomic.Bool
	alive       atomic.Bool  // the failure detector's current verdict
	partitioned atomic.Bool  // control-plane partition fault injected
	ctrlDelay   atomic.Int64 // injected per-control-write delay, ns
	lastBeat    atomic.Int64 // unix nanos of the last heartbeat echo
	deadAt      atomic.Int64 // unix nanos of the last death, for holddown

	// epoch is the switch's install fence: the highest epoch it has
	// accepted a fenced FlowMod under. Epoch-0 FlowMods (data-plane cache
	// installs) bypass the fence.
	epoch atomic.Uint64
	// reportedEpoch is the last fence this switch reported upstream in an
	// EpochReport (after rejecting a stale install).
	reportedEpoch atomic.Uint64
	// lastProbe is when this switch last saw a controller heartbeat — its
	// side of outage detection (the controller watches lastBeat instead).
	lastProbe atomic.Int64
	// peakQueue tracks the high-water mark of the data queue.
	peakQueue atomic.Int64

	// outbox buffers controller-bound events while the controller is
	// unreachable; it drains when heartbeats resume.
	outbox chan proto.Message

	// redirectTB / installTB shed miss-storm overload (nil = unlimited).
	redirectTB *metrics.TokenBucket
	installTB  *metrics.TokenBucket
}

type dataFrame struct {
	buf      []byte
	size     int
	injected time.Time
	detour   bool
}

// NewCluster builds and starts a cluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	return NewClusterContext(context.Background(), cfg)
}

// NewClusterContext is NewCluster with a caller-controlled lifetime: when
// ctx is cancelled the cluster shuts down as if Close had been called
// (without the drain grace period).
func NewClusterContext(ctx context.Context, cfg ClusterConfig) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	parts := core.BuildPartitions(cfg.Policy, cfg.Partition)
	assign, err := core.Assign(parts, cfg.Authorities)
	if err != nil {
		return nil, err
	}

	cctx, cancel := context.WithCancel(ctx)
	c := &Cluster{
		cfg:        cfg,
		assign:     assign,
		failover:   make([][]uint32, len(assign.Partitions)),
		switches:   make(map[uint32]*node),
		Deliveries: make(chan Delivery, cfg.QueueDepth),
		pending:    make(map[uint32]time.Time),
		ctx:        cctx,
		cancel:     cancel,
	}
	for i := range assign.Partitions {
		c.failover[i] = assign.FailoverList(i)
	}
	switch {
	case cfg.trans != nil:
		c.trans = cfg.trans
	case cfg.UseTCP:
		t, err := newTCPTransport()
		if err != nil {
			cancel()
			return nil, err
		}
		c.trans = t
	default:
		c.trans = pipeTransport{}
	}
	now := time.Now()
	for _, id := range cfg.Switches {
		swConn, ctrlConn, err := c.trans.connect(cctx, id)
		if err != nil {
			cancel()
			c.trans.close()
			for _, n := range c.switches {
				n.ctrl.Close()
				n.ctrlPeer.Close()
			}
			return nil, err
		}
		n := &node{
			id: id,
			sw: switchsim.New(id, switchsim.Config{
				CacheCapacity: cfg.CacheCapacity,
			}),
			data:       make(chan dataFrame, cfg.QueueDepth),
			ctrl:       swConn,
			ctrlPeer:   ctrlConn,
			replies:    make(chan proto.Message, 16),
			done:       make(chan struct{}),
			outbox:     make(chan proto.Message, cfg.Overload.OutageBuffer),
			redirectTB: metrics.NewTokenBucket(cfg.Overload.RedirectRate, cfg.Overload.RedirectBurst),
			installTB:  metrics.NewTokenBucket(cfg.Overload.CacheInstallRate, cfg.Overload.CacheInstallBurst),
		}
		n.alive.Store(true)
		n.lastBeat.Store(now.UnixNano())
		n.lastProbe.Store(now.UnixNano())
		c.switches[id] = n
	}
	c.epoch.Store(1)
	if err := c.installAssignment(); err != nil {
		cancel()
		c.trans.close()
		for _, n := range c.switches {
			n.ctrl.Close()
			n.ctrlPeer.Close()
		}
		return nil, err
	}
	for _, n := range c.switches {
		c.wg.Add(2)
		go c.dataLoop(n)
		go c.ctrlManager(n)
	}
	c.wg.Add(1)
	go c.heartbeatLoop()
	return c, nil
}

// installAssignment pre-installs partition rules everywhere (primary and
// backup redirect rules, the backup at lower priority) and the clipped
// authority rules at both the primary and the backup host of every
// partition — the paper's replicated-authority deployment.
func (c *Cluster) installAssignment() error {
	now := 0.0
	prules := c.assign.PartitionRules(partitionRuleBase)
	for _, n := range c.switches {
		for _, r := range prules {
			mod := proto.FlowMod{Table: proto.TablePartition, Op: proto.OpAdd, Rule: r}
			if err := n.sw.ApplyFlowMod(now, &mod); err != nil {
				return err
			}
		}
	}
	for i, p := range c.assign.Partitions {
		for _, h := range c.failover[i] {
			n, ok := c.switches[h]
			if !ok {
				return fmt.Errorf("wire: authority %d not a cluster switch", h)
			}
			n.auths = append(n.auths, core.NewAuthority(h, p, c.cfg.Strategy))
			for _, r := range p.Rules {
				// Band the partition index into the entry ID so clips of
				// the same policy rule from two partitions hosted here
				// don't replace each other (matches the simulator).
				r.ID = core.AuthorityEntryID(i, r.ID)
				mod := proto.FlowMod{Table: proto.TableAuthority, Op: proto.OpAdd, Rule: r}
				if err := n.sw.ApplyFlowMod(now, &mod); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// partitionRuleBase offsets partition-rule IDs away from policy and cache
// rule IDs (matches the simulator's base).
const partitionRuleBase uint64 = 1 << 50

// Assignment returns the partition→authority assignment the cluster runs.
func (c *Cluster) Assignment() core.Assignment { return c.assign }

// Inject enqueues a packet at the ingress switch's data queue. It returns
// false if the queue is full (backpressure), the switch is unknown or
// killed, or the cluster is closing.
func (c *Cluster) Inject(ingress uint32, h packet.Header, size int) bool {
	if !c.tryInject(ingress, h, size) {
		c.dropped.Add(1)
		return false
	}
	return true
}

// tryInject is Inject without the drop accounting, for callers that retry
// on backpressure and record the loss themselves.
func (c *Cluster) tryInject(ingress uint32, h packet.Header, size int) bool {
	if c.closed.Load() {
		return false
	}
	n, ok := c.switches[ingress]
	if !ok || n.killed.Load() {
		return false
	}
	p := packet.Packet{Header: h, Size: size}
	frame := dataFrame{buf: p.AppendWire(nil), size: size, injected: time.Now()}
	select {
	case n.data <- frame:
		c.injected.Add(1)
		n.noteQueueDepth(int64(len(n.data)))
		return true
	default:
		return false
	}
}

// Dropped returns packets shed by full queues or failed paths.
func (c *Cluster) Dropped() uint64 { return c.dropped.Load() }

// Measurements returns a consistent snapshot of the cluster's recorded
// statistics (latency distributions, delivery and drop counts, failover
// counters). Safe to call while the cluster runs.
func (c *Cluster) Measurements() *core.Measurements {
	c.mMu.Lock()
	defer c.mMu.Unlock()
	return c.m.Snapshot()
}

// dropKind classifies a terminal packet loss for Measurements.
type dropKind int

const (
	dropUnreachable dropKind = iota
	dropHole
	dropQueue
)

// drop records a terminal packet loss.
//
// All terminal paths record their Measurements counter BEFORE bumping
// completed: Deployment.Run returns the moment completed catches up with
// injected, and a caller reading Measurements right after must see the
// packet's counter — otherwise the accounting identity (injected =
// delivered + drops) transiently under-counts.
func (c *Cluster) drop(kind dropKind) {
	c.dropped.Add(1)
	c.mMu.Lock()
	switch kind {
	case dropHole:
		c.m.Drops.Hole++
	case dropQueue:
		c.m.Drops.AuthorityQueue++
	default:
		c.m.Drops.Unreachable++
	}
	c.mMu.Unlock()
	c.completed.Add(1)
}

// shedRedirect records a packet deliberately shed by the ingress redirect
// token bucket under a miss storm.
func (c *Cluster) shedRedirect() {
	c.dropped.Add(1)
	c.mMu.Lock()
	c.m.Drops.RedirectShed++
	c.mMu.Unlock()
	c.completed.Add(1)
}

// policyDrop records an intentional drop (the packet matched a drop rule);
// it is not counted as a loss. firstPacket marks a flow-setup decision
// made at an authority switch.
func (c *Cluster) policyDrop(firstPacket bool) {
	c.mMu.Lock()
	c.m.Drops.Policy++
	if firstPacket {
		c.m.SetupsCompleted++
	}
	c.mMu.Unlock()
	c.completed.Add(1)
}

// dataLoop is a switch's data plane: decode, classify, act.
func (c *Cluster) dataLoop(n *node) {
	defer c.wg.Done()
	var pkt packet.Packet
	for {
		select {
		case <-c.ctx.Done():
			return
		case <-n.done:
			return
		case frame := <-n.data:
			if _, err := pkt.DecodeWire(frame.buf); err != nil {
				c.drop(dropUnreachable)
				continue
			}
			c.handlePacket(n, &pkt, frame)
		}
	}
}

func (c *Cluster) handlePacket(n *node, pkt *packet.Packet, frame dataFrame) {
	// Tunnel termination: a packet encapsulated to this switch is delivered.
	if e := pkt.Encap; e != nil && e.Reason == packet.EncapTunnel && e.Target == n.id {
		c.deliver(n.id, pkt, frame)
		return
	}
	// Redirected packet arriving at an authority switch.
	if e := pkt.Encap; e != nil && e.Reason == packet.EncapRedirect && e.Target == n.id {
		c.authorityHandle(n, pkt, frame)
		return
	}
	k := pkt.Header.Key()
	n.mu.Lock()
	res := n.sw.Classify(nowSec(), k, frame.size)
	n.mu.Unlock()
	if !res.OK {
		c.drop(dropHole)
		return
	}
	switch res.Rule.Action.Kind {
	case flowspace.ActDrop:
		// Policy drop at the ingress (cached decision): intentional.
		c.policyDrop(false)
	case flowspace.ActForward:
		c.tunnelTo(res.Rule.Action.Arg, n.id, pkt, frame)
	case flowspace.ActRedirect:
		// Miss-storm protection: an ingress over its redirect budget sheds
		// the packet here, in its own data plane, instead of piling onto
		// the authority switch's queue.
		if !n.redirectTB.Allow() {
			c.shedRedirect()
			return
		}
		target := res.Rule.Action.Arg
		if !c.nodeUsable(target) {
			// The failure detector marked the target dead: fail over to
			// the backup locally, in the data plane, without a controller
			// round trip.
			next, ok := c.failoverLocal(n, res.Rule, target)
			if !ok {
				c.drop(dropUnreachable)
				return
			}
			target = next
		}
		frame.detour = true
		q := pkt.Clone()
		q.Encapsulate(packet.EncapRedirect, n.id, target)
		c.notePending(target)
		c.forwardFrame(target, q, frame)
	default:
		c.drop(dropHole)
	}
}

// authorityHandle runs the partition logic for a redirected packet and
// sends the cache install back to the ingress switch over its control
// connection.
func (c *Cluster) authorityHandle(n *node, pkt *packet.Packet, frame dataFrame) {
	// Processing a redirected packet is the data-plane liveness signal the
	// redirect-timeout detector watches for.
	c.clearPending(n.id)
	e := pkt.Decapsulate()
	k := pkt.Header.Key()
	var auth *core.Authority
	n.mu.Lock()
	for _, a := range n.auths {
		if a.Partition.Region.Matches(k) {
			auth = a
			break
		}
	}
	var res core.MissResult
	if auth != nil {
		res = auth.HandleMiss(k)
	}
	n.mu.Unlock()
	if auth == nil || !res.OK {
		c.drop(dropHole)
		return
	}
	if len(res.CacheMods) > 0 {
		// Control-plane half of miss-storm protection: an authority over
		// its install budget suppresses the cache install. The packet still
		// forwards below, so the cost is future redirects, not reachability.
		if !n.installTB.Allow() {
			c.mMu.Lock()
			c.m.CacheInstallsShed++
			c.mMu.Unlock()
		} else {
			install := &proto.CacheInstall{Ingress: e.Ingress, Rules: res.CacheMods}
			// The authority switch writes on its switch end; the controller
			// relay reads the other end and forwards to the ingress switch.
			go func() { _ = c.writeToController(n, install) }()
		}
	}
	switch res.Rule.Action.Kind {
	case flowspace.ActDrop:
		// Policy drop at the authority: a completed (negative) flow setup.
		c.policyDrop(true)
	case flowspace.ActForward:
		c.tunnelTo(res.Rule.Action.Arg, n.id, pkt, frame)
	default:
		c.drop(dropHole)
	}
}

// failoverLocal re-points a partition rule at the next live authority in
// the partition's failover list — the ingress-side half of DIFANE's
// failover, requiring no controller involvement because backup authority
// rules are pre-installed.
func (c *Cluster) failoverLocal(n *node, r flowspace.Rule, dead uint32) (uint32, bool) {
	idx, ok := c.assign.PartitionOfRuleID(partitionRuleBase, r.ID)
	if !ok {
		return 0, false
	}
	next := uint32(0)
	found := false
	for _, h := range c.failover[idx] {
		if h != dead && c.nodeUsable(h) {
			next, found = h, true
			break
		}
	}
	if !found {
		return 0, false
	}
	nr := r
	nr.Action = flowspace.Action{Kind: flowspace.ActRedirect, Arg: next}
	mod := proto.FlowMod{Table: proto.TablePartition, Op: proto.OpAdd, Rule: nr}
	n.mu.Lock()
	_ = n.sw.ApplyFlowMod(nowSec(), &mod)
	n.mu.Unlock()
	c.mMu.Lock()
	c.m.FailoversLocal++
	c.mMu.Unlock()
	return next, true
}

// nodeUsable reports whether the failure detector currently believes the
// switch can serve traffic.
func (c *Cluster) nodeUsable(id uint32) bool {
	n, ok := c.switches[id]
	return ok && !n.killed.Load() && n.alive.Load()
}

// NodeAlive reports the failure detector's verdict for a switch.
func (c *Cluster) NodeAlive(id uint32) bool { return c.nodeUsable(id) }

// tunnelTo encapsulates the packet toward its egress and forwards it.
func (c *Cluster) tunnelTo(egress, from uint32, pkt *packet.Packet, frame dataFrame) {
	if egress == from {
		c.deliver(from, pkt, frame)
		return
	}
	q := pkt.Clone()
	q.Encapsulate(packet.EncapTunnel, from, egress)
	c.forwardFrame(egress, q, frame)
}

func (c *Cluster) forwardFrame(to uint32, pkt *packet.Packet, frame dataFrame) {
	dst, ok := c.switches[to]
	if !ok {
		c.drop(dropUnreachable)
		return
	}
	if dst.killed.Load() {
		// A killed switch's buffered channel would happily accept the frame,
		// but its pump goroutine is gone: the packet would sit there forever,
		// uncounted — breaking the accounting identity (injected = delivered
		// + drops) and wedging Deployment.Run's completion wait. Account it
		// as unreachable instead, exactly like the simulator's dead-egress
		// path.
		c.drop(dropUnreachable)
		return
	}
	out := dataFrame{buf: pkt.AppendWire(nil), size: frame.size,
		injected: frame.injected, detour: frame.detour}
	select {
	case dst.data <- out:
		dst.noteQueueDepth(int64(len(dst.data)))
	default:
		c.drop(dropQueue)
	}
}

// noteQueueDepth records the data queue's high-water mark.
func (n *node) noteQueueDepth(d int64) {
	for {
		cur := n.peakQueue.Load()
		if d <= cur || n.peakQueue.CompareAndSwap(cur, d) {
			return
		}
	}
}

func (c *Cluster) deliver(at uint32, pkt *packet.Packet, frame dataFrame) {
	lat := time.Since(frame.injected)
	c.mMu.Lock()
	c.m.Delivered++
	if frame.detour {
		c.m.FirstPacketDelay.Add(lat.Seconds())
		c.m.SetupsCompleted++
	} else {
		c.m.LaterPacketDelay.Add(lat.Seconds())
	}
	c.mMu.Unlock()
	d := Delivery{
		Egress:  at,
		Header:  pkt.Header,
		Detour:  frame.detour,
		Latency: lat,
	}
	select {
	case c.Deliveries <- d:
	default:
		// Receiver not draining: drop the notification, not the packet.
	}
	// completed last: once Deployment.Run observes completed == injected,
	// both the Measurements counter and the Delivery notification for this
	// packet are already visible.
	c.completed.Add(1)
}

// conns returns the node's current control-connection pair.
func (n *node) conns() (net.Conn, net.Conn) {
	n.connMu.Lock()
	defer n.connMu.Unlock()
	return n.ctrl, n.ctrlPeer
}

// closeConns closes the node's current control-connection pair, unblocking
// any reader.
func (n *node) closeConns() {
	n.connMu.Lock()
	defer n.connMu.Unlock()
	if n.ctrl != nil {
		n.ctrl.Close()
	}
	if n.ctrlPeer != nil {
		n.ctrlPeer.Close()
	}
}

// ctrlManager owns a node's control-connection lifecycle: it runs one
// reader per side, and when either side fails it tears the session down
// and re-establishes the connection with exponential backoff and jitter.
func (c *Cluster) ctrlManager(n *node) {
	defer c.wg.Done()
	for {
		sw, peer := n.conns()
		fail := make(chan struct{}, 2)
		var session sync.WaitGroup
		session.Add(2)
		go func() {
			defer session.Done()
			c.switchCtrlRead(n, sw)
			fail <- struct{}{}
		}()
		go func() {
			defer session.Done()
			c.relayRead(n, peer)
			fail <- struct{}{}
		}()
		<-fail
		sw.Close()
		peer.Close()
		session.Wait()
		if c.ctx.Err() != nil || n.killed.Load() {
			return
		}
		if !c.reconnect(n) {
			return
		}
	}
}

// reconnect re-establishes a node's control connection: while a partition
// fault is injected it holds and re-checks; otherwise it retries per the
// cluster's RetryPolicy and, when attempts are exhausted, marks the node
// dead so the failover machinery takes over.
func (c *Cluster) reconnect(n *node) bool {
	attempt := 0
	for {
		if c.ctx.Err() != nil || n.killed.Load() {
			return false
		}
		if n.partitioned.Load() || c.ctrlDown.Load() {
			// A severed control link or a dead controller is not a dial
			// failure: hold until the fault is healed, without burning
			// retry attempts.
			if !sleepCtx(c.ctx, c.cfg.Heartbeat.Interval) {
				return false
			}
			continue
		}
		sw, peer, err := c.trans.connect(c.ctx, n.id)
		if err == nil {
			n.connMu.Lock()
			n.ctrl, n.ctrlPeer = sw, peer
			n.connMu.Unlock()
			c.mMu.Lock()
			c.m.ControlReconnects++
			c.mMu.Unlock()
			return true
		}
		attempt++
		if attempt >= c.cfg.Retry.MaxAttempts {
			c.markDead(n)
			return false
		}
		if !sleepCtx(c.ctx, c.cfg.Retry.Backoff(attempt)) {
			return false
		}
	}
}

// switchCtrlRead is the switch side of the control connection: it applies
// commands from the controller, echoes heartbeats, and answers barriers
// and stats requests.
func (c *Cluster) switchCtrlRead(n *node, conn net.Conn) {
	for {
		msg, err := proto.ReadMessage(conn)
		if err != nil {
			return
		}
		switch m := msg.(type) {
		case *proto.FlowMod:
			// Epoch fencing: a fenced install (Epoch != 0) older than the
			// highest epoch this switch has accepted is a straggler from a
			// dead controller — reject it and report the current fence.
			// Epoch-0 installs (data-plane origin) bypass the fence.
			if m.Epoch != 0 && !n.raiseEpoch(m.Epoch) {
				c.mMu.Lock()
				c.m.StaleInstallsRejected++
				c.mMu.Unlock()
				rep := &proto.EpochReport{Node: n.id, Epoch: n.epoch.Load()}
				go func() { _ = c.writeToController(n, rep) }()
				continue
			}
			n.mu.Lock()
			_ = n.sw.ApplyFlowMod(nowSec(), m)
			n.mu.Unlock()
		case *proto.CacheInstall:
			// Relayed from an authority switch via the controller.
			n.mu.Lock()
			for i := range m.Rules {
				_ = n.sw.ApplyFlowMod(nowSec(), &m.Rules[i])
			}
			n.mu.Unlock()
		case *proto.BarrierReq:
			// Replies are written asynchronously: net.Pipe writes block
			// until read, and a reply written inline from this loop could
			// deadlock against a relay writing toward this switch.
			reply := &proto.BarrierReply{XID: m.XID}
			go func() { _ = c.writeToController(n, reply) }()
		case *proto.StatsReq:
			n.mu.Lock()
			pkts, bytes, ok := n.sw.Counters(m.RuleID)
			if !ok {
				// A policy-rule query: aggregate the banded per-partition
				// clips of that rule across the authority table, keeping
				// rule counters transparent to the controller.
				for _, e := range n.sw.Table(proto.TableAuthority).Entries() {
					if core.AuthorityEntryRuleID(e.Rule.ID) == m.RuleID {
						pkts += e.Packets
						bytes += e.Bytes
						ok = true
					}
				}
			}
			n.mu.Unlock()
			reply := &proto.StatsReply{XID: m.XID, Packets: pkts, Bytes: bytes, OK: ok}
			go func() { _ = c.writeToController(n, reply) }()
		case *proto.Heartbeat:
			// A probe is the switch's evidence the controller is alive:
			// stamp it, echo it, and flush anything buffered during an
			// outage now that the path is confirmed.
			n.lastProbe.Store(time.Now().UnixNano())
			hb := m
			go func() { _ = c.writeToController(n, hb) }()
			if len(n.outbox) > 0 {
				go c.drainOutbox(n)
			}
		}
	}
}

// raiseEpoch accepts epoch e into the switch's fence if it is not stale,
// monotonically raising the fence. Returns false for a stale epoch.
func (n *node) raiseEpoch(e uint64) bool {
	for {
		cur := n.epoch.Load()
		if e < cur {
			return false
		}
		if e == cur || n.epoch.CompareAndSwap(cur, e) {
			return true
		}
	}
}

// relayRead is the controller side: it reads what the switch sends
// upstream (cache installs, heartbeat echoes, replies) and either relays
// or hands the message to a waiting caller.
func (c *Cluster) relayRead(n *node, conn net.Conn) {
	for {
		msg, err := proto.ReadMessage(conn)
		if err != nil {
			return
		}
		switch m := msg.(type) {
		case *proto.CacheInstall:
			c.clearPending(n.id)
			dst, ok := c.switches[m.Ingress]
			if !ok {
				continue
			}
			// Asynchronous for the same deadlock-avoidance reason as the
			// switch-side replies.
			install := m
			go func() { _ = c.writeToSwitch(dst, install) }()
		case *proto.Heartbeat:
			n.lastBeat.Store(time.Now().UnixNano())
		case *proto.EpochReport:
			// A switch rejected a stale install and is telling us its
			// current fence — surfaced in Status for the operator.
			n.reportedEpoch.Store(m.Epoch)
		case *proto.BarrierReply, *proto.StatsReply:
			select {
			case n.replies <- m:
			default:
			}
		}
	}
}

// errPartitioned reports a control write suppressed by an injected
// control-plane partition.
var errPartitioned = fmt.Errorf("wire: control plane partitioned")

// writeToSwitch writes a controller→switch control message, honouring
// injected delay and partition faults.
func (c *Cluster) writeToSwitch(n *node, msg proto.Message) error {
	return c.writeControl(n, msg, false)
}

// writeToController writes a switch→controller control message, honouring
// injected delay and partition faults. While the controller is unreachable
// (crashed, or silent past the heartbeat threshold) cache installs are
// parked in the switch's bounded outbox instead of being lost; they drain
// when heartbeats resume.
func (c *Cluster) writeToController(n *node, msg proto.Message) error {
	if _, ok := msg.(*proto.CacheInstall); ok && c.controllerUnreachable(n) {
		c.bufferEvent(n, msg)
		return nil
	}
	return c.writeControl(n, msg, true)
}

// controllerUnreachable is the switch-side outage verdict: either the
// controller was explicitly killed, or its heartbeat probes have been
// silent past the miss threshold.
func (c *Cluster) controllerUnreachable(n *node) bool {
	if c.ctrlDown.Load() {
		return true
	}
	hb := c.cfg.Heartbeat
	silence := time.Since(time.Unix(0, n.lastProbe.Load()))
	return silence > time.Duration(hb.MissThreshold)*hb.Interval
}

// bufferEvent parks a controller-bound event in the switch's bounded
// outbox, shedding (and counting) on overflow.
func (c *Cluster) bufferEvent(n *node, msg proto.Message) {
	select {
	case n.outbox <- msg:
		c.mMu.Lock()
		c.m.OutageBuffered++
		c.mMu.Unlock()
	default:
		c.mMu.Lock()
		c.m.OutageDropped++
		c.mMu.Unlock()
	}
}

// drainOutbox replays a switch's buffered events toward the controller in
// order, stopping at the first failure (the next heartbeat retriggers it).
func (c *Cluster) drainOutbox(n *node) {
	for {
		select {
		case msg := <-n.outbox:
			if err := c.writeControl(n, msg, true); err != nil {
				// Park it again without recounting it as newly buffered.
				select {
				case n.outbox <- msg:
				default:
					c.mMu.Lock()
					c.m.OutageDropped++
					c.mMu.Unlock()
				}
				return
			}
			c.mMu.Lock()
			c.m.OutageDrained++
			c.mMu.Unlock()
		default:
			return
		}
	}
}

func (c *Cluster) writeControl(n *node, msg proto.Message, switchSide bool) error {
	if n.partitioned.Load() {
		return errPartitioned
	}
	if d := time.Duration(n.ctrlDelay.Load()); d > 0 {
		if !sleepCtx(c.ctx, d) {
			return c.ctx.Err()
		}
	}
	ctrl, peer := n.conns()
	conn := peer
	if switchSide {
		conn = ctrl
	}
	if conn == nil {
		return fmt.Errorf("wire: no control connection for node %d", n.id)
	}
	return proto.WriteMessage(conn, msg)
}

// InstallRule sends a FlowMod to a switch over its control connection,
// retrying per the cluster's RetryPolicy with exponential backoff. The mod
// is stamped with the controller's current fencing epoch unless the caller
// set one explicitly (a stale explicit epoch is how tests provoke — and how
// a zombie controller would suffer — fencing rejections).
func (c *Cluster) InstallRule(sw uint32, mod proto.FlowMod) error {
	n, ok := c.switches[sw]
	if !ok {
		return fmt.Errorf("wire: no switch %d", sw)
	}
	return c.installRule(n, &mod)
}

func (c *Cluster) installRule(n *node, mod *proto.FlowMod) error {
	if mod.Epoch == 0 {
		mod.Epoch = c.epoch.Load()
	}
	var err error
	for attempt := 1; ; attempt++ {
		err = c.writeToSwitch(n, mod)
		if err == nil {
			return nil
		}
		if attempt >= c.cfg.Retry.MaxAttempts {
			return err
		}
		if !sleepCtx(c.ctx, c.cfg.Retry.Backoff(attempt)) {
			return c.ctx.Err()
		}
	}
}

// Barrier round-trips a barrier through a switch's control connection,
// fencing previously sent control messages.
func (c *Cluster) Barrier(sw uint32, xid uint32) error {
	n, ok := c.switches[sw]
	if !ok {
		return fmt.Errorf("wire: no switch %d", sw)
	}
	if err := c.writeToSwitch(n, &proto.BarrierReq{XID: xid}); err != nil {
		return err
	}
	select {
	case msg := <-n.replies:
		if rep, ok := msg.(*proto.BarrierReply); !ok || rep.XID != xid {
			return fmt.Errorf("wire: unexpected barrier reply %v", msg)
		}
		return nil
	case <-time.After(5 * time.Second):
		return fmt.Errorf("wire: barrier timeout")
	case <-c.ctx.Done():
		return c.ctx.Err()
	}
}

// Stats fetches a rule's counters from a switch over the control plane.
func (c *Cluster) Stats(sw uint32, ruleID uint64, xid uint32) (*proto.StatsReply, error) {
	n, ok := c.switches[sw]
	if !ok {
		return nil, fmt.Errorf("wire: no switch %d", sw)
	}
	if err := c.writeToSwitch(n, &proto.StatsReq{XID: xid, RuleID: ruleID}); err != nil {
		return nil, err
	}
	select {
	case msg := <-n.replies:
		rep, ok := msg.(*proto.StatsReply)
		if !ok || rep.XID != xid {
			return nil, fmt.Errorf("wire: unexpected stats reply %v", msg)
		}
		return rep, nil
	case <-time.After(5 * time.Second):
		return nil, fmt.Errorf("wire: stats timeout")
	case <-c.ctx.Done():
		return nil, c.ctx.Err()
	}
}

// CacheLen returns the number of cache entries at a switch.
func (c *Cluster) CacheLen(sw uint32) int {
	n, ok := c.switches[sw]
	if !ok {
		return 0
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.sw.Table(proto.TableCache).Len()
}

// drainTimeout bounds how long Close waits for in-flight frames to reach a
// terminal point before tearing the cluster down.
const drainTimeout = time.Second

// Close gracefully stops the cluster: it stops accepting injections,
// drains in-flight data frames (bounded by drainTimeout), then shuts every
// goroutine down and waits for them. Close is idempotent.
func (c *Cluster) Close() error {
	c.closeOnce.Do(func() {
		c.closed.Store(true)
		deadline := time.Now().Add(drainTimeout)
		for time.Now().Before(deadline) && !c.drained() {
			time.Sleep(time.Millisecond)
		}
		c.cancel()
		c.trans.close()
		for _, n := range c.switches {
			n.closeConns()
		}
		c.wg.Wait()
	})
	return nil
}

// drained reports whether every live switch's data queue is empty.
func (c *Cluster) drained() bool {
	for _, n := range c.switches {
		if n.killed.Load() {
			continue
		}
		if len(n.data) > 0 {
			return false
		}
	}
	return true
}

// sleepCtx sleeps d, returning false early if ctx is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

var start = time.Now()

// nowSec is monotonic seconds since cluster package init, the time base
// the TCAM tables use in wire mode.
func nowSec() float64 { return time.Since(start).Seconds() }
