package flowspace

import (
	"math/rand"
	"testing"
)

// Table-driven edge cases for the clipping/overlap machinery the partition
// builder and authority cover generation lean on: adjacent (touching but
// disjoint) ranges, zero-width regions, and full-wildcard interactions.

func TestAdjacentPrefixesDisjoint(t *testing.T) {
	cases := []struct {
		name string
		a, b Match
	}{
		{"sibling /25s",
			MatchAll().WithPrefix(FIPDst, 0x0A000000, 25),
			MatchAll().WithPrefix(FIPDst, 0x0A000080, 25)},
		{"sibling /1s",
			MatchAll().WithPrefix(FIPSrc, 0, 1),
			MatchAll().WithPrefix(FIPSrc, 0x80000000, 1)},
		{"adjacent exact ports",
			MatchAll().WithExact(FTPDst, 79),
			MatchAll().WithExact(FTPDst, 80)},
		{"last of low /24, first of high /24",
			MatchAll().WithExact(FIPDst, 0x0A0000FF),
			MatchAll().WithExact(FIPDst, 0x0A000100)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.a.Overlaps(tc.b) || tc.b.Overlaps(tc.a) {
				t.Fatalf("%v and %v are adjacent, not overlapping", tc.a, tc.b)
			}
			if _, ok := tc.a.Intersect(tc.b); ok {
				t.Fatalf("intersection of adjacent regions %v ∩ %v must be empty", tc.a, tc.b)
			}
			if tc.a.Contains(tc.b) || tc.b.Contains(tc.a) {
				t.Fatal("adjacent regions must not contain each other")
			}
			// Subtracting an adjacent region is a no-op cover-wise: every key
			// of a stays covered by the difference.
			rng := rand.New(rand.NewSource(1))
			diff := tc.a.Subtract(tc.b)
			for i := 0; i < 50; i++ {
				k := randKeyIn(rng, tc.a)
				hit := false
				for _, d := range diff {
					if d.Matches(k) {
						hit = true
					}
				}
				if !hit {
					t.Fatalf("key %v of %v lost by subtracting adjacent %v", k, tc.a, tc.b)
				}
			}
		})
	}
}

// A zero-width region — every relevant field pinned exactly — behaves as a
// single point: it contains nothing but itself and intersecting it with
// anything that matches the point returns the point back.
func TestZeroWidthRegion(t *testing.T) {
	point := MatchAll().
		WithExact(FIPSrc, 0x0A000001).
		WithExact(FIPDst, 0x0A000002).
		WithExact(FTPDst, 443)
	wider := MatchAll().WithPrefix(FIPSrc, 0x0A000000, 24)

	got, ok := point.Intersect(wider)
	if !ok {
		t.Fatal("a containing region must intersect the point")
	}
	if got != point {
		t.Fatalf("point ∩ wider = %v, want the point %v back", got, point)
	}
	if !wider.Contains(point) || point.Contains(wider) {
		t.Fatal("containment between point and wider region inverted")
	}
	// Subtracting the point from itself leaves nothing.
	if diff := point.Subtract(point); len(diff) != 0 {
		t.Fatalf("point \\ point = %v, want empty", diff)
	}
	// Subtracting the point from the wider region must keep every key of
	// the region except the point itself.
	rng := rand.New(rand.NewSource(2))
	diff := wider.Subtract(point)
	var pk Key
	pk[FIPSrc], pk[FIPDst], pk[FTPDst] = 0x0A000001, 0x0A000002, 443
	for _, d := range diff {
		if d.Matches(pk) {
			t.Fatalf("difference piece %v still matches the subtracted point", d)
		}
	}
	for i := 0; i < 100; i++ {
		k := randKeyIn(rng, wider)
		if k == pk {
			continue
		}
		hit := false
		for _, d := range diff {
			if d.Matches(k) {
				hit = true
			}
		}
		if !hit && !point.Matches(k) {
			t.Fatalf("key %v lost subtracting a point from %v", k, wider)
		}
	}
}

func TestFullWildcardEdges(t *testing.T) {
	all := MatchAll()
	narrow := MatchAll().WithExact(FTPDst, 80)

	if got := all.Subtract(all); len(got) != 0 {
		t.Fatalf("* \\ * = %v, want empty", got)
	}
	if got := narrow.Subtract(all); len(got) != 0 {
		t.Fatalf("narrow \\ * = %v, want empty", got)
	}
	// * minus a narrow region: disjoint pieces that jointly cover
	// everything except the region.
	diff := all.Subtract(narrow)
	if len(diff) == 0 {
		t.Fatal("* \\ narrow must be non-empty")
	}
	for i := range diff {
		if diff[i].Overlaps(narrow) {
			t.Fatalf("difference piece %v overlaps the subtracted region", diff[i])
		}
		for j := i + 1; j < len(diff); j++ {
			if diff[i].Overlaps(diff[j]) {
				t.Fatalf("difference pieces %v and %v overlap", diff[i], diff[j])
			}
		}
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		k := randKey(rng)
		inDiff := false
		for _, d := range diff {
			if d.Matches(k) {
				inDiff = true
			}
		}
		if inDiff == narrow.Matches(k) {
			t.Fatalf("key %v: in-difference=%v must be the complement of in-region=%v",
				k, inDiff, narrow.Matches(k))
		}
	}
	// Intersect with * is identity in both directions.
	if got, ok := all.Intersect(narrow); !ok || got != narrow {
		t.Fatalf("* ∩ narrow = %v ok=%v, want %v", got, ok, narrow)
	}
	if got, ok := narrow.Intersect(all); !ok || got != narrow {
		t.Fatalf("narrow ∩ * = %v ok=%v, want %v", got, ok, narrow)
	}
}

// CoverFor at region boundaries: a cover clipped to a partition region must
// never leak across an adjacent sibling region, even when the winning rule
// spans both.
func TestCoverForStaysInsideAdjacentRegions(t *testing.T) {
	// One rule spanning 10.0.0.0/24, partitioned into sibling /25 regions.
	rs := []Rule{
		aclRule(1, 10, MatchAll().WithPrefix(FIPDst, 0x0A000000, 24), ActForward),
		aclRule(2, 0, MatchAll(), ActDrop),
	}
	SortRules(rs)
	low := MatchAll().WithPrefix(FIPDst, 0x0A000000, 25)
	high := MatchAll().WithPrefix(FIPDst, 0x0A000080, 25)

	var k Key
	k[FIPDst] = 0x0A000001 // inside low, outside high
	cover, ok := CoverFor(rs, 0, low, k)
	if !ok {
		t.Fatal("cover inside the low region must exist")
	}
	if !cover.Matches(k) {
		t.Fatalf("cover %v must match the triggering key", cover)
	}
	if cover.Overlaps(high) {
		t.Fatalf("cover %v leaks into the adjacent region %v", cover, high)
	}
	if !low.Contains(cover) {
		t.Fatalf("cover %v not contained in its region %v", cover, low)
	}

	// Same key against the wrong (adjacent) region: no cover.
	if _, ok := CoverFor(rs, 0, high, k); ok {
		t.Fatal("a key outside the clip region must produce no cover")
	}
}

// CoverFor with a zero-width region degenerates to a single-key microflow
// rule — the smallest cache entry the authority can hand out.
func TestCoverForZeroWidthRegion(t *testing.T) {
	rs := []Rule{
		aclRule(1, 10, MatchAll().WithExact(FTPDst, 443), ActForward),
		aclRule(2, 0, MatchAll(), ActDrop),
	}
	SortRules(rs)
	var k Key
	k[FIPSrc], k[FIPDst], k[FTPDst] = 7, 9, 443
	region := MatchAll().
		WithExact(FIPSrc, 7).
		WithExact(FIPDst, 9).
		WithExact(FTPDst, 443)
	cover, ok := CoverFor(rs, 0, region, k)
	if !ok {
		t.Fatal("point region containing the key must yield a cover")
	}
	if cover != region {
		t.Fatalf("cover of a point region = %v, want the point %v", cover, region)
	}
	// And a point region the key misses yields nothing.
	var miss Key
	miss[FIPSrc], miss[FIPDst], miss[FTPDst] = 8, 9, 443
	if _, ok := CoverFor(rs, 0, region, miss); ok {
		t.Fatal("key outside a point region must produce no cover")
	}
}
