package subscriber

import (
	"math"
	"reflect"
	"testing"

	"difane/internal/flowspace"
)

func engineFixture(cfg Config, phases []Phase) *Engine {
	s := Setup{Seed: 7}
	return NewEngine(s.Spec(), cfg, phases)
}

func TestEngineDeterministic(t *testing.T) {
	cfg := Config{
		Subscribers: 1 << 16, ArrivalRate: 400, MeanSessionLife: 1,
		PacketRate: 4, MobilityRate: 20, DiurnalAmp: 0.4, Seed: 42,
	}
	phases := DefaultScript(4)
	a := engineFixture(cfg, phases)
	b := engineFixture(cfg, phases)
	for !a.Done() && !b.Done() {
		ta := a.Advance(0.05)
		tb := b.Advance(0.05)
		if !reflect.DeepEqual(ta.Batch, tb.Batch) {
			t.Fatalf("batches diverge at t=%.2f: %d vs %d packets",
				ta.Now, len(ta.Batch), len(tb.Batch))
		}
		if ta.Arrivals != tb.Arrivals || ta.Moves != tb.Moves ||
			ta.Departures != tb.Departures || ta.Active != tb.Active {
			t.Fatalf("session events diverge at t=%.2f", ta.Now)
		}
		if ta.Done {
			break
		}
	}
	if a.TotalPackets() != b.TotalPackets() || a.TotalSessions() != b.TotalSessions() {
		t.Fatalf("cumulative counters diverge: %d/%d packets, %d/%d sessions",
			a.TotalPackets(), b.TotalPackets(), a.TotalSessions(), b.TotalSessions())
	}
	if a.TotalPackets() == 0 || a.TotalSessions() == 0 {
		t.Fatal("engine generated nothing")
	}
}

func TestEnginePhaseScript(t *testing.T) {
	e := engineFixture(Config{ArrivalRate: 100, Seed: 1}, []Phase{
		Steady(1), ChurnSpike(1, 3), FlashCrowd(1, 2, 8),
	})
	seen := map[string]bool{}
	changes := 0
	for !e.Done() {
		tick := e.Advance(0.1)
		if tick.Done {
			break
		}
		seen[tick.Phase] = true
		if tick.PhaseChanged {
			changes++
		}
	}
	for _, want := range []string{"steady", "churn-spike", "flash-crowd"} {
		if !seen[want] {
			t.Errorf("phase %q never ran (saw %v)", want, seen)
		}
	}
	if changes < 2 {
		t.Errorf("expected ≥2 phase transitions, saw %d", changes)
	}
	if got := e.Now(); math.Abs(got-3) > 0.2 {
		t.Errorf("script of 3 modeled seconds ended at t=%.2f", got)
	}
}

func TestEngineZipfSkew(t *testing.T) {
	// With alpha well above 1, a small head of subscribers should carry a
	// disproportionate share of sessions.
	e := engineFixture(Config{
		Subscribers: 1 << 20, ZipfAlpha: 1.4, ArrivalRate: 5000,
		MeanSessionLife: 0.1, Seed: 3,
	}, []Phase{Steady(4)})
	counts := map[uint64]int{}
	total := 0
	for !e.Done() {
		tick := e.Advance(0.05)
		if tick.Done {
			break
		}
		for _, p := range tick.Batch {
			counts[hashKey(p.Key)]++
			total++
		}
	}
	if total < 1000 {
		t.Fatalf("too few packets to measure skew: %d", total)
	}
	top := 0
	for _, c := range counts {
		if c > top {
			top = c
		}
	}
	// Under a uniform draw over 2^20 subscribers the busiest flow would
	// see a handful of packets; Zipf 1.4 concentrates a large fraction on
	// the head.
	if frac := float64(top) / float64(total); frac < 0.05 {
		t.Errorf("no popularity skew: busiest flow carried %.2f%% of %d packets",
			100*frac, total)
	}
}

func hashKey(k flowspace.Key) uint64 {
	h := uint64(0)
	for _, v := range k {
		h = splitmix64(h ^ v)
	}
	return h
}

func TestEngineMobilityMovesIngress(t *testing.T) {
	e := engineFixture(Config{
		ArrivalRate: 200, MeanSessionLife: 5, MobilityRate: 50, Seed: 9,
	}, []Phase{Steady(4)})
	ingByKey := map[uint64]map[uint32]bool{}
	for !e.Done() {
		tick := e.Advance(0.05)
		if tick.Done {
			break
		}
		for _, p := range tick.Batch {
			k := hashKey(p.Key)
			if ingByKey[k] == nil {
				ingByKey[k] = map[uint32]bool{}
			}
			ingByKey[k][p.Ingress] = true
		}
	}
	if e.TotalMoves() == 0 {
		t.Fatal("no mobility events with MobilityRate=50")
	}
	moved := 0
	for _, set := range ingByKey {
		if len(set) > 1 {
			moved++
		}
	}
	if moved == 0 {
		t.Error("no flow was ever seen from two ingresses despite moves")
	}
}

func TestEngineFlashCrowdConcentration(t *testing.T) {
	hot := 8
	e := engineFixture(Config{ArrivalRate: 2000, Seed: 5},
		[]Phase{FlashCrowd(2, 1, hot)})
	region := e.FlashRegion()
	keys := map[uint64]bool{}
	n := 0
	for !e.Done() {
		tick := e.Advance(0.05)
		if tick.Done {
			break
		}
		for _, p := range tick.Batch {
			if !region.Matches(p.Key) {
				t.Fatalf("flash-crowd packet outside the hot region: %v", p.Key)
			}
			keys[hashKey(p.Key)] = true
			n++
		}
	}
	if n < 100 {
		t.Fatalf("flash crowd too small to judge: %d packets", n)
	}
	if len(keys) > hot {
		t.Errorf("flash crowd used %d distinct keys, want ≤ %d", len(keys), hot)
	}
}

func TestEngineScanNeverRepeats(t *testing.T) {
	e := engineFixture(Config{ArrivalRate: 1000, Seed: 11},
		[]Phase{Scan(2, 1)})
	arrivals := map[uint64]bool{}
	dups := 0
	for !e.Done() {
		tick := e.Advance(0.05)
		if tick.Done {
			break
		}
		for _, p := range tick.Batch {
			if p.Seq != 0 {
				continue // only first packets carry fresh scan keys
			}
			k := hashKey(p.Key)
			if arrivals[k] {
				dups++
			}
			arrivals[k] = true
		}
	}
	if len(arrivals) < 100 {
		t.Fatalf("scan produced too few sessions: %d", len(arrivals))
	}
	// splitmix64 collisions across a few thousand draws are ~0; any
	// repeats mean the scan is reusing keys and no longer thrashes.
	if dups > 0 {
		t.Errorf("scan repeated %d of %d keys", dups, len(arrivals))
	}
}

func TestEngineMaxActiveSuppression(t *testing.T) {
	e := engineFixture(Config{
		ArrivalRate: 2000, MeanSessionLife: 100, MaxActive: 50, Seed: 13,
	}, []Phase{Steady(1)})
	for !e.Done() {
		if tick := e.Advance(0.05); tick.Done {
			break
		}
	}
	if e.Active() > 50 {
		t.Errorf("active %d exceeds MaxActive 50", e.Active())
	}
	if e.TotalSuppressed() == 0 {
		t.Error("expected suppressed arrivals at 2000/s against MaxActive=50")
	}
}

func TestEngineDiurnalSwing(t *testing.T) {
	// One full diurnal cycle with a strong amplitude: the peak half-period
	// should admit measurably more sessions than the trough half-period.
	e := engineFixture(Config{
		ArrivalRate: 500, MeanSessionLife: 0.2,
		DiurnalAmp: 0.9, DiurnalPeriod: 4, Seed: 17,
	}, []Phase{Steady(4)})
	peak, trough := 0, 0
	for !e.Done() {
		tick := e.Advance(0.05)
		if tick.Done {
			break
		}
		if tick.Now <= 2 {
			peak += tick.Arrivals
		} else {
			trough += tick.Arrivals
		}
	}
	if peak <= trough {
		t.Errorf("diurnal peak half (%d arrivals) not above trough half (%d)",
			peak, trough)
	}
}
