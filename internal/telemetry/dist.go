package telemetry

import "difane/internal/metrics"

// SummaryQuantiles are the quantile points summaries export.
var SummaryQuantiles = []float64{0.5, 0.9, 0.99}

// DistSummary converts a metrics.Dist into the registry's summary shape.
// Dist queries are internally synchronized, so this is safe against a
// live writer.
func DistSummary(d *metrics.Dist) SummaryView {
	v := SummaryView{Count: uint64(d.N()), Sum: d.Sum()}
	if v.Count == 0 {
		return v
	}
	for _, q := range SummaryQuantiles {
		v.Quantiles = append(v.Quantiles, [2]float64{q, d.Quantile(q)})
	}
	return v
}
