//go:build race

package scencheck

// raceEnabled steers test defaults: the race detector slows the
// differential sweep ~10×, so TestDifferential trims its default seed
// count to stay inside go test's per-package timeout. An explicit
// -seeds flag still wins (CI's differential job runs -race -seeds 32
// -timeout 20m).
const raceEnabled = true
