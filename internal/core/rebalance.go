package core

import (
	"sort"

	"difane/internal/topo"
)

// PartitionLoad is the observed miss traffic of one partition.
type PartitionLoad struct {
	Partition int
	Misses    uint64
}

// MeasurePartitionLoad attributes handled misses to partitions by summing
// each partition's replica handlers. Replicas of the same partition serve
// disjoint ingress sets (nearest-replica), so the sum is the partition's
// total miss load.
func (n *Network) MeasurePartitionLoad() []PartitionLoad {
	loads := make([]PartitionLoad, len(n.Assignment.Partitions))
	for i := range loads {
		loads[i].Partition = i
	}
	for _, auths := range n.authorityAt {
		for _, a := range auths {
			// Identify which partition this handler serves by region.
			for i := range n.Assignment.Partitions {
				if n.Assignment.Partitions[i].Region == a.Partition.Region {
					loads[i].Misses += a.Misses
					break
				}
			}
		}
	}
	return loads
}

// AuthorityMissLoad sums handled misses per authority switch.
func (n *Network) AuthorityMissLoad() map[uint32]uint64 {
	out := make(map[uint32]uint64)
	for host, auths := range n.authorityAt {
		for _, a := range auths {
			out[host] += a.Misses
		}
	}
	return out
}

// RebalanceByLoad reassigns partitions to authority switches using the
// miss traffic observed so far instead of rule counts: partitions are
// placed largest-measured-load first onto the authority with the least
// accumulated load. This is the controller's answer to the skew that
// rule-count balancing cannot see — e.g. when nearest-replica redirection
// concentrates traffic on one replica. Cache state survives (cached rules
// are ingress-local and semantically exact regardless of which authority
// serves future misses); only partition rules and authority tables are
// rewritten.
//
// Returns the number of partitions whose primary moved.
func (c *Controller) RebalanceByLoad() int {
	n := c.net
	loads := n.MeasurePartitionLoad()
	auths := make([]uint32, 0, len(n.authSt))
	for id := range n.authSt {
		if n.Topo.NodeUp(topo.NodeID(id)) {
			auths = append(auths, id)
		}
	}
	if len(auths) == 0 {
		return 0
	}
	sortU32(auths)

	// Order partitions by measured load, heaviest first.
	order := make([]int, len(loads))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		la, lb := loads[order[a]].Misses, loads[order[b]].Misses
		if la != lb {
			return la > lb
		}
		return order[a] < order[b]
	})

	replication := len(n.Assignment.ReplicasFor(0))
	if replication < 1 {
		replication = 1
	}
	if replication > len(auths) {
		replication = len(auths)
	}

	newAssign := Assignment{
		Partitions: n.Assignment.Partitions,
		Primary:    make([]uint32, len(loads)),
		Backup:     make([]uint32, len(loads)),
		Replicas:   make([][]uint32, len(loads)),
	}
	accum := make(map[uint32]uint64, len(auths))
	pick := func(exclude map[uint32]bool) uint32 {
		best := uint32(0)
		var bestLoad uint64
		found := false
		for _, id := range auths {
			if exclude[id] {
				continue
			}
			if !found || accum[id] < bestLoad || (accum[id] == bestLoad && id < best) {
				best, bestLoad, found = id, accum[id], true
			}
		}
		return best
	}
	moved := 0
	for _, i := range order {
		taken := map[uint32]bool{}
		hosts := make([]uint32, 0, replication)
		for r := 0; r < replication; r++ {
			h := pick(taken)
			taken[h] = true
			hosts = append(hosts, h)
			// Primary replica absorbs the whole measured load in the
			// accumulator; backups count half, as in rule-count balancing.
			if r == 0 {
				accum[h] += loads[i].Misses + 1 // +1 keeps empty partitions spreading
			} else {
				accum[h] += loads[i].Misses / 2
			}
		}
		newAssign.Primary[i] = hosts[0]
		newAssign.Backup[i] = hosts[0]
		if len(hosts) > 1 {
			newAssign.Backup[i] = hosts[1]
		}
		newAssign.Replicas[i] = hosts
		if n.Assignment.Primary[i] != hosts[0] {
			moved++
		}
	}
	// From here on, redirects follow the load-balanced primary rather
	// than the nearest replica — the rebalance would otherwise be
	// overridden by proximity routing.
	n.pinRouting = true
	n.applyAssignment(newAssign)
	c.logState()
	return moved
}

// applyAssignment swaps authority state and partition rules to a new
// assignment without touching ingress caches.
func (n *Network) applyAssignment(assign Assignment) {
	now := n.Eng.Now()
	// Tear down old authority tables and handlers.
	for host := range n.authorityAt {
		if sw := n.Switches[host]; sw != nil {
			n.M.PolicyRuleDeletes += uint64(clearAuthorityTable(sw))
		}
	}
	n.Assignment = assign
	n.authorityAt = make(map[uint32][]*Authority)
	for i, p := range assign.Partitions {
		for _, host := range assign.ReplicasFor(i) {
			auth := NewAuthority(host, p, n.cfg.Strategy)
			auth.RegionIndex = i
			n.configureAuthority(auth)
			n.authorityAt[host] = append(n.authorityAt[host], auth)
			sw := n.Switches[host]
			for _, r := range p.Rules {
				mod := authorityAdd(i, r)
				_ = sw.ApplyFlowMod(now, &mod)
				n.M.PolicyRuleInstalls++
			}
		}
	}
	n.installPartitionRules()
}
