package wire

import (
	"sync/atomic"
	"time"

	"difane/internal/core"
	"difane/internal/flowspace"
	"difane/internal/packet"
	"difane/internal/telemetry"
)

// Deployment adapts a Cluster to the simulator-facing driving surface
// (difane.Deployment): virtual-time injection timestamps are ignored —
// wire mode runs in real time — and Run becomes "wait until everything
// injected so far has reached a terminal point".
type Deployment struct {
	C *Cluster

	injected atomic.Uint64
}

// NewDeployment builds a cluster and wraps it.
func NewDeployment(cfg ClusterConfig) (*Deployment, error) {
	c, err := NewCluster(cfg)
	if err != nil {
		return nil, err
	}
	return &Deployment{C: c}, nil
}

// Deploy wraps an already-running cluster.
func Deploy(c *Cluster) *Deployment { return &Deployment{C: c} }

// injectDeadline bounds how long InjectPacket retries against transient
// queue backpressure before counting the packet lost.
const injectDeadline = time.Second

// InjectPacket injects one packet now (the virtual timestamp `at` has no
// meaning in real time). Transient backpressure is retried briefly;
// packets toward killed switches or past the deadline are recorded lost.
func (d *Deployment) InjectPacket(at float64, ingress uint32, k flowspace.Key, size int, seq uint64) {
	h := packet.HeaderFromKey(k)
	trace := d.C.traceID(&h, seq)
	// Fast path first: the deadline clock read is paid only under
	// backpressure.
	if d.C.tryInject(ingress, h, size, trace) {
		d.injected.Add(1)
		return
	}
	d.injectRetry(ingress, h, size, trace)
}

// injectRetry is InjectPacket's slow path: retry against transient
// backpressure until the deadline, then record the packet lost.
func (d *Deployment) injectRetry(ingress uint32, h packet.Header, size int, trace uint64) {
	deadline := time.Now().Add(injectDeadline)
	for {
		if d.C.tryInject(ingress, h, size, trace) {
			d.injected.Add(1)
			return
		}
		n, ok := d.C.switches[ingress]
		if !ok || n.killed.Load() || d.C.closed.Load() || time.Now().After(deadline) {
			d.C.drop(d.C.ext, dropUnreachable)
			// Open and close the journey at the rejecting ingress, so a
			// sampled packet lost to injection failure still assembles.
			d.C.traceIngress(ingress, &h, trace)
			d.C.traceVerdict(ingress, telemetry.VUnreachable, 0, &h, 0, trace)
			d.injected.Add(1)
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// InjectBatch injects a burst of packets. Runs of consecutive packets
// sharing an ingress become one ring push under one lock with one clock
// read and one wakeup; the frames are staged in a pooled slab, so the
// steady-state batch path allocates nothing. Packets that do not fit
// (ring backpressure, killed or unknown ingress) fall back to the
// per-packet retry path with its usual loss accounting.
func (d *Deployment) InjectBatch(batch []core.PacketIn) {
	c := d.C
	slab := c.slabs.Get().(*[]dataFrame)
	frames := (*slab)[:0]
	sampling := c.sampler.Rate() != 0
	for i := 0; i < len(batch); {
		ingress := batch[i].Ingress
		stamp := nowNS()
		frames = frames[:0]
		j := i
		for j < len(batch) && batch[j].Ingress == ingress && len(frames) < cap(frames) {
			f := dataFrame{
				pkt: packet.Packet{
					Header: packet.HeaderFromKey(batch[j].Key),
					Size:   batch[j].Size,
				},
				injected: stamp,
			}
			if sampling {
				f.trace = c.traceID(&f.pkt.Header, batch[j].Seq)
			}
			frames = append(frames, f)
			j++
		}
		pushed := c.injectBurst(ingress, frames)
		d.injected.Add(uint64(pushed))
		for k := i + pushed; k < j; k++ {
			d.injectRetry(ingress, packet.HeaderFromKey(batch[k].Key), batch[k].Size,
				frames[k-i].trace)
		}
		i = j
	}
	*slab = frames[:0]
	c.slabs.Put(slab)
}

// Run blocks until every injected packet has reached a terminal point
// (delivered or dropped), bounded by horizon seconds of real time.
func (d *Deployment) Run(horizon float64) {
	deadline := time.Now().Add(time.Duration(horizon * float64(time.Second)))
	for time.Now().Before(deadline) {
		if d.C.completed.Load() >= d.injected.Load() && d.C.drained() {
			// The accounting identity holds and the fabric is empty: this is
			// the quiesce point any open policy-update timeline closes at.
			d.C.conv.NoteQuiesce(nowNS(), d.C.counterTotals())
			return
		}
		time.Sleep(time.Millisecond)
	}
}

// Measurements returns a consistent snapshot of the run's statistics.
func (d *Deployment) Measurements() *core.Measurements { return d.C.Measurements() }

// Telemetry returns one scrape of the cluster's metric registry plus
// flight-recorder accounting.
func (d *Deployment) Telemetry() *telemetry.Snapshot { return d.C.Telemetry() }

// Close shuts the cluster down.
func (d *Deployment) Close() error { return d.C.Close() }
