package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden experiment outputs")

// TestGoldenOutputs locks the rendered output of the deterministic
// experiments (the ones with no service-rate randomness sensitivity) at
// quick scale. Any change to generators, the partitioner, or rendering
// shows up as a readable diff. Refresh intentionally with:
//
//	go test ./experiments -run Golden -update-golden
func TestGoldenOutputs(t *testing.T) {
	cases := []struct {
		name   string
		render func() string
	}{
		{"t1_networks", func() string { return TableNetworks(Quick()).Render() }},
		{"f4_partition_tcam", func() string { return FigPartitionTCAM(Quick()).Render() }},
		{"f5_split_overhead", func() string { return FigSplitOverhead(Quick()).Render() }},
		{"a2_partitioner", func() string { return AblationPartitioner(Quick()).Render() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.render()
			path := filepath.Join("testdata", tc.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update-golden): %v", err)
			}
			if got != string(want) {
				t.Fatalf("output changed from golden %s:\n--- got ---\n%s\n--- want ---\n%s",
					path, got, want)
			}
		})
	}
}
