package wire

import (
	"testing"
	"time"

	"difane/internal/core"
	"difane/internal/flowspace"
	"difane/internal/proto"
	"difane/internal/testutil"
)

// waitMeasure polls the cluster's measurements until cond passes.
func waitMeasure(t *testing.T, c *Cluster, what string, cond func(*core.Measurements) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if cond(c.Measurements()) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never happened (measurements %+v)", what, c.Measurements())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestControllerOutageRideThrough is the kill-and-restart-controller
// scenario: mid-trace the controller dies; switches must keep serving from
// cached and authority rules with zero packet loss, buffer their
// controller-bound events, and drain them when the controller returns with
// a bumped epoch.
func TestControllerOutageRideThrough(t *testing.T) {
	c := newFailoverCluster(t)
	// Warm the ingress cache at switch 0 so there is a cached flow to
	// serve during the outage.
	if !c.Inject(0, httpHeader(1), 100) {
		t.Fatal("inject failed")
	}
	awaitDelivery(t, c)
	awaitCache(t, c, 0)
	base := c.Measurements()
	epochBefore := c.Epoch()

	if !c.KillController() {
		t.Fatal("KillController failed")
	}
	if c.KillController() {
		t.Fatal("second KillController must report false")
	}

	// Mid-outage traffic: the cached flow forwards from the ingress cache,
	// and brand-new flows still complete their setup entirely in the data
	// plane (redirect → authority rules → tunnel) — the controller is only
	// needed to relay cache installs, which get buffered instead.
	const cachedPkts, newFlows = 20, 5
	for i := 0; i < cachedPkts; i++ {
		if !c.Inject(0, httpHeader(1), 100) {
			t.Fatal("inject of cached flow failed mid-outage")
		}
	}
	for i := 0; i < newFlows; i++ {
		if !c.Inject(1, httpHeader(uint32(200+i)), 100) {
			t.Fatal("inject of new flow failed mid-outage")
		}
	}
	want := base.Delivered + cachedPkts + newFlows
	waitMeasure(t, c, "mid-outage deliveries", func(m *core.Measurements) bool {
		return m.Delivered >= want
	})
	m := c.Measurements()
	if m.Drops.Hole != base.Drops.Hole || m.Drops.Unreachable != base.Drops.Unreachable ||
		m.Drops.AuthorityQueue != base.Drops.AuthorityQueue {
		t.Fatalf("packets lost during controller outage: %+v (baseline %+v)", m.Drops, base.Drops)
	}
	if m.ControllerOutages != 1 {
		t.Fatalf("outages = %d, want 1", m.ControllerOutages)
	}
	waitMeasure(t, c, "install buffering", func(m *core.Measurements) bool {
		return m.OutageBuffered >= 1
	})
	if c.CacheLen(1) != 0 {
		t.Fatalf("cache installs must be held back during the outage, found %d", c.CacheLen(1))
	}

	if !c.RestoreController() {
		t.Fatal("RestoreController failed")
	}
	if c.RestoreController() {
		t.Fatal("second RestoreController must report false")
	}
	if got := c.Epoch(); got != epochBefore+1 {
		t.Fatalf("restart epoch = %d, want %d (restarted controller must fence the old one)",
			got, epochBefore+1)
	}
	// Heartbeats resume, the outboxes drain, and the buffered installs
	// finally land at the ingress.
	waitMeasure(t, c, "outbox drain", func(m *core.Measurements) bool {
		return m.OutageDrained >= 1
	})
	awaitCache(t, c, 1)
	if st := c.Status(); st.ControllerDown {
		t.Fatal("status still reports the controller down after restore")
	}
}

// TestStaleEpochInstallRejected: a FlowMod carrying an epoch older than
// the switch's fence must be refused, counted, and answered with an
// EpochReport — the invariant that keeps a zombie controller's stragglers
// out of the tables.
func TestStaleEpochInstallRejected(t *testing.T) {
	c := newFailoverCluster(t)
	if !c.SetEpoch(5) {
		t.Fatal("SetEpoch(5) failed")
	}
	if c.SetEpoch(4) {
		t.Fatal("lowering the epoch must be refused")
	}
	fresh := proto.FlowMod{Table: proto.TableAuthority, Op: proto.OpAdd,
		Rule: flowspace.Rule{ID: 777, Priority: 99, Match: flowspace.MatchAll().WithExact(flowspace.FTPDst, 7777),
			Action: flowspace.Action{Kind: flowspace.ActDrop}}}
	if err := c.InstallRule(2, fresh); err != nil { // stamped with epoch 5
		t.Fatal(err)
	}
	stale := proto.FlowMod{Table: proto.TableAuthority, Op: proto.OpAdd, Epoch: 3,
		Rule: flowspace.Rule{ID: 778, Priority: 99, Match: flowspace.MatchAll().WithExact(flowspace.FTPDst, 7778),
			Action: flowspace.Action{Kind: flowspace.ActDrop}}}
	if err := c.InstallRule(2, stale); err != nil {
		t.Fatal(err) // the write succeeds; the switch rejects on receipt
	}
	if err := c.Barrier(2, 1); err != nil {
		t.Fatal(err)
	}
	if rep, err := c.Stats(2, 777, 2); err != nil || !rep.OK {
		t.Fatalf("fenced install with current epoch missing: %v %+v", err, rep)
	}
	if rep, err := c.Stats(2, 778, 3); err != nil || rep.OK {
		t.Fatalf("stale-epoch install must not land: %v %+v", err, rep)
	}
	waitMeasure(t, c, "stale-install rejection", func(m *core.Measurements) bool {
		return m.StaleInstallsRejected == 1
	})
	// The EpochReport surfaces the switch's fence to the controller.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var got uint64
		for _, ss := range c.Status().Switches {
			if ss.ID == 2 {
				got = ss.ReportedEpoch
			}
		}
		if got == 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("epoch report never arrived (got %d)", got)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestMissStormShedding: with a redirect budget configured, a storm of
// cache misses must be shed at the ingress (bounded authority queues, no
// collapse) with every packet accounted for: injected = delivered +
// policy-dropped + shed + other drops.
func TestMissStormShedding(t *testing.T) {
	cfg := reconnectCfg(false)
	cfg.Overload = OverloadConfig{RedirectRate: 50, RedirectBurst: 4,
		CacheInstallRate: 50, CacheInstallBurst: 4}
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	const storm = 300
	injected := 0
	for i := 0; i < storm; i++ {
		// Distinct sources: every packet is a genuine miss (exact caching).
		if c.Inject(0, httpHeader(uint32(1000+i)), 100) {
			injected++
		}
	}
	if injected == 0 {
		t.Fatal("nothing injected")
	}
	// Every injected packet must reach a terminal accounting point.
	deadline := time.Now().Add(10 * time.Second)
	for c.completed.Load() < uint64(injected) {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d packets completed", c.completed.Load(), injected)
		}
		time.Sleep(time.Millisecond)
	}
	m := c.Measurements()
	if m.Drops.RedirectShed == 0 {
		t.Fatalf("a 300-flow storm against a 50/s budget must shed (drops %+v)", m.Drops)
	}
	total := m.Delivered + m.Drops.Policy + m.Drops.RedirectShed +
		m.Drops.Hole + m.Drops.Unreachable + m.Drops.AuthorityQueue
	if total != uint64(injected) {
		t.Fatalf("accounting does not reconcile: %d injected, %d accounted (%+v, delivered %d)",
			injected, total, m.Drops, m.Delivered)
	}
	if m.Delivered == 0 {
		t.Fatal("shedding must not starve admitted traffic")
	}
	if pq := c.PeakQueueDepth(); pq <= 0 || pq > c.cfg.QueueDepth {
		t.Fatalf("peak queue depth %d out of bounds (0, %d]", pq, c.cfg.QueueDepth)
	}
}

// TestCacheInstallShedding: the authority-side token bucket suppresses
// cache installs under a storm without hurting reachability.
func TestCacheInstallShedding(t *testing.T) {
	cfg := reconnectCfg(false)
	cfg.Overload = OverloadConfig{CacheInstallRate: 10, CacheInstallBurst: 2}
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	const flows = 50
	for i := 0; i < flows; i++ {
		if !c.Inject(0, httpHeader(uint32(3000+i)), 100) {
			t.Fatal("inject failed")
		}
	}
	waitMeasure(t, c, "storm deliveries", func(m *core.Measurements) bool {
		return m.Delivered >= flows
	})
	m := c.Measurements()
	if m.CacheInstallsShed == 0 {
		t.Fatalf("install bucket never shed under %d rapid misses", flows)
	}
	if m.Drops.Hole != 0 || m.Drops.Unreachable != 0 {
		t.Fatalf("install shedding must not lose packets: %+v", m.Drops)
	}
}

// TestNoGoroutineLeaksFaultDuringClose interleaves fault hooks (including
// a controller kill) with Close to check the shutdown path tolerates
// faults firing mid-teardown without leaking goroutines.
func TestNoGoroutineLeaksFaultDuringClose(t *testing.T) {
	for _, tc := range []struct {
		name   string
		useTCP bool
	}{{"pipe", false}, {"tcp", true}} {
		t.Run(tc.name, func(t *testing.T) {
			check := testutil.CheckGoroutineLeaks(t, 2)
			c, err := NewCluster(reconnectCfg(tc.useTCP))
			if err != nil {
				t.Fatal(err)
			}
			c.Inject(0, httpHeader(1), 100)
			awaitDelivery(t, c)
			// Race the fault hooks against Close.
			done := make(chan struct{})
			go func() {
				c.KillSwitch(2)
				c.PartitionControl(1)
				c.KillController()
				c.RestoreController()
				c.KillSwitch(3)
				close(done)
			}()
			if err := c.Close(); err != nil {
				t.Fatal(err)
			}
			<-done
			check()
		})
	}
}
