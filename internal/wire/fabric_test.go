package wire

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"difane/internal/core"
	"difane/internal/packet"
)

func newFabricCluster(t *testing.T, cfg FabricConfig) *Cluster {
	t.Helper()
	cfg.UseTCP = true
	c, err := NewCluster(ClusterConfig{
		Switches:    []uint32{0, 1, 2, 3, 4},
		Authorities: []uint32{2},
		Policy:      testPolicy(),
		Strategy:    core.StrategyCover,
		Fabric:      cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestFabricDetourDelivers runs the canonical first-packet path — ingress
// redirect to the authority, tunnel to the egress — entirely over the
// batched TCP fabric.
func TestFabricDetourDelivers(t *testing.T) {
	c := newFabricCluster(t, FabricConfig{})
	if !c.Inject(0, httpHeader(1), 100) {
		t.Fatal("inject failed")
	}
	d := awaitDelivery(t, c)
	if d.Egress != 4 {
		t.Fatalf("egress = %d, want 4", d.Egress)
	}
	if !d.Detour {
		t.Fatal("first packet must travel via the authority")
	}
	if d.Header.TPDst != 80 {
		t.Fatalf("header corrupted across the fabric: %+v", d.Header)
	}
}

// TestFabricAccountingIdentity hammers the fabric from several ingresses
// and checks the invariant the drain logic depends on: every injected
// packet reaches a terminal count (delivered + drops), and the fabric's
// in-flight gauge returns to zero.
func TestFabricAccountingIdentity(t *testing.T) {
	c := newFabricCluster(t, FabricConfig{})
	const perIngress = 200
	var injected uint64
	var wg sync.WaitGroup
	var mu sync.Mutex
	for _, ing := range []uint32{0, 1, 3} {
		wg.Add(1)
		go func(ing uint32) {
			defer wg.Done()
			n := uint64(0)
			for i := 0; i < perIngress; i++ {
				h := httpHeader(uint32(i)<<8 | ing)
				for !c.Inject(ing, h, 100) {
					if c.closed.Load() {
						return
					}
					time.Sleep(50 * time.Microsecond)
				}
				n++
			}
			mu.Lock()
			injected += n
			mu.Unlock()
		}(ing)
	}
	wg.Wait()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if c.completed.Load() >= injected && c.drained() {
			break
		}
		time.Sleep(time.Millisecond)
	}
	m := c.Measurements()
	total := m.Delivered + m.Drops.Policy + m.Drops.Hole + m.Drops.AuthorityQueue +
		m.Drops.RedirectShed + m.Drops.Unreachable
	if total != injected {
		t.Fatalf("accounting identity broken: injected %d, terminal %d (%+v)",
			injected, total, m.Drops)
	}
	if p := c.fabric.pending(); p != 0 {
		t.Fatalf("fabric still reports %d frames in flight after drain", p)
	}
	if m.Delivered == 0 {
		t.Fatal("no deliveries over the fabric")
	}
}

// TestFabricFlushIntervalBounds checks that a single sparse frame does not
// wait for FlushBytes: the interval flusher must push it out, so one
// packet's end-to-end latency stays well under a generous bound even with
// a large byte threshold.
func TestFabricFlushIntervalBounds(t *testing.T) {
	c := newFabricCluster(t, FabricConfig{
		FlushInterval: 200 * time.Microsecond,
		FlushBytes:    1 << 20, // never reached by one packet
	})
	start := time.Now()
	if !c.Inject(0, httpHeader(7), 100) {
		t.Fatal("inject failed")
	}
	awaitDelivery(t, c)
	if e := time.Since(start); e > 2*time.Second {
		t.Fatalf("sparse frame took %v; interval flusher not working", e)
	}
}

// TestFabricBatchCoalesces verifies the byte-threshold path: with a tiny
// FlushBytes every frame flushes immediately, with a huge one the interval
// timer does the work — both must deliver everything.
func TestFabricBatchCoalesces(t *testing.T) {
	for _, fb := range []int{1, 64 << 10} {
		fb := fb
		t.Run(fmt.Sprintf("flushBytes=%d", fb), func(t *testing.T) {
			c := newFabricCluster(t, FabricConfig{FlushBytes: fb})
			const n = 50
			for i := 0; i < n; i++ {
				for !c.Inject(0, httpHeader(uint32(i+1)), 100) {
					time.Sleep(50 * time.Microsecond)
				}
			}
			got := 0
			timeout := time.After(10 * time.Second)
			for got < n {
				select {
				case <-c.Deliveries:
					got++
				case <-timeout:
					m := c.Measurements()
					t.Fatalf("only %d/%d deliveries (measurements: delivered=%d drops=%+v)",
						got, n, m.Delivered, m.Drops)
				}
			}
		})
	}
}

// TestFabricKilledSwitchAccounts checks frames bound for a killed switch
// terminate as unreachable drops rather than wedging the drain wait.
func TestFabricKilledSwitchAccounts(t *testing.T) {
	c := newFabricCluster(t, FabricConfig{})
	// Prime the fabric connection 0→4 so the kill exercises the receive
	// side's killed-switch check, not just forwardFrame's.
	c.Inject(0, httpHeader(1), 100)
	awaitDelivery(t, c)
	c.KillSwitch(4)
	const n = 20
	for i := 0; i < n; i++ {
		for !c.Inject(0, httpHeader(uint32(i+2)), 100) {
			time.Sleep(50 * time.Microsecond)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		m := c.Measurements()
		if m.Delivered+m.Drops.Unreachable+m.Drops.Hole+m.Drops.AuthorityQueue >= n+1 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	m := c.Measurements()
	t.Fatalf("frames toward killed switch not terminal: delivered=%d drops=%+v",
		m.Delivered, m.Drops)
}

// TestFabricHeaderRoundTrip pushes distinct headers through the fabric and
// checks each arrives intact (record framing, not just counts).
func TestFabricHeaderRoundTrip(t *testing.T) {
	c := newFabricCluster(t, FabricConfig{})
	want := map[uint32]bool{}
	const n = 30
	for i := 1; i <= n; i++ {
		h := httpHeader(uint32(i))
		want[h.IPSrc] = true
		for !c.Inject(0, h, 64+i) {
			time.Sleep(50 * time.Microsecond)
		}
	}
	got := map[uint32]bool{}
	timeout := time.After(10 * time.Second)
	for len(got) < n {
		select {
		case d := <-c.Deliveries:
			if d.Header.EthType != packet.EthTypeIPv4 || d.Header.TPDst != 80 {
				t.Fatalf("corrupted header: %+v", d.Header)
			}
			got[d.Header.IPSrc] = true
		case <-timeout:
			t.Fatalf("got %d/%d distinct flows", len(got), n)
		}
	}
	for src := range want {
		if !got[src] {
			t.Fatalf("flow with IPSrc=%d never delivered", src)
		}
	}
}
