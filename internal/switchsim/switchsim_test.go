package switchsim

import (
	"testing"

	"difane/internal/flowspace"
	"difane/internal/proto"
	"difane/internal/tcam"
)

func mkRule(id uint64, prio int32, port uint64, kind flowspace.ActionKind) flowspace.Rule {
	m := flowspace.MatchAll()
	if port != 0 {
		m = m.WithExact(flowspace.FTPDst, port)
	}
	return flowspace.Rule{ID: id, Priority: prio, Match: m, Action: flowspace.Action{Kind: kind}}
}

func keyPort(p uint64) flowspace.Key {
	var k flowspace.Key
	k[flowspace.FTPDst] = p
	return k
}

func add(t *testing.T, s *Switch, table proto.Table, r flowspace.Rule) {
	t.Helper()
	err := s.ApplyFlowMod(0, &proto.FlowMod{Table: table, Op: proto.OpAdd, Rule: r})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPipelineOrder(t *testing.T) {
	s := New(1, Config{})
	add(t, s, proto.TablePartition, mkRule(1, 0, 0, flowspace.ActRedirect))
	add(t, s, proto.TableAuthority, mkRule(2, 0, 80, flowspace.ActForward))
	add(t, s, proto.TableCache, mkRule(3, 0, 80, flowspace.ActDrop))

	// Port 80 hits the cache first even though authority also matches.
	res := s.Classify(0, keyPort(80), 100)
	if !res.OK || res.Table != proto.TableCache || res.Rule.ID != 3 {
		t.Fatalf("res = %+v", res)
	}
	// Port 22 falls through cache and authority to the partition rule.
	res = s.Classify(0, keyPort(22), 100)
	if !res.OK || res.Table != proto.TablePartition || res.Rule.ID != 1 {
		t.Fatalf("res = %+v", res)
	}
	if s.Stats.CacheHits.Load() != 1 || s.Stats.PartitionHits.Load() != 1 {
		t.Fatalf("stats = %+v", s.Stats.Snapshot())
	}
}

func TestClassifyMiss(t *testing.T) {
	s := New(1, Config{})
	res := s.Classify(0, keyPort(80), 100)
	if res.OK {
		t.Fatal("empty switch must miss")
	}
	if s.Stats.Misses.Load() != 1 {
		t.Fatalf("stats = %+v", s.Stats.Snapshot())
	}
}

func TestPeekDoesNotCount(t *testing.T) {
	s := New(1, Config{})
	add(t, s, proto.TableAuthority, mkRule(1, 0, 80, flowspace.ActForward))
	res := s.Peek(keyPort(80))
	if !res.OK || res.Table != proto.TableAuthority {
		t.Fatalf("res = %+v", res)
	}
	if s.Stats.AuthorityHits.Load() != 0 {
		t.Fatal("peek must not count hits")
	}
	if !s.Peek(keyPort(80)).OK {
		t.Fatal("peek must be repeatable")
	}
	if res := s.Peek(keyPort(22)); res.OK {
		t.Fatal("peek miss must report !OK")
	}
}

func TestFlowModDelete(t *testing.T) {
	s := New(1, Config{})
	add(t, s, proto.TableCache, mkRule(1, 0, 80, flowspace.ActForward))
	err := s.ApplyFlowMod(1, &proto.FlowMod{
		Table: proto.TableCache, Op: proto.OpDelete, Rule: flowspace.Rule{ID: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Peek(keyPort(80)).OK {
		t.Fatal("deleted rule must not match")
	}
}

func TestFlowModErrors(t *testing.T) {
	s := New(1, Config{})
	err := s.ApplyFlowMod(0, &proto.FlowMod{Table: proto.Table(9), Op: proto.OpAdd})
	if err == nil {
		t.Fatal("unknown table must error")
	}
	err = s.ApplyFlowMod(0, &proto.FlowMod{Table: proto.TableCache, Op: proto.FlowModOp(9)})
	if err == nil {
		t.Fatal("unknown op must error")
	}
}

func TestCacheCapacityEviction(t *testing.T) {
	s := New(1, Config{CacheCapacity: 2, CacheEviction: tcam.EvictLRU})
	add(t, s, proto.TableCache, mkRule(1, 0, 1, flowspace.ActForward))
	add(t, s, proto.TableCache, mkRule(2, 0, 2, flowspace.ActForward))
	s.Classify(1, keyPort(1), 64) // rule 1 is now more recent
	add(t, s, proto.TableCache, mkRule(3, 0, 3, flowspace.ActForward))
	if s.Table(proto.TableCache).Len() != 2 {
		t.Fatal("cache must stay at capacity")
	}
	if s.Peek(keyPort(2)).OK {
		t.Fatal("LRU victim (rule 2) must be gone")
	}
}

func TestAdvanceExpiresCaches(t *testing.T) {
	s := New(1, Config{})
	err := s.ApplyFlowMod(0, &proto.FlowMod{
		Table: proto.TableCache, Op: proto.OpAdd,
		Rule: mkRule(1, 0, 80, flowspace.ActForward), Idle: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Advance(4)
	if !s.Peek(keyPort(80)).OK {
		t.Fatal("entry must survive before timeout")
	}
	s.Advance(6)
	if s.Peek(keyPort(80)).OK {
		t.Fatal("entry must idle-expire")
	}
}

func TestCountersAcrossTables(t *testing.T) {
	s := New(1, Config{})
	add(t, s, proto.TableAuthority, mkRule(7, 0, 80, flowspace.ActForward))
	s.Classify(1, keyPort(80), 500)
	p, b, ok := s.Counters(7)
	if !ok || p != 1 || b != 500 {
		t.Fatalf("counters = %d/%d ok=%v", p, b, ok)
	}
	if _, _, ok := s.Counters(99); ok {
		t.Fatal("unknown rule must report !ok")
	}
}

func TestClearCache(t *testing.T) {
	s := New(1, Config{})
	add(t, s, proto.TableCache, mkRule(1, 0, 1, flowspace.ActForward))
	add(t, s, proto.TableCache, mkRule(2, 0, 2, flowspace.ActForward))
	add(t, s, proto.TableAuthority, mkRule(3, 0, 3, flowspace.ActForward))
	if n := s.ClearCache(); n != 2 {
		t.Fatalf("cleared %d", n)
	}
	if !s.Peek(keyPort(3)).OK {
		t.Fatal("authority table must survive a cache clear")
	}
}

func TestStringRenders(t *testing.T) {
	s := New(1, Config{})
	if s.String() == "" {
		t.Fatal("String must render")
	}
}
