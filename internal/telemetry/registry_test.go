package telemetry

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"difane/internal/metrics"
)

func buildTestRegistry() *Registry {
	reg := NewRegistry()
	reg.RegisterFunc("difane_delivered_total", "Packets delivered.", TypeCounter,
		func() float64 { return 42 })
	reg.Register("difane_switch_cache_hits_total", "Cache hits per switch.", TypeCounter,
		func() []Point {
			return []Point{
				{Labels: []Label{{"switch", "0"}}, Value: 10},
				{Labels: []Label{{"switch", "1"}}, Value: 20},
			}
		})
	var d metrics.Dist
	for i := 1; i <= 100; i++ {
		d.Add(float64(i) / 1000)
	}
	reg.RegisterSummary("difane_first_packet_delay_seconds", "First-packet delay.",
		func() SummaryView { return DistSummary(&d) })
	return reg
}

func TestWritePrometheus(t *testing.T) {
	var b strings.Builder
	if err := buildTestRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP difane_delivered_total Packets delivered.",
		"# TYPE difane_delivered_total counter",
		"difane_delivered_total 42",
		`difane_switch_cache_hits_total{switch="0"} 10`,
		`difane_switch_cache_hits_total{switch="1"} 20`,
		"# TYPE difane_first_packet_delay_seconds summary",
		`difane_first_packet_delay_seconds{quantile="0.5"} 0.05`,
		`difane_first_packet_delay_seconds{quantile="0.99"} 0.099`,
		"difane_first_packet_delay_seconds_count 100",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestWriteJSON(t *testing.T) {
	var b strings.Builder
	if err := buildTestRegistry().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var obj map[string]any
	if err := json.Unmarshal([]byte(b.String()), &obj); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if v, ok := obj["difane_delivered_total"].(float64); !ok || v != 42 {
		t.Fatalf("delivered: %v", obj["difane_delivered_total"])
	}
	labeled, ok := obj["difane_switch_cache_hits_total"].(map[string]any)
	if !ok || labeled["switch=1"].(float64) != 20 {
		t.Fatalf("labeled: %v", obj["difane_switch_cache_hits_total"])
	}
	sum, ok := obj["difane_first_packet_delay_seconds"].(map[string]any)
	if !ok || sum["count"].(float64) != 100 {
		t.Fatalf("summary: %v", obj["difane_first_packet_delay_seconds"])
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	reg := NewRegistry()
	reg.RegisterFunc("x", "", TypeGauge, func() float64 { return 0 })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration must panic")
		}
	}()
	reg.RegisterFunc("x", "", TypeGauge, func() float64 { return 0 })
}

func TestSnapshotValue(t *testing.T) {
	s := &Snapshot{Metrics: buildTestRegistry().Snapshot()}
	if v, ok := s.Value("difane_delivered_total"); !ok || v != 42 {
		t.Fatalf("Value: %v %v", v, ok)
	}
	if _, ok := s.Value("nope"); ok {
		t.Fatal("missing metric must report !ok")
	}
}

func TestServerEndpoints(t *testing.T) {
	reg := buildTestRegistry()
	rec := NewRecorder([]uint32{0, 1}, 64, true)
	rec.Publish(Event{Kind: EvRedirect, Node: 0, Peer: 1, Flow: Tuple(1, 2, 3, 4, 6)})
	rec.Publish(Event{Kind: EvVerdict, Node: 1, Verdict: VDelivered, Flow: Tuple(1, 2, 3, 4, 6)})

	srv, err := Serve("127.0.0.1:0", reg, rec, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	h := Handler(reg, rec, nil)
	get := func(path string) *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
		return w
	}

	if w := get("/metrics"); w.Code != 200 ||
		!strings.Contains(w.Body.String(), "difane_delivered_total 42") {
		t.Fatalf("/metrics: %d\n%s", w.Code, w.Body.String())
	}
	if w := get("/vars"); w.Code != 200 || !strings.Contains(w.Body.String(), "difane_delivered_total") {
		t.Fatalf("/vars: %d", w.Code)
	}
	w := get("/trace?kind=verdict")
	if w.Code != 200 {
		t.Fatalf("/trace: %d %s", w.Code, w.Body.String())
	}
	var resp TraceResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Enabled || len(resp.Events) != 1 || resp.Events[0].Kind != "verdict" {
		t.Fatalf("trace resp: %+v", resp)
	}
	if w := get("/trace?kind=bogus"); w.Code != 400 {
		t.Fatalf("bad kind must 400, got %d", w.Code)
	}
	if w := get("/trace?node=1"); w.Code != 200 {
		t.Fatalf("node filter: %d", w.Code)
	}
	if w := get("/debug/pprof/"); w.Code != 200 {
		t.Fatalf("pprof: %d", w.Code)
	}
}

// buildScrapeRegistry approximates a live wire cluster's schema: a few
// dozen per-switch labeled series plus the latency summaries — the shape
// the pooled scrape buffer is sized for.
func buildScrapeRegistry(switches int) *Registry {
	reg := NewRegistry()
	reg.RegisterFunc("difane_delivered_total", "Packets delivered.", TypeCounter,
		func() float64 { return 1234567 })
	reg.RegisterFunc("difane_dropped_total", "Packets dropped.", TypeCounter,
		func() float64 { return 89 })
	perSwitch := func(name string) {
		reg.Register(name, "Per-switch series.", TypeCounter, func() []Point {
			pts := make([]Point, switches)
			for i := range pts {
				pts[i] = Point{
					Labels: []Label{{Key: "switch", Value: strconv.Itoa(i)}},
					Value:  float64(1000 + i),
				}
			}
			return pts
		})
	}
	for _, name := range []string{
		"difane_switch_cache_hits_total",
		"difane_switch_authority_hits_total",
		"difane_switch_partition_hits_total",
		"difane_switch_cache_evictions_total",
		"difane_switch_cache_occupancy",
		"difane_switch_tcam_occupancy",
		"difane_switch_redirects_total",
		"difane_switch_installs_total",
	} {
		perSwitch(name)
	}
	var d metrics.Dist
	for i := 1; i <= 1000; i++ {
		d.Add(float64(i) / 10000)
	}
	reg.RegisterSummary("difane_first_packet_delay_seconds", "First-packet delay.",
		func() SummaryView { return DistSummary(&d) })
	reg.RegisterSummary("difane_later_packet_delay_seconds", "Later-packet delay.",
		func() SummaryView { return DistSummary(&d) })
	return reg
}

// BenchmarkScrape prices one /metrics render. The pooled scratch buffer
// keeps the text-exposition path at a handful of allocations (the
// collectors' point slices), independent of output size.
func BenchmarkScrape(b *testing.B) {
	reg := buildScrapeRegistry(64)
	// Prime the pool so the steady state is measured, not the first grow.
	if err := reg.WritePrometheus(io.Discard); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := reg.WritePrometheus(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
