module difane

go 1.22
