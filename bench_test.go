// Benchmarks regenerating the paper's evaluation: one benchmark per table
// and figure (see DESIGN.md §3 for the index). Run with
//
//	go test -bench=. -benchmem
//
// Each benchmark executes the corresponding experiment at full scale and
// reports its headline numbers as custom metrics; `go run ./cmd/difane-bench`
// prints the full tables.
package difane_test

import (
	"sync"
	"testing"
	"time"

	"difane"
	"difane/experiments"
	"difane/internal/flowspace"
	"difane/internal/packet"
	"difane/internal/proto"
)

// benchOpts runs the full-size workloads.
func benchOpts() experiments.Options { return experiments.Bench() }

func BenchmarkTableNetworks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.TableNetworks(benchOpts())
		if len(r.Rows) != 4 {
			b.Fatal("bad row count")
		}
		if i == 0 {
			b.Log("\n" + r.Render())
		}
	}
}

func BenchmarkFigFirstPacketDelay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.FigFirstPacketDelay(benchOpts())
		if i == 0 {
			b.Log("\n" + r.Render())
			b.ReportMetric(r.DIFANE.Percentile(99)*1e3, "difane-p99-ms")
			b.ReportMetric(r.NOX.Percentile(99)*1e3, "nox-p99-ms")
		}
	}
}

func BenchmarkFigThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.FigThroughput(benchOpts())
		if i == 0 {
			b.Log("\n" + r.Render())
			last := r.Points[len(r.Points)-1]
			b.ReportMetric(last.DIFANE, "difane-setups/s")
			b.ReportMetric(last.NOX, "nox-setups/s")
		}
	}
}

func BenchmarkFigAuthorityScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.FigAuthorityScaling(benchOpts())
		if i == 0 {
			b.Log("\n" + r.Render())
			b.ReportMetric(r.Points[len(r.Points)-1].Setups, "setups/s-at-kmax")
		}
	}
}

func BenchmarkFigPartitionTCAM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.FigPartitionTCAM(benchOpts())
		if i == 0 {
			b.Log("\n" + r.Render())
		}
	}
}

func BenchmarkFigSplitOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.FigSplitOverhead(benchOpts())
		if i == 0 {
			b.Log("\n" + r.Render())
		}
	}
}

func BenchmarkFigCacheMiss(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.FigCacheMiss(benchOpts())
		if i == 0 {
			b.Log("\n" + r.Render())
		}
	}
}

func BenchmarkFigStretch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.FigStretch(benchOpts())
		if i == 0 {
			b.Log("\n" + r.Render())
			b.ReportMetric(r.Dists[0].Mean(), "stretch-k1")
			b.ReportMetric(r.Dists[len(r.Dists)-1].Mean(), "stretch-kmax")
		}
	}
}

func BenchmarkFigFailover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.FigFailover(benchOpts())
		if i == 0 {
			b.Log("\n" + r.Render())
			b.ReportMetric(float64(r.WithBackupLost), "lost-with-backup")
			b.ReportMetric(float64(r.WithoutBackupLost), "lost-without-backup")
		}
	}
}

func BenchmarkFigPolicyChange(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.FigPolicyChange(benchOpts())
		if i == 0 {
			b.Log("\n" + r.Render())
		}
	}
}

func BenchmarkFigCacheTimeout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.FigCacheTimeout(benchOpts())
		if i == 0 {
			b.Log("\n" + r.Render())
		}
	}
}

func BenchmarkFigControlLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.FigControlLoad(benchOpts())
		if i == 0 {
			b.Log("\n" + r.Render())
			b.ReportMetric(float64(r.NOXRuntime)/float64(r.Flows), "nox-msgs/flow")
			b.ReportMetric(float64(r.DIFANERuntime)/float64(r.Flows), "difane-msgs/flow")
		}
	}
}

func BenchmarkAblationEviction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationEviction(benchOpts())
		if i == 0 {
			b.Log("\n" + r.Render())
		}
	}
}

func BenchmarkFigLinkLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.FigLinkLoad(benchOpts())
		if i == 0 {
			b.Log("\n" + r.Render())
			b.ReportMetric(float64(r.Points[0].MaxLoad), "max-link-k1")
			b.ReportMetric(float64(r.Points[len(r.Points)-1].MaxLoad), "max-link-kmax")
		}
	}
}

func BenchmarkAblationRebalance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationRebalance(benchOpts())
		if i == 0 {
			b.Log("\n" + r.Render())
			b.ReportMetric(r.LoadBefore, "max-share-before")
			b.ReportMetric(r.LoadAfter, "max-share-after")
		}
	}
}

func BenchmarkAblationCacheStrategy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationCacheStrategy(benchOpts())
		if i == 0 {
			b.Log("\n" + r.Render())
		}
	}
}

func BenchmarkAblationPartitioner(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationPartitioner(benchOpts())
		if i == 0 {
			b.Log("\n" + r.Render())
		}
	}
}

// --- W1: wire-path microbenchmarks -------------------------------------------

// BenchmarkWirePath measures end-to-end wire-mode flow setups: inject a
// new flow, it detours via the authority, and is delivered.
func BenchmarkWirePath(b *testing.B) {
	policy := []difane.Rule{
		{ID: 1, Priority: 1, Match: difane.MatchAll(),
			Action: difane.Action{Kind: difane.ActForward, Arg: 3}},
	}
	c, err := difane.NewCluster(difane.ClusterConfig{
		Switches:    []uint32{0, 1, 2, 3},
		Authorities: []uint32{2},
		Policy:      policy,
		Strategy:    difane.StrategyExact, // every flow takes the full path
		QueueDepth:  4096,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ResetTimer()
	delivered := 0
	for i := 0; delivered < b.N; i++ {
		h := packet.Header{IPSrc: uint32(i + 1), TPDst: 80}
		for !c.Inject(0, h, 100) {
			time.Sleep(time.Microsecond)
		}
		select {
		case <-c.Deliveries:
			delivered++
		case <-time.After(5 * time.Second):
			b.Fatal("delivery timeout")
		}
	}
}

// BenchmarkWirePathTCP is BenchmarkWirePath with the control plane over
// real loopback TCP sockets.
func BenchmarkWirePathTCP(b *testing.B) {
	policy := []difane.Rule{
		{ID: 1, Priority: 1, Match: difane.MatchAll(),
			Action: difane.Action{Kind: difane.ActForward, Arg: 3}},
	}
	c, err := difane.NewCluster(difane.ClusterConfig{
		Switches:    []uint32{0, 1, 2, 3},
		Authorities: []uint32{2},
		Policy:      policy,
		Strategy:    difane.StrategyExact,
		QueueDepth:  4096,
		UseTCP:      true,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ResetTimer()
	delivered := 0
	for i := 0; delivered < b.N; i++ {
		h := packet.Header{IPSrc: uint32(i + 1), TPDst: 80}
		for !c.Inject(0, h, 100) {
			time.Sleep(time.Microsecond)
		}
		select {
		case <-c.Deliveries:
			delivered++
		case <-time.After(5 * time.Second):
			b.Fatal("delivery timeout")
		}
	}
}

// --- W2: wire data-plane throughput benchmarks -------------------------------
//
// An 8-switch wire cluster driven through the public Deployment API only,
// so this file can be dropped unchanged into an older checkout to compare
// numbers across commits (EXPERIMENTS.md records the history). Injection
// and completion-waiting both go through the Deployment wrapper: Run()
// blocks on cheap atomics, so the wait harness adds no per-poll cost that
// scales with how much the run has already delivered.

// benchWireIDs lists the 8-switch cluster's switch IDs.
var benchWireIDs = []uint32{0, 1, 2, 3, 4, 5, 6, 7}

// benchWirePolicy spreads flows across all eight egresses — rule i forwards
// TPDst 1000+i to switch i — so aggregate throughput is not serialized on a
// single switch's data loop.
func benchWirePolicy() []difane.Rule {
	policy := make([]difane.Rule, 0, 8)
	for i := uint64(0); i < 8; i++ {
		policy = append(policy, difane.Rule{
			ID: i + 1, Priority: 10,
			Match:  difane.MatchAll().WithExact(difane.FTPDst, 1000+i),
			Action: difane.Action{Kind: difane.ActForward, Arg: uint32(i)},
		})
	}
	return policy
}

// benchWireDeploy builds the benchmarks' shared cluster shape.
func benchWireDeploy(b *testing.B, cacheCap int) *difane.WireDeployment {
	b.Helper()
	d, err := difane.NewWireDeployment(difane.ClusterConfig{
		Switches:      benchWireIDs,
		Authorities:   []uint32{2, 5},
		Policy:        benchWirePolicy(),
		Strategy:      difane.StrategyExact,
		CacheCapacity: cacheCap,
		QueueDepth:    4096,
	})
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// benchWireKey builds a flow key for the TPDst-keyed benchmark policy.
func benchWireKey(src uint32, dport uint16) difane.Key {
	var k difane.Key
	k[difane.FIPSrc] = uint64(src)
	k[difane.FTPDst] = uint64(dport)
	return k
}

// warmWireFlows pushes every (ingress, key) pair through the cluster and
// repeats until a full round triggers no new authority redirects: cache
// installs are asynchronous, so a detoured packet being delivered does not
// yet mean the ingress cache rule has landed.
func warmWireFlows(b *testing.B, d *difane.WireDeployment, at []uint32, ks []difane.Key) {
	b.Helper()
	for round := 0; round < 100; round++ {
		before := d.Measurements().Redirects
		for i := range ks {
			d.InjectPacket(0, at[i], ks[i], 100, 0)
		}
		d.Run(120)
		if d.Measurements().Redirects == before {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	b.Fatal("ingress caches never warmed")
}

// BenchmarkWireThroughput measures aggregate warm-cache data-plane
// throughput on an 8-switch cluster: all eight ingresses inject
// concurrently, every packet is a cache hit tunneled to one of eight
// egresses, and an iteration is one packet terminally accounted.
func BenchmarkWireThroughput(b *testing.B) {
	d := benchWireDeploy(b, 0)
	defer d.Close()
	var at []uint32
	var ks []difane.Key
	for _, g := range benchWireIDs {
		for e := uint32(0); e < 8; e++ {
			at = append(at, g)
			ks = append(ks, benchWireKey(0x0A000000|g<<8|e, uint16(1000+e)))
		}
	}
	warmWireFlows(b, d, at, ks)
	b.ReportAllocs()
	b.ResetTimer()
	per := len(ks) / 8
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		share := b.N / 8
		if g < b.N%8 {
			share++
		}
		wg.Add(1)
		go func(g, share int) {
			defer wg.Done()
			batch := make([]difane.PacketIn, 0, 256)
			for i := 0; i < share; i++ {
				idx := g*per + i%per
				batch = append(batch, difane.PacketIn{
					Ingress: at[idx], Key: ks[idx], Size: 100, Seq: uint64(i),
				})
				if len(batch) == cap(batch) {
					d.InjectBatch(batch)
					batch = batch[:0]
				}
			}
			if len(batch) > 0 {
				d.InjectBatch(batch)
			}
		}(g, share)
	}
	wg.Wait()
	d.Run(120)
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
}

// BenchmarkWireCacheHit measures one switch's hot path: a single warm flow
// injected back-to-back at ingress 0 and tunneled to egress 7, so the cost
// is classify + encapsulate + fabric handoff + deliver with no authority
// involvement.
func BenchmarkWireCacheHit(b *testing.B) {
	d := benchWireDeploy(b, 0)
	defer d.Close()
	k := benchWireKey(0x0A000001, 1007)
	warmWireFlows(b, d, []uint32{0}, []difane.Key{k})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.InjectPacket(0, 0, k, 100, uint64(i))
	}
	d.Run(120)
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
}

// BenchmarkWireMissStorm measures the full miss path under storm load:
// every packet is a brand-new flow (exact-match strategy, unique IPSrc),
// so each one redirects through an authority switch and triggers an async
// cache install. Caches are capacity-bounded so per-op cost stays
// independent of b.N.
func BenchmarkWireMissStorm(b *testing.B) {
	d := benchWireDeploy(b, 512)
	defer d.Close()
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		share := b.N / 8
		if g < b.N%8 {
			share++
		}
		wg.Add(1)
		go func(g, share int) {
			defer wg.Done()
			batch := make([]difane.PacketIn, 0, 256)
			for i := 0; i < share; i++ {
				k := benchWireKey(uint32(g)<<24|uint32(i+1), uint16(1000+(g+i)%8))
				batch = append(batch, difane.PacketIn{
					Ingress: uint32(g), Key: k, Size: 100, Seq: uint64(i),
				})
				if len(batch) == cap(batch) {
					d.InjectBatch(batch)
					batch = batch[:0]
				}
			}
			if len(batch) > 0 {
				d.InjectBatch(batch)
			}
		}(g, share)
	}
	wg.Wait()
	d.Run(120)
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
}

// BenchmarkProtoEncodeDecode measures control-message round trips.
func BenchmarkProtoEncodeDecode(b *testing.B) {
	m := &proto.FlowMod{
		Table: proto.TableCache, Op: proto.OpAdd,
		Rule: flowspace.Rule{
			ID: 7, Priority: 42,
			Match: flowspace.MatchAll().
				WithPrefix(flowspace.FIPSrc, 0x0A000000, 8).
				WithExact(flowspace.FTPDst, 80),
			Action: flowspace.Action{Kind: flowspace.ActForward, Arg: 3},
		},
		Idle: 10, Hard: 60,
	}
	var buf []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = proto.Encode(buf[:0], m)
	}
	_ = buf
}

// BenchmarkPacketWire measures packet header encode+decode.
func BenchmarkPacketWire(b *testing.B) {
	p := packet.Packet{Header: packet.Header{
		EthSrc: 0x001122334455, EthDst: 0xAABBCCDDEEFF,
		EthType: packet.EthTypeIPv4, IPProto: packet.ProtoTCP,
		IPSrc: packet.IP4(10, 0, 0, 1), IPDst: packet.IP4(10, 0, 0, 2),
		TPSrc: 1234, TPDst: 80,
	}}
	p.Encapsulate(packet.EncapRedirect, 1, 2)
	var buf []byte
	var q packet.Packet
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = p.AppendWire(buf[:0])
		if _, err := q.DecodeWire(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPartitioner measures partitioning a 10k-rule ACL.
func BenchmarkPartitioner(b *testing.B) {
	policy := difane.ClassBenchLike(difane.ACLConfig{
		Rules: 10000, MaxDepth: 8, PortRangeFrac: 0.25, DropFrac: 0.3,
		Egresses: []uint32{1, 2, 3, 4}, Seed: 9,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parts := difane.BuildPartitions(policy, difane.PartitionConfig{MaxRulesPerPartition: 512})
		if len(parts) == 0 {
			b.Fatal("no partitions")
		}
	}
}

// BenchmarkTCAMLookup measures single-table classification.
func BenchmarkTCAMLookup(b *testing.B) {
	policy := difane.ClassBenchLike(difane.ACLConfig{
		Rules: 1000, MaxDepth: 6, Egresses: []uint32{1}, Seed: 11,
	})
	var k difane.Key
	k[difane.FIPSrc] = 0x0A0B0C0D
	k[difane.FIPDst] = 0xC0A80101
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		difane.Evaluate(policy, k)
	}
}
