package core

import (
	"difane/internal/flowspace"
	"difane/internal/journal"
	"difane/internal/proto"
	"difane/internal/tcam"
	"difane/internal/topo"
)

// Controller is DIFANE's (deliberately thin) central controller: it owns
// the policy, runs the partitioning algorithm, distributes rules, and
// reacts to network dynamics. It never sits on the data path.
type Controller struct {
	net *Network
	// FailoverDelay models detection + rule-withdrawal time after an
	// authority switch fails (seconds).
	FailoverDelay float64
	// PolicyPushDelay models distribution time for a policy update.
	PolicyPushDelay float64

	// PolicyVersion counts applied policy updates.
	PolicyVersion int

	// Epoch is the controller's fencing token: it increments on every
	// controller (re)start, never within a controller's lifetime. Installs
	// stamped with an older epoch are rejected by fenced switches, so a
	// crashed controller's stragglers cannot clobber its successor's state.
	Epoch uint64

	// gen counts staged policy generations. Unlike PolicyVersion (which
	// increments when an update commits) it increments when an update is
	// *scheduled*, so two consistent updates in flight at once stage
	// disjoint generation bands instead of colliding.
	gen uint64

	// jour, when set, records every committed state change; JournalErr
	// holds the most recent append failure (appends happen inside
	// scheduled commit callbacks, which cannot return errors).
	jour       *journal.Journal
	JournalErr error
}

// NewController attaches a controller to a network.
func NewController(n *Network) *Controller {
	return &Controller{net: n, FailoverDelay: 0.2, PolicyPushDelay: 0.05, Epoch: 1}
}

// Network returns the managed network.
func (c *Controller) Network() *Network { return c.net }

// OnAuthorityFailure schedules the failover: after FailoverDelay the
// primary partition rules pointing at the failed switch are withdrawn from
// every switch, exposing the pre-installed backup rules. Returns the time
// at which the data plane converges.
func (c *Controller) OnAuthorityFailure(failed uint32) float64 {
	at := c.net.Eng.Now() + c.FailoverDelay
	c.net.Eng.At(at, func() {
		c.net.PromoteBackups(failed)
	})
	return at
}

// UpdatePolicy replaces the global policy: recompute partitions on the
// same authority set, push the new authority and partition rules after
// PolicyPushDelay, and invalidate all caches (stale cache rules would
// otherwise serve the old policy until timeout). Returns the convergence
// time.
func (c *Controller) UpdatePolicy(policy []flowspace.Rule) (float64, error) {
	parts := BuildPartitions(policy, c.net.cfg.Partition)
	auths := make([]uint32, 0, len(c.net.authSt))
	for id := range c.net.authSt {
		auths = append(auths, id)
	}
	sortU32(auths)
	assign, err := AssignWithReplication(parts, auths, c.net.cfg.Replication)
	if err != nil {
		return 0, err
	}
	at := c.net.Eng.Now() + c.PolicyPushDelay
	c.gen++
	generation := c.gen << 32
	c.net.Eng.At(at, func() {
		n := c.net
		installs, deletes := n.M.PolicyRuleInstalls, n.M.PolicyRuleDeletes
		n.reinstall(policy, assign)
		n.noteMods(generation, false, n.M.PolicyRuleInstalls-installs)
		n.noteMods(generation, true, n.M.PolicyRuleDeletes-deletes)
		c.PolicyVersion++
		c.logState()
	})
	return at, nil
}

// UpdatePolicyConsistent performs a make-before-break policy update: the
// new partitions' authority rules are installed alongside the old ones
// first, then the partition rules are switched and caches invalidated in
// a second step, and finally the old authority rules are removed. Unlike
// UpdatePolicy, there is no window in which a redirected packet can reach
// an authority switch that lacks rules for it — the price is transiently
// doubled authority TCAM occupancy.
//
// Returns (switchAt, cleanupAt): when the data plane starts following the
// new policy, and when the old rules are gone.
func (c *Controller) UpdatePolicyConsistent(policy []flowspace.Rule) (float64, float64, error) {
	n := c.net
	// A no-op update — the offered policy is semantically identical to the
	// running one — must not churn installed rules or invalidate caches:
	// redirected packets would re-derive the exact same cache rules. Only
	// the version advances, at the usual commit time.
	if PoliciesEqual(n.Policy, policy) {
		switchAt := n.Eng.Now() + c.PolicyPushDelay
		cleanupAt := switchAt + c.PolicyPushDelay
		n.Eng.At(switchAt, func() {
			c.PolicyVersion++
			c.logState()
		})
		return switchAt, cleanupAt, nil
	}
	parts := BuildPartitions(policy, c.net.cfg.Partition)
	auths := make([]uint32, 0, len(c.net.authSt))
	for id := range c.net.authSt {
		auths = append(auths, id)
	}
	sortU32(auths)
	assign, err := AssignWithReplication(parts, auths, c.net.cfg.Replication)
	if err != nil {
		return 0, 0, err
	}
	// Phase 1: push the new authority rules (re-keyed so they coexist with
	// the old generation) at t+push. The generation band comes from a
	// counter bumped at scheduling time, so overlapping consistent updates
	// stage disjoint bands instead of colliding on PolicyVersion+1.
	installAt := n.Eng.Now() + c.PolicyPushDelay
	c.gen++
	generation := c.gen << 32
	staged := stageAssignment(assign, generation)
	n.Eng.At(installAt, func() {
		var installed uint64
		for i, p := range staged.Partitions {
			for _, host := range staged.ReplicasFor(i) {
				sw := n.Switches[host]
				for _, r := range p.Rules {
					mod := authorityAdd(i, r)
					_ = sw.ApplyFlowMod(n.Eng.Now(), &mod)
					n.M.PolicyRuleInstalls++
					installed++
				}
			}
		}
		n.noteMods(generation, false, installed)
	})
	// Phase 2: atomically switch partition rules + handlers + caches.
	switchAt := installAt + c.PolicyPushDelay
	n.Eng.At(switchAt, func() {
		n.Policy = append([]flowspace.Rule(nil), policy...)
		n.Assignment = staged
		n.authorityAt = make(map[uint32][]*Authority)
		for i, p := range staged.Partitions {
			for _, host := range staged.ReplicasFor(i) {
				auth := NewAuthority(host, p, n.cfg.Strategy)
				auth.RegionIndex = i
				n.configureAuthority(auth)
				n.authorityAt[host] = append(n.authorityAt[host], auth)
			}
		}
		n.installPartitionRules()
		for _, sw := range n.Switches {
			sw.ClearCache()
		}
		c.PolicyVersion++
		c.logState()
	})
	// Phase 3: garbage-collect the previous generation's authority rules.
	cleanupAt := switchAt + c.PolicyPushDelay
	n.Eng.At(cleanupAt, func() {
		var removed uint64
		for _, sw := range n.Switches {
			removed += uint64(sw.Table(proto.TableAuthority).DeleteWhere(func(e tcam.Entry) bool {
				return AuthorityEntryRuleID(e.Rule.ID) < generation
			}))
		}
		n.M.PolicyRuleDeletes += removed
		n.noteMods(generation, true, removed)
	})
	return switchAt, cleanupAt, nil
}

// PoliciesEqual reports whether two rule lists are semantically identical:
// the same rules (by ID, priority, match, and action) regardless of slice
// order.
func PoliciesEqual(a, b []flowspace.Rule) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]flowspace.Rule(nil), a...)
	bs := append([]flowspace.Rule(nil), b...)
	flowspace.SortRules(as)
	flowspace.SortRules(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// stageAssignment re-keys every clipped rule ID into a generation band so
// two policy generations can coexist in one authority TCAM. Priorities are
// untouched: within a partition's region the rules remain internally
// consistent, and the old and new generations only ever serve disjoint
// time windows (the partition-rule switch is the commit point); the
// handler evaluates its own generation's rule list, not the shared TCAM.
func stageAssignment(a Assignment, generation uint64) Assignment {
	out := a
	out.Partitions = make([]Partition, len(a.Partitions))
	for i, p := range a.Partitions {
		rules := make([]flowspace.Rule, len(p.Rules))
		for j, r := range p.Rules {
			r.ID = generation | (r.ID & 0xFFFFFFFF)
			rules[j] = r
		}
		out.Partitions[i] = Partition{Region: p.Region, Rules: rules}
	}
	return out
}

// OnTopologyChange re-derives every switch's nearest-replica partition
// rules after link or node state changed (a failed link can make a
// different replica closest, or the previous target unreachable). The
// refresh lands after FailoverDelay, modeling detection + push. Returns
// the convergence time.
func (c *Controller) OnTopologyChange() float64 {
	at := c.net.Eng.Now() + c.FailoverDelay
	c.net.Eng.At(at, func() {
		c.net.installPartitionRules()
	})
	return at
}

// InvalidateHost removes cache rules whose match could apply to the given
// host address (source or destination) from every switch — the targeted
// invalidation DIFANE uses for host mobility. Returns entries removed.
func (c *Controller) InvalidateHost(ip uint32) int {
	total := 0
	for _, sw := range c.net.Switches {
		tb := sw.Table(proto.TableCache)
		total += tb.DeleteWhere(func(e tcam.Entry) bool {
			srcHit := e.Rule.Match.Fields[flowspace.FIPSrc].Matches(uint64(ip))
			dstHit := e.Rule.Match.Fields[flowspace.FIPDst].Matches(uint64(ip))
			return srcHit || dstHit
		})
	}
	return total
}

// reinstall atomically swaps the network onto a new policy + assignment.
func (n *Network) reinstall(policy []flowspace.Rule, assign Assignment) {
	n.Policy = append([]flowspace.Rule(nil), policy...)
	n.Assignment = assign
	n.authorityAt = make(map[uint32][]*Authority)
	everything := func(tcam.Entry) bool { return true }
	for _, sw := range n.Switches {
		// Drop all derived state: caches, authority rules, partition rules.
		sw.ClearCache()
		n.M.PolicyRuleDeletes += uint64(sw.Table(proto.TableAuthority).DeleteWhere(everything))
		sw.Table(proto.TablePartition).DeleteWhere(everything)
	}
	n.installAssignment()
}

// sortU32 sorts ascending without pulling in sort for one call site... it
// actually just delegates; kept tiny for clarity.
func sortU32(v []uint32) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// PlaceAuthorities picks k authority switches spread over the topology
// using a greedy farthest-point heuristic seeded at the lowest node ID —
// the placement knob the stretch experiment sweeps.
func PlaceAuthorities(g *topo.Graph, k int) []uint32 {
	nodes := g.Nodes()
	if len(nodes) == 0 || k <= 0 {
		return nil
	}
	if k > len(nodes) {
		k = len(nodes)
	}
	chosen := []topo.NodeID{nodes[0]}
	for len(chosen) < k {
		var best topo.NodeID
		bestDist := -1.0
		for _, cand := range nodes {
			already := false
			for _, c := range chosen {
				if c == cand {
					already = true
					break
				}
			}
			if already {
				continue
			}
			// Distance to the nearest chosen authority.
			nearest := -1.0
			for _, c := range chosen {
				if d, ok := g.Dist(cand, c); ok {
					if nearest < 0 || d < nearest {
						nearest = d
					}
				}
			}
			if nearest > bestDist {
				best, bestDist = cand, nearest
			}
		}
		if bestDist < 0 {
			break
		}
		chosen = append(chosen, best)
	}
	out := make([]uint32, len(chosen))
	for i, c := range chosen {
		out[i] = uint32(c)
	}
	return out
}
