package wire

import (
	"testing"
	"time"

	"difane/internal/core"
	"difane/internal/proto"
	"difane/internal/testutil"
)

// newHACluster builds a cluster with three controller replicas and a fast
// election, over the failover topology (two authorities, so a leader kill
// can be combined with switch kills).
func newHACluster(t *testing.T) *Cluster {
	t.Helper()
	c, err := NewCluster(ClusterConfig{
		Switches:    []uint32{0, 1, 2, 3, 4},
		Authorities: []uint32{2, 3},
		Policy:      failoverPolicy(),
		Strategy:    core.StrategyExact,
		HA:          HAConfig{Replicas: 3, ElectionDelay: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// awaitLeader waits for some replica to hold office.
func awaitLeader(t *testing.T, c *Cluster) int {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if lid := c.Leader(); lid >= 0 && !c.ControllerDown() {
			return lid
		}
		if time.Now().After(deadline) {
			t.Fatal("no leader elected")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestLeaderKillAutoFailover is the HA acceptance scenario: killing the
// leader needs no RestoreController — the surviving replicas elect a new
// leader, the epoch fences the dead one out, and the control plane (rule
// installs) works again without manual intervention.
func TestLeaderKillAutoFailover(t *testing.T) {
	c := newHACluster(t)
	if lid := awaitLeader(t, c); lid != 0 {
		t.Fatalf("initial leader = %d, want 0", lid)
	}
	epochBefore := c.Epoch()

	if !c.KillController() {
		t.Fatal("KillController failed")
	}
	if c.ReplicaAlive(0) {
		t.Error("killed leader replica still alive")
	}

	// No RestoreController: the election must seat a new leader on its own.
	newLeader := awaitLeader(t, c)
	if newLeader == 0 {
		t.Fatalf("leadership did not move off the killed replica")
	}
	if e := c.Epoch(); e <= epochBefore {
		t.Errorf("epoch = %d after election, want > %d", e, epochBefore)
	}
	m := c.Measurements()
	if m.LeaderElections != 1 {
		t.Errorf("LeaderElections = %d, want 1", m.LeaderElections)
	}
	if m.LeaderElection.N() == 0 {
		t.Error("no election duration recorded")
	}
	if m.ControllerOutages != 1 {
		t.Errorf("ControllerOutages = %d, want 1", m.ControllerOutages)
	}

	// The new leader's control plane works: an install round-trips, and
	// traffic (including the authority detour) still flows.
	mod := proto.FlowMod{Table: proto.TablePartition, Op: proto.OpAdd,
		Rule: failoverPolicy()[0]}
	mod.Rule.ID = 999_999
	if err := c.InstallRule(0, mod); err != nil {
		t.Fatalf("install under new leader: %v", err)
	}
	if !c.Inject(0, httpHeader(1), 100) {
		t.Fatal("inject failed")
	}
	if d := awaitDelivery(t, c); d.Egress != 4 {
		t.Fatalf("delivery after failover: %+v", d)
	}

	// A second kill moves leadership again.
	if !c.KillController() {
		t.Fatal("second KillController failed")
	}
	third := awaitLeader(t, c)
	if third == newLeader {
		t.Fatalf("leadership did not move off second killed replica")
	}
	if m := c.Measurements(); m.LeaderElections != 2 {
		t.Errorf("LeaderElections = %d after second kill, want 2", m.LeaderElections)
	}
}

// TestKillAllReplicasNeedsRestore: with every replica dead there is nobody
// to elect; RestoreController revives the set and promotes a leader.
func TestKillAllReplicasNeedsRestore(t *testing.T) {
	c := newHACluster(t)
	for kills := 0; kills < 3; kills++ {
		deadline := time.Now().Add(5 * time.Second)
		for !c.KillController() {
			// Elections are in flight; wait for a leader to kill.
			if time.Now().After(deadline) {
				t.Fatalf("kill %d never found a leader", kills)
			}
			time.Sleep(time.Millisecond)
		}
	}
	if !c.ControllerDown() {
		t.Fatal("controller not down with all replicas killed")
	}
	if c.Leader() >= 0 {
		t.Fatalf("leader = %d with all replicas killed, want none", c.Leader())
	}
	epochBefore := c.Epoch()
	if !c.RestoreController() {
		t.Fatal("RestoreController failed")
	}
	awaitLeader(t, c)
	if e := c.Epoch(); e <= epochBefore {
		t.Errorf("epoch = %d after full restore, want > %d", e, epochBefore)
	}
	for id := 0; id < 3; id++ {
		if !c.ReplicaAlive(id) {
			t.Errorf("replica %d not revived", id)
		}
	}
}

// TestLeaderChurnNoGoroutineLeak hammers kill/restore cycles and asserts
// the cluster tears down to the baseline goroutine count — elections,
// BFD writers, and reconnect loops must all terminate.
func TestLeaderChurnNoGoroutineLeak(t *testing.T) {
	check := testutil.CheckGoroutineLeaks(t, 4)
	c, err := NewCluster(ClusterConfig{
		Switches:    []uint32{0, 1, 2, 3, 4},
		Authorities: []uint32{2, 3},
		Policy:      failoverPolicy(),
		Strategy:    core.StrategyExact,
		HA:          HAConfig{Replicas: 3, ElectionDelay: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		deadline := time.Now().Add(5 * time.Second)
		for !c.KillController() {
			if time.Now().After(deadline) {
				t.Fatal("no leader to kill")
			}
			time.Sleep(time.Millisecond)
		}
		awaitLeader(t, c)
		c.RestoreController() // revive the dead replica for the next round
		// Traffic keeps flowing across the churn.
		if !c.Inject(0, httpHeader(uint32(i+1)), 100) {
			t.Fatal("inject failed")
		}
		awaitDelivery(t, c)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	check()
}

// TestStaleLeaderInstallFenced: after an election the old leader's epoch
// is stale; a FlowMod stamped with it must be rejected by every switch.
func TestStaleLeaderInstallFenced(t *testing.T) {
	c := newHACluster(t)
	awaitLeader(t, c)
	staleEpoch := c.Epoch()

	if !c.KillController() {
		t.Fatal("KillController failed")
	}
	awaitLeader(t, c)

	// First push a current-epoch install so the switch's fence has
	// observed the new epoch.
	mod := proto.FlowMod{Table: proto.TablePartition, Op: proto.OpAdd,
		Rule: failoverPolicy()[0]}
	mod.Rule.ID = 999_998
	if err := c.InstallRule(1, mod); err != nil {
		t.Fatalf("fresh install: %v", err)
	}

	// Now replay the dead leader's stamp.
	rejBefore := c.Measurements().StaleInstallsRejected
	stale := mod
	stale.Rule.ID = 999_997
	stale.Epoch = staleEpoch
	_ = c.InstallRule(1, stale)
	deadline := time.Now().Add(5 * time.Second)
	for c.Measurements().StaleInstallsRejected == rejBefore {
		if time.Now().After(deadline) {
			t.Fatal("stale-epoch install was not rejected")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBFDDetectionTenfoldFaster is the bench guard from the issue: with
// BFD on (defaults: 2ms interval, multiplier 3) a killed switch is
// detected at least ten times faster than with the heartbeat detector
// alone at its defaults-scale configuration.
func TestBFDDetectionTenfoldFaster(t *testing.T) {
	hb := HeartbeatConfig{Interval: 100 * time.Millisecond, MissThreshold: 3}
	measure := func(disableBFD bool) float64 {
		cfg := ClusterConfig{
			Switches:    []uint32{0, 1, 2, 3, 4},
			Authorities: []uint32{2, 3},
			Policy:      failoverPolicy(),
			Strategy:    core.StrategyExact,
			Heartbeat:   hb,
			BFD:         BFDConfig{Disable: disableBFD},
		}
		c, err := NewCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		// Let the BFD handshakes establish (and heartbeats flow) first.
		time.Sleep(50 * time.Millisecond)
		if !c.KillSwitch(2) {
			t.Fatal("kill failed")
		}
		awaitDead(t, c, 2)
		d := c.Measurements().FailoverDetection
		if d.N() == 0 {
			t.Fatal("no detection latency recorded")
		}
		return d.Mean()
	}

	bfdSec := measure(false)
	hbSec := measure(true)
	t.Logf("detection: bfd=%.1fms heartbeat=%.1fms (%.0fx)",
		bfdSec*1e3, hbSec*1e3, hbSec/bfdSec)
	if bfdSec > hbSec/10 {
		t.Errorf("BFD detection %.1fms not ≤ 1/10 of heartbeat %.1fms",
			bfdSec*1e3, hbSec*1e3)
	}
}

// TestHAStatusSurface exercises the /ha snapshot: replica set, leader,
// and per-switch BFD session states.
func TestHAStatusSurface(t *testing.T) {
	c := newHACluster(t)
	awaitLeader(t, c)
	// Wait for the BFD handshakes so states are meaningful.
	deadline := time.Now().Add(5 * time.Second)
	for {
		up := 0
		for _, info := range c.BFDSessions() {
			if info.State.String() == "up" {
				up++
			}
		}
		if up == 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("BFD sessions never established (%d/5 up)", up)
		}
		time.Sleep(time.Millisecond)
	}
	st := c.HAStatus()
	if st.Leader != 0 {
		t.Errorf("leader = %d, want 0", st.Leader)
	}
	if len(st.Replicas) != 3 {
		t.Fatalf("replicas = %d, want 3", len(st.Replicas))
	}
	if !st.Replicas[0].Leader || st.Replicas[1].Leader {
		t.Errorf("leader flags wrong: %+v", st.Replicas)
	}
	for _, r := range st.Replicas {
		if !r.Alive {
			t.Errorf("replica %d not alive", r.ID)
		}
		if r.NextSeq == 0 {
			t.Errorf("replica %d journal empty (no boot record shipped)", r.ID)
		}
	}
	if len(st.BFD) != 5 {
		t.Fatalf("bfd sessions = %d, want 5", len(st.BFD))
	}
	for _, s := range st.BFD {
		if s.State != "up" {
			t.Errorf("switch %d session = %s, want up", s.Switch, s.State)
		}
		if s.DetectUsec <= 0 {
			t.Errorf("switch %d detect time not reported", s.Switch)
		}
	}
}

// TestJournalReplicationAcrossElection: control-plane events journaled by
// the first leader survive onto the next one (log shipping), and the
// election itself lands as a durable epoch record.
func TestJournalReplicationAcrossElection(t *testing.T) {
	c := newHACluster(t)
	awaitLeader(t, c)

	// Generate a journaled event under leader 0: a switch death.
	if !c.KillSwitch(4) {
		t.Fatal("kill failed")
	}
	awaitDead(t, c, 4)

	if !c.KillController() {
		t.Fatal("KillController failed")
	}
	lid := awaitLeader(t, c)

	// The new leader's journal must contain the pre-election death record
	// (shipped while replica 0 led) plus its own epoch record.
	c.haMu.Lock()
	recs, err := c.replicas[lid].jrnl.RecordsAfter(0)
	c.haMu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	var sawBoot, sawDeath, sawEpoch bool
	for _, r := range recs {
		switch r.Kind {
		case "boot":
			sawBoot = true
		case "death":
			sawDeath = true
		case "epoch":
			sawEpoch = true
		}
	}
	if !sawBoot || !sawDeath || !sawEpoch {
		t.Errorf("new leader journal missing records: boot=%v death=%v epoch=%v (%d records)",
			sawBoot, sawDeath, sawEpoch, len(recs))
	}
}
