package tcam

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestParallelLookupDuringRollingInstall hammers one table with lookups
// from many goroutines while a writer continuously reinstalls and deletes
// rules. Every lookup must observe a coherent snapshot: it always matches
// (a catch-all is never removed), the returned rule actually covers the
// looked-up key, and it is never a stale higher-priority rule for a
// different port — any of those would mean a half-applied table leaked
// through the copy-on-write publish. Run under -race this also proves the
// lock-free read path is data-race-free against mutations.
func TestParallelLookupDuringRollingInstall(t *testing.T) {
	const (
		ports   = 8
		readers = 8
		rounds  = 2000
	)
	tb := New("race", 0, EvictNone)
	mustInsert(t, tb, 0, rule(1, 1, 0)) // catch-all, never touched again
	for p := 0; p < ports; p++ {
		mustInsert(t, tb, 0, rule(uint64(100+p), 10, uint64(1000+p)))
	}

	var done atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer: rolling reinstall/delete over the port rules
		defer wg.Done()
		defer done.Store(true)
		for i := 0; i < rounds; i++ {
			p := i % ports
			id := uint64(100 + p)
			if i%5 == 4 {
				tb.Delete(id)
			}
			mustInsert(t, tb, float64(i), rule(id, 10, uint64(1000+p)))
		}
	}()

	errs := make(chan string, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; !done.Load(); i++ {
				p := (r + i) % ports
				k := keyPort(uint64(1000 + p))
				got, ok := tb.Lookup(float64(i), k, 64)
				switch {
				case !ok:
					errs <- "lookup missed with a catch-all installed"
					return
				case !got.Match.Matches(k):
					errs <- "lookup returned a rule that does not cover the key"
					return
				case got.ID != 1 && got.ID != uint64(100+p):
					errs <- "lookup returned another port's rule"
					return
				}
				// The published snapshot must always be in TCAM order.
				if i%64 == 0 {
					rules := tb.Rules()
					for j := 1; j < len(rules); j++ {
						if rules[j].Priority > rules[j-1].Priority {
							errs <- "snapshot out of TCAM priority order"
							return
						}
					}
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	if msg, broke := <-errs; broke {
		t.Fatal(msg)
	}
}
