package telemetry

import "sort"

// Journey is one sampled packet's end-to-end story, assembled by joining
// per-node flight-recorder rings on trace ID and ordering the spans by
// timestamp. A journey is Complete when both its ingress span and a
// terminal span (verdict or shed) survived in the rings; an incomplete
// journey is Gap-marked when a ring wrapped over the window where its
// missing spans would have been, and InFlight when its newest span is
// recent enough that the packet may simply still be traveling.
type Journey struct {
	Trace   uint64
	Flow    FlowTuple
	StartTS int64 // TS of the earliest retained span
	EndTS   int64 // TS of the latest retained span
	// LatencyNS is the delivery latency when the terminal span recorded
	// one (EvVerdict deliveries carry it in Value), else EndTS−StartTS.
	LatencyNS int64
	Terminal  string // verdict name of the terminal span ("" if none)
	Complete  bool
	Gap       bool
	InFlight  bool
	Dropped   bool // terminal outcome was anything but delivery
	Events    []Event
}

// JourneyFilter selects and orders assembled journeys.
type JourneyFilter struct {
	Trace       uint64 // exact trace ID, 0 = any
	Flow        uint64 // flow hash, 0 = any
	DroppedOnly bool   // keep only journeys whose terminal span is a drop/shed
	Slowest     bool   // order by latency descending instead of StartTS
	Limit       int    // keep at most Limit journeys after ordering, 0 = all
	// NowNS/FreshNS classify incomplete journeys as in-flight: a journey
	// whose newest span is younger than FreshNS (default 250ms) at NowNS
	// may still be traveling rather than lost. NowNS 0 disables the check.
	NowNS   int64
	FreshNS int64
}

// JourneyStats summarizes an assembly pass — the soak gate's numerators.
type JourneyStats struct {
	Total       int `json:"total"`
	Complete    int `json:"complete"`
	Gapped      int `json:"gapped"`      // incomplete, explained by a ring wrap
	InFlight    int `json:"in_flight"`   // incomplete, but too fresh to judge
	Unexplained int `json:"unexplained"` // incomplete with no excuse
}

// AssembleJourneys snapshots every ring, joins trace-stamped events into
// journeys, classifies each, and returns them with aggregate stats. Stats
// cover every assembled journey regardless of filtering; the returned
// slice honors the filter and ordering.
func AssembleJourneys(rec *Recorder, f JourneyFilter) ([]Journey, JourneyStats) {
	if f.FreshNS == 0 {
		f.FreshNS = 250_000_000
	}
	byTrace := make(map[uint64][]Event)
	// wrapTS collects, for each ring that wrapped, the oldest retained
	// timestamp: spans older than it may have been overwritten.
	var wrapTS []int64
	for _, id := range rec.Nodes() {
		ring := rec.Ring(id)
		snap := ring.Snapshot()
		if ring.Dropped() > 0 && len(snap) > 0 {
			oldest := snap[0].TS
			for _, ev := range snap {
				if ev.TS < oldest {
					oldest = ev.TS
				}
			}
			wrapTS = append(wrapTS, oldest)
		}
		for _, ev := range snap {
			if ev.Trace != 0 {
				byTrace[ev.Trace] = append(byTrace[ev.Trace], ev)
			}
		}
	}
	var stats JourneyStats
	out := make([]Journey, 0, len(byTrace))
	for trace, evs := range byTrace {
		sort.Slice(evs, func(i, j int) bool {
			a, b := &evs[i], &evs[j]
			if a.TS != b.TS {
				return a.TS < b.TS
			}
			if a.Node != b.Node {
				return a.Node < b.Node
			}
			return a.Seq < b.Seq
		})
		j := Journey{Trace: trace, Events: evs, StartTS: evs[0].TS, EndTS: evs[len(evs)-1].TS}
		hasIngress := false
		for i := range evs {
			ev := &evs[i]
			if ev.Flow.Hash != 0 {
				j.Flow = ev.Flow
			}
			switch ev.Kind {
			case EvIngress:
				hasIngress = true
			case EvVerdict, EvShed:
				j.Terminal = VerdictName(ev.Verdict)
				j.Dropped = ev.Verdict != VDelivered
				if ev.Verdict == VDelivered && ev.Value > 0 {
					j.LatencyNS = int64(ev.Value)
				}
			}
		}
		j.Complete = hasIngress && j.Terminal != ""
		if j.LatencyNS == 0 {
			j.LatencyNS = j.EndTS - j.StartTS
		}
		if !j.Complete {
			// A wrapped ring whose retained window starts after this
			// journey began could have overwritten the missing spans.
			for _, ts := range wrapTS {
				if ts >= j.StartTS {
					j.Gap = true
					break
				}
			}
			if !j.Gap && f.NowNS > 0 && f.NowNS-j.EndTS < f.FreshNS {
				j.InFlight = true
			}
		}
		stats.Total++
		switch {
		case j.Complete:
			stats.Complete++
		case j.Gap:
			stats.Gapped++
		case j.InFlight:
			stats.InFlight++
		default:
			stats.Unexplained++
		}
		if f.Trace != 0 && j.Trace != f.Trace {
			continue
		}
		if f.Flow != 0 && j.Flow.Hash != f.Flow {
			continue
		}
		if f.DroppedOnly && !(j.Dropped && j.Terminal != "") {
			continue
		}
		out = append(out, j)
	}
	if f.Slowest {
		sort.Slice(out, func(i, j int) bool {
			if out[i].LatencyNS != out[j].LatencyNS {
				return out[i].LatencyNS > out[j].LatencyNS
			}
			return out[i].Trace < out[j].Trace
		})
	} else {
		sort.Slice(out, func(i, j int) bool {
			if out[i].StartTS != out[j].StartTS {
				return out[i].StartTS < out[j].StartTS
			}
			return out[i].Trace < out[j].Trace
		})
	}
	if f.Limit > 0 && len(out) > f.Limit {
		out = out[:f.Limit]
	}
	return out, stats
}

// Completeness is the soak acceptance ratio: complete journeys over all
// journeys that had a fair chance to complete (gap-explained and
// in-flight journeys are excluded from the denominator). Returns 1 when
// nothing qualifies.
func (s JourneyStats) Completeness() float64 {
	denom := s.Total - s.Gapped - s.InFlight
	if denom <= 0 {
		return 1
	}
	return float64(s.Complete) / float64(denom)
}

// JourneyJSON is the /journeys wire shape for one journey.
type JourneyJSON struct {
	Trace     uint64      `json:"trace"`
	Flow      uint64      `json:"flow,omitempty"`
	Src       string      `json:"src,omitempty"`
	Dst       string      `json:"dst,omitempty"`
	StartTS   int64       `json:"start_ts_ns"`
	EndTS     int64       `json:"end_ts_ns"`
	LatencyNS int64       `json:"latency_ns"`
	Terminal  string      `json:"terminal,omitempty"`
	Complete  bool        `json:"complete"`
	Gap       bool        `json:"gap,omitempty"`
	InFlight  bool        `json:"in_flight,omitempty"`
	Dropped   bool        `json:"dropped,omitempty"`
	Events    []EventJSON `json:"events"`
}

// JSON converts a Journey to its wire shape.
func (j Journey) JSON() JourneyJSON {
	out := JourneyJSON{
		Trace:     j.Trace,
		Flow:      j.Flow.Hash,
		StartTS:   j.StartTS,
		EndTS:     j.EndTS,
		LatencyNS: j.LatencyNS,
		Terminal:  j.Terminal,
		Complete:  j.Complete,
		Gap:       j.Gap,
		InFlight:  j.InFlight,
		Dropped:   j.Dropped,
		Events:    make([]EventJSON, 0, len(j.Events)),
	}
	if j.Flow.IPSrc != 0 || j.Flow.TPSrc != 0 {
		out.Src = ipPort(j.Flow.IPSrc, j.Flow.TPSrc)
	}
	if j.Flow.IPDst != 0 || j.Flow.TPDst != 0 {
		out.Dst = ipPort(j.Flow.IPDst, j.Flow.TPDst)
	}
	for _, ev := range j.Events {
		out.Events = append(out.Events, ev.JSON())
	}
	return out
}
