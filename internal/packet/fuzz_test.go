package packet

import (
	"testing"
)

// FuzzDecodeWire hammers the packet decoder with arbitrary bytes: it must
// never panic, and everything it accepts must re-encode to bytes that
// decode to the same packet (decode∘encode fixpoint).
func FuzzDecodeWire(f *testing.F) {
	p := samplePacket()
	f.Add(p.AppendWire(nil))
	p.Encapsulate(EncapRedirect, 7, 9)
	f.Add(p.AppendWire(nil))
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0x03, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		var q Packet
		n, err := q.DecodeWire(data)
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		// Accepted input: re-encode and decode must agree.
		out := q.AppendWire(nil)
		var r Packet
		if _, err := r.DecodeWire(out); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if r.Header != q.Header {
			t.Fatalf("re-decode header mismatch:\n%+v\n%+v", r.Header, q.Header)
		}
		if (r.Encap == nil) != (q.Encap == nil) {
			t.Fatal("re-decode encap presence mismatch")
		}
		if r.Encap != nil && *r.Encap != *q.Encap {
			t.Fatalf("re-decode encap mismatch: %+v vs %+v", r.Encap, q.Encap)
		}
	})
}
