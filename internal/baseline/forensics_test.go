package baseline

import (
	"testing"

	"difane/internal/telemetry"
)

// TestBaselineJourneyPuntStory: the reactive baseline tells its first-packet
// story in the shared span vocabulary — the punt to the controller is a
// redirect (peer = the controller's node), the policy evaluation an
// authority hit, and the microflow install closes the loop — so journey
// assembly reads identically across all three backends.
func TestBaselineJourneyPuntStory(t *testing.T) {
	n := newNet(t, Config{Tracing: true, TraceSample: 1})
	n.InjectPacket(0, 0, flowKey(1, 80), 100, 0)
	n.Run(1)

	js, stats := n.Journeys(telemetry.JourneyFilter{})
	if stats.Total != 1 || stats.Complete != 1 {
		t.Fatalf("stats = %+v, want 1 complete journey", stats)
	}
	j := js[0]
	if !j.Complete || j.Dropped || j.Terminal != "delivered" || j.LatencyNS <= 0 {
		t.Fatalf("journey = %+v", j)
	}
	var punt, authority, install, verdict bool
	for _, ev := range j.Events {
		switch ev.Kind {
		case telemetry.EvRedirect:
			punt = ev.Node == 0 && ev.Peer == 2 // controller attaches at node 2
		case telemetry.EvAuthority:
			authority = ev.Node == 2
		case telemetry.EvInstall:
			install = ev.Node == 0 && ev.Table == telemetry.TableCache
		case telemetry.EvVerdict:
			verdict = ev.Node == 4 && ev.Verdict == telemetry.VDelivered
		}
	}
	if !punt || !authority || !install || !verdict {
		t.Fatalf("incomplete punt story (punt %v authority %v install %v verdict %v): %+v",
			punt, authority, install, verdict, j.Events)
	}
}

// TestBaselineSecondPacketJourneyIsCacheHit: once the microflow rule is
// installed, a sampled later packet's journey is just ingress → forward →
// delivered, with no controller involvement.
func TestBaselineSecondPacketJourneyIsCacheHit(t *testing.T) {
	n := newNet(t, Config{Tracing: true, TraceSample: 1})
	n.InjectPacket(0, 0, flowKey(1, 80), 100, 0)
	n.InjectPacket(0.5, 0, flowKey(1, 80), 100, 1)
	n.Run(1)

	js, stats := n.Journeys(telemetry.JourneyFilter{})
	if stats.Total != 2 || stats.Complete != 2 {
		t.Fatalf("stats = %+v, want 2 complete journeys", stats)
	}
	// Journeys are ordered by start time; the second is the cache hit.
	second := js[1]
	var forward, redirected bool
	for _, ev := range second.Events {
		switch ev.Kind {
		case telemetry.EvForward:
			forward = ev.Table == telemetry.TableCache
		case telemetry.EvRedirect:
			redirected = true
		}
	}
	if !forward || redirected {
		t.Fatalf("second packet should hit the microflow rule without a punt: %+v", second.Events)
	}
}
