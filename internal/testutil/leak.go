// Package testutil holds helpers shared across the repo's test suites.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// CheckGoroutineLeaks snapshots the goroutine count and returns a function
// to defer (or call after cleanup): it polls — giving lingering goroutines
// time to observe closed channels and exit — until the count returns to
// within slack of the baseline, and fails the test with a full stack dump
// if it has not after five seconds. A slack of 2 absorbs the runtime's own
// transient goroutines (GC workers, test timers).
//
//	defer testutil.CheckGoroutineLeaks(t, 2)()
func CheckGoroutineLeaks(t *testing.T, slack int) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			runtime.GC()
			if runtime.NumGoroutine() <= before+slack {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<16)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutine leak: %d before, %d after\n%s",
					before, runtime.NumGoroutine(), buf[:n])
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}
