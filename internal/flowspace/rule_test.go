package flowspace

import (
	"math/rand"
	"testing"
)

func aclRule(id uint64, prio int32, m Match, kind ActionKind) Rule {
	return Rule{ID: id, Priority: prio, Match: m, Action: Action{Kind: kind}}
}

// A small firewall-shaped table: specific permits over a broad deny.
func firewallTable() []Rule {
	return []Rule{
		aclRule(1, 100, MatchAll().WithExact(FTPDst, 80), ActForward),
		aclRule(2, 90, MatchAll().WithExact(FTPDst, 22), ActForward),
		aclRule(3, 50, MatchAll().WithPrefix(FIPSrc, 0x0A000000, 8), ActForward),
		aclRule(4, 0, MatchAll(), ActDrop),
	}
}

func TestEvalTablePriorityOrder(t *testing.T) {
	rs := firewallTable()
	k := Key{}
	k[FTPDst] = 80
	k[FIPSrc] = 0x0A000001
	got, ok := EvalTable(rs, k)
	if !ok || got.ID != 1 {
		t.Fatalf("http packet must hit rule 1, got %v ok=%v", got, ok)
	}
	k[FTPDst] = 443
	got, _ = EvalTable(rs, k)
	if got.ID != 3 {
		t.Fatalf("10/8 packet must hit rule 3, got %v", got)
	}
	k[FIPSrc] = 0x0B000001
	got, _ = EvalTable(rs, k)
	if got.ID != 4 {
		t.Fatalf("other packet must hit default drop, got %v", got)
	}
}

func TestEvalTableEmptyAndNoMatch(t *testing.T) {
	if _, ok := EvalTable(nil, Key{}); ok {
		t.Fatal("empty table must not match")
	}
	rs := []Rule{aclRule(1, 10, MatchAll().WithExact(FTPDst, 80), ActForward)}
	k := Key{}
	k[FTPDst] = 81
	if _, ok := EvalTable(rs, k); ok {
		t.Fatal("non-matching key must not match")
	}
}

func TestEvalTableTieBreakByID(t *testing.T) {
	rs := []Rule{
		aclRule(9, 10, MatchAll(), ActDrop),
		aclRule(2, 10, MatchAll(), ActForward),
	}
	got, _ := EvalTable(rs, Key{})
	if got.ID != 2 {
		t.Fatalf("equal priority must break ties by lower ID, got %d", got.ID)
	}
}

func TestSortRulesIsTCAMOrder(t *testing.T) {
	rs := firewallTable()
	rng := rand.New(rand.NewSource(3))
	rng.Shuffle(len(rs), func(i, j int) { rs[i], rs[j] = rs[j], rs[i] })
	SortRules(rs)
	for i := 1; i < len(rs); i++ {
		if rs[i].Before(rs[i-1]) {
			t.Fatalf("rules out of order at %d: %v before %v", i, rs[i], rs[i-1])
		}
	}
	// First-match scan of sorted rules must agree with EvalTable.
	rngK := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		k := randKey(rngK)
		want, wantOK := EvalTable(rs, k)
		var got Rule
		gotOK := false
		for _, r := range rs {
			if r.Match.Matches(k) {
				got, gotOK = r, true
				break
			}
		}
		if gotOK != wantOK || (gotOK && got.ID != want.ID) {
			t.Fatalf("sorted-scan mismatch for %v: got %v want %v", k, got, want)
		}
	}
}

func TestShadowedSingleCover(t *testing.T) {
	rs := []Rule{
		aclRule(1, 100, MatchAll().WithPrefix(FIPSrc, 0x0A000000, 8), ActDrop),
		aclRule(2, 50, MatchAll().WithPrefix(FIPSrc, 0x0A0A0000, 16), ActForward),
		aclRule(3, 10, MatchAll().WithPrefix(FIPSrc, 0x0B000000, 8), ActForward),
	}
	if !Shadowed(rs, 1) {
		t.Fatal("rule 2 is inside higher-priority rule 1 and must be shadowed")
	}
	if Shadowed(rs, 2) {
		t.Fatal("rule 3 is disjoint from rule 1 and must not be shadowed")
	}
	if Shadowed(rs, 0) {
		t.Fatal("highest-priority rule can never be shadowed")
	}
}

func TestShadowedJointCover(t *testing.T) {
	// Two half-space rules jointly covering a third.
	rs := []Rule{
		aclRule(1, 100, MatchAll().WithPrefix(FIPSrc, 0x00000000, 1), ActDrop),
		aclRule(2, 90, MatchAll().WithPrefix(FIPSrc, 0x80000000, 1), ActDrop),
		aclRule(3, 10, MatchAll().WithPrefix(FIPSrc, 0x40000000, 4), ActForward),
	}
	if !Shadowed(rs, 2) {
		t.Fatal("rule jointly covered by two higher rules must be shadowed")
	}
}

func TestDependentSet(t *testing.T) {
	rs := firewallTable()
	deps := DependentSet(rs, 3) // the default drop overlaps everything above
	if len(deps) != 3 {
		t.Fatalf("default rule must depend on all 3 higher rules, got %v", deps)
	}
	deps = DependentSet(rs, 0)
	if len(deps) != 0 {
		t.Fatalf("top rule must have no dependencies, got %v", deps)
	}
}

func TestCoverForExcludesHigherRules(t *testing.T) {
	rs := firewallTable()
	rng := rand.New(rand.NewSource(31))
	clip := MatchAll()
	// A packet that hits the default drop rule.
	k := Key{}
	k[FIPSrc] = 0x0B000001
	k[FTPDst] = 443
	cover, ok := CoverFor(rs, 3, clip, k)
	if !ok {
		t.Fatal("cover must exist for the default rule")
	}
	if !cover.Matches(k) {
		t.Fatal("cover must contain the triggering packet")
	}
	// Every key in the cover must still evaluate to the covered rule.
	for i := 0; i < 2000; i++ {
		kk := randKeyIn(rng, cover)
		got, okEval := EvalTable(rs, kk)
		if !okEval || got.ID != rs[3].ID {
			t.Fatalf("cover leaks: key %v evaluates to %v", kk, got)
		}
	}
}

func TestCoverForClipsToRegion(t *testing.T) {
	rs := firewallTable()
	clip := MatchAll().WithPrefix(FIPDst, 0xC0000000, 2)
	k := Key{}
	k[FIPSrc] = 0x0A000001
	k[FIPDst] = 0xC0A80001
	// Hits rule 3 (10/8 permit).
	cover, ok := CoverFor(rs, 2, clip, k)
	if !ok {
		t.Fatal("cover must exist")
	}
	if !clip.Contains(cover) {
		t.Fatalf("cover %s must stay inside clip %s", cover, clip)
	}
}

func TestCoverForPacketOutsideRegion(t *testing.T) {
	rs := firewallTable()
	clip := MatchAll().WithPrefix(FIPDst, 0xC0000000, 2)
	k := Key{} // ip_dst = 0, outside clip
	if _, ok := CoverFor(rs, 3, clip, k); ok {
		t.Fatal("cover must fail when the packet is outside the clip region")
	}
}

// Property: on random tables and random packets, the cover of the matched
// rule always evaluates back to the same rule for sampled members.
func TestCoverForPropertySemanticExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 120; trial++ {
		n := 2 + rng.Intn(10)
		rs := make([]Rule, n)
		for i := range rs {
			rs[i] = Rule{
				ID:       uint64(i + 1),
				Priority: int32(rng.Intn(5) * 10),
				Match:    randMatch(rng),
				Action:   Action{Kind: ActForward, Arg: uint32(i)},
			}
		}
		rs[n-1].Match = MatchAll() // ensure total coverage
		rs[n-1].Priority = -1
		k := randKey(rng)
		hitRule, ok := EvalTable(rs, k)
		if !ok {
			t.Fatal("table with default must always match")
		}
		hit := -1
		for i := range rs {
			if rs[i].ID == hitRule.ID {
				hit = i
			}
		}
		cover, ok := CoverFor(rs, hit, MatchAll(), k)
		if !ok {
			t.Fatalf("cover must exist for matched rule (trial %d)", trial)
		}
		for i := 0; i < 64; i++ {
			kk := randKeyIn(rng, cover)
			got, _ := EvalTable(rs, kk)
			if got.ID != hitRule.ID {
				t.Fatalf("trial %d: cover member %v evaluates to rule %d, want %d",
					trial, kk, got.ID, hitRule.ID)
			}
		}
	}
}

func TestActionString(t *testing.T) {
	if (Action{Kind: ActForward, Arg: 7}).String() != "forward(7)" {
		t.Fatal("forward action must render its target")
	}
	if (Action{Kind: ActDrop}).String() != "drop" {
		t.Fatal("drop action must render bare")
	}
	if ActionKind(200).String() == "" {
		t.Fatal("unknown action kind must still render")
	}
}

func TestRuleString(t *testing.T) {
	r := firewallTable()[0]
	if s := r.String(); s == "" {
		t.Fatal("rule must render")
	}
}
