package wire

import (
	"testing"
	"time"

	"difane/internal/core"
	"difane/internal/flowspace"
	"difane/internal/packet"
)

// failoverPolicy forwards everything to switch 4, which is never an
// authority, so killing an authority can never strand an egress.
func failoverPolicy() []flowspace.Rule {
	return []flowspace.Rule{
		{ID: 1, Priority: 10,
			Match:  flowspace.MatchAll().WithExact(flowspace.FTPDst, 80),
			Action: flowspace.Action{Kind: flowspace.ActForward, Arg: 4}},
		{ID: 3, Priority: 0, Match: flowspace.MatchAll(),
			Action: flowspace.Action{Kind: flowspace.ActForward, Arg: 4}},
	}
}

// newFailoverCluster builds a cluster with two authorities (so every
// partition has a distinct backup) and a fast failure detector.
func newFailoverCluster(t *testing.T) *Cluster {
	t.Helper()
	c, err := NewCluster(ClusterConfig{
		Switches:    []uint32{0, 1, 2, 3, 4},
		Authorities: []uint32{2, 3},
		Policy:      failoverPolicy(),
		// Exact caching keeps every new source a genuine miss, so the
		// post-kill misses below are guaranteed to exercise the backup.
		Strategy:  core.StrategyExact,
		Heartbeat: HeartbeatConfig{Interval: 5 * time.Millisecond, MissThreshold: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// primaryFor returns the primary authority of the partition owning k.
func primaryFor(t *testing.T, c *Cluster, k flowspace.Key) uint32 {
	t.Helper()
	a := c.Assignment()
	for i, p := range a.Partitions {
		if p.Region.Matches(k) {
			return a.Primary[i]
		}
	}
	t.Fatal("no partition owns the key")
	return 0
}

// awaitDead waits for the failure detector's formal death verdict (not
// just the killed flag, which flips synchronously).
func awaitDead(t *testing.T, c *Cluster, id uint32) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.NodeAlive(id) || c.Measurements().AuthorityDeaths == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("switch %d never detected dead", id)
		}
		time.Sleep(time.Millisecond)
	}
}

func awaitCache(t *testing.T, c *Cluster, sw uint32) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.CacheLen(sw) == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("cache install never arrived at switch %d", sw)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestHeartbeatKeepsNodesAlive(t *testing.T) {
	c := newFailoverCluster(t)
	time.Sleep(300 * time.Millisecond) // many heartbeat intervals
	for id := range c.switches {
		if !c.NodeAlive(id) {
			t.Errorf("switch %d marked dead without faults", id)
		}
	}
	if m := c.Measurements(); m.AuthorityDeaths != 0 {
		t.Errorf("deaths = %d, want 0", m.AuthorityDeaths)
	}
}

func TestKillSwitchDetectedDead(t *testing.T) {
	c := newFailoverCluster(t)
	if !c.KillSwitch(2) {
		t.Fatal("KillSwitch(2) failed")
	}
	awaitDead(t, c, 2)
	if m := c.Measurements(); m.AuthorityDeaths == 0 {
		t.Error("death not counted")
	}
	if c.KillSwitch(99) {
		t.Error("KillSwitch of unknown switch must fail")
	}
	// Killing twice is a no-op, not a panic.
	c.KillSwitch(2)
}

// TestFailoverE2E is the acceptance scenario: with two authorities per
// partition, killing a primary mid-trace loses zero packets of
// already-cached flows, and subsequent cache misses are delivered via the
// backup.
func TestFailoverE2E(t *testing.T) {
	c := newFailoverCluster(t)

	// Flow A: first packet detours, cache rule lands at ingress 0.
	if !c.Inject(0, httpHeader(1), 100) {
		t.Fatal("inject failed")
	}
	if d := awaitDelivery(t, c); !d.Detour || d.Egress != 4 {
		t.Fatalf("flow A first packet: %+v", d)
	}
	awaitCache(t, c, 0)

	// Kill the primary authority of the partition that will serve flow B's
	// miss, and wait for the failure detector's verdict.
	missKey := httpHeader(50).Key()
	primary := primaryFor(t, c, missKey)
	if !c.KillSwitch(primary) {
		t.Fatal("kill failed")
	}
	awaitDead(t, c, primary)

	// Zero loss for the cached flow: every packet goes direct, none touch
	// the dead authority.
	const cached = 50
	for i := 0; i < cached; i++ {
		if !c.Inject(0, httpHeader(1), 100) {
			t.Fatal("inject of cached flow failed")
		}
	}
	for i := 0; i < cached; i++ {
		d := awaitDelivery(t, c)
		if d.Detour || d.Egress != 4 {
			t.Fatalf("cached packet %d after kill: %+v", i, d)
		}
	}

	// Subsequent cache misses (fresh ingress, empty cache) are served by
	// the backup authority.
	const misses = 5
	for i := 0; i < misses; i++ {
		if !c.Inject(1, httpHeader(uint32(50+i)), 100) {
			t.Fatal("inject of miss flow failed")
		}
		d := awaitDelivery(t, c)
		if !d.Detour || d.Egress != 4 {
			t.Fatalf("miss %d after kill: %+v", i, d)
		}
	}

	m := c.Measurements()
	if m.AuthorityDeaths == 0 {
		t.Error("no death recorded")
	}
	if m.FailoversLocal+m.FailoversPromoted == 0 {
		t.Error("no failover recorded")
	}
	if got := m.Drops.Unreachable + m.Drops.Hole + m.Drops.AuthorityQueue; got != 0 {
		t.Errorf("lost %d packets across the failover", got)
	}
}

// TestIngressLocalFailover pins down the data-plane half in isolation: the
// detector's verdict alone (no controller-driven promotion) is enough for
// an ingress to re-point its partition rule at the backup.
func TestIngressLocalFailover(t *testing.T) {
	c := newFailoverCluster(t)
	missKey := httpHeader(50).Key()
	primary := primaryFor(t, c, missKey)
	// Flip the verdict directly, bypassing markDead so promoteBackups
	// never runs and only the ingress-local path can save the packet.
	c.switches[primary].alive.Store(false)

	if !c.Inject(1, httpHeader(50), 100) {
		t.Fatal("inject failed")
	}
	d := awaitDelivery(t, c)
	if !d.Detour || d.Egress != 4 {
		t.Fatalf("miss not delivered via backup: %+v", d)
	}
	if m := c.Measurements(); m.FailoversLocal == 0 {
		t.Error("local failover not recorded")
	}
}

func TestFaultHooksUnknownSwitch(t *testing.T) {
	c := newFailoverCluster(t)
	if c.PartitionControl(99) || c.HealControl(99) || c.DelayControl(99, time.Millisecond) {
		t.Error("fault hooks must reject unknown switches")
	}
}

func TestDelayControlSlowsInstalls(t *testing.T) {
	c := newFailoverCluster(t)
	if !c.DelayControl(0, 30*time.Millisecond) {
		t.Fatal("DelayControl failed")
	}
	startT := time.Now()
	if err := c.Barrier(0, 1); err != nil {
		t.Fatal(err)
	}
	// Request and reply each cross the delayed control plane once.
	if took := time.Since(startT); took < 30*time.Millisecond {
		t.Errorf("barrier took %v, want ≥ 30ms under injected delay", took)
	}
	c.DelayControl(0, 0)
}

func TestMeasurementsSnapshotIsolated(t *testing.T) {
	c := newFailoverCluster(t)
	c.Inject(0, httpHeader(1), 100)
	awaitDelivery(t, c)
	m1 := c.Measurements()
	n1 := m1.FirstPacketDelay.N()
	// Mutating the snapshot must not touch the live measurements.
	m1.FirstPacketDelay.Add(42)
	m2 := c.Measurements()
	if m2.FirstPacketDelay.N() != n1 {
		t.Errorf("snapshot mutation leaked into live measurements")
	}
}

func TestHeaderRoundTripForDeployment(t *testing.T) {
	// The Deployment adapter reconstructs headers from keys; the round
	// trip must preserve classification.
	h := httpHeader(7)
	k := h.Key()
	h2 := packet.HeaderFromKey(k)
	if h2.Key() != k {
		t.Fatal("HeaderFromKey round trip changed the key")
	}
}
