package core

import (
	"testing"

	"difane/internal/flowspace"
	"difane/internal/topo"
)

// scanThrashNet builds a deployment whose policy spans nine port regions:
// port 80 carries a small set of hot flows (the flash crowd), ports
// 100–107 are walked by a never-repeating scan. StrategyExact makes every
// flow a microflow cache entry, so the scan manufactures maximal cache
// pressure.
func scanThrashNet(t *testing.T, eviction EvictionChoice) *Network {
	t.Helper()
	g := topo.Linear(5, 0.001)
	policy := []flowspace.Rule{
		{ID: 1, Priority: 10,
			Match:  flowspace.MatchAll().WithExact(flowspace.FTPDst, 80),
			Action: flowspace.Action{Kind: flowspace.ActForward, Arg: 4}},
	}
	for p := uint64(100); p < 108; p++ {
		policy = append(policy, flowspace.Rule{ID: p, Priority: 10,
			Match:  flowspace.MatchAll().WithExact(flowspace.FTPDst, p),
			Action: flowspace.Action{Kind: flowspace.ActForward, Arg: 4}})
	}
	policy = append(policy, flowspace.Rule{ID: 99, Priority: 0,
		Match: flowspace.MatchAll(), Action: flowspace.Action{Kind: flowspace.ActDrop}})
	n, err := NewNetwork(g, []uint32{2}, policy, NetworkConfig{
		Strategy:      StrategyExact,
		CacheCapacity: 8,
		CacheEviction: eviction,
		CacheIdle:     30,
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// runScanThrash injects 4 hot flows (25 pkt/s each on port 80) against a
// scan walking ports 100–107 with a fresh source per packet (100 pkt/s),
// and returns the hot flows' miss rate after the warmup window. The
// workload is fully deterministic — fixed injection schedule, fixed seed
// semantics — so the two policies see byte-identical traffic.
func runScanThrash(t *testing.T, eviction EvictionChoice) float64 {
	t.Helper()
	n := scanThrashNet(t, eviction)

	const horizon = 8.0
	const warmup = 2.0
	var hotDelivered, hotDetours uint64
	n.Observer = func(ev VerdictEvent) {
		if ev.Key[flowspace.FTPDst] != 80 || ev.Kind != VerdictDelivered {
			return
		}
		hotDelivered++
		if ev.Detour {
			hotDetours++
		}
	}

	// Hot flash-crowd flows: 4 sources, a two-packet burst every 40ms (real
	// flows are multi-packet; the trailing packet lands on the freshly
	// installed entry, giving the scorer the packet-rate signal it prices).
	var seq [4]uint64
	for at := 0.0; at < horizon; at += 0.04 {
		for s := uint32(0); s < 4; s++ {
			n.InjectPacket(at, 0, flowKey(1+s, 80), 100, seq[s])
			n.InjectPacket(at+0.005, 0, flowKey(1+s, 80), 100, seq[s]+1)
			seq[s] += 2
		}
	}
	// Region-walking scan: a fresh source every 2ms, cycling ports
	// 100–107. Every packet is a new flow → a new microflow cache entry,
	// and 20 fresh entries land between consecutive hot-flow hits — enough
	// to age the hot entries past the LRU horizon of an 8-slot cache.
	scanSeq := 0
	for at := 0.0; at < horizon; at += 0.002 {
		port := uint64(100 + scanSeq%8)
		n.InjectPacket(at, 0, flowKey(10_000+uint32(scanSeq), port), 100, 0)
		scanSeq++
	}
	// Start counting after warmup so cold-start misses don't blur the
	// steady-state comparison.
	n.Eng.At(warmup, func() { hotDelivered, hotDetours = 0, 0 })

	n.Run(horizon + 1)
	if hotDelivered == 0 {
		t.Fatal("no hot packets delivered in the measurement window")
	}
	return float64(hotDetours) / float64(hotDelivered)
}

// TestCostAwareResistsScanThrash is the eviction-policy regression gate: a
// region-walking scan must not evict the hot flash-crowd entries under the
// cost-aware policy. Under LRU the scan's fresh entries continually push
// the hot flows out (every eviction is a future redirect); the cost scorer
// sees the hot entries' packet rate and keeps them.
func TestCostAwareResistsScanThrash(t *testing.T) {
	lru := runScanThrash(t, EvictDefaultLRU)
	cost := runScanThrash(t, EvictCostAware)
	t.Logf("hot-flow miss rate: lru=%.4f cost=%.4f", lru, cost)
	if cost >= lru {
		t.Fatalf("cost-aware hot miss rate %.4f not better than LRU %.4f", cost, lru)
	}
	// The bound: cost-aware must keep the flash crowd essentially resident.
	if cost > 0.02 {
		t.Fatalf("cost-aware hot miss rate %.4f exceeds 2%% bound", cost)
	}
}
