// Package wire runs a DIFANE deployment as real concurrent components: one
// goroutine per switch, data-plane frames as encoded packets over
// channels, and control-plane messages as framed proto messages over
// net.Pipe connections — the prototype-style counterpart to the
// discrete-event simulator in internal/core. It validates that the
// protocol, the pipeline, and the cache-install feedback loop work under
// real concurrency, and feeds the wire-path microbenchmarks.
package wire

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"difane/internal/core"
	"difane/internal/flowspace"
	"difane/internal/packet"
	"difane/internal/proto"
	"difane/internal/switchsim"
)

// Delivery reports one packet reaching its egress.
type Delivery struct {
	Egress  uint32
	Header  packet.Header
	Detour  bool // true if the packet travelled via an authority switch
	Latency time.Duration
}

// Cluster is a running wire-mode DIFANE deployment.
type Cluster struct {
	cfg ClusterConfig

	switches map[uint32]*node
	// Deliveries receives every packet that reaches an egress.
	Deliveries chan Delivery

	dropped atomic.Uint64

	ctx            context.Context
	cancel         context.CancelFunc
	wg             sync.WaitGroup
	closeTransport func()
}

// ClusterConfig sizes the deployment.
type ClusterConfig struct {
	// Switches lists all switch IDs.
	Switches []uint32
	// Authorities lists the switches hosting authority rules.
	Authorities []uint32
	// Policy is the global rule set.
	Policy []flowspace.Rule
	// Strategy picks the cache-rule scheme.
	Strategy core.CacheStrategy
	// CacheCapacity bounds ingress caches (0 = unlimited).
	CacheCapacity int
	// QueueDepth sizes each switch's ingress frame queue.
	QueueDepth int
	// UseTCP runs the control plane over loopback TCP sockets instead of
	// in-process pipes, exercising real kernel socket framing.
	UseTCP bool
	// Partition tunes the partitioner.
	Partition core.PartitionConfig
}

// node is one switch goroutine with its tables, data queue, and control
// connection.
type node struct {
	id uint32
	mu sync.Mutex
	sw *switchsim.Switch

	auths []*core.Authority

	data chan dataFrame

	// ctrl is the switch side of the control connection and ctrlPeer the
	// controller side. The switch reads commands from ctrl and writes
	// replies (and authority cache-install requests) back on it; the
	// controller relay reads ctrlPeer. Cache installs from authority
	// switches travel switch → controller → target ingress switch, as in
	// the paper's prototype.
	ctrl     net.Conn
	ctrlPeer net.Conn
	// replies carries barrier/stats replies back to controller-side
	// callers (Barrier, Stats).
	replies chan proto.Message
}

type dataFrame struct {
	buf      []byte
	size     int
	injected time.Time
	detour   bool
}

// NewCluster builds and starts a cluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if len(cfg.Switches) == 0 || len(cfg.Authorities) == 0 {
		return nil, fmt.Errorf("wire: need switches and authorities")
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	parts := core.BuildPartitions(cfg.Policy, cfg.Partition)
	assign, err := core.Assign(parts, cfg.Authorities)
	if err != nil {
		return nil, err
	}

	ctx, cancel := context.WithCancel(context.Background())
	c := &Cluster{
		cfg:        cfg,
		switches:   make(map[uint32]*node),
		Deliveries: make(chan Delivery, cfg.QueueDepth),
		ctx:        ctx,
		cancel:     cancel,
	}
	var tcpSwitch, tcpCtrl map[uint32]net.Conn
	if cfg.UseTCP {
		var closeAll func()
		var err error
		tcpSwitch, tcpCtrl, closeAll, err = dialControlTCP(cfg.Switches)
		if err != nil {
			cancel()
			return nil, err
		}
		c.closeTransport = closeAll
	}
	for _, id := range cfg.Switches {
		var swConn, ctrlConn net.Conn
		if cfg.UseTCP {
			swConn, ctrlConn = tcpSwitch[id], tcpCtrl[id]
		} else {
			swConn, ctrlConn = net.Pipe()
		}
		n := &node{
			id: id,
			sw: switchsim.New(id, switchsim.Config{
				CacheCapacity: cfg.CacheCapacity,
			}),
			data:     make(chan dataFrame, cfg.QueueDepth),
			ctrl:     swConn,
			ctrlPeer: ctrlConn,
			replies:  make(chan proto.Message, 16),
		}
		c.switches[id] = n
	}
	// Install partition rules everywhere and authority state at hosts.
	now := 0.0
	prules := assign.PartitionRules(1 << 50)
	for _, n := range c.switches {
		for _, r := range prules {
			mod := proto.FlowMod{Table: proto.TablePartition, Op: proto.OpAdd, Rule: r}
			if err := n.sw.ApplyFlowMod(now, &mod); err != nil {
				cancel()
				return nil, err
			}
		}
	}
	for i, p := range assign.Partitions {
		hosts := []uint32{assign.Primary[i]}
		if assign.Backup[i] != assign.Primary[i] {
			hosts = append(hosts, assign.Backup[i])
		}
		for _, h := range hosts {
			n, ok := c.switches[h]
			if !ok {
				cancel()
				return nil, fmt.Errorf("wire: authority %d not a cluster switch", h)
			}
			n.auths = append(n.auths, core.NewAuthority(h, p, cfg.Strategy))
			for _, r := range p.Rules {
				mod := proto.FlowMod{Table: proto.TableAuthority, Op: proto.OpAdd, Rule: r}
				if err := n.sw.ApplyFlowMod(now, &mod); err != nil {
					cancel()
					return nil, err
				}
			}
		}
	}
	for _, n := range c.switches {
		c.wg.Add(3)
		go c.dataLoop(n)
		go c.switchCtrlLoop(n)
		go c.controllerRelayLoop(n)
	}
	return c, nil
}

// Inject enqueues a packet at the ingress switch's data queue. It returns
// false if the queue is full (backpressure).
func (c *Cluster) Inject(ingress uint32, h packet.Header, size int) bool {
	n, ok := c.switches[ingress]
	if !ok {
		return false
	}
	p := packet.Packet{Header: h, Size: size}
	frame := dataFrame{buf: p.AppendWire(nil), size: size, injected: time.Now()}
	select {
	case n.data <- frame:
		return true
	default:
		c.dropped.Add(1)
		return false
	}
}

// Dropped returns packets shed by full queues.
func (c *Cluster) Dropped() uint64 { return c.dropped.Load() }

// dataLoop is a switch's data plane: decode, classify, act.
func (c *Cluster) dataLoop(n *node) {
	defer c.wg.Done()
	var pkt packet.Packet
	for {
		select {
		case <-c.ctx.Done():
			return
		case frame := <-n.data:
			if _, err := pkt.DecodeWire(frame.buf); err != nil {
				c.dropped.Add(1)
				continue
			}
			c.handlePacket(n, &pkt, frame)
		}
	}
}

func (c *Cluster) handlePacket(n *node, pkt *packet.Packet, frame dataFrame) {
	// Tunnel termination: a packet encapsulated to this switch is delivered.
	if e := pkt.Encap; e != nil && e.Reason == packet.EncapTunnel && e.Target == n.id {
		c.deliver(n.id, pkt, frame)
		return
	}
	// Redirected packet arriving at an authority switch.
	if e := pkt.Encap; e != nil && e.Reason == packet.EncapRedirect && e.Target == n.id {
		c.authorityHandle(n, pkt, frame)
		return
	}
	k := pkt.Header.Key()
	n.mu.Lock()
	res := n.sw.Classify(nowSec(), k, frame.size)
	n.mu.Unlock()
	if !res.OK {
		c.dropped.Add(1)
		return
	}
	switch res.Rule.Action.Kind {
	case flowspace.ActDrop:
		// Policy drop: intentional, not counted as a loss.
	case flowspace.ActForward:
		c.tunnelTo(res.Rule.Action.Arg, n.id, pkt, frame)
	case flowspace.ActRedirect:
		frame.detour = true
		q := pkt.Clone()
		q.Encapsulate(packet.EncapRedirect, n.id, res.Rule.Action.Arg)
		c.forwardFrame(res.Rule.Action.Arg, q, frame)
	default:
		c.dropped.Add(1)
	}
}

// authorityHandle runs the partition logic for a redirected packet and
// sends the cache install back to the ingress switch over its control
// connection.
func (c *Cluster) authorityHandle(n *node, pkt *packet.Packet, frame dataFrame) {
	e := pkt.Decapsulate()
	k := pkt.Header.Key()
	var auth *core.Authority
	n.mu.Lock()
	for _, a := range n.auths {
		if a.Partition.Region.Matches(k) {
			auth = a
			break
		}
	}
	var res core.MissResult
	if auth != nil {
		res = auth.HandleMiss(k)
	}
	n.mu.Unlock()
	if auth == nil || !res.OK {
		c.dropped.Add(1)
		return
	}
	if len(res.CacheMods) > 0 {
		install := &proto.CacheInstall{Ingress: e.Ingress, Rules: res.CacheMods}
		// The authority switch writes on its switch end; the controller
		// relay reads the other end and forwards to the ingress switch.
		_ = proto.WriteMessage(n.ctrl, install)
	}
	switch res.Rule.Action.Kind {
	case flowspace.ActDrop:
		// Policy drop at the authority.
	case flowspace.ActForward:
		c.tunnelTo(res.Rule.Action.Arg, n.id, pkt, frame)
	default:
		c.dropped.Add(1)
	}
}

// tunnelTo encapsulates the packet toward its egress and forwards it.
func (c *Cluster) tunnelTo(egress, from uint32, pkt *packet.Packet, frame dataFrame) {
	if egress == from {
		c.deliver(from, pkt, frame)
		return
	}
	q := pkt.Clone()
	q.Encapsulate(packet.EncapTunnel, from, egress)
	c.forwardFrame(egress, q, frame)
}

func (c *Cluster) forwardFrame(to uint32, pkt *packet.Packet, frame dataFrame) {
	dst, ok := c.switches[to]
	if !ok {
		c.dropped.Add(1)
		return
	}
	out := dataFrame{buf: pkt.AppendWire(nil), size: frame.size,
		injected: frame.injected, detour: frame.detour}
	select {
	case dst.data <- out:
	default:
		c.dropped.Add(1)
	}
}

func (c *Cluster) deliver(at uint32, pkt *packet.Packet, frame dataFrame) {
	d := Delivery{
		Egress:  at,
		Header:  pkt.Header,
		Detour:  frame.detour,
		Latency: time.Since(frame.injected),
	}
	select {
	case c.Deliveries <- d:
	default:
		// Receiver not draining: drop the notification, not the packet.
	}
}

// switchCtrlLoop is the switch side of the control connection: it applies
// commands from the controller and answers barriers and stats requests.
func (c *Cluster) switchCtrlLoop(n *node) {
	defer c.wg.Done()
	go func() {
		<-c.ctx.Done()
		n.ctrl.Close()
		n.ctrlPeer.Close()
	}()
	for {
		msg, err := proto.ReadMessage(n.ctrl)
		if err != nil {
			return
		}
		switch m := msg.(type) {
		case *proto.FlowMod:
			n.mu.Lock()
			_ = n.sw.ApplyFlowMod(nowSec(), m)
			n.mu.Unlock()
		case *proto.CacheInstall:
			// Relayed from an authority switch via the controller.
			n.mu.Lock()
			for i := range m.Rules {
				_ = n.sw.ApplyFlowMod(nowSec(), &m.Rules[i])
			}
			n.mu.Unlock()
		case *proto.BarrierReq:
			// Replies are written asynchronously: net.Pipe writes block
			// until read, and a reply written inline from this loop could
			// deadlock against a relay writing toward this switch.
			reply := &proto.BarrierReply{XID: m.XID}
			go func() { _ = proto.WriteMessage(n.ctrl, reply) }()
		case *proto.StatsReq:
			n.mu.Lock()
			pkts, bytes, ok := n.sw.Counters(m.RuleID)
			n.mu.Unlock()
			reply := &proto.StatsReply{XID: m.XID, Packets: pkts, Bytes: bytes, OK: ok}
			go func() { _ = proto.WriteMessage(n.ctrl, reply) }()
		}
	}
}

// controllerRelayLoop is the controller side: it reads what the switch
// sends upstream (cache installs, replies) and either relays or hands the
// message to a waiting caller.
func (c *Cluster) controllerRelayLoop(n *node) {
	defer c.wg.Done()
	for {
		msg, err := proto.ReadMessage(n.ctrlPeer)
		if err != nil {
			return
		}
		switch m := msg.(type) {
		case *proto.CacheInstall:
			dst, ok := c.switches[m.Ingress]
			if !ok {
				continue
			}
			// Asynchronous for the same deadlock-avoidance reason as the
			// switch-side replies.
			go func() { _ = proto.WriteMessage(dst.ctrlPeer, m) }()
		case *proto.BarrierReply, *proto.StatsReply:
			select {
			case n.replies <- m:
			default:
			}
		}
	}
}

// Barrier round-trips a barrier through a switch's control connection,
// fencing previously sent control messages.
func (c *Cluster) Barrier(sw uint32, xid uint32) error {
	n, ok := c.switches[sw]
	if !ok {
		return fmt.Errorf("wire: no switch %d", sw)
	}
	if err := proto.WriteMessage(n.ctrlPeer, &proto.BarrierReq{XID: xid}); err != nil {
		return err
	}
	select {
	case msg := <-n.replies:
		if rep, ok := msg.(*proto.BarrierReply); !ok || rep.XID != xid {
			return fmt.Errorf("wire: unexpected barrier reply %v", msg)
		}
		return nil
	case <-time.After(5 * time.Second):
		return fmt.Errorf("wire: barrier timeout")
	case <-c.ctx.Done():
		return c.ctx.Err()
	}
}

// Stats fetches a rule's counters from a switch over the control plane.
func (c *Cluster) Stats(sw uint32, ruleID uint64, xid uint32) (*proto.StatsReply, error) {
	n, ok := c.switches[sw]
	if !ok {
		return nil, fmt.Errorf("wire: no switch %d", sw)
	}
	if err := proto.WriteMessage(n.ctrlPeer, &proto.StatsReq{XID: xid, RuleID: ruleID}); err != nil {
		return nil, err
	}
	select {
	case msg := <-n.replies:
		rep, ok := msg.(*proto.StatsReply)
		if !ok || rep.XID != xid {
			return nil, fmt.Errorf("wire: unexpected stats reply %v", msg)
		}
		return rep, nil
	case <-time.After(5 * time.Second):
		return nil, fmt.Errorf("wire: stats timeout")
	case <-c.ctx.Done():
		return nil, c.ctx.Err()
	}
}

// CacheLen returns the number of cache entries at a switch.
func (c *Cluster) CacheLen(sw uint32) int {
	n, ok := c.switches[sw]
	if !ok {
		return 0
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.sw.Table(proto.TableCache).Len()
}

// Close stops all goroutines and waits for them.
func (c *Cluster) Close() {
	c.cancel()
	if c.closeTransport != nil {
		c.closeTransport()
	}
	c.wg.Wait()
}

var start = time.Now()

// nowSec is monotonic seconds since cluster package init, the time base
// the TCAM tables use in wire mode.
func nowSec() float64 { return time.Since(start).Seconds() }
