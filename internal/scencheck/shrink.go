package scencheck

import "difane/internal/flowspace"

// Shrink greedily minimizes a failing scenario: it repeatedly tries
// deleting steps (end first, so teardown noise goes before the trigger)
// and policy rules — from the base policy and from every update step —
// keeping any candidate that still fails and is strictly smaller. The
// fixed point is a locally-minimal repro; Report() on its Check result
// prints the replay commands.
//
// Shrinking replays the scenario once per candidate, so callers usually
// restrict opt.Modes to the mode that failed.
func Shrink(sc Scenario, opt Options) Scenario {
	fails := func(c Scenario) bool { return Check(c, opt).Failed() }
	cur := normalize(sc)
	if !fails(cur) {
		return cur
	}
	for round := 0; round < 16; round++ {
		changed := false
		// Steps, end first.
		for i := len(cur.Steps) - 1; i >= 0; i-- {
			cand := cur
			cand.Steps = dropStep(cur.Steps, i)
			cand = normalize(cand)
			if size(cand) < size(cur) && fails(cand) {
				cur = cand
				changed = true
			}
		}
		// Base policy rules (never below one rule).
		for i := len(cur.Policy) - 1; i >= 0 && len(cur.Policy) > 1; i-- {
			cand := cur
			cand.Policy = dropRule(cur.Policy, i)
			if fails(cand) {
				cur = cand
				changed = true
			}
		}
		// Update-step policies.
		for si := range cur.Steps {
			if cur.Steps[si].Kind != StepUpdatePolicy {
				continue
			}
			for i := len(cur.Steps[si].Policy) - 1; i >= 0 && len(cur.Steps[si].Policy) > 1; i-- {
				cand := cur
				cand.Steps = append([]Step(nil), cur.Steps...)
				st := cand.Steps[si]
				st.Policy = dropRule(st.Policy, i)
				cand.Steps[si] = st
				if fails(cand) {
					cur = cand
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return cur
}

func dropStep(steps []Step, i int) []Step {
	out := make([]Step, 0, len(steps)-1)
	out = append(out, steps[:i]...)
	return append(out, steps[i+1:]...)
}

func dropRule(rules []flowspace.Rule, i int) []flowspace.Rule {
	out := make([]flowspace.Rule, 0, len(rules)-1)
	out = append(out, rules[:i]...)
	return append(out, rules[i+1:]...)
}

// size orders candidates: fewer steps and rules is strictly smaller.
func size(sc Scenario) int {
	n := len(sc.Steps) + len(sc.Policy)
	for _, st := range sc.Steps {
		n += len(st.Policy)
	}
	return n
}
