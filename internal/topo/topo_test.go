package topo

import (
	"math"
	"testing"
)

func TestLinearDistances(t *testing.T) {
	g := Linear(5, 1.0)
	d, ok := g.Dist(0, 4)
	if !ok || d != 4 {
		t.Fatalf("dist(0,4) = %v ok=%v", d, ok)
	}
	d, ok = g.Dist(2, 2)
	if !ok || d != 0 {
		t.Fatalf("dist(2,2) = %v ok=%v", d, ok)
	}
}

func TestPathEndpointsAndContinuity(t *testing.T) {
	g := Linear(6, 0.5)
	p := g.Path(1, 4)
	if len(p) != 4 || p[0] != 1 || p[3] != 4 {
		t.Fatalf("path = %v", p)
	}
	for i := 1; i < len(p); i++ {
		if p[i] != p[i-1]+1 {
			t.Fatalf("path not contiguous: %v", p)
		}
	}
}

func TestNextHop(t *testing.T) {
	g := Linear(4, 1)
	nh, ok := g.NextHop(0, 3)
	if !ok || nh != 1 {
		t.Fatalf("next hop = %v ok=%v", nh, ok)
	}
	if _, ok := g.NextHop(2, 2); ok {
		t.Fatal("next hop to self must be !ok")
	}
}

func TestShortestPathPrefersLowLatency(t *testing.T) {
	g := NewGraph()
	g.AddLink(0, 1, 10) // direct but slow
	g.AddLink(0, 2, 1)  // detour...
	g.AddLink(2, 1, 1)  // ...is faster
	d, ok := g.Dist(0, 1)
	if !ok || d != 2 {
		t.Fatalf("dist = %v, want 2 via node 2", d)
	}
	p := g.Path(0, 1)
	if len(p) != 3 || p[1] != 2 {
		t.Fatalf("path = %v, want detour via 2", p)
	}
}

func TestLinkFailureReroutes(t *testing.T) {
	g := NewGraph()
	g.AddLink(0, 1, 1)
	g.AddLink(0, 2, 1)
	g.AddLink(2, 1, 1)
	if !g.SetLink(0, 1, false) {
		t.Fatal("SetLink must find the link")
	}
	d, ok := g.Dist(0, 1)
	if !ok || d != 2 {
		t.Fatalf("after failure dist = %v ok=%v, want 2", d, ok)
	}
	g.SetLink(0, 1, true)
	d, _ = g.Dist(0, 1)
	if d != 1 {
		t.Fatalf("after recovery dist = %v, want 1", d)
	}
	if g.SetLink(7, 8, false) {
		t.Fatal("SetLink on missing link must report false")
	}
}

func TestNodeFailureDisconnects(t *testing.T) {
	g := Linear(3, 1) // 0-1-2
	g.SetNode(1, false)
	if _, ok := g.Dist(0, 2); ok {
		t.Fatal("path through failed node must vanish")
	}
	if g.NodeUp(1) {
		t.Fatal("node 1 must report down")
	}
	g.SetNode(1, true)
	if _, ok := g.Dist(0, 2); !ok {
		t.Fatal("path must return after recovery")
	}
}

func TestDistUnreachable(t *testing.T) {
	g := NewGraph()
	g.AddNode(0)
	g.AddNode(1)
	if _, ok := g.Dist(0, 1); ok {
		t.Fatal("disconnected nodes must be unreachable")
	}
	if g.Path(0, 1) != nil {
		t.Fatal("path between disconnected nodes must be nil")
	}
}

func TestStretch(t *testing.T) {
	g := Linear(5, 1) // 0-1-2-3-4
	// Direct 0→2 = 2; via 4 = 4 + 2 = 6; stretch 3.
	if s := g.Stretch(0, 4, 2); s != 3 {
		t.Fatalf("stretch = %v, want 3", s)
	}
	// Via a node on the path: stretch 1.
	if s := g.Stretch(0, 1, 2); s != 1 {
		t.Fatalf("stretch via on-path node = %v, want 1", s)
	}
	if s := g.Stretch(0, 1, 0); !math.IsInf(s, 1) {
		t.Fatal("stretch with zero direct distance must be +Inf")
	}
}

func TestClosest(t *testing.T) {
	g := Linear(10, 1)
	c, ok := g.Closest(0, []NodeID{9, 3, 7})
	if !ok || c != 3 {
		t.Fatalf("closest = %v ok=%v", c, ok)
	}
	if _, ok := g.Closest(0, nil); ok {
		t.Fatal("no candidates must be !ok")
	}
	// Failing node 3 in a chain partitions 0 from everything beyond it.
	g.SetNode(3, false)
	if _, ok := g.Closest(0, []NodeID{9, 3, 7}); ok {
		t.Fatal("all candidates beyond the partition must be unreachable")
	}
	// With a redundant path the next candidate takes over.
	ring := NewGraph()
	for i := 0; i < 6; i++ {
		ring.AddLink(NodeID(i), NodeID((i+1)%6), 1)
	}
	ring.SetNode(1, false)
	c, ok = ring.Closest(0, []NodeID{2, 4})
	if !ok || c != 4 {
		t.Fatalf("ring closest after failure = %v ok=%v, want 4", c, ok)
	}
}

func TestCacheInvalidationOnMutation(t *testing.T) {
	g := Linear(3, 1)
	if d, _ := g.Dist(0, 2); d != 2 {
		t.Fatal("warm the cache")
	}
	g.AddLink(0, 2, 0.5)
	if d, _ := g.Dist(0, 2); d != 0.5 {
		t.Fatalf("cache must invalidate on AddLink, got %v", d)
	}
}

func TestFatTreeishConnectivity(t *testing.T) {
	g, edges := FatTreeish(2, 3, 4, 0.001, 0.0005)
	if len(edges) != 12 {
		t.Fatalf("edges = %d, want 12", len(edges))
	}
	if g.NumNodes() != 2+3+12 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	for _, a := range edges {
		for _, b := range edges {
			if _, ok := g.Dist(a, b); !ok {
				t.Fatalf("edge %d cannot reach edge %d", a, b)
			}
		}
	}
}

func TestCampusConnectivityAndFailover(t *testing.T) {
	g, access := Campus(4, 2, 3, 0.001)
	if len(access) != 4*2*3 {
		t.Fatalf("access switches = %d", len(access))
	}
	a, b := access[0], access[len(access)-1]
	if _, ok := g.Dist(a, b); !ok {
		t.Fatal("campus must be connected")
	}
	// Killing one core must not partition the campus (dual homing).
	g.SetNode(0, false)
	if _, ok := g.Dist(a, b); !ok {
		t.Fatal("campus must survive a single core failure")
	}
}

func TestNodesSortedAndString(t *testing.T) {
	g := NewGraph()
	g.AddNode(5)
	g.AddNode(1)
	g.AddNode(3)
	ns := g.Nodes()
	if len(ns) != 3 || ns[0] != 1 || ns[2] != 5 {
		t.Fatalf("nodes = %v", ns)
	}
	if g.String() == "" {
		t.Fatal("String must render")
	}
}

func TestDeterministicPaths(t *testing.T) {
	// Two equal-cost paths: tie-break must be stable across calls.
	g := NewGraph()
	g.AddLink(0, 1, 1)
	g.AddLink(0, 2, 1)
	g.AddLink(1, 3, 1)
	g.AddLink(2, 3, 1)
	first := g.Path(0, 3)
	for i := 0; i < 10; i++ {
		g.generation++ // force cache rebuild
		p := g.Path(0, 3)
		if len(p) != len(first) || p[1] != first[1] {
			t.Fatalf("path changed across rebuilds: %v vs %v", p, first)
		}
	}
}
