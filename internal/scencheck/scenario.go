// Package scencheck is the differential correctness harness: it derives a
// random scenario — policy, topology, workload, policy updates, and fault
// schedule — from a single int64 seed, replays it through every deployment
// (the discrete-event simulator, the reactive baseline, and the wire-mode
// prototype), and asserts that each packet's fate matches the reference
// oracle (internal/oracle) plus the global invariants the architecture
// promises: the accounting identity, epoch monotonicity across controller
// restarts, cache-rule soundness, and post-convergence table equality with
// a freshly computed assignment. Failures shrink to a minimal repro.
//
// Everything about a scenario is a pure function of the seed: generation
// uses only the seeded PRNG, never the wall clock, so a reported seed
// reproduces the exact policy, packets, and fault schedule anywhere.
package scencheck

import (
	"math/rand"

	"difane/internal/core"
	"difane/internal/flowspace"
)

// StepKind discriminates the events of a scenario's schedule.
type StepKind uint8

// Scenario step kinds.
const (
	// StepPacket injects one packet and checks its verdict.
	StepPacket StepKind = iota
	// StepUpdatePolicy replaces the operator policy (consistently in the
	// simulator; by redeployment in the baseline and wire modes).
	StepUpdatePolicy
	// StepKillSwitch fails a switch (sim: node down + controller failover;
	// wire: KillSwitch — permanent; baseline: ignored).
	StepKillSwitch
	// StepHealSwitch revives a previously killed switch (sim only; wire
	// switch deaths are permanent, matching its crash model).
	StepHealSwitch
	// StepKillController crashes the controller.
	StepKillController
	// StepRestoreController restarts the controller (sim: journal
	// recovery; wire: RestoreController). The restarted controller must
	// run under a strictly higher epoch.
	StepRestoreController
)

func (k StepKind) String() string {
	switch k {
	case StepPacket:
		return "packet"
	case StepUpdatePolicy:
		return "update-policy"
	case StepKillSwitch:
		return "kill-switch"
	case StepHealSwitch:
		return "heal-switch"
	case StepKillController:
		return "kill-controller"
	case StepRestoreController:
		return "restore-controller"
	default:
		return "step(?)"
	}
}

// Step is one event in a scenario's schedule. Which fields are meaningful
// depends on Kind.
type Step struct {
	Kind    StepKind
	Ingress uint32           // StepPacket
	Key     flowspace.Key    // StepPacket
	Policy  []flowspace.Rule // StepUpdatePolicy
	Switch  uint32           // StepKillSwitch / StepHealSwitch
}

// Link is one undirected edge of the scenario topology.
type Link struct {
	A, B    uint32
	Latency float64
}

// Scenario is a fully explicit test case: everything the checker needs to
// replay it is in the value itself (the seed is carried for reporting
// only), which is what makes shrinking by structural deletion possible.
type Scenario struct {
	Seed        int64
	Switches    []uint32
	Links       []Link
	Authorities []uint32
	Strategy    core.CacheStrategy
	// Eviction selects the cache-eviction policy every deployment runs
	// under (zero value: the default LRU).
	Eviction core.EvictionChoice
	// TCAMBudget, when positive, caps each switch's total TCAM occupancy
	// (cache + authority + partition); the cache gets whatever the
	// mandatory tables leave over, possibly nothing.
	TCAMBudget int
	Policy     []flowspace.Rule
	Steps      []Step
}

// Packets counts the packet steps in the schedule.
func (sc Scenario) Packets() int {
	n := 0
	for _, st := range sc.Steps {
		if st.Kind == StepPacket {
			n++
		}
	}
	return n
}

// Config tunes scenario generation.
type Config struct {
	// Packets is the number of packet steps to generate (default 16).
	Packets int
	// Faults enables switch/controller fault steps.
	Faults bool
	// Updates enables policy-update steps.
	Updates bool
	// Adaptive makes the scenario exercise adaptive caching: a randomized
	// eviction policy under a tight per-switch TCAM budget, plus a
	// flash-crowd / region-scan / revisit packet workload appended to the
	// schedule — the traffic shape that makes eviction decisions (and
	// cover-rule aggregation) actually fire.
	Adaptive bool
}

// DefaultConfig generates scenarios exercising everything.
func DefaultConfig() Config { return Config{Packets: 16, Faults: true, Updates: true} }

// AdaptiveConfig generates budget-constrained adaptive-caching scenarios:
// policy updates stay on (stale aggregated covers must not survive an
// update), faults stay off (cache churn, not failover, is under test).
func AdaptiveConfig() Config { return Config{Packets: 8, Updates: true, Adaptive: true} }

func (c *Config) defaults() {
	if c.Packets <= 0 {
		c.Packets = 16
	}
}

// Generate derives a scenario from the seed: a 2-connected ring-plus-chords
// topology (so one dead switch never partitions it), two authority
// switches, an overlapping prioritized policy over a small address pool
// (overlap is where caching strategies disagree), and a schedule
// interleaving packets with policy updates and faults. Deterministic: same
// seed, same scenario.
func Generate(seed int64, cfg Config) Scenario {
	cfg.defaults()
	rng := rand.New(rand.NewSource(seed))

	nsw := 4 + rng.Intn(5) // 4..8 switches
	sc := Scenario{Seed: seed, Strategy: core.CacheStrategy(rng.Intn(3))}
	if cfg.Adaptive {
		// Cost-aware most of the time (it is the policy under test), with
		// LRU/LFU sprinkled in so the harness also replays the ablation
		// baselines under the same budgets.
		sc.Eviction = []core.EvictionChoice{
			core.EvictCostAware, core.EvictCostAware,
			core.EvictDefaultLRU, core.EvictLFU,
		}[rng.Intn(4)]
		// Tight enough that authority switches squeeze their caches — during
		// a consistent update's generation overlap, sometimes to nothing.
		// Verdicts must not care: an uncacheable flow just keeps detouring.
		sc.TCAMBudget = 16 + rng.Intn(16)
	}
	for i := 0; i < nsw; i++ {
		sc.Switches = append(sc.Switches, uint32(i))
	}
	// Ring: removing any single node leaves the rest connected.
	for i := 0; i < nsw; i++ {
		sc.Links = append(sc.Links, Link{
			A: uint32(i), B: uint32((i + 1) % nsw),
			Latency: 0.001 + 0.001*rng.Float64(),
		})
	}
	// A couple of random chords for path diversity.
	for c := 0; c < rng.Intn(3); c++ {
		a := uint32(rng.Intn(nsw))
		b := uint32(rng.Intn(nsw))
		if a != b {
			sc.Links = append(sc.Links, Link{A: a, B: b, Latency: 0.001 + 0.002*rng.Float64()})
		}
	}
	// Two distinct authorities, so replication 2 always has a live replica
	// while at most one switch is down.
	a1 := uint32(rng.Intn(nsw))
	a2 := uint32(rng.Intn(nsw - 1))
	if a2 >= a1 {
		a2++
	}
	sc.Authorities = []uint32{a1, a2}

	sc.Policy = genPolicy(rng, nsw)

	// Schedule. The generator tracks controller and switch liveness so it
	// never emits a step the scenario semantics cannot honor (no updates or
	// kills while the controller is down, at most one switch dead, one kill
	// per scenario so the wire mode's permanent deaths stay survivable).
	ctlDown := false
	deadSwitch := int64(-1)
	killsLeft := 1
	curPolicy := sc.Policy
	for p := 0; p < cfg.Packets; {
		roll := rng.Float64()
		switch {
		case cfg.Updates && !ctlDown && roll < 0.07:
			curPolicy = mutatePolicy(rng, curPolicy, nsw)
			sc.Steps = append(sc.Steps, Step{Kind: StepUpdatePolicy, Policy: curPolicy})
		case cfg.Faults && !ctlDown && deadSwitch < 0 && killsLeft > 0 && roll < 0.14:
			victim := uint32(rng.Intn(nsw))
			killsLeft--
			deadSwitch = int64(victim)
			sc.Steps = append(sc.Steps, Step{Kind: StepKillSwitch, Switch: victim})
		case cfg.Faults && !ctlDown && deadSwitch >= 0 && roll < 0.30:
			sc.Steps = append(sc.Steps, Step{Kind: StepHealSwitch, Switch: uint32(deadSwitch)})
			deadSwitch = -1
		case cfg.Faults && !ctlDown && roll < 0.36:
			ctlDown = true
			sc.Steps = append(sc.Steps, Step{Kind: StepKillController})
		case ctlDown && roll < 0.60:
			ctlDown = false
			sc.Steps = append(sc.Steps, Step{Kind: StepRestoreController})
		default:
			sc.Steps = append(sc.Steps, Step{
				Kind:    StepPacket,
				Ingress: uint32(rng.Intn(nsw)),
				Key:     genKey(rng, curPolicy),
			})
			p++
		}
	}
	// End live and converged, so the end-of-scenario convergence audit
	// (fresh-controller table equality) runs against a healthy network.
	if ctlDown {
		sc.Steps = append(sc.Steps, Step{Kind: StepRestoreController})
	}
	if deadSwitch >= 0 {
		sc.Steps = append(sc.Steps, Step{Kind: StepHealSwitch, Switch: uint32(deadSwitch)})
	}
	if cfg.Adaptive {
		appendAdaptivePhases(rng, &sc, curPolicy, nsw)
	}
	return sc
}

// appendAdaptivePhases adds the cache-churn workload adaptive scenarios
// run after the random schedule: a flash crowd (a few hot keys injected
// repeatedly — repeat hits are what the cost scorer prices), a region scan
// (a run of never-repeating keys manufacturing eviction pressure), and a
// hot revisit (the flash crowd again — under cost-aware eviction these
// should still be cheap, but whatever the policy did, every verdict must
// still match the oracle). All phases are ordinary packet steps, so the
// existing per-packet oracle diff and the end-of-scenario cache-soundness
// audit (which now sees adapted timeouts and aggregated cover rules) apply
// unchanged.
func appendAdaptivePhases(rng *rand.Rand, sc *Scenario, policy []flowspace.Rule, nsw int) {
	type hotFlow struct {
		ingress uint32
		key     flowspace.Key
	}
	hot := make([]hotFlow, 3)
	for i := range hot {
		hot[i] = hotFlow{ingress: uint32(rng.Intn(nsw)), key: genKey(rng, policy)}
	}
	crowd := func(rounds int) {
		for r := 0; r < rounds; r++ {
			for _, h := range hot {
				sc.Steps = append(sc.Steps, Step{Kind: StepPacket, Ingress: h.ingress, Key: h.key})
			}
		}
	}
	crowd(4)
	// The scan: fresh keys, one packet each — pure cache-fill churn.
	for i := 0; i < 10; i++ {
		sc.Steps = append(sc.Steps, Step{
			Kind:    StepPacket,
			Ingress: uint32(rng.Intn(nsw)),
			Key:     genKey(rng, policy),
		})
	}
	crowd(2)
}

// The address pool: a handful of /24s under 10.0.0.0/16 plus a few hosts
// in each. Small on purpose — overlap between rules, and between packets
// and rules, is where the interesting disagreements live.
func poolIP(rng *rand.Rand) (value uint64, plen uint) {
	subnet := uint64(0x0A000000 | rng.Intn(8)<<8)
	switch rng.Intn(4) {
	case 0:
		return 0x0A000000, 16 // the whole pool
	case 1, 2:
		return subnet, 24
	default:
		return subnet | uint64(rng.Intn(4)), 32
	}
}

var poolPorts = []uint64{80, 443, 8080}

// genPolicy builds 4–12 overlapping prioritized rules over the pool, with
// deliberate priority ties (tie-break bugs hide there), plus a catch-all
// so the generated policy has no holes (holes appear during shrinking when
// rules are removed, and the oracle models them too).
func genPolicy(rng *rand.Rand, nsw int) []flowspace.Rule {
	n := 4 + rng.Intn(9)
	rules := make([]flowspace.Rule, 0, n+1)
	for i := 0; i < n; i++ {
		m := flowspace.MatchAll()
		if rng.Float64() < 0.8 {
			v, plen := poolIP(rng)
			m = m.WithPrefix(flowspace.FIPSrc, v, plen)
		}
		if rng.Float64() < 0.8 {
			v, plen := poolIP(rng)
			m = m.WithPrefix(flowspace.FIPDst, v, plen)
		}
		if rng.Float64() < 0.5 {
			m = m.WithExact(flowspace.FTPDst, poolPorts[rng.Intn(len(poolPorts))])
		}
		act := flowspace.Action{Kind: flowspace.ActDrop}
		if rng.Float64() < 0.6 {
			act = flowspace.Action{Kind: flowspace.ActForward, Arg: uint32(rng.Intn(nsw))}
		}
		rules = append(rules, flowspace.Rule{
			ID:       uint64(i + 1),
			Priority: int32(1 + rng.Intn(5)),
			Match:    m,
			Action:   act,
		})
	}
	// Catch-all default at priority 0.
	def := flowspace.Action{Kind: flowspace.ActDrop}
	if rng.Float64() < 0.5 {
		def = flowspace.Action{Kind: flowspace.ActForward, Arg: uint32(rng.Intn(nsw))}
	}
	rules = append(rules, flowspace.Rule{
		ID: uint64(n + 1), Priority: 0, Match: flowspace.MatchAll(), Action: def,
	})
	return rules
}

// genKey picks a packet: usually inside a random rule's region (so rule
// semantics actually get exercised), sometimes from the raw pool.
func genKey(rng *rand.Rand, policy []flowspace.Rule) flowspace.Key {
	var fill [flowspace.NumFields]uint64
	for i := range fill {
		fill[i] = rng.Uint64()
	}
	if len(policy) > 0 && rng.Float64() < 0.7 {
		m := policy[rng.Intn(len(policy))].Match
		k := m.RandomKeyIn(fill)
		// Pull the wildcarded IP/port fields back into the pool so the key
		// still collides with other rules.
		if m.Fields[flowspace.FIPSrc].IsWildcard() {
			k[flowspace.FIPSrc] = pooledIP(rng)
		}
		if m.Fields[flowspace.FIPDst].IsWildcard() {
			k[flowspace.FIPDst] = pooledIP(rng)
		}
		if m.Fields[flowspace.FTPDst].IsWildcard() {
			k[flowspace.FTPDst] = poolPorts[rng.Intn(len(poolPorts))]
		}
		return k
	}
	k := flowspace.MatchAll().RandomKeyIn(fill)
	k[flowspace.FIPSrc] = pooledIP(rng)
	k[flowspace.FIPDst] = pooledIP(rng)
	k[flowspace.FTPDst] = poolPorts[rng.Intn(len(poolPorts))]
	return k
}

func pooledIP(rng *rand.Rand) uint64 {
	return uint64(0x0A000000 | rng.Intn(8)<<8 | rng.Intn(4))
}

// mutatePolicy derives the next policy version: swap two priorities,
// retarget an action, add a rule, or remove one. The catch-all (last rule)
// is never removed and rule IDs stay within 32 bits, respecting the
// consistent-update generation banding.
func mutatePolicy(rng *rand.Rand, policy []flowspace.Rule, nsw int) []flowspace.Rule {
	out := append([]flowspace.Rule(nil), policy...)
	switch rng.Intn(4) {
	case 0: // swap priorities
		if len(out) >= 2 {
			i, j := rng.Intn(len(out)-1), rng.Intn(len(out)-1)
			out[i].Priority, out[j].Priority = out[j].Priority, out[i].Priority
		}
	case 1: // retarget or flip an action
		i := rng.Intn(len(out))
		if out[i].Action.Kind == flowspace.ActForward && rng.Float64() < 0.5 {
			out[i].Action = flowspace.Action{Kind: flowspace.ActDrop}
		} else {
			out[i].Action = flowspace.Action{Kind: flowspace.ActForward, Arg: uint32(rng.Intn(nsw))}
		}
	case 2: // add a rule
		maxID := uint64(0)
		for _, r := range out {
			if r.ID > maxID {
				maxID = r.ID
			}
		}
		m := flowspace.MatchAll()
		v, plen := poolIP(rng)
		m = m.WithPrefix(flowspace.FIPSrc, v, plen)
		if rng.Float64() < 0.5 {
			v, plen = poolIP(rng)
			m = m.WithPrefix(flowspace.FIPDst, v, plen)
		}
		act := flowspace.Action{Kind: flowspace.ActDrop}
		if rng.Float64() < 0.6 {
			act = flowspace.Action{Kind: flowspace.ActForward, Arg: uint32(rng.Intn(nsw))}
		}
		out = append(out, flowspace.Rule{
			ID: maxID + 1, Priority: int32(1 + rng.Intn(5)), Match: m, Action: act,
		})
	default: // remove a non-catch-all rule
		if len(out) > 2 {
			i := rng.Intn(len(out) - 1)
			out = append(out[:i], out[i+1:]...)
		}
	}
	return out
}
