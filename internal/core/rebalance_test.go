package core

import (
	"testing"

	"difane/internal/flowspace"
	"difane/internal/topo"
)

// skewNet builds a network where nearest-replica redirection concentrates
// all miss traffic on one authority: a star with authorities 1 and 2,
// where every ingress is closer to 1.
func skewNet(t *testing.T) *Network {
	t.Helper()
	g := topo.NewGraph()
	// Hub 0; authority 1 adjacent to hub; authority 2 far away; ingresses
	// 3..6 adjacent to hub.
	g.AddLink(0, 1, 0.001)
	g.AddLink(1, 2, 0.010) // authority 2 is far
	for i := topo.NodeID(3); i <= 6; i++ {
		g.AddLink(0, i, 0.001)
	}
	// Two disjoint halves of flow space so there are 2 partitions.
	policy := []flowspace.Rule{
		{ID: 1, Priority: 1,
			Match:  flowspace.MatchAll().WithPrefix(flowspace.FIPSrc, 0, 1),
			Action: flowspace.Action{Kind: flowspace.ActForward, Arg: 0}},
		{ID: 2, Priority: 1,
			Match:  flowspace.MatchAll().WithPrefix(flowspace.FIPSrc, 1<<31, 1),
			Action: flowspace.Action{Kind: flowspace.ActForward, Arg: 0}},
	}
	n, err := NewNetwork(g, []uint32{1, 2}, policy, NetworkConfig{
		Strategy:  StrategyExact,
		Partition: PartitionConfig{MaxRulesPerPartition: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func injectSpread(n *Network, from, count int, start float64) {
	for i := 0; i < count; i++ {
		var k flowspace.Key
		k[flowspace.FIPSrc] = uint64(i) << 20 // spreads across both halves
		if i%2 == 1 {
			k[flowspace.FIPSrc] |= 1 << 31
		}
		k[flowspace.FTPSrc] = uint64(from) // distinct keys per wave
		n.InjectPacket(start+float64(i)*0.001, uint32(3+i%4), k, 100, 0)
	}
}

func TestMeasurePartitionLoad(t *testing.T) {
	n := skewNet(t)
	injectSpread(n, 1, 40, 0)
	n.Run(5)
	loads := n.MeasurePartitionLoad()
	var total uint64
	for _, l := range loads {
		total += l.Misses
	}
	if total != 40 {
		t.Fatalf("measured misses = %d, want 40", total)
	}
}

func TestRebalanceByLoadSpreadsMissTraffic(t *testing.T) {
	n := skewNet(t)
	c := NewController(n)

	// Wave 1: everything lands on authority 1 (nearest replica for all
	// ingresses).
	injectSpread(n, 1, 40, 0)
	n.Run(5)
	before := n.AuthorityMissLoad()
	if before[1] != 40 || before[2] != 0 {
		t.Fatalf("expected full concentration on authority 1, got %v", before)
	}

	c.RebalanceByLoad()

	// Wave 2 (fresh keys): load must now split across both authorities.
	injectSpread(n, 2, 40, 6)
	n.Run(12)
	after := n.AuthorityMissLoad()
	d1, d2 := after[1]-before[1], after[2]-before[2]
	if d1 == 0 || d2 == 0 {
		t.Fatalf("post-rebalance wave must hit both authorities: +%d/+%d", d1, d2)
	}
	if n.M.Drops.Hole != 0 || n.M.Drops.Unreachable != 0 {
		t.Fatalf("rebalancing must not lose traffic: %+v", n.M.Drops)
	}
	if n.M.Delivered != 80 {
		t.Fatalf("delivered = %d, want 80", n.M.Delivered)
	}
}

func TestRebalancePreservesSemantics(t *testing.T) {
	n := skewNet(t)
	c := NewController(n)
	injectSpread(n, 1, 20, 0)
	n.Run(3)
	c.RebalanceByLoad()
	// Re-inject the SAME keys: cached entries survive the rebalance and
	// still forward correctly.
	injectSpread(n, 1, 20, 4)
	n.Run(8)
	if n.M.Delivered != 40 {
		t.Fatalf("delivered = %d, want 40 (drops %+v)", n.M.Delivered, n.M.Drops)
	}
	// The second wave must be cache hits (exact rules persist).
	if n.M.Redirects != 20 {
		t.Fatalf("redirects = %d, want 20 (second wave cached)", n.M.Redirects)
	}
}

func TestRebalanceSkipsFailedAuthorities(t *testing.T) {
	n := skewNet(t)
	c := NewController(n)
	injectSpread(n, 1, 10, 0)
	n.Run(2)
	n.FailAuthority(2)
	c.RebalanceByLoad()
	for i := range n.Assignment.Partitions {
		for _, h := range n.Assignment.ReplicasFor(i) {
			if h == 2 {
				t.Fatal("rebalance must not place partitions on a failed authority")
			}
		}
	}
}
