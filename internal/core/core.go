package core
