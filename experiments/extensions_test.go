package experiments

import (
	"strings"
	"testing"

	"difane/internal/core"
)

func TestFigCacheTimeoutShape(t *testing.T) {
	r := FigCacheTimeout(Quick())
	if len(r.Points) != 5 {
		t.Fatalf("points = %d", len(r.Points))
	}
	// Longer timeouts must not increase the miss rate, and "never" must
	// hold at least as many resident entries as the shortest timeout.
	shortest, never := r.Points[0], r.Points[len(r.Points)-1]
	if never.MissRate > shortest.MissRate {
		t.Fatalf("never-expire (%v) must not miss more than 0.5s timeout (%v)",
			never.MissRate, shortest.MissRate)
	}
	if never.ResidentEntries < shortest.ResidentEntries {
		t.Fatalf("never-expire must retain at least as many entries: %d vs %d",
			never.ResidentEntries, shortest.ResidentEntries)
	}
	if out := r.Render(); !strings.Contains(out, "F10") || !strings.Contains(out, "never") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestFigControlLoadShape(t *testing.T) {
	r := FigControlLoad(Quick())
	if r.DIFANERuntime != 0 {
		t.Fatalf("DIFANE runtime controller messages must be zero, got %d", r.DIFANERuntime)
	}
	// Reactive baseline pays ~1 message per new flow.
	perFlow := float64(r.NOXRuntime) / float64(r.Flows)
	if perFlow < 0.9 || perFlow > 1.1 {
		t.Fatalf("NOX msgs/flow = %v, want ~1", perFlow)
	}
	if r.DIFANEProactive == 0 {
		t.Fatal("DIFANE must have proactive installs")
	}
	if out := r.Render(); !strings.Contains(out, "F11") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestFigLinkLoadShape(t *testing.T) {
	r := FigLinkLoad(Quick())
	if len(r.Points) != 4 {
		t.Fatalf("points = %d", len(r.Points))
	}
	first, last := r.Points[0], r.Points[len(r.Points)-1]
	// More replicated authorities must shed load off the hottest link and
	// reduce total traversals (shorter detours).
	if last.MaxLoad >= first.MaxLoad {
		t.Fatalf("hottest link must cool with more authorities: %d -> %d",
			first.MaxLoad, last.MaxLoad)
	}
	if last.DetourShare > 1.0 {
		t.Fatalf("k=8 must not traverse more links than k=1: %v", last.DetourShare)
	}
	for _, p := range r.Points {
		if p.Concentration < 1 {
			t.Fatalf("concentration below 1 impossible: %+v", p)
		}
	}
	if out := r.Render(); !strings.Contains(out, "F12") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestAblationRebalanceShape(t *testing.T) {
	r := AblationRebalance(Quick())
	// Rebalancing must reduce the concentration and not reduce setups.
	if r.LoadAfter >= r.LoadBefore {
		t.Fatalf("rebalance must spread load: before %.2f after %.2f", r.LoadBefore, r.LoadAfter)
	}
	if float64(r.AfterSetups) < 0.95*float64(r.BeforeSetups) {
		t.Fatalf("rebalance must not reduce throughput: %d -> %d", r.BeforeSetups, r.AfterSetups)
	}
	if out := r.Render(); !strings.Contains(out, "A4") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestAblationEvictionShape(t *testing.T) {
	r := AblationEviction(Quick())
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.MissRate <= 0 || row.MissRate > 1 {
			t.Fatalf("implausible miss rate: %+v", row)
		}
		if row.Evictions == 0 {
			t.Fatalf("a %d-entry cache under this trace must evict: %+v", r.CacheSize, row)
		}
	}
	if out := r.Render(); !strings.Contains(out, "A3") {
		t.Fatalf("render:\n%s", out)
	}
}

// TestFigCacheBudgetShape is the adaptive-caching gate: at every TCAM
// budget in the sweep, the cost-aware policy's miss rate must not exceed
// LRU's on the same (fixed-seed) flash-crowd + scan workload.
func TestFigCacheBudgetShape(t *testing.T) {
	r := FigCacheBudget(Quick())
	if len(r.Points) != 6 { // 2 budgets x 3 policies
		t.Fatalf("points = %d, want 6: %+v", len(r.Points), r.Points)
	}
	miss := map[int]map[core.EvictionChoice]float64{}
	for _, p := range r.Points {
		if p.MissRate <= 0 || p.MissRate > 1 {
			t.Fatalf("implausible miss rate: %+v", p)
		}
		if m := miss[p.Budget]; m == nil {
			miss[p.Budget] = map[core.EvictionChoice]float64{}
		}
		miss[p.Budget][p.Policy] = p.MissRate
		// The tightest budget must actually thrash; otherwise the sweep
		// proves nothing about eviction.
		if p.Budget == 16 && p.Evictions == 0 {
			t.Fatalf("budget 16 produced no evictions: %+v", p)
		}
	}
	for budget, m := range miss {
		if m[core.EvictCostAware] > m[core.EvictDefaultLRU] {
			t.Errorf("budget %d: cost-aware miss %.4f > lru %.4f at equal budget",
				budget, m[core.EvictCostAware], m[core.EvictDefaultLRU])
		}
	}
	if out := r.Render(); !strings.Contains(out, "F6b") {
		t.Fatalf("render:\n%s", out)
	}
}
