package workload

import (
	"testing"

	"difane/internal/flowspace"
	"difane/internal/topo"
)

func TestClassBenchLikeShape(t *testing.T) {
	rules := ClassBenchLike(ACLConfig{
		Rules: 500, MaxDepth: 8, PortRangeFrac: 0.2, DropFrac: 0.3,
		Egresses: []uint32{1, 2, 3}, Seed: 1,
	})
	if len(rules) != 500 {
		t.Fatalf("rules = %d", len(rules))
	}
	// TCAM order.
	for i := 1; i < len(rules); i++ {
		if rules[i].Before(rules[i-1]) {
			t.Fatalf("rules out of TCAM order at %d", i)
		}
	}
	// Last rule is the catch-all default.
	last := rules[len(rules)-1]
	if !last.Match.IsAll() || last.Action.Kind != flowspace.ActDrop {
		t.Fatalf("default rule = %v", last)
	}
	// Unique IDs.
	seen := map[uint64]bool{}
	for _, r := range rules {
		if seen[r.ID] {
			t.Fatalf("duplicate rule ID %d", r.ID)
		}
		seen[r.ID] = true
	}
	// Mix of actions.
	drops, fwds := 0, 0
	for _, r := range rules {
		switch r.Action.Kind {
		case flowspace.ActDrop:
			drops++
		case flowspace.ActForward:
			fwds++
		}
	}
	if drops == 0 || fwds == 0 {
		t.Fatalf("need both actions: drops=%d fwds=%d", drops, fwds)
	}
}

func TestClassBenchLikeHasDeepDependencies(t *testing.T) {
	rules := ClassBenchLike(ACLConfig{
		Rules: 1000, MaxDepth: 10, Egresses: []uint32{1}, Seed: 7,
	})
	if d := MaxDependencyDepth(rules, 200); d < 3 {
		t.Fatalf("dependency depth = %d, want deep chains", d)
	}
}

func TestClassBenchLikeDeterministic(t *testing.T) {
	cfg := ACLConfig{Rules: 200, MaxDepth: 5, Egresses: []uint32{1}, Seed: 42}
	a := ClassBenchLike(cfg)
	b := ClassBenchLike(cfg)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("generator not deterministic at rule %d", i)
		}
	}
	cfg.Seed = 43
	c := ClassBenchLike(cfg)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds must give different policies")
	}
}

func TestRoutingLikeShallow(t *testing.T) {
	rules := RoutingLike(3, 2000, []uint32{1, 2})
	if len(rules) < 1900 || len(rules) > 2000 {
		t.Fatalf("rules = %d", len(rules))
	}
	// The catch-all default overlaps everything by construction; the
	// routes themselves must have shallow dependencies.
	if d := MaxDependencyDepth(rules[:len(rules)-1], 300); d > 60 {
		t.Fatalf("routing table must have shallow dependencies, got %d", d)
	}
	// Only forward + one default drop.
	for _, r := range rules[:len(rules)-1] {
		if r.Action.Kind != flowspace.ActForward {
			t.Fatalf("routing rule with non-forward action: %v", r)
		}
	}
}

func TestMulticastLikeExactGroups(t *testing.T) {
	rules := MulticastLike(5, 1000, []uint32{1})
	for _, r := range rules[:len(rules)-1] {
		fd := r.Match.Fields[flowspace.FIPDst]
		if !fd.IsExact(32) {
			t.Fatalf("multicast rule must pin the full group address: %v", r)
		}
		if fd.Value>>28 != 0xE {
			t.Fatalf("group outside 224/4: %x", fd.Value)
		}
	}
}

func TestAllNetworksWellFormed(t *testing.T) {
	for _, spec := range AllNetworks(11, ScaleTest) {
		if spec.Graph.NumNodes() == 0 {
			t.Fatalf("%s: empty graph", spec.Name)
		}
		if len(spec.Edges) == 0 {
			t.Fatalf("%s: no edges", spec.Name)
		}
		if len(spec.Policy) < 8 {
			t.Fatalf("%s: policy too small (%d)", spec.Name, len(spec.Policy))
		}
		// Forward targets must be real switches.
		for _, r := range spec.Policy {
			if r.Action.Kind == flowspace.ActForward {
				found := false
				for _, e := range spec.Edges {
					if e == r.Action.Arg {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("%s: rule forwards to unknown switch %d", spec.Name, r.Action.Arg)
				}
			}
		}
		// Edge switches must exist in the graph.
		for _, e := range spec.Edges {
			if !spec.Graph.NodeUp(topo.NodeID(e)) {
				t.Fatalf("%s: edge %d not in graph", spec.Name, e)
			}
		}
	}
}

func TestGenerateTrafficShape(t *testing.T) {
	spec := VPNNetwork(13, ScaleTest)
	flows := GenerateTraffic(spec, TrafficConfig{
		Flows: 2000, Rate: 500, Population: 300, Seed: 17,
	})
	if len(flows) != 2000 {
		t.Fatalf("flows = %d", len(flows))
	}
	// Arrival times nondecreasing, keys inside the flow space widths.
	for i := 1; i < len(flows); i++ {
		if flows[i].Start < flows[i-1].Start {
			t.Fatal("arrivals must be time-ordered")
		}
	}
	// Popularity skew: the most popular key must repeat many times.
	counts := map[flowspace.Key]int{}
	for _, f := range flows {
		counts[f.Key]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 50 {
		t.Fatalf("Zipf trace must concentrate traffic, top flow seen %d times", max)
	}
	if len(counts) < 50 {
		t.Fatalf("trace must still have diversity: %d distinct keys", len(counts))
	}
	// Every flow must enter at a valid edge and have sane parameters.
	for _, f := range flows {
		if f.Packets < 1 || f.Size <= 0 || f.Gap <= 0 {
			t.Fatalf("bad flow: %+v", f)
		}
	}
}

func TestGenerateTrafficDeterministic(t *testing.T) {
	spec := VPNNetwork(13, ScaleTest)
	cfg := TrafficConfig{Flows: 100, Seed: 23}
	a := GenerateTraffic(spec, cfg)
	b := GenerateTraffic(spec, cfg)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace not deterministic at %d", i)
		}
	}
}

func TestUniformTrafficAllDistinctish(t *testing.T) {
	spec := VPNNetwork(13, ScaleTest)
	flows := UniformTraffic(spec, TrafficConfig{Flows: 1000, Seed: 29})
	counts := map[flowspace.Key]int{}
	for _, f := range flows {
		counts[f.Key]++
	}
	if len(counts) < 900 {
		t.Fatalf("uniform traffic must be mostly distinct: %d/%d", len(counts), len(flows))
	}
	for _, f := range flows {
		if f.Packets != 1 {
			t.Fatal("uniform traffic is single-packet flows")
		}
	}
}

func TestTrafficPoissonRate(t *testing.T) {
	spec := VPNNetwork(13, ScaleTest)
	flows := GenerateTraffic(spec, TrafficConfig{Flows: 5000, Rate: 1000, Seed: 31})
	span := flows[len(flows)-1].Start
	rate := float64(len(flows)) / span
	if rate < 800 || rate > 1200 {
		t.Fatalf("empirical rate %v far from 1000", rate)
	}
}
