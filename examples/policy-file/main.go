// Policy-file scenario: author a policy in the text format, load it into
// a DIFANE deployment, verify per-rule counters stay transparent, then
// roll out a stricter revision with the make-before-break consistent
// update — zero packets lost to the transition.
package main

import (
	"fmt"
	"strings"

	"difane"
)

const policyV1 = `
# v1: web and dns open, everything else dropped
rule 1 prio 100 ip_proto=tcp tp_dst=80  -> forward(3)
rule 2 prio 100 ip_proto=tcp tp_dst=443 -> forward(3)
rule 3 prio 90  ip_proto=udp tp_dst=53  -> forward(3)
rule 4 prio 0 -> drop
`

const policyV2 = `
# v2: block a misbehaving subnet ahead of the permits
rule 10 prio 200 ip_src=10.66.0.0/16 -> drop
rule 1  prio 100 ip_proto=tcp tp_dst=80  -> forward(3)
rule 2  prio 100 ip_proto=tcp tp_dst=443 -> forward(3)
rule 3  prio 90  ip_proto=udp tp_dst=53  -> forward(3)
rule 4  prio 0 -> drop
`

func main() {
	rules, err := difane.ParsePolicy(strings.NewReader(policyV1))
	if err != nil {
		panic(err)
	}
	fmt.Printf("parsed v1: %d rules\n", len(rules))

	g := difane.LinearTopology(4, 0.001)
	net, err := difane.New(g, []uint32{1}, rules, difane.Config{})
	if err != nil {
		panic(err)
	}
	ctl := difane.NewController(net)

	// Traffic: web flows from two subnets, one of which v2 will ban.
	mkKey := func(subnetB byte, host uint64, port uint64) difane.Key {
		var k difane.Key
		k[difane.FIPSrc] = uint64(uint32(10)<<24|uint32(subnetB)<<16) | host
		k[difane.FIPProto] = 6
		k[difane.FTPDst] = port
		return k
	}
	for i := uint64(0); i < 50; i++ {
		net.InjectPacket(float64(i)*0.01, 0, mkKey(1, i, 80), 1000, 0)
		net.InjectPacket(float64(i)*0.01, 0, mkKey(66, i, 443), 1000, 0)
	}
	net.Run(2)
	fmt.Printf("v1: delivered=%d dropped=%d\n", net.M.Delivered, net.M.Drops.Policy)
	fmt.Println("per-rule counters (aggregated across caches + authorities):")
	for _, rc := range net.PolicyCounters() {
		fmt.Printf("  rule %d: %d packets %d bytes\n", rc.RuleID, rc.Packets, rc.Bytes)
	}

	// Consistent rollout of v2.
	v2, err := difane.ParsePolicy(strings.NewReader(policyV2))
	if err != nil {
		panic(err)
	}
	switchAt, cleanupAt, err := ctl.UpdatePolicyConsistent(v2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nv2 rollout: traffic switches at t=%.2fs, old rules purged at t=%.2fs\n",
		switchAt, cleanupAt)

	// Traffic across the whole transition window.
	before := net.M.Delivered + net.M.Drops.Policy
	n := uint64(0)
	for at := net.Eng.Now(); at < cleanupAt+0.5; at += 0.005 {
		net.InjectPacket(at, 0, mkKey(66, 9000+n, 80), 1000, 0) // banned in v2
		net.InjectPacket(at, 0, mkKey(1, 9000+n, 80), 1000, 0)  // still permitted
		n += 2
	}
	net.Run(cleanupAt + 2)
	handled := net.M.Delivered + net.M.Drops.Policy - before
	fmt.Printf("transition: %d/%d flows handled, losses=%d (hole=%d unreachable=%d)\n",
		handled, n, net.M.Drops.Hole+net.M.Drops.Unreachable,
		net.M.Drops.Hole, net.M.Drops.Unreachable)
	if handled != n {
		panic("consistent update must not lose traffic")
	}

	// The banned subnet is now dropped by rule 10.
	c10 := net.CountersFor(10)
	fmt.Printf("rule 10 (new ban) has absorbed %d packets\n", c10.Packets)
	if c10.Packets == 0 {
		panic("ban rule must be taking effect")
	}
}
