package core

import (
	"math/rand"
	"testing"

	"difane/internal/flowspace"
	"difane/internal/topo"
)

func TestPolicyCountersMatchTraffic(t *testing.T) {
	// 10 packets to port 80 (rule 1), 4 packets elsewhere (rule 2).
	n := testNet(t, NetworkConfig{})
	for i := 0; i < 10; i++ {
		n.InjectPacket(float64(i)*0.1, 0, flowKey(uint32(i), 80), 100, uint64(i%2))
	}
	for i := 0; i < 4; i++ {
		n.InjectPacket(float64(i)*0.1, 0, flowKey(uint32(i), 22), 200, 0)
	}
	n.Run(10)
	c1 := n.CountersFor(1)
	c2 := n.CountersFor(2)
	if c1.Packets != 10 || c1.Bytes != 1000 {
		t.Fatalf("rule 1 counters = %+v", c1)
	}
	if c2.Packets != 4 || c2.Bytes != 800 {
		t.Fatalf("rule 2 counters = %+v", c2)
	}
}

func TestPolicyCountersNoDoubleCounting(t *testing.T) {
	// Across all strategies the total counted packets must equal the
	// injected packets — redirected packets count once (at the authority),
	// cached packets once (at the ingress).
	rng := rand.New(rand.NewSource(127))
	for _, strat := range []CacheStrategy{StrategyCover, StrategyDependent, StrategyExact} {
		n := testNet(t, NetworkConfig{Strategy: strat})
		injected := 0
		for i := 0; i < 60; i++ {
			port := uint64(80)
			if i%3 == 0 {
				port = uint64(1000 + rng.Intn(100))
			}
			n.InjectPacket(float64(i)*0.05, 0, flowKey(uint32(i%7), port), 100, uint64(i%4))
			injected++
		}
		n.Run(20)
		var total uint64
		for _, rc := range n.PolicyCounters() {
			total += rc.Packets
		}
		if total != uint64(injected) {
			t.Fatalf("%v: counted %d packets, injected %d", strat, total, injected)
		}
	}
}

func TestPolicyCountersUnknownRule(t *testing.T) {
	n := testNet(t, NetworkConfig{})
	if c := n.CountersFor(999); c.Packets != 0 || c.Bytes != 0 {
		t.Fatalf("unknown rule counters = %+v", c)
	}
}

func TestShadowedRuleIDs(t *testing.T) {
	rules := []flowspace.Rule{
		{ID: 1, Priority: 100, Match: flowspace.MatchAll().WithPrefix(flowspace.FIPSrc, 0x0A000000, 8),
			Action: flowspace.Action{Kind: flowspace.ActDrop}},
		{ID: 2, Priority: 50, Match: flowspace.MatchAll().WithPrefix(flowspace.FIPSrc, 0x0A0A0000, 16),
			Action: flowspace.Action{Kind: flowspace.ActForward}},
		{ID: 3, Priority: 10, Match: flowspace.MatchAll(),
			Action: flowspace.Action{Kind: flowspace.ActDrop}},
	}
	shadowed := ShadowedRuleIDs(rules)
	if len(shadowed) != 1 || shadowed[0] != 2 {
		t.Fatalf("shadowed = %v, want [2]", shadowed)
	}
}

func TestCompactPolicyPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	rules := randPolicy(rng, 120)
	// Inject guaranteed-shadowed rules.
	rules = append(rules,
		flowspace.Rule{ID: 9001, Priority: -5, Match: flowspace.MatchAll(),
			Action: flowspace.Action{Kind: flowspace.ActForward, Arg: 1}},
		flowspace.Rule{ID: 9002, Priority: -10,
			Match:  flowspace.MatchAll().WithExact(flowspace.FTPDst, 80),
			Action: flowspace.Action{Kind: flowspace.ActDrop}},
	)
	kept, removed := CompactPolicy(rules)
	if len(kept)+len(removed) != len(rules) {
		t.Fatalf("kept %d + removed %d != %d", len(kept), len(removed), len(rules))
	}
	if len(removed) < 2 {
		t.Fatalf("the planted shadowed rules must be removed: %v", removed)
	}
	for _, id := range removed {
		for _, r := range kept {
			if r.ID == id {
				t.Fatalf("rule %d both kept and removed", id)
			}
		}
	}
	// Semantics identical on random keys.
	for i := 0; i < 3000; i++ {
		k := randKey(rng)
		want, wantOK := flowspace.EvalTable(rules, k)
		got, gotOK := flowspace.EvalTable(kept, k)
		if wantOK != gotOK || (gotOK && got.ID != want.ID) {
			t.Fatalf("compaction changed semantics for %v: got %v want %v", k, got, want)
		}
	}
}

func TestCompactPolicyIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(137))
	rules := randPolicy(rng, 80)
	kept1, _ := CompactPolicy(rules)
	kept2, removed2 := CompactPolicy(kept1)
	if len(removed2) != 0 || len(kept2) != len(kept1) {
		t.Fatalf("second compaction must be a no-op, removed %v", removed2)
	}
}

func TestPolicyCountersAfterConsistentUpdate(t *testing.T) {
	// Regression: consistent updates re-key staged rules into a
	// generation band; counters must still aggregate under the original
	// policy rule IDs.
	n, c := consistentNet(t)
	_, cleanupAt, err := c.UpdatePolicyConsistent(denyPolicy())
	if err != nil {
		t.Fatal(err)
	}
	n.Run(cleanupAt + 0.1)
	for i := 0; i < 5; i++ {
		n.InjectPacket(cleanupAt+0.2+float64(i)*0.01, 0, flowKey(uint32(i), 80), 100, 0)
	}
	n.Run(cleanupAt + 2)
	rc := n.CountersFor(2) // the new policy's drop rule
	if rc.Packets != 5 {
		t.Fatalf("post-update counters = %+v, want 5 packets under rule 2", rc)
	}
}

func TestNetworkShadowedRules(t *testing.T) {
	g := topo.Linear(3, 0.001)
	policy := []flowspace.Rule{
		{ID: 1, Priority: 10, Match: flowspace.MatchAll(),
			Action: flowspace.Action{Kind: flowspace.ActForward, Arg: 2}},
		{ID: 2, Priority: 1, Match: flowspace.MatchAll().WithExact(flowspace.FTPDst, 80),
			Action: flowspace.Action{Kind: flowspace.ActDrop}}, // shadowed
	}
	n, err := NewNetwork(g, []uint32{1}, policy, NetworkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sh := n.ShadowedRules()
	if len(sh) != 1 || sh[0] != 2 {
		t.Fatalf("shadowed = %v", sh)
	}
}
