package core

import (
	"math/rand"
	"testing"

	"difane/internal/flowspace"
)

// randPolicy builds an ACL-shaped policy: prefix-pair rules over a default.
func randPolicy(rng *rand.Rand, n int) []flowspace.Rule {
	rules := make([]flowspace.Rule, 0, n)
	for i := 0; i < n-1; i++ {
		m := flowspace.MatchAll().
			WithPrefix(flowspace.FIPSrc, rng.Uint64(), uint(8+rng.Intn(17))).
			WithPrefix(flowspace.FIPDst, rng.Uint64(), uint(8+rng.Intn(17)))
		kind := flowspace.ActForward
		if rng.Intn(4) == 0 {
			kind = flowspace.ActDrop
		}
		rules = append(rules, flowspace.Rule{
			ID:       uint64(i + 1),
			Priority: int32(n - i),
			Match:    m,
			Action:   flowspace.Action{Kind: kind, Arg: uint32(rng.Intn(8))},
		})
	}
	rules = append(rules, flowspace.Rule{
		ID: uint64(n), Priority: 0, Match: flowspace.MatchAll(),
		Action: flowspace.Action{Kind: flowspace.ActDrop},
	})
	return rules
}

func randKey(rng *rand.Rand) flowspace.Key {
	var k flowspace.Key
	k[flowspace.FIPSrc] = uint64(rng.Uint32())
	k[flowspace.FIPDst] = uint64(rng.Uint32())
	k[flowspace.FTPDst] = uint64(rng.Intn(65536))
	return k
}

func TestPartitionsCoverFlowSpaceDisjointly(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	rules := randPolicy(rng, 200)
	parts := BuildPartitions(rules, PartitionConfig{MaxRulesPerPartition: 40})
	if len(parts) < 2 {
		t.Fatalf("expected multiple partitions, got %d", len(parts))
	}
	// Disjoint regions.
	for i := range parts {
		for j := i + 1; j < len(parts); j++ {
			if parts[i].Region.Overlaps(parts[j].Region) {
				t.Fatalf("partitions %d and %d overlap", i, j)
			}
		}
	}
	// Cover: every random key lands in exactly one partition.
	for i := 0; i < 3000; i++ {
		k := randKey(rng)
		count := 0
		for _, p := range parts {
			if p.Region.Matches(k) {
				count++
			}
		}
		if count != 1 {
			t.Fatalf("key %v lies in %d partitions", k, count)
		}
	}
}

func TestPartitionSemanticsPreserved(t *testing.T) {
	// The heart of DIFANE correctness: evaluating a packet against its
	// partition's clipped rules must give the same answer as the global
	// policy.
	rng := rand.New(rand.NewSource(67))
	rules := randPolicy(rng, 150)
	parts := BuildPartitions(rules, PartitionConfig{MaxRulesPerPartition: 25})
	for i := 0; i < 3000; i++ {
		k := randKey(rng)
		want, wantOK := flowspace.EvalTable(rules, k)
		var got flowspace.Rule
		gotOK := false
		for _, p := range parts {
			if !p.Region.Matches(k) {
				continue
			}
			got, gotOK = flowspace.EvalTable(p.Rules, k)
			break
		}
		if wantOK != gotOK || (gotOK && got.ID != want.ID) {
			t.Fatalf("partition semantics differ for %v: got %v/%v want %v/%v",
				k, got, gotOK, want, wantOK)
		}
	}
}

func TestPartitionLeafCapacityRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	rules := randPolicy(rng, 300)
	cap := 50
	parts := BuildPartitions(rules, PartitionConfig{MaxRulesPerPartition: cap})
	over := 0
	for _, p := range parts {
		if len(p.Rules) > cap {
			over++
		}
	}
	// Rules wildcarded on every cut field (the default rule) appear in all
	// partitions and can keep a leaf slightly above capacity only when no
	// cut separates anything; that must be rare.
	if over > len(parts)/4 {
		t.Fatalf("%d of %d partitions exceed capacity", over, len(parts))
	}
}

func TestPartitionRulesClippedToRegion(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	rules := randPolicy(rng, 100)
	parts := BuildPartitions(rules, PartitionConfig{MaxRulesPerPartition: 20})
	for _, p := range parts {
		for _, r := range p.Rules {
			if !p.Region.Contains(r.Match) {
				t.Fatalf("rule %v escapes region %s", r, p.Region)
			}
		}
	}
}

func TestPartitionSingleLeafWhenPolicyFits(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	rules := randPolicy(rng, 10)
	parts := BuildPartitions(rules, PartitionConfig{MaxRulesPerPartition: 100})
	if len(parts) != 1 {
		t.Fatalf("policy under capacity must yield one partition, got %d", len(parts))
	}
	if !parts[0].Region.IsAll() {
		t.Fatal("single partition must cover all of flow space")
	}
	if len(parts[0].Rules) != 10 {
		t.Fatalf("partition must carry all rules, got %d", len(parts[0].Rules))
	}
}

func TestMaxPartitionsBound(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	rules := randPolicy(rng, 500)
	parts := BuildPartitions(rules, PartitionConfig{MaxRulesPerPartition: 5, MaxPartitions: 16})
	if len(parts) > 16 {
		t.Fatalf("MaxPartitions violated: %d", len(parts))
	}
}

func TestSplitOverheadIsModest(t *testing.T) {
	// Splitting duplicates spanning rules; for prefix-structured policies
	// the blowup must stay small (the paper reports small overheads).
	rng := rand.New(rand.NewSource(89))
	rules := randPolicy(rng, 400)
	parts := BuildPartitions(rules, PartitionConfig{MaxRulesPerPartition: 60})
	total := TotalEntries(parts)
	if total < len(rules) {
		t.Fatalf("total entries %d below original %d", total, len(rules))
	}
	if float64(total) > 3.0*float64(len(rules)) {
		t.Fatalf("splitting overhead too large: %d entries from %d rules", total, len(rules))
	}
}

func TestAssignBalances(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	rules := randPolicy(rng, 400)
	parts := BuildPartitions(rules, PartitionConfig{MaxRulesPerPartition: 30})
	auths := []uint32{10, 20, 30, 40}
	a, err := Assign(parts, auths)
	if err != nil {
		t.Fatal(err)
	}
	load := a.LoadPerAuthority()
	min, max := 1<<30, 0
	for _, id := range auths {
		l := load[id]
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	if min == 0 {
		t.Fatalf("an authority got nothing: %v", load)
	}
	if float64(max) > 2.5*float64(min) {
		t.Fatalf("imbalanced assignment: %v", load)
	}
	// Backups must differ from primaries when possible.
	for i := range a.Partitions {
		if a.Backup[i] == a.Primary[i] {
			t.Fatalf("partition %d backup equals primary with 4 authorities", i)
		}
	}
}

func TestAssignSingleAuthority(t *testing.T) {
	parts := []Partition{{Region: flowspace.MatchAll()}}
	a, err := Assign(parts, []uint32{7})
	if err != nil {
		t.Fatal(err)
	}
	if a.Primary[0] != 7 || a.Backup[0] != 7 {
		t.Fatalf("assignment = %+v", a)
	}
	if _, err := Assign(parts, nil); err == nil {
		t.Fatal("no authorities must error")
	}
}

func TestPartitionRulesGeneration(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	rules := randPolicy(rng, 100)
	parts := BuildPartitions(rules, PartitionConfig{MaxRulesPerPartition: 20})
	a, err := Assign(parts, []uint32{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	prules := a.PartitionRules(1 << 50)
	// Every key must match exactly one primary partition rule, whose
	// redirect target is that partition's primary authority.
	for i := 0; i < 1000; i++ {
		k := randKey(rng)
		hit, ok := flowspace.EvalTable(prules, k)
		if !ok {
			t.Fatalf("key %v matches no partition rule", k)
		}
		if hit.Action.Kind != flowspace.ActRedirect {
			t.Fatalf("partition rule action = %v", hit.Action)
		}
		if hit.Priority != PriPartitionPrimary {
			t.Fatalf("highest match must be a primary rule, got priority %d", hit.Priority)
		}
	}
	// Backup rules exist below primaries.
	backups := 0
	for _, r := range prules {
		if r.Priority == PriPartitionBackup {
			backups++
		}
	}
	if backups == 0 {
		t.Fatal("two authorities must produce backup partition rules")
	}
}

func TestReplicateAll(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	rules := randPolicy(rng, 50)
	a := ReplicateAll(rules, []uint32{1, 2, 3})
	if len(a.Partitions) != 3 {
		t.Fatalf("partitions = %d", len(a.Partitions))
	}
	load := a.LoadPerAuthority()
	for _, id := range []uint32{1, 2, 3} {
		if load[id] != 50 {
			t.Fatalf("replicate-all load = %v", load)
		}
	}
}

func TestChooseCutSeparates(t *testing.T) {
	// Two disjoint /1 prefixes must be separable with a single cut.
	rules := []flowspace.Rule{
		{ID: 1, Priority: 1, Match: flowspace.MatchAll().WithPrefix(flowspace.FIPSrc, 0, 1)},
		{ID: 2, Priority: 1, Match: flowspace.MatchAll().WithPrefix(flowspace.FIPSrc, 1<<31, 1)},
	}
	parts := BuildPartitions(rules, PartitionConfig{MaxRulesPerPartition: 1})
	if len(parts) != 2 {
		t.Fatalf("expected 2 partitions, got %d", len(parts))
	}
	for _, p := range parts {
		if len(p.Rules) != 1 {
			t.Fatalf("each partition must hold 1 rule, got %d", len(p.Rules))
		}
	}
}

func TestUnsplittableRulesBecomeOneLeaf(t *testing.T) {
	// Identical full-wildcard rules cannot be separated; the partitioner
	// must terminate with a single leaf rather than loop.
	rules := []flowspace.Rule{
		{ID: 1, Priority: 2, Match: flowspace.MatchAll()},
		{ID: 2, Priority: 1, Match: flowspace.MatchAll()},
	}
	parts := BuildPartitions(rules, PartitionConfig{MaxRulesPerPartition: 1})
	if len(parts) != 1 {
		t.Fatalf("expected 1 partition, got %d", len(parts))
	}
	if len(parts[0].Rules) != 2 {
		t.Fatalf("leaf must keep both rules")
	}
}

func TestFailoverListOrderAndDedup(t *testing.T) {
	rules := []flowspace.Rule{
		{ID: 1, Priority: 1, Match: flowspace.MatchAll()},
	}
	parts := BuildPartitions(rules, PartitionConfig{})
	a, err := Assign(parts, []uint32{7, 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Partitions {
		list := a.FailoverList(i)
		if len(list) == 0 || list[0] != a.Primary[i] {
			t.Fatalf("partition %d: failover list %v must lead with primary %d",
				i, list, a.Primary[i])
		}
		seen := map[uint32]bool{}
		for _, h := range list {
			if seen[h] {
				t.Fatalf("partition %d: duplicate host %d in %v", i, h, list)
			}
			seen[h] = true
		}
		if !seen[a.Backup[i]] {
			t.Fatalf("partition %d: backup %d missing from %v", i, a.Backup[i], list)
		}
	}
}

func TestFailoverListSingleAuthority(t *testing.T) {
	// With one authority, primary == backup; the list must collapse to one
	// entry instead of repeating it.
	rules := []flowspace.Rule{{ID: 1, Priority: 1, Match: flowspace.MatchAll()}}
	parts := BuildPartitions(rules, PartitionConfig{})
	a, err := Assign(parts, []uint32{7})
	if err != nil {
		t.Fatal(err)
	}
	if list := a.FailoverList(0); len(list) != 1 || list[0] != 7 {
		t.Fatalf("failover list = %v, want [7]", list)
	}
}

func TestPartitionOfRuleID(t *testing.T) {
	rules := []flowspace.Rule{
		{ID: 1, Priority: 1, Match: flowspace.MatchAll().WithPrefix(flowspace.FIPSrc, 0, 1)},
		{ID: 2, Priority: 1, Match: flowspace.MatchAll().WithPrefix(flowspace.FIPSrc, 1<<31, 1)},
	}
	parts := BuildPartitions(rules, PartitionConfig{MaxRulesPerPartition: 1})
	a, err := Assign(parts, []uint32{7, 8})
	if err != nil {
		t.Fatal(err)
	}
	const base = uint64(1) << 50
	for i := range a.Partitions {
		// Both the primary (base+2i) and backup (base+2i+1) rule IDs map
		// back to partition i.
		for _, id := range []uint64{base + uint64(2*i), base + uint64(2*i) + 1} {
			got, ok := a.PartitionOfRuleID(base, id)
			if !ok || got != i {
				t.Fatalf("PartitionOfRuleID(%d) = %d,%v want %d", id, got, ok, i)
			}
		}
	}
	if _, ok := a.PartitionOfRuleID(base, 42); ok {
		t.Fatal("sub-base rule ID must not resolve")
	}
	if _, ok := a.PartitionOfRuleID(base, base+uint64(2*len(a.Partitions))); ok {
		t.Fatal("out-of-range rule ID must not resolve")
	}
}
