package wire

import (
	"fmt"
	"net"

	"difane/internal/proto"
)

// dialControlTCP establishes the cluster's control connections over real
// TCP on the loopback interface instead of net.Pipe: the controller
// listens, every switch dials and identifies itself with a Hello, and the
// accepted connection becomes the controller side. Exercises the full
// framing path through the kernel socket layer.
func dialControlTCP(ids []uint32) (switchSide, controllerSide map[uint32]net.Conn, closeAll func(), err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, nil, err
	}
	switchSide = make(map[uint32]net.Conn, len(ids))
	controllerSide = make(map[uint32]net.Conn, len(ids))

	fail := func(e error) (map[uint32]net.Conn, map[uint32]net.Conn, func(), error) {
		for _, c := range switchSide {
			c.Close()
		}
		for _, c := range controllerSide {
			c.Close()
		}
		ln.Close()
		return nil, nil, nil, e
	}

	type accepted struct {
		conn net.Conn
		node uint32
		err  error
	}
	acceptCh := make(chan accepted, len(ids))
	go func() {
		for range ids {
			conn, err := ln.Accept()
			if err != nil {
				acceptCh <- accepted{err: err}
				return
			}
			go func(conn net.Conn) {
				msg, err := proto.ReadMessage(conn)
				if err != nil {
					acceptCh <- accepted{err: err}
					conn.Close()
					return
				}
				hello, ok := msg.(*proto.Hello)
				if !ok {
					acceptCh <- accepted{err: fmt.Errorf("wire: expected hello, got %v", msg.Type())}
					conn.Close()
					return
				}
				acceptCh <- accepted{conn: conn, node: hello.Node}
			}(conn)
		}
	}()

	for _, id := range ids {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			return fail(err)
		}
		if err := proto.WriteMessage(conn, &proto.Hello{Node: id, Role: RoleForNode}); err != nil {
			conn.Close()
			return fail(err)
		}
		switchSide[id] = conn
	}
	for range ids {
		a := <-acceptCh
		if a.err != nil {
			return fail(a.err)
		}
		if _, dup := controllerSide[a.node]; dup {
			a.conn.Close()
			return fail(fmt.Errorf("wire: duplicate hello from node %d", a.node))
		}
		if _, known := switchSide[a.node]; !known {
			a.conn.Close()
			return fail(fmt.Errorf("wire: hello from unknown node %d", a.node))
		}
		controllerSide[a.node] = a.conn
	}
	closeAll = func() {
		ln.Close()
		for _, c := range switchSide {
			c.Close()
		}
		for _, c := range controllerSide {
			c.Close()
		}
	}
	return switchSide, controllerSide, closeAll, nil
}

// RoleForNode is the role switches announce in their TCP hello.
const RoleForNode = proto.RoleIngress
