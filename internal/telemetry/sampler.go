package telemetry

import "sync/atomic"

// Sampler decides, per packet, whether a trace ID is minted. The rate is
// 1-in-N: N == 0 disables sampling entirely (the hot path pays one atomic
// load), N == 1 traces every packet. The decision is a pure hash of the
// flow hash and the packet's sequence within the flow, so every node that
// sees the same packet — and the sim/baseline/wire backends replaying the
// same workload — agrees on whether it is sampled and on its trace ID
// without any coordination.
type Sampler struct {
	n atomic.Uint64
	// limit is the sampling threshold: a packet is sampled when its hash
	// is <= limit, with limit = 2^64/n. Keeping the decision a compare
	// instead of h%n spares the hot path a 64-bit hardware division.
	// 0 means sampling is off.
	limit atomic.Uint64
}

// NewSampler returns a sampler tracing 1 in n packets (0 = off).
func NewSampler(n int) *Sampler {
	s := &Sampler{}
	s.SetRate(n)
	return s
}

// SetRate changes the sampling rate at runtime (1-in-n, 0 = off).
func (s *Sampler) SetRate(n int) {
	if n < 0 {
		n = 0
	}
	s.n.Store(uint64(n))
	if n == 0 {
		s.limit.Store(0)
	} else {
		s.limit.Store(^uint64(0) / uint64(n))
	}
}

// Rate returns the current 1-in-N rate (0 = off).
func (s *Sampler) Rate() int { return int(s.n.Load()) }

// mix64 is splitmix64's finalizer: a cheap, well-distributed 64-bit mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// TraceID returns the packet's trace ID, or 0 when the packet is not
// sampled. flowHash is the FlowTuple hash; seq is the packet's sequence
// within its flow. Cost when sampling is off: one atomic load.
func (s *Sampler) TraceID(flowHash, seq uint64) uint64 {
	limit := s.limit.Load()
	if limit == 0 {
		return 0
	}
	h := mix64(flowHash ^ mix64(seq+0x9e3779b97f4a7c15))
	if h > limit {
		return 0
	}
	if h == 0 {
		h = 1 // reserve 0 for "unsampled"
	}
	return h
}
