package journal

import (
	"testing"
)

func TestLogShippingReplicates(t *testing.T) {
	leader, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	follower, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()

	for i := 0; i < 5; i++ {
		rec, err := leader.AppendEntry("policy", map[string]int{"gen": i})
		if err != nil {
			t.Fatal(err)
		}
		if err := follower.AppendReplica(rec); err != nil {
			t.Fatalf("ship record %d: %v", rec.Seq, err)
		}
	}
	if l, f := leader.NextSeq(), follower.NextSeq(); l != f {
		t.Fatalf("appenders diverged: leader next=%d follower next=%d", l, f)
	}
	lr, err := leader.RecordsAfter(0)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := follower.RecordsAfter(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(lr) != 5 || len(fr) != 5 {
		t.Fatalf("record counts: leader=%d follower=%d, want 5 each", len(lr), len(fr))
	}
	for i := range lr {
		if lr[i].Seq != fr[i].Seq || lr[i].CRC != fr[i].CRC || string(lr[i].Data) != string(fr[i].Data) {
			t.Fatalf("record %d differs: leader=%+v follower=%+v", i, lr[i], fr[i])
		}
	}
}

func TestAppendReplicaIdempotentAndGapChecked(t *testing.T) {
	leader, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	follower, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()

	r1, _ := leader.AppendEntry("a", 1)
	r2, _ := leader.AppendEntry("b", 2)
	r3, _ := leader.AppendEntry("c", 3)

	if err := follower.AppendReplica(r1); err != nil {
		t.Fatal(err)
	}
	// Re-shipping a durable record is a no-op, not an error.
	if err := follower.AppendReplica(r1); err != nil {
		t.Fatalf("duplicate replica append: %v", err)
	}
	// A gap (skipping r2) must be rejected.
	if err := follower.AppendReplica(r3); err == nil {
		t.Fatalf("gap append accepted; follower would hold a hole")
	}
	if err := follower.AppendReplica(r2); err != nil {
		t.Fatal(err)
	}
	if err := follower.AppendReplica(r3); err != nil {
		t.Fatal(err)
	}
	if got, want := follower.NextSeq(), leader.NextSeq(); got != want {
		t.Fatalf("follower next=%d, want %d", got, want)
	}
}

func TestAppendReplicaRejectsBadChecksum(t *testing.T) {
	j, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	rec := Record{Seq: 1, Kind: "x", Data: []byte(`"y"`), CRC: 0xdeadbeef}
	if err := j.AppendReplica(rec); err == nil {
		t.Fatal("corrupt replica record accepted")
	}
}

func TestCatchUpFeedAfterRestart(t *testing.T) {
	dir := t.TempDir()
	leader, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var recs []Record
	for i := 0; i < 4; i++ {
		r, err := leader.AppendEntry("k", i)
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, r)
	}
	// A follower that only saw the first two records catches up from the
	// leader's RecordsAfter feed.
	follower, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	for _, r := range recs[:2] {
		if err := follower.AppendReplica(r); err != nil {
			t.Fatal(err)
		}
	}
	missing, err := leader.RecordsAfter(follower.NextSeq() - 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 2 {
		t.Fatalf("catch-up feed returned %d records, want 2", len(missing))
	}
	for _, r := range missing {
		if err := follower.AppendReplica(r); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := follower.NextSeq(), leader.NextSeq(); got != want {
		t.Fatalf("follower next=%d, want %d", got, want)
	}
	leader.Close()
	// The follower's WAL must replay like the leader's would.
	reopened, err := Open(follower.Dir())
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	n := 0
	if _, _, err := reopened.Replay(nil, func(Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("follower replayed %d records, want 4", n)
	}
}
