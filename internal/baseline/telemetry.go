package baseline

import (
	"difane/internal/core"
	"difane/internal/telemetry"
)

// Telemetry returns one scrape of the baseline's metric registry — the
// same schema core.RegisterMeasurements gives the DIFANE backends, plus
// the reactive controller's own setup counter and the flight recorder's
// trace accounting.
func (n *Network) Telemetry() *telemetry.Snapshot {
	n.telOnce.Do(func() {
		reg := telemetry.NewRegistry()
		core.RegisterMeasurements(reg, func() *core.Measurements { return &n.M })
		reg.RegisterFunc("difane_controller_setups_total",
			"Flow setups the reactive controller processed.", telemetry.TypeCounter,
			func() float64 { return float64(n.ControllerSetups) })
		reg.RegisterFunc("difane_trace_enabled",
			"1 while the flight recorder accepts events.", telemetry.TypeGauge,
			func() float64 {
				if n.rec.Enabled() {
					return 1
				}
				return 0
			})
		reg.RegisterFunc("difane_trace_writes_total",
			"Events ever published to the flight recorder.", telemetry.TypeCounter,
			func() float64 { return float64(n.rec.Stats().Writes) })
		reg.RegisterFunc("difane_trace_sample",
			"Per-packet trace sampling rate (1-in-N, 0 = off).", telemetry.TypeGauge,
			func() float64 { return float64(n.sampler.Rate()) })
		n.telReg = reg
	})
	return &telemetry.Snapshot{Metrics: n.telReg.Snapshot(), Trace: n.rec.Stats()}
}
