package core

import (
	"testing"

	"difane/internal/flowspace"
	"difane/internal/proto"
	"difane/internal/topo"
)

// TestNoOpConsistentUpdateNoChurn: re-applying the running policy (even
// reordered) must bump the version — callers see their update commit — but
// must not reinstall rules or invalidate ingress caches.
func TestNoOpConsistentUpdateNoChurn(t *testing.T) {
	n := testNet(t, NetworkConfig{})
	c := NewController(n)
	c.PolicyPushDelay = 0.05
	// Populate an ingress cache first.
	n.InjectPacket(0, 0, flowKey(1, 80), 100, 0)
	n.Run(0.1)
	if n.CacheEntries() == 0 {
		t.Fatal("expected a cache entry before the no-op update")
	}
	caches := n.CacheEntries()
	installs, deletes := n.M.PolicyRuleInstalls, n.M.PolicyRuleDeletes
	authLen := n.Switches[2].Table(proto.TableAuthority).Len()

	same := []flowspace.Rule{ // the running policy, reordered
		{ID: 2, Priority: 0, Match: flowspace.MatchAll(),
			Action: flowspace.Action{Kind: flowspace.ActDrop}},
		{ID: 1, Priority: 10,
			Match:  flowspace.MatchAll().WithExact(flowspace.FTPDst, 80),
			Action: flowspace.Action{Kind: flowspace.ActForward, Arg: 4}},
	}
	_, cleanupAt, err := c.UpdatePolicyConsistent(same)
	if err != nil {
		t.Fatal(err)
	}
	n.Run(cleanupAt + 0.1)
	if c.PolicyVersion != 1 {
		t.Fatalf("no-op update must still commit a version: %d", c.PolicyVersion)
	}
	if n.M.PolicyRuleInstalls != installs || n.M.PolicyRuleDeletes != deletes {
		t.Fatalf("no-op update churned rules: %d/%d then %d/%d",
			installs, deletes, n.M.PolicyRuleInstalls, n.M.PolicyRuleDeletes)
	}
	if n.CacheEntries() != caches {
		t.Fatalf("no-op update touched caches: %d then %d", caches, n.CacheEntries())
	}
	if got := n.Switches[2].Table(proto.TableAuthority).Len(); got != authLen {
		t.Fatalf("no-op update touched authority table: %d then %d", authLen, got)
	}
}

// TestOverlappingConsistentUpdatesStageDisjointGenerations: two consistent
// updates scheduled before either commits must stage disjoint generation
// bands (the second wins), not collide on the same band and half-delete
// each other in their cleanup phases.
func TestOverlappingConsistentUpdatesStageDisjointGenerations(t *testing.T) {
	n, c := consistentNet(t)
	first := denyPolicy()
	second := []flowspace.Rule{{
		ID: 3, Priority: 1, Match: flowspace.MatchAll(),
		Action: flowspace.Action{Kind: flowspace.ActForward, Arg: 2},
	}}
	if _, _, err := c.UpdatePolicyConsistent(first); err != nil {
		t.Fatal(err)
	}
	_, cleanup2, err := c.UpdatePolicyConsistent(second)
	if err != nil {
		t.Fatal(err)
	}
	if c.gen != 2 {
		t.Fatalf("gen = %d, want 2 (bumped at schedule time)", c.gen)
	}
	n.Run(cleanup2 + 0.5)
	if c.PolicyVersion != 2 {
		t.Fatalf("version = %d, want 2", c.PolicyVersion)
	}
	// Only the second update's generation band survives the cleanups.
	rules := n.Switches[1].Table(proto.TableAuthority).Rules()
	if len(rules) == 0 {
		t.Fatal("authority table empty after overlapping updates")
	}
	for _, r := range rules {
		if AuthorityEntryRuleID(r.ID)>>32 != 2 {
			t.Fatalf("stale generation survived: rule ID %#x", r.ID)
		}
	}
	// And traffic follows the second policy with no holes.
	n.InjectPacket(n.Eng.Now()+0.01, 0, flowKey(5, 80), 100, 0)
	n.Run(n.Eng.Now() + 1)
	if n.M.Drops.Hole != 0 || n.M.Drops.Unreachable != 0 {
		t.Fatalf("overlapping updates lost packets: %+v", n.M.Drops)
	}
	if n.M.Delivered == 0 {
		t.Fatal("second policy forwards; nothing was delivered")
	}
}

// TestConsistentUpdateRacingRebalance: a load rebalance firing between a
// consistent update's install and switch phases must not lose packets, and
// Reconcile must repair the TCAM divergence the interleaving leaves behind.
func TestConsistentUpdateRacingRebalance(t *testing.T) {
	g := topo.Linear(5, 0.001)
	policy := testNetPolicy()
	n, err := NewNetwork(g, []uint32{1, 3}, policy, NetworkConfig{Replication: 2})
	if err != nil {
		t.Fatal(err)
	}
	c := NewController(n)
	c.PolicyPushDelay = 0.1
	deny := []flowspace.Rule{{ID: 9, Priority: 1, Match: flowspace.MatchAll(),
		Action: flowspace.Action{Kind: flowspace.ActDrop}}}
	installAt, cleanupAt, err := func() (float64, float64, error) {
		switchAt, cleanupAt, err := c.UpdatePolicyConsistent(deny)
		return switchAt - c.PolicyPushDelay, cleanupAt, err
	}()
	if err != nil {
		t.Fatal(err)
	}
	// The rebalance lands mid-update, after the new generation is staged
	// but before the commit point.
	n.Eng.At(installAt+c.PolicyPushDelay/2, func() { c.RebalanceByLoad() })
	// Continuous traffic across all phases.
	flows := uint64(0)
	for at := 0.0; at < cleanupAt+0.3; at += 0.004 {
		n.InjectPacket(at, 0, flowKey(uint32(2000+flows), 80), 100, 0)
		flows++
	}
	n.Run(cleanupAt + 1)
	handled := n.M.Delivered + n.M.Drops.Policy
	if handled != flows {
		t.Fatalf("handled %d of %d flows (drops %+v)", handled, flows, n.M.Drops)
	}
	if n.M.Drops.Hole != 0 || n.M.Drops.Unreachable != 0 {
		t.Fatalf("update racing rebalance lost packets: %+v", n.M.Drops)
	}
	if c.PolicyVersion != 1 {
		t.Fatalf("version = %d, want 1", c.PolicyVersion)
	}
	// The interleaving leaves the authority TCAMs out of sync with the
	// committed assignment (the rebalance rewrote them from the old one);
	// Reconcile repairs that, and a second pass finds nothing left to do.
	installed, _ := c.Reconcile()
	if installed == 0 {
		t.Fatal("expected Reconcile to repair the diverged authority TCAMs")
	}
	if i2, d2 := c.Reconcile(); i2 != 0 || d2 != 0 {
		t.Fatalf("Reconcile not idempotent: %d installed, %d deleted on second pass", i2, d2)
	}
}
