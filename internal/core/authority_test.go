package core

import (
	"math/rand"
	"testing"

	"difane/internal/flowspace"
	"difane/internal/proto"
)

// firewallPartition: a deep dependency chain — many high-priority deny
// rules over one broad permit — inside a single all-covering partition.
func firewallPartition(denies int) Partition {
	rules := make([]flowspace.Rule, 0, denies+1)
	for i := 0; i < denies; i++ {
		rules = append(rules, flowspace.Rule{
			ID:       uint64(i + 1),
			Priority: int32(100 - i),
			Match:    flowspace.MatchAll().WithExact(flowspace.FTPDst, uint64(i+1)),
			Action:   flowspace.Action{Kind: flowspace.ActDrop},
		})
	}
	rules = append(rules, flowspace.Rule{
		ID: uint64(denies + 1), Priority: 0, Match: flowspace.MatchAll(),
		Action: flowspace.Action{Kind: flowspace.ActForward, Arg: 9},
	})
	return Partition{Region: flowspace.MatchAll(), Rules: rules}
}

func portKey(p uint64) flowspace.Key {
	var k flowspace.Key
	k[flowspace.FTPDst] = p
	return k
}

func TestHandleMissMatchesPolicy(t *testing.T) {
	a := NewAuthority(1, firewallPartition(5), StrategyCover)
	res := a.HandleMiss(portKey(3))
	if !res.OK || res.Rule.Action.Kind != flowspace.ActDrop {
		t.Fatalf("port 3 must hit a deny: %+v", res)
	}
	res = a.HandleMiss(portKey(8080))
	if !res.OK || res.Rule.Action.Kind != flowspace.ActForward {
		t.Fatalf("port 8080 must hit the permit: %+v", res)
	}
	if a.Misses != 2 {
		t.Fatalf("misses = %d", a.Misses)
	}
}

func TestHandleMissPolicyHole(t *testing.T) {
	p := Partition{Region: flowspace.MatchAll(), Rules: []flowspace.Rule{{
		ID: 1, Priority: 1,
		Match:  flowspace.MatchAll().WithExact(flowspace.FTPDst, 80),
		Action: flowspace.Action{Kind: flowspace.ActForward},
	}}}
	a := NewAuthority(1, p, StrategyCover)
	if res := a.HandleMiss(portKey(22)); res.OK {
		t.Fatal("unmatched packet must report a hole")
	}
}

func TestCoverStrategySingleRuleForDeepChain(t *testing.T) {
	// The motivating case: permitting traffic under many denies must cost
	// ONE cache entry with the cover strategy.
	a := NewAuthority(1, firewallPartition(50), StrategyCover)
	res := a.HandleMiss(portKey(9999))
	if !res.OK {
		t.Fatal("must match permit")
	}
	if len(res.CacheMods) != 1 {
		t.Fatalf("cover strategy must emit one cache rule, got %d", len(res.CacheMods))
	}
	mod := res.CacheMods[0]
	if mod.Table != proto.TableCache || mod.Op != proto.OpAdd {
		t.Fatalf("bad mod: %+v", mod)
	}
	// The cover must include the packet and exclude every denied port.
	if !mod.Rule.Match.Matches(portKey(9999)) {
		t.Fatal("cover must contain the packet")
	}
	for port := uint64(1); port <= 50; port++ {
		if mod.Rule.Match.Matches(portKey(port)) {
			t.Fatalf("cover leaks denied port %d", port)
		}
	}
}

func TestDependentStrategyCachesChain(t *testing.T) {
	a := NewAuthority(1, firewallPartition(10), StrategyDependent)
	res := a.HandleMiss(portKey(9999))
	if len(res.CacheMods) != 11 {
		t.Fatalf("dependent strategy must cache rule + 10 dependencies, got %d", len(res.CacheMods))
	}
	// Top deny rule has no dependencies: one entry.
	res = a.HandleMiss(portKey(1))
	if len(res.CacheMods) != 1 {
		t.Fatalf("top rule must cache alone, got %d", len(res.CacheMods))
	}
}

func TestExactStrategyMicroflow(t *testing.T) {
	a := NewAuthority(1, firewallPartition(10), StrategyExact)
	k := portKey(9999)
	res := a.HandleMiss(k)
	if len(res.CacheMods) != 1 {
		t.Fatalf("exact strategy must emit one rule, got %d", len(res.CacheMods))
	}
	m := res.CacheMods[0].Rule.Match
	if !m.Matches(k) {
		t.Fatal("exact rule must match the packet")
	}
	if m.FreeBits() != 0 {
		t.Fatalf("exact rule must pin every bit, %d free", m.FreeBits())
	}
}

func TestCacheRulesSemanticallyExact(t *testing.T) {
	// For every strategy: installing the generated cache rules and then
	// evaluating any packet that hits them must agree with the global
	// policy — DIFANE's correctness property.
	rng := rand.New(rand.NewSource(107))
	policy := randPolicy(rng, 80)
	parts := BuildPartitions(policy, PartitionConfig{MaxRulesPerPartition: 20})
	for _, strat := range []CacheStrategy{StrategyCover, StrategyDependent, StrategyExact} {
		auths := make([]*Authority, len(parts))
		for i, p := range parts {
			auths[i] = NewAuthority(uint32(i), p, strat)
		}
		var cached []flowspace.Rule
		for trial := 0; trial < 200; trial++ {
			k := randKey(rng)
			for i, p := range parts {
				if !p.Region.Matches(k) {
					continue
				}
				res := auths[i].HandleMiss(k)
				want, wantOK := flowspace.EvalTable(policy, k)
				if res.OK != wantOK {
					t.Fatalf("%v: miss result ok=%v want %v", strat, res.OK, wantOK)
				}
				if res.OK && res.Rule.Action != want.Action {
					t.Fatalf("%v: action %v want %v", strat, res.Rule.Action, want.Action)
				}
				for _, mod := range res.CacheMods {
					cached = append(cached, mod.Rule)
				}
				break
			}
		}
		// Any packet hitting the accumulated cache must get the same
		// action as the global policy.
		for trial := 0; trial < 4000; trial++ {
			k := randKey(rng)
			got, ok := flowspace.EvalTable(cached, k)
			if !ok {
				continue // cache miss: would be redirected, always safe
			}
			want, wantOK := flowspace.EvalTable(policy, k)
			if !wantOK {
				t.Fatalf("%v: cache hit for packet the policy misses", strat)
			}
			if got.Action != want.Action {
				t.Fatalf("%v: cached action %v differs from policy %v for %v",
					strat, got.Action, want.Action, k)
			}
		}
	}
}

func TestOriginTracking(t *testing.T) {
	a := NewAuthority(3, firewallPartition(5), StrategyCover)
	res := a.HandleMiss(portKey(9999))
	id := res.CacheMods[0].Rule.ID
	origin, ok := a.OriginOf(id)
	if !ok || origin != res.Rule.ID {
		t.Fatalf("origin of %d = %d ok=%v want %d", id, origin, ok, res.Rule.ID)
	}
	// Policy rule IDs map to themselves.
	if o, ok := a.OriginOf(42); !ok || o != 42 {
		t.Fatal("policy IDs must map to themselves")
	}
	if _, ok := a.OriginOf(cacheIDBase + 999999); ok {
		t.Fatal("unknown cache ID must report !ok")
	}
}

func TestCacheModsCarryTimeouts(t *testing.T) {
	a := NewAuthority(1, firewallPartition(3), StrategyCover)
	a.CacheIdleTimeout = 10
	a.CacheHardTimeout = 60
	res := a.HandleMiss(portKey(500))
	if res.CacheMods[0].Idle != 10 || res.CacheMods[0].Hard != 60 {
		t.Fatalf("timeouts not propagated: %+v", res.CacheMods[0])
	}
}

func TestStrategyString(t *testing.T) {
	if StrategyCover.String() != "cover" || StrategyDependent.String() != "dependent" ||
		StrategyExact.String() != "exact" {
		t.Fatal("strategy names")
	}
	if CacheStrategy(9).String() == "" {
		t.Fatal("unknown strategy must render")
	}
}
