package subscriber

import (
	"encoding/json"
	"testing"
	"time"
)

// soakScale shrinks the wire soak under the race detector so the package
// stays inside go test's timeout; CI's soak-smoke job runs the full size
// through cmd/difane-soak.
func soakScale() (arrivalRate float64, modeled float64) {
	if raceEnabled {
		return 300, 4
	}
	return 1500, 8
}

func TestSoakSmoke(t *testing.T) {
	rate, modeled := soakScale()
	setup := Setup{Switches: 8, Rules: 64, CacheCapacity: 256, Seed: 21}
	d, spec, err := setup.Deploy()
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	defer d.Close()

	rep, err := RunSoak(d, spec, SoakConfig{
		Engine: Config{
			Subscribers: 1 << 18, ArrivalRate: rate, MeanSessionLife: 1,
			PacketRate: 2, MobilityRate: rate / 20, DiurnalAmp: 0.3, Seed: 21,
		},
		Phases:      SmokeScript(modeled),
		SampleEvery: 512,
		WallBudget:  2 * time.Minute,
	})
	if err != nil {
		t.Fatalf("soak: %v", err)
	}
	t.Logf("\n%s", rep.Render())

	if rep.Failed() {
		t.Fatalf("soak failed: %d divergences, accounting=%q",
			len(rep.Divergences), rep.AccountingError)
	}
	if rep.Sessions == 0 || rep.Packets == 0 {
		t.Fatal("soak modeled nothing")
	}
	if rep.Probes == 0 {
		t.Error("sampling checker never probed a verdict")
	}
	if rep.Moves == 0 {
		t.Error("no mobility events in the soak")
	}
	if len(rep.Series) == 0 {
		t.Error("no telemetry series points recorded")
	}
	phases := map[string]bool{}
	for _, p := range rep.Phases {
		phases[p.Phase] = true
	}
	for _, want := range []string{"steady", "churn-spike", "flash-crowd"} {
		if !phases[want] {
			t.Errorf("phase %q missing from the report (got %v)", want, phases)
		}
	}
	// The report must round-trip as JSON — the CI artifact is its
	// marshaled form.
	if _, err := json.Marshal(rep); err != nil {
		t.Errorf("report not JSON-marshalable: %v", err)
	}
}

func TestSoakRegistersTelemetry(t *testing.T) {
	setup := Setup{Switches: 4, Rules: 32, Seed: 5}
	d, spec, err := setup.Deploy()
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	defer d.Close()

	rep, err := RunSoak(d, spec, SoakConfig{
		Engine: Config{ArrivalRate: 200, MeanSessionLife: 0.5, Seed: 5},
		Phases: []Phase{Steady(2)},
		// Sample aggressively so probe counters move.
		SampleEvery: 64,
	})
	if err != nil {
		t.Fatalf("soak: %v", err)
	}
	if rep.Failed() {
		t.Fatalf("soak failed:\n%s", rep.Render())
	}

	got := map[string]float64{}
	for _, m := range d.C.Registry().Snapshot() {
		if len(m.Points) == 1 {
			got[m.Name] = m.Points[0].Value
		}
	}
	for _, name := range []string{
		"difane_soak_phase", "difane_soak_active_sessions",
		"difane_soak_sessions_total", "difane_soak_probes_total",
		"difane_soak_divergences_total", "difane_soak_miss_rate",
		"difane_soak_tcam_entries", "difane_soak_redirects_per_sec",
	} {
		if _, ok := got[name]; !ok {
			t.Errorf("metric %s not registered", name)
		}
	}
	if got["difane_soak_sessions_total"] == 0 {
		t.Error("difane_soak_sessions_total stayed zero")
	}
	if got["difane_soak_probes_total"] != float64(rep.Probes) {
		t.Errorf("probes metric %v != report %d",
			got["difane_soak_probes_total"], rep.Probes)
	}
	if got["difane_soak_divergences_total"] != 0 {
		t.Errorf("divergences metric %v, want 0", got["difane_soak_divergences_total"])
	}
}

func TestSoakWallBudgetStopsEarly(t *testing.T) {
	setup := Setup{Switches: 4, Rules: 32, Seed: 8}
	d, spec, err := setup.Deploy()
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	defer d.Close()

	rep, err := RunSoak(d, spec, SoakConfig{
		Engine: Config{ArrivalRate: 500, MeanSessionLife: 1, Seed: 8},
		// An hour of modeled time against a one-second budget.
		Phases:     []Phase{Steady(3600)},
		WallBudget: time.Second,
	})
	if err != nil {
		t.Fatalf("soak: %v", err)
	}
	if !rep.BudgetExhausted {
		t.Error("expected BudgetExhausted on a 1s budget vs 3600s script")
	}
	if rep.Failed() {
		t.Fatalf("budget-bounded soak must still pass its gates:\n%s", rep.Render())
	}
}
