package wire

import "time"

// Fault-injection hooks for resilience testing. All are safe to call
// while traffic flows.

// KillSwitch crashes a switch: its data and control goroutines stop, its
// control connection drops, and it never comes back. The failure detector
// notices the silence and the failover machinery takes over. Returns false
// for an unknown switch.
func (c *Cluster) KillSwitch(id uint32) bool {
	n, ok := c.switches[id]
	if !ok {
		return false
	}
	n.killOnce.Do(func() {
		n.faultAt.Store(time.Now().UnixNano())
		n.killed.Store(true)
		close(n.done)
		n.closeConns()
	})
	return true
}

// PartitionControl severs a switch's control plane while leaving its data
// plane running: control writes in both directions are suppressed and the
// connection is dropped, and reconnection holds until HealControl. The
// switch keeps forwarding with whatever rules it has — DIFANE's data-plane
// resilience to control-plane loss. Returns false for an unknown switch.
func (c *Cluster) PartitionControl(id uint32) bool {
	n, ok := c.switches[id]
	if !ok {
		return false
	}
	n.faultAt.Store(time.Now().UnixNano())
	n.partitioned.Store(true)
	n.closeConns()
	return true
}

// HealControl lifts a control-plane partition; the connection manager
// re-establishes the control connection with backoff. Returns false for an
// unknown switch.
func (c *Cluster) HealControl(id uint32) bool {
	n, ok := c.switches[id]
	if !ok {
		return false
	}
	n.partitioned.Store(false)
	n.faultAt.Store(0)
	return true
}

// DelayControl adds a fixed delay to every control-plane write touching
// the switch (both directions); d ≤ 0 removes it. Returns false for an
// unknown switch.
func (c *Cluster) DelayControl(id uint32, d time.Duration) bool {
	n, ok := c.switches[id]
	if !ok {
		return false
	}
	if d < 0 {
		d = 0
	}
	n.ctrlDelay.Store(int64(d))
	return true
}
