// Package topo models the physical network DIFANE runs over: switches,
// hosts attached to edge switches, and weighted bidirectional links. It
// provides shortest-path routing (Dijkstra over link latency), next-hop
// extraction, path stretch computation, and link/node failure toggling —
// everything the evaluation's delay and stretch experiments need.
package topo

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// NodeID identifies a switch.
type NodeID uint32

// Link is one direction of a connection between two switches.
type Link struct {
	From, To NodeID
	// Latency is the one-way propagation delay in seconds.
	Latency float64
	// Up is false while the link is failed.
	Up bool
}

// Graph is a mutable switch-level topology.
type Graph struct {
	nodes map[NodeID]bool
	down  map[NodeID]bool
	adj   map[NodeID][]*Link

	// generation invalidates cached shortest-path state on mutation.
	generation uint64
	spCache    map[NodeID]*spTree
	cacheGen   uint64
}

// NewGraph returns an empty topology.
func NewGraph() *Graph {
	return &Graph{
		nodes:   make(map[NodeID]bool),
		down:    make(map[NodeID]bool),
		adj:     make(map[NodeID][]*Link),
		spCache: make(map[NodeID]*spTree),
	}
}

// AddNode adds a switch (idempotent).
func (g *Graph) AddNode(id NodeID) {
	if !g.nodes[id] {
		g.nodes[id] = true
		g.generation++
	}
}

// AddLink adds a bidirectional link with the given one-way latency.
func (g *Graph) AddLink(a, b NodeID, latency float64) {
	g.AddNode(a)
	g.AddNode(b)
	g.adj[a] = append(g.adj[a], &Link{From: a, To: b, Latency: latency, Up: true})
	g.adj[b] = append(g.adj[b], &Link{From: b, To: a, Latency: latency, Up: true})
	g.generation++
}

// SetLink sets the up/down state of the link(s) between a and b in both
// directions, reporting whether any link existed.
func (g *Graph) SetLink(a, b NodeID, up bool) bool {
	found := false
	for _, l := range g.adj[a] {
		if l.To == b {
			l.Up = up
			found = true
		}
	}
	for _, l := range g.adj[b] {
		if l.To == a {
			l.Up = up
			found = true
		}
	}
	if found {
		g.generation++
	}
	return found
}

// SetNode sets the up/down state of a switch; a down switch is excluded
// from all paths.
func (g *Graph) SetNode(id NodeID, up bool) {
	if up {
		delete(g.down, id)
	} else {
		g.down[id] = true
	}
	g.generation++
}

// NodeUp reports whether the switch exists and is up.
func (g *Graph) NodeUp(id NodeID) bool { return g.nodes[id] && !g.down[id] }

// Nodes returns all switch IDs in ascending order.
func (g *Graph) Nodes() []NodeID {
	out := make([]NodeID, 0, len(g.nodes))
	for id := range g.nodes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumNodes returns the switch count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// spTree is a single-source shortest-path tree.
type spTree struct {
	dist map[NodeID]float64
	prev map[NodeID]NodeID
}

type pqItem struct {
	node NodeID
	dist float64
}
type pq []pqItem

func (q pq) Len() int      { return len(q) }
func (q pq) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q pq) Less(i, j int) bool {
	if q[i].dist != q[j].dist {
		return q[i].dist < q[j].dist
	}
	return q[i].node < q[j].node // deterministic tie-break
}
func (q *pq) Push(x any) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

func (g *Graph) tree(src NodeID) *spTree {
	if g.cacheGen != g.generation {
		g.spCache = make(map[NodeID]*spTree)
		g.cacheGen = g.generation
	}
	if t, ok := g.spCache[src]; ok {
		return t
	}
	t := &spTree{dist: make(map[NodeID]float64), prev: make(map[NodeID]NodeID)}
	if g.NodeUp(src) {
		t.dist[src] = 0
		q := &pq{{node: src}}
		done := make(map[NodeID]bool)
		for q.Len() > 0 {
			it := heap.Pop(q).(pqItem)
			if done[it.node] {
				continue
			}
			done[it.node] = true
			for _, l := range g.adj[it.node] {
				if !l.Up || g.down[l.To] {
					continue
				}
				nd := it.dist + l.Latency
				if d, ok := t.dist[l.To]; !ok || nd < d {
					t.dist[l.To] = nd
					t.prev[l.To] = it.node
					heap.Push(q, pqItem{node: l.To, dist: nd})
				}
			}
		}
	}
	g.spCache[src] = t
	return t
}

// Dist returns the shortest-path latency from a to b, and false if b is
// unreachable.
func (g *Graph) Dist(a, b NodeID) (float64, bool) {
	d, ok := g.tree(a).dist[b]
	return d, ok
}

// Path returns the shortest path from a to b inclusive, or nil if
// unreachable.
func (g *Graph) Path(a, b NodeID) []NodeID {
	t := g.tree(a)
	if _, ok := t.dist[b]; !ok {
		return nil
	}
	var rev []NodeID
	for at := b; ; {
		rev = append(rev, at)
		if at == a {
			break
		}
		at = t.prev[at]
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// NextHop returns the first hop on the shortest path from a to b, and false
// if unreachable or a == b.
func (g *Graph) NextHop(a, b NodeID) (NodeID, bool) {
	p := g.Path(a, b)
	if len(p) < 2 {
		return 0, false
	}
	return p[1], true
}

// Stretch returns the ratio of the detour path a→via→b over the direct
// shortest path a→b. A direct path of zero latency (a == b) or an
// unreachable leg returns +Inf.
func (g *Graph) Stretch(a, via, b NodeID) float64 {
	direct, ok1 := g.Dist(a, b)
	leg1, ok2 := g.Dist(a, via)
	leg2, ok3 := g.Dist(via, b)
	if !ok1 || !ok2 || !ok3 || direct == 0 {
		return math.Inf(1)
	}
	return (leg1 + leg2) / direct
}

// Closest returns the member of candidates with the smallest distance from
// src, and false if none is reachable. Ties break toward the lower ID.
func (g *Graph) Closest(src NodeID, candidates []NodeID) (NodeID, bool) {
	best := NodeID(0)
	bestD := math.Inf(1)
	found := false
	for _, c := range candidates {
		d, ok := g.Dist(src, c)
		if !ok {
			continue
		}
		if d < bestD || (d == bestD && c < best) || !found {
			best, bestD, found = c, d, true
		}
	}
	return best, found
}

func (g *Graph) String() string {
	return fmt.Sprintf("graph(%d nodes)", len(g.nodes))
}

// --- Generators -------------------------------------------------------------

// Linear builds a chain topology 0-1-2-...-(n-1) with uniform latency.
func Linear(n int, latency float64) *Graph {
	g := NewGraph()
	for i := 0; i < n; i++ {
		g.AddNode(NodeID(i))
	}
	for i := 0; i+1 < n; i++ {
		g.AddLink(NodeID(i), NodeID(i+1), latency)
	}
	return g
}

// FatTreeish builds a two-tier topology: cores fully meshed to aggregation
// switches, each aggregation switch serving edgePerAgg edge switches.
// Returns the graph and the list of edge switch IDs. IDs are assigned as
// cores [0,cores), aggs [cores, cores+aggs), edges above that.
func FatTreeish(cores, aggs, edgePerAgg int, coreLat, edgeLat float64) (*Graph, []NodeID) {
	g := NewGraph()
	var edges []NodeID
	next := NodeID(0)
	coreIDs := make([]NodeID, cores)
	for i := range coreIDs {
		coreIDs[i] = next
		g.AddNode(next)
		next++
	}
	for a := 0; a < aggs; a++ {
		agg := next
		g.AddNode(agg)
		next++
		for _, c := range coreIDs {
			g.AddLink(c, agg, coreLat)
		}
		for e := 0; e < edgePerAgg; e++ {
			edge := next
			g.AddNode(edge)
			next++
			g.AddLink(agg, edge, edgeLat)
			edges = append(edges, edge)
		}
	}
	return g, edges
}

// Campus builds a campus-like three-tier topology (core ring, distribution,
// access) and returns the graph plus the access-layer switch IDs.
func Campus(coreN, distPerCore, accessPerDist int, lat float64) (*Graph, []NodeID) {
	g := NewGraph()
	var access []NodeID
	next := NodeID(0)
	cores := make([]NodeID, coreN)
	for i := range cores {
		cores[i] = next
		g.AddNode(next)
		next++
	}
	if len(cores) > 1 {
		for i := range cores {
			g.AddLink(cores[i], cores[(i+1)%len(cores)], lat)
		}
	}
	for _, c := range cores {
		for d := 0; d < distPerCore; d++ {
			dist := next
			g.AddNode(dist)
			next++
			g.AddLink(c, dist, lat)
			// Dual-home distribution switches to the next core for failover.
			if len(cores) > 1 {
				g.AddLink(cores[(int(c)+1)%len(cores)], dist, lat*1.5)
			}
			for a := 0; a < accessPerDist; a++ {
				acc := next
				g.AddNode(acc)
				next++
				g.AddLink(dist, acc, lat)
				access = append(access, acc)
			}
		}
	}
	return g, access
}
