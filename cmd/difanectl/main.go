// Command difanectl is a small interactive driver for a simulated DIFANE
// deployment: load a canonical network, inject flows, inspect switch
// tables and measurements.
//
// Usage:
//
//	difanectl [-network campus|vpn|iptv|isp] [-authorities K] [-seed N]
//
// Commands (stdin, one per line):
//
//	inject <ingress> <ip_src> <ip_dst> <tp_dst>   inject one flow (3 packets)
//	trace <flows> [file]                          inject a Zipf trace (optionally saving it)
//	replay <file>                                 replay a saved trace
//	tables <switch>                               dump a switch's tables
//	stats                                         print run measurements
//	counters                                      aggregated per-rule counters
//	partitions                                    print the rule partitions
//	fail <switch>                                 fail an authority switch
//	load <file>                                   replace the policy from a file
//	save <file>                                   write the policy to a file
//	compact                                       drop shadowed rules
//	help                                          this text
//	quit
//
// A policy file (see -policy) uses the text grammar of ParsePolicy:
//
//	rule 1 prio 100 ip_src=10.0.0.0/8 tp_dst=80 -> forward(4)
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"difane"
	"difane/internal/metrics"
)

func main() {
	network := flag.String("network", "campus", "canonical network: campus|vpn|iptv|isp")
	k := flag.Int("authorities", 2, "number of authority switches")
	seed := flag.Int64("seed", 1, "generator seed")
	policyFile := flag.String("policy", "", "replace the canonical policy with rules from this file")
	flag.Parse()

	var spec *difane.Spec
	switch *network {
	case "campus":
		spec = difane.CampusNetwork(*seed, difane.ScaleTest)
	case "vpn":
		spec = difane.VPNNetwork(*seed, difane.ScaleTest)
	case "iptv":
		spec = difane.IPTVNetwork(*seed, difane.ScaleTest)
	case "isp":
		spec = difane.ISPNetwork(*seed, difane.ScaleTest)
	default:
		fmt.Fprintf(os.Stderr, "unknown network %q\n", *network)
		os.Exit(2)
	}

	if *policyFile != "" {
		f, err := os.Open(*policyFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rules, err := difane.ParsePolicy(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		spec.Policy = rules
	}

	auths := difane.PlaceAuthorities(spec.Graph, *k)
	net, err := difane.New(spec.Graph, auths, spec.Policy, difane.Config{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ctl := difane.NewController(net)

	fmt.Printf("loaded %s: %d switches, %d rules, %d partitions, authorities %v\n",
		spec.Name, spec.Graph.NumNodes(), len(spec.Policy),
		len(net.Assignment.Partitions), auths)
	fmt.Println(`type "help" for commands`)

	now := 0.0
	sc := bufio.NewScanner(os.Stdin)
	for fmt.Print("> "); sc.Scan(); fmt.Print("> ") {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "quit", "exit":
			return
		case "help":
			fmt.Println("inject <ingress> <ip_src> <ip_dst> <tp_dst> | trace <flows> | tables <switch> | stats | counters | partitions | fail <switch> | load <file> | save <file> | compact | quit")
		case "inject":
			if len(fields) != 5 {
				fmt.Println("usage: inject <ingress> <ip_src> <ip_dst> <tp_dst>")
				continue
			}
			args := make([]uint64, 4)
			bad := false
			for i, f := range fields[1:] {
				v, err := strconv.ParseUint(f, 0, 64)
				if err != nil {
					fmt.Printf("bad argument %q\n", f)
					bad = true
					break
				}
				args[i] = v
			}
			if bad {
				continue
			}
			var key difane.Key
			key[difane.FIPSrc] = args[1]
			key[difane.FIPDst] = args[2]
			key[difane.FTPDst] = args[3]
			for p := 0; p < 3; p++ {
				net.InjectPacket(now+float64(p)*0.01, uint32(args[0]), key, 800, uint64(p))
			}
			now += 1
			net.Run(now)
			fmt.Printf("t=%.2fs delivered=%d redirects=%d drops=%+v\n",
				now, net.M.Delivered, net.M.Redirects, net.M.Drops)
		case "trace":
			n := 1000
			if len(fields) > 1 {
				if v, err := strconv.Atoi(fields[1]); err == nil {
					n = v
				}
			}
			flows := difane.GenerateTraffic(spec, difane.TrafficConfig{
				Flows: n, Rate: 1000, Seed: *seed + int64(now),
			})
			if len(fields) > 2 {
				f, err := os.Create(fields[2])
				if err != nil {
					fmt.Println(err)
					continue
				}
				err = difane.WriteTrace(f, flows)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
				if err != nil {
					fmt.Println(err)
					continue
				}
				fmt.Printf("saved trace to %s\n", fields[2])
			}
			now = runFlows(net, flows, now)
		case "replay":
			if len(fields) != 2 {
				fmt.Println("usage: replay <file>")
				continue
			}
			f, err := os.Open(fields[1])
			if err != nil {
				fmt.Println(err)
				continue
			}
			flows, err := difane.ReadTrace(f)
			f.Close()
			if err != nil {
				fmt.Println(err)
				continue
			}
			if len(flows) == 0 {
				fmt.Println("empty trace")
				continue
			}
			now = runFlows(net, flows, now)
		case "tables":
			if len(fields) != 2 {
				fmt.Println("usage: tables <switch>")
				continue
			}
			id, err := strconv.ParseUint(fields[1], 0, 32)
			if err != nil {
				fmt.Println("bad switch id")
				continue
			}
			sw, ok := net.Switches[uint32(id)]
			if !ok {
				fmt.Println("no such switch")
				continue
			}
			fmt.Print(sw)
		case "stats":
			fmt.Printf("delivered=%d redirects=%d setups=%d drops=%+v\n",
				net.M.Delivered, net.M.Redirects, net.M.SetupsCompleted, net.M.Drops)
			fmt.Printf("first-packet delay: p50=%s p99=%s (n=%d)\n",
				metrics.FormatDuration(net.M.FirstPacketDelay.Percentile(50)),
				metrics.FormatDuration(net.M.FirstPacketDelay.Percentile(99)),
				net.M.FirstPacketDelay.N())
			fmt.Printf("stretch: mean=%.2f (n=%d), cache entries=%d\n",
				net.M.Stretch.Mean(), net.M.Stretch.N(), net.CacheEntries())
		case "partitions":
			for i, p := range net.Assignment.Partitions {
				fmt.Printf("partition %d: %d rules, replicas %v, region %s\n",
					i, len(p.Rules), net.Assignment.ReplicasFor(i), p.Region)
			}
		case "counters":
			for _, rc := range net.PolicyCounters() {
				fmt.Printf("rule %d: %d packets, %d bytes\n", rc.RuleID, rc.Packets, rc.Bytes)
			}
		case "load":
			if len(fields) != 2 {
				fmt.Println("usage: load <file>")
				continue
			}
			f, err := os.Open(fields[1])
			if err != nil {
				fmt.Println(err)
				continue
			}
			rules, err := difane.ParsePolicy(f)
			f.Close()
			if err != nil {
				fmt.Println(err)
				continue
			}
			at, err := ctl.UpdatePolicy(rules)
			if err != nil {
				fmt.Println(err)
				continue
			}
			now = at + 0.01
			net.Run(now)
			fmt.Printf("loaded %d rules; converged at t=%.2fs\n", len(rules), at)
		case "save":
			if len(fields) != 2 {
				fmt.Println("usage: save <file>")
				continue
			}
			f, err := os.Create(fields[1])
			if err != nil {
				fmt.Println(err)
				continue
			}
			err = difane.WritePolicy(f, net.Policy)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Println(err)
				continue
			}
			fmt.Printf("wrote %d rules to %s\n", len(net.Policy), fields[1])
		case "compact":
			kept, removed := difane.CompactPolicy(net.Policy)
			if len(removed) == 0 {
				fmt.Println("no shadowed rules")
				continue
			}
			at, err := ctl.UpdatePolicy(kept)
			if err != nil {
				fmt.Println(err)
				continue
			}
			now = at + 0.01
			net.Run(now)
			fmt.Printf("removed %d shadowed rules: %v\n", len(removed), removed)
		case "fail":
			if len(fields) != 2 {
				fmt.Println("usage: fail <switch>")
				continue
			}
			id, err := strconv.ParseUint(fields[1], 0, 32)
			if err != nil {
				fmt.Println("bad switch id")
				continue
			}
			net.FailAuthority(uint32(id))
			at := ctl.OnAuthorityFailure(uint32(id))
			now = at + 0.01
			net.Run(now)
			fmt.Printf("failed switch %d; failover converged at t=%.2fs\n", id, at)
		default:
			fmt.Printf("unknown command %q (try help)\n", fields[0])
		}
	}
}

// runFlows injects a trace starting at the current time and runs the
// simulation past its end.
func runFlows(net *difane.Network, flows []difane.Flow, now float64) float64 {
	last := now
	for _, f := range flows {
		for p := 0; p < f.Packets; p++ {
			at := now + f.Start + float64(p)*f.Gap
			net.InjectPacket(at, f.Ingress, f.Key, f.Size, uint64(p))
			if at > last {
				last = at
			}
		}
	}
	end := last + 5
	net.Run(end)
	fmt.Printf("t=%.2fs delivered=%d redirects=%d drops=%+v\n",
		end, net.M.Delivered, net.M.Redirects, net.M.Drops)
	return end
}
