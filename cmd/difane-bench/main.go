// Command difane-bench regenerates every table and figure of the DIFANE
// evaluation (see DESIGN.md §3 for the experiment index) and prints them
// as text tables/series.
//
// Usage:
//
//	difane-bench [-quick] [-only T1,F1,...] [-seed N]
//
// With -wire it instead runs the reproducible data-plane benchmark suite
// (fixed-seed cache-hit / miss-storm / failover workloads against the
// simulator, the reactive baseline, and both wire-mode fabrics), writes
// the report to -out (bench-out/ is gitignored scratch; refreshing the
// committed baseline takes an explicit -out BENCH_wire.baseline.json),
// and — when -compare names a baseline report — exits nonzero on
// regression past the gate (15% throughput/allocs by default):
//
//	difane-bench -wire [-quick] [-seed N] [-out FILE] [-compare BENCH_wire.baseline.json]
//
// With -telemetry-smoke it prices the observability layer instead: the
// cache-hit/wire cell runs with tracing off and again with tracing on,
// the overhead is printed, and the tracing-off run is gated at 2%
// against the committed baseline — the flight recorder must cost nothing
// measurable when it is disabled:
//
//	difane-bench -telemetry-smoke [-quick] [-seed N] [-compare BENCH_wire.baseline.json]
//
// With -forensics-smoke it prices journey sampling: the cache-hit/wire
// cell with sampling off (held to the same 2% baseline gate) and at
// 1-in-256 (held to 5% of the sampling-off run). On a gate failure the
// assembled journeys of a sampled run land next to -out for CI's
// artifact upload:
//
//	difane-bench -forensics-smoke [-quick] [-seed N] [-compare BENCH_wire.baseline.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"difane/experiments"
	"difane/internal/perf"
	"difane/internal/wire"
)

type renderer interface{ Render() string }

func main() {
	quick := flag.Bool("quick", false, "run reduced-scale workloads")
	only := flag.String("only", "", "comma-separated experiment IDs to run (default all)")
	seed := flag.Int64("seed", 42, "generator seed")
	wireBench := flag.Bool("wire", false, "run the data-plane benchmark suite instead of the paper figures")
	out := flag.String("out", "bench-out/BENCH_wire.json", "where -wire writes its JSON report")
	compare := flag.String("compare", "", "baseline report to diff the -wire run against (exit 1 on regression)")
	allocBudget := flag.Float64("alloc-budget", perf.DefaultAllocBudget, "absolute cache-hit wire allocs/op ceiling for -wire (0 disables)")
	telemetrySmoke := flag.Bool("telemetry-smoke", false, "price the telemetry layer: cache-hit/wire with tracing off vs on, 2% disabled-overhead gate vs -compare")
	forensicsSmoke := flag.Bool("forensics-smoke", false, "price journey sampling: cache-hit/wire with sampling off (2% gate vs -compare) and at 1-in-256 (5% gate vs off)")
	cacheSmoke := flag.Bool("cache-ablation-smoke", false, "run the F6b eviction ablation and fail unless cost-aware miss rate <= LRU at every TCAM budget")
	flag.Parse()

	if *telemetrySmoke {
		os.Exit(runTelemetrySmoke(*quick, *seed, *compare))
	}
	if *forensicsSmoke {
		os.Exit(runForensicsSmoke(*quick, *seed, *compare, *out))
	}
	if *cacheSmoke {
		os.Exit(runCacheAblationSmoke(*quick, *seed, *out))
	}
	if *wireBench {
		os.Exit(runWireBench(*quick, *seed, *out, *compare, *allocBudget))
	}

	opts := experiments.Bench()
	if *quick {
		opts = experiments.Quick()
	}
	opts.Seed = *seed

	all := []struct {
		id  string
		run func(experiments.Options) renderer
	}{
		{"T1", func(o experiments.Options) renderer { return experiments.TableNetworks(o) }},
		{"F1", func(o experiments.Options) renderer { return experiments.FigFirstPacketDelay(o) }},
		{"F2", func(o experiments.Options) renderer { return experiments.FigThroughput(o) }},
		{"F3", func(o experiments.Options) renderer { return experiments.FigAuthorityScaling(o) }},
		{"F4", func(o experiments.Options) renderer { return experiments.FigPartitionTCAM(o) }},
		{"F5", func(o experiments.Options) renderer { return experiments.FigSplitOverhead(o) }},
		{"F6", func(o experiments.Options) renderer { return experiments.FigCacheMiss(o) }},
		{"F6B", func(o experiments.Options) renderer { return experiments.FigCacheBudget(o) }},
		{"F7", func(o experiments.Options) renderer { return experiments.FigStretch(o) }},
		{"F8", func(o experiments.Options) renderer { return experiments.FigFailover(o) }},
		{"F9", func(o experiments.Options) renderer { return experiments.FigPolicyChange(o) }},
		{"F10", func(o experiments.Options) renderer { return experiments.FigCacheTimeout(o) }},
		{"F11", func(o experiments.Options) renderer { return experiments.FigControlLoad(o) }},
		{"F12", func(o experiments.Options) renderer { return experiments.FigLinkLoad(o) }},
		{"A1", func(o experiments.Options) renderer { return experiments.AblationCacheStrategy(o) }},
		{"A2", func(o experiments.Options) renderer { return experiments.AblationPartitioner(o) }},
		{"A3", func(o experiments.Options) renderer { return experiments.AblationEviction(o) }},
		{"A4", func(o experiments.Options) renderer { return experiments.AblationRebalance(o) }},
		{"W3", func(o experiments.Options) renderer { return experiments.WireRobustness(o) }},
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	ran := 0
	for _, exp := range all {
		if len(want) > 0 && !want[exp.id] {
			continue
		}
		start := time.Now()
		result := exp.run(opts)
		fmt.Println(result.Render())
		fmt.Printf("(%s completed in %v)\n\n", exp.id, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiments matched -only=%q\n", *only)
		os.Exit(2)
	}
}

// runWireBench executes the fixed-seed data-plane suite, writes the JSON
// report, gates against a baseline when one is given, and asserts the
// absolute cache-hit allocs/op budget.
func runWireBench(quick bool, seed int64, out, compare string, allocBudget float64) int {
	cfg := perf.Full()
	if quick {
		cfg = perf.Quick()
	}
	cfg.Seed = seed
	start := time.Now()
	rep, err := perf.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Print(rep.Render())
	fmt.Printf("(wire bench completed in %v)\n", time.Since(start).Round(time.Millisecond))
	if allocBudget > 0 {
		if overs := perf.CheckAllocBudget(rep, allocBudget); len(overs) > 0 {
			// Same confirm-on-failure policy as the relative gate: a GC
			// landing inside a short window inflates the count once, a real
			// fast-path allocation inflates it every time.
			again, err := perf.Run(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			rep = perf.MergeBest(rep, again)
			if overs = perf.CheckAllocBudget(rep, allocBudget); len(overs) > 0 {
				writeReport(rep, out)
				fmt.Fprintln(os.Stderr, "ALLOC BUDGET EXCEEDED:")
				for _, o := range overs {
					fmt.Fprintf(os.Stderr, "  %s\n", o)
				}
				return 1
			}
		}
		fmt.Printf("cache-hit wire allocs/op within budget (%.1f)\n", allocBudget)
	}
	if compare != "" {
		base, err := perf.LoadReport(compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		regs := perf.Compare(base, rep, perf.DefaultTolerance())
		// Confirm-on-failure: wall-clock benchmarks on shared hardware see
		// transient contention bursts; a real regression survives fresh
		// measurements, a burst does not.
		for attempt := 0; len(regs) > 0 && attempt < 2; attempt++ {
			fmt.Printf("possible regression; re-measuring to confirm (attempt %d/3)\n", attempt+2)
			again, err := perf.Run(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			rep = perf.MergeBest(rep, again)
			regs = perf.Compare(base, rep, perf.DefaultTolerance())
		}
		if len(regs) > 0 {
			writeReport(rep, out)
			fmt.Fprintf(os.Stderr, "PERF REGRESSION vs %s:\n", compare)
			for _, r := range regs {
				fmt.Fprintf(os.Stderr, "  %s\n", r)
			}
			return 1
		}
		fmt.Printf("no regression vs %s\n", compare)
	}
	return writeReport(rep, out)
}

func writeReport(rep *perf.Report, out string) int {
	if out == "" {
		return 0
	}
	if dir := filepath.Dir(out); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if err := rep.WriteFile(out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("report written to %s\n", out)
	return 0
}

// runCacheAblationSmoke is the CI gate on the adaptive-caching claim: it
// runs the F6b eviction ablation (fixed seed, so the comparison is exact,
// not statistical) and fails unless the cost-aware policy's miss rate is
// at or below LRU's at every TCAM budget in the sweep. On failure the
// rendered table lands next to the -out report for the CI artifact upload.
func runCacheAblationSmoke(quick bool, seed int64, out string) int {
	opts := experiments.Bench()
	if quick {
		opts = experiments.Quick()
	}
	opts.Seed = seed
	start := time.Now()
	r := experiments.FigCacheBudget(opts)
	fmt.Println(r.Render())
	fmt.Printf("(cache ablation smoke completed in %v)\n", time.Since(start).Round(time.Millisecond))

	miss := map[int]map[string]float64{}
	for _, p := range r.Points {
		if miss[p.Budget] == nil {
			miss[p.Budget] = map[string]float64{}
		}
		miss[p.Budget][p.Policy.String()] = p.MissRate
	}
	var fails []string
	for budget, m := range miss {
		if m["cost"] > m["lru"] {
			fails = append(fails, fmt.Sprintf(
				"budget %d: cost-aware miss rate %.4f > lru %.4f at equal budget",
				budget, m["cost"], m["lru"]))
		}
	}
	if len(fails) > 0 {
		fmt.Fprintln(os.Stderr, "CACHE ABLATION GATE FAILED:")
		for _, f := range fails {
			fmt.Fprintf(os.Stderr, "  %s\n", f)
		}
		if dir := filepath.Dir(out); out != "" {
			if err := os.MkdirAll(dir, 0o755); err == nil {
				path := filepath.Join(dir, "cache_ablation_smoke.txt")
				report := r.Render() + "\n" + strings.Join(fails, "\n") + "\n"
				if err := os.WriteFile(path, []byte(report), 0o644); err == nil {
					fmt.Fprintf(os.Stderr, "report written to %s\n", path)
				}
			}
		}
		return 1
	}
	fmt.Println("cost-aware miss rate <= lru at every budget")
	return 0
}

// runTelemetrySmoke prices the observability layer on the steadiest cell
// (cache-hit / wire): one run with the flight recorder disabled, one with
// it tracing every packet. The tracing-off run is then gated at 2%
// (noise-widened) against the committed baseline's matching cell — the
// telemetry hooks must be invisible when tracing is off. The tracing-on
// overhead is printed but not gated: recording is an opt-in diagnostic.
func runTelemetrySmoke(quick bool, seed int64, compare string) int {
	cfg := perf.Full()
	if quick {
		cfg = perf.Quick()
	}
	cfg.Seed = seed
	cfg.Backends = []string{perf.BackendWire}
	cfg.Workloads = []string{perf.WorkloadCacheHit}

	start := time.Now()
	off, err := perf.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	cfgOn := cfg
	cfgOn.Telemetry = wire.TelemetryConfig{Tracing: true}
	on, err := perf.Run(cfgOn)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	offR, onR := off.Results[0], on.Results[0]
	overhead := 0.0
	if offR.PktsPerSec > 0 {
		overhead = (offR.PktsPerSec - onR.PktsPerSec) / offR.PktsPerSec * 100
	}
	fmt.Printf("telemetry smoke (%s/%s, seed %d):\n", offR.Workload, offR.Backend, seed)
	fmt.Printf("  tracing off: %10.0f pkts/s  %6.1f allocs/op\n", offR.PktsPerSec, offR.AllocsPerOp)
	fmt.Printf("  tracing on:  %10.0f pkts/s  %6.1f allocs/op  (%.1f%% overhead)\n",
		onR.PktsPerSec, onR.AllocsPerOp, overhead)
	fmt.Printf("(telemetry smoke completed in %v)\n", time.Since(start).Round(time.Millisecond))

	if compare == "" {
		return 0
	}
	base, err := perf.LoadReport(compare)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	filtered := filterCacheHitWire(base)
	if len(filtered.Results) == 0 {
		fmt.Fprintf(os.Stderr, "telemetry smoke: %s has no %s/%s row to gate against\n",
			compare, perf.WorkloadCacheHit, perf.BackendWire)
		return 1
	}
	tol := perf.DefaultTolerance()
	tol.Throughput, tol.Allocs = 0.02, 0.02
	regs := perf.Compare(filtered, off, tol)
	// Same confirm-on-failure dance as the main gate: a 2% wall-clock gate
	// on shared hardware needs re-measurement before it may fail the build.
	for attempt := 0; len(regs) > 0 && attempt < 2; attempt++ {
		fmt.Printf("possible tracing-off overhead; re-measuring to confirm (attempt %d/3)\n", attempt+2)
		again, err := perf.Run(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		off = perf.MergeBest(off, again)
		regs = perf.Compare(filtered, off, tol)
	}
	if len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "TELEMETRY OVERHEAD (tracing off) vs %s:\n", compare)
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "  %s\n", r)
		}
		return 1
	}
	fmt.Printf("tracing-off overhead within gate vs %s\n", compare)
	return 0
}

// filterCacheHitWire keeps only the cache-hit/wire row of a baseline
// report — the one-cell smokes gate against a full report, and Compare
// would flag every other row as missing.
func filterCacheHitWire(base *perf.Report) *perf.Report {
	filtered := &perf.Report{
		Version: base.Version, Quick: base.Quick, Seed: base.Seed,
		GoMaxProcs: base.GoMaxProcs,
	}
	for _, r := range base.Results {
		if r.Workload == perf.WorkloadCacheHit && r.Backend == perf.BackendWire {
			filtered.Results = append(filtered.Results, r)
		}
	}
	return filtered
}

// runForensicsSmoke prices journey sampling on the cache-hit/wire cell:
// the sampling-off run must hold the telemetry layer's 2% gate against
// the committed baseline, and 1-in-256 sampling may cost at most 5%
// against the sampling-off run. When a gate fails, the journeys a sampled
// run assembles are written next to -out so CI uploads them as the
// debugging artifact.
func runForensicsSmoke(quick bool, seed int64, compare, out string) int {
	const (
		sampleN    = 256
		sampleGate = 0.05
	)
	cfg := perf.Full()
	if quick {
		cfg = perf.Quick()
	}
	cfg.Seed = seed
	cfg.Backends = []string{perf.BackendWire}
	cfg.Workloads = []string{perf.WorkloadCacheHit}

	start := time.Now()
	off, err := perf.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	cfgOn := cfg
	cfgOn.Telemetry = wire.TelemetryConfig{Tracing: true, TraceSample: sampleN, TraceBuffer: 1 << 16}
	on, err := perf.Run(cfgOn)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	overhead := func() float64 {
		offR, onR := off.Results[0], on.Results[0]
		if offR.PktsPerSec <= 0 {
			return 0
		}
		return (offR.PktsPerSec - onR.PktsPerSec) / offR.PktsPerSec
	}
	fmt.Printf("forensics smoke (cache-hit/wire, seed %d):\n", seed)
	fmt.Printf("  sampling off:    %10.0f pkts/s  %6.1f allocs/op\n",
		off.Results[0].PktsPerSec, off.Results[0].AllocsPerOp)
	fmt.Printf("  sampling 1/%d:  %10.0f pkts/s  %6.1f allocs/op  (%.1f%% overhead)\n",
		sampleN, on.Results[0].PktsPerSec, on.Results[0].AllocsPerOp, 100*overhead())

	// Confirm-on-failure for the 5% sampled gate: wall-clock ratios on
	// shared hardware need fresh measurements of both sides before they
	// may fail the build.
	for attempt := 0; overhead() > sampleGate && attempt < 2; attempt++ {
		fmt.Printf("possible sampling overhead; re-measuring to confirm (attempt %d/3)\n", attempt+2)
		offAgain, err := perf.Run(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		off = perf.MergeBest(off, offAgain)
		onAgain, err := perf.Run(cfgOn)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		on = perf.MergeBest(on, onAgain)
	}
	failed := false
	if ov := overhead(); ov > sampleGate {
		fmt.Fprintf(os.Stderr, "FORENSICS GATE: 1-in-%d sampling costs %.1f%% on cache-hit/wire (gate %.0f%%)\n",
			sampleN, 100*ov, 100*sampleGate)
		failed = true
	}

	if compare != "" {
		// The sampling-off run must also hold the telemetry layer's 2%
		// disabled gate — the sampler is one atomic load when off.
		base, err := perf.LoadReport(compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		filtered := filterCacheHitWire(base)
		if len(filtered.Results) == 0 {
			fmt.Fprintf(os.Stderr, "forensics smoke: %s has no %s/%s row to gate against\n",
				compare, perf.WorkloadCacheHit, perf.BackendWire)
			return 1
		}
		tol := perf.DefaultTolerance()
		tol.Throughput, tol.Allocs = 0.02, 0.02
		regs := perf.Compare(filtered, off, tol)
		for attempt := 0; len(regs) > 0 && attempt < 2; attempt++ {
			fmt.Printf("possible sampling-off overhead; re-measuring to confirm (attempt %d/3)\n", attempt+2)
			again, err := perf.Run(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			off = perf.MergeBest(off, again)
			regs = perf.Compare(filtered, off, tol)
		}
		if len(regs) > 0 {
			fmt.Fprintf(os.Stderr, "FORENSICS GATE (sampling off) vs %s:\n", compare)
			for _, r := range regs {
				fmt.Fprintf(os.Stderr, "  %s\n", r)
			}
			failed = true
		}
	}
	fmt.Printf("(forensics smoke completed in %v)\n", time.Since(start).Round(time.Millisecond))

	if failed {
		writeJourneyArtifact(cfg, sampleN, out)
		return 1
	}
	fmt.Printf("sampling-off within gate; 1-in-%d sampling %.1f%% (gate %.0f%%)\n",
		sampleN, 100*overhead(), 100*sampleGate)
	return 0
}

// writeJourneyArtifact replays one sampled cache-hit run and drops the
// assembled journeys next to -out for the CI artifact upload.
func writeJourneyArtifact(cfg perf.Config, sampleN int, out string) {
	art, err := perf.JourneyArtifact(cfg, sampleN)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	dir := "bench-out"
	if out != "" {
		dir = filepath.Dir(out)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	path := filepath.Join(dir, "forensics_journeys.json")
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	fmt.Fprintf(os.Stderr, "journey artifact written to %s\n", path)
}
