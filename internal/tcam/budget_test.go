package tcam

import "testing"

// Tests for the budget-driven extension points: refcounted pins, custom
// victim selection, and shrink-on-SetCapacity.

func TestPinProtectsFromEviction(t *testing.T) {
	tb := New("test", 2, EvictLRU)
	mustInsert(t, tb, 0, rule(1, 10, 80))
	mustInsert(t, tb, 1, rule(2, 10, 81))
	tb.Pin(1)
	if !tb.Pinned(1) || tb.Pinned(2) {
		t.Fatalf("Pinned(1)=%v Pinned(2)=%v", tb.Pinned(1), tb.Pinned(2))
	}
	// Entry 1 is LRU but pinned; inserting a third entry must evict 2.
	mustInsert(t, tb, 2, rule(3, 10, 82))
	if _, _, ok := tb.Counters(1); !ok {
		t.Fatal("pinned entry 1 was evicted")
	}
	if _, _, ok := tb.Counters(2); ok {
		t.Fatal("entry 2 survived; expected it evicted instead of pinned 1")
	}
	// Refcounting: two pins need two unpins.
	tb.Pin(1)
	tb.Unpin(1)
	if !tb.Pinned(1) {
		t.Fatal("entry 1 unpinned after one of two Unpins")
	}
	tb.Unpin(1)
	if tb.Pinned(1) {
		t.Fatal("entry 1 still pinned after matching Unpins")
	}
}

func TestInsertFailsWhenAllPinned(t *testing.T) {
	tb := New("test", 1, EvictLRU)
	mustInsert(t, tb, 0, rule(1, 10, 80))
	tb.Pin(1)
	if err := tb.Insert(1, rule(2, 10, 81), 0, 0); err == nil {
		t.Fatal("insert succeeded with every slot pinned")
	}
}

func TestVictimFuncOverridesPolicy(t *testing.T) {
	tb := New("test", 2, EvictLRU)
	picked := -1
	tb.SetVictimFn(func(now float64, cands []VictimCandidate) int {
		// Pick the MRU entry — the opposite of the built-in LRU order.
		best, bestHit := -1, -1.0
		for i, c := range cands {
			if c.LastHit > bestHit {
				best, bestHit = i, c.LastHit
			}
		}
		picked = best
		return best
	})
	mustInsert(t, tb, 0, rule(1, 10, 80))
	mustInsert(t, tb, 1, rule(2, 10, 81))
	tb.Lookup(2, keyPort(81), 64) // entry 2 is now MRU
	mustInsert(t, tb, 3, rule(3, 10, 82))
	if picked < 0 {
		t.Fatal("victim fn was never consulted")
	}
	if _, _, ok := tb.Counters(2); ok {
		t.Fatal("MRU entry 2 survived; custom picker should have evicted it")
	}
	if _, _, ok := tb.Counters(1); !ok {
		t.Fatal("LRU entry 1 evicted despite custom picker choosing MRU")
	}
}

func TestVictimFuncDeclineFallsBack(t *testing.T) {
	tb := New("test", 1, EvictLRU)
	tb.SetVictimFn(func(now float64, cands []VictimCandidate) int { return -1 })
	mustInsert(t, tb, 0, rule(1, 10, 80))
	// Decline → built-in LRU picks entry 1; the insert must still land.
	mustInsert(t, tb, 1, rule(2, 10, 81))
	if _, _, ok := tb.Counters(2); !ok {
		t.Fatal("insert failed after victim fn declined")
	}
	if tb.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tb.Len())
	}
}

func TestVictimFuncNeverSeesPinned(t *testing.T) {
	tb := New("test", 2, EvictLRU)
	mustInsert(t, tb, 0, rule(1, 10, 80))
	mustInsert(t, tb, 1, rule(2, 10, 81))
	tb.Pin(1)
	tb.SetVictimFn(func(now float64, cands []VictimCandidate) int {
		for _, c := range cands {
			if c.ID == 1 {
				t.Error("pinned entry 1 offered to victim fn")
			}
		}
		return 0
	})
	mustInsert(t, tb, 2, rule(3, 10, 82))
}

func TestSetCapacityShrinksAndGrows(t *testing.T) {
	tb := New("test", 0, EvictLRU)
	for i := uint64(1); i <= 4; i++ {
		mustInsert(t, tb, float64(i), rule(i, 10, 79+i))
	}
	var evicted []uint64
	tb.OnEvict = func(e Entry) { evicted = append(evicted, e.Rule.ID) }
	if n := tb.SetCapacity(5, 2); n != 2 {
		t.Fatalf("SetCapacity evicted %d, want 2", n)
	}
	if tb.Len() != 2 || tb.Capacity() != 2 {
		t.Fatalf("Len=%d Capacity=%d, want 2/2", tb.Len(), tb.Capacity())
	}
	// LRU order: oldest last-hit (= install time here) go first.
	if len(evicted) != 2 || evicted[0] != 1 || evicted[1] != 2 {
		t.Fatalf("evicted %v, want [1 2]", evicted)
	}
	// Growing never evicts.
	if n := tb.SetCapacity(6, 10); n != 0 {
		t.Fatalf("grow evicted %d entries", n)
	}
	// Negative capacity: admits nothing, and shrink-to-zero evicts all.
	if n := tb.SetCapacity(7, -1); n != 2 {
		t.Fatalf("SetCapacity(-1) evicted %d, want 2", n)
	}
	if err := tb.Insert(8, rule(9, 10, 99), 0, 0); err == nil {
		t.Fatal("insert succeeded into a negative-capacity table")
	}
	// Zero stays "unlimited".
	tb.SetCapacity(9, 0)
	mustInsert(t, tb, 10, rule(9, 10, 99))
}
