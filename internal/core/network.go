package core

import (
	"fmt"
	"math"
	"sync"

	"difane/internal/cachepolicy"
	"difane/internal/flowspace"
	"difane/internal/metrics"
	"difane/internal/packet"
	"difane/internal/proto"
	"difane/internal/sim"
	"difane/internal/switchsim"
	"difane/internal/tcam"
	"difane/internal/telemetry"
	"difane/internal/topo"
)

// NetworkConfig tunes the simulated DIFANE deployment.
type NetworkConfig struct {
	// Strategy picks the cache-rule generation scheme.
	Strategy CacheStrategy
	// CacheCapacity bounds each ingress switch's cache table (0 = unlimited).
	CacheCapacity int
	// CacheIdle / CacheHard are timeouts for generated cache rules.
	CacheIdle float64
	CacheHard float64
	// CacheEviction picks the victim policy for full caches.
	CacheEviction EvictionChoice
	// TCAMBudget, when >0, bounds each switch's *total* TCAM occupancy
	// (cache + authority + partition rules share one physical table); the
	// cache's capacity is continuously derived as the budget minus the
	// mandatory-rule footprint. See switchsim.Config.TCAMBudget.
	TCAMBudget int
	// CacheAdaptInterval is the period of the cost-aware policy's
	// adaptation tick — per-region idle-timeout tuning and cover-rule
	// aggregation (default 0.25s; only runs under EvictCostAware).
	CacheAdaptInterval float64
	// AuthorityRate is each authority switch's miss-handling capacity in
	// flows per second (0 = infinitely fast). The paper's software-assisted
	// authority switch sustains on the order of several hundred thousand
	// flow setups per second.
	AuthorityRate float64
	// AuthorityQueue bounds the authority's pending-miss queue; overflow
	// packets are dropped (0 = unbounded).
	AuthorityQueue int
	// InstallDelay is the extra control-path delay between an authority
	// deciding a cache rule and the ingress switch having it installed,
	// on top of the authority→ingress propagation delay.
	InstallDelay float64
	// Replication is the number of authority switches each partition is
	// hosted at (minimum 2 when possible). More replicas cost TCAM but
	// shorten redirect detours, since every ingress targets its nearest
	// replica.
	Replication int
	// HopByHop enables per-link load accounting: packets are walked along
	// their shortest paths and every directed-link traversal is counted in
	// Network.LinkLoads. Delays are unchanged (shortest-path latency
	// either way); the cost is the per-packet path computation.
	HopByHop bool
	// Partition tunes the flow-space partitioner.
	Partition PartitionConfig

	// Tracing enables the flight recorder from construction (also
	// toggleable at runtime via SetTracing); TraceBuffer sizes each node's
	// event ring (default 4096).
	Tracing     bool
	TraceBuffer int
	// TraceSample is the 1-in-N per-packet trace-ID sampling rate feeding
	// journey assembly (0 = off). The sampling decision is a pure hash of
	// the flow tuple and packet sequence, so the simulated, baseline, and
	// wire backends replaying the same workload sample the same packets.
	TraceSample int
	// Health tunes the watchdog SLO thresholds (zero values take the
	// documented defaults).
	Health telemetry.HealthConfig
}

// EvictionChoice selects the ingress-cache eviction policy. The zero
// value is LRU, the behaviour DIFANE's reactive caching approximates.
type EvictionChoice int

// Eviction policies.
const (
	EvictDefaultLRU EvictionChoice = iota
	EvictLFU
	EvictNone
	// EvictCostAware scores victims by predicted miss cost (observed
	// redirect latency × region hit rate × entry re-reference rate) via
	// internal/cachepolicy, falling back to LRU ordering when the scorer
	// declines.
	EvictCostAware
)

// TCAMPolicy maps the deployment-level choice onto the TCAM's built-in
// victim ordering. EvictCostAware maps to LRU: the cost scorer is plugged
// in as a custom VictimFunc on top, and LRU is its declared fallback.
func (e EvictionChoice) TCAMPolicy() tcam.EvictionPolicy {
	switch e {
	case EvictLFU:
		return tcam.EvictLFU
	case EvictNone:
		return tcam.EvictNone
	default:
		return tcam.EvictLRU
	}
}

func (e EvictionChoice) String() string {
	switch e {
	case EvictLFU:
		return "lfu"
	case EvictNone:
		return "none"
	case EvictCostAware:
		return "cost"
	default:
		return "lru"
	}
}

// Drops breaks out why packets were lost.
type Drops struct {
	// Policy counts packets matching a drop rule (not an error).
	Policy uint64
	// Hole counts packets matching no rule at the authority.
	Hole uint64
	// AuthorityQueue counts packets shed by an overloaded authority.
	AuthorityQueue uint64
	// RedirectShed counts redirects refused by the ingress token bucket —
	// wire mode's miss-storm protection deliberately dropping the tail of
	// an overload instead of collapsing the authority switch.
	RedirectShed uint64
	// Unreachable counts packets whose redirect or delivery path was
	// partitioned away.
	Unreachable uint64
}

// Measurements aggregates what the evaluation records from a run.
type Measurements struct {
	// FirstPacketDelay is the injection→delivery latency of each flow's
	// first packet.
	FirstPacketDelay metrics.Dist
	// LaterPacketDelay is the same for non-first packets.
	LaterPacketDelay metrics.Dist
	// Stretch is (detour length / direct length) for packets that took the
	// authority detour.
	Stretch metrics.Dist

	Delivered uint64
	Redirects uint64
	Drops     Drops

	// SetupsCompleted counts flows whose first packet was delivered or
	// legitimately policy-dropped — the throughput figures' numerator.
	SetupsCompleted uint64

	// Resilience counters, populated by wire mode's failure detector and
	// failover machinery (zero in pure simulation runs).
	//
	// AuthorityDeaths counts switches the failure detector declared dead;
	// FailoversLocal counts ingress-local partition-rule repoints onto a
	// backup authority (no controller round trip); FailoversPromoted counts
	// partition rules the controller withdrew after a death; and
	// ControlReconnects counts control connections re-established after a
	// loss.
	AuthorityDeaths   uint64
	FailoversLocal    uint64
	FailoversPromoted uint64
	ControlReconnects uint64

	// Controller crash-recovery and overload-protection counters (wire
	// mode; zero elsewhere).
	//
	// ControllerOutages counts controller losses the switches rode out;
	// OutageBuffered/OutageDrained/OutageDropped track controller-bound
	// events queued in the bounded outage buffer, replayed on reconnect,
	// or shed when the buffer overflowed; StaleInstallsRejected counts
	// FlowMods a switch refused because they carried an epoch older than
	// its fence; CacheInstallsShed counts cache installs suppressed by the
	// control-plane token bucket under a miss storm.
	ControllerOutages     uint64
	OutageBuffered        uint64
	OutageDrained         uint64
	OutageDropped         uint64
	StaleInstallsRejected uint64
	CacheInstallsShed     uint64

	// Policy-churn counters: authority/partition rules installed and
	// removed by policy updates, rebalances, and recovery reconciliation.
	// A no-op policy update must leave both untouched.
	PolicyRuleInstalls uint64
	PolicyRuleDeletes  uint64

	// Failure-detection and HA timing (wire mode; empty elsewhere).
	//
	// FailoverDetection samples the latency from an injected fault
	// (switch kill, control partition) to the failure detector's death
	// verdict, in seconds — milliseconds under BFD versus multiple
	// heartbeat intervals without it. LeaderElection samples the time
	// from a controller-leader kill to the new leader being seated;
	// LeaderElections counts completed elections.
	FailoverDetection metrics.Dist
	LeaderElection    metrics.Dist
	LeaderElections   uint64
}

// Snapshot returns an independent copy safe to query while the original
// keeps accumulating. Callers that mutate m's plain counters concurrently
// must hold their own lock around this (the distributions are internally
// synchronized; the uint64 counters are not).
func (m *Measurements) Snapshot() *Measurements {
	out := *m
	out.FirstPacketDelay = m.FirstPacketDelay.Clone()
	out.LaterPacketDelay = m.LaterPacketDelay.Clone()
	out.Stretch = m.Stretch.Clone()
	out.FailoverDetection = m.FailoverDetection.Clone()
	out.LeaderElection = m.LeaderElection.Clone()
	return &out
}

// Merge folds o into m: counters add, latency/stretch distributions
// concatenate. Wire mode uses it to combine per-node measurement shards
// into one cluster-wide snapshot; o must not be concurrently mutated
// (hold its shard's lock or pass an independent copy).
func (m *Measurements) Merge(o *Measurements) {
	m.FirstPacketDelay.Merge(&o.FirstPacketDelay)
	m.LaterPacketDelay.Merge(&o.LaterPacketDelay)
	m.Stretch.Merge(&o.Stretch)

	m.Delivered += o.Delivered
	m.Redirects += o.Redirects
	m.Drops.Policy += o.Drops.Policy
	m.Drops.Hole += o.Drops.Hole
	m.Drops.AuthorityQueue += o.Drops.AuthorityQueue
	m.Drops.RedirectShed += o.Drops.RedirectShed
	m.Drops.Unreachable += o.Drops.Unreachable
	m.SetupsCompleted += o.SetupsCompleted

	m.AuthorityDeaths += o.AuthorityDeaths
	m.FailoversLocal += o.FailoversLocal
	m.FailoversPromoted += o.FailoversPromoted
	m.ControlReconnects += o.ControlReconnects

	m.ControllerOutages += o.ControllerOutages
	m.OutageBuffered += o.OutageBuffered
	m.OutageDrained += o.OutageDrained
	m.OutageDropped += o.OutageDropped
	m.StaleInstallsRejected += o.StaleInstallsRejected
	m.CacheInstallsShed += o.CacheInstallsShed

	m.PolicyRuleInstalls += o.PolicyRuleInstalls
	m.PolicyRuleDeletes += o.PolicyRuleDeletes

	m.FailoverDetection.Merge(&o.FailoverDetection)
	m.LeaderElection.Merge(&o.LeaderElection)
	m.LeaderElections += o.LeaderElections
}

// Network is a DIFANE deployment running under the discrete-event engine.
type Network struct {
	Eng  *sim.Engine
	Topo *topo.Graph

	Switches map[uint32]*switchsim.Switch
	// authorityAt lists the Authority partition handlers hosted by each
	// authority switch (primaries and backup replicas).
	authorityAt map[uint32][]*Authority
	authSt      map[uint32]*sim.Station

	Assignment Assignment
	Policy     []flowspace.Rule
	cfg        NetworkConfig

	// pinRouting makes partition rules target the assignment's primary
	// replica instead of the nearest one. Load rebalancing sets it: the
	// controller is then choosing replicas to balance measured load, at
	// the cost of longer detours (the stretch/throughput trade-off).
	pinRouting bool

	// LinkLoads counts packets per directed link when cfg.HopByHop is set.
	LinkLoads LinkLoads

	// cachePol is the cost-aware caching policy (nil unless
	// cfg.CacheEviction == EvictCostAware); aggSeq mints aggregation
	// cover-rule IDs.
	cachePol *cachepolicy.Policy
	aggSeq   uint64

	// Observer, when non-nil, receives exactly one VerdictEvent per
	// injected packet at its terminal outcome. The differential checker
	// (internal/scencheck) uses it to compare per-packet behaviour against
	// the reference oracle; nil costs nothing.
	Observer func(VerdictEvent)

	M Measurements

	// Forensics: flight recorder, per-packet trace sampler, policy-update
	// convergence tracker, and (built with the registry) health watchdog.
	rec     *telemetry.Recorder
	sampler *telemetry.Sampler
	conv    *telemetry.Convergence
	wd      *telemetry.Watchdog

	// telReg is the lazily-built metric registry behind Telemetry().
	telOnce sync.Once
	telReg  *telemetry.Registry
}

// NewNetwork builds a DIFANE network over the topology. Every node in the
// graph becomes a switch; authorities lists the switches hosting authority
// rules; policy is the global prioritized rule set.
func NewNetwork(g *topo.Graph, authorities []uint32, policy []flowspace.Rule, cfg NetworkConfig) (*Network, error) {
	if len(authorities) == 0 {
		return nil, fmt.Errorf("core: need at least one authority switch")
	}
	parts := BuildPartitions(policy, cfg.Partition)
	assign, err := AssignWithReplication(parts, authorities, cfg.Replication)
	if err != nil {
		return nil, err
	}
	n := &Network{
		Eng:         sim.New(),
		Topo:        g,
		Switches:    make(map[uint32]*switchsim.Switch),
		authorityAt: make(map[uint32][]*Authority),
		authSt:      make(map[uint32]*sim.Station),
		Assignment:  assign,
		Policy:      append([]flowspace.Rule(nil), policy...),
		cfg:         cfg,
		LinkLoads:   make(LinkLoads),
	}
	if cfg.CacheEviction == EvictCostAware {
		n.cachePol = cachepolicy.New(cachepolicy.Config{})
	}
	for _, id := range g.Nodes() {
		n.Switches[uint32(id)] = switchsim.New(uint32(id), switchsim.Config{
			CacheCapacity: cfg.CacheCapacity,
			CacheEviction: cfg.CacheEviction.TCAMPolicy(),
			CacheVictim:   n.cacheVictimFn(),
			TCAMBudget:    cfg.TCAMBudget,
		})
	}
	for _, id := range authorities {
		if _, ok := n.Switches[id]; !ok {
			return nil, fmt.Errorf("core: authority switch %d not in topology", id)
		}
		n.authSt[id] = sim.NewStation(n.Eng, cfg.AuthorityRate, cfg.AuthorityQueue)
	}
	nodes := make([]uint32, 0, len(n.Switches))
	for id := range n.Switches {
		nodes = append(nodes, id)
	}
	n.rec = telemetry.NewRecorder(nodes, cfg.TraceBuffer, cfg.Tracing)
	n.sampler = telemetry.NewSampler(cfg.TraceSample)
	n.conv = telemetry.NewConvergence(0)
	n.installAssignment()
	n.startCacheAdaptation()
	return n, nil
}

// installAssignment loads partition rules into every switch and authority
// rules (primary + backup replicas) into the authority switches.
//
// Partition rules are per-switch: each ingress's high-priority rule points
// at the *closest* replica of the partition (the paper's nearest-replica
// redirection, which is what makes stretch shrink as authority switches
// are added), with a lower-priority rule at the other replica as the
// pre-installed failover path.
func (n *Network) installAssignment() {
	n.applyAssignment(n.Assignment)
}

func clearAuthorityTable(sw *switchsim.Switch) int {
	return sw.Table(proto.TableAuthority).DeleteWhere(func(tcam.Entry) bool { return true })
}

// authorityBandShift places the partition band of an authority-table entry
// ID above both the 32-bit policy-rule ID and the generation band that
// consistent updates OR in at bit 32.
const authorityBandShift = 42

// AuthorityEntryID returns the authority-TCAM entry ID for partition
// part's clip of rule id. Two partitions hosted on the same switch can
// both carry a clip of the same policy rule (the rule spans both regions);
// banding the partition index in keeps the clips from replacing each other
// in the shared table.
func AuthorityEntryID(part int, id uint64) uint64 {
	return uint64(part+1)<<authorityBandShift | id
}

// AuthorityEntryRuleID recovers the (possibly generation-banded) rule ID
// embedded in an authority-TCAM entry ID.
func AuthorityEntryRuleID(entry uint64) uint64 {
	return entry & (1<<authorityBandShift - 1)
}

// authorityAdd builds the FlowMod installing partition part's clip r into
// an authority TCAM, re-keyed so clips from different partitions coexist.
func authorityAdd(part int, r flowspace.Rule) proto.FlowMod {
	r.ID = AuthorityEntryID(part, r.ID)
	return proto.FlowMod{Table: proto.TableAuthority, Op: proto.OpAdd, Rule: r}
}

// partitionIDBase offsets partition-rule IDs away from policy rule IDs.
const partitionIDBase uint64 = 1 << 50

// PartitionIDBase is the partition-rule ID offset, exported so harnesses
// can map installed partition-table rules back to partition indices via
// Assignment.PartitionOfRuleID.
const PartitionIDBase = partitionIDBase

// installPartitionRules (re)writes every switch's partition table from the
// current assignment and topology: the high-priority rule targets the
// switch's nearest reachable replica, the low-priority rule the second
// nearest. Inserting with a fixed per-partition ID replaces any previous
// rule, so the same path serves initial install and topology refresh.
func (n *Network) installPartitionRules() {
	now := n.Eng.Now()
	for swID, sw := range n.Switches {
		installed := make(map[uint64]bool, 2*len(n.Assignment.Partitions))
		for i, p := range n.Assignment.Partitions {
			hosts := n.Assignment.ReplicasFor(i)
			var near, far uint32
			if n.pinRouting {
				near, far = n.Assignment.Primary[i], n.Assignment.Backup[i]
			} else {
				near, far = n.orderByDistance(swID, hosts)
			}
			mod := proto.FlowMod{Table: proto.TablePartition, Op: proto.OpAdd,
				Rule: flowspace.Rule{
					ID:       partitionIDBase + uint64(2*i),
					Priority: PriPartitionPrimary,
					Match:    p.Region,
					Action:   flowspace.Action{Kind: flowspace.ActRedirect, Arg: near},
				}}
			_ = sw.ApplyFlowMod(now, &mod)
			installed[mod.Rule.ID] = true
			if far != near {
				mod := proto.FlowMod{Table: proto.TablePartition, Op: proto.OpAdd,
					Rule: flowspace.Rule{
						ID:       partitionIDBase + uint64(2*i) + 1,
						Priority: PriPartitionBackup,
						Match:    p.Region,
						Action:   flowspace.Action{Kind: flowspace.ActRedirect, Arg: far},
					}}
				_ = sw.ApplyFlowMod(now, &mod)
				installed[mod.Rule.ID] = true
			}
		}
		// Withdraw leftovers from a previous, larger assignment (or backup
		// rules of partitions that collapsed to a single replica): a stale
		// redirect sends packets to an authority that no longer hosts the
		// region, which the authority can only drop as a hole.
		sw.Table(proto.TablePartition).DeleteWhere(func(e tcam.Entry) bool {
			return !installed[e.Rule.ID]
		})
	}
}

// orderByDistance returns the nearest and second-nearest replica hosts
// from the given switch, breaking ties toward the lower ID. With a single
// host, both returns are that host.
func (n *Network) orderByDistance(from uint32, hosts []uint32) (near, far uint32) {
	if len(hosts) == 1 {
		return hosts[0], hosts[0]
	}
	distOf := func(id uint32) float64 {
		d, ok := n.Topo.Dist(topo.NodeID(from), topo.NodeID(id))
		if !ok {
			return math.Inf(1)
		}
		return d
	}
	closer := func(a, b uint32) bool {
		da, db := distOf(a), distOf(b)
		return da < db || (da == db && a < b)
	}
	near = hosts[0]
	for _, h := range hosts[1:] {
		if closer(h, near) {
			near = h
		}
	}
	picked := false
	for _, h := range hosts {
		if h == near {
			continue
		}
		if !picked || closer(h, far) {
			far, picked = h, true
		}
	}
	if !picked {
		far = near
	}
	return near, far
}

// authorityFor finds the partition handler for key k at authority switch
// id, or nil.
func (n *Network) authorityFor(id uint32, k flowspace.Key) *Authority {
	for _, a := range n.authorityAt[id] {
		if a.Partition.Region.Matches(k) {
			return a
		}
	}
	return nil
}

// PacketIn is one packet handed to a deployment for injection — the
// argument tuple of InjectPacket in struct form, so callers can hand whole
// bursts to a backend in one call (InjectBatch).
type PacketIn struct {
	// At is the virtual injection time (ignored by real-time backends).
	At float64
	// Ingress is the switch the packet enters at.
	Ingress uint32
	// Key is the packet's header projected onto the flowspace match tuple.
	Key flowspace.Key
	// Size is the packet's size in bytes.
	Size int
	// Seq is the packet's sequence within its flow (0 = first).
	Seq uint64
}

// InjectPacket schedules one packet entering the network at the ingress
// switch at time at. seq 0 marks a flow's first packet.
func (n *Network) InjectPacket(at float64, ingress uint32, k flowspace.Key, size int, seq uint64) {
	n.Eng.At(at, func() {
		n.processAtIngress(at, ingress, k, size, seq)
	})
}

// InjectBatch schedules a burst of packets. The simulator is a
// discrete-event engine, so batching here is a convenience loop — each
// packet still becomes its own event at its own virtual time.
func (n *Network) InjectBatch(batch []PacketIn) {
	for _, p := range batch {
		n.InjectPacket(p.At, p.Ingress, p.Key, p.Size, p.Seq)
	}
}

func (n *Network) processAtIngress(injected float64, ingress uint32, k flowspace.Key, size int, seq uint64) {
	now := n.Eng.Now()
	trace := n.traceID(k, seq)
	if trace != 0 {
		n.span(telemetry.Event{Kind: telemetry.EvIngress, Node: ingress, Trace: trace, Flow: tupleOfKey(k)})
	}
	sw, ok := n.Switches[ingress]
	if !ok || !n.Topo.NodeUp(topo.NodeID(ingress)) {
		n.M.Drops.Unreachable++
		n.finish(VerdictUnreachable, ingress, k, seq, 0, false, trace, 0)
		return
	}
	sw.Advance(now)
	res := sw.Classify(now, k, size)
	if !res.OK {
		// No partition rule matched: with a full partition cover this only
		// happens when partition rules were withdrawn (failover windows).
		n.M.Drops.Unreachable++
		n.finish(VerdictUnreachable, ingress, k, seq, 0, false, trace, 0)
		return
	}
	if n.cachePol != nil && res.Table == proto.TableCache {
		n.cachePol.ObserveTraffic(n.regionOfKey(k), 1, 0)
	}
	switch res.Rule.Action.Kind {
	case flowspace.ActDrop:
		n.M.Drops.Policy++
		if seq == 0 {
			n.M.SetupsCompleted++
		}
		n.finish(VerdictPolicyDrop, ingress, k, seq, 0, false, trace, 0)
	case flowspace.ActForward, flowspace.ActCount:
		egress := res.Rule.Action.Arg
		if trace != 0 {
			n.span(telemetry.Event{Kind: telemetry.EvForward, Node: ingress, Peer: egress,
				Table: uint8(res.Table), RuleID: res.Rule.ID, Trace: trace, Flow: tupleOfKey(k)})
		}
		n.deliverDirect(injected, ingress, egress, k, seq, trace)
	case flowspace.ActRedirect:
		if trace != 0 {
			n.span(telemetry.Event{Kind: telemetry.EvRedirect, Node: ingress, Peer: res.Rule.Action.Arg,
				Table: uint8(res.Table), RuleID: res.Rule.ID, Trace: trace, Flow: tupleOfKey(k)})
		}
		n.redirect(injected, ingress, res.Rule.Action.Arg, k, size, seq, trace)
	case flowspace.ActController:
		// DIFANE networks never punt to the controller; treat as a hole.
		n.M.Drops.Hole++
		n.finish(VerdictHole, ingress, k, seq, 0, false, trace, 0)
	}
}

func (n *Network) deliverDirect(injected float64, ingress, egress uint32, k flowspace.Key, seq uint64, trace uint64) {
	ok := n.sendAlong(ingress, egress, func() {
		n.recordDelivery(injected, k, egress, seq, 0, trace) // no detour: no stretch sample
	})
	if !ok {
		n.M.Drops.Unreachable++
		n.finish(VerdictUnreachable, ingress, k, seq, 0, false, trace, 0)
	}
}

func (n *Network) redirect(injected float64, ingress, authority uint32, k flowspace.Key, size int, seq uint64, trace uint64) {
	n.M.Redirects++
	dIA, okDist := n.Topo.Dist(topo.NodeID(ingress), topo.NodeID(authority))
	if !okDist {
		n.M.Drops.Unreachable++
		n.finish(VerdictUnreachable, ingress, k, seq, 0, false, trace, 0)
		return
	}
	sent := n.sendAlong(ingress, authority, func() {
		st := n.authSt[authority]
		if st == nil {
			n.M.Drops.Unreachable++
			n.finish(VerdictUnreachable, authority, k, seq, 0, false, trace, 0)
			return
		}
		ok := st.Submit(func(done float64) {
			n.authorityHandle(injected, ingress, authority, k, size, seq, dIA, trace)
		})
		if !ok {
			n.M.Drops.AuthorityQueue++
			n.finish(VerdictQueueDrop, authority, k, seq, 0, false, trace, 0)
		}
	})
	if !sent {
		n.M.Drops.Unreachable++
		n.finish(VerdictUnreachable, ingress, k, seq, 0, false, trace, 0)
	}
}

func (n *Network) authorityHandle(injected float64, ingress, authority uint32, k flowspace.Key, size int, seq uint64, dIA float64, trace uint64) {
	now := n.Eng.Now()
	auth := n.authorityFor(authority, k)
	if auth == nil {
		n.M.Drops.Hole++
		n.finish(VerdictHole, authority, k, seq, 0, false, trace, 0)
		return
	}
	res := auth.HandleMiss(k)
	if !res.OK {
		n.M.Drops.Hole++
		n.finish(VerdictHole, authority, k, seq, 0, false, trace, 0)
		return
	}
	if trace != 0 {
		n.span(telemetry.Event{Kind: telemetry.EvAuthority, Node: authority, Peer: ingress,
			Table: uint8(proto.TableAuthority), RuleID: res.Rule.ID, Trace: trace, Flow: tupleOfKey(k)})
	}
	if n.cachePol != nil {
		// The detour to here is the cost a miss in this region actually
		// paid; the return leg roughly mirrors it.
		n.cachePol.ObserveRedirect(auth.RegionIndex, now-injected)
		n.cachePol.ObserveTraffic(auth.RegionIndex, 0, 1)
	}
	// Register the hit on the authority switch's TCAM so its counters
	// reflect the redirected traffic it serves.
	if sw := n.Switches[authority]; sw != nil {
		sw.Table(proto.TableAuthority).Lookup(now, k, size)
		sw.Stats.AuthorityHits.Add(1)
	}
	// Install cache rules at the ingress switch after the control path.
	if len(res.CacheMods) > 0 {
		dAI, okBack := n.Topo.Dist(topo.NodeID(authority), topo.NodeID(ingress))
		if okBack {
			installAt := now + dAI + n.cfg.InstallDelay
			mods := res.CacheMods
			if trace != 0 {
				n.span(telemetry.Event{Kind: telemetry.EvInstallTriggered, Node: authority, Peer: ingress,
					Table: uint8(proto.TableCache), RuleID: mods[0].Rule.ID, Trace: trace, Flow: tupleOfKey(k)})
			}
			n.Eng.At(installAt, func() {
				sw := n.Switches[ingress]
				for i := range mods {
					_ = sw.ApplyFlowMod(n.Eng.Now(), &mods[i])
				}
				if trace != 0 {
					n.span(telemetry.Event{Kind: telemetry.EvInstall, Node: ingress,
						Table: uint8(proto.TableCache), RuleID: mods[0].Rule.ID, Trace: trace})
				}
			})
		}
	}
	// Forward the packet itself from the authority switch.
	switch res.Rule.Action.Kind {
	case flowspace.ActDrop:
		n.M.Drops.Policy++
		if seq == 0 {
			n.M.SetupsCompleted++
		}
		n.finish(VerdictPolicyDrop, authority, k, seq, 0, false, trace, 0)
	case flowspace.ActForward, flowspace.ActCount:
		egress := res.Rule.Action.Arg
		dAE, ok := n.Topo.Dist(topo.NodeID(authority), topo.NodeID(egress))
		if !ok {
			n.M.Drops.Unreachable++
			n.finish(VerdictUnreachable, authority, k, seq, 0, false, trace, 0)
			return
		}
		stretch := 1.0
		if direct, okD := n.Topo.Dist(topo.NodeID(ingress), topo.NodeID(egress)); okD && direct > 0 {
			stretch = (dIA + dAE) / direct
		}
		sent := n.sendAlong(authority, egress, func() {
			n.recordDelivery(injected, k, egress, seq, stretch, trace)
		})
		if !sent {
			n.M.Drops.Unreachable++
			n.finish(VerdictUnreachable, authority, k, seq, 0, false, trace, 0)
		}
	default:
		n.M.Drops.Hole++
		n.finish(VerdictHole, authority, k, seq, 0, false, trace, 0)
	}
}

func (n *Network) recordDelivery(injected float64, k flowspace.Key, egress uint32, seq uint64, stretch float64, trace uint64) {
	now := n.Eng.Now()
	n.M.Delivered++
	delay := now - injected
	n.finish(VerdictDelivered, egress, k, seq, egress, stretch > 0, trace, uint64(delay*1e9))
	if seq == 0 {
		n.M.FirstPacketDelay.Add(delay)
		n.M.SetupsCompleted++
	} else {
		n.M.LaterPacketDelay.Add(delay)
	}
	if stretch >= 1.0 && !math.IsInf(stretch, 1) {
		n.M.Stretch.Add(stretch)
	}
}

// Run drives the simulation to the horizon. A drained event queue is the
// simulator's quiesce point — every injected packet's event chain has
// fully resolved — so any open policy-update convergence timelines are
// stamped converged here, mirroring wire mode's accounting-identity check.
func (n *Network) Run(horizon float64) {
	n.Eng.Run(horizon)
	if n.Eng.Pending() == 0 {
		n.conv.NoteQuiesce(n.vnow(), n.counterTotals())
	}
}

// Measurements returns the run's recorded statistics, completing the
// Deployment driving surface shared with the baseline and wire mode.
func (n *Network) Measurements() *Measurements { return &n.M }

// Close releases the deployment. The simulated network holds no external
// resources; Close exists so Network satisfies the Deployment interface.
func (n *Network) Close() error { return nil }

// FailAuthority marks an authority switch down in the topology. Data-plane
// redirects to it start failing immediately; call PromoteBackups (the
// controller's failover action) to shift its partitions to their backups.
func (n *Network) FailAuthority(id uint32) {
	n.Topo.SetNode(topo.NodeID(id), false)
}

// PromoteBackups deletes every partition rule redirecting to the failed
// authority from every switch, exposing the lower-priority rules that
// point at the surviving replica — DIFANE's failover mechanism.
func (n *Network) PromoteBackups(failed uint32) int {
	removed := 0
	for _, sw := range n.Switches {
		removed += sw.Table(proto.TablePartition).DeleteWhere(func(e tcam.Entry) bool {
			return e.Rule.Action.Kind == flowspace.ActRedirect && e.Rule.Action.Arg == failed
		})
	}
	return removed
}

// ClearCaches wipes every switch's cache table (policy-change handling)
// and returns the number of entries removed.
func (n *Network) ClearCaches() int {
	total := 0
	for _, sw := range n.Switches {
		total += sw.ClearCache()
	}
	return total
}

// CacheEntries returns the current total number of cache entries across
// all switches.
func (n *Network) CacheEntries() int {
	total := 0
	for _, sw := range n.Switches {
		total += sw.Table(proto.TableCache).Len()
	}
	return total
}

// AuthorityLoad returns per-authority primary TCAM entries.
func (n *Network) AuthorityLoad() map[uint32]int { return n.Assignment.LoadPerAuthority() }

// AllAuthorities returns every partition handler in the network (primaries
// and backup replicas), for statistics aggregation.
func (n *Network) AllAuthorities() []*Authority {
	var out []*Authority
	for _, id := range n.Topo.Nodes() {
		out = append(out, n.authorityAt[uint32(id)]...)
	}
	return out
}

// EgressOf evaluates the global policy for a key, returning the egress
// switch for forwarded traffic (ok=false for drops/holes). Used by tests
// and workloads to find ground truth.
func (n *Network) EgressOf(k flowspace.Key) (uint32, bool) {
	r, ok := flowspace.EvalTable(n.Policy, k)
	if !ok || r.Action.Kind != flowspace.ActForward {
		return 0, false
	}
	return r.Action.Arg, true
}

// HeaderKey is a convenience for tests: project a packet header to a key.
func HeaderKey(h packet.Header) flowspace.Key { return h.Key() }
