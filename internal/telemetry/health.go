package telemetry

import (
	"fmt"
	"sync"
)

// Rule severities. Soak's failure gate trips only on critical rules; warn
// rules are operator signals.
const (
	SevWarn     = "warn"
	SevCritical = "critical"
)

// HealthConfig sets the thresholds of the default SLO rules. Zero values
// take the documented defaults; the Min* floors keep rules quiet until
// enough traffic moved in a window to make the ratio meaningful.
type HealthConfig struct {
	// MissRateMax fires miss-rate-burn when redirects (partition hits)
	// exceed this fraction of all classifications in a window (default
	// 0.75 — a sustained burn, not a cold-start blip).
	MissRateMax float64
	// MinClassified is the per-window classification floor for the
	// miss-rate rule (default 500).
	MinClassified float64
	// ImbalanceMax fires redirect-imbalance when the busiest authority's
	// redirect delta exceeds this multiple of the mean (default 4).
	ImbalanceMax float64
	// MinRedirects is the per-window redirect floor for the imbalance
	// rule (default 200).
	MinRedirects float64
	// EvictionPerDeliveryMax fires tcam-pressure when cache evictions per
	// delivered packet exceed it (default 0.5 — the cache is thrashing).
	EvictionPerDeliveryMax float64
	// MinDeliveries is the per-window delivery floor for the tcam rule
	// (default 500).
	MinDeliveries float64
	// BFDFlapRateMax fires bfd-flap when BFD session state transitions
	// exceed this rate per second (default 5).
	BFDFlapRateMax float64
	// ConvergenceStallNS fires convergence-stall when a policy update has
	// been converging longer than this (default 10s).
	ConvergenceStallNS int64
}

func (c *HealthConfig) applyDefaults() {
	if c.MissRateMax == 0 {
		c.MissRateMax = 0.75
	}
	if c.MinClassified == 0 {
		c.MinClassified = 500
	}
	if c.ImbalanceMax == 0 {
		c.ImbalanceMax = 4
	}
	if c.MinRedirects == 0 {
		c.MinRedirects = 200
	}
	if c.EvictionPerDeliveryMax == 0 {
		c.EvictionPerDeliveryMax = 0.5
	}
	if c.MinDeliveries == 0 {
		c.MinDeliveries = 500
	}
	if c.BFDFlapRateMax == 0 {
		c.BFDFlapRateMax = 5
	}
	if c.ConvergenceStallNS == 0 {
		c.ConvergenceStallNS = 10_000_000_000
	}
}

// HealthView is what a rule evaluates: the previous and current registry
// scrapes flattened by metric name, the wall seconds between them, and the
// evaluation timestamp.
type HealthView struct {
	NowNS int64
	DT    float64 // seconds between the two scrapes
	prev  map[string][]Point
	cur   map[string][]Point
}

func flattenScrape(snap []MetricSnapshot) map[string][]Point {
	out := make(map[string][]Point, len(snap))
	for i := range snap {
		if len(snap[i].Points) > 0 {
			out[snap[i].Name] = snap[i].Points
		}
	}
	return out
}

func sumPoints(pts []Point) float64 {
	var s float64
	for i := range pts {
		s += pts[i].Value
	}
	return s
}

// Sum returns the current scrape's summed value for a metric.
func (v *HealthView) Sum(name string) float64 { return sumPoints(v.cur[name]) }

// Delta returns the window's increase of a metric, clamped at zero
// (counters can reset when a cluster restarts behind a long-lived scraper).
func (v *HealthView) Delta(name string) float64 {
	d := sumPoints(v.cur[name]) - sumPoints(v.prev[name])
	if d < 0 {
		return 0
	}
	return d
}

// Rate returns Delta per second (0 when the window has no width).
func (v *HealthView) Rate(name string) float64 {
	if v.DT <= 0 {
		return 0
	}
	return v.Delta(name) / v.DT
}

// DeltaByLabel returns each labeled point's window increase keyed by its
// first label value, clamped at zero.
func (v *HealthView) DeltaByLabel(name string) map[string]float64 {
	prev := make(map[string]float64)
	for _, p := range v.prev[name] {
		if len(p.Labels) > 0 {
			prev[p.Labels[0].Value] = p.Value
		}
	}
	out := make(map[string]float64)
	for _, p := range v.cur[name] {
		if len(p.Labels) == 0 {
			continue
		}
		d := p.Value - prev[p.Labels[0].Value]
		if d < 0 {
			d = 0
		}
		out[p.Labels[0].Value] = d
	}
	return out
}

// HealthRule is one declarative SLO check evaluated per watchdog tick.
type HealthRule struct {
	Name     string
	Severity string
	Help     string
	// Eval returns whether the rule fires, the measured value, and a
	// human-readable detail line.
	Eval func(v *HealthView) (firing bool, value float64, detail string)
}

// RuleStatus is one rule's state after an evaluation pass.
type RuleStatus struct {
	Name     string  `json:"name"`
	Severity string  `json:"severity"`
	Firing   bool    `json:"firing"`
	Value    float64 `json:"value"`
	Detail   string  `json:"detail,omitempty"`
	SinceNS  int64   `json:"since_ns,omitempty"` // when the rule started firing
}

// DefaultHealthRules builds the standard SLO rule set over the shared
// difane_* metric schema.
func DefaultHealthRules(cfg HealthConfig) []HealthRule {
	cfg.applyDefaults()
	return []HealthRule{
		{
			Name: "miss-rate-burn", Severity: SevWarn,
			Help: "redirects dominate classifications: the cache is not absorbing the working set",
			Eval: func(v *HealthView) (bool, float64, string) {
				hits := v.Delta("difane_switch_cache_hits_total") +
					v.Delta("difane_switch_authority_hits_total")
				redirects := v.Delta("difane_switch_partition_hits_total")
				total := hits + redirects
				if total < cfg.MinClassified {
					return false, 0, ""
				}
				rate := redirects / total
				return rate > cfg.MissRateMax, rate,
					fmt.Sprintf("miss rate %.2f over %.0f classifications (max %.2f)", rate, total, cfg.MissRateMax)
			},
		},
		{
			Name: "redirect-imbalance", Severity: SevWarn,
			Help: "one authority switch serves a disproportionate share of redirects",
			Eval: func(v *HealthView) (bool, float64, string) {
				deltas := v.DeltaByLabel("difane_switch_authority_hits_total")
				var total, max float64
				var maxSwitch string
				active := 0
				for sw, d := range deltas {
					total += d
					if d > 0 {
						active++
					}
					if d > max {
						max, maxSwitch = d, sw
					}
				}
				// Mean over switches that served redirects this window:
				// non-authority switches report a structural zero and must
				// not deflate the denominator.
				if total < cfg.MinRedirects || len(deltas) < 2 || active < 2 {
					return false, 0, ""
				}
				mean := total / float64(active)
				ratio := max / mean
				return ratio > cfg.ImbalanceMax, ratio,
					fmt.Sprintf("switch %s took %.0f of %.0f redirects (%.1fx mean, max %.1fx)",
						maxSwitch, max, total, ratio, cfg.ImbalanceMax)
			},
		},
		{
			Name: "tcam-pressure", Severity: SevWarn,
			Help: "cache evictions per delivery signal a thrashing TCAM budget",
			Eval: func(v *HealthView) (bool, float64, string) {
				delivered := v.Delta("difane_delivered_total")
				if delivered < cfg.MinDeliveries {
					return false, 0, ""
				}
				evictions := v.Delta("difane_switch_cache_evictions_total")
				ratio := evictions / delivered
				return ratio > cfg.EvictionPerDeliveryMax, ratio,
					fmt.Sprintf("%.0f evictions over %.0f deliveries (%.2f/pkt, max %.2f)",
						evictions, delivered, ratio, cfg.EvictionPerDeliveryMax)
			},
		},
		{
			Name: "bfd-flap", Severity: SevCritical,
			Help: "BFD sessions are flapping faster than failures can be real",
			Eval: func(v *HealthView) (bool, float64, string) {
				rate := v.Rate("difane_bfd_transitions_total")
				return rate > cfg.BFDFlapRateMax, rate,
					fmt.Sprintf("%.1f BFD transitions/s (max %.1f)", rate, cfg.BFDFlapRateMax)
			},
		},
		{
			Name: "convergence-stall", Severity: SevCritical,
			Help: "a policy update has not reached quiescence within its budget",
			Eval: func(v *HealthView) (bool, float64, string) {
				since := v.Sum("difane_epoch_active_since_ns")
				if since <= 0 {
					return false, 0, ""
				}
				age := v.NowNS - int64(since)
				return age > cfg.ConvergenceStallNS, float64(age),
					fmt.Sprintf("update converging for %.1fs (budget %.1fs)",
						float64(age)/1e9, float64(cfg.ConvergenceStallNS)/1e9)
			},
		},
	}
}

// Watchdog evaluates a rule set over successive registry scrapes. Drive it
// from a ticker (wire mode) or call EvalOnce directly (sim, tests).
type Watchdog struct {
	reg   *Registry
	rules []HealthRule

	mu     sync.Mutex
	prev   map[string][]Point
	prevNS int64
	status []RuleStatus
	evals  uint64
}

// NewWatchdog builds a watchdog over reg. The first EvalOnce establishes
// the baseline scrape; rules begin judging from the second.
func NewWatchdog(reg *Registry, rules []HealthRule) *Watchdog {
	w := &Watchdog{reg: reg, rules: rules, status: make([]RuleStatus, len(rules))}
	for i, r := range rules {
		w.status[i] = RuleStatus{Name: r.Name, Severity: r.Severity}
	}
	return w
}

// EvalOnce scrapes the registry, evaluates every rule against the previous
// scrape, and returns the new statuses. nowNS is the caller's clock
// (monotonic ns in wire mode, virtual ns in the simulator).
func (w *Watchdog) EvalOnce(nowNS int64) []RuleStatus {
	snap := w.reg.Snapshot() // outside the lock: collectors may read our gauges
	cur := flattenScrape(snap)

	w.mu.Lock()
	defer w.mu.Unlock()
	w.evals++
	if w.prev == nil {
		w.prev, w.prevNS = cur, nowNS
		return append([]RuleStatus(nil), w.status...)
	}
	view := &HealthView{
		NowNS: nowNS,
		DT:    float64(nowNS-w.prevNS) / 1e9,
		prev:  w.prev,
		cur:   cur,
	}
	for i, r := range w.rules {
		firing, value, detail := r.Eval(view)
		st := &w.status[i]
		if firing && !st.Firing {
			st.SinceNS = nowNS
		}
		if !firing {
			st.SinceNS = 0
		}
		st.Firing, st.Value, st.Detail = firing, value, detail
	}
	w.prev, w.prevNS = cur, nowNS
	return append([]RuleStatus(nil), w.status...)
}

// Status returns the latest rule statuses and the evaluation count.
func (w *Watchdog) Status() ([]RuleStatus, uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]RuleStatus(nil), w.status...), w.evals
}

// Firing returns the currently-firing rules, optionally filtered to one
// severity ("" = all).
func (w *Watchdog) Firing(severity string) []RuleStatus {
	st, _ := w.Status()
	out := st[:0:0]
	for _, s := range st {
		if s.Firing && (severity == "" || s.Severity == severity) {
			out = append(out, s)
		}
	}
	return out
}

// HealthSummary compresses the watchdog state for reports and log lines.
type HealthSummary struct {
	Evals    uint64       `json:"evals"`
	Firing   int          `json:"firing"`
	Critical int          `json:"critical"`
	Rules    []RuleStatus `json:"rules"`
}

// Summary builds a HealthSummary from the latest evaluation.
func (w *Watchdog) Summary() HealthSummary {
	st, evals := w.Status()
	s := HealthSummary{Evals: evals, Rules: st}
	for _, r := range st {
		if r.Firing {
			s.Firing++
			if r.Severity == SevCritical {
				s.Critical++
			}
		}
	}
	return s
}

// HealthResponse is the /health JSON shape.
type HealthResponse struct {
	NowNS   int64        `json:"now_ns"`
	Healthy bool         `json:"healthy"`
	Evals   uint64       `json:"evals"`
	Rules   []RuleStatus `json:"rules"`
}

// View assembles the endpoint shape at the caller's now.
func (w *Watchdog) View(nowNS int64) HealthResponse {
	st, evals := w.Status()
	resp := HealthResponse{NowNS: nowNS, Healthy: true, Evals: evals, Rules: st}
	for _, r := range st {
		if r.Firing {
			resp.Healthy = false
		}
	}
	return resp
}

// RegisterMetrics exports the watchdog as difane_health_* series.
func (w *Watchdog) RegisterMetrics(reg *Registry) {
	reg.Register("difane_health_firing", "1 while the named SLO rule fires.", TypeGauge,
		func() []Point {
			st, _ := w.Status()
			pts := make([]Point, 0, len(st))
			for _, r := range st {
				v := 0.0
				if r.Firing {
					v = 1
				}
				pts = append(pts, Point{
					Labels: []Label{{Key: "rule", Value: r.Name}, {Key: "severity", Value: r.Severity}},
					Value:  v,
				})
			}
			return pts
		})
	reg.RegisterFunc("difane_health_evals_total", "Watchdog evaluation passes.", TypeCounter,
		func() float64 {
			_, evals := w.Status()
			return float64(evals)
		})
	reg.RegisterFunc("difane_health_firing_count", "SLO rules currently firing.", TypeGauge,
		func() float64 { return float64(len(w.Firing(""))) })
	reg.RegisterFunc("difane_health_critical_count", "Critical SLO rules currently firing.", TypeGauge,
		func() float64 { return float64(len(w.Firing(SevCritical))) })
}
