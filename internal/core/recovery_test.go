package core

import (
	"reflect"
	"testing"

	"difane/internal/flowspace"
	"difane/internal/proto"
	"difane/internal/testutil"
)

// recoveredPolicy is a second policy distinct from testNet's, so recovery
// tests exercise a journal holding a post-update state.
func recoveredPolicy() []flowspace.Rule {
	return []flowspace.Rule{
		{ID: 3, Priority: 10,
			Match:  flowspace.MatchAll().WithExact(flowspace.FTPDst, 443),
			Action: flowspace.Action{Kind: flowspace.ActForward, Arg: 4}},
		{ID: 4, Priority: 0, Match: flowspace.MatchAll(),
			Action: flowspace.Action{Kind: flowspace.ActDrop}},
	}
}

// authorityRuleIDs collects the authority-table rule IDs of one switch.
func authorityRuleIDs(n *Network, sw uint32) map[uint64]bool {
	out := map[uint64]bool{}
	for _, r := range n.Switches[sw].Table(proto.TableAuthority).Rules() {
		out[r.ID] = true
	}
	return out
}

func TestRecoveryConvergesWithoutChurn(t *testing.T) {
	// The sim is single-threaded, but journaling opens files and the
	// engine may hold stations; guard the whole recovery path against
	// accidentally spawned goroutines.
	defer testutil.CheckGoroutineLeaks(t, 2)()
	dir := t.TempDir()
	n := testNet(t, NetworkConfig{})
	c1, err := NewControllerWithJournal(n, dir)
	if err != nil {
		t.Fatal(err)
	}
	c1.PolicyPushDelay = 0.05
	_, cleanupAt, err := c1.UpdatePolicyConsistent(recoveredPolicy())
	if err != nil {
		t.Fatal(err)
	}
	n.Run(cleanupAt + 0.01)
	// Populate an ingress cache so we can see it survive recovery.
	n.InjectPacket(n.Eng.Now()+0.001, 0, flowKey(9, 443), 100, 0)
	n.Run(n.Eng.Now() + 0.1)
	if n.CacheEntries() == 0 {
		t.Fatal("expected a populated ingress cache before the crash")
	}
	caches := n.CacheEntries()
	authBefore := authorityRuleIDs(n, 2)
	wantEpoch, wantVer, wantGen := c1.Epoch, c1.PolicyVersion, c1.gen
	wantAssign := n.Assignment
	installs, deletes := n.M.PolicyRuleInstalls, n.M.PolicyRuleDeletes

	// Crash: the controller object is dropped without any shutdown step.
	c2, rep, err := NewControllerFromJournal(n, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Journal().Close()
	if !rep.HadState {
		t.Fatal("journal held state; recovery saw none")
	}
	if rep.Installed != 0 || rep.Deleted != 0 {
		t.Fatalf("clean restart must not churn rules: %+v", rep)
	}
	if c2.Epoch != wantEpoch+1 {
		t.Fatalf("epoch = %d, want %d (must fence out the dead controller)", c2.Epoch, wantEpoch+1)
	}
	if c2.PolicyVersion != wantVer || c2.gen != wantGen {
		t.Fatalf("version/gen = %d/%d, want %d/%d", c2.PolicyVersion, c2.gen, wantVer, wantGen)
	}
	if !reflect.DeepEqual(n.Assignment, wantAssign) {
		t.Fatal("recovered assignment differs from the pre-crash one")
	}
	if n.CacheEntries() != caches {
		t.Fatalf("ingress caches must survive recovery: %d then %d", caches, n.CacheEntries())
	}
	if got := authorityRuleIDs(n, 2); !reflect.DeepEqual(got, authBefore) {
		t.Fatalf("authority rules changed across recovery: %v vs %v", got, authBefore)
	}
	if n.M.PolicyRuleInstalls != installs || n.M.PolicyRuleDeletes != deletes {
		t.Fatalf("churn counters moved on a clean recovery: %d/%d then %d/%d",
			installs, deletes, n.M.PolicyRuleInstalls, n.M.PolicyRuleDeletes)
	}
	// And the recovered controller still works: new flows set up fine.
	before := n.M.Delivered
	n.InjectPacket(n.Eng.Now()+0.001, 1, flowKey(77, 443), 100, 0)
	n.Run(n.Eng.Now() + 0.1)
	if n.M.Delivered != before+1 {
		t.Fatalf("post-recovery flow not delivered (drops %+v)", n.M.Drops)
	}
}

func TestRecoveryRepairsDivergedSwitch(t *testing.T) {
	dir := t.TempDir()
	n := testNet(t, NetworkConfig{})
	c1, err := NewControllerWithJournal(n, dir)
	if err != nil {
		t.Fatal(err)
	}
	want := authorityRuleIDs(n, 2)
	// Diverge the authority switch behind the controller's back: drop one
	// real rule, add one rule the controller never installed.
	tb := n.Switches[2].Table(proto.TableAuthority)
	var victim uint64
	for id := range want {
		if victim == 0 || id < victim {
			victim = id
		}
	}
	tb.Delete(victim)
	bogus := flowspace.Rule{ID: 999, Priority: 5, Match: flowspace.MatchAll(),
		Action: flowspace.Action{Kind: flowspace.ActDrop}}
	if err := tb.Insert(0, bogus, 0, 0); err != nil {
		t.Fatal(err)
	}
	_ = c1 // crashes here

	c2, rep, err := NewControllerFromJournal(n, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Journal().Close()
	if rep.Installed != 1 || rep.Deleted != 1 {
		t.Fatalf("repair = %+v, want 1 installed / 1 deleted", rep)
	}
	if got := authorityRuleIDs(n, 2); !reflect.DeepEqual(got, want) {
		t.Fatalf("authority table not repaired: %v, want %v", got, want)
	}
}

func TestRecoveryFromEmptyJournal(t *testing.T) {
	n := testNet(t, NetworkConfig{})
	c, rep, err := NewControllerFromJournal(n, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Journal().Close()
	if rep.HadState {
		t.Fatal("fresh directory cannot hold state")
	}
	if c.Epoch != 1 {
		t.Fatalf("fresh epoch = %d, want 1", c.Epoch)
	}
}

func TestEpochMonotonicAcrossRestarts(t *testing.T) {
	dir := t.TempDir()
	n := testNet(t, NetworkConfig{})
	c, err := NewControllerWithJournal(n, dir)
	if err != nil {
		t.Fatal(err)
	}
	epochs := []uint64{c.Epoch}
	for i := 0; i < 3; i++ {
		next, _, err := NewControllerFromJournal(n, dir)
		if err != nil {
			t.Fatal(err)
		}
		epochs = append(epochs, next.Epoch)
		c = next
	}
	c.Journal().Close()
	for i := 1; i < len(epochs); i++ {
		if epochs[i] != epochs[i-1]+1 {
			t.Fatalf("epochs not strictly increasing: %v", epochs)
		}
	}
	// LoadState sees the last restart's epoch without attaching.
	st, ok, err := LoadState(dir)
	if err != nil || !ok {
		t.Fatalf("LoadState: ok=%v err=%v", ok, err)
	}
	if st.Epoch != epochs[len(epochs)-1] {
		t.Fatalf("durable epoch = %d, want %d", st.Epoch, epochs[len(epochs)-1])
	}
}

func TestCheckpointThenRecover(t *testing.T) {
	dir := t.TempDir()
	n := testNet(t, NetworkConfig{})
	c1, err := NewControllerWithJournal(n, dir)
	if err != nil {
		t.Fatal(err)
	}
	c1.PolicyPushDelay = 0.05
	_, cleanupAt, err := c1.UpdatePolicyConsistent(recoveredPolicy())
	if err != nil {
		t.Fatal(err)
	}
	n.Run(cleanupAt + 0.01)
	if err := c1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// One more committed change after the checkpoint lands in the WAL.
	at, err := c1.UpdatePolicy(testNetPolicy())
	if err != nil {
		t.Fatal(err)
	}
	n.Run(at + 0.01)
	if c1.JournalErr != nil {
		t.Fatal(c1.JournalErr)
	}
	wantVer := c1.PolicyVersion

	c2, rep, err := NewControllerFromJournal(n, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Journal().Close()
	if !rep.HadState {
		t.Fatal("recovery saw no state")
	}
	if c2.PolicyVersion != wantVer {
		t.Fatalf("version = %d, want %d (WAL record after snapshot lost)", c2.PolicyVersion, wantVer)
	}
	if !PoliciesEqual(n.Policy, testNetPolicy()) {
		t.Fatal("recovered policy is not the post-checkpoint one")
	}
}

// testNetPolicy mirrors the policy testNet installs, for round-trip checks.
func testNetPolicy() []flowspace.Rule {
	return []flowspace.Rule{
		{ID: 1, Priority: 10,
			Match:  flowspace.MatchAll().WithExact(flowspace.FTPDst, 80),
			Action: flowspace.Action{Kind: flowspace.ActForward, Arg: 4}},
		{ID: 2, Priority: 0, Match: flowspace.MatchAll(),
			Action: flowspace.Action{Kind: flowspace.ActDrop}},
	}
}
