package scencheck

import (
	"fmt"
	"strings"

	"difane/internal/core"
	"difane/internal/flowspace"
	"difane/internal/oracle"
)

// Mode names of the three deployments.
const (
	ModeSim      = "sim"
	ModeBaseline = "baseline"
	ModeWire     = "wire"
)

// AllModes lists every deployment the checker can drive.
var AllModes = []string{ModeSim, ModeBaseline, ModeWire}

// Options tunes a check run.
type Options struct {
	// Modes selects which deployments to replay (default: all three).
	Modes []string
	// MutatePolicy, when set, transforms every policy handed to the
	// deployments — the oracle still sees the original. Tests use it to
	// inject deliberate bugs (e.g. priority inversion) and assert the
	// harness catches them.
	MutatePolicy func([]flowspace.Rule) []flowspace.Rule
}

func (o Options) modes() []string {
	if len(o.Modes) == 0 {
		return AllModes
	}
	return o.Modes
}

func (o Options) backendPolicy(policy []flowspace.Rule) []flowspace.Rule {
	if o.MutatePolicy == nil {
		return policy
	}
	return o.MutatePolicy(append([]flowspace.Rule(nil), policy...))
}

// Failure is one invariant violation found during a replay.
type Failure struct {
	Mode string
	// Step indexes Scenario.Steps (-1 for scenario-level audits).
	Step int
	// Invariant names what broke: "oracle", "accounting", "epoch",
	// "cache-soundness", "convergence", or "deploy".
	Invariant string
	Msg       string
}

func (f Failure) String() string {
	at := "end"
	if f.Step >= 0 {
		at = fmt.Sprintf("step %d", f.Step)
	}
	return fmt.Sprintf("[%s] %s @ %s: %s", f.Mode, f.Invariant, at, f.Msg)
}

// Totals is the terminal-outcome accounting of one replay — the five ways
// a packet can end, per the accounting identity.
type Totals struct {
	Delivered, PolicyDrops, Holes, QueueDrops, Shed, Unreachable uint64
}

// Sum is the total number of accounted packets.
func (t Totals) Sum() uint64 {
	return t.Delivered + t.PolicyDrops + t.Holes + t.QueueDrops + t.Shed + t.Unreachable
}

func (t Totals) sub(o Totals) Totals {
	return Totals{
		Delivered:   t.Delivered - o.Delivered,
		PolicyDrops: t.PolicyDrops - o.PolicyDrops,
		Holes:       t.Holes - o.Holes,
		QueueDrops:  t.QueueDrops - o.QueueDrops,
		Shed:        t.Shed - o.Shed,
		Unreachable: t.Unreachable - o.Unreachable,
	}
}

func measTotals(m *core.Measurements) Totals {
	return Totals{
		Delivered:   m.Delivered,
		PolicyDrops: m.Drops.Policy,
		Holes:       m.Drops.Hole,
		QueueDrops:  m.Drops.AuthorityQueue,
		Shed:        m.Drops.RedirectShed,
		Unreachable: m.Drops.Unreachable,
	}
}

// TraceEntry is one packet's observed outcome, recorded for determinism
// comparisons (same seed twice must give identical traces).
type TraceEntry struct {
	Step   int
	Kind   core.VerdictKind
	Egress uint32
}

// Result is what Check found.
type Result struct {
	Scenario Scenario
	Failures []Failure
	// PacketsChecked counts packet verdicts compared (summed over modes).
	PacketsChecked int
	// Finals holds each replayed mode's terminal accounting.
	Finals map[string]Totals
	// Traces holds each mode's per-packet outcomes. Wire-mode entries are
	// behaviourally but not temporally deterministic (detours depend on
	// real-time cache races), so determinism tests compare sim/baseline.
	Traces map[string][]TraceEntry
	// SimMeasurements is the simulator's full final Measurements (virtual
	// time — bit-for-bit reproducible for a fixed seed).
	SimMeasurements *core.Measurements
}

// Failed reports whether any invariant broke.
func (r *Result) Failed() bool { return len(r.Failures) > 0 }

// Report renders a human-readable failure report with repro commands.
func (r *Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scencheck: seed %d: %d failure(s) over %d packet checks\n",
		r.Scenario.Seed, len(r.Failures), r.PacketsChecked)
	for _, f := range r.Failures {
		fmt.Fprintf(&b, "  %s\n", f)
	}
	fmt.Fprintf(&b, "reproduce:\n")
	fmt.Fprintf(&b, "  go test ./internal/scencheck -run TestDifferential -seed %d\n", r.Scenario.Seed)
	fmt.Fprintf(&b, "  difanectl check -seed %d -steps %d\n", r.Scenario.Seed, r.Scenario.Packets())
	return b.String()
}

// CheckSeed generates the scenario for a seed and checks it.
func CheckSeed(seed int64, cfg Config, opt Options) *Result {
	return Check(Generate(seed, cfg), opt)
}

// Check replays the scenario through every selected deployment and
// verifies, per packet, that the observed verdict matches the oracle's,
// and globally that the accounting identity holds, controller epochs only
// ever rise, cached rules stay inside some authority rule's clipped
// region, and (sim) the converged tables equal a fresh controller's
// computed assignment.
func Check(sc Scenario, opt Options) *Result {
	sc = normalize(sc)
	res := &Result{
		Scenario: sc,
		Finals:   make(map[string]Totals),
		Traces:   make(map[string][]TraceEntry),
	}
	for _, mode := range opt.modes() {
		replayMode(sc, mode, opt, res)
	}
	return res
}

// normalize drops steps the scenario state machine cannot honor (an update
// while the controller is down, healing a live switch, a second concurrent
// kill). Generated scenarios are already normal; shrinking produces
// arbitrary sublists, and normalization keeps every sublist replayable
// with identical semantics across the oracle and all deployments.
func normalize(sc Scenario) Scenario {
	out := sc
	out.Steps = nil
	ctlDown := false
	dead := int64(-1)
	for _, st := range sc.Steps {
		switch st.Kind {
		case StepUpdatePolicy, StepKillSwitch:
			if ctlDown || (st.Kind == StepKillSwitch && dead >= 0) {
				continue
			}
			if st.Kind == StepKillSwitch {
				dead = int64(st.Switch)
			}
		case StepHealSwitch:
			if ctlDown || dead != int64(st.Switch) {
				continue
			}
			dead = -1
		case StepKillController:
			if ctlDown {
				continue
			}
			ctlDown = true
		case StepRestoreController:
			if !ctlDown {
				continue
			}
			ctlDown = false
		}
		out.Steps = append(out.Steps, st)
	}
	if ctlDown {
		out.Steps = append(out.Steps, Step{Kind: StepRestoreController})
	}
	if dead >= 0 {
		out.Steps = append(out.Steps, Step{Kind: StepHealSwitch, Switch: uint32(dead)})
	}
	return out
}

// observed is what a backend saw happen to one injected packet.
type observed struct {
	kind      core.VerdictKind
	egress    uint32
	hasEgress bool
	// accounted is how many terminal counters moved — must be exactly 1
	// (the per-packet form of the accounting identity).
	accounted uint64
}

// backend replays scenario steps against one deployment.
type backend interface {
	// packet injects one packet, runs to quiescence, and reports the
	// observed terminal outcome.
	packet(st Step) (observed, error)
	update(policy []flowspace.Rule) error
	killSwitch(id uint32) error
	healSwitch(id uint32) error
	killController() error
	// restoreController restarts the controller and enforces the epoch
	// invariant internally (it has the pre-crash epoch).
	restoreController() error
	// audit runs scenario-end invariants; each message is a failure.
	audit() []string
	// totals is the accumulated terminal accounting (across redeploys).
	totals() Totals
	// injected is how many packets this backend was asked to carry.
	injected() uint64
	close()
}

// killSemantics says how a mode's expected-verdict dead set evolves.
type killSemantics int

const (
	killsIgnored   killSemantics = iota // baseline: no fault hooks
	killsHealable                       // sim: heal revives
	killsPermanent                      // wire: crash-only
)

func newBackend(mode string, sc Scenario, opt Options) (backend, killSemantics, error) {
	switch mode {
	case ModeSim:
		b, err := newSimBackend(sc, opt)
		return b, killsHealable, err
	case ModeBaseline:
		b, err := newBaselineBackend(sc, opt)
		return b, killsIgnored, err
	case ModeWire:
		b, err := newWireBackend(sc, opt)
		return b, killsPermanent, err
	default:
		return nil, killsIgnored, fmt.Errorf("scencheck: unknown mode %q", mode)
	}
}

func replayMode(sc Scenario, mode string, opt Options, res *Result) {
	fail := func(step int, invariant, format string, args ...any) {
		res.Failures = append(res.Failures, Failure{
			Mode: mode, Step: step, Invariant: invariant,
			Msg: fmt.Sprintf(format, args...),
		})
	}
	b, kills, err := newBackend(mode, sc, opt)
	if err != nil {
		fail(-1, "deploy", "backend construction: %v", err)
		return
	}
	defer b.close()

	oraclePolicy := sc.Policy
	dead := make(map[uint32]bool)
	for i, st := range sc.Steps {
		switch st.Kind {
		case StepPacket:
			before := b.totals()
			obs, err := b.packet(st)
			if err != nil {
				fail(i, "deploy", "packet: %v", err)
				continue
			}
			res.PacketsChecked++
			res.Traces[mode] = append(res.Traces[mode], TraceEntry{Step: i, Kind: obs.kind, Egress: obs.egress})
			if obs.accounted != 1 {
				fail(i, "accounting", "packet moved %d terminal counters, want exactly 1 (delta %+v)",
					obs.accounted, b.totals().sub(before))
				continue
			}
			exp := expectedVerdict(oraclePolicy, st, dead)
			if msg := verdictMismatch(exp, obs); msg != "" {
				fail(i, "oracle", "key %v ingress %d: %s (oracle: %s)",
					st.Key, st.Ingress, msg, exp)
			}
		case StepUpdatePolicy:
			oraclePolicy = st.Policy
			if err := b.update(opt.backendPolicy(st.Policy)); err != nil {
				fail(i, "deploy", "policy update: %v", err)
			}
		case StepKillSwitch:
			if err := b.killSwitch(st.Switch); err != nil {
				fail(i, "deploy", "kill switch %d: %v", st.Switch, err)
			}
			if kills != killsIgnored {
				dead[st.Switch] = true
			}
		case StepHealSwitch:
			if err := b.healSwitch(st.Switch); err != nil {
				fail(i, "deploy", "heal switch %d: %v", st.Switch, err)
			}
			if kills == killsHealable {
				delete(dead, st.Switch)
			}
		case StepKillController:
			if err := b.killController(); err != nil {
				fail(i, "deploy", "kill controller: %v", err)
			}
		case StepRestoreController:
			if err := b.restoreController(); err != nil {
				fail(i, "epoch", "restore controller: %v", err)
			}
		}
	}
	for _, msg := range b.audit() {
		fail(-1, auditInvariant(msg), "%s", msg)
	}
	tot := b.totals()
	res.Finals[mode] = tot
	if inj := b.injected(); tot.Sum() != inj {
		fail(-1, "accounting", "identity: injected %d but accounted %d (%+v)", inj, tot.Sum(), tot)
	}
	if sb, ok := b.(*simBackend); ok {
		res.SimMeasurements = sb.n.M.Snapshot()
	}
}

// auditInvariant recovers the invariant tag an audit message was emitted
// under (backends prefix messages with "tag: ").
func auditInvariant(msg string) string {
	if i := strings.Index(msg, ":"); i > 0 {
		switch tag := msg[:i]; tag {
		case "cache-soundness", "convergence", "accounting", "epoch":
			return tag
		}
	}
	return "audit"
}

// expectation is the oracle's prediction adjusted for dead switches.
type expectation struct {
	loss   bool
	v      oracle.Verdict
	reason string
}

func (e expectation) String() string {
	if e.loss {
		return "loss (" + e.reason + ")"
	}
	return e.v.String()
}

// expectedVerdict combines the pure policy oracle with the mode's current
// dead set: packets entering or exiting at a dead switch are expected
// losses; everything else must follow the policy exactly.
func expectedVerdict(policy []flowspace.Rule, st Step, dead map[uint32]bool) expectation {
	if dead[st.Ingress] {
		return expectation{loss: true, reason: fmt.Sprintf("ingress %d dead", st.Ingress)}
	}
	v := oracle.Evaluate(policy, st.Key)
	if v.Kind == oracle.Deliver && dead[v.Egress] {
		return expectation{loss: true, reason: fmt.Sprintf("egress %d dead", v.Egress)}
	}
	return expectation{v: v}
}

// verdictMismatch compares an expectation with an observation, returning
// "" on a match.
func verdictMismatch(exp expectation, obs observed) string {
	if exp.loss {
		if obs.kind == core.VerdictUnreachable {
			return ""
		}
		return fmt.Sprintf("observed %s, want unreachable loss", obs.kind)
	}
	switch exp.v.Kind {
	case oracle.Deliver:
		if obs.kind != core.VerdictDelivered {
			return fmt.Sprintf("observed %s, want delivery to %d", obs.kind, exp.v.Egress)
		}
		if obs.hasEgress && obs.egress != exp.v.Egress {
			return fmt.Sprintf("delivered to %d, want %d", obs.egress, exp.v.Egress)
		}
	case oracle.Drop:
		if obs.kind != core.VerdictPolicyDrop {
			return fmt.Sprintf("observed %s, want policy drop", obs.kind)
		}
	case oracle.Hole:
		// A policy hole may surface as a hole drop or — when the hole
		// region has no partition rule at all — as unreachable. Both are
		// "the policy said nothing"; neither delivers nor policy-drops.
		if obs.kind != core.VerdictHole && obs.kind != core.VerdictUnreachable {
			return fmt.Sprintf("observed %s, want hole", obs.kind)
		}
	}
	return ""
}
