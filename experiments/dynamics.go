package experiments

import (
	"fmt"
	"strings"

	"difane/internal/core"
	"difane/internal/flowspace"
	"difane/internal/metrics"
	"difane/internal/topo"
	"difane/internal/workload"
)

// --- F8: failover after authority failure --------------------------------------

// FailoverResult reports delivery around an authority failure.
type FailoverResult struct {
	// WithBackup / WithoutBackup give (delivered, lost) flow counts in the
	// 2-second window after the failure.
	WithBackupDelivered    uint64
	WithBackupLost         uint64
	WithoutBackupDelivered uint64
	WithoutBackupLost      uint64
	// ConvergenceDelay is the modeled detection + withdrawal time.
	ConvergenceDelay float64
}

// failoverTopology is a ring of POPs: killing one authority leaves the
// data plane connected.
func failoverTopology(n int) *topo.Graph {
	g := topo.NewGraph()
	for i := 0; i < n; i++ {
		g.AddLink(topo.NodeID(i), topo.NodeID((i+1)%n), 0.001)
	}
	return g
}

// FigFailover kills the primary authority mid-run. With pre-installed
// backup partition rules the loss window equals the failover delay; with a
// single authority the outage lasts until the end of the run.
func FigFailover(o Options) *FailoverResult {
	const (
		failAt      = 2.0
		horizon     = 4.0
		failoverDel = 0.2
		ringN       = 8
	)
	policy := []flowspace.Rule{{
		ID: 1, Priority: 1, Match: flowspace.MatchAll(),
		Action: flowspace.Action{Kind: flowspace.ActForward, Arg: 0},
	}}
	res := &FailoverResult{ConvergenceDelay: failoverDel}

	run := func(authorities []uint32) (delivered, lost uint64) {
		g := failoverTopology(ringN)
		n, err := core.NewNetwork(g, authorities, policy, core.NetworkConfig{
			Strategy: core.StrategyExact, // every new flow redirects: worst case
		})
		if err != nil {
			panic(err)
		}
		c := core.NewController(n)
		c.FailoverDelay = failoverDel
		primary := n.Assignment.Primary[0]
		n.Eng.At(failAt, func() {
			n.FailAuthority(primary)
			c.OnAuthorityFailure(primary)
		})
		// Fresh flows every 10ms from rotating non-authority ingresses,
		// only counting the post-failure window.
		seq := uint64(0)
		for at := failAt; at < horizon; at += 0.01 {
			ingress := uint32((seq % 4) * 2) // even nodes: never an authority
			var k flowspace.Key
			k[flowspace.FIPSrc] = uint64(1000 + seq)
			n.InjectPacket(at, ingress, k, 100, 0)
			seq++
		}
		n.Run(horizon + 1)
		return n.M.Delivered, n.M.Drops.Unreachable
	}

	res.WithBackupDelivered, res.WithBackupLost = run([]uint32{1, 5})
	res.WithoutBackupDelivered, res.WithoutBackupLost = run([]uint32{1})
	return res
}

// Render prints the F8 comparison.
func (r *FailoverResult) Render() string {
	var b strings.Builder
	b.WriteString(header("F8", "authority failure: post-failure flow outcomes (2s window)"))
	var tb metrics.Table
	tb.AddRow("config", "delivered", "lost")
	tb.AddRowf("primary+backup", r.WithBackupDelivered, r.WithBackupLost)
	tb.AddRowf("single authority", r.WithoutBackupDelivered, r.WithoutBackupLost)
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "failover (detect+withdraw) delay: %s\n",
		metrics.FormatDuration(r.ConvergenceDelay))
	return b.String()
}

// --- F9: policy-change convergence ----------------------------------------------

// PolicyChangeResult reports behaviour around a policy update.
type PolicyChangeResult struct {
	// StaleServed counts packets served with the old policy's action after
	// the update was requested but before it converged.
	StaleServed uint64
	// ConvergedCorrect counts post-convergence packets with the new action.
	ConvergedCorrect uint64
	// PushDelay is the modeled distribution latency.
	PushDelay float64
	// CacheCleared is the number of cache entries invalidated by the push.
	CacheCleared int
}

// FigPolicyChange flips a permit policy to a deny policy mid-run and
// measures the stale-service window: it is bounded by the push delay
// because the controller invalidates caches when the new rules land.
func FigPolicyChange(o Options) *PolicyChangeResult {
	const (
		changeAt = 2.0
		pushDel  = 0.25
		horizon  = 5.0
	)
	g := topo.Linear(4, 0.001)
	permit := []flowspace.Rule{{
		ID: 1, Priority: 1, Match: flowspace.MatchAll(),
		Action: flowspace.Action{Kind: flowspace.ActForward, Arg: 3},
	}}
	deny := []flowspace.Rule{{
		ID: 2, Priority: 1, Match: flowspace.MatchAll(),
		Action: flowspace.Action{Kind: flowspace.ActDrop},
	}}
	n, err := core.NewNetwork(g, []uint32{1}, permit, core.NetworkConfig{
		Strategy: core.StrategyCover,
	})
	if err != nil {
		panic(err)
	}
	c := core.NewController(n)
	c.PolicyPushDelay = pushDel
	res := &PolicyChangeResult{PushDelay: pushDel}

	n.Eng.At(changeAt, func() {
		before := n.CacheEntries()
		if _, err := c.UpdatePolicy(deny); err != nil {
			panic(err)
		}
		// Record how much cached state the push will clear.
		n.Eng.At(changeAt+pushDel+0.001, func() {
			res.CacheCleared = before - n.CacheEntries()
			if res.CacheCleared < 0 {
				res.CacheCleared = 0
			}
		})
	})
	// Steady flow arrivals throughout.
	seq := uint64(0)
	for at := 0.0; at < horizon; at += 0.01 {
		var k flowspace.Key
		k[flowspace.FIPSrc] = uint64(10 + seq)
		n.InjectPacket(at, 0, k, 100, 0)
		seq++
	}
	n.Run(horizon + 1)

	// Delivered packets injected after changeAt were served stale (the new
	// policy drops everything); policy drops after convergence are correct.
	total := n.M.Delivered
	beforeCount := uint64(changeAt / 0.01) // flows injected before the change
	if total > beforeCount {
		res.StaleServed = total - beforeCount
	}
	res.ConvergedCorrect = n.M.Drops.Policy
	return res
}

// Render prints the F9 summary.
func (r *PolicyChangeResult) Render() string {
	var b strings.Builder
	b.WriteString(header("F9", "policy change convergence"))
	var tb metrics.Table
	tb.AddRow("metric", "value")
	tb.AddRowf("push delay (s)", r.PushDelay)
	tb.AddRowf("stale-served flows", r.StaleServed)
	tb.AddRowf("stale window bound (flows)", int(r.PushDelay/0.01)+1)
	tb.AddRowf("post-convergence correct drops", r.ConvergedCorrect)
	tb.AddRowf("cache entries invalidated", r.CacheCleared)
	b.WriteString(tb.String())
	return b.String()
}

// --- A1: cache strategy ablation --------------------------------------------------

// StrategyRow is one strategy's ablation sample.
type StrategyRow struct {
	Strategy   core.CacheStrategy
	MissRate   float64
	RulesSent  uint64 // cache rules generated per miss traffic
	CacheInUse int    // entries resident at end of run
}

// AblationCacheStrategyResult is the A1 table.
type AblationCacheStrategyResult struct{ Rows []StrategyRow }

// AblationCacheStrategy compares the three cache-rule schemes on a
// dependency-heavy ACL with a fixed cache size: cover-set approaches
// dependent-set's hit rate at a fraction of the entries.
func AblationCacheStrategy(o Options) *AblationCacheStrategyResult {
	spec := workload.CampusNetwork(o.Seed, o.Scale)
	flows := workload.GenerateTraffic(spec, workload.TrafficConfig{
		Flows: scaleInt(o, 20000), Rate: 5000,
		Population: scaleInt(o, 10000), ZipfAlpha: 1.2,
		PacketsMean: 4, Seed: o.Seed + 40,
	})
	const cacheSize = 256
	res := &AblationCacheStrategyResult{}
	for _, strat := range []core.CacheStrategy{core.StrategyCover, core.StrategyDependent, core.StrategyExact} {
		auths := core.PlaceAuthorities(spec.Graph, 2)
		dn, err := core.NewNetwork(spec.Graph, auths, spec.Policy, core.NetworkConfig{
			Strategy:      strat,
			CacheCapacity: cacheSize,
			Partition:     core.PartitionConfig{MaxRulesPerPartition: len(spec.Policy)/2 + 1},
		})
		if err != nil {
			panic(err)
		}
		runTrace(dn.InjectPacket, dn.Run, flows)
		total := dn.M.Delivered + dn.M.Drops.Policy
		sent := cacheRulesSent(dn)
		res.Rows = append(res.Rows, StrategyRow{
			Strategy:   strat,
			MissRate:   float64(dn.M.Redirects) / float64(total),
			RulesSent:  sent,
			CacheInUse: dn.CacheEntries(),
		})
	}
	return res
}

func cacheRulesSent(n *core.Network) uint64 {
	var total uint64
	for _, a := range n.AllAuthorities() {
		total += a.CacheRulesSent
	}
	return total
}

// Render prints the A1 table.
func (r *AblationCacheStrategyResult) Render() string {
	var b strings.Builder
	b.WriteString(header("A1", "cache strategy ablation (cache=256 entries, campus ACL)"))
	var tb metrics.Table
	tb.AddRow("strategy", "miss-rate", "cache-rules-sent", "resident-entries")
	for _, row := range r.Rows {
		tb.AddRow(row.Strategy.String(), fmt.Sprintf("%.4f", row.MissRate),
			fmt.Sprintf("%d", row.RulesSent), fmt.Sprintf("%d", row.CacheInUse))
	}
	b.WriteString(tb.String())
	return b.String()
}

// --- A2: partitioner ablation ------------------------------------------------------

// PartitionerRow compares partitioners at one k.
type PartitionerRow struct {
	Authorities  int
	TreeMax      int // decision-tree max entries per switch
	ReplicateMax int // duplicate-all entries per switch
}

// AblationPartitionerResult is the A2 table.
type AblationPartitionerResult struct {
	Network string
	Rows    []PartitionerRow
}

// AblationPartitioner compares the decision-tree partitioner against
// naive full replication on the campus policy.
func AblationPartitioner(o Options) *AblationPartitionerResult {
	spec := workload.CampusNetwork(o.Seed, o.Scale)
	res := &AblationPartitionerResult{Network: spec.Name}
	for _, k := range []int{1, 2, 4, 8, 16} {
		auths := make([]uint32, k)
		for i := range auths {
			auths[i] = uint32(i + 1)
		}
		leaf := len(spec.Policy)/(2*k) + 1
		parts := core.BuildPartitions(spec.Policy, core.PartitionConfig{MaxRulesPerPartition: leaf})
		a, err := core.Assign(parts, auths)
		if err != nil {
			panic(err)
		}
		treeMax := 0
		for _, load := range a.LoadPerAuthority() {
			if load > treeMax {
				treeMax = load
			}
		}
		res.Rows = append(res.Rows, PartitionerRow{
			Authorities:  k,
			TreeMax:      treeMax,
			ReplicateMax: len(spec.Policy),
		})
	}
	return res
}

// Render prints the A2 table.
func (r *AblationPartitionerResult) Render() string {
	var b strings.Builder
	b.WriteString(header("A2", "partitioner ablation: decision tree vs replicate-all ("+r.Network+")"))
	var tb metrics.Table
	tb.AddRow("k", "tree max/switch", "replicate-all/switch", "saving")
	for _, row := range r.Rows {
		saving := float64(row.ReplicateMax) / float64(row.TreeMax)
		tb.AddRowf(row.Authorities, row.TreeMax, row.ReplicateMax,
			fmt.Sprintf("%.1fx", saving))
	}
	b.WriteString(tb.String())
	return b.String()
}
