package core

import (
	"testing"

	"difane/internal/flowspace"
	"difane/internal/proto"
	"difane/internal/topo"
)

func consistentNet(t *testing.T) (*Network, *Controller) {
	t.Helper()
	g := topo.Linear(4, 0.001)
	permit := []flowspace.Rule{{
		ID: 1, Priority: 1, Match: flowspace.MatchAll(),
		Action: flowspace.Action{Kind: flowspace.ActForward, Arg: 3},
	}}
	n, err := NewNetwork(g, []uint32{1}, permit, NetworkConfig{Strategy: StrategyExact})
	if err != nil {
		t.Fatal(err)
	}
	c := NewController(n)
	c.PolicyPushDelay = 0.1
	return n, c
}

func denyPolicy() []flowspace.Rule {
	return []flowspace.Rule{{
		ID: 2, Priority: 1, Match: flowspace.MatchAll(),
		Action: flowspace.Action{Kind: flowspace.ActDrop},
	}}
}

func TestConsistentUpdateSwitchesPolicy(t *testing.T) {
	n, c := consistentNet(t)
	switchAt, cleanupAt, err := c.UpdatePolicyConsistent(denyPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if switchAt <= n.Eng.Now() || cleanupAt <= switchAt {
		t.Fatalf("phase times out of order: %v %v", switchAt, cleanupAt)
	}
	// Before the switch: permitted. After: dropped.
	n.InjectPacket(switchAt-0.05, 0, flowKey(1, 80), 100, 0)
	n.InjectPacket(switchAt+0.05, 0, flowKey(2, 80), 100, 0)
	n.Run(cleanupAt + 1)
	if n.M.Delivered != 1 {
		t.Fatalf("delivered = %d, want 1 (pre-switch flow)", n.M.Delivered)
	}
	if n.M.Drops.Policy != 1 {
		t.Fatalf("policy drops = %d, want 1 (post-switch flow)", n.M.Drops.Policy)
	}
	if c.PolicyVersion != 1 {
		t.Fatalf("policy version = %d", c.PolicyVersion)
	}
}

func TestConsistentUpdateNoHoleWindow(t *testing.T) {
	// Inject a continuous stream across all three phases: every packet
	// must be either delivered (old policy) or policy-dropped (new) —
	// never lost to a hole or unreachable authority.
	n, c := consistentNet(t)
	_, cleanupAt, err := c.UpdatePolicyConsistent(denyPolicy())
	if err != nil {
		t.Fatal(err)
	}
	seq := uint64(0)
	for at := 0.0; at < cleanupAt+0.5; at += 0.004 {
		n.InjectPacket(at, 0, flowKey(uint32(1000+seq), 80), 100, 0)
		seq++
	}
	n.Run(cleanupAt + 2)
	handled := n.M.Delivered + n.M.Drops.Policy
	if handled != seq {
		t.Fatalf("handled %d of %d flows (drops %+v)", handled, seq, n.M.Drops)
	}
	if n.M.Drops.Hole != 0 || n.M.Drops.Unreachable != 0 {
		t.Fatalf("consistent update must not lose packets: %+v", n.M.Drops)
	}
}

func TestConsistentUpdateCleansOldGeneration(t *testing.T) {
	n, c := consistentNet(t)
	authSw := n.Switches[1]
	before := authSw.Table(proto.TableAuthority).Len()
	if before == 0 {
		t.Fatal("authority must hold the initial rules")
	}
	switchAt, cleanupAt, err := c.UpdatePolicyConsistent(denyPolicy())
	if err != nil {
		t.Fatal(err)
	}
	// Between install and cleanup both generations coexist.
	n.Run(switchAt + 0.01)
	during := authSw.Table(proto.TableAuthority).Len()
	if during <= before {
		t.Fatalf("both generations must coexist mid-update: %d then %d", before, during)
	}
	n.Run(cleanupAt + 0.01)
	after := authSw.Table(proto.TableAuthority).Len()
	if after != 1 {
		t.Fatalf("after cleanup the authority must hold only the new rule: %d", after)
	}
}

func TestConsistentUpdateVersionsAreSequential(t *testing.T) {
	n, c := consistentNet(t)
	for i := 0; i < 3; i++ {
		_, cleanupAt, err := c.UpdatePolicyConsistent(denyPolicy())
		if err != nil {
			t.Fatal(err)
		}
		n.Run(cleanupAt + 0.1)
	}
	if c.PolicyVersion != 3 {
		t.Fatalf("version = %d", c.PolicyVersion)
	}
}
