package core

import (
	"sort"

	"difane/internal/topo"
)

// LinkKey identifies one direction of a link.
type LinkKey struct {
	From, To uint32
}

// LinkLoads accumulates packets carried per directed link when the
// network runs in hop-by-hop mode.
type LinkLoads map[LinkKey]uint64

// add records one packet traversing every link of the path.
func (l LinkLoads) add(path []topo.NodeID) {
	for i := 1; i < len(path); i++ {
		l[LinkKey{From: uint32(path[i-1]), To: uint32(path[i])}]++
	}
}

// Max returns the heaviest directed-link load.
func (l LinkLoads) Max() uint64 {
	var max uint64
	for _, v := range l {
		if v > max {
			max = v
		}
	}
	return max
}

// Total returns the total link traversals.
func (l LinkLoads) Total() uint64 {
	var t uint64
	for _, v := range l {
		t += v
	}
	return t
}

// Concentration is max load divided by mean load over loaded links — 1.0
// means perfectly even, large values mean hot links.
func (l LinkLoads) Concentration() float64 {
	if len(l) == 0 {
		return 0
	}
	mean := float64(l.Total()) / float64(len(l))
	if mean == 0 {
		return 0
	}
	return float64(l.Max()) / mean
}

// Hottest returns the n most-loaded directed links, descending.
func (l LinkLoads) Hottest(n int) []LinkKey {
	keys := make([]LinkKey, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if l[keys[i]] != l[keys[j]] {
			return l[keys[i]] > l[keys[j]]
		}
		if keys[i].From != keys[j].From {
			return keys[i].From < keys[j].From
		}
		return keys[i].To < keys[j].To
	})
	if n > len(keys) {
		n = len(keys)
	}
	return keys[:n]
}

// sendAlong walks the packet hop by hop along the shortest path from a to
// b, counting link loads, and runs deliver at arrival. Falls back to the
// end-to-end latency when hop-by-hop accounting is disabled. Returns
// false when no path exists.
func (n *Network) sendAlong(a, b uint32, deliver func()) bool {
	if !n.cfg.HopByHop {
		d, ok := n.Topo.Dist(topo.NodeID(a), topo.NodeID(b))
		if !ok {
			return false
		}
		n.Eng.At(n.Eng.Now()+d, deliver)
		return true
	}
	path := n.Topo.Path(topo.NodeID(a), topo.NodeID(b))
	if path == nil {
		return false
	}
	n.LinkLoads.add(path)
	d, _ := n.Topo.Dist(topo.NodeID(a), topo.NodeID(b))
	n.Eng.At(n.Eng.Now()+d, deliver)
	return true
}
