package workload

import (
	"math/rand"

	"difane/internal/flowspace"
)

// Flow is one generated traffic flow.
type Flow struct {
	// Key is the flow's concrete header tuple.
	Key flowspace.Key
	// Ingress is the switch the flow enters at.
	Ingress uint32
	// Start is the arrival time of the first packet (seconds).
	Start float64
	// Packets is the number of packets in the flow.
	Packets int
	// Gap is the inter-packet time (seconds).
	Gap float64
	// Size is the packet size in bytes.
	Size int
}

// TrafficConfig tunes the trace generator.
type TrafficConfig struct {
	// Flows is the number of flow arrivals to generate.
	Flows int
	// Rate is the flow arrival rate (flows per second, Poisson).
	Rate float64
	// ZipfAlpha skews flow popularity (>1; the paper's traces are heavily
	// skewed — a few rules carry most traffic).
	ZipfAlpha float64
	// Population is the number of distinct flow identities popularity is
	// drawn over.
	Population int
	// PacketsMean is the geometric-mean packets per flow.
	PacketsMean int
	// PacketGap is the inter-packet time within a flow.
	PacketGap float64
	// Size is the packet size (bytes).
	Size int
	// Seed makes the trace deterministic.
	Seed int64
}

func (c TrafficConfig) withDefaults() TrafficConfig {
	if c.Flows < 1 {
		c.Flows = 1000
	}
	if c.Rate <= 0 {
		c.Rate = 1000
	}
	if c.ZipfAlpha <= 1 {
		c.ZipfAlpha = 1.2
	}
	if c.Population < 1 {
		c.Population = 10000
	}
	if c.PacketsMean < 1 {
		c.PacketsMean = 10
	}
	if c.PacketGap <= 0 {
		c.PacketGap = 0.01
	}
	if c.Size <= 0 {
		c.Size = 800
	}
	return c
}

// GenerateTraffic builds a Zipf-popularity Poisson-arrival flow trace over
// the spec's policy: the flow population samples concrete headers inside
// the matchable regions of the policy's rules (weighted toward broad
// rules, as real traffic weights are), and each arrival picks a population
// member by Zipf rank.
func GenerateTraffic(spec *Spec, cfg TrafficConfig) []Flow {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	population := makePopulation(rng, spec, cfg.Population)
	if len(population) == 0 {
		return nil
	}
	zipf := rand.NewZipf(rng, cfg.ZipfAlpha, 1, uint64(len(population)-1))

	flows := make([]Flow, 0, cfg.Flows)
	t := 0.0
	for i := 0; i < cfg.Flows; i++ {
		t += rng.ExpFloat64() / cfg.Rate
		member := population[zipf.Uint64()]
		pkts := 1 + int(rng.ExpFloat64()*float64(cfg.PacketsMean))
		flows = append(flows, Flow{
			Key:     member.key,
			Ingress: member.ingress,
			Start:   t,
			Packets: pkts,
			Gap:     cfg.PacketGap,
			Size:    cfg.Size,
		})
	}
	return flows
}

type popMember struct {
	key     flowspace.Key
	ingress uint32
}

// makePopulation samples distinct flow identities. Each identity picks a
// random policy rule, samples a concrete header inside its match, and
// assigns a random ingress edge switch. Sampling rules uniformly gives
// broad rules no more identities than narrow ones, so popularity skew
// across rules comes from the Zipf rank distribution over identities.
func makePopulation(rng *rand.Rand, spec *Spec, n int) []popMember {
	if len(spec.Policy) == 0 || len(spec.Edges) == 0 {
		return nil
	}
	out := make([]popMember, 0, n)
	for i := 0; i < n; i++ {
		r := spec.Policy[rng.Intn(len(spec.Policy))]
		var rv [flowspace.NumFields]uint64
		for f := range rv {
			rv[f] = rng.Uint64()
		}
		k := r.Match.RandomKeyIn(rv)
		out = append(out, popMember{
			key:     k,
			ingress: spec.Edges[rng.Intn(len(spec.Edges))],
		})
	}
	return out
}

// UniformTraffic generates cfg.Flows flows with distinct random keys (no
// popularity reuse) — the worst case for caching, used by the throughput
// experiments where every arrival is a new flow.
func UniformTraffic(spec *Spec, cfg TrafficConfig) []Flow {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	flows := make([]Flow, 0, cfg.Flows)
	t := 0.0
	for i := 0; i < cfg.Flows; i++ {
		t += rng.ExpFloat64() / cfg.Rate
		r := spec.Policy[rng.Intn(len(spec.Policy))]
		var rv [flowspace.NumFields]uint64
		for f := range rv {
			rv[f] = rng.Uint64()
		}
		flows = append(flows, Flow{
			Key:     r.Match.RandomKeyIn(rv),
			Ingress: spec.Edges[rng.Intn(len(spec.Edges))],
			Start:   t,
			Packets: 1,
			Gap:     cfg.PacketGap,
			Size:    cfg.Size,
		})
	}
	return flows
}
