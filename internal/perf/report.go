package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

const reportVersion = 1

// Result is one (workload, backend) measurement.
type Result struct {
	Workload string `json:"workload"`
	Backend  string `json:"backend"`
	// Packets is how many packets the trace injected.
	Packets int `json:"packets"`
	// WallSeconds is the real time the inject+run window took.
	WallSeconds float64 `json:"wall_seconds"`
	// PktsPerSec is Packets / WallSeconds — wall-clock processing
	// throughput for every backend (the simulated backends burn wall time
	// executing events, wire mode forwarding real frames).
	PktsPerSec float64 `json:"pkts_per_sec"`
	// P50FirstMs / P99FirstMs are first-packet latency percentiles in
	// milliseconds — virtual time for sim/baseline, real time for wire.
	P50FirstMs float64 `json:"p50_first_ms"`
	P99FirstMs float64 `json:"p99_first_ms"`
	// AllocsPerOp is heap allocations per injected packet across the
	// window (machine-independent, the steadiest regression signal).
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Goroutines is the live goroutine count at the end of the run,
	// before Close — a leak detector.
	Goroutines int    `json:"goroutines"`
	Delivered  uint64 `json:"delivered"`
	Drops      uint64 `json:"drops"`
	// NoisePkts / NoiseAllocs record the cell's observed rep-to-rep
	// spread ((max-min)/max for throughput, (max-min)/min for allocs).
	// Compare widens its tolerance to at least the spread either side
	// measured, so cells this machine cannot time tightly don't produce
	// spurious gate failures while tightly measurable cells stay gated at
	// the configured tolerance.
	NoisePkts   float64 `json:"noise_pkts"`
	NoiseAllocs float64 `json:"noise_allocs"`
}

// Report is the BENCH_wire.json payload.
type Report struct {
	Version    int      `json:"version"`
	Quick      bool     `json:"quick"`
	Seed       int64    `json:"seed"`
	GoMaxProcs int      `json:"gomaxprocs"`
	Results    []Result `json:"results"`
}

// WriteFile stores the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	sortResults(r.Results)
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadReport reads a report written by WriteFile.
func LoadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("perf: parse %s: %w", path, err)
	}
	return &r, nil
}

// Render prints the report as a text table.
func (r *Report) Render() string {
	sortResults(r.Results)
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-9s %9s %12s %10s %10s %9s %6s\n",
		"workload", "backend", "packets", "pkts/s", "p50 ms", "p99 ms", "allocs/op", "gor")
	for _, res := range r.Results {
		fmt.Fprintf(&b, "%-10s %-9s %9d %12.0f %10.3f %10.3f %9.1f %6d\n",
			res.Workload, res.Backend, res.Packets, res.PktsPerSec,
			res.P50FirstMs, res.P99FirstMs, res.AllocsPerOp, res.Goroutines)
	}
	return b.String()
}

// Tolerance bounds how much worse the current report may be than the
// baseline before Compare flags a regression.
type Tolerance struct {
	// Throughput is the allowed fractional drop in pkts/s (default 0.15).
	Throughput float64
	// Allocs is the allowed fractional growth in allocs/op (default 0.15).
	Allocs float64
	// LatencyP99 is the allowed fractional growth in p99 first-packet
	// latency. Wall-clock latency on shared CI hardware is far noisier
	// than throughput or allocation counts, so the default is loose (1.0,
	// i.e. 2×).
	LatencyP99 float64
	// GoroutineSlack is the allowed absolute goroutine-count growth
	// (default 64) — a gross-leak gate. Wire clusters legitimately run a
	// few goroutines per switch plus transient async control writers, so
	// the slack must absorb scheduling noise.
	GoroutineSlack int
}

// DefaultTolerance is the 15% regression gate the CI perf-smoke job uses.
func DefaultTolerance() Tolerance {
	return Tolerance{Throughput: 0.15, Allocs: 0.15, LatencyP99: 1.0, GoroutineSlack: 64}
}

// Compare diffs cur against base and returns one message per regression;
// an empty slice means the gate passes. Rows present in only one report
// are reported (shape drift is itself a finding, not silently ignored).
func Compare(base, cur *Report, tol Tolerance) []string {
	if tol.Throughput <= 0 {
		tol.Throughput = 0.15
	}
	if tol.Allocs <= 0 {
		tol.Allocs = 0.15
	}
	if tol.LatencyP99 <= 0 {
		tol.LatencyP99 = 1.0
	}
	if tol.GoroutineSlack <= 0 {
		tol.GoroutineSlack = 64
	}
	key := func(r Result) string { return r.Workload + "/" + r.Backend }
	baseBy := map[string]Result{}
	for _, r := range base.Results {
		baseBy[key(r)] = r
	}
	var out []string
	seen := map[string]bool{}
	for _, c := range cur.Results {
		k := key(c)
		seen[k] = true
		b, ok := baseBy[k]
		if !ok {
			out = append(out, fmt.Sprintf("%s: no baseline row (new result)", k))
			continue
		}
		thrTol := maxf3(tol.Throughput, b.NoisePkts, c.NoisePkts)
		if b.PktsPerSec > 0 && c.PktsPerSec < b.PktsPerSec*(1-thrTol) {
			out = append(out, fmt.Sprintf(
				"%s: throughput regressed %.0f → %.0f pkts/s (>%.0f%% drop)",
				k, b.PktsPerSec, c.PktsPerSec, thrTol*100))
		}
		allocTol := maxf3(tol.Allocs, b.NoiseAllocs, c.NoiseAllocs)
		if b.AllocsPerOp > 0 && c.AllocsPerOp > b.AllocsPerOp*(1+allocTol) {
			out = append(out, fmt.Sprintf(
				"%s: allocs/op regressed %.1f → %.1f (>%.0f%% growth)",
				k, b.AllocsPerOp, c.AllocsPerOp, allocTol*100))
		}
		if b.P99FirstMs > 0 && c.P99FirstMs > b.P99FirstMs*(1+tol.LatencyP99) {
			out = append(out, fmt.Sprintf(
				"%s: p99 first-packet latency regressed %.3f → %.3f ms (>%.0f%% growth)",
				k, b.P99FirstMs, c.P99FirstMs, tol.LatencyP99*100))
		}
		if c.Goroutines > b.Goroutines+tol.GoroutineSlack {
			out = append(out, fmt.Sprintf(
				"%s: goroutines grew %d → %d (slack %d)",
				k, b.Goroutines, c.Goroutines, tol.GoroutineSlack))
		}
	}
	for _, b := range base.Results {
		if !seen[key(b)] {
			out = append(out, fmt.Sprintf("%s: baseline row missing from current run", key(b)))
		}
	}
	return out
}

// DefaultAllocBudget is the absolute cache-hit allocs/op ceiling the CI
// perf-smoke job asserts (difane-bench -wire -alloc-budget). Unlike
// Compare's relative gate, this pins the burst data plane's zero-alloc
// property to a number: steady-state cache hits amortize their frame
// buffers, TCAM views, and delivery recording across whole bursts, so
// per-packet heap allocations must stay near zero. The headroom above
// zero absorbs the slow paths a real trace still exercises (cold-flow
// detours, async cache installs, fabric buffer growth).
const DefaultAllocBudget = 3.0

// CheckAllocBudget returns one message per wire-mode cache-hit row whose
// allocs/op exceeds budget; an empty slice means the budget holds. Only
// the cache-hit workload is gated — miss-storm and failover exist to
// exercise the control plane, whose per-miss work legitimately allocates.
func CheckAllocBudget(rep *Report, budget float64) []string {
	var out []string
	for _, r := range rep.Results {
		if r.Workload != WorkloadCacheHit || !strings.HasPrefix(r.Backend, "wire") {
			continue
		}
		if r.AllocsPerOp > budget {
			out = append(out, fmt.Sprintf(
				"%s/%s: %.2f allocs/op exceeds budget %.2f",
				r.Workload, r.Backend, r.AllocsPerOp, budget))
		}
	}
	return out
}

func maxf3(a, b, c float64) float64 {
	if b > a {
		a = b
	}
	if c > a {
		a = c
	}
	return a
}
