// Package subscriber models a BNG-style subscriber population at the
// scale the ROADMAP's north star demands: millions of subscribers whose
// sessions arrive and depart as a Poisson process (churn that invalidates
// caches), whose popularity follows a Zipf law (a few subscribers carry
// most traffic), who move between ingress switches mid-session (the
// paper's §5 host mobility), whose aggregate load swings diurnally, and
// who occasionally misbehave — cache-thrashing scans and flash crowds
// concentrated on one flow-space partition.
//
// The engine is O(active sessions) in memory, not O(population): a
// subscriber's flow identity and home ingress are pure functions of the
// subscriber index (a splitmix64 stream keyed by the engine seed), so a
// 10M-subscriber population costs nothing until its members show up.
// Everything is driven by one seeded PRNG — the same seed replays the
// same sessions, packets, moves, and phase schedule, which is what lets
// the soak harness (soak.go) sample packet verdicts against the oracle.
package subscriber

import (
	"math"
	"math/rand"

	"difane/internal/core"
	"difane/internal/flowspace"
	"difane/internal/workload"
)

// Config tunes the session engine. All rates are per modeled second.
type Config struct {
	// Subscribers is the population size popularity is drawn over. Memory
	// does not scale with it — only the active session set is stored.
	Subscribers int
	// ZipfAlpha skews subscriber popularity (>1; default 1.3).
	ZipfAlpha float64
	// ArrivalRate is the Poisson session arrival rate (sessions/sec,
	// before diurnal and phase modulation; default 1000).
	ArrivalRate float64
	// MeanSessionLife is the exponential mean session lifetime in seconds
	// (default 2). Active sessions ≈ ArrivalRate × MeanSessionLife.
	MeanSessionLife float64
	// PacketRate is each active session's packet emission rate (default 2;
	// every session additionally emits one packet on arrival and one on
	// each move).
	PacketRate float64
	// MobilityRate is how many session moves between ingress switches
	// happen per second across the whole active set (default 0: static
	// hosts).
	MobilityRate float64
	// DiurnalAmp modulates the arrival rate by 1 + Amp·sin(2πt/Period)
	// (0..1; default 0: flat load).
	DiurnalAmp float64
	// DiurnalPeriod is the diurnal cycle length in modeled seconds
	// (default: 60).
	DiurnalPeriod float64
	// MaxActive hard-bounds the concurrent session set (memory guard;
	// default 1<<20). Arrivals past the bound are suppressed and counted.
	MaxActive int
	// PacketSize is the modeled packet size in bytes (default 400).
	PacketSize int
	// Seed makes the whole run deterministic.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Subscribers < 1 {
		c.Subscribers = 1 << 20
	}
	if c.ZipfAlpha <= 1 {
		c.ZipfAlpha = 1.3
	}
	if c.ArrivalRate <= 0 {
		c.ArrivalRate = 1000
	}
	if c.MeanSessionLife <= 0 {
		c.MeanSessionLife = 2
	}
	if c.PacketRate <= 0 {
		c.PacketRate = 2
	}
	if c.DiurnalPeriod <= 0 {
		c.DiurnalPeriod = 60
	}
	if c.MaxActive <= 0 {
		c.MaxActive = 1 << 20
	}
	if c.PacketSize <= 0 {
		c.PacketSize = 400
	}
	return c
}

// session is one active subscriber session. 64 bytes, swap-deleted.
type session struct {
	sub      uint64
	key      flowspace.Key
	ingress  uint32
	seq      uint64
	departAt float64
	credit   float64
}

// Tick is what one Advance step produced. Batch aliases an internal
// buffer valid until the next Advance call.
type Tick struct {
	Now        float64
	Phase      string
	PhaseIndex int
	// PhaseChanged is true when this tick crossed into a new phase.
	PhaseChanged bool
	// Done is true once the phase script is exhausted.
	Done  bool
	Batch []core.PacketIn
	// Arrivals/Departures/Moves/Suppressed count this tick's session
	// events; Active is the session count after them.
	Arrivals, Departures, Moves, Suppressed int
	Active                                  int
}

// Engine drives the subscriber population forward in modeled time.
type Engine struct {
	cfg    Config
	spec   *workload.Spec
	phases []Phase

	rng  *rand.Rand
	zipf *rand.Zipf

	now         float64
	nextArrival float64
	nextMove    float64

	sessions []session
	batch    []core.PacketIn

	phaseIdx   int
	phaseEnd   float64
	flashRule  int
	scanRule   int
	scanSerial uint64

	// Cumulative counters (whole run).
	totalSessions   uint64
	totalDepartures uint64
	totalMoves      uint64
	totalPackets    uint64
	totalSuppressed uint64
}

// NewEngine builds an engine over the spec's policy and edge switches.
// The phase script runs in order; an empty script means one endless
// steady phase.
func NewEngine(spec *workload.Spec, cfg Config, phases []Phase) *Engine {
	cfg = cfg.withDefaults()
	if len(phases) == 0 {
		phases = []Phase{Steady(math.Inf(1))}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	e := &Engine{
		cfg:    cfg,
		spec:   spec,
		phases: phases,
		rng:    rng,
		zipf:   rand.NewZipf(rng, cfg.ZipfAlpha, 1, uint64(cfg.Subscribers-1)),
		// The flash crowd converges on one rule's region (→ one partition
		// neighborhood); scans walk a different rule so the two adversarial
		// patterns stress different flow-space corners.
		flashRule: rng.Intn(len(spec.Policy)),
		scanRule:  rng.Intn(len(spec.Policy)),
	}
	e.phaseEnd = phases[0].Duration
	e.nextArrival = e.rng.ExpFloat64() / e.arrivalRate(0)
	if cfg.MobilityRate > 0 {
		e.nextMove = e.rng.ExpFloat64() / cfg.MobilityRate
	} else {
		e.nextMove = math.Inf(1)
	}
	return e
}

// splitmix64 is the per-subscriber identity stream: cheap, stateless,
// well-mixed — a subscriber's flow key and home ingress derive from it
// without storing the population.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// fillFrom expands one 64-bit identity into a full random header fill.
func fillFrom(h uint64) (out [flowspace.NumFields]uint64) {
	for i := range out {
		h = splitmix64(h)
		out[i] = h
	}
	return out
}

// subKey is subscriber sub's stable flow identity: a concrete header
// sampled inside one policy rule's region. Stable across sessions, so a
// popular subscriber's cache entries stay warm across churn.
func (e *Engine) subKey(sub uint64) flowspace.Key {
	h := splitmix64(uint64(e.cfg.Seed) ^ sub)
	r := e.spec.Policy[h%uint64(len(e.spec.Policy))]
	return r.Match.RandomKeyIn(fillFrom(h))
}

// subHome is subscriber sub's home ingress edge switch.
func (e *Engine) subHome(sub uint64) uint32 {
	h := splitmix64(uint64(e.cfg.Seed) ^ sub ^ 0xA5A5A5A5A5A5A5A5)
	return e.spec.Edges[h%uint64(len(e.spec.Edges))]
}

// keyInRule samples serial's concrete header inside rule ri's region.
func (e *Engine) keyInRule(ri int, serial uint64) flowspace.Key {
	h := splitmix64(uint64(e.cfg.Seed)*0x9E3779B9 + serial)
	return e.spec.Policy[ri].Match.RandomKeyIn(fillFrom(h))
}

func (e *Engine) phase() *Phase { return &e.phases[e.phaseIdx] }

// diurnal is the time-of-day load multiplier.
func (e *Engine) diurnal(t float64) float64 {
	if e.cfg.DiurnalAmp <= 0 {
		return 1
	}
	return 1 + e.cfg.DiurnalAmp*math.Sin(2*math.Pi*t/e.cfg.DiurnalPeriod)
}

// arrivalRate is the effective session arrival rate at time t.
func (e *Engine) arrivalRate(t float64) float64 {
	boost := 1.0
	if len(e.phases) > 0 {
		boost = e.phases[e.phaseIdx].arrivalBoost()
	}
	return e.cfg.ArrivalRate * e.diurnal(t) * boost
}

// Now returns the engine's modeled clock.
func (e *Engine) Now() float64 { return e.now }

// Active returns the live session count.
func (e *Engine) Active() int { return len(e.sessions) }

// TotalSessions returns cumulative session arrivals (the "modeled
// subscriber sessions" the acceptance gate counts).
func (e *Engine) TotalSessions() uint64 { return e.totalSessions }

// TotalMoves returns cumulative mobility events.
func (e *Engine) TotalMoves() uint64 { return e.totalMoves }

// TotalPackets returns cumulative packets emitted.
func (e *Engine) TotalPackets() uint64 { return e.totalPackets }

// TotalSuppressed returns arrivals refused by the MaxActive bound.
func (e *Engine) TotalSuppressed() uint64 { return e.totalSuppressed }

// FlashRegion returns the flow-space region flash crowds converge on.
func (e *Engine) FlashRegion() flowspace.Match { return e.spec.Policy[e.flashRule].Match }

// Done reports whether the phase script has been fully consumed.
func (e *Engine) Done() bool { return e.phaseIdx >= len(e.phases) }

// spawn starts one session at time t and emits its first packet.
func (e *Engine) spawn(t float64, tick *Tick) {
	if len(e.sessions) >= e.cfg.MaxActive {
		e.totalSuppressed++
		tick.Suppressed++
		return
	}
	ph := e.phase()
	var s session
	switch ph.Kind {
	case PhaseFlashCrowd:
		// The crowd: many subscribers converging on a small hot key set
		// inside one rule's region — one partition soaks the misses.
		sub := e.zipf.Uint64()
		hot := ph.hotKeys()
		s = session{
			sub:     sub,
			key:     e.keyInRule(e.flashRule, sub%uint64(hot)),
			ingress: e.subHome(sub),
		}
	case PhaseScan:
		// The scanner: every session a never-seen key, walking the policy's
		// regions round-robin — each one a cache miss under exact caching,
		// and under cover caching the walk still touches every region so a
		// capacity-bounded TCAM churns instead of settling.
		e.scanSerial++
		sub := uint64(e.cfg.Subscribers) + e.scanSerial // outside the population
		ri := (e.scanRule + int(e.scanSerial)) % len(e.spec.Policy)
		s = session{
			sub:     sub,
			key:     e.keyInRule(ri, 0x5CA7^e.scanSerial),
			ingress: e.subHome(sub),
		}
	default:
		sub := e.zipf.Uint64()
		s = session{sub: sub, key: e.subKey(sub), ingress: e.subHome(sub)}
	}
	life := e.rng.ExpFloat64() * e.cfg.MeanSessionLife * ph.lifeScale()
	s.departAt = t + life
	e.sessions = append(e.sessions, s)
	e.totalSessions++
	tick.Arrivals++
	e.emit(&e.sessions[len(e.sessions)-1], t)
}

// emit appends one packet from session s to the tick batch.
func (e *Engine) emit(s *session, at float64) {
	e.batch = append(e.batch, core.PacketIn{
		At:      at,
		Ingress: s.ingress,
		Key:     s.key,
		Size:    e.cfg.PacketSize,
		Seq:     s.seq,
	})
	s.seq++
	e.totalPackets++
}

// Advance steps the engine dt modeled seconds and returns the tick's
// packet batch plus session-event counts. Steps are processed in a fixed
// order (phase boundary, arrivals, moves, departures, steady packets), so
// a seed fully determines the run.
func (e *Engine) Advance(dt float64) Tick {
	tick := Tick{}
	if e.Done() {
		tick.Now, tick.Done = e.now, true
		tick.Phase = "done"
		return tick
	}
	t0 := e.now
	e.now += dt
	e.batch = e.batch[:0]

	// Phase boundary: enter the next phase at its scheduled edge.
	for e.now >= e.phaseEnd && !e.Done() {
		e.phaseIdx++
		tick.PhaseChanged = true
		if e.Done() {
			break
		}
		e.phaseEnd += e.phases[e.phaseIdx].Duration
	}
	if e.Done() {
		tick.Now, tick.Done, tick.PhaseChanged = e.now, true, true
		tick.Phase = "done"
		tick.PhaseIndex = len(e.phases)
		tick.Active = len(e.sessions)
		return tick
	}
	ph := e.phase()
	tick.Phase = ph.Name
	tick.PhaseIndex = e.phaseIdx

	// Session arrivals (Poisson, rate modulated by diurnal × phase).
	for e.nextArrival < e.now {
		e.spawn(e.nextArrival, &tick)
		e.nextArrival += e.rng.ExpFloat64() / e.arrivalRate(e.nextArrival)
	}

	// Mobility: pick a random active session, move it to a different edge,
	// and emit a packet from the new ingress so the move is visible to the
	// caches immediately.
	for e.nextMove < e.now && len(e.sessions) > 0 {
		s := &e.sessions[e.rng.Intn(len(e.sessions))]
		if len(e.spec.Edges) > 1 {
			next := e.spec.Edges[e.rng.Intn(len(e.spec.Edges)-1)]
			if next == s.ingress {
				next = e.spec.Edges[len(e.spec.Edges)-1]
			}
			s.ingress = next
		}
		e.totalMoves++
		tick.Moves++
		e.emit(s, e.nextMove)
		e.nextMove += e.rng.ExpFloat64() / e.cfg.MobilityRate
	}
	if e.nextMove < e.now {
		// No sessions to move yet; re-arm rather than spin.
		e.nextMove = e.now + e.rng.ExpFloat64()/e.cfg.MobilityRate
	}

	// Departures: swap-delete expired sessions.
	for i := 0; i < len(e.sessions); {
		if e.sessions[i].departAt <= e.now {
			e.sessions[i] = e.sessions[len(e.sessions)-1]
			e.sessions = e.sessions[:len(e.sessions)-1]
			e.totalDepartures++
			tick.Departures++
			continue
		}
		i++
	}

	// Steady traffic: every active session accrues fractional packet
	// credit at the phase-scaled rate and emits whole packets.
	perTick := e.cfg.PacketRate * ph.trafficBoost() * dt
	for i := range e.sessions {
		s := &e.sessions[i]
		s.credit += perTick
		for s.credit >= 1 {
			s.credit--
			e.emit(s, t0)
		}
	}

	tick.Now = e.now
	tick.Batch = e.batch
	tick.Active = len(e.sessions)
	return tick
}
