// Package switchsim models a DIFANE-capable switch's data-plane pipeline:
// three TCAM-semantics tables consulted in order — cache rules, authority
// rules, partition rules — exactly the rule hierarchy of the paper. The
// forwarding decisions themselves (where a redirect goes, what cache rule
// to generate) belong to the control logic in internal/core; this package
// owns classification, table management via FlowMods, and counters.
package switchsim

import (
	"fmt"
	"sync/atomic"

	"difane/internal/flowspace"
	"difane/internal/proto"
	"difane/internal/tcam"
)

// Stats aggregates a switch's data-plane counters. The fields are atomics
// so wire mode's concurrent data planes can bump them from the lock-free
// classification path; single-threaded users (the simulator) pay only an
// uncontended atomic add.
type Stats struct {
	// CacheHits/AuthorityHits/PartitionHits count which table terminated
	// classification.
	CacheHits     atomic.Uint64
	AuthorityHits atomic.Uint64
	PartitionHits atomic.Uint64
	// Misses counts packets matching no table (policy holes).
	Misses atomic.Uint64
}

// StatsSnapshot is a point-in-time copy of Stats.
type StatsSnapshot struct {
	CacheHits     uint64
	AuthorityHits uint64
	PartitionHits uint64
	Misses        uint64
}

// Snapshot returns a consistent-enough point-in-time copy (each counter is
// loaded atomically; the set is not a single linearized cut).
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		CacheHits:     s.CacheHits.Load(),
		AuthorityHits: s.AuthorityHits.Load(),
		PartitionHits: s.PartitionHits.Load(),
		Misses:        s.Misses.Load(),
	}
}

// Switch is one switch's rule state.
type Switch struct {
	ID uint32

	cache     *tcam.Table
	authority *tcam.Table
	partition *tcam.Table

	// tcamBudget / cacheCap back the shared-TCAM budget enforcement (see
	// Config.TCAMBudget); immutable after New.
	tcamBudget int
	cacheCap   int

	Stats Stats
}

// Config sizes a switch's tables.
type Config struct {
	// CacheCapacity bounds the ingress cache (0 = unlimited).
	CacheCapacity int
	// CacheEviction picks victims when the cache is full.
	CacheEviction tcam.EvictionPolicy
	// CacheVictim, when non-nil, overrides the eviction policy's victim
	// ordering with a custom picker (cost-aware caching). Like the tcam
	// hooks, set it before the switch is shared across goroutines.
	CacheVictim tcam.VictimFunc
	// AuthorityCapacity bounds the authority table (0 = unlimited).
	AuthorityCapacity int
	// TCAMBudget, when >0, bounds the switch's *total* TCAM occupancy: one
	// physical table holds cache, authority, and partition rules, so the
	// cache's capacity is continuously derived as budget minus the
	// mandatory authority and partition entries (mandatory installs squeeze
	// the cache, evicting via CacheEviction/CacheVictim). CacheCapacity
	// still applies as an additional cap when set.
	TCAMBudget int
}

// New creates a switch with the given table sizing.
func New(id uint32, cfg Config) *Switch {
	s := &Switch{
		ID:         id,
		cache:      tcam.New(fmt.Sprintf("sw%d/cache", id), cfg.CacheCapacity, cfg.CacheEviction),
		authority:  tcam.New(fmt.Sprintf("sw%d/authority", id), cfg.AuthorityCapacity, tcam.EvictNone),
		partition:  tcam.New(fmt.Sprintf("sw%d/partition", id), 0, tcam.EvictNone),
		tcamBudget: cfg.TCAMBudget,
		cacheCap:   cfg.CacheCapacity,
	}
	if cfg.CacheVictim != nil {
		s.cache.SetVictimFn(cfg.CacheVictim)
	}
	s.EnforceBudget(0)
	return s
}

// TCAMBudget returns the switch's shared-TCAM budget (0 = unbounded).
func (s *Switch) TCAMBudget() int { return s.tcamBudget }

// EnforceBudget recomputes the cache table's capacity from the TCAM
// budget and the current mandatory-rule footprint, evicting cache entries
// when the budget shrank. Called automatically after FlowMods and timeout
// expiry on the mandatory tables; exported so control logic that writes
// those tables directly (wholesale withdrawals) can resquare the budget.
// Returns the number of cache entries evicted.
func (s *Switch) EnforceBudget(now float64) int {
	if s.tcamBudget <= 0 {
		return 0
	}
	avail := s.tcamBudget - s.authority.Len() - s.partition.Len()
	if s.cacheCap > 0 && s.cacheCap < avail {
		avail = s.cacheCap
	}
	if avail <= 0 {
		avail = -1 // tcam: negative capacity admits nothing (0 = unlimited)
	}
	if s.cache.Capacity() == avail {
		return 0
	}
	return s.cache.SetCapacity(now, avail)
}

// Table returns the named table (for inspection and installs).
func (s *Switch) Table(t proto.Table) *tcam.Table {
	switch t {
	case proto.TableCache:
		return s.cache
	case proto.TableAuthority:
		return s.authority
	case proto.TablePartition:
		return s.partition
	default:
		return nil
	}
}

// Result is the outcome of classifying one packet.
type Result struct {
	Rule  flowspace.Rule
	Table proto.Table
	OK    bool
}

// Classify runs the pipeline: cache, then authority, then partition. The
// matching table's counters are updated; earlier tables record misses.
// Classify is safe for concurrent use with rule installs: each table
// lookup walks an atomically published snapshot (see internal/tcam), so a
// concurrent FlowMod is observed either fully applied or not at all.
func (s *Switch) Classify(now float64, k flowspace.Key, size int) Result {
	if r, ok := s.cache.Lookup(now, k, size); ok {
		s.Stats.CacheHits.Add(1)
		return Result{Rule: r, Table: proto.TableCache, OK: true}
	}
	if r, ok := s.authority.Lookup(now, k, size); ok {
		s.Stats.AuthorityHits.Add(1)
		return Result{Rule: r, Table: proto.TableAuthority, OK: true}
	}
	if r, ok := s.partition.Lookup(now, k, size); ok {
		s.Stats.PartitionHits.Add(1)
		return Result{Rule: r, Table: proto.TablePartition, OK: true}
	}
	s.Stats.Misses.Add(1)
	return Result{}
}

// ClassifyBurst classifies a vector of packets through the pipeline with
// one snapshot acquisition per table per burst (instead of per packet) and
// one Stats update per table per burst. keys, sizes, and out must have
// equal length; out[i] receives packet i's result. The cascade runs
// table-at-a-time: all cache lookups against one cache view, then the
// misses against one authority view, then one partition view — each table's
// state is consistent across the whole burst, and a concurrent install is
// observed by all of a burst's packets or none of them (per table).
// Allocation-free: all scratch state lives in out.
func (s *Switch) ClassifyBurst(now float64, keys []flowspace.Key, sizes []int, out []Result) {
	remaining := len(keys)
	v := s.cache.AcquireView()
	hits := uint64(0)
	for i := range keys {
		if r, ok := v.Lookup(now, keys[i], sizes[i]); ok {
			out[i] = Result{Rule: r, Table: proto.TableCache, OK: true}
			hits++
			remaining--
		} else {
			out[i] = Result{}
		}
	}
	v.Release()
	if hits > 0 {
		s.Stats.CacheHits.Add(hits)
	}
	if remaining > 0 {
		v = s.authority.AcquireView()
		hits = 0
		for i := range keys {
			if out[i].OK {
				continue
			}
			if r, ok := v.Lookup(now, keys[i], sizes[i]); ok {
				out[i] = Result{Rule: r, Table: proto.TableAuthority, OK: true}
				hits++
				remaining--
			}
		}
		v.Release()
		if hits > 0 {
			s.Stats.AuthorityHits.Add(hits)
		}
	}
	if remaining > 0 {
		v = s.partition.AcquireView()
		hits = 0
		for i := range keys {
			if out[i].OK {
				continue
			}
			if r, ok := v.Lookup(now, keys[i], sizes[i]); ok {
				out[i] = Result{Rule: r, Table: proto.TablePartition, OK: true}
				hits++
				remaining--
			}
		}
		v.Release()
		if hits > 0 {
			s.Stats.PartitionHits.Add(hits)
		}
	}
	if remaining > 0 {
		s.Stats.Misses.Add(uint64(remaining))
	}
}

// Peek classifies without touching any counters.
func (s *Switch) Peek(k flowspace.Key) Result {
	if r, ok := s.cache.Peek(k); ok {
		return Result{Rule: r, Table: proto.TableCache, OK: true}
	}
	if r, ok := s.authority.Peek(k); ok {
		return Result{Rule: r, Table: proto.TableAuthority, OK: true}
	}
	if r, ok := s.partition.Peek(k); ok {
		return Result{Rule: r, Table: proto.TablePartition, OK: true}
	}
	return Result{}
}

// ApplyFlowMod installs or removes a rule per the message.
func (s *Switch) ApplyFlowMod(now float64, m *proto.FlowMod) error {
	tb := s.Table(m.Table)
	if tb == nil {
		return fmt.Errorf("switch %d: no such table %d", s.ID, m.Table)
	}
	switch m.Op {
	case proto.OpAdd:
		if m.Table != proto.TableCache {
			// Mandatory rules claim TCAM ahead of the cache: shrink the
			// cache's share first so the insert lands inside the budget.
			defer s.EnforceBudget(now)
		}
		return tb.Insert(now, m.Rule, m.Idle, m.Hard)
	case proto.OpDelete:
		tb.Delete(m.Rule.ID)
		if m.Table != proto.TableCache {
			s.EnforceBudget(now)
		}
		return nil
	default:
		return fmt.Errorf("switch %d: unknown flow-mod op %d", s.ID, m.Op)
	}
}

// Advance expires timed-out entries in all tables.
func (s *Switch) Advance(now float64) {
	s.cache.Advance(now)
	s.authority.Advance(now)
	s.partition.Advance(now)
	s.EnforceBudget(now) // mandatory-table expiry frees TCAM back to the cache
}

// Counters answers a stats request by searching all tables.
func (s *Switch) Counters(ruleID uint64) (packets, bytes uint64, ok bool) {
	for _, tb := range []*tcam.Table{s.cache, s.authority, s.partition} {
		if p, b, found := tb.Counters(ruleID); found {
			return p, b, true
		}
	}
	return 0, 0, false
}

// ClearCache empties the cache table (used on policy changes) and returns
// the number of entries removed.
func (s *Switch) ClearCache() int {
	return s.cache.DeleteWhere(func(tcam.Entry) bool { return true })
}

// String renders a diagnostic dump of all tables.
func (s *Switch) String() string {
	return fmt.Sprintf("switch %d\n%s%s%s", s.ID, s.cache, s.authority, s.partition)
}
