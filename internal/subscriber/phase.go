package subscriber

// PhaseKind discriminates the soak's workload phases.
type PhaseKind uint8

// Phase kinds.
const (
	// PhaseSteady is the ordinary diurnal mix: Zipf-popular subscribers
	// arriving and departing at the base churn rate.
	PhaseSteady PhaseKind = iota
	// PhaseChurnSpike multiplies arrivals and shortens session lifetimes —
	// same active population, several times the cache-invalidation rate.
	PhaseChurnSpike
	// PhaseFlashCrowd concentrates arrivals on a small hot key set inside
	// one policy rule's region, so one partition's authority switches soak
	// the misses while everyone's caches fill with the same few entries.
	PhaseFlashCrowd
	// PhaseScan is the cache-thrashing adversary: every arrival carries a
	// never-seen flow key, so every packet is a miss and every install an
	// eviction once caches are full.
	PhaseScan
)

func (k PhaseKind) String() string {
	switch k {
	case PhaseSteady:
		return "steady"
	case PhaseChurnSpike:
		return "churn-spike"
	case PhaseFlashCrowd:
		return "flash-crowd"
	case PhaseScan:
		return "scan"
	default:
		return "phase(?)"
	}
}

// Phase is one segment of the soak script.
type Phase struct {
	Kind PhaseKind
	Name string
	// Duration is the phase length in modeled seconds.
	Duration float64
	// ArrivalBoost multiplies the session arrival rate (default 1).
	ArrivalBoost float64
	// TrafficBoost multiplies per-session packet rates (default 1).
	TrafficBoost float64
	// LifeScale multiplies session lifetimes (default 1; churn spikes use
	// <1 so the active set stays level while turnover multiplies).
	LifeScale float64
	// HotKeys is the flash crowd's distinct hot key count (default 64).
	HotKeys int
}

func (p *Phase) arrivalBoost() float64 {
	if p.ArrivalBoost <= 0 {
		return 1
	}
	return p.ArrivalBoost
}

func (p *Phase) trafficBoost() float64 {
	if p.TrafficBoost <= 0 {
		return 1
	}
	return p.TrafficBoost
}

func (p *Phase) lifeScale() float64 {
	if p.LifeScale <= 0 {
		return 1
	}
	return p.LifeScale
}

func (p *Phase) hotKeys() int {
	if p.HotKeys <= 0 {
		return 64
	}
	return p.HotKeys
}

// Steady returns a steady phase of the given duration.
func Steady(d float64) Phase {
	return Phase{Kind: PhaseSteady, Name: "steady", Duration: d}
}

// ChurnSpike returns a churn phase: boost× the arrivals at 1/boost the
// session lifetime — the active set holds level while cache turnover
// multiplies.
func ChurnSpike(d, boost float64) Phase {
	return Phase{
		Kind: PhaseChurnSpike, Name: "churn-spike", Duration: d,
		ArrivalBoost: boost, LifeScale: 1 / boost,
	}
}

// FlashCrowd returns a flash-crowd phase: boost× the arrivals, all of
// them converging on hotKeys distinct flows inside one rule's region.
func FlashCrowd(d, boost float64, hotKeys int) Phase {
	return Phase{
		Kind: PhaseFlashCrowd, Name: "flash-crowd", Duration: d,
		ArrivalBoost: boost, HotKeys: hotKeys,
	}
}

// Scan returns a cache-thrashing scan phase: boost× the arrivals, every
// session a unique never-repeated key, one packet each (LifeScale pins
// lifetimes short so the scanner doesn't linger).
func Scan(d, boost float64) Phase {
	return Phase{
		Kind: PhaseScan, Name: "scan", Duration: d,
		ArrivalBoost: boost, LifeScale: 0.25,
	}
}

// DefaultScript is the standard soak storyline: warm up steady, spike the
// churn, hit a flash crowd, run a scan, and settle back down. The total
// modeled duration is split 3:2:2:2:1.
func DefaultScript(total float64) []Phase {
	u := total / 10
	return []Phase{
		Steady(3 * u),
		ChurnSpike(2*u, 3),
		FlashCrowd(2*u, 4, 64),
		Scan(2*u, 2),
		Steady(1 * u),
	}
}

// SmokeScript is the CI-sized storyline the soak-smoke gate runs: steady,
// churn, flash crowd, settle — the phases the acceptance gate names,
// sized for a bounded wall-clock budget.
func SmokeScript(total float64) []Phase {
	u := total / 8
	return []Phase{
		Steady(3 * u),
		ChurnSpike(2*u, 3),
		FlashCrowd(2*u, 4, 32),
		Steady(1 * u),
	}
}
