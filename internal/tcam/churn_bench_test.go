package tcam

import (
	"testing"

	"difane/internal/flowspace"
)

// BenchmarkChurnInterleaved models the reactive-baseline miss storm: every
// packet installs one rule and then looks up a key, so reads race right
// behind mutations on a large table. This is the worst case for a
// copy-on-write snapshot (each op pays a rebuild) and pins the cost of
// keeping that path acceptable.
func BenchmarkChurnInterleaved(b *testing.B) {
	const n = 4096
	t := New("churn", 0, EvictNone)
	for i := 0; i < n; i++ {
		r := flowspace.Rule{
			ID: uint64(i + 1), Priority: 5,
			Match:  flowspace.MatchAll().WithExact(flowspace.FIPSrc, uint64(i)),
			Action: flowspace.Action{Kind: flowspace.ActForward},
		}
		if err := t.Insert(0, r, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
	var k flowspace.Key
	k[flowspace.FIPSrc] = uint64(n + 1) // always a miss: full-table scan
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := flowspace.Rule{
			ID: uint64(i%n + 1), Priority: 5,
			Match:  flowspace.MatchAll().WithExact(flowspace.FIPSrc, uint64(i%n)),
			Action: flowspace.Action{Kind: flowspace.ActForward},
		}
		if err := t.Insert(0, r, 0, 0); err != nil {
			b.Fatal(err)
		}
		t.Lookup(0, k, 100)
	}
}
