package core

import (
	"testing"

	"difane/internal/flowspace"
	"difane/internal/proto"
	"difane/internal/topo"
)

// ringNet builds a 6-ring with authorities at 1 and 4 and a forward-all
// policy, exact caching so every flow redirects visibly.
func ringNet(t *testing.T) (*Network, *Controller) {
	t.Helper()
	g := topo.NewGraph()
	for i := 0; i < 6; i++ {
		g.AddLink(topo.NodeID(i), topo.NodeID((i+1)%6), 0.001)
	}
	policy := []flowspace.Rule{{
		ID: 1, Priority: 1, Match: flowspace.MatchAll(),
		Action: flowspace.Action{Kind: flowspace.ActForward, Arg: 0},
	}}
	n, err := NewNetwork(g, []uint32{1, 4}, policy, NetworkConfig{Strategy: StrategyExact})
	if err != nil {
		t.Fatal(err)
	}
	return n, NewController(n)
}

func TestOnTopologyChangeRetargetsNearestReplica(t *testing.T) {
	n, c := ringNet(t)
	c.FailoverDelay = 0.05

	// Ingress 2's nearest replica is authority 1 (distance 1 vs 2).
	n.InjectPacket(0, 2, flowKey(1, 80), 100, 0)
	n.Run(0.5)
	if n.Switches[1].Stats.AuthorityHits.Load() != 1 {
		t.Fatalf("authority 1 must serve ingress 2 first: %+v", n.Switches[1].Stats.Snapshot())
	}

	// Cut links 1-2 and 0-1: authority 1 is now 3 hops from ingress 2 via
	// the long way... actually unreachable except via 0; cut both sides.
	n.Topo.SetLink(1, 2, false)
	n.Topo.SetLink(0, 1, false)
	at := c.OnTopologyChange()
	n.Run(at + 0.01)

	// A fresh flow from ingress 2 must now go to authority 4.
	n.InjectPacket(at+0.1, 2, flowKey(2, 80), 100, 0)
	n.Run(at + 1)
	if n.Switches[4].Stats.AuthorityHits.Load() != 1 {
		t.Fatalf("authority 4 must serve ingress 2 after the link failures: %+v",
			n.Switches[4].Stats.Snapshot())
	}
	if n.M.Delivered != 2 {
		t.Fatalf("delivered = %d drops=%+v", n.M.Delivered, n.M.Drops)
	}
}

func TestOnTopologyChangeNoChangeIsStable(t *testing.T) {
	n, c := ringNet(t)
	before := n.Switches[2].Table(proto.TablePartition).Rules()
	at := c.OnTopologyChange()
	n.Run(at + 0.01)
	after := n.Switches[2].Table(proto.TablePartition).Rules()
	if len(before) != len(after) {
		t.Fatalf("rule count changed: %d -> %d", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("rule %d changed without topology change:\n%v\n%v", i, before[i], after[i])
		}
	}
}

func TestPlaceAuthoritiesSpreads(t *testing.T) {
	g := topo.Linear(10, 1)
	got := PlaceAuthorities(g, 2)
	if len(got) != 2 {
		t.Fatalf("placed %v", got)
	}
	// Farthest-point from node 0 is node 9.
	if got[0] != 0 || got[1] != 9 {
		t.Fatalf("placement = %v, want [0 9]", got)
	}
	if len(PlaceAuthorities(g, 99)) != 10 {
		t.Fatal("k beyond node count must clamp")
	}
	if PlaceAuthorities(topo.NewGraph(), 3) != nil {
		t.Fatal("empty graph must place nothing")
	}
	if PlaceAuthorities(g, 0) != nil {
		t.Fatal("k=0 must place nothing")
	}
}

func TestControllerFailoverConvergenceTime(t *testing.T) {
	n, c := ringNet(t)
	c.FailoverDelay = 0.3
	n.Eng.At(1, func() {
		n.FailAuthority(1)
		at := c.OnAuthorityFailure(1)
		if at < 1.29 || at > 1.31 {
			t.Errorf("convergence at %v, want 1.3", at)
		}
	})
	n.Run(2)
}

func TestUpdatePolicyRespectsReplication(t *testing.T) {
	g := topo.NewGraph()
	for i := 0; i < 6; i++ {
		g.AddLink(topo.NodeID(i), topo.NodeID((i+1)%6), 0.001)
	}
	policy := []flowspace.Rule{{
		ID: 1, Priority: 1, Match: flowspace.MatchAll(),
		Action: flowspace.Action{Kind: flowspace.ActForward, Arg: 0},
	}}
	n, err := NewNetwork(g, []uint32{1, 3, 5}, policy, NetworkConfig{Replication: 3})
	if err != nil {
		t.Fatal(err)
	}
	c := NewController(n)
	if _, err := c.UpdatePolicy(policy); err != nil {
		t.Fatal(err)
	}
	n.Run(1)
	if got := len(n.Assignment.ReplicasFor(0)); got != 3 {
		t.Fatalf("replicas after update = %d, want 3", got)
	}
}
