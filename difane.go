// Package difane is a Go implementation of DIFANE — "Scalable Flow-Based
// Networking with DIFANE" (Yu, Rexford, Freedman, Wang; SIGCOMM 2010) —
// together with everything needed to reproduce the paper's evaluation:
// a ternary flow-space algebra, a TCAM-semantics rule table, a
// discrete-event network simulator, a wire-mode concurrent prototype, an
// Ethane/NOX-style reactive baseline, and synthetic workload generators.
//
// DIFANE keeps all packets in the data plane: the controller partitions
// the flow space across authority switches with a decision-tree algorithm;
// cache misses at ingress switches are redirected — as data packets — to
// the responsible authority switch, which both forwards the packet and
// installs wildcard-safe cache rules back at the ingress switch.
//
// # Quick start
//
//	spec := difane.CampusNetwork(1, difane.ScaleTest)
//	auths := difane.PlaceAuthorities(spec.Graph, 3)
//	net, err := difane.New(spec.Graph, auths, spec.Policy, difane.Config{})
//	if err != nil { ... }
//	flows := difane.GenerateTraffic(spec, difane.TrafficConfig{Flows: 10000, Seed: 2})
//	difane.RunTrace(net, flows, 60)
//	fmt.Println(net.M.FirstPacketDelay.Percentile(99))
//
// The deeper packages stay internal; this package re-exports the stable
// surface via type aliases, so the full method sets of the underlying
// types are available to callers.
package difane

import (
	"context"
	"io"

	"difane/internal/baseline"
	"difane/internal/core"
	"difane/internal/flowspace"
	"difane/internal/journal"
	"difane/internal/oracle"
	"difane/internal/policyio"
	"difane/internal/scencheck"
	"difane/internal/subscriber"
	"difane/internal/telemetry"
	"difane/internal/topo"
	"difane/internal/wire"
	"difane/internal/workload"
)

// --- Flow-space model --------------------------------------------------------

// Rule is a prioritized ternary rule (higher Priority wins, ties break
// toward lower ID).
type Rule = flowspace.Rule

// Match is a ternary predicate over the header tuple.
type Match = flowspace.Match

// Field is one ternary header field.
type Field = flowspace.Field

// Key is a concrete header tuple.
type Key = flowspace.Key

// Action is what a rule does with matching packets.
type Action = flowspace.Action

// FieldID names a header field.
type FieldID = flowspace.FieldID

// Header field identifiers.
const (
	FInPort  = flowspace.FInPort
	FEthSrc  = flowspace.FEthSrc
	FEthDst  = flowspace.FEthDst
	FEthType = flowspace.FEthType
	FVLAN    = flowspace.FVLAN
	FIPProto = flowspace.FIPProto
	FIPSrc   = flowspace.FIPSrc
	FIPDst   = flowspace.FIPDst
	FTPSrc   = flowspace.FTPSrc
	FTPDst   = flowspace.FTPDst
)

// Action kinds.
const (
	ActDrop     = flowspace.ActDrop
	ActForward  = flowspace.ActForward
	ActRedirect = flowspace.ActRedirect
)

// MatchAll returns the match covering the entire flow space.
func MatchAll() Match { return flowspace.MatchAll() }

// Evaluate returns the highest-priority rule matching k, as the reference
// single-table semantics.
func Evaluate(rules []Rule, k Key) (Rule, bool) { return flowspace.EvalTable(rules, k) }

// --- Topology ----------------------------------------------------------------

// Graph is a switch-level topology.
type Graph = topo.Graph

// NodeID identifies a switch in a Graph.
type NodeID = topo.NodeID

// NewGraph returns an empty topology.
func NewGraph() *Graph { return topo.NewGraph() }

// LinearTopology builds a chain of n switches.
func LinearTopology(n int, latency float64) *Graph { return topo.Linear(n, latency) }

// CampusTopology builds a three-tier campus topology, returning the graph
// and the access-layer switches.
func CampusTopology(cores, distPerCore, accessPerDist int, lat float64) (*Graph, []NodeID) {
	return topo.Campus(cores, distPerCore, accessPerDist, lat)
}

// --- DIFANE ------------------------------------------------------------------

// Config tunes a simulated DIFANE deployment.
type Config = core.NetworkConfig

// PartitionConfig tunes the flow-space partitioner.
type PartitionConfig = core.PartitionConfig

// Partition is one flow-space region with its clipped rules.
type Partition = core.Partition

// Assignment maps partitions onto authority switches.
type Assignment = core.Assignment

// Network is a simulated DIFANE deployment.
type Network = core.Network

// Controller is DIFANE's central controller.
type Controller = core.Controller

// CacheStrategy picks the cache-rule generation scheme.
type CacheStrategy = core.CacheStrategy

// Measurements aggregates a run's recorded statistics.
type Measurements = core.Measurements

// EvictionChoice selects the ingress-cache eviction policy.
type EvictionChoice = core.EvictionChoice

// Cache eviction policies.
const (
	EvictLRU  = core.EvictDefaultLRU
	EvictLFU  = core.EvictLFU
	EvictNone = core.EvictNone
	// EvictCostAware scores victims by predicted miss cost and enables
	// per-region idle-timeout adaptation and cover-rule aggregation.
	EvictCostAware = core.EvictCostAware
)

// Cache-rule generation strategies.
const (
	StrategyCover     = core.StrategyCover
	StrategyDependent = core.StrategyDependent
	StrategyExact     = core.StrategyExact
)

// New builds a simulated DIFANE network over the topology with the given
// authority switches and global policy.
func New(g *Graph, authorities []uint32, policy []Rule, cfg Config) (*Network, error) {
	return core.NewNetwork(g, authorities, policy, cfg)
}

// NewController attaches a controller to a network.
func NewController(n *Network) *Controller { return core.NewController(n) }

// BuildPartitions runs the decision-tree partitioner.
func BuildPartitions(rules []Rule, cfg PartitionConfig) []Partition {
	return core.BuildPartitions(rules, cfg)
}

// Assign distributes partitions across authority switches.
func Assign(parts []Partition, authorities []uint32) (Assignment, error) {
	return core.Assign(parts, authorities)
}

// PlaceAuthorities picks k well-spread authority switches.
func PlaceAuthorities(g *Graph, k int) []uint32 { return core.PlaceAuthorities(g, k) }

// --- Crash recovery ----------------------------------------------------------

// ControllerState is the controller state persisted to the journal: the
// fencing epoch, policy, assignment, and generation counters a restarted
// controller needs to resume without churning the network.
type ControllerState = core.ControllerState

// RecoveryReport summarizes what NewControllerFromJournal had to repair.
type RecoveryReport = core.RecoveryReport

// Journal is the write-ahead log + snapshot store backing controller
// crash recovery.
type Journal = journal.Journal

// OpenJournal opens (or creates) a journal directory.
func OpenJournal(dir string) (*Journal, error) { return journal.Open(dir) }

// NewControllerWithJournal attaches a controller that persists its state
// to a journal in dir on every mutation.
func NewControllerWithJournal(n *Network, dir string) (*Controller, error) {
	return core.NewControllerWithJournal(n, dir)
}

// NewControllerFromJournal recovers a controller from a journal written
// by a previous incarnation: state is replayed, the epoch is bumped to
// fence the dead controller, and the live switch tables are reconciled
// against the recovered assignment instead of blindly reinstalled.
func NewControllerFromJournal(n *Network, dir string) (*Controller, RecoveryReport, error) {
	return core.NewControllerFromJournal(n, dir)
}

// LoadState replays a journal directory without touching any network.
func LoadState(dir string) (ControllerState, bool, error) { return core.LoadState(dir) }

// CompactPolicy removes shadowed (dead) rules without changing semantics.
func CompactPolicy(rules []Rule) (kept []Rule, removedIDs []uint64) {
	return core.CompactPolicy(rules)
}

// ParsePolicy reads a policy in the policyio text format (see
// internal/policyio's package comment for the grammar).
func ParsePolicy(r io.Reader) ([]Rule, error) { return policyio.Parse(r) }

// WritePolicy serializes a policy in the text format ParsePolicy reads.
func WritePolicy(w io.Writer, rules []Rule) error { return policyio.Write(w, rules) }

// --- Baseline ----------------------------------------------------------------

// BaselineConfig tunes the Ethane/NOX-style reactive baseline.
type BaselineConfig = baseline.Config

// BaselineNetwork is a reactive-controller deployment.
type BaselineNetwork = baseline.Network

// NewBaseline builds the reactive baseline over the topology.
func NewBaseline(g *Graph, policy []Rule, cfg BaselineConfig) (*BaselineNetwork, error) {
	return baseline.NewNetwork(g, policy, cfg)
}

// --- Workloads ---------------------------------------------------------------

// Spec bundles a synthetic evaluation network.
type Spec = workload.Spec

// Flow is one generated traffic flow.
type Flow = workload.Flow

// TrafficConfig tunes the trace generator.
type TrafficConfig = workload.TrafficConfig

// ACLConfig tunes the ClassBench-style policy generator.
type ACLConfig = workload.ACLConfig

// NetworkScale shrinks canonical networks for tests vs benches.
type NetworkScale = workload.NetworkScale

// Canonical scales.
const (
	ScaleTest  = workload.ScaleTest
	ScaleBench = workload.ScaleBench
)

// The four canonical evaluation networks.
func CampusNetwork(seed int64, s NetworkScale) *Spec { return workload.CampusNetwork(seed, s) }

// VPNNetwork approximates the provider VPN network.
func VPNNetwork(seed int64, s NetworkScale) *Spec { return workload.VPNNetwork(seed, s) }

// IPTVNetwork approximates the IPTV network.
func IPTVNetwork(seed int64, s NetworkScale) *Spec { return workload.IPTVNetwork(seed, s) }

// ISPNetwork approximates the ISP backbone.
func ISPNetwork(seed int64, s NetworkScale) *Spec { return workload.ISPNetwork(seed, s) }

// AllNetworks returns all four canonical networks.
func AllNetworks(seed int64, s NetworkScale) []*Spec { return workload.AllNetworks(seed, s) }

// ClassBenchLike generates an ACL-shaped policy.
func ClassBenchLike(cfg ACLConfig) []Rule { return workload.ClassBenchLike(cfg) }

// GenerateTraffic builds a Zipf-popularity flow trace over a spec.
func GenerateTraffic(spec *Spec, cfg TrafficConfig) []Flow {
	return workload.GenerateTraffic(spec, cfg)
}

// UniformTraffic builds an all-new-flows trace (worst case for caching).
func UniformTraffic(spec *Spec, cfg TrafficConfig) []Flow {
	return workload.UniformTraffic(spec, cfg)
}

// WriteTrace archives a flow trace in a replayable text format.
func WriteTrace(w io.Writer, flows []Flow) error { return workload.WriteTrace(w, flows) }

// ReadTrace loads a trace written by WriteTrace.
func ReadTrace(r io.Reader) ([]Flow, error) { return workload.ReadTrace(r) }

// --- Wire mode ---------------------------------------------------------------

// Cluster is a wire-mode DIFANE deployment (real goroutines and framed
// control connections).
type Cluster = wire.Cluster

// ClusterConfig sizes a wire-mode deployment.
type ClusterConfig = wire.ClusterConfig

// Delivery reports a packet reaching its egress in wire mode.
type Delivery = wire.Delivery

// HeartbeatConfig tunes wire mode's controller↔switch failure detector.
type HeartbeatConfig = wire.HeartbeatConfig

// BFDConfig tunes wire mode's BFD-style fast failure detector (the
// heartbeat remains as a coarse fallback).
type BFDConfig = wire.BFDConfig

// HAConfig sizes wire mode's replicated controller: Replicas ≥ 2 turns on
// journal log shipping and automatic leader election.
type HAConfig = wire.HAConfig

// HAStatus is the failure-detection and controller-HA report served at
// the telemetry endpoint's /ha and rendered by `difanectl ha`.
type HAStatus = wire.HAStatus

// RetryPolicy bounds wire mode's control-plane retries (reconnect backoff,
// FlowMod installs).
type RetryPolicy = wire.RetryPolicy

// OverloadConfig tunes wire mode's miss-storm protection (token-bucket
// redirect/install budgets) and the controller-outage event buffer.
type OverloadConfig = wire.OverloadConfig

// FabricConfig is wire mode's single data-plane options block: the
// burst/ring geometry of the in-process fast path (Burst, RingDepth) and
// the optional batched loopback-TCP carrier (UseTCP, with
// FlushInterval/FlushBytes tuning the write coalescing). It replaces the
// former DataFabricConfig (ClusterConfig.Data is now ClusterConfig.Fabric).
type FabricConfig = wire.FabricConfig

// WireDeployment adapts a wire-mode Cluster to the Deployment interface.
type WireDeployment = wire.Deployment

// NewCluster builds and starts a wire-mode cluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return wire.NewCluster(cfg) }

// NewClusterContext is NewCluster with a caller-controlled lifetime.
func NewClusterContext(ctx context.Context, cfg ClusterConfig) (*Cluster, error) {
	return wire.NewClusterContext(ctx, cfg)
}

// NewWireDeployment builds a wire-mode cluster and wraps it as a
// Deployment, so traces drive it like the simulated backends.
func NewWireDeployment(cfg ClusterConfig) (*WireDeployment, error) {
	return wire.NewDeployment(cfg)
}

// --- Telemetry ---------------------------------------------------------------

// TelemetryConfig tunes a deployment's observability layer: whether the
// flight recorder starts enabled, the per-node trace ring capacity, and
// the optional HTTP endpoint serving /metrics, /vars, /trace, /status,
// and /debug/pprof.
type TelemetryConfig = wire.TelemetryConfig

// TelemetrySnapshot is one scrape of a deployment's metric registry plus
// its flight-recorder accounting (zero for the simulated backends, which
// have no recorder).
type TelemetrySnapshot = telemetry.Snapshot

// TraceEvent is one fixed-size flight-recorder record: a packet verdict,
// redirect, rule install/evict, failover, or epoch transition.
type TraceEvent = telemetry.Event

// TraceEventKind identifies what a TraceEvent records.
type TraceEventKind = telemetry.EventKind

// TraceFilter selects flight-recorder events by node, kind, flow, and
// time.
type TraceFilter = telemetry.Filter

// MetricRegistry is the pull-model registry behind /metrics and /vars.
type MetricRegistry = telemetry.Registry

// TraceNode wraps a switch ID for TraceFilter.Node (nil means any node).
func TraceNode(id uint32) *uint32 { return telemetry.Node(id) }

// Journey is one sampled packet's end-to-end story: its spans from every
// node it touched, joined on a shared trace ID and told in causal order.
type Journey = telemetry.Journey

// JourneyFilter selects assembled journeys by flow, trace ID, and
// outcome, and controls ordering and truncation.
type JourneyFilter = telemetry.JourneyFilter

// JourneyStats classifies one assembly pass — complete, gapped (a trace
// ring wrapped over the window), in-flight, unexplained — and yields the
// completeness ratio the soak gate enforces.
type JourneyStats = telemetry.JourneyStats

// EpochTimeline is one policy update's convergence window: first fenced
// FlowMod to quiescence, with the installs, withdrawals, rejects, and
// disturbed traffic attributed to it.
type EpochTimeline = telemetry.EpochTimeline

// HealthRule is one declarative SLO judged by the runtime watchdog over
// windowed metric deltas.
type HealthRule = telemetry.HealthRule

// HealthConfig tunes the default watchdog rules' thresholds and floors.
type HealthConfig = telemetry.HealthConfig

// RuleStatus is a watchdog rule's latest verdict: firing, value, detail,
// and since when.
type RuleStatus = telemetry.RuleStatus

// HealthSummary aggregates the watchdog's state — evals, firing, and
// critical counts; soak runs fail on a critical rule still firing.
type HealthSummary = telemetry.HealthSummary

// --- Drivers -----------------------------------------------------------------

// Deployment is the uniform driving surface of every backend — the
// simulated DIFANE network, the reactive baseline, and wire mode — letting
// traces and tools drive any of them interchangeably: inject packets, run
// to a horizon, read the measurements, release the resources.
//
// For the simulated backends, `at` is virtual time and Run drives the
// event loop to the horizon; in wire mode, injections happen immediately
// in real time and Run waits (at most horizon seconds) for in-flight
// packets to reach a terminal point. Close is idempotent.
//
// Telemetry returns one scrape of the backend's metric registry (the
// shared difane_* schema) plus flight-recorder accounting; the simulated
// backends report zero trace state, wire mode reports the live recorder.
type Deployment interface {
	InjectPacket(at float64, ingress uint32, k Key, size int, seq uint64)
	InjectBatch(batch []PacketIn)
	Run(horizon float64)
	Measurements() *Measurements
	Telemetry() *TelemetrySnapshot
	Close() error
}

// PacketIn is one packet handed to a Deployment: InjectPacket's argument
// tuple in struct form, so callers can hand whole bursts to a backend in
// one InjectBatch call — in wire mode a run of same-ingress packets
// becomes one ring push under one lock.
type PacketIn = core.PacketIn

// runTraceBatch sizes the chunks RunTrace hands to InjectBatch.
const runTraceBatch = 256

// RunTrace injects every packet of every flow into the network in bursts
// and runs the simulation until horizon seconds.
func RunTrace(n Deployment, flows []Flow, horizon float64) {
	batch := make([]PacketIn, 0, runTraceBatch)
	for _, f := range flows {
		for p := 0; p < f.Packets; p++ {
			at := f.Start + float64(p)*f.Gap
			if at > horizon {
				break
			}
			batch = append(batch, PacketIn{
				At: at, Ingress: f.Ingress, Key: f.Key, Size: f.Size, Seq: uint64(p),
			})
			if len(batch) == cap(batch) {
				n.InjectBatch(batch)
				batch = batch[:0]
			}
		}
	}
	n.InjectBatch(batch)
	n.Run(horizon)
}

// --- Differential verification -----------------------------------------------

// Verdict is the reference oracle's authoritative answer for one packet:
// evaluate the raw prioritized policy with a single linear scan, no DIFANE
// machinery involved.
type Verdict = oracle.Verdict

// EvaluatePolicy runs the reference single-table semantics over a policy.
func EvaluatePolicy(policy []Rule, k Key) Verdict { return oracle.Evaluate(policy, k) }

// Scenario is a seeded, deterministic differential-test scenario: a
// topology, a policy, and a schedule of packets, policy updates, and
// faults.
type Scenario = scencheck.Scenario

// ScenarioConfig tunes scenario generation.
type ScenarioConfig = scencheck.Config

// CheckOptions selects which backends a differential check replays.
type CheckOptions = scencheck.Options

// CheckResult is the outcome of one differential check.
type CheckResult = scencheck.Result

// GenerateScenario derives a deterministic scenario from a seed.
func GenerateScenario(seed int64, cfg ScenarioConfig) Scenario {
	return scencheck.Generate(seed, cfg)
}

// CheckScenario replays a scenario through the selected deployments and
// diffs every packet verdict against the reference oracle, plus the
// accounting, epoch-fencing, cache-soundness, and convergence invariants.
func CheckScenario(sc Scenario, opt CheckOptions) *CheckResult { return scencheck.Check(sc, opt) }

// CheckSeed generates and checks one seed.
func CheckSeed(seed int64, cfg ScenarioConfig, opt CheckOptions) *CheckResult {
	return scencheck.CheckSeed(seed, cfg, opt)
}

// ShrinkScenario greedily minimizes a failing scenario while it keeps
// failing, for compact bug repros.
func ShrinkScenario(sc Scenario, opt CheckOptions) Scenario { return scencheck.Shrink(sc, opt) }

// --- Subscriber-scale soaking -------------------------------------------------

// SubscriberConfig tunes the BNG-style session engine: population size,
// Zipf popularity, Poisson churn, host mobility, and diurnal swings.
type SubscriberConfig = subscriber.Config

// SubscriberEngine streams a modeled subscriber population — arrivals,
// departures, moves, and per-session traffic — as deterministic packet
// batches.
type SubscriberEngine = subscriber.Engine

// SoakPhase is one segment of a soak script (steady, churn spike, flash
// crowd, or cache-thrashing scan).
type SoakPhase = subscriber.Phase

// SoakConfig tunes a soak run: the engine, the phase script, the verdict
// sampling rate, and the wall-clock budget.
type SoakConfig = subscriber.SoakConfig

// SoakSetup describes the deterministic soak test-bed (switch chain,
// policy size, cache capacity).
type SoakSetup = subscriber.Setup

// SoakReport is a finished soak: phase summaries, telemetry time series,
// sampled-verdict divergences, and the accounting audit.
type SoakReport = subscriber.Report

// NewSubscriberEngine builds a session engine over a spec's policy and
// edge switches.
func NewSubscriberEngine(spec *Spec, cfg SubscriberConfig, phases []SoakPhase) *SubscriberEngine {
	return subscriber.NewEngine(spec, cfg, phases)
}

// RunSoak streams the subscriber workload through a live wire deployment,
// sampling ~1-in-N packet verdicts against the oracle and reporting cache
// miss rate, TCAM occupancy, and redirect load as time series per phase.
func RunSoak(d *WireDeployment, spec *Spec, cfg SoakConfig) (*SoakReport, error) {
	return subscriber.RunSoak(d, spec, cfg)
}

// DefaultSoakScript is the standard soak storyline: steady → churn spike
// → flash crowd → scan → settle, over the given modeled duration.
func DefaultSoakScript(total float64) []SoakPhase { return subscriber.DefaultScript(total) }

// SmokeSoakScript is the CI-sized storyline: steady, churn, flash crowd,
// settle.
func SmokeSoakScript(total float64) []SoakPhase { return subscriber.SmokeScript(total) }
