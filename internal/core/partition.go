// Package core implements the DIFANE system itself: the controller's
// decision-tree flow-space partitioner, authority-switch rule handling
// with wildcard-safe cache-rule generation, ingress cache management, and
// the event-driven network binding them together over the simulator.
package core

import (
	"fmt"
	"sort"

	"difane/internal/flowspace"
)

// Partition is one region of flow space with the policy rules that can
// match inside it, clipped to the region and kept in TCAM order. A
// partition is what the controller installs into one authority switch.
type Partition struct {
	// Region is the flow-space cell this partition owns.
	Region flowspace.Match
	// Rules are the policy rules overlapping Region, clipped to it.
	Rules []flowspace.Rule
}

// PartitionConfig tunes the decision-tree partitioner.
type PartitionConfig struct {
	// MaxRulesPerPartition is the leaf capacity: a region holding at most
	// this many rules stops splitting. Must be ≥ 1.
	MaxRulesPerPartition int
	// MaxPartitions optionally bounds the number of leaves (0 = unbounded).
	// When the bound is hit, remaining oversized regions become leaves.
	MaxPartitions int
	// CutFields are the dimensions the tree may cut on. Defaults to
	// ip_src, ip_dst, tp_dst, eth_type — the fields enterprise policies
	// actually structure on.
	CutFields []flowspace.FieldID
}

// DefaultCutFields are the dimensions the partitioner cuts on by default.
var DefaultCutFields = []flowspace.FieldID{
	flowspace.FIPSrc, flowspace.FIPDst, flowspace.FTPDst, flowspace.FEthType,
}

// DefaultMaxRulesPerPartition caps a partition at roughly what a hardware
// TCAM bank holds when no explicit leaf capacity is configured.
const DefaultMaxRulesPerPartition = 4096

func (c PartitionConfig) withDefaults() PartitionConfig {
	if c.MaxRulesPerPartition < 1 {
		c.MaxRulesPerPartition = DefaultMaxRulesPerPartition
	}
	if len(c.CutFields) == 0 {
		c.CutFields = DefaultCutFields
	}
	return c
}

// BuildPartitions splits the flow space into regions whose overlapping rule
// sets fit the leaf capacity, duplicating (splitting) rules that span a
// cut — the paper's decision-tree partitioning. Rules may be in any order;
// the returned partitions carry their rules in TCAM order.
func BuildPartitions(rules []flowspace.Rule, cfg PartitionConfig) []Partition {
	cfg = cfg.withDefaults()
	sorted := append([]flowspace.Rule(nil), rules...)
	flowspace.SortRules(sorted)

	type node struct {
		region flowspace.Match
		rules  []flowspace.Rule // overlapping, TCAM order
	}
	var leaves []Partition
	stack := []node{{region: flowspace.MatchAll(), rules: sorted}}

	emit := func(n node) {
		clipped := make([]flowspace.Rule, 0, len(n.rules))
		for _, r := range n.rules {
			m, ok := r.Match.Intersect(n.region)
			if !ok {
				continue
			}
			r.Match = m
			clipped = append(clipped, r)
		}
		leaves = append(leaves, Partition{Region: n.region, Rules: clipped})
	}

	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		if len(n.rules) <= cfg.MaxRulesPerPartition ||
			(cfg.MaxPartitions > 0 && len(leaves)+len(stack)+2 > cfg.MaxPartitions) {
			emit(n)
			continue
		}
		field, bit, ok := chooseCut(n.region, n.rules, cfg.CutFields)
		if !ok {
			emit(n) // no cut separates anything further
			continue
		}
		zero, one := cutRegion(n.region, field, bit)
		zn := node{region: zero, rules: overlapping(n.rules, zero)}
		on := node{region: one, rules: overlapping(n.rules, one)}
		stack = append(stack, on, zn)
	}
	return leaves
}

func overlapping(rules []flowspace.Rule, region flowspace.Match) []flowspace.Rule {
	out := make([]flowspace.Rule, 0, len(rules)/2+1)
	for _, r := range rules {
		if r.Match.Overlaps(region) {
			out = append(out, r)
		}
	}
	return out
}

// cutRegion splits region on one wildcard bit of one field.
func cutRegion(region flowspace.Match, f flowspace.FieldID, bit uint) (zero, one flowspace.Match) {
	zero, one = region, region
	mask := uint64(1) << bit
	fd := region.Fields[f]
	fd.Mask |= mask

	z := fd
	z.Value &^= mask
	zero.Fields[f] = z

	o := fd
	o.Value |= mask
	one.Fields[f] = o
	return zero, one
}

// chooseCut greedily picks the (field, bit) whose cut best balances the two
// halves, breaking ties toward less rule duplication. Only the highest
// free bit of each candidate field is considered — cutting high bits first
// mirrors prefix structure and keeps regions expressible as single ternary
// matches.
func chooseCut(region flowspace.Match, rules []flowspace.Rule, fields []flowspace.FieldID) (flowspace.FieldID, uint, bool) {
	bestField := flowspace.FieldID(-1)
	var bestBit uint
	bestMax, bestSum := len(rules)+1, 0
	for _, f := range fields {
		w := f.Width()
		fd := region.Fields[f]
		// Highest wildcard bit of this field inside the region.
		var bit int = -1
		for i := int(w) - 1; i >= 0; i-- {
			if fd.Mask&(1<<uint(i)) == 0 {
				bit = i
				break
			}
		}
		if bit < 0 {
			continue
		}
		zero, one := cutRegion(region, f, uint(bit))
		l, r := 0, 0
		for _, rule := range rules {
			if rule.Match.Overlaps(zero) {
				l++
			}
			if rule.Match.Overlaps(one) {
				r++
			}
		}
		if l == len(rules) && r == len(rules) {
			continue // cut separates nothing
		}
		mx := l
		if r > mx {
			mx = r
		}
		if mx < bestMax || (mx == bestMax && l+r < bestSum) {
			bestField, bestBit, bestMax, bestSum = f, uint(bit), mx, l+r
		}
	}
	if bestField < 0 {
		return 0, 0, false
	}
	return bestField, bestBit, true
}

// TotalEntries sums the TCAM entries across partitions — the paper's
// rule-splitting overhead metric's numerator.
func TotalEntries(parts []Partition) int {
	n := 0
	for _, p := range parts {
		n += len(p.Rules)
	}
	return n
}

// Assignment maps partitions onto authority switches.
type Assignment struct {
	Partitions []Partition
	// Primary[i] and Backup[i] are the authority switches serving
	// Partitions[i]. Backup equals Primary when only one authority exists.
	Primary []uint32
	Backup  []uint32
	// Replicas[i], when non-nil, lists every authority switch hosting
	// Partitions[i] (including Primary and Backup). Higher replication
	// trades TCAM for shorter detours — the stretch experiment's knob.
	Replicas [][]uint32
}

// FailoverList returns the ordered list of authority switches an ingress
// switch should try for partition i: the primary first, then the backup,
// then any further replicas. The list never contains duplicates and always
// holds at least the primary. Wire-mode ingress switches walk this list
// when the failure detector marks a host dead.
func (a Assignment) FailoverList(i int) []uint32 {
	out := []uint32{a.Primary[i]}
	add := func(id uint32) {
		for _, h := range out {
			if h == id {
				return
			}
		}
		out = append(out, id)
	}
	add(a.Backup[i])
	if a.Replicas != nil {
		for _, id := range a.Replicas[i] {
			add(id)
		}
	}
	return out
}

// PartitionOfRuleID maps a partition-table rule ID (as generated by
// PartitionRules with the given idBase) back to its partition index.
func (a Assignment) PartitionOfRuleID(idBase, ruleID uint64) (int, bool) {
	if ruleID < idBase {
		return 0, false
	}
	i := int((ruleID - idBase) / 2)
	if i >= len(a.Partitions) {
		return 0, false
	}
	return i, true
}

// ReplicasFor returns all hosts of partition i (at least the primary).
func (a Assignment) ReplicasFor(i int) []uint32 {
	if a.Replicas != nil && len(a.Replicas[i]) > 0 {
		return a.Replicas[i]
	}
	if a.Backup[i] != a.Primary[i] {
		return []uint32{a.Primary[i], a.Backup[i]}
	}
	return []uint32{a.Primary[i]}
}

// Assign distributes partitions across the given authority switches,
// balancing per-switch TCAM load greedily (largest partition first onto
// the least-loaded switch). Backups are chosen as the next-least-loaded
// distinct switch.
func Assign(parts []Partition, authorities []uint32) (Assignment, error) {
	if len(authorities) == 0 {
		return Assignment{}, fmt.Errorf("core: no authority switches")
	}
	a := Assignment{
		Partitions: parts,
		Primary:    make([]uint32, len(parts)),
		Backup:     make([]uint32, len(parts)),
	}
	order := make([]int, len(parts))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		px, py := len(parts[order[x]].Rules), len(parts[order[y]].Rules)
		if px != py {
			return px > py
		}
		return order[x] < order[y]
	})
	load := make(map[uint32]int, len(authorities))
	for _, id := range authorities {
		load[id] = 0
	}
	leastLoaded := func(exclude uint32, useExclude bool) uint32 {
		best := authorities[0]
		bestLoad := -1
		for _, id := range authorities {
			if useExclude && id == exclude {
				continue
			}
			if bestLoad < 0 || load[id] < bestLoad || (load[id] == bestLoad && id < best) {
				best, bestLoad = id, load[id]
			}
		}
		return best
	}
	for _, i := range order {
		p := leastLoaded(0, false)
		a.Primary[i] = p
		load[p] += len(parts[i].Rules)
		if len(authorities) > 1 {
			b := leastLoaded(p, true)
			a.Backup[i] = b
			// Backup replicas occupy TCAM too; weigh them at half so
			// primaries dominate placement.
			load[b] += len(parts[i].Rules) / 2
		} else {
			a.Backup[i] = p
		}
	}
	return a, nil
}

// LoadPerAuthority returns the number of primary-partition TCAM entries
// each authority switch carries under the assignment.
func (a Assignment) LoadPerAuthority() map[uint32]int {
	out := make(map[uint32]int)
	for i, p := range a.Partitions {
		out[a.Primary[i]] += len(p.Rules)
	}
	return out
}

// PartitionRulePriority bands for the partition table: primary redirect
// rules sit above backup redirect rules so backups only match once the
// primaries are deleted.
const (
	PriPartitionPrimary = 100
	PriPartitionBackup  = 50
)

// PartitionRules generates the redirect rules every switch's partition
// table receives: for each partition, a primary rule pointing at its
// authority switch and a lower-priority backup rule pointing at the backup.
// Rule IDs are deterministic: base+2i for primary, base+2i+1 for backup.
func (a Assignment) PartitionRules(idBase uint64) []flowspace.Rule {
	var out []flowspace.Rule
	for i, p := range a.Partitions {
		out = append(out, flowspace.Rule{
			ID:       idBase + uint64(2*i),
			Priority: PriPartitionPrimary,
			Match:    p.Region,
			Action:   flowspace.Action{Kind: flowspace.ActRedirect, Arg: a.Primary[i]},
		})
		if a.Backup[i] != a.Primary[i] {
			out = append(out, flowspace.Rule{
				ID:       idBase + uint64(2*i) + 1,
				Priority: PriPartitionBackup,
				Match:    p.Region,
				Action:   flowspace.Action{Kind: flowspace.ActRedirect, Arg: a.Backup[i]},
			})
		}
	}
	return out
}

// AssignWithReplication distributes partitions like Assign but places each
// partition at r distinct authority switches (clamped to the authority
// count), balancing load greedily. Replicas[i][0] is the primary.
func AssignWithReplication(parts []Partition, authorities []uint32, r int) (Assignment, error) {
	a, err := Assign(parts, authorities)
	if err != nil {
		return Assignment{}, err
	}
	if r < 2 {
		r = 2
	}
	if r > len(authorities) {
		r = len(authorities)
	}
	a.Replicas = make([][]uint32, len(parts))
	load := make(map[uint32]int, len(authorities))
	for i := range parts {
		hosts := []uint32{a.Primary[i]}
		load[a.Primary[i]] += len(parts[i].Rules)
		for len(hosts) < r {
			best := uint32(0)
			bestLoad := -1
			for _, id := range authorities {
				taken := false
				for _, h := range hosts {
					if h == id {
						taken = true
						break
					}
				}
				if taken {
					continue
				}
				if bestLoad < 0 || load[id] < bestLoad || (load[id] == bestLoad && id < best) {
					best, bestLoad = id, load[id]
				}
			}
			if bestLoad < 0 {
				break
			}
			hosts = append(hosts, best)
			load[best] += len(parts[i].Rules)
		}
		a.Replicas[i] = hosts
		if len(hosts) > 1 {
			a.Backup[i] = hosts[1]
		}
	}
	return a, nil
}

// ReplicateAll is the naive comparison partitioner: every authority switch
// carries the entire rule set (one partition covering all of flow space,
// replicated). Used by the ablation bench.
func ReplicateAll(rules []flowspace.Rule, authorities []uint32) Assignment {
	sorted := append([]flowspace.Rule(nil), rules...)
	flowspace.SortRules(sorted)
	parts := make([]Partition, len(authorities))
	a := Assignment{
		Primary: make([]uint32, len(authorities)),
		Backup:  make([]uint32, len(authorities)),
	}
	for i, id := range authorities {
		parts[i] = Partition{Region: flowspace.MatchAll(), Rules: sorted}
		a.Primary[i] = id
		a.Backup[i] = id
	}
	a.Partitions = parts
	return a
}
