package proto

import (
	"bytes"
	"testing"
)

// FuzzReadMessage feeds arbitrary byte streams to the frame decoder: no
// panics, no unbounded allocation (the MaxFrame guard), and anything
// accepted must re-encode and re-decode to the same message type.
func FuzzReadMessage(f *testing.F) {
	for _, m := range allMessages() {
		f.Add(Encode(nil, m))
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 99})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := ReadMessage(bytes.NewReader(data))
		if err != nil {
			return
		}
		out := Encode(nil, msg)
		again, err := ReadMessage(bytes.NewReader(out))
		if err != nil {
			t.Fatalf("re-decode of accepted message failed: %v", err)
		}
		if again.Type() != msg.Type() {
			t.Fatalf("type changed across round trip: %v vs %v", again.Type(), msg.Type())
		}
	})
}
