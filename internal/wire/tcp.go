package wire

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"difane/internal/proto"
)

// transport abstracts how a switch's control connection to the controller
// is (re)established. connect returns the two ends of a fresh connection
// for the node: the switch side and the controller side. Reconnection
// after a control-plane loss goes through the same path.
type transport interface {
	connect(ctx context.Context, id uint32) (switchSide, controllerSide net.Conn, err error)
	close()
}

// pipeTransport is the in-process default: both ends of a net.Pipe.
type pipeTransport struct{}

func (pipeTransport) connect(context.Context, uint32) (net.Conn, net.Conn, error) {
	a, b := net.Pipe()
	return a, b, nil
}

func (pipeTransport) close() {}

// helloTimeout bounds the identification handshake on a freshly accepted
// or dialed control connection.
const helloTimeout = 5 * time.Second

// tcpTransport establishes control connections over real loopback TCP: the
// controller listens for the cluster's whole lifetime, every switch dials
// and identifies itself with a Hello, and the accepted connection becomes
// the controller side. The listener staying up is what makes reconnection
// after a control-connection loss possible.
type tcpTransport struct {
	ln net.Listener

	mu       sync.Mutex
	closed   bool
	pending  map[uint32]chan net.Conn
	inflight map[net.Conn]bool

	wg sync.WaitGroup
}

func newTCPTransport() (*tcpTransport, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	t := &tcpTransport{
		ln:       ln,
		pending:  make(map[uint32]chan net.Conn),
		inflight: make(map[net.Conn]bool),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

func (t *tcpTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.inflight[conn] = true
		t.wg.Add(1)
		t.mu.Unlock()
		go t.identify(conn)
	}
}

// identify reads the Hello a dialing switch sends and hands the accepted
// connection to the connect call waiting for that node. Connections that
// present no valid hello within the deadline, or that nobody is waiting
// for, are closed — nothing leaks on partial failure.
func (t *tcpTransport) identify(conn net.Conn) {
	defer t.wg.Done()
	_ = conn.SetReadDeadline(time.Now().Add(helloTimeout))
	msg, err := proto.ReadMessage(conn)
	_ = conn.SetReadDeadline(time.Time{})

	t.mu.Lock()
	delete(t.inflight, conn)
	hello, ok := msg.(*proto.Hello)
	if err != nil || !ok {
		t.mu.Unlock()
		conn.Close()
		return
	}
	// Hand off under the lock: either the waiter is still registered and
	// receives the conn (buffered send cannot block), or it has already
	// given up and we close — no window where the conn is orphaned.
	ch := t.pending[hello.Node]
	delete(t.pending, hello.Node)
	if ch != nil {
		ch <- conn
	}
	t.mu.Unlock()
	if ch == nil {
		conn.Close()
	}
}

func (t *tcpTransport) connect(ctx context.Context, id uint32) (net.Conn, net.Conn, error) {
	ch := make(chan net.Conn, 1)
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, nil, fmt.Errorf("wire: transport closed")
	}
	if _, dup := t.pending[id]; dup {
		t.mu.Unlock()
		return nil, nil, fmt.Errorf("wire: concurrent connect for node %d", id)
	}
	t.pending[id] = ch
	t.mu.Unlock()

	// abandon deregisters the waiter and reaps a conn that identify may
	// have delivered in the meantime.
	abandon := func() {
		t.mu.Lock()
		if t.pending[id] == ch {
			delete(t.pending, id)
		}
		t.mu.Unlock()
		select {
		case c := <-ch:
			c.Close()
		default:
		}
	}

	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", t.ln.Addr().String())
	if err != nil {
		abandon()
		return nil, nil, err
	}
	if err := proto.WriteMessage(conn, &proto.Hello{Node: id, Role: RoleForNode}); err != nil {
		conn.Close()
		abandon()
		return nil, nil, err
	}
	select {
	case peer := <-ch:
		return conn, peer, nil
	case <-ctx.Done():
		conn.Close()
		abandon()
		return nil, nil, ctx.Err()
	case <-time.After(helloTimeout):
		conn.Close()
		abandon()
		return nil, nil, fmt.Errorf("wire: control handshake timeout for node %d", id)
	}
}

// close shuts the listener and every half-established connection, then
// waits for the accept and identify goroutines to exit.
func (t *tcpTransport) close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	for conn := range t.inflight {
		conn.Close()
	}
	for id, ch := range t.pending {
		delete(t.pending, id)
		select {
		case c := <-ch:
			c.Close()
		default:
		}
	}
	t.mu.Unlock()
	t.ln.Close()
	t.wg.Wait()
}

// RoleForNode is the role switches announce in their TCP hello.
const RoleForNode = proto.RoleIngress
