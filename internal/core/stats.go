package core

import (
	"sort"

	"difane/internal/flowspace"
	"difane/internal/proto"
)

// RuleCounters are the aggregated counters for one policy rule.
type RuleCounters struct {
	RuleID  uint64
	Packets uint64
	Bytes   uint64
}

// PolicyCounters aggregates per-policy-rule packet/byte counters across
// the whole deployment: authority-table hits plus every ingress-cache hit,
// with generated cache rules folded back onto the policy rule they stand
// for via the authority's origin tracking. This is the transparency
// property — a controller asking for rule counters sees the same numbers
// it would have seen with the whole policy in one giant TCAM.
//
// Note the one semantic caveat, faithful to the system: a packet that is
// redirected is counted at the authority switch, and subsequent packets of
// the region count at the ingress cache, so no packet is double-counted.
func (n *Network) PolicyCounters() []RuleCounters {
	agg := make(map[uint64]*RuleCounters)
	add := func(origin uint64, pkts, bytes uint64) {
		origin = canonicalPolicyID(origin)
		rc, ok := agg[origin]
		if !ok {
			rc = &RuleCounters{RuleID: origin}
			agg[origin] = rc
		}
		rc.Packets += pkts
		rc.Bytes += bytes
	}

	// Origin resolution: any authority hosting a partition containing the
	// rule can resolve its generated cache IDs. Build one combined map.
	originOf := func(id uint64) (uint64, bool) {
		if id < cacheIDBase {
			return id, true
		}
		for _, auths := range n.authorityAt {
			for _, a := range auths {
				if origin, ok := a.OriginOf(id); ok && origin != id {
					return origin, true
				}
			}
		}
		return 0, false
	}

	for _, sw := range n.Switches {
		for _, e := range sw.Table(proto.TableCache).Entries() {
			if e.Packets == 0 && e.Bytes == 0 {
				continue
			}
			origin, ok := originOf(e.Rule.ID)
			if !ok {
				continue
			}
			add(origin, e.Packets, e.Bytes)
		}
		for _, e := range sw.Table(proto.TableAuthority).Entries() {
			if e.Packets == 0 && e.Bytes == 0 {
				continue
			}
			add(AuthorityEntryRuleID(e.Rule.ID), e.Packets, e.Bytes)
		}
	}
	out := make([]RuleCounters, 0, len(agg))
	for _, rc := range agg {
		out = append(out, *rc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].RuleID < out[j].RuleID })
	return out
}

// canonicalPolicyID strips the generation band that consistent policy
// updates add to staged authority-rule IDs (policy rule IDs are assumed
// to fit 32 bits, which stageAssignment also relies on).
func canonicalPolicyID(id uint64) uint64 {
	if id >= 1<<32 && id < cacheIDBase {
		return id & 0xFFFFFFFF
	}
	return id
}

// CountersFor returns the aggregated counters for one policy rule.
func (n *Network) CountersFor(ruleID uint64) RuleCounters {
	for _, rc := range n.PolicyCounters() {
		if rc.RuleID == ruleID {
			return rc
		}
	}
	return RuleCounters{RuleID: ruleID}
}

// ShadowedRules returns the IDs of policy rules that can never match any
// packet because higher-priority rules jointly cover them — dead TCAM
// entries the operator can remove. The analysis runs on the global policy.
func (n *Network) ShadowedRules() []uint64 {
	return ShadowedRuleIDs(n.Policy)
}

// ShadowedRuleIDs finds shadowed rules in any rule list.
func ShadowedRuleIDs(rules []flowspace.Rule) []uint64 {
	sorted := append([]flowspace.Rule(nil), rules...)
	flowspace.SortRules(sorted)
	var out []uint64
	for i := range sorted {
		if flowspace.Shadowed(sorted, i) {
			out = append(out, sorted[i].ID)
		}
	}
	return out
}

// CompactPolicy removes shadowed rules from a policy, returning the
// compacted list (TCAM order) and the removed IDs. Running it before
// partitioning shrinks every authority switch's table without changing
// semantics.
func CompactPolicy(rules []flowspace.Rule) ([]flowspace.Rule, []uint64) {
	sorted := append([]flowspace.Rule(nil), rules...)
	flowspace.SortRules(sorted)
	var removed []uint64
	kept := make([]flowspace.Rule, 0, len(sorted))
	// Iterate in priority order; test each rule against the kept prefix
	// (a rule shadowed only by later-removed rules stays shadowed by the
	// rules that shadowed those, so checking against kept is sound).
	for i := range sorted {
		candidate := append(append([]flowspace.Rule(nil), kept...), sorted[i])
		if flowspace.Shadowed(candidate, len(candidate)-1) {
			removed = append(removed, sorted[i].ID)
			continue
		}
		kept = append(kept, sorted[i])
	}
	return kept, removed
}
