// Quickstart: build a DIFANE deployment over the synthetic campus
// network, replay a Zipf traffic trace, and print what happened — the
// five-minute tour of the public API.
package main

import (
	"fmt"

	"difane"
	"difane/internal/metrics"
)

func main() {
	// 1. A network: topology + edge switches + a prioritized rule set.
	spec := difane.CampusNetwork(1, difane.ScaleTest)
	fmt.Printf("network %q: %d switches, %d policy rules\n",
		spec.Name, spec.Graph.NumNodes(), len(spec.Policy))

	// 2. Pick authority switches and build the DIFANE deployment. The
	// controller partitions the flow space and pre-installs authority and
	// partition rules; no packet ever visits the controller.
	auths := difane.PlaceAuthorities(spec.Graph, 3)
	net, err := difane.New(spec.Graph, auths, spec.Policy, difane.Config{
		Strategy:  difane.StrategyCover, // wildcard-safe cache rules
		CacheIdle: 30,                   // cache rules idle out after 30s
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("authorities %v hold %d partitions\n",
		auths, len(net.Assignment.Partitions))

	// 3. Replay a Zipf-popularity trace.
	flows := difane.GenerateTraffic(spec, difane.TrafficConfig{
		Flows: 5000, Rate: 2000, ZipfAlpha: 1.3, Seed: 2,
	})
	difane.RunTrace(net, flows, 60)

	// 4. Results.
	m := &net.M
	total := m.Delivered + m.Drops.Policy
	fmt.Printf("\npackets handled: %d (delivered %d, policy-dropped %d)\n",
		total, m.Delivered, m.Drops.Policy)
	fmt.Printf("cache misses redirected via authorities: %d (%.1f%%)\n",
		m.Redirects, 100*float64(m.Redirects)/float64(total))
	fmt.Printf("first-packet delay: p50=%s p99=%s\n",
		metrics.FormatDuration(m.FirstPacketDelay.Percentile(50)),
		metrics.FormatDuration(m.FirstPacketDelay.Percentile(99)))
	fmt.Printf("detour stretch: mean %.2fx over %d redirected packets\n",
		m.Stretch.Mean(), m.Stretch.N())
	fmt.Printf("resident cache entries across switches: %d\n", net.CacheEntries())
}
