// Package tcam models a switch rule table with TCAM semantics: prioritized
// ternary rules, highest-priority-first lookup, per-rule packet/byte
// counters, idle and hard timeouts, and a capacity limit.
//
// Time is explicit (float64 seconds) rather than wall clock so the table is
// deterministic under the discrete-event simulator; the wire-mode prototype
// feeds it monotonic time converted to seconds.
package tcam

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"difane/internal/flowspace"
)

// ErrFull is returned by Insert when the table is at capacity and no
// eviction candidate exists.
var ErrFull = errors.New("tcam: table full")

// Entry is one installed rule plus its runtime state.
type Entry struct {
	Rule flowspace.Rule

	// Counters.
	Packets uint64
	Bytes   uint64

	// Timeouts, in seconds; zero disables. IdleTimeout expires the entry
	// when no packet has matched for that long; HardTimeout expires it that
	// long after installation regardless of traffic.
	IdleTimeout float64
	HardTimeout float64

	installed float64
	lastHit   float64
}

// expiresAt returns the earliest time the entry can expire, or +inf-ish.
func (e *Entry) expiresAt() float64 {
	const never = 1e30
	t := never
	if e.IdleTimeout > 0 && e.lastHit+e.IdleTimeout < t {
		t = e.lastHit + e.IdleTimeout
	}
	if e.HardTimeout > 0 && e.installed+e.HardTimeout < t {
		t = e.installed + e.HardTimeout
	}
	return t
}

// EvictionPolicy selects a victim when the table is full.
type EvictionPolicy int

const (
	// EvictNone rejects inserts into a full table with ErrFull.
	EvictNone EvictionPolicy = iota
	// EvictLRU removes the entry with the oldest last-hit time.
	EvictLRU
	// EvictLFU removes the entry with the fewest matched packets.
	EvictLFU
)

// Table is a TCAM-semantics rule table. It is not safe for concurrent use;
// callers in the wire prototype serialize access per switch.
type Table struct {
	name     string
	capacity int // 0 = unlimited
	policy   EvictionPolicy

	entries []*Entry // kept in TCAM order: highest priority first
	byID    map[uint64]*Entry

	// OnExpire, if non-nil, is invoked for each entry removed by Advance.
	OnExpire func(Entry)

	// Misses counts lookups that matched no entry.
	Misses uint64
	// Hits counts lookups that matched an entry.
	Hits uint64
	// Evictions counts capacity evictions.
	Evictions uint64
}

// New returns an empty table. capacity 0 means unlimited.
func New(name string, capacity int, policy EvictionPolicy) *Table {
	return &Table{
		name:     name,
		capacity: capacity,
		policy:   policy,
		byID:     make(map[uint64]*Entry),
	}
}

// Name returns the table's diagnostic name.
func (t *Table) Name() string { return t.name }

// Len returns the number of installed entries.
func (t *Table) Len() int { return len(t.entries) }

// Capacity returns the entry limit (0 = unlimited).
func (t *Table) Capacity() int { return t.capacity }

// Insert installs a rule at time now. If a rule with the same ID exists it
// is replaced in place (counters reset, as an OpenFlow flow-mod would). If
// the table is full the eviction policy picks a victim; with EvictNone the
// insert fails with ErrFull.
func (t *Table) Insert(now float64, r flowspace.Rule, idle, hard float64) error {
	if old, ok := t.byID[r.ID]; ok {
		t.removeEntry(old)
	}
	if t.capacity > 0 && len(t.entries) >= t.capacity {
		if t.policy == EvictNone {
			return ErrFull
		}
		victim := t.pickVictim()
		if victim == nil {
			return ErrFull
		}
		t.removeEntry(victim)
		t.Evictions++
	}
	e := &Entry{
		Rule:        r,
		IdleTimeout: idle,
		HardTimeout: hard,
		installed:   now,
		lastHit:     now,
	}
	// Insert preserving TCAM order.
	i := sort.Search(len(t.entries), func(i int) bool {
		return !t.entries[i].Rule.Before(r)
	})
	t.entries = append(t.entries, nil)
	copy(t.entries[i+1:], t.entries[i:])
	t.entries[i] = e
	t.byID[r.ID] = e
	return nil
}

// Delete removes the rule with the given ID, reporting whether it existed.
func (t *Table) Delete(id uint64) bool {
	e, ok := t.byID[id]
	if !ok {
		return false
	}
	t.removeEntry(e)
	return true
}

// DeleteWhere removes all entries for which pred returns true and returns
// how many were removed.
func (t *Table) DeleteWhere(pred func(Entry) bool) int {
	var victims []*Entry
	for _, e := range t.entries {
		if pred(*e) {
			victims = append(victims, e)
		}
	}
	for _, e := range victims {
		t.removeEntry(e)
	}
	return len(victims)
}

func (t *Table) removeEntry(e *Entry) {
	delete(t.byID, e.Rule.ID)
	for i, x := range t.entries {
		if x == e {
			t.entries = append(t.entries[:i], t.entries[i+1:]...)
			return
		}
	}
}

// pickVictim returns the entry to evict under a total order, so eviction
// is deterministic: LRU orders by (lastHit, packets, ID) ascending, LFU by
// (packets, lastHit, ID) ascending.
func (t *Table) pickVictim() *Entry {
	var victim *Entry
	better := func(a, b *Entry) bool {
		switch t.policy {
		case EvictLRU:
			if a.lastHit != b.lastHit {
				return a.lastHit < b.lastHit
			}
			if a.Packets != b.Packets {
				return a.Packets < b.Packets
			}
		case EvictLFU:
			if a.Packets != b.Packets {
				return a.Packets < b.Packets
			}
			if a.lastHit != b.lastHit {
				return a.lastHit < b.lastHit
			}
		}
		return a.Rule.ID < b.Rule.ID
	}
	for _, e := range t.entries {
		if victim == nil || better(e, victim) {
			victim = e
		}
	}
	return victim
}

// Lookup returns the highest-priority entry matching k, updating counters
// with the packet's size, and false on a miss.
func (t *Table) Lookup(now float64, k flowspace.Key, size int) (flowspace.Rule, bool) {
	for _, e := range t.entries {
		if e.Rule.Match.Matches(k) {
			e.Packets++
			e.Bytes += uint64(size)
			e.lastHit = now
			t.Hits++
			return e.Rule, true
		}
	}
	t.Misses++
	return flowspace.Rule{}, false
}

// Peek is Lookup without counter updates — for analysis passes.
func (t *Table) Peek(k flowspace.Key) (flowspace.Rule, bool) {
	for _, e := range t.entries {
		if e.Rule.Match.Matches(k) {
			return e.Rule, true
		}
	}
	return flowspace.Rule{}, false
}

// Advance expires entries whose idle or hard timeout has passed by time
// now, invoking OnExpire for each.
func (t *Table) Advance(now float64) {
	var expired []*Entry
	for _, e := range t.entries {
		if e.expiresAt() <= now {
			expired = append(expired, e)
		}
	}
	for _, e := range expired {
		t.removeEntry(e)
		if t.OnExpire != nil {
			t.OnExpire(*e)
		}
	}
}

// NextExpiry returns the earliest pending expiry time and false if no entry
// has a timeout armed.
func (t *Table) NextExpiry() (float64, bool) {
	const never = 1e30
	best := never
	for _, e := range t.entries {
		if at := e.expiresAt(); at < best {
			best = at
		}
	}
	return best, best < never
}

// Entries returns a snapshot of the entries in TCAM order.
func (t *Table) Entries() []Entry {
	out := make([]Entry, len(t.entries))
	for i, e := range t.entries {
		out[i] = *e
	}
	return out
}

// Counters returns the packet/byte counters for rule id.
func (t *Table) Counters(id uint64) (packets, bytes uint64, ok bool) {
	e, found := t.byID[id]
	if !found {
		return 0, 0, false
	}
	return e.Packets, e.Bytes, true
}

// Rules returns the installed rules in TCAM order.
func (t *Table) Rules() []flowspace.Rule {
	out := make([]flowspace.Rule, len(t.entries))
	for i, e := range t.entries {
		out[i] = e.Rule
	}
	return out
}

// String renders a small diagnostic dump.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "table %s (%d/%d entries, %d hits, %d misses)\n",
		t.name, len(t.entries), t.capacity, t.Hits, t.Misses)
	for _, e := range t.entries {
		fmt.Fprintf(&b, "  %v pkts=%d\n", e.Rule, e.Packets)
	}
	return b.String()
}
