# The one-command check CI and contributors run before merging.
.PHONY: verify fmt vet build test bench fuzz-smoke

verify: fmt vet build test fuzz-smoke

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	go vet ./...

build:
	go build ./...

test:
	go test -race ./...

bench:
	go test -bench=. -benchmem ./...

# Short fuzz runs over the decoders that face untrusted bytes: decode
# must return an error, never panic or over-allocate.
fuzz-smoke:
	go test -run=^$$ -fuzz=FuzzDecodeFrame -fuzztime=10s ./internal/proto/
	go test -run=^$$ -fuzz=FuzzReadMessage -fuzztime=10s ./internal/proto/
	go test -run=^$$ -fuzz=FuzzDecodeWire -fuzztime=10s ./internal/packet/
	go test -run=^$$ -fuzz=FuzzParseRule -fuzztime=10s ./internal/policyio/
