# The one-command check CI and contributors run before merging.
.PHONY: verify fmt vet build test bench

verify: fmt vet build test

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	go vet ./...

build:
	go build ./...

test:
	go test -race ./...

bench:
	go test -bench=. -benchmem ./...
