// Package baseline implements the Ethane/NOX-style reactive architecture
// DIFANE is evaluated against: every flow's first packet is buffered at the
// ingress switch and punted to a central controller, which evaluates the
// policy, installs an exact-match microflow rule, and releases the packet.
// The controller's finite processing rate and round-trip latency are the
// bottlenecks the comparison figures measure.
package baseline

import (
	"fmt"
	"sync"

	"difane/internal/core"
	"difane/internal/flowspace"
	"difane/internal/proto"
	"difane/internal/sim"
	"difane/internal/switchsim"
	"difane/internal/telemetry"
	"difane/internal/topo"
)

// Config tunes the reactive baseline.
type Config struct {
	// ControllerNode is the switch the controller attaches to; control
	// messages traverse the data network to it.
	ControllerNode uint32
	// ControllerRate is flow setups per second the controller sustains
	// (NOX-era controllers manage a few tens of thousands).
	ControllerRate float64
	// ControllerQueue bounds pending setups (0 = unbounded); overflow
	// first packets are dropped.
	ControllerQueue int
	// SetupOverhead is fixed per-setup processing latency beyond queueing
	// (OS, serialization) in seconds.
	SetupOverhead float64
	// CacheCapacity bounds the per-switch microflow table (0 = unlimited).
	CacheCapacity int
	// CacheEviction picks victims for full microflow tables (default LRU;
	// EvictCostAware degrades to LRU here — the baseline has no
	// region-partitioned flow space to score against).
	CacheEviction core.EvictionChoice
	// TCAMBudget, when >0, bounds a switch's total TCAM occupancy; the
	// baseline installs only microflow cache rules, so it acts as an
	// additional cache cap (see switchsim.Config.TCAMBudget).
	TCAMBudget int
	// RuleIdle / RuleHard are the microflow rule timeouts.
	RuleIdle float64
	RuleHard float64

	// Tracing enables the flight recorder from construction (also
	// toggleable via SetTracing); TraceBuffer sizes each node's event ring
	// (default 4096).
	Tracing     bool
	TraceBuffer int
	// TraceSample is the 1-in-N per-packet trace-ID sampling rate feeding
	// journey assembly (0 = off). The same hash as the DIFANE backends, so
	// all three sample the same packets of a replayed workload.
	TraceSample int
}

// Network is a reactive-controller deployment over a topology.
type Network struct {
	Eng  *sim.Engine
	Topo *topo.Graph

	Switches map[uint32]*switchsim.Switch
	ctrl     *sim.Station
	cfg      Config
	policy   []flowspace.Rule

	nextRuleID uint64

	// M aggregates the same measurements as the DIFANE network, so the
	// comparison harness treats both uniformly.
	M core.Measurements
	// ControllerSetups counts setups the controller processed.
	ControllerSetups uint64

	// Observer, when non-nil, receives exactly one VerdictEvent per
	// injected packet at its terminal outcome — the same contract as
	// core.Network.Observer, so the differential checker drives both
	// architectures through one code path.
	Observer func(core.VerdictEvent)

	// Forensics: flight recorder + per-packet trace sampler.
	rec     *telemetry.Recorder
	sampler *telemetry.Sampler

	// telReg is the lazily-built metric registry behind Telemetry().
	telOnce sync.Once
	telReg  *telemetry.Registry
}

func (n *Network) emit(kind core.VerdictKind, k flowspace.Key, seq uint64, egress uint32) {
	if n.Observer != nil {
		n.Observer(core.VerdictEvent{Key: k, Seq: seq, Kind: kind, Egress: egress})
	}
}

// NewNetwork builds the baseline over the topology with the global policy.
func NewNetwork(g *topo.Graph, policy []flowspace.Rule, cfg Config) (*Network, error) {
	if !g.NodeUp(topo.NodeID(cfg.ControllerNode)) {
		return nil, fmt.Errorf("baseline: controller node %d not in topology", cfg.ControllerNode)
	}
	n := &Network{
		Eng:        sim.New(),
		Topo:       g,
		Switches:   make(map[uint32]*switchsim.Switch),
		cfg:        cfg,
		policy:     append([]flowspace.Rule(nil), policy...),
		nextRuleID: 1 << 40,
	}
	n.ctrl = sim.NewStation(n.Eng, cfg.ControllerRate, cfg.ControllerQueue)
	nodes := make([]uint32, 0, len(g.Nodes()))
	for _, id := range g.Nodes() {
		n.Switches[uint32(id)] = switchsim.New(uint32(id), switchsim.Config{
			CacheCapacity: cfg.CacheCapacity,
			CacheEviction: cfg.CacheEviction.TCAMPolicy(),
			TCAMBudget:    cfg.TCAMBudget,
		})
		nodes = append(nodes, uint32(id))
	}
	n.rec = telemetry.NewRecorder(nodes, cfg.TraceBuffer, cfg.Tracing)
	n.sampler = telemetry.NewSampler(cfg.TraceSample)
	return n, nil
}

// InjectPacket schedules one packet entering at the ingress switch.
func (n *Network) InjectPacket(at float64, ingress uint32, k flowspace.Key, size int, seq uint64) {
	n.Eng.At(at, func() { n.process(at, ingress, k, size, seq) })
}

// InjectBatch schedules a burst of packets; in the discrete-event baseline
// each packet still becomes its own event at its own virtual time.
func (n *Network) InjectBatch(batch []core.PacketIn) {
	for _, p := range batch {
		n.InjectPacket(p.At, p.Ingress, p.Key, p.Size, p.Seq)
	}
}

func (n *Network) process(injected float64, ingress uint32, k flowspace.Key, size int, seq uint64) {
	now := n.Eng.Now()
	trace := n.traceID(k, seq)
	if trace != 0 {
		n.span(telemetry.Event{Kind: telemetry.EvIngress, Node: ingress, Trace: trace, Flow: tupleOfKey(k)})
	}
	sw, ok := n.Switches[ingress]
	if !ok || !n.Topo.NodeUp(topo.NodeID(ingress)) {
		n.M.Drops.Unreachable++
		n.finish(core.VerdictUnreachable, ingress, k, seq, 0, trace, 0)
		return
	}
	sw.Advance(now)
	if res := sw.Classify(now, k, size); res.OK {
		if trace != 0 {
			n.span(telemetry.Event{Kind: telemetry.EvForward, Node: ingress, Peer: res.Rule.Action.Arg,
				Table: uint8(proto.TableCache), RuleID: res.Rule.ID, Trace: trace, Flow: tupleOfKey(k)})
		}
		n.applyAction(injected, ingress, k, res.Rule.Action, seq, trace)
		return
	}
	// Miss: punt to the controller (packet-in), wait for service, then the
	// rule comes back (flow-mod + packet-out) and the packet proceeds. In
	// span vocabulary the punt is a redirect whose peer is the controller.
	dIC, ok := n.Topo.Dist(topo.NodeID(ingress), topo.NodeID(n.cfg.ControllerNode))
	if !ok {
		n.M.Drops.Unreachable++
		n.finish(core.VerdictUnreachable, ingress, k, seq, 0, trace, 0)
		return
	}
	if trace != 0 {
		n.span(telemetry.Event{Kind: telemetry.EvRedirect, Node: ingress, Peer: n.cfg.ControllerNode,
			Trace: trace, Flow: tupleOfKey(k)})
	}
	n.Eng.At(now+dIC, func() {
		accepted := n.ctrl.Submit(func(done float64) {
			n.controllerHandle(injected, ingress, k, size, seq, dIC, trace)
		})
		if !accepted {
			n.M.Drops.AuthorityQueue++ // controller queue, same bucket
			n.finish(core.VerdictQueueDrop, n.cfg.ControllerNode, k, seq, 0, trace, 0)
		}
	})
}

func (n *Network) controllerHandle(injected float64, ingress uint32, k flowspace.Key, size int, seq uint64, dIC float64, trace uint64) {
	n.ControllerSetups++
	rule, ok := flowspace.EvalTable(n.policy, k)
	if !ok {
		n.M.Drops.Hole++
		n.finish(core.VerdictHole, n.cfg.ControllerNode, k, seq, 0, trace, 0)
		return
	}
	if trace != 0 {
		n.span(telemetry.Event{Kind: telemetry.EvAuthority, Node: n.cfg.ControllerNode, Peer: ingress,
			RuleID: rule.ID, Trace: trace, Flow: tupleOfKey(k)})
	}
	// Exact-match microflow rule back to the ingress switch.
	n.nextRuleID++
	exact := flowspace.Rule{
		ID:       n.nextRuleID,
		Priority: rule.Priority,
		Match:    exactMatch(k),
		Action:   rule.Action,
	}
	arriveBack := n.Eng.Now() + n.cfg.SetupOverhead + dIC
	n.Eng.At(arriveBack, func() {
		sw := n.Switches[ingress]
		mod := proto.FlowMod{Table: proto.TableCache, Op: proto.OpAdd, Rule: exact,
			Idle: n.cfg.RuleIdle, Hard: n.cfg.RuleHard}
		_ = sw.ApplyFlowMod(n.Eng.Now(), &mod)
		if trace != 0 {
			n.span(telemetry.Event{Kind: telemetry.EvInstall, Node: ingress,
				Table: uint8(proto.TableCache), RuleID: exact.ID, Trace: trace})
		}
		// The buffered packet is released and follows the rule.
		n.applyAction(injected, ingress, k, rule.Action, seq, trace)
	})
}

func (n *Network) applyAction(injected float64, ingress uint32, k flowspace.Key, a flowspace.Action, seq uint64, trace uint64) {
	now := n.Eng.Now()
	switch a.Kind {
	case flowspace.ActDrop:
		n.M.Drops.Policy++
		if seq == 0 {
			n.M.SetupsCompleted++
		}
		n.finish(core.VerdictPolicyDrop, ingress, k, seq, 0, trace, 0)
	case flowspace.ActForward, flowspace.ActCount:
		d, ok := n.Topo.Dist(topo.NodeID(ingress), topo.NodeID(a.Arg))
		if !ok {
			n.M.Drops.Unreachable++
			n.finish(core.VerdictUnreachable, ingress, k, seq, 0, trace, 0)
			return
		}
		n.Eng.At(now+d, func() {
			n.M.Delivered++
			delay := n.Eng.Now() - injected
			n.finish(core.VerdictDelivered, a.Arg, k, seq, a.Arg, trace, uint64(delay*1e9))
			if seq == 0 {
				n.M.FirstPacketDelay.Add(delay)
				n.M.SetupsCompleted++
			} else {
				n.M.LaterPacketDelay.Add(delay)
			}
		})
	default:
		n.M.Drops.Hole++
		n.finish(core.VerdictHole, ingress, k, seq, 0, trace, 0)
	}
}

func exactMatch(k flowspace.Key) flowspace.Match {
	m := flowspace.MatchAll()
	for f := flowspace.FieldID(0); f < flowspace.NumFields; f++ {
		m = m.WithExact(f, k[f])
	}
	return m
}

// Run drives the simulation to the horizon.
func (n *Network) Run(horizon float64) { n.Eng.Run(horizon) }

// Measurements returns the run's recorded statistics, completing the
// Deployment driving surface shared with the DIFANE network and wire mode.
func (n *Network) Measurements() *core.Measurements { return &n.M }

// Close releases the deployment. The baseline holds no external resources;
// Close exists so Network satisfies the Deployment interface.
func (n *Network) Close() error { return nil }

// ControllerBacklog returns the pending-setup queue length.
func (n *Network) ControllerBacklog() int { return n.ctrl.Backlog() }
