package wire

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"difane/internal/core"
	"difane/internal/telemetry"
)

func newTracedCluster(t *testing.T) *Cluster {
	t.Helper()
	c, err := NewCluster(ClusterConfig{
		Switches:    []uint32{0, 1, 2, 3, 4},
		Authorities: []uint32{2},
		Policy:      testPolicy(),
		Strategy:    core.StrategyCover,
		Telemetry:   TelemetryConfig{Addr: "127.0.0.1:0", Tracing: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestTraceRecordsDifaneArc drives the canonical DIFANE flow through a
// traced cluster and asserts the flight recorder captured it: first
// packet redirect → authority resolution → verdict, a cache install at
// the ingress, then a cache-hit forward for the second packet. Finally
// SetTracing(false) must stop the stream.
func TestTraceRecordsDifaneArc(t *testing.T) {
	c := newTracedCluster(t)
	h := httpHeader(1)
	flow := flowOf(&h).Hash

	c.Inject(0, h, 100)
	awaitDelivery(t, c)
	deadline := time.Now().Add(5 * time.Second)
	for c.CacheLen(0) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("cache install never arrived")
		}
		time.Sleep(time.Millisecond)
	}
	c.Inject(0, h, 100)
	awaitDelivery(t, c)

	evs := c.TraceEvents(telemetry.Filter{Flow: flow})
	var redirect, authority, forward *telemetry.Event
	var verdicts []telemetry.Event
	for i := range evs {
		switch ev := &evs[i]; ev.Kind {
		case telemetry.EvRedirect:
			redirect = ev
		case telemetry.EvAuthority:
			authority = ev
		case telemetry.EvForward:
			if ev.Table == telemetry.TableCache {
				forward = ev
			}
		case telemetry.EvVerdict:
			verdicts = append(verdicts, *ev)
		}
	}
	if redirect == nil || redirect.Node != 0 || redirect.Peer != 2 {
		t.Fatalf("missing/wrong redirect event (want ingress 0 -> authority 2): %+v", redirect)
	}
	if authority == nil || authority.Node != 2 || authority.RuleID != 1 || authority.Peer != 0 {
		t.Fatalf("missing/wrong authority event (want node 2 resolving rule 1 for ingress 0): %+v", authority)
	}
	if forward == nil || forward.Node != 0 {
		t.Fatalf("second packet should hit the ingress cache: %+v", forward)
	}
	if len(verdicts) != 2 {
		t.Fatalf("want 2 delivery verdicts, got %d: %+v", len(verdicts), verdicts)
	}
	for _, v := range verdicts {
		if v.Verdict != telemetry.VDelivered || v.Node != 4 {
			t.Fatalf("verdict should be delivered at egress 4: %+v", v)
		}
		if v.Value == 0 {
			t.Fatalf("delivery verdict must carry latency: %+v", v)
		}
	}
	// The authority's cache install back at the ingress shows up via the
	// TCAM hook (no flow context there, so query by kind).
	installs := c.TraceEvents(telemetry.Filter{
		Node: telemetry.Node(0), Kinds: []telemetry.EventKind{telemetry.EvInstall},
	})
	found := false
	for _, ev := range installs {
		if ev.Table == telemetry.TableCache {
			found = true
		}
	}
	if !found {
		t.Fatalf("no cache-table install event at ingress 0: %+v", installs)
	}

	// Tracing off: the stream stops; forwarding continues.
	c.SetTracing(false)
	h2 := httpHeader(7)
	c.Inject(0, h2, 100)
	awaitDelivery(t, c)
	if evs := c.TraceEvents(telemetry.Filter{Flow: flowOf(&h2).Hash}); len(evs) != 0 {
		t.Fatalf("events recorded while tracing off: %+v", evs)
	}
}

// TestTelemetryHTTPEndpoints scrapes the live HTTP surface: Prometheus
// text on /metrics, expvar JSON on /vars, the event stream on /trace,
// and the wire status summary on /status.
func TestTelemetryHTTPEndpoints(t *testing.T) {
	c := newTracedCluster(t)
	addr := c.TelemetryAddr()
	if addr == "" {
		t.Fatal("telemetry server did not start")
	}
	c.Inject(0, httpHeader(1), 100)
	awaitDelivery(t, c)

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	prom := string(get("/metrics"))
	for _, want := range []string{
		"# TYPE difane_delivered_total counter",
		"difane_delivered_total 1",
		"difane_trace_enabled 1",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, prom)
		}
	}

	var vars map[string]any
	if err := json.Unmarshal(get("/vars"), &vars); err != nil {
		t.Fatalf("/vars is not JSON: %v", err)
	}
	if v, ok := vars["difane_delivered_total"].(float64); !ok || v != 1 {
		t.Errorf("/vars difane_delivered_total = %v, want 1", vars["difane_delivered_total"])
	}

	var tr struct {
		Enabled bool                  `json:"enabled"`
		Events  []telemetry.EventJSON `json:"events"`
	}
	if err := json.Unmarshal(get("/trace?limit=0"), &tr); err != nil {
		t.Fatalf("/trace is not JSON: %v", err)
	}
	if !tr.Enabled || len(tr.Events) == 0 {
		t.Fatalf("/trace: enabled=%v events=%d, want enabled with events", tr.Enabled, len(tr.Events))
	}
	delivered := false
	for _, ev := range tr.Events {
		if ev.Kind == "verdict" && ev.Verdict == "delivered" {
			delivered = true
		}
	}
	if !delivered {
		t.Fatalf("/trace has no delivered verdict: %+v", tr.Events)
	}

	var status map[string]any
	if err := json.Unmarshal(get("/status"), &status); err != nil {
		t.Fatalf("/status is not JSON: %v", err)
	}

	// The in-process snapshot mirrors the scrape.
	snap := c.Telemetry()
	if v, ok := snap.Value("difane_delivered_total"); !ok || v != 1 {
		t.Errorf("snapshot difane_delivered_total = %v, %v; want 1", v, ok)
	}
}
