// Failover and mobility scenario: DIFANE's handling of network dynamics.
// An authority switch dies mid-run — traffic shifts to the pre-installed
// backup replica after the controller withdraws the dead rules. Then a
// host "moves" and the controller invalidates its cached rules so traffic
// immediately follows the new policy.
package main

import (
	"fmt"

	"difane"
)

func main() {
	// A ring of eight POPs: the data plane survives any single failure.
	g := difane.NewGraph()
	for i := 0; i < 8; i++ {
		g.AddLink(difane.NodeID(i), difane.NodeID((i+1)%8), 0.001)
	}
	policy := []difane.Rule{{
		ID: 1, Priority: 1, Match: difane.MatchAll(),
		Action: difane.Action{Kind: difane.ActForward, Arg: 0},
	}}

	net, err := difane.New(g, []uint32{1, 5}, policy, difane.Config{
		Strategy: difane.StrategyExact, // each flow is a visible miss
	})
	if err != nil {
		panic(err)
	}
	ctl := difane.NewController(net)
	ctl.FailoverDelay = 0.2 // detection + withdrawal

	// Steady new-flow arrivals from every non-authority switch.
	seq := uint64(0)
	for at := 0.0; at < 6.0; at += 0.005 {
		var k difane.Key
		k[difane.FIPSrc] = 1000 + seq
		ingress := uint32((seq % 4) * 2)
		net.InjectPacket(at, ingress, k, 100, 0)
		seq++
	}

	// Kill authority 1 at t=2. Ingresses whose nearest replica it was
	// lose their misses until the failover converges at t=2.2.
	net.Eng.At(2.0, func() {
		net.FailAuthority(1)
		convergeAt := ctl.OnAuthorityFailure(1)
		fmt.Printf("t=2.00s authority 1 failed; failover converges at t=%.2fs\n", convergeAt)
	})
	net.Run(8)

	fmt.Printf("delivered=%d lost-in-window=%d (bounded by failover delay)\n",
		net.M.Delivered, net.M.Drops.Unreachable)
	if net.M.Drops.Unreachable == 0 || net.M.Drops.Unreachable > 100 {
		panic("loss window out of expected range")
	}

	// --- Host mobility -------------------------------------------------
	// Cached rules for a host that moved are stale; the controller
	// invalidates them, forcing fresh misses that see current state.
	removed := ctl.InvalidateHost(1042)
	fmt.Printf("host 1042 moved: %d stale cache entries invalidated\n", removed)
	if removed == 0 {
		panic("the host's flows were cached and must have been invalidated")
	}
	after := ctl.InvalidateHost(1042)
	fmt.Printf("re-invalidation removes %d (idempotent)\n", after)
}
