package journal

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"difane/internal/testutil"
)

type fakeState struct {
	Epoch  uint64 `json:"epoch"`
	Policy string `json:"policy"`
}

func mustAppend(t *testing.T, j *Journal, kind string, payload any) uint64 {
	t.Helper()
	seq, err := j.Append(kind, payload)
	if err != nil {
		t.Fatal(err)
	}
	return seq
}

func replayStates(t *testing.T, j *Journal) (snap fakeState, recs []fakeState, hadSnap bool) {
	t.Helper()
	n, had, err := j.Replay(&snap, func(r Record) error {
		var st fakeState
		if err := json.Unmarshal(r.Data, &st); err != nil {
			return err
		}
		recs = append(recs, st)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(recs) {
		t.Fatalf("applied %d, collected %d", n, len(recs))
	}
	return snap, recs, had
}

func TestAppendReplayRoundTrip(t *testing.T) {
	defer testutil.CheckGoroutineLeaks(t, 2)()
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		mustAppend(t, j, "state", fakeState{Epoch: uint64(i), Policy: "p"})
	}
	j.Close()

	j2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	_, recs, hadSnap := replayStates(t, j2)
	if hadSnap {
		t.Fatal("no snapshot was written")
	}
	if len(recs) != 3 || recs[2].Epoch != 3 {
		t.Fatalf("replay = %+v", recs)
	}
	if j2.NextSeq() != 4 {
		t.Fatalf("next seq = %d, want 4", j2.NextSeq())
	}
}

func TestSnapshotTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, "state", fakeState{Epoch: 1})
	mustAppend(t, j, "state", fakeState{Epoch: 2})
	if err := j.WriteSnapshot(fakeState{Epoch: 2, Policy: "snap"}); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, "state", fakeState{Epoch: 3})
	j.Close()

	j2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	snap, recs, hadSnap := replayStates(t, j2)
	if !hadSnap || snap.Policy != "snap" || snap.Epoch != 2 {
		t.Fatalf("snapshot = %+v (had=%v)", snap, hadSnap)
	}
	if len(recs) != 1 || recs[0].Epoch != 3 {
		t.Fatalf("post-snapshot records = %+v", recs)
	}
	wal, err := os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if lines := countLines(wal); lines != 1 {
		t.Fatalf("WAL holds %d records after snapshot, want 1", lines)
	}
}

func TestTornTailStopsReplayCleanly(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, "state", fakeState{Epoch: 1})
	mustAppend(t, j, "state", fakeState{Epoch: 2})
	j.Close()

	// Simulate a crash mid-append: a truncated JSON line at the tail.
	walPath := filepath.Join(dir, "wal.log")
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"seq":3,"kind":"state","da`)
	f.Close()

	j2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	_, recs, _ := replayStates(t, j2)
	if len(recs) != 2 || recs[1].Epoch != 2 {
		t.Fatalf("replay after torn tail = %+v", recs)
	}
	// New appends continue the sequence past the durable prefix.
	if seq := mustAppend(t, j2, "state", fakeState{Epoch: 3}); seq != 3 {
		t.Fatalf("seq after torn tail = %d, want 3", seq)
	}
}

func TestCorruptCRCStopsReplay(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, "state", fakeState{Epoch: 1})
	j.Close()

	// Flip a byte inside the record's data without touching framing.
	walPath := filepath.Join(dir, "wal.log")
	buf, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	mutated := []byte(string(buf))
	idx := len(`{"seq":1,"kind":"state","data":{"epoch":`)
	if idx >= len(mutated) || mutated[idx] != '1' {
		t.Fatalf("unexpected WAL layout: %s", buf)
	}
	mutated[idx] = '7'
	if err := os.WriteFile(walPath, mutated, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	_, recs, _ := replayStates(t, j2)
	if len(recs) != 0 {
		t.Fatalf("corrupt record must not replay: %+v", recs)
	}
}

func TestClosedJournalRejectsWrites(t *testing.T) {
	j, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, err := j.Append("state", fakeState{}); err == nil {
		t.Fatal("append after close must fail")
	}
	if err := j.WriteSnapshot(fakeState{}); err == nil {
		t.Fatal("snapshot after close must fail")
	}
	if err := j.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func countLines(b []byte) int {
	n := 0
	for _, c := range b {
		if c == '\n' {
			n++
		}
	}
	return n
}
