package core

import (
	"difane/internal/cachepolicy"
	"difane/internal/flowspace"
	"difane/internal/proto"
	"difane/internal/tcam"
)

// This file wires internal/cachepolicy into the simulated deployment:
// the cost-aware victim picker behind every ingress cache, the periodic
// adaptation tick that retunes per-region idle timeouts and aggregates
// near-microflow entries, and the timeout-propagation plumbing shared with
// the controller.

// CachePolicy returns the cost-aware caching policy, or nil when the
// deployment runs a fixed eviction policy.
func (n *Network) CachePolicy() *cachepolicy.Policy { return n.cachePol }

// regionOfKey maps a key to its flow-space partition index (−1 when no
// partition covers it — only possible mid-reassignment).
func (n *Network) regionOfKey(k flowspace.Key) int {
	for i := range n.Assignment.Partitions {
		if n.Assignment.Partitions[i].Region.Matches(k) {
			return i
		}
	}
	return -1
}

// regionOfMatch maps a cache rule's match to its partition index. Cache
// rules are clipped to one partition's region, so any member key of the
// match identifies it; the match's Value fields (wildcard bits zero) are
// such a key.
func (n *Network) regionOfMatch(m flowspace.Match) int {
	var k flowspace.Key
	for f := flowspace.FieldID(0); f < flowspace.NumFields; f++ {
		k[f] = m.Fields[f].Value
	}
	return n.regionOfKey(k)
}

// cacheVictimFn builds the custom victim picker installed on every
// ingress cache, or nil when the deployment is not cost-aware. The TCAM
// calls it with its table lock held; the closure only reads the
// single-threaded simulator's assignment, so that is safe here (wire mode
// builds its own closure over immutable state).
func (n *Network) cacheVictimFn() tcam.VictimFunc {
	if n.cachePol == nil {
		return nil
	}
	return func(now float64, cands []tcam.VictimCandidate) int {
		cc := make([]cachepolicy.Candidate, len(cands))
		for i, c := range cands {
			cc[i] = cachepolicy.Candidate{
				ID:        c.ID,
				Region:    n.regionOfMatch(c.Rule.Match),
				Packets:   c.Packets,
				LastHit:   c.LastHit,
				Installed: c.Installed,
			}
		}
		return n.cachePol.Victim(now, cc)
	}
}

// configureAuthority stamps an authority handler with the deployment's
// cache timeouts, preferring the policy's adapted per-region idle timeout
// when one exists — so handlers rebuilt by rebalancing or recovery keep
// the adapted value instead of silently reverting to the static default.
func (n *Network) configureAuthority(a *Authority) {
	idle, hard := n.cfg.CacheIdle, n.cfg.CacheHard
	if n.cachePol != nil {
		if ad := n.cachePol.IdleTimeout(a.RegionIndex); ad > 0 {
			idle = ad
		}
	}
	a.SetCacheTimeouts(idle, hard)
}

// SetCacheTimeouts changes the deployment-wide cache timeouts and
// propagates them to every live authority handler. The handlers memoize
// fully-built FlowMods, so propagation must go through
// Authority.SetCacheTimeouts (which flushes the memo) — a config write
// alone would not reach rules already being issued.
func (n *Network) SetCacheTimeouts(idle, hard float64) {
	n.cfg.CacheIdle = idle
	n.cfg.CacheHard = hard
	for _, auths := range n.authorityAt {
		for _, a := range auths {
			n.configureAuthority(a)
		}
	}
}

// SetCacheTimeouts is the controller-facing form of
// Network.SetCacheTimeouts.
func (c *Controller) SetCacheTimeouts(idle, hard float64) {
	c.net.SetCacheTimeouts(idle, hard)
}

// SetRegionIdleTimeout overrides the idle timeout of one region's cache
// rules on every authority handler serving it.
func (n *Network) SetRegionIdleTimeout(region int, idle float64) {
	for _, auths := range n.authorityAt {
		for _, a := range auths {
			if a.RegionIndex == region {
				a.SetCacheTimeouts(idle, a.CacheHardTimeout)
			}
		}
	}
}

// effectiveIdle is the idle timeout currently in force for a region.
func (n *Network) effectiveIdle(region int) float64 {
	if n.cachePol != nil {
		if ad := n.cachePol.IdleTimeout(region); ad > 0 {
			return ad
		}
	}
	return n.cfg.CacheIdle
}

// policyRegions projects the current assignment into the aggregation
// planner's region list.
func (n *Network) policyRegions() []cachepolicy.Region {
	regions := make([]cachepolicy.Region, len(n.Assignment.Partitions))
	for i, p := range n.Assignment.Partitions {
		regions[i] = cachepolicy.Region{Index: i, Match: p.Region, Rules: p.Rules}
	}
	return regions
}

// aggIDBase offsets aggregation cover-rule IDs above every other ID band
// (policy < 2^32, authority-generated cache rules at 2^40, partition
// rules at 2^50).
const aggIDBase uint64 = 1 << 52

func (n *Network) allocAggID() uint64 {
	n.aggSeq++
	return aggIDBase + n.aggSeq
}

// startCacheAdaptation schedules the self-rescheduling adaptation tick.
// No-op for fixed-policy deployments; the engine's Run(horizon) bounds
// execution, so the perpetual tick never blocks termination.
func (n *Network) startCacheAdaptation() {
	if n.cachePol == nil {
		return
	}
	interval := n.cfg.CacheAdaptInterval
	if interval <= 0 {
		interval = 0.25
	}
	var tick func()
	tick = func() {
		n.adaptCaches()
		n.Eng.After(interval, tick)
	}
	n.Eng.After(interval, tick)
}

// adaptCaches is one adaptation round: refresh the policy's priors from
// telemetry, feed it per-region inter-arrival times derived from live
// cache entry counters, push materially-changed idle timeouts to the
// authority handlers, and aggregate near-microflow cache entries into
// cover rules. Switches are visited in ID order so runs replay
// identically.
func (n *Network) adaptCaches() {
	pol := n.cachePol
	if pol == nil {
		return
	}
	now := n.Eng.Now()
	pol.ScrapeRegistry(n.Registry())

	ids := make([]uint32, 0, len(n.Switches))
	for id := range n.Switches {
		ids = append(ids, id)
	}
	sortU32(ids)

	for _, id := range ids {
		for _, e := range n.Switches[id].Table(proto.TableCache).Entries() {
			if e.Packets < 2 {
				continue
			}
			span := e.LastHit() - e.Installed()
			if span <= 0 {
				continue
			}
			pol.ObserveInterArrival(n.regionOfMatch(e.Rule.Match), span/float64(e.Packets-1))
		}
	}

	for _, region := range pol.Regions() {
		if idle, changed := pol.AdaptIdle(region); changed {
			n.SetRegionIdleTimeout(region, idle)
		}
	}

	regions := n.policyRegions()
	for _, id := range ids {
		sw := n.Switches[id]
		tb := sw.Table(proto.TableCache)
		plans := pol.PlanAggregation(tb.Entries(), regions, n.allocAggID)
		for _, p := range plans {
			// Delete first: the freed slots guarantee the cover lands
			// without evicting an unrelated entry.
			for _, rid := range p.Replace {
				tb.Delete(rid)
			}
			mod := proto.FlowMod{
				Table: proto.TableCache, Op: proto.OpAdd, Rule: p.Cover,
				Idle: n.effectiveIdle(p.Region), Hard: n.cfg.CacheHard,
			}
			_ = sw.ApplyFlowMod(now, &mod)
		}
	}
}
