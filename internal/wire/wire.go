// Package wire runs a DIFANE deployment as real concurrent components: one
// goroutine per switch, data-plane frames as encoded packets over
// channels, and control-plane messages as framed proto messages over
// net.Pipe or loopback-TCP connections — the prototype-style counterpart
// to the discrete-event simulator in internal/core. It validates that the
// protocol, the pipeline, and the cache-install feedback loop work under
// real concurrency, and adds the resilience layer the paper's failover
// story requires: a heartbeat failure detector, pre-installed backup
// authority rules with ingress-local failover, reconnecting control
// connections, and fault-injection hooks for testing all of it.
package wire

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"difane/internal/bfd"
	"difane/internal/cachepolicy"
	"difane/internal/core"
	"difane/internal/flowspace"
	"difane/internal/metrics"
	"difane/internal/packet"
	"difane/internal/proto"
	"difane/internal/switchsim"
	"difane/internal/telemetry"
)

// Delivery reports one packet reaching its egress.
type Delivery struct {
	Egress  uint32
	Header  packet.Header
	Detour  bool // true if the packet travelled via an authority switch
	Latency time.Duration
}

// Cluster is a running wire-mode DIFANE deployment.
type Cluster struct {
	cfg    ClusterConfig
	assign core.Assignment
	// failover holds, per partition, the ordered authority hosts an
	// ingress switch walks when the current target is dead.
	failover [][]uint32

	switches map[uint32]*node
	// nodes lists the switches in cfg.Switches order; node.slot indexes it.
	// Per-producer data rings are addressed by slot, and injSlot (== the
	// number of switches) is every node's extra injection ring.
	nodes   []*node
	injSlot int
	// slabs pools burst-sized dataFrame scratch slices for InjectBatch
	// callers, so batch injection allocates nothing in steady state.
	slabs sync.Pool
	// Deliveries receives every packet that reaches an egress.
	Deliveries chan Delivery

	dropped   atomic.Uint64
	injected  atomic.Uint64
	completed atomic.Uint64

	// ext is the measurement shard for accounting that happens outside
	// any node's data goroutine (injection-path drops); every node carries
	// its own shard (node.stats). cold holds the rare control-plane
	// counters. Measurements() merges all of them — the data plane never
	// takes a cluster-wide lock.
	ext  *nodeStats
	cold coldStats

	// pendMu guards pending: per authority switch, the send time of the
	// oldest redirect its data plane has not yet acknowledged (by
	// processing a redirected packet). The failure detector treats a stale
	// entry as a dead authority even when its control plane still echoes
	// heartbeats.
	pendMu  sync.Mutex
	pending map[uint32]time.Time

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	trans  transport
	// fabric, when non-nil, carries inter-switch data frames over batched
	// loopback-TCP connections (cfg.Fabric.UseTCP) instead of direct ring
	// handoff.
	fabric *tcpFabric

	// epoch is the controller's fencing token. Every FlowMod the
	// controller sends is stamped with it; switches reject installs whose
	// epoch is older than the highest they have accepted, so a dead
	// controller's straggling writes cannot clobber its successor's.
	epoch atomic.Uint64
	// replicas holds the controller replica set when cfg.HA.Replicas ≥ 2;
	// empty means single-controller (legacy) mode. leaderID is the index
	// of the current leader replica (-1 while no leader holds office) and
	// haMu serializes replica-set mutations: journal append+ship, leader
	// kill, election, revival. haDir roots the replica journals; it is
	// removed on Close when the cluster created it (haDirOwned).
	replicas   []*ctrlReplica
	leaderID   atomic.Int32
	haMu       sync.Mutex
	haDir      string
	haDirOwned bool
	// ctrlDown simulates a controller crash (KillController): switches
	// keep serving from cached and authority rules, buffer
	// controller-bound events, and drain them on RestoreController.
	ctrlDown atomic.Bool

	// rec is the flight recorder and reg the metric registry; both always
	// exist so hot-path trace gates are a nil-free atomic load and
	// Telemetry() works on every cluster. tsrv is the optional HTTP
	// endpoint (cfg.Telemetry.Addr).
	rec  *telemetry.Recorder
	reg  *telemetry.Registry
	tsrv *telemetry.Server
	// sampler mints per-packet trace IDs (forensics journeys); conv tracks
	// per-epoch policy-update convergence timelines; wd is the SLO health
	// watchdog, driven by healthLoop unless cfg.Telemetry.DisableHealth.
	sampler *telemetry.Sampler
	conv    *telemetry.Convergence
	wd      *telemetry.Watchdog

	// cachePol is the cost-aware caching policy (nil unless
	// cfg.CacheEviction == core.EvictCostAware); aggSeq mints aggregation
	// cover-rule IDs.
	cachePol *cachepolicy.Policy
	aggSeq   atomic.Uint64

	closed    atomic.Bool
	closeOnce sync.Once
}

// node is one switch goroutine with its tables, data rings, and control
// connection.
type node struct {
	id uint32
	// slot is this node's dense index in Cluster.nodes (cfg.Switches
	// order); peers address their ring into this node by their own slot.
	slot int
	// mu serializes the node's authority-side miss handling (HandleMiss
	// mutates Authority state). The switch tables themselves are
	// concurrency-safe (internal/tcam publishes copy-on-write snapshots),
	// so classification and FlowMod installs take no node lock at all.
	mu sync.Mutex
	sw *switchsim.Switch

	auths []*core.Authority

	// stats is this node's measurement shard; the hot path records
	// deliveries and drops here without touching any other node's state.
	stats *nodeStats

	// in holds the node's input rings, one SPSC ring per producer: in[s]
	// is fed only by switch s (its data goroutine, or the fabric receive
	// goroutine of the s→this connection), and in[injSlot] is the
	// injection ring, serialized across arbitrary callers by injectMu.
	// The node's data goroutine is the sole consumer of all of them.
	// Slots are pre-populated at boot when the cluster-wide slot matrix
	// is small (see eagerRingBudget in NewClusterContext) and otherwise
	// allocate lazily on first push (see ring): the slot space is one
	// per switch, so eager allocation is O(switches²) frames across the
	// cluster — a 76-switch topology at difanectl's 16k queue depth
	// would pin ~10 GB — while real traffic touches only the slots of
	// switches that actually forward here.
	in        []atomic.Pointer[frameRing]
	ringDepth int
	injectMu  sync.Mutex
	// notify wakes the data goroutine after a push; capacity 1 coalesces
	// bursts of wakeups.
	notify chan struct{}

	// connMu guards the current control-connection pair. ctrl is the
	// switch side and ctrlPeer the controller side; the connection manager
	// replaces both on reconnect. Cache installs from authority switches
	// travel switch → controller → target ingress switch, as in the
	// paper's prototype.
	connMu   sync.Mutex
	ctrl     net.Conn
	ctrlPeer net.Conn

	// replies carries barrier/stats replies back to controller-side
	// callers (Barrier, Stats).
	replies chan proto.Message

	// done is closed by KillSwitch: the node's goroutines stop, simulating
	// a crashed switch.
	done     chan struct{}
	killOnce sync.Once

	killed      atomic.Bool
	alive       atomic.Bool  // the failure detector's current verdict
	partitioned atomic.Bool  // control-plane partition fault injected
	ctrlDelay   atomic.Int64 // injected per-control-write delay, ns
	lastBeat    atomic.Int64 // unix nanos of the last heartbeat echo
	deadAt      atomic.Int64 // unix nanos of the last death, for holddown
	// faultAt is stamped when a fault hook (KillSwitch, PartitionControl)
	// makes this switch undetectably dead; markDead swaps it out to
	// measure fault→verdict detection latency.
	faultAt atomic.Int64

	// bfdCtrl is the controller-side BFD session watching this switch;
	// bfdSw the switch-side session watching the controller. Both nil when
	// BFD is disabled. bfdQ feeds the node's BFD writer goroutine; full
	// means the packet is dropped (BFD tolerates loss by design).
	bfdCtrl *bfd.Session
	bfdSw   *bfd.Session
	bfdQ    chan bfdSend

	// epoch is the switch's install fence: the highest epoch it has
	// accepted a fenced FlowMod under. Epoch-0 FlowMods (data-plane cache
	// installs) bypass the fence.
	epoch atomic.Uint64
	// reportedEpoch is the last fence this switch reported upstream in an
	// EpochReport (after rejecting a stale install).
	reportedEpoch atomic.Uint64
	// lastProbe is when this switch last saw a controller heartbeat — its
	// side of outage detection (the controller watches lastBeat instead).
	lastProbe atomic.Int64
	// peakQueue tracks the high-water mark of the data queue.
	peakQueue atomic.Int64

	// installQ feeds the node's install writer: cache installs queued by
	// the authority data plane, written toward the controller by one
	// dedicated goroutine instead of a spawn per miss. Overflow sheds the
	// install (counted), never the packet.
	installQ chan proto.Message

	// outbox buffers controller-bound events while the controller is
	// unreachable; it drains when heartbeats resume.
	outbox chan proto.Message

	// redirectTB / installTB shed miss-storm overload (nil = unlimited).
	redirectTB *metrics.TokenBucket
	installTB  *metrics.TokenBucket
}

// dataFrame is one packet in flight between switches. In-process handoff
// carries the parsed packet by value — a switch parses a packet once at a
// real network boundary (injection, or the TCP data fabric's receive side)
// and forwards the parsed form, the way a software switch carries parsed
// metadata through its pipeline instead of re-serializing per hop. Wire
// encoding happens only where bytes genuinely cross a transport: the
// batched TCP data fabric. Each hop owns its copy of the frame, so
// handling may mutate pkt freely (encapsulate/decapsulate) without
// cloning; the Encap pointee is never mutated after a frame is sent.
type dataFrame struct {
	pkt packet.Packet
	// encap/hasEncap carry the DIFANE encapsulation header by value —
	// pkt.Encap stays nil inside the wire data plane, so encapsulating a
	// frame per hop costs a struct store, not a heap allocation. The TCP
	// fabric encodes from and decodes into this field directly
	// (AppendWireEncap / DecodeWireEncap).
	encap    packet.Encap
	hasEncap bool
	// injected is monotonic nanoseconds since the package time base
	// (start) — cheaper to stamp and to diff than a wall-clock time.Time,
	// and the hot path reads the clock exactly twice per packet: here and
	// at delivery.
	injected int64
	detour   bool
	// trace is the packet's sampled trace ID (0 = unsampled): stamped once
	// at injection, carried across every hop (including the TCP fabric), and
	// attached to every span event the packet generates.
	trace uint64
}

// NewCluster builds and starts a cluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	return NewClusterContext(context.Background(), cfg)
}

// NewClusterContext is NewCluster with a caller-controlled lifetime: when
// ctx is cancelled the cluster shuts down as if Close had been called
// (without the drain grace period).
func NewClusterContext(ctx context.Context, cfg ClusterConfig) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	parts := core.BuildPartitions(cfg.Policy, cfg.Partition)
	assign, err := core.Assign(parts, cfg.Authorities)
	if err != nil {
		return nil, err
	}

	cctx, cancel := context.WithCancel(ctx)
	c := &Cluster{
		cfg:        cfg,
		assign:     assign,
		failover:   make([][]uint32, len(assign.Partitions)),
		switches:   make(map[uint32]*node),
		Deliveries: make(chan Delivery, cfg.QueueDepth),
		pending:    make(map[uint32]time.Time),
		ext:        &nodeStats{},
		ctx:        cctx,
		cancel:     cancel,
	}
	for i := range assign.Partitions {
		c.failover[i] = assign.FailoverList(i)
	}
	if cfg.CacheEviction == core.EvictCostAware {
		c.cachePol = cachepolicy.New(cachepolicy.Config{})
	}
	switch {
	case cfg.trans != nil:
		c.trans = cfg.trans
	case cfg.UseTCP:
		t, err := newTCPTransport()
		if err != nil {
			cancel()
			return nil, err
		}
		c.trans = t
	default:
		c.trans = pipeTransport{}
	}
	now := time.Now()
	c.injSlot = len(cfg.Switches)
	// Pre-populate ring slots when the whole matrix is cheap: first-touch
	// allocation otherwise lands mid-burst once traffic starts, and the
	// GC cycles it triggers inside the measured window cost ~25% of
	// cache-hit throughput. The matrix is O(switches²), so large
	// topologies (a 76-switch campus at 16k depth is ~10 GB) fall back to
	// lazy allocation in node.ring, where memory tracks the
	// producer→consumer pairs traffic actually uses.
	const eagerRingBudget = 64 << 20
	ringSlots := len(cfg.Switches) * (len(cfg.Switches) + 1)
	ringBytes := int(unsafe.Sizeof(dataFrame{}))
	eagerRings := ringSlots*cfg.Fabric.RingDepth*ringBytes <= eagerRingBudget
	c.slabs.New = func() any {
		s := make([]dataFrame, 0, cfg.Fabric.Burst)
		return &s
	}
	for slot, id := range cfg.Switches {
		swConn, ctrlConn, err := c.trans.connect(cctx, id)
		if err != nil {
			cancel()
			c.trans.close()
			for _, n := range c.switches {
				n.ctrl.Close()
				n.ctrlPeer.Close()
			}
			return nil, err
		}
		n := &node{
			id:   id,
			slot: slot,
			sw: switchsim.New(id, switchsim.Config{
				CacheCapacity: cfg.CacheCapacity,
				CacheEviction: cfg.CacheEviction.TCAMPolicy(),
				CacheVictim:   c.cacheVictimFn(),
				TCAMBudget:    cfg.TCAMBudget,
			}),
			stats:      &nodeStats{},
			in:         make([]atomic.Pointer[frameRing], len(cfg.Switches)+1),
			ringDepth:  cfg.Fabric.RingDepth,
			notify:     make(chan struct{}, 1),
			ctrl:       swConn,
			ctrlPeer:   ctrlConn,
			replies:    make(chan proto.Message, 16),
			done:       make(chan struct{}),
			installQ:   make(chan proto.Message, 256),
			outbox:     make(chan proto.Message, cfg.Overload.OutageBuffer),
			redirectTB: metrics.NewTokenBucket(cfg.Overload.RedirectRate, cfg.Overload.RedirectBurst),
			installTB:  metrics.NewTokenBucket(cfg.Overload.CacheInstallRate, cfg.Overload.CacheInstallBurst),
		}
		if eagerRings {
			for i := range n.in {
				n.in[i].Store(newFrameRing(cfg.Fabric.RingDepth))
			}
		}
		n.alive.Store(true)
		n.lastBeat.Store(now.UnixNano())
		n.lastProbe.Store(now.UnixNano())
		c.initNodeBFD(n)
		c.switches[id] = n
		c.nodes = append(c.nodes, n)
	}
	c.epoch.Store(1)
	c.leaderID.Store(-1)
	if err := c.initHA(); err != nil {
		cancel()
		c.trans.close()
		for _, n := range c.switches {
			n.ctrl.Close()
			n.ctrlPeer.Close()
		}
		return nil, err
	}
	if err := c.installAssignment(); err != nil {
		cancel()
		c.trans.close()
		for _, n := range c.switches {
			n.ctrl.Close()
			n.ctrlPeer.Close()
		}
		return nil, err
	}
	if cfg.Fabric.UseTCP {
		fab, err := newTCPFabric(c, cfg.Fabric)
		if err != nil {
			cancel()
			c.trans.close()
			for _, n := range c.switches {
				n.ctrl.Close()
				n.ctrlPeer.Close()
			}
			return nil, err
		}
		c.fabric = fab
	}
	// Telemetry comes up after the assignment pre-installs (so boot-time
	// rule pushes don't flood the trace rings) and before any goroutine
	// starts (the TCAM hook-set-before-sharing contract).
	c.initTelemetry()
	if err := c.startTelemetryServer(); err != nil {
		if c.fabric != nil {
			c.fabric.close()
		}
		cancel()
		c.trans.close()
		for _, n := range c.switches {
			n.ctrl.Close()
			n.ctrlPeer.Close()
		}
		return nil, err
	}
	// Re-stamp the heartbeat clocks now that construction is done:
	// liveness silence starts when the prober can actually run, not when
	// the node structs were built, so a slow boot (ring allocation, rule
	// pre-install) can never eat into the first MissThreshold intervals.
	boot := time.Now().UnixNano()
	for _, n := range c.switches {
		n.lastBeat.Store(boot)
		n.lastProbe.Store(boot)
	}
	for _, n := range c.switches {
		c.wg.Add(3)
		go c.dataLoop(n)
		go c.ctrlManager(n)
		go c.installWriter(n)
		if n.bfdQ != nil {
			c.wg.Add(1)
			go c.bfdWriter(n)
		}
	}
	c.wg.Add(1)
	go c.heartbeatLoop()
	if !cfg.Telemetry.DisableHealth {
		c.wg.Add(1)
		go c.healthLoop()
	}
	if !cfg.BFD.Disable {
		c.wg.Add(1)
		go c.bfdLoop()
	}
	if c.cachePol != nil {
		c.wg.Add(1)
		go c.cacheAdaptLoop()
	}
	return c, nil
}

// installAssignment pre-installs partition rules everywhere (primary and
// backup redirect rules, the backup at lower priority) and the clipped
// authority rules at both the primary and the backup host of every
// partition — the paper's replicated-authority deployment.
func (c *Cluster) installAssignment() error {
	now := 0.0
	prules := c.assign.PartitionRules(partitionRuleBase)
	for _, n := range c.switches {
		for _, r := range prules {
			mod := proto.FlowMod{Table: proto.TablePartition, Op: proto.OpAdd, Rule: r}
			if err := n.sw.ApplyFlowMod(now, &mod); err != nil {
				return err
			}
		}
	}
	for i, p := range c.assign.Partitions {
		for _, h := range c.failover[i] {
			n, ok := c.switches[h]
			if !ok {
				return fmt.Errorf("wire: authority %d not a cluster switch", h)
			}
			auth := core.NewAuthority(h, p, c.cfg.Strategy)
			auth.RegionIndex = i
			auth.SetCacheTimeouts(c.cfg.CacheIdle, c.cfg.CacheHard)
			n.auths = append(n.auths, auth)
			for _, r := range p.Rules {
				// Band the partition index into the entry ID so clips of
				// the same policy rule from two partitions hosted here
				// don't replace each other (matches the simulator).
				r.ID = core.AuthorityEntryID(i, r.ID)
				mod := proto.FlowMod{Table: proto.TableAuthority, Op: proto.OpAdd, Rule: r}
				if err := n.sw.ApplyFlowMod(now, &mod); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// partitionRuleBase offsets partition-rule IDs away from policy and cache
// rule IDs (matches the simulator's base).
const partitionRuleBase uint64 = 1 << 50

// Assignment returns the partition→authority assignment the cluster runs.
func (c *Cluster) Assignment() core.Assignment { return c.assign }

// Inject enqueues a packet at the ingress switch's injection ring. It
// returns false if the ring is full (backpressure), the switch is unknown
// or killed, or the cluster is closing.
func (c *Cluster) Inject(ingress uint32, h packet.Header, size int) bool {
	if !c.tryInject(ingress, h, size, c.traceID(&h, 0)) {
		c.dropped.Add(1)
		return false
	}
	return true
}

// traceID mints a packet's trace ID (0 = unsampled). seq is the packet's
// sequence within the workload; the flow hash is only computed when
// sampling is on, so the disabled cost is one atomic load.
func (c *Cluster) traceID(h *packet.Header, seq uint64) uint64 {
	if c.sampler.Rate() == 0 {
		return 0
	}
	return c.sampler.TraceID(
		telemetry.HashFlow(h.IPSrc, h.IPDst, h.TPSrc, h.TPDst, h.IPProto), seq)
}

// traceIngress publishes the ingress span that opens a sampled packet's
// journey.
func (c *Cluster) traceIngress(ingress uint32, h *packet.Header, trace uint64) {
	if trace == 0 || !c.rec.Enabled() {
		return
	}
	c.rec.Publish(telemetry.Event{
		Kind: telemetry.EvIngress, Node: ingress, Trace: trace, Flow: flowOf(h),
	})
}

// tryInject is Inject without the drop accounting, for callers that retry
// on backpressure and record the loss themselves. trace is the packet's
// sampled trace ID (0 = unsampled), minted by the caller via traceID.
func (c *Cluster) tryInject(ingress uint32, h packet.Header, size int, trace uint64) bool {
	if c.closed.Load() {
		return false
	}
	n, ok := c.switches[ingress]
	if !ok || n.killed.Load() {
		return false
	}
	frame := dataFrame{
		pkt:      packet.Packet{Header: h, Size: size},
		injected: nowNS(),
		trace:    trace,
	}
	ring := n.ring(c.injSlot)
	n.injectMu.Lock()
	pushed := ring.push(&frame)
	n.injectMu.Unlock()
	if !pushed {
		return false
	}
	c.injected.Add(1)
	c.traceIngress(ingress, &h, trace)
	n.noteQueueDepth(int64(ring.len()))
	n.wake()
	return true
}

// injectBurst pushes a pre-built frame burst onto the ingress switch's
// injection ring under one lock and one wakeup, returning how many frames
// fit. Frames are stamped by the caller; leftovers (ring full, unknown or
// killed switch, closing cluster) are the caller's to retry or account.
func (c *Cluster) injectBurst(ingress uint32, frames []dataFrame) int {
	if c.closed.Load() || len(frames) == 0 {
		return 0
	}
	n, ok := c.switches[ingress]
	if !ok || n.killed.Load() {
		return 0
	}
	ring := n.ring(c.injSlot)
	n.injectMu.Lock()
	pushed := ring.pushBurst(frames)
	n.injectMu.Unlock()
	if pushed > 0 {
		c.injected.Add(uint64(pushed))
		if c.sampler.Rate() != 0 {
			for i := 0; i < pushed; i++ {
				c.traceIngress(ingress, &frames[i].pkt.Header, frames[i].trace)
			}
		}
		n.noteQueueDepth(int64(ring.len()))
		n.wake()
	}
	return pushed
}

// ring returns the input ring fed by producer slot, allocating it on
// first use. The CAS makes concurrent first touches of a slot safe (the
// injection slot races only here — pushes are serialized by injectMu);
// once published, the slot's single-producer discipline takes over.
func (n *node) ring(slot int) *frameRing {
	if r := n.in[slot].Load(); r != nil {
		return r
	}
	r := newFrameRing(n.ringDepth)
	if n.in[slot].CompareAndSwap(nil, r) {
		return r
	}
	return n.in[slot].Load()
}

// wake nudges the node's data goroutine after a ring push.
func (n *node) wake() {
	select {
	case n.notify <- struct{}{}:
	default:
	}
}

// queueLen sums the node's input-ring occupancy — the burst data plane's
// equivalent of the old single data queue's length.
func (n *node) queueLen() int {
	total := 0
	for i := range n.in {
		if r := n.in[i].Load(); r != nil {
			total += r.len()
		}
	}
	return total
}

// Dropped returns packets shed by full queues or failed paths.
func (c *Cluster) Dropped() uint64 { return c.dropped.Load() }

// Measurements returns a snapshot of the cluster's recorded statistics
// (latency distributions, delivery and drop counts, failover counters),
// merged from the per-node measurement shards. Safe to call while the
// cluster runs; it never blocks the data plane.
func (c *Cluster) Measurements() *core.Measurements {
	m := &core.Measurements{}
	c.ext.mergeInto(m)
	for _, n := range c.switches {
		n.stats.mergeInto(m)
	}
	c.cold.mergeInto(m)
	return m
}

// dropKind classifies a terminal packet loss for Measurements.
type dropKind int

const (
	dropUnreachable dropKind = iota
	dropHole
	dropQueue
)

// drop records a terminal packet loss against the given measurement shard
// (the handling node's, or c.ext on the injection path).
//
// All terminal paths record their Measurements counter BEFORE bumping
// completed: Deployment.Run returns the moment completed catches up with
// injected, and a caller reading Measurements right after must see the
// packet's counter — otherwise the accounting identity (injected =
// delivered + drops) transiently under-counts.
func (c *Cluster) drop(s *nodeStats, kind dropKind) {
	c.dropped.Add(1)
	switch kind {
	case dropHole:
		s.dropHole.Add(1)
	case dropQueue:
		s.dropQueue.Add(1)
	default:
		s.dropUnreachable.Add(1)
	}
	c.completed.Add(1)
}

// shedRedirect records a packet deliberately shed by the ingress redirect
// token bucket under a miss storm.
func (c *Cluster) shedRedirect(s *nodeStats) {
	c.dropped.Add(1)
	s.dropRedirectShed.Add(1)
	c.completed.Add(1)
}

// policyDrop records an intentional drop (the packet matched a drop rule);
// it is not counted as a loss. firstPacket marks a flow-setup decision
// made at an authority switch.
func (c *Cluster) policyDrop(s *nodeStats, firstPacket bool) {
	s.dropPolicy.Add(1)
	if firstPacket {
		s.setupsCompleted.Add(1)
	}
	c.completed.Add(1)
}

// dataLoop is a switch's data plane: pull a burst of frames from the input
// rings, run the whole vector through one classification pass, and flush
// the results downstream in per-destination bursts (see burst.go). When a
// full scan of the rings comes up empty the loop blocks on the node's
// notify channel; producers push first and kick after, so a wakeup can
// never be lost.
func (c *Cluster) dataLoop(n *node) {
	defer c.wg.Done()
	s := newBurstScratch(c)
	for {
		select {
		case <-c.ctx.Done():
			return
		case <-n.done:
			return
		default:
		}
		total := 0
		for i := range n.in {
			if total == len(s.frames) {
				break
			}
			if r := n.in[i].Load(); r != nil {
				total += r.popBurst(s.frames[total:])
			}
		}
		if total == 0 {
			select {
			case <-c.ctx.Done():
				return
			case <-n.done:
				return
			case <-n.notify:
			}
			continue
		}
		c.processBurst(n, s, s.frames[:total])
	}
}

// traceVerdict publishes a terminal packet event when tracing is on. lat
// is the delivery latency in nanoseconds (0 for drops); trace the packet's
// sampled trace ID (0 = unsampled).
func (c *Cluster) traceVerdict(node uint32, verdict uint8, ruleID uint64, h *packet.Header, lat int64, trace uint64) {
	if !c.tracePkt(trace) {
		return
	}
	c.rec.Publish(telemetry.Event{
		Kind: telemetry.EvVerdict, Node: node, Verdict: verdict,
		RuleID: ruleID, Value: uint64(lat), Flow: flowOf(h), Trace: trace,
	})
}

// installWriter serializes one switch's cache-install writes toward the
// controller, replacing a goroutine spawn per cache miss.
func (c *Cluster) installWriter(n *node) {
	defer c.wg.Done()
	for {
		select {
		case <-c.ctx.Done():
			return
		case <-n.done:
			return
		case msg := <-n.installQ:
			_ = c.writeToController(n, msg)
		}
	}
}

// failoverLocal re-points a partition rule at the next live authority in
// the partition's failover list — the ingress-side half of DIFANE's
// failover, requiring no controller involvement because backup authority
// rules are pre-installed.
func (c *Cluster) failoverLocal(n *node, r flowspace.Rule, dead uint32) (uint32, bool) {
	idx, ok := c.assign.PartitionOfRuleID(partitionRuleBase, r.ID)
	if !ok {
		return 0, false
	}
	next := uint32(0)
	found := false
	for _, h := range c.failover[idx] {
		if h != dead && c.nodeUsable(h) {
			next, found = h, true
			break
		}
	}
	if !found {
		return 0, false
	}
	nr := r
	nr.Action = flowspace.Action{Kind: flowspace.ActRedirect, Arg: next}
	mod := proto.FlowMod{Table: proto.TablePartition, Op: proto.OpAdd, Rule: nr}
	_ = n.sw.ApplyFlowMod(nowSec(), &mod)
	n.stats.failoversLocal.Add(1)
	if c.rec.Enabled() {
		c.rec.Publish(telemetry.Event{
			Kind: telemetry.EvFailoverLocal, Node: n.id, Peer: next,
			Table: uint8(proto.TablePartition), RuleID: r.ID, Value: uint64(dead),
		})
	}
	return next, true
}

// nodeUsable reports whether the failure detector currently believes the
// switch can serve traffic.
func (c *Cluster) nodeUsable(id uint32) bool {
	n, ok := c.switches[id]
	return ok && !n.killed.Load() && n.alive.Load()
}

// NodeAlive reports the failure detector's verdict for a switch.
func (c *Cluster) NodeAlive(id uint32) bool { return c.nodeUsable(id) }

// noteQueueDepth records the data queue's high-water mark.
func (n *node) noteQueueDepth(d int64) {
	for {
		cur := n.peakQueue.Load()
		if d <= cur || n.peakQueue.CompareAndSwap(cur, d) {
			return
		}
	}
}

// conns returns the node's current control-connection pair.
func (n *node) conns() (net.Conn, net.Conn) {
	n.connMu.Lock()
	defer n.connMu.Unlock()
	return n.ctrl, n.ctrlPeer
}

// closeConns closes the node's current control-connection pair, unblocking
// any reader.
func (n *node) closeConns() {
	n.connMu.Lock()
	defer n.connMu.Unlock()
	if n.ctrl != nil {
		n.ctrl.Close()
	}
	if n.ctrlPeer != nil {
		n.ctrlPeer.Close()
	}
}

// ctrlManager owns a node's control-connection lifecycle: it runs one
// reader per side, and when either side fails it tears the session down
// and re-establishes the connection with exponential backoff and jitter.
func (c *Cluster) ctrlManager(n *node) {
	defer c.wg.Done()
	for {
		sw, peer := n.conns()
		fail := make(chan struct{}, 2)
		var session sync.WaitGroup
		session.Add(2)
		go func() {
			defer session.Done()
			c.switchCtrlRead(n, sw)
			fail <- struct{}{}
		}()
		go func() {
			defer session.Done()
			c.relayRead(n, peer)
			fail <- struct{}{}
		}()
		<-fail
		sw.Close()
		peer.Close()
		session.Wait()
		if c.ctx.Err() != nil || n.killed.Load() {
			return
		}
		if !c.reconnect(n) {
			return
		}
	}
}

// reconnect re-establishes a node's control connection: while a partition
// fault is injected it holds and re-checks; otherwise it retries per the
// cluster's RetryPolicy and, when attempts are exhausted, marks the node
// dead so the failover machinery takes over.
func (c *Cluster) reconnect(n *node) bool {
	attempt := 0
	for {
		if c.ctx.Err() != nil || n.killed.Load() {
			return false
		}
		if n.partitioned.Load() || c.ctrlDown.Load() {
			// A severed control link or a dead controller is not a dial
			// failure: hold until the fault is healed, without burning
			// retry attempts.
			if !sleepCtx(c.ctx, c.cfg.Heartbeat.Interval) {
				return false
			}
			continue
		}
		sw, peer, err := c.trans.connect(c.ctx, n.id)
		if err == nil {
			n.connMu.Lock()
			n.ctrl, n.ctrlPeer = sw, peer
			n.connMu.Unlock()
			c.cold.controlReconnects.Add(1)
			if c.rec.Enabled() {
				c.rec.Publish(telemetry.Event{Kind: telemetry.EvReconnect, Node: n.id})
			}
			return true
		}
		attempt++
		if attempt >= c.cfg.Retry.MaxAttempts {
			c.markDead(n)
			return false
		}
		if !sleepCtx(c.ctx, c.cfg.Retry.Backoff(attempt)) {
			return false
		}
	}
}

// switchCtrlRead is the switch side of the control connection: it applies
// commands from the controller, echoes heartbeats, and answers barriers
// and stats requests.
func (c *Cluster) switchCtrlRead(n *node, conn net.Conn) {
	for {
		msg, err := proto.ReadMessage(conn)
		if err != nil {
			return
		}
		switch m := msg.(type) {
		case *proto.FlowMod:
			// Epoch fencing: a fenced install (Epoch != 0) older than the
			// highest epoch this switch has accepted is a straggler from a
			// dead controller — reject it and report the current fence.
			// Epoch-0 installs (data-plane origin) bypass the fence.
			if m.Epoch != 0 {
				before := n.epoch.Load()
				if !n.raiseEpoch(m.Epoch) {
					c.cold.staleInstallsRejected.Add(1)
					c.conv.NoteReject(m.Epoch, nowNS())
					if c.rec.Enabled() {
						c.rec.Publish(telemetry.Event{
							Kind: telemetry.EvEpochReject, Node: n.id, Value: m.Epoch,
						})
					}
					rep := &proto.EpochReport{Node: n.id, Epoch: n.epoch.Load()}
					go func() { _ = c.writeToController(n, rep) }()
					continue
				}
				if m.Epoch > before && c.rec.Enabled() {
					c.rec.Publish(telemetry.Event{
						Kind: telemetry.EvEpochRaise, Node: n.id, Value: m.Epoch,
					})
				}
				// Convergence bookkeeping: the first fenced mod of an epoch
				// opens its timeline; the deployment's quiesce point closes it.
				c.conv.NoteMod(m.Epoch, m.Op == proto.OpDelete, nowNS(), c.counterTotals())
			}
			// No node lock: the tables serialize writers internally and
			// publish snapshots, so installs never stall the data plane.
			_ = n.sw.ApplyFlowMod(nowSec(), m)
		case *proto.CacheInstall:
			// Relayed from an authority switch via the controller.
			for i := range m.Rules {
				_ = n.sw.ApplyFlowMod(nowSec(), &m.Rules[i])
			}
			// When the triggering packet was sampled, land the install in
			// its journey (the untraced per-rule EvInstall hook events fire
			// regardless).
			if m.Trace != 0 && c.rec.Enabled() {
				var ruleID uint64
				if len(m.Rules) > 0 {
					ruleID = m.Rules[0].Rule.ID
				}
				c.rec.Publish(telemetry.Event{
					Kind: telemetry.EvInstall, Node: n.id,
					Table: uint8(proto.TableCache), RuleID: ruleID, Trace: m.Trace,
				})
			}
		case *proto.BarrierReq:
			// Replies are written asynchronously: net.Pipe writes block
			// until read, and a reply written inline from this loop could
			// deadlock against a relay writing toward this switch.
			reply := &proto.BarrierReply{XID: m.XID}
			go func() { _ = c.writeToController(n, reply) }()
		case *proto.StatsReq:
			pkts, bytes, ok := n.sw.Counters(m.RuleID)
			if !ok {
				// A policy-rule query: aggregate the banded per-partition
				// clips of that rule across the authority table, keeping
				// rule counters transparent to the controller.
				for _, e := range n.sw.Table(proto.TableAuthority).Entries() {
					if core.AuthorityEntryRuleID(e.Rule.ID) == m.RuleID {
						pkts += e.Packets
						bytes += e.Bytes
						ok = true
					}
				}
			}
			reply := &proto.StatsReply{XID: m.XID, Packets: pkts, Bytes: bytes, OK: ok}
			go func() { _ = c.writeToController(n, reply) }()
		case *proto.Heartbeat:
			// A probe is the switch's evidence the controller is alive:
			// stamp it, echo it, and flush anything buffered during an
			// outage now that the path is confirmed.
			n.lastProbe.Store(time.Now().UnixNano())
			hb := m
			go func() { _ = c.writeToController(n, hb) }()
			if len(n.outbox) > 0 {
				go c.drainOutbox(n)
			}
		case *proto.BFDControl:
			c.handleBFDAtSwitch(n, m)
		}
	}
}

// raiseEpoch accepts epoch e into the switch's fence if it is not stale,
// monotonically raising the fence. Returns false for a stale epoch.
func (n *node) raiseEpoch(e uint64) bool {
	for {
		cur := n.epoch.Load()
		if e < cur {
			return false
		}
		if e == cur || n.epoch.CompareAndSwap(cur, e) {
			return true
		}
	}
}

// relayRead is the controller side: it reads what the switch sends
// upstream (cache installs, heartbeat echoes, replies) and either relays
// or hands the message to a waiting caller.
func (c *Cluster) relayRead(n *node, conn net.Conn) {
	for {
		msg, err := proto.ReadMessage(conn)
		if err != nil {
			return
		}
		switch m := msg.(type) {
		case *proto.CacheInstall:
			c.clearPending(n.id)
			dst, ok := c.switches[m.Ingress]
			if !ok {
				continue
			}
			// Asynchronous for the same deadlock-avoidance reason as the
			// switch-side replies.
			install := m
			go func() { _ = c.writeToSwitch(dst, install) }()
		case *proto.Heartbeat:
			n.lastBeat.Store(time.Now().UnixNano())
		case *proto.BFDControl:
			c.handleBFDAtController(n, m)
		case *proto.EpochReport:
			// A switch rejected a stale install and is telling us its
			// current fence — surfaced in Status for the operator.
			n.reportedEpoch.Store(m.Epoch)
		case *proto.BarrierReply, *proto.StatsReply:
			select {
			case n.replies <- m:
			default:
			}
		}
	}
}

// errPartitioned reports a control write suppressed by an injected
// control-plane partition.
var errPartitioned = fmt.Errorf("wire: control plane partitioned")

// writeToSwitch writes a controller→switch control message, honouring
// injected delay and partition faults.
func (c *Cluster) writeToSwitch(n *node, msg proto.Message) error {
	return c.writeControl(n, msg, false)
}

// writeToController writes a switch→controller control message, honouring
// injected delay and partition faults. While the controller is unreachable
// (crashed, or silent past the heartbeat threshold) cache installs are
// parked in the switch's bounded outbox instead of being lost; they drain
// when heartbeats resume.
func (c *Cluster) writeToController(n *node, msg proto.Message) error {
	if _, ok := msg.(*proto.CacheInstall); ok && c.controllerUnreachable(n) {
		c.bufferEvent(n, msg)
		return nil
	}
	return c.writeControl(n, msg, true)
}

// controllerUnreachable is the switch-side outage verdict: the controller
// was explicitly killed, the switch's BFD session toward it detected a
// failure (an established session that is no longer Up), or — the coarse
// fallback — its heartbeat probes have been silent past the miss
// threshold. BFD receive traffic stamps lastProbe, so while BFD runs the
// heartbeat term stays quiet and the verdict flips within a detect time.
func (c *Cluster) controllerUnreachable(n *node) bool {
	if c.ctrlDown.Load() {
		return true
	}
	if n.bfdSw != nil && n.bfdSw.EverUp() && !n.bfdSw.Up() {
		return true
	}
	hb := c.cfg.Heartbeat
	silence := time.Since(time.Unix(0, n.lastProbe.Load()))
	return silence > time.Duration(hb.MissThreshold)*hb.Interval
}

// bufferEvent parks a controller-bound event in the switch's bounded
// outbox, shedding (and counting) on overflow.
func (c *Cluster) bufferEvent(n *node, msg proto.Message) {
	select {
	case n.outbox <- msg:
		c.cold.outageBuffered.Add(1)
	default:
		c.cold.outageDropped.Add(1)
	}
}

// drainOutbox replays a switch's buffered events toward the controller in
// order, stopping at the first failure (the next heartbeat retriggers it).
func (c *Cluster) drainOutbox(n *node) {
	for {
		select {
		case msg := <-n.outbox:
			if err := c.writeControl(n, msg, true); err != nil {
				// Park it again without recounting it as newly buffered.
				select {
				case n.outbox <- msg:
				default:
					c.cold.outageDropped.Add(1)
				}
				return
			}
			c.cold.outageDrained.Add(1)
		default:
			return
		}
	}
}

func (c *Cluster) writeControl(n *node, msg proto.Message, switchSide bool) error {
	if n.partitioned.Load() {
		return errPartitioned
	}
	if d := time.Duration(n.ctrlDelay.Load()); d > 0 {
		if !sleepCtx(c.ctx, d) {
			return c.ctx.Err()
		}
	}
	ctrl, peer := n.conns()
	conn := peer
	if switchSide {
		conn = ctrl
	}
	if conn == nil {
		return fmt.Errorf("wire: no control connection for node %d", n.id)
	}
	return proto.WriteMessage(conn, msg)
}

// InstallRule sends a FlowMod to a switch over its control connection,
// retrying per the cluster's RetryPolicy with exponential backoff. The mod
// is stamped with the controller's current fencing epoch unless the caller
// set one explicitly (a stale explicit epoch is how tests provoke — and how
// a zombie controller would suffer — fencing rejections).
func (c *Cluster) InstallRule(sw uint32, mod proto.FlowMod) error {
	n, ok := c.switches[sw]
	if !ok {
		return fmt.Errorf("wire: no switch %d", sw)
	}
	return c.installRule(n, &mod)
}

func (c *Cluster) installRule(n *node, mod *proto.FlowMod) error {
	if mod.Epoch == 0 {
		mod.Epoch = c.epoch.Load()
	}
	var err error
	for attempt := 1; ; attempt++ {
		err = c.writeToSwitch(n, mod)
		if err == nil {
			return nil
		}
		if attempt >= c.cfg.Retry.MaxAttempts {
			return err
		}
		if !sleepCtx(c.ctx, c.cfg.Retry.Backoff(attempt)) {
			return c.ctx.Err()
		}
	}
}

// Barrier round-trips a barrier through a switch's control connection,
// fencing previously sent control messages.
func (c *Cluster) Barrier(sw uint32, xid uint32) error {
	n, ok := c.switches[sw]
	if !ok {
		return fmt.Errorf("wire: no switch %d", sw)
	}
	if err := c.writeToSwitch(n, &proto.BarrierReq{XID: xid}); err != nil {
		return err
	}
	select {
	case msg := <-n.replies:
		if rep, ok := msg.(*proto.BarrierReply); !ok || rep.XID != xid {
			return fmt.Errorf("wire: unexpected barrier reply %v", msg)
		}
		return nil
	case <-time.After(5 * time.Second):
		return fmt.Errorf("wire: barrier timeout")
	case <-c.ctx.Done():
		return c.ctx.Err()
	}
}

// Stats fetches a rule's counters from a switch over the control plane.
func (c *Cluster) Stats(sw uint32, ruleID uint64, xid uint32) (*proto.StatsReply, error) {
	n, ok := c.switches[sw]
	if !ok {
		return nil, fmt.Errorf("wire: no switch %d", sw)
	}
	if err := c.writeToSwitch(n, &proto.StatsReq{XID: xid, RuleID: ruleID}); err != nil {
		return nil, err
	}
	select {
	case msg := <-n.replies:
		rep, ok := msg.(*proto.StatsReply)
		if !ok || rep.XID != xid {
			return nil, fmt.Errorf("wire: unexpected stats reply %v", msg)
		}
		return rep, nil
	case <-time.After(5 * time.Second):
		return nil, fmt.Errorf("wire: stats timeout")
	case <-c.ctx.Done():
		return nil, c.ctx.Err()
	}
}

// CacheLen returns the number of cache entries at a switch.
func (c *Cluster) CacheLen(sw uint32) int {
	n, ok := c.switches[sw]
	if !ok {
		return 0
	}
	return n.sw.Table(proto.TableCache).Len()
}

// drainTimeout bounds how long Close waits for in-flight frames to reach a
// terminal point before tearing the cluster down.
const drainTimeout = time.Second

// Close gracefully stops the cluster: it stops accepting injections,
// drains in-flight data frames (bounded by drainTimeout), then shuts every
// goroutine down and waits for them. Close is idempotent.
func (c *Cluster) Close() error {
	c.closeOnce.Do(func() {
		c.closed.Store(true)
		deadline := time.Now().Add(drainTimeout)
		for time.Now().Before(deadline) && !c.drained() {
			time.Sleep(time.Millisecond)
		}
		if c.fabric != nil {
			c.fabric.close()
		}
		c.cancel()
		c.trans.close()
		for _, n := range c.switches {
			n.closeConns()
		}
		c.wg.Wait()
		if c.tsrv != nil {
			_ = c.tsrv.Close()
		}
		c.closeHA()
	})
	return nil
}

// drained reports whether every live switch's input rings are empty and no
// frame is in flight inside the data fabric.
func (c *Cluster) drained() bool {
	if c.fabric != nil && c.fabric.pending() > 0 {
		return false
	}
	for _, n := range c.switches {
		if n.killed.Load() {
			continue
		}
		if n.queueLen() > 0 {
			return false
		}
	}
	return true
}

// sleepCtx sleeps d, returning false early if ctx is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

var start = time.Now()

// nowSec is monotonic seconds since cluster package init, the time base
// the TCAM tables use in wire mode.
func nowSec() float64 { return time.Since(start).Seconds() }

// nowNS is monotonic nanoseconds since start — the hot path's clock.
func nowNS() int64 { return int64(time.Since(start)) }

// frameSec maps a frame's inject stamp onto the nowSec time base without
// another clock read.
func frameSec(f *dataFrame) float64 { return float64(f.injected) / 1e9 }
