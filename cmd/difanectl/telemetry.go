package main

// The telemetry subcommands: `trace` and `metrics` are thin HTTP clients
// for a cluster's telemetry endpoint (wire.TelemetryConfig.Addr);
// `serve` boots a demo wire cluster with the endpoint up and traffic
// flowing, so the other two have something to talk to.

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"sort"
	"strings"
	"time"

	"difane"
	"difane/internal/telemetry"
)

// traceResponse mirrors telemetry.TraceResponse for decoding.
type traceResponse struct {
	NowNS   int64                   `json:"now_ns"`
	Enabled bool                    `json:"enabled"`
	Stats   telemetry.RecorderStats `json:"stats"`
	Events  []telemetry.EventJSON   `json:"events"`
}

func httpClient() *http.Client { return &http.Client{Timeout: 10 * time.Second} }

func fetchTrace(addr string, params url.Values) (*traceResponse, error) {
	u := "http://" + addr + "/trace"
	if len(params) > 0 {
		u += "?" + params.Encode()
	}
	resp, err := httpClient().Get(u)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var tr traceResponse
	if err := json.Unmarshal(body, &tr); err != nil {
		return nil, fmt.Errorf("decoding /trace response: %w", err)
	}
	return &tr, nil
}

// runTrace is `difanectl trace`: dump, follow, or narrate the flight
// recorder of a live cluster.
func runTrace(args []string) int {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	addr := fs.String("addr", "", "telemetry endpoint (host:port), required")
	follow := fs.Bool("follow", false, "poll for new events until interrupted")
	node := fs.String("node", "", "only events at this switch ID")
	kind := fs.String("kind", "", "comma-separated event kinds (forward,redirect,verdict,...)")
	flow := fs.Uint64("flow", 0, "only events of this flow hash")
	ipsrc := fs.String("ipsrc", "", "only events of flows from this IPv4 source")
	ipdst := fs.String("ipdst", "", "only events of flows to this IPv4 destination")
	tpdst := fs.Uint("tpdst", 0, "only events of flows to this transport port")
	limit := fs.Int("limit", 64, "max events per fetch (0 = all retained)")
	story := fs.Bool("story", false, "reconstruct one flow's hop-by-hop story (needs a flow filter)")
	_ = fs.Parse(args)
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "trace: -addr is required (see `difanectl serve`)")
		return 2
	}

	params := url.Values{}
	if *node != "" {
		params.Set("node", *node)
	}
	if *kind != "" {
		params.Set("kind", *kind)
	}
	if *flow != 0 {
		params.Set("flow", fmt.Sprint(*flow))
	}
	if *ipsrc != "" {
		params.Set("ipsrc", *ipsrc)
	}
	if *ipdst != "" {
		params.Set("ipdst", *ipdst)
	}
	if *tpdst != 0 {
		params.Set("tpdst", fmt.Sprint(*tpdst))
	}

	if *story {
		if *flow == 0 && *ipsrc == "" && *ipdst == "" && *tpdst == 0 {
			fmt.Fprintln(os.Stderr, "trace: -story needs a flow filter (-flow, -ipsrc, -ipdst, or -tpdst)")
			return 2
		}
		params.Set("limit", "0")
		tr, err := fetchTrace(*addr, params)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			return 1
		}
		printStory(tr)
		return 0
	}

	params.Set("limit", fmt.Sprint(*limit))
	tr, err := fetchTrace(*addr, params)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trace:", err)
		return 1
	}
	if !tr.Enabled && len(tr.Events) == 0 {
		fmt.Println("(tracing is disabled on this cluster; start it with Telemetry.Tracing or SetTracing)")
	}
	for _, e := range tr.Events {
		fmt.Println(formatEvent(e))
	}
	if !*follow {
		return 0
	}
	since := tr.NowNS
	params.Set("limit", "0")
	for {
		time.Sleep(500 * time.Millisecond)
		params.Set("since", fmt.Sprint(since))
		tr, err := fetchTrace(*addr, params)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			return 1
		}
		for _, e := range tr.Events {
			fmt.Println(formatEvent(e))
		}
		since = tr.NowNS
	}
}

// formatEvent renders one event as a single human-readable line.
func formatEvent(e telemetry.EventJSON) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%12.3fms  %-9s %-15s", float64(e.TS)/1e6, nodeName(e.Node), e.Kind)
	switch e.Kind {
	case "ingress":
		b.WriteString(" packet entered the data plane")
	case "install-triggered":
		fmt.Fprintf(&b, " cache rule %d decided for sw%d", e.RuleID, e.Peer)
	case "forward":
		fmt.Fprintf(&b, " -> sw%d", e.Peer)
		if e.Table != "" {
			fmt.Fprintf(&b, " via %s rule %d", e.Table, e.RuleID)
		}
	case "redirect":
		fmt.Fprintf(&b, " -> authority sw%d", e.Peer)
	case "authority":
		fmt.Fprintf(&b, " resolved rule %d (ingress sw%d)", e.RuleID, e.Peer)
	case "verdict":
		fmt.Fprintf(&b, " %s", e.Verdict)
		if e.Verdict == "delivered" {
			fmt.Fprintf(&b, " in %s", time.Duration(e.Value))
		}
	case "shed":
		fmt.Fprintf(&b, " %s", e.Verdict)
	case "install", "evict", "expire":
		fmt.Fprintf(&b, " %s rule %d", e.Table, e.RuleID)
	case "failover-local":
		fmt.Fprintf(&b, " partition rule %d repointed sw%d -> sw%d", e.RuleID, e.Value, e.Peer)
	case "promote":
		fmt.Fprintf(&b, " %d partition rules withdrawn", e.Value)
	case "epoch-raise", "epoch-reject", "controller-down", "controller-up":
		fmt.Fprintf(&b, " epoch %d", e.Value)
	case "bfd-up", "bfd-down":
		fmt.Fprintf(&b, " discr %d", e.Peer)
	case "leader-elected":
		fmt.Fprintf(&b, " replica %d epoch %d", e.Peer, e.Value)
	}
	if e.Src != "" || e.Dst != "" {
		fmt.Fprintf(&b, "  [%s -> %s]", e.Src, e.Dst)
	}
	return b.String()
}

func nodeName(id uint32) string {
	if id == telemetry.ClusterNode {
		return "cluster"
	}
	return fmt.Sprintf("sw%d", id)
}

// orderEvents returns evs merged into global timestamp order with a
// stable node-ID tie-break (then per-node sequence). The server usually
// sorts, but a story stitched from per-node rings must not depend on it:
// without the node tie-break, same-timestamp events from different nodes
// interleave in whatever order the rings were snapshotted.
func orderEvents(evs []telemetry.EventJSON) []telemetry.EventJSON {
	out := append([]telemetry.EventJSON(nil), evs...)
	sort.SliceStable(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Seq < b.Seq
	})
	return out
}

// printStory narrates a flow's events grouped by flow hash, so one filter
// that matches several flows prints several stories. Each story's events
// are merged across nodes into global timestamp order.
func printStory(tr *traceResponse) {
	byFlow := make(map[uint64][]telemetry.EventJSON)
	var order []uint64
	for _, e := range tr.Events {
		if e.Flow == 0 {
			continue
		}
		if _, seen := byFlow[e.Flow]; !seen {
			order = append(order, e.Flow)
		}
		byFlow[e.Flow] = append(byFlow[e.Flow], e)
	}
	if len(order) == 0 {
		fmt.Println("no flow events matched (is tracing enabled and traffic flowing?)")
		return
	}
	for h := range byFlow {
		byFlow[h] = orderEvents(byFlow[h])
	}
	sort.Slice(order, func(i, j int) bool { return byFlow[order[i]][0].TS < byFlow[order[j]][0].TS })
	for _, h := range order {
		evs := byFlow[h]
		first := evs[0]
		fmt.Printf("flow %d", h)
		if first.Src != "" || first.Dst != "" {
			fmt.Printf(" (%s -> %s proto %d)", first.Src, first.Dst, first.Proto)
		}
		fmt.Println()
		for _, e := range evs {
			fmt.Println("  " + formatEvent(e))
		}
	}
}

// runMetrics is `difanectl metrics`: scrape /metrics (or /vars with
// -json) from a live cluster and print it.
func runMetrics(args []string) int {
	fs := flag.NewFlagSet("metrics", flag.ExitOnError)
	addr := fs.String("addr", "", "telemetry endpoint (host:port), required")
	asJSON := fs.Bool("json", false, "scrape /vars (JSON) instead of /metrics (Prometheus text)")
	_ = fs.Parse(args)
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "metrics: -addr is required (see `difanectl serve`)")
		return 2
	}
	path := "/metrics"
	if *asJSON {
		path = "/vars"
	}
	resp, err := httpClient().Get("http://" + *addr + path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "metrics:", err)
		return 1
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintln(os.Stderr, "metrics:", resp.Status)
		return 1
	}
	_, _ = io.Copy(os.Stdout, resp.Body)
	return 0
}

// runServe is `difanectl serve`: boot a demo wire cluster with the
// telemetry endpoint bound and keep traffic flowing until the duration
// expires (or forever with -duration 0), so `difanectl trace` and
// `difanectl metrics` have a live target.
func runServe(args []string) int {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("telemetry", "127.0.0.1:9090", "address to serve the telemetry endpoint on")
	switches := fs.Int("switches", 8, "cluster size")
	replicas := fs.Int("replicas", 3, "controller replicas (>= 2 enables leader election; /ha shows the set)")
	tracing := fs.Bool("trace", true, "start with the flight recorder enabled")
	traceSample := fs.Int("trace-sample", 64, "trace 1 in N packets into end-to-end journeys (0 disables)")
	duration := fs.Duration("duration", 0, "stop after this long (0 = run until interrupted)")
	seed := fs.Int64("seed", 1, "traffic generator seed")
	rate := fs.Int("rate", 2000, "injected packets per second")
	_ = fs.Parse(args)
	if *switches < 2 {
		*switches = 2
	}

	ids := make([]uint32, *switches)
	policy := make([]difane.Rule, 0, *switches)
	for i := range ids {
		ids[i] = uint32(i)
		// Rule i forwards TPDst 1000+i to switch i, spreading deliveries
		// across every egress (the same shape as the throughput bench).
		policy = append(policy, difane.Rule{
			ID: uint64(i) + 1, Priority: 10,
			Match:  difane.MatchAll().WithExact(difane.FTPDst, 1000+uint64(i)),
			Action: difane.Action{Kind: difane.ActForward, Arg: uint32(i)},
		})
	}
	auths := []uint32{ids[*switches/4], ids[(3**switches)/4]}
	if auths[0] == auths[1] {
		auths = auths[:1]
	}
	wd, err := difane.NewWireDeployment(difane.ClusterConfig{
		Switches:      ids,
		Authorities:   auths,
		Policy:        policy,
		Strategy:      difane.StrategyExact,
		CacheCapacity: 256,
		QueueDepth:    8192,
		HA:            difane.HAConfig{Replicas: *replicas},
		Telemetry: difane.TelemetryConfig{
			Addr: *addr, Tracing: *tracing, TraceSample: *traceSample,
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		return 1
	}
	defer wd.Close()

	bound := wd.C.TelemetryAddr()
	fmt.Printf("wire cluster up: %d switches, authorities %v, tracing=%v\n", *switches, auths, *tracing)
	fmt.Printf("telemetry at http://%s  (try /metrics /vars /trace /status)\n", bound)
	fmt.Printf("  difanectl metrics -addr %s\n", bound)
	fmt.Printf("  difanectl trace -addr %s -follow\n", bound)
	if *traceSample > 0 {
		fmt.Printf("  difanectl journey -addr %s -slowest\n", bound)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	deadline := time.Time{}
	if *duration > 0 {
		deadline = time.Now().Add(*duration)
	}

	// A steady mixed workload: mostly repeat flows (cache hits) with a
	// rotating cold tail (authority detours), so every event kind shows up.
	rng := *seed
	next := func() uint64 { rng = rng*6364136223846793005 + 1442695040888963407; return uint64(rng) }
	interval := time.Second / time.Duration(*rate)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	var n uint64
	for {
		select {
		case <-stop:
			fmt.Println("\ninterrupted; shutting down")
			return 0
		case <-ticker.C:
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			fmt.Println("duration elapsed; shutting down")
			return 0
		}
		n++
		r := next()
		var k difane.Key
		if n%8 == 0 {
			k[difane.FIPSrc] = uint64(0x0a000000 + r%100000) // cold: new flow, detours
		} else {
			k[difane.FIPSrc] = uint64(0x0a000000 + r%64) // warm: repeats, cache hits
		}
		k[difane.FIPDst] = 0x0a000001
		k[difane.FTPDst] = 1000 + r%uint64(*switches)
		ingress := ids[int(r>>32)%len(ids)]
		wd.InjectPacket(0, ingress, k, 200, n%3)
	}
}
