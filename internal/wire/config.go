package wire

import (
	"fmt"
	"math/rand"
	"time"

	"difane/internal/core"
	"difane/internal/flowspace"
)

// ClusterConfig sizes the deployment.
type ClusterConfig struct {
	// Switches lists all switch IDs.
	Switches []uint32
	// Authorities lists the switches hosting authority rules.
	Authorities []uint32
	// Policy is the global rule set.
	Policy []flowspace.Rule
	// Strategy picks the cache-rule scheme.
	Strategy core.CacheStrategy
	// CacheCapacity bounds ingress caches (0 = unlimited).
	CacheCapacity int
	// CacheEviction picks victims for full ingress caches. The default is
	// LRU (earlier builds rejected inserts into a full cache outright);
	// core.EvictCostAware additionally runs the cost-aware scorer and the
	// adaptation loop from internal/cachepolicy.
	CacheEviction core.EvictionChoice
	// TCAMBudget, when >0, bounds each switch's total TCAM occupancy —
	// cache capacity is continuously derived as the budget minus the
	// authority/partition-rule footprint (see switchsim.Config.TCAMBudget).
	TCAMBudget int
	// CacheIdle / CacheHard are the timeouts authorities stamp onto
	// generated cache rules, in seconds (0 = none).
	CacheIdle float64
	CacheHard float64
	// CacheAdaptInterval paces the cost-aware adaptation loop (default
	// 250ms; only runs under core.EvictCostAware).
	CacheAdaptInterval time.Duration
	// QueueDepth sizes the delivery-notification channel and is the default
	// depth of each per-producer data ring (see FabricConfig.RingDepth).
	QueueDepth int
	// UseTCP runs the control plane over loopback TCP sockets instead of
	// in-process pipes, exercising real kernel socket framing.
	UseTCP bool
	// Fabric tunes the data plane: burst and ring geometry of the
	// in-process path, plus the optional batched loopback-TCP carrier.
	Fabric FabricConfig
	// Heartbeat tunes the coarse heartbeat failure detector (now the
	// fallback behind BFD).
	Heartbeat HeartbeatConfig
	// BFD tunes the millisecond-class BFD-style failure detector that runs
	// session state machines over every control channel.
	BFD BFDConfig
	// HA configures replicated controllers: WAL log shipping between
	// replicas, automatic leader election fenced by the epoch mechanism.
	HA HAConfig
	// Retry bounds control-plane retries: reconnect backoff and FlowMod
	// installs.
	Retry RetryPolicy
	// Overload tunes miss-storm protection and the controller-outage
	// buffer.
	Overload OverloadConfig
	// Partition tunes the partitioner.
	Partition core.PartitionConfig
	// Telemetry tunes the flight recorder and the optional HTTP metrics
	// endpoint.
	Telemetry TelemetryConfig

	// trans overrides the control transport (tests only).
	trans transport
}

// FabricConfig is the single options block for the data plane carrying
// frames between switches: the burst/ring geometry of the in-process fast
// path, the frame-slab pool, and the optional batched loopback-TCP carrier
// (UseTCP). It consolidates what used to be spread across DataFabricConfig
// and ad-hoc constants. Zero values mean "validated default"; cfg.Validate
// fills them in place.
type FabricConfig struct {
	// UseTCP carries inter-switch data frames over per-pair loopback TCP
	// connections with a batching writer: the first frame of a batch wakes
	// the connection's writer immediately, and frames arriving while a
	// write is in flight coalesce into the next batch. The default is
	// direct in-process ring handoff.
	UseTCP bool
	// FlushInterval is the safety-net flush period bounding how long a
	// batched frame can wait if a wakeup is lost (default 200µs).
	FlushInterval time.Duration
	// FlushBytes sizes each connection's retained batch buffer; larger
	// batches still go out whole, but their buffers are released afterward
	// instead of pinning the burst's high-water mark (default 16 KiB).
	FlushBytes int
	// Burst caps how many frames a switch pulls from its input rings and
	// runs through one classification pass — one TCAM snapshot acquisition,
	// one stats update, one downstream handoff per destination — per
	// iteration. It also sizes the pooled injection slabs (default 64).
	Burst int
	// RingDepth sizes each per-producer SPSC data ring, rounded up to a
	// power of two (default: QueueDepth). Every switch has one ring slot
	// per peer switch plus one injection slot; small clusters pre-populate
	// every slot at boot, while large ones allocate rings lazily on first
	// use so memory scales with the producer→consumer pairs traffic
	// actually exercises — not with switches². Worst-case buffering per
	// switch is (peers+1)·RingDepth frames.
	RingDepth int
}

func (d *FabricConfig) applyDefaults(queueDepth int) error {
	if d.FlushInterval <= 0 {
		d.FlushInterval = 200 * time.Microsecond
	}
	if d.FlushBytes <= 0 {
		d.FlushBytes = 16 << 10
	}
	if d.Burst <= 0 {
		d.Burst = 64
	}
	if d.RingDepth <= 0 {
		d.RingDepth = queueDepth
	}
	// Round the ring up to a power of two so occupancy math is a mask.
	n := 1
	for n < d.RingDepth {
		n <<= 1
	}
	d.RingDepth = n
	if d.Burst > d.RingDepth {
		return fmt.Errorf("wire: fabric burst %d exceeds ring depth %d", d.Burst, d.RingDepth)
	}
	return nil
}

// HeartbeatConfig tunes the heartbeat-based failure detector between the
// controller and every switch.
type HeartbeatConfig struct {
	// Interval is the probe period (default 50ms).
	Interval time.Duration
	// MissThreshold is how many silent intervals mark a switch dead
	// (default 3).
	MissThreshold int
	// RedirectTimeout is how long a redirect may stay unacknowledged by an
	// authority switch's data plane before the switch is treated as dead
	// even if its control plane still echoes heartbeats (default
	// 2·Interval·MissThreshold).
	RedirectTimeout time.Duration
}

func (h *HeartbeatConfig) applyDefaults() {
	if h.Interval <= 0 {
		h.Interval = 50 * time.Millisecond
	}
	if h.MissThreshold <= 0 {
		h.MissThreshold = 3
	}
	if h.RedirectTimeout <= 0 {
		h.RedirectTimeout = 2 * time.Duration(h.MissThreshold) * h.Interval
	}
}

// BFDConfig tunes the BFD-style failure detector: per-switch async
// session state machines (internal/bfd) exchanged as proto.BFDControl
// messages over the control channels, in both directions. Detection time
// is DetectMult × Interval — milliseconds at the defaults, versus
// MissThreshold × Interval (hundreds of ms) for the heartbeat detector it
// replaces as the primary liveness signal. The heartbeat detector keeps
// running as a coarse fallback; BFD receive traffic feeds its clocks, so
// it stays quiet while BFD is healthy.
type BFDConfig struct {
	// Disable turns BFD off, reverting liveness entirely to the heartbeat
	// detector (the pre-BFD behavior).
	Disable bool
	// Interval is the desired transmit interval (default 2ms).
	Interval time.Duration
	// DetectMult is the detection multiplier (default 3).
	DetectMult int
	// Demand enables demand mode: sessions go quiescent once Up and
	// re-prove liveness with poll sequences every PollInterval instead of
	// periodic transmission. Detection latency becomes poll-bounded, so
	// leave it off when millisecond detection matters more than idle
	// control traffic.
	Demand bool
	// PollInterval is demand mode's probe cadence (default 10×Interval).
	PollInterval time.Duration
}

func (b *BFDConfig) applyDefaults() {
	if b.Interval <= 0 {
		b.Interval = 2 * time.Millisecond
	}
	if b.DetectMult <= 0 {
		b.DetectMult = 3
	}
	if b.PollInterval <= 0 {
		b.PollInterval = 10 * b.Interval
	}
}

// DetectTime is the configured detection timeout (Interval × DetectMult).
func (b BFDConfig) DetectTime() time.Duration {
	return time.Duration(b.DetectMult) * b.Interval
}

// HAConfig configures controller replication. With Replicas ≥ 2 the
// cluster runs that many controller replicas, each owning a WAL journal;
// the leader ships every appended record to live followers, and when the
// leader is killed the most caught-up live follower is elected leader
// after ElectionDelay, raises the fencing epoch (so the dead leader's
// straggling FlowMods are rejected), and the switches' control channels
// fail over to it automatically — no RestoreController call required.
type HAConfig struct {
	// Replicas is the controller replica count (0 or 1 = single
	// controller, the legacy KillController/RestoreController behavior).
	Replicas int
	// Dir roots the replicas' journal directories (default: a temp dir
	// removed on Close).
	Dir string
	// ElectionDelay is how long surviving replicas wait after a leader
	// death before electing (default: the BFD detect time, or the
	// heartbeat detect time when BFD is disabled).
	ElectionDelay time.Duration
}

func (h *HAConfig) applyDefaults(bfd BFDConfig, hb HeartbeatConfig) {
	if h.Replicas < 0 {
		h.Replicas = 0
	}
	if h.ElectionDelay <= 0 {
		if bfd.Disable {
			h.ElectionDelay = time.Duration(hb.MissThreshold) * hb.Interval
		} else {
			h.ElectionDelay = bfd.DetectTime()
		}
	}
}

// OverloadConfig tunes wire mode's overload protection: token buckets that
// shed the tail of a miss storm before it collapses an authority switch or
// the control plane, and the bounded buffer that holds controller-bound
// events across a controller outage.
type OverloadConfig struct {
	// RedirectRate bounds how many cache-miss redirects per second each
	// ingress switch may send toward authority switches (0 = unlimited).
	// Excess packets are shed and counted in Drops.RedirectShed.
	RedirectRate float64
	// RedirectBurst is the redirect bucket's burst capacity (default 32
	// when RedirectRate is set).
	RedirectBurst int
	// CacheInstallRate bounds how many cache installs per second each
	// authority switch may push toward the controller (0 = unlimited).
	// Suppressed installs are counted in CacheInstallsShed; the packets
	// themselves still forward, so shedding costs extra redirects, not
	// reachability.
	CacheInstallRate float64
	// CacheInstallBurst is the install bucket's burst capacity (default 32
	// when CacheInstallRate is set).
	CacheInstallBurst int
	// OutageBuffer bounds the per-switch queue of controller-bound events
	// held while the controller is unreachable (default 256). Overflow is
	// shed oldest-first and counted in OutageDropped.
	OutageBuffer int
}

func (o *OverloadConfig) applyDefaults() {
	if o.RedirectBurst <= 0 {
		o.RedirectBurst = 32
	}
	if o.CacheInstallBurst <= 0 {
		o.CacheInstallBurst = 32
	}
	if o.OutageBuffer <= 0 {
		o.OutageBuffer = 256
	}
}

// RetryPolicy bounds retried control operations: each operation is
// attempted at most MaxAttempts times with exponential backoff between
// attempts, jittered to avoid synchronized retry storms.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per operation, including
	// the first (default 4).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; it doubles each
	// further attempt (default 10ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 500ms).
	MaxDelay time.Duration
	// Jitter is the fraction of each delay randomized away, in [0,1)
	// (default 0.2).
	Jitter float64
}

func (p *RetryPolicy) applyDefaults() {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 10 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 500 * time.Millisecond
	}
	if p.Jitter <= 0 || p.Jitter >= 1 {
		p.Jitter = 0.2
	}
}

// Backoff returns the delay to sleep after failed attempt n (n ≥ 1):
// BaseDelay·2^(n-1), capped at MaxDelay, with up to Jitter of it
// subtracted at random.
func (p RetryPolicy) Backoff(attempt int) time.Duration {
	return p.backoff(attempt, rand.Float64)
}

// backoff is Backoff with an injectable randomness source, for tests.
func (p RetryPolicy) backoff(attempt int, rnd func() float64) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	d := p.MaxDelay
	if shift := uint(attempt - 1); shift < 30 {
		if scaled := p.BaseDelay << shift; scaled < p.MaxDelay {
			d = scaled
		}
	}
	if p.Jitter > 0 {
		d -= time.Duration(float64(d) * p.Jitter * rnd())
	}
	return d
}

// Validate checks the configuration and fills defaulted fields in place
// (queue depth, heartbeat cadence, retry policy). NewCluster calls it; use
// it directly to surface configuration errors before building anything.
func (cfg *ClusterConfig) Validate() error {
	if len(cfg.Switches) == 0 || len(cfg.Authorities) == 0 {
		return fmt.Errorf("wire: need switches and authorities")
	}
	seen := make(map[uint32]bool, len(cfg.Switches))
	for _, id := range cfg.Switches {
		if seen[id] {
			return fmt.Errorf("wire: duplicate switch %d", id)
		}
		seen[id] = true
	}
	for _, id := range cfg.Authorities {
		if !seen[id] {
			return fmt.Errorf("wire: authority %d not a cluster switch", id)
		}
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	cfg.Heartbeat.applyDefaults()
	cfg.BFD.applyDefaults()
	cfg.HA.applyDefaults(cfg.BFD, cfg.Heartbeat)
	cfg.Retry.applyDefaults()
	cfg.Overload.applyDefaults()
	if err := cfg.Fabric.applyDefaults(cfg.QueueDepth); err != nil {
		return err
	}
	if cfg.CacheAdaptInterval <= 0 {
		cfg.CacheAdaptInterval = 250 * time.Millisecond
	}
	cfg.Telemetry.applyDefaults()
	return nil
}
