package difane_test

import (
	"fmt"
	"strings"

	"difane"
)

// ExampleNew shows the minimal DIFANE deployment: a policy, a topology,
// one authority switch, one flow.
func ExampleNew() {
	g := difane.LinearTopology(4, 0.001)
	policy := []difane.Rule{
		{ID: 1, Priority: 10,
			Match:  difane.MatchAll().WithExact(difane.FTPDst, 80),
			Action: difane.Action{Kind: difane.ActForward, Arg: 3}},
		{ID: 2, Priority: 0, Match: difane.MatchAll(),
			Action: difane.Action{Kind: difane.ActDrop}},
	}
	net, err := difane.New(g, []uint32{1}, policy, difane.Config{})
	if err != nil {
		panic(err)
	}
	var k difane.Key
	k[difane.FTPDst] = 80
	net.InjectPacket(0, 0, k, 100, 0)
	net.Run(1)
	fmt.Println("delivered:", net.M.Delivered)
	fmt.Println("redirected via authority:", net.M.Redirects)
	// Output:
	// delivered: 1
	// redirected via authority: 1
}

// ExampleBuildPartitions shows the decision-tree partitioner splitting a
// policy for two authority switches.
func ExampleBuildPartitions() {
	policy := []difane.Rule{
		{ID: 1, Priority: 1, Match: difane.MatchAll().WithPrefix(difane.FIPSrc, 0, 1)},
		{ID: 2, Priority: 1, Match: difane.MatchAll().WithPrefix(difane.FIPSrc, 1<<31, 1)},
	}
	parts := difane.BuildPartitions(policy, difane.PartitionConfig{MaxRulesPerPartition: 1})
	fmt.Println("partitions:", len(parts))
	a, _ := difane.Assign(parts, []uint32{10, 20})
	fmt.Println("primaries:", a.Primary)
	// Output:
	// partitions: 2
	// primaries: [10 20]
}

// ExampleParsePolicy shows the text policy format.
func ExampleParsePolicy() {
	rules, err := difane.ParsePolicy(strings.NewReader(`
# web policy
rule 1 prio 100 ip_proto=tcp tp_dst=80 -> forward(4)
rule 2 prio 0 -> drop
`))
	if err != nil {
		panic(err)
	}
	fmt.Println(len(rules), "rules")
	fmt.Println(rules[0].Action)
	// Output:
	// 2 rules
	// forward(4)
}

// ExampleEvaluate shows single-table reference semantics.
func ExampleEvaluate() {
	rules := []difane.Rule{
		{ID: 1, Priority: 10,
			Match:  difane.MatchAll().WithPrefix(difane.FIPSrc, 0x0A000000, 8),
			Action: difane.Action{Kind: difane.ActDrop}},
		{ID: 2, Priority: 0, Match: difane.MatchAll(),
			Action: difane.Action{Kind: difane.ActForward, Arg: 1}},
	}
	var k difane.Key
	k[difane.FIPSrc] = 0x0A010203 // 10.1.2.3
	r, _ := difane.Evaluate(rules, k)
	fmt.Println("matched rule", r.ID, "->", r.Action)
	// Output:
	// matched rule 1 -> drop
}
