// Command difane-bench regenerates every table and figure of the DIFANE
// evaluation (see DESIGN.md §3 for the experiment index) and prints them
// as text tables/series.
//
// Usage:
//
//	difane-bench [-quick] [-only T1,F1,...] [-seed N]
//
// With -wire it instead runs the reproducible data-plane benchmark suite
// (fixed-seed cache-hit / miss-storm / failover workloads against the
// simulator, the reactive baseline, and both wire-mode fabrics), writes
// the report to -out, and — when -compare names a baseline report — exits
// nonzero on regression past the gate (15% throughput/allocs by default):
//
//	difane-bench -wire [-quick] [-seed N] [-out BENCH_wire.json] [-compare BENCH_wire.baseline.json]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"difane/experiments"
	"difane/internal/perf"
)

type renderer interface{ Render() string }

func main() {
	quick := flag.Bool("quick", false, "run reduced-scale workloads")
	only := flag.String("only", "", "comma-separated experiment IDs to run (default all)")
	seed := flag.Int64("seed", 42, "generator seed")
	wireBench := flag.Bool("wire", false, "run the data-plane benchmark suite instead of the paper figures")
	out := flag.String("out", "BENCH_wire.json", "where -wire writes its JSON report")
	compare := flag.String("compare", "", "baseline report to diff the -wire run against (exit 1 on regression)")
	flag.Parse()

	if *wireBench {
		os.Exit(runWireBench(*quick, *seed, *out, *compare))
	}

	opts := experiments.Bench()
	if *quick {
		opts = experiments.Quick()
	}
	opts.Seed = *seed

	all := []struct {
		id  string
		run func(experiments.Options) renderer
	}{
		{"T1", func(o experiments.Options) renderer { return experiments.TableNetworks(o) }},
		{"F1", func(o experiments.Options) renderer { return experiments.FigFirstPacketDelay(o) }},
		{"F2", func(o experiments.Options) renderer { return experiments.FigThroughput(o) }},
		{"F3", func(o experiments.Options) renderer { return experiments.FigAuthorityScaling(o) }},
		{"F4", func(o experiments.Options) renderer { return experiments.FigPartitionTCAM(o) }},
		{"F5", func(o experiments.Options) renderer { return experiments.FigSplitOverhead(o) }},
		{"F6", func(o experiments.Options) renderer { return experiments.FigCacheMiss(o) }},
		{"F7", func(o experiments.Options) renderer { return experiments.FigStretch(o) }},
		{"F8", func(o experiments.Options) renderer { return experiments.FigFailover(o) }},
		{"F9", func(o experiments.Options) renderer { return experiments.FigPolicyChange(o) }},
		{"F10", func(o experiments.Options) renderer { return experiments.FigCacheTimeout(o) }},
		{"F11", func(o experiments.Options) renderer { return experiments.FigControlLoad(o) }},
		{"F12", func(o experiments.Options) renderer { return experiments.FigLinkLoad(o) }},
		{"A1", func(o experiments.Options) renderer { return experiments.AblationCacheStrategy(o) }},
		{"A2", func(o experiments.Options) renderer { return experiments.AblationPartitioner(o) }},
		{"A3", func(o experiments.Options) renderer { return experiments.AblationEviction(o) }},
		{"A4", func(o experiments.Options) renderer { return experiments.AblationRebalance(o) }},
		{"W3", func(o experiments.Options) renderer { return experiments.WireRobustness(o) }},
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	ran := 0
	for _, exp := range all {
		if len(want) > 0 && !want[exp.id] {
			continue
		}
		start := time.Now()
		result := exp.run(opts)
		fmt.Println(result.Render())
		fmt.Printf("(%s completed in %v)\n\n", exp.id, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiments matched -only=%q\n", *only)
		os.Exit(2)
	}
}

// runWireBench executes the fixed-seed data-plane suite, writes the JSON
// report, and gates against a baseline when one is given.
func runWireBench(quick bool, seed int64, out, compare string) int {
	cfg := perf.Full()
	if quick {
		cfg = perf.Quick()
	}
	cfg.Seed = seed
	start := time.Now()
	rep, err := perf.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Print(rep.Render())
	fmt.Printf("(wire bench completed in %v)\n", time.Since(start).Round(time.Millisecond))
	if compare != "" {
		base, err := perf.LoadReport(compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		regs := perf.Compare(base, rep, perf.DefaultTolerance())
		// Confirm-on-failure: wall-clock benchmarks on shared hardware see
		// transient contention bursts; a real regression survives fresh
		// measurements, a burst does not.
		for attempt := 0; len(regs) > 0 && attempt < 2; attempt++ {
			fmt.Printf("possible regression; re-measuring to confirm (attempt %d/3)\n", attempt+2)
			again, err := perf.Run(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			rep = perf.MergeBest(rep, again)
			regs = perf.Compare(base, rep, perf.DefaultTolerance())
		}
		if len(regs) > 0 {
			writeReport(rep, out)
			fmt.Fprintf(os.Stderr, "PERF REGRESSION vs %s:\n", compare)
			for _, r := range regs {
				fmt.Fprintf(os.Stderr, "  %s\n", r)
			}
			return 1
		}
		fmt.Printf("no regression vs %s\n", compare)
	}
	return writeReport(rep, out)
}

func writeReport(rep *perf.Report, out string) int {
	if out == "" {
		return 0
	}
	if err := rep.WriteFile(out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("report written to %s\n", out)
	return 0
}
