// Command difanectl is a small interactive driver for a DIFANE
// deployment: load a canonical network, inject flows, inspect switch
// tables and measurements. The -mode flag picks the backend — the
// discrete-event simulator (default), the reactive baseline, or the
// wire-mode prototype — all driven through the same Deployment interface.
//
// Usage:
//
//	difanectl [-mode sim|baseline|wire] [-network campus|vpn|iptv|isp]
//	          [-authorities K] [-seed N]
//	difanectl check [-seed N | -count N] [-steps N] [-mode ...]
//	difanectl serve [-telemetry addr] [-switches N] [-replicas N] [-trace] [-duration D]
//	difanectl metrics -addr host:port [-json]
//	difanectl ha -addr host:port [-json]
//	difanectl trace -addr host:port [-follow] [-story] [filters...]
//	difanectl journey -addr host:port [-flow H | -trace ID] [-slowest] [-dropped] [-limit N]
//
// serve boots a demo wire cluster with the telemetry HTTP endpoint bound
// and traffic flowing; metrics scrapes its /metrics (Prometheus text) or
// /vars (JSON); ha renders /ha — the controller replica set, leader and
// fencing epoch, and every switch's BFD session; trace dumps the flight
// recorder, follows it live, or — with -story and a flow filter —
// reconstructs a single flow's hop-by-hop journey through the cluster;
// journey renders /journeys — sampled packets' end-to-end stories joined
// across nodes on trace ID, answering "why was this packet slow/dropped".
//
// Commands (stdin, one per line; (sim) marks simulator-only commands,
// (wire) wire-only):
//
//	inject <ingress> <ip_src> <ip_dst> <tp_dst>   inject one flow (3 packets)
//	trace <flows> [file]                          inject a Zipf trace (optionally saving it)
//	replay <file>                                 replay a saved trace
//	stats                                         print run measurements
//	tables <switch>                               dump a switch's tables (sim)
//	counters                                      aggregated per-rule counters (sim)
//	partitions                                    print the rule partitions (sim)
//	fail <switch>                                 fail an authority switch (sim)
//	kill <switch>                                 crash a switch (wire)
//	alive                                         failure detector verdicts (wire)
//	ha                                            replica set, leader, BFD sessions (wire)
//	snapshot <dir>                                checkpoint controller state to a journal (sim)
//	restore <dir>                                 recover the controller from a journal (sim)
//	epoch                                         print the controller's fencing epoch
//	load <file>                                   replace the policy from a file (sim)
//	save <file>                                   write the policy to a file (sim)
//	compact                                       drop shadowed rules (sim)
//	help                                          this text
//	quit
//
// A policy file (see -policy) uses the text grammar of ParsePolicy:
//
//	rule 1 prio 100 ip_src=10.0.0.0/8 tp_dst=80 -> forward(4)
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"difane"
	"difane/internal/metrics"
)

// session holds the active backend; net/ctl are nil outside sim mode and
// cluster is nil outside wire mode.
type session struct {
	mode    string
	dep     difane.Deployment
	net     *difane.Network
	ctl     *difane.Controller
	cluster *difane.Cluster
	spec    *difane.Spec
	seed    int64
	now     float64
}

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "check":
			os.Exit(runCheck(os.Args[2:]))
		case "trace":
			os.Exit(runTrace(os.Args[2:]))
		case "journey":
			os.Exit(runJourney(os.Args[2:]))
		case "metrics":
			os.Exit(runMetrics(os.Args[2:]))
		case "ha":
			os.Exit(runHA(os.Args[2:]))
		case "serve":
			os.Exit(runServe(os.Args[2:]))
		}
	}
	mode := flag.String("mode", "sim", "backend: sim|baseline|wire")
	network := flag.String("network", "campus", "canonical network: campus|vpn|iptv|isp")
	k := flag.Int("authorities", 2, "number of authority switches")
	seed := flag.Int64("seed", 1, "generator seed")
	policyFile := flag.String("policy", "", "replace the canonical policy with rules from this file")
	flag.Parse()

	var spec *difane.Spec
	switch *network {
	case "campus":
		spec = difane.CampusNetwork(*seed, difane.ScaleTest)
	case "vpn":
		spec = difane.VPNNetwork(*seed, difane.ScaleTest)
	case "iptv":
		spec = difane.IPTVNetwork(*seed, difane.ScaleTest)
	case "isp":
		spec = difane.ISPNetwork(*seed, difane.ScaleTest)
	default:
		fmt.Fprintf(os.Stderr, "unknown network %q\n", *network)
		os.Exit(2)
	}

	if *policyFile != "" {
		f, err := os.Open(*policyFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rules, err := difane.ParsePolicy(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		spec.Policy = rules
	}

	auths := difane.PlaceAuthorities(spec.Graph, *k)
	s := &session{mode: *mode, spec: spec, seed: *seed}
	switch *mode {
	case "sim":
		net, err := difane.New(spec.Graph, auths, spec.Policy, difane.Config{})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		s.net, s.ctl, s.dep = net, difane.NewController(net), net
		fmt.Printf("loaded %s (sim): %d switches, %d rules, %d partitions, authorities %v\n",
			spec.Name, spec.Graph.NumNodes(), len(spec.Policy),
			len(net.Assignment.Partitions), auths)
	case "baseline":
		bn, err := difane.NewBaseline(spec.Graph, spec.Policy, difane.BaselineConfig{
			ControllerNode: auths[0],
			ControllerRate: 50000,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		s.dep = bn
		fmt.Printf("loaded %s (baseline): %d switches, %d rules, controller at %d\n",
			spec.Name, spec.Graph.NumNodes(), len(spec.Policy), auths[0])
	case "wire":
		var ids []uint32
		for _, id := range spec.Graph.Nodes() {
			ids = append(ids, uint32(id))
		}
		wd, err := difane.NewWireDeployment(difane.ClusterConfig{
			Switches:    ids,
			Authorities: auths,
			Policy:      spec.Policy,
			// Traces are injected as fast as possible in wire mode; deep
			// queues absorb the burst, and coarse detectors (heartbeat
			// and BFD alike) keep the failure detectors from
			// false-positives while the burst saturates the host.
			QueueDepth: 16384,
			Heartbeat:  difane.HeartbeatConfig{Interval: 200 * time.Millisecond, MissThreshold: 10},
			BFD:        difane.BFDConfig{Interval: 200 * time.Millisecond, DetectMult: 10},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		s.dep, s.cluster = wd, wd.C
		defer wd.Close()
		fmt.Printf("loaded %s (wire): %d switches, %d rules, %d partitions, authorities %v\n",
			spec.Name, len(ids), len(spec.Policy),
			len(wd.C.Assignment().Partitions), auths)
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
	fmt.Println(`type "help" for commands`)

	sc := bufio.NewScanner(os.Stdin)
	for fmt.Print("> "); sc.Scan(); fmt.Print("> ") {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		if fields[0] == "quit" || fields[0] == "exit" {
			return
		}
		s.command(fields)
	}
}

func (s *session) command(fields []string) {
	switch fields[0] {
	case "help":
		fmt.Println("inject <ingress> <ip_src> <ip_dst> <tp_dst> | trace <flows> [file] | replay <file> | stats | tables <switch> | counters | partitions | fail <switch> | kill <switch> | alive | ha | snapshot <dir> | restore <dir> | epoch | load <file> | save <file> | compact | quit")
	case "inject":
		if len(fields) != 5 {
			fmt.Println("usage: inject <ingress> <ip_src> <ip_dst> <tp_dst>")
			return
		}
		args := make([]uint64, 4)
		for i, f := range fields[1:] {
			v, err := strconv.ParseUint(f, 0, 64)
			if err != nil {
				fmt.Printf("bad argument %q\n", f)
				return
			}
			args[i] = v
		}
		var key difane.Key
		key[difane.FIPSrc] = args[1]
		key[difane.FIPDst] = args[2]
		key[difane.FTPDst] = args[3]
		for p := 0; p < 3; p++ {
			s.dep.InjectPacket(s.now+float64(p)*0.01, uint32(args[0]), key, 800, uint64(p))
		}
		s.now += 1
		s.dep.Run(s.now)
		m := s.dep.Measurements()
		fmt.Printf("t=%.2fs delivered=%d drops=%+v\n", s.now, m.Delivered, m.Drops)
	case "trace":
		n := 1000
		if len(fields) > 1 {
			if v, err := strconv.Atoi(fields[1]); err == nil {
				n = v
			}
		}
		flows := difane.GenerateTraffic(s.spec, difane.TrafficConfig{
			Flows: n, Rate: 1000, Seed: s.seed + int64(s.now),
		})
		if len(fields) > 2 {
			f, err := os.Create(fields[2])
			if err != nil {
				fmt.Println(err)
				return
			}
			err = difane.WriteTrace(f, flows)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Println(err)
				return
			}
			fmt.Printf("saved trace to %s\n", fields[2])
		}
		s.runFlows(flows)
	case "replay":
		if len(fields) != 2 {
			fmt.Println("usage: replay <file>")
			return
		}
		f, err := os.Open(fields[1])
		if err != nil {
			fmt.Println(err)
			return
		}
		flows, err := difane.ReadTrace(f)
		f.Close()
		if err != nil {
			fmt.Println(err)
			return
		}
		if len(flows) == 0 {
			fmt.Println("empty trace")
			return
		}
		s.runFlows(flows)
	case "stats":
		m := s.dep.Measurements()
		fmt.Printf("delivered=%d redirects=%d setups=%d drops=%+v\n",
			m.Delivered, m.Redirects, m.SetupsCompleted, m.Drops)
		fmt.Printf("first-packet delay: p50=%s p99=%s (n=%d)\n",
			metrics.FormatDuration(m.FirstPacketDelay.Percentile(50)),
			metrics.FormatDuration(m.FirstPacketDelay.Percentile(99)),
			m.FirstPacketDelay.N())
		if s.net != nil {
			fmt.Printf("stretch: mean=%.2f (n=%d), cache entries=%d\n",
				m.Stretch.Mean(), m.Stretch.N(), s.net.CacheEntries())
		}
		if s.cluster != nil {
			fmt.Printf("resilience: deaths=%d failovers(local)=%d promoted=%d reconnects=%d\n",
				m.AuthorityDeaths, m.FailoversLocal, m.FailoversPromoted, m.ControlReconnects)
		}
	case "tables":
		if s.net == nil {
			fmt.Println("tables is sim-only")
			return
		}
		if len(fields) != 2 {
			fmt.Println("usage: tables <switch>")
			return
		}
		id, err := strconv.ParseUint(fields[1], 0, 32)
		if err != nil {
			fmt.Println("bad switch id")
			return
		}
		sw, ok := s.net.Switches[uint32(id)]
		if !ok {
			fmt.Println("no such switch")
			return
		}
		fmt.Print(sw)
	case "partitions":
		if s.net == nil {
			fmt.Println("partitions is sim-only")
			return
		}
		for i, p := range s.net.Assignment.Partitions {
			fmt.Printf("partition %d: %d rules, replicas %v, region %s\n",
				i, len(p.Rules), s.net.Assignment.ReplicasFor(i), p.Region)
		}
	case "counters":
		if s.net == nil {
			fmt.Println("counters is sim-only")
			return
		}
		for _, rc := range s.net.PolicyCounters() {
			fmt.Printf("rule %d: %d packets, %d bytes\n", rc.RuleID, rc.Packets, rc.Bytes)
		}
	case "load":
		if s.net == nil {
			fmt.Println("load is sim-only")
			return
		}
		if len(fields) != 2 {
			fmt.Println("usage: load <file>")
			return
		}
		f, err := os.Open(fields[1])
		if err != nil {
			fmt.Println(err)
			return
		}
		rules, err := difane.ParsePolicy(f)
		f.Close()
		if err != nil {
			fmt.Println(err)
			return
		}
		at, err := s.ctl.UpdatePolicy(rules)
		if err != nil {
			fmt.Println(err)
			return
		}
		s.now = at + 0.01
		s.net.Run(s.now)
		fmt.Printf("loaded %d rules; converged at t=%.2fs\n", len(rules), at)
	case "save":
		if s.net == nil {
			fmt.Println("save is sim-only")
			return
		}
		if len(fields) != 2 {
			fmt.Println("usage: save <file>")
			return
		}
		f, err := os.Create(fields[1])
		if err != nil {
			fmt.Println(err)
			return
		}
		err = difane.WritePolicy(f, s.net.Policy)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Printf("wrote %d rules to %s\n", len(s.net.Policy), fields[1])
	case "compact":
		if s.net == nil {
			fmt.Println("compact is sim-only")
			return
		}
		kept, removed := difane.CompactPolicy(s.net.Policy)
		if len(removed) == 0 {
			fmt.Println("no shadowed rules")
			return
		}
		at, err := s.ctl.UpdatePolicy(kept)
		if err != nil {
			fmt.Println(err)
			return
		}
		s.now = at + 0.01
		s.net.Run(s.now)
		fmt.Printf("removed %d shadowed rules: %v\n", len(removed), removed)
	case "fail":
		if s.net == nil {
			fmt.Println("fail is sim-only (use kill in wire mode)")
			return
		}
		if len(fields) != 2 {
			fmt.Println("usage: fail <switch>")
			return
		}
		id, err := strconv.ParseUint(fields[1], 0, 32)
		if err != nil {
			fmt.Println("bad switch id")
			return
		}
		s.net.FailAuthority(uint32(id))
		at := s.ctl.OnAuthorityFailure(uint32(id))
		s.now = at + 0.01
		s.net.Run(s.now)
		fmt.Printf("failed switch %d; failover converged at t=%.2fs\n", id, at)
	case "kill":
		if s.cluster == nil {
			fmt.Println("kill is wire-only (use fail in sim mode)")
			return
		}
		if len(fields) != 2 {
			fmt.Println("usage: kill <switch>")
			return
		}
		id, err := strconv.ParseUint(fields[1], 0, 32)
		if err != nil {
			fmt.Println("bad switch id")
			return
		}
		if !s.cluster.KillSwitch(uint32(id)) {
			fmt.Println("no such switch")
			return
		}
		fmt.Printf("killed switch %d; failure detector will promote backups\n", id)
	case "snapshot":
		if s.ctl == nil {
			fmt.Println("snapshot is sim-only")
			return
		}
		if len(fields) != 2 {
			fmt.Println("usage: snapshot <dir>")
			return
		}
		if s.ctl.Journal() == nil {
			if err := s.ctl.AttachJournal(fields[1]); err != nil {
				fmt.Println(err)
				return
			}
		}
		if err := s.ctl.Checkpoint(); err != nil {
			fmt.Println(err)
			return
		}
		fmt.Printf("checkpointed epoch %d, policy version %d to %s\n",
			s.ctl.Epoch, s.ctl.PolicyVersion, s.ctl.Journal().Dir())
	case "restore":
		if s.net == nil {
			fmt.Println("restore is sim-only")
			return
		}
		if len(fields) != 2 {
			fmt.Println("usage: restore <dir>")
			return
		}
		if s.ctl != nil && s.ctl.Journal() != nil {
			s.ctl.Journal().Close()
		}
		ctl, rep, err := difane.NewControllerFromJournal(s.net, fields[1])
		if err != nil {
			fmt.Println(err)
			return
		}
		s.ctl = ctl
		if !rep.HadState {
			fmt.Printf("no durable state in %s; controller starts fresh at epoch %d\n",
				fields[1], ctl.Epoch)
			return
		}
		fmt.Printf("recovered epoch %d, policy version %d; reconciliation installed %d, deleted %d rules\n",
			ctl.Epoch, ctl.PolicyVersion, rep.Installed, rep.Deleted)
	case "epoch":
		switch {
		case s.ctl != nil:
			journaled := "no journal"
			if j := s.ctl.Journal(); j != nil {
				journaled = "journal at " + j.Dir()
			}
			fmt.Printf("epoch %d, policy version %d (%s)\n",
				s.ctl.Epoch, s.ctl.PolicyVersion, journaled)
		case s.cluster != nil:
			fmt.Printf("epoch %d, controller down=%v\n",
				s.cluster.Epoch(), s.cluster.ControllerDown())
		default:
			fmt.Println("epoch needs a controller (sim or wire mode)")
		}
	case "alive":
		if s.cluster == nil {
			fmt.Println("alive is wire-only")
			return
		}
		for _, ss := range s.cluster.Status().Switches {
			fmt.Printf("switch %d: alive=%v killed=%v queue=%d cache=%d\n",
				ss.ID, ss.Alive, ss.Killed, ss.QueueDepth, ss.CacheEntries)
		}
	case "ha":
		if s.cluster == nil {
			fmt.Println("ha is wire-only")
			return
		}
		printHA(s.cluster.HAStatus())
	default:
		fmt.Printf("unknown command %q (try help)\n", fields[0])
	}
}

// runFlows injects a trace starting at the current time and runs the
// deployment past its end.
func (s *session) runFlows(flows []difane.Flow) {
	last := s.now
	for _, f := range flows {
		for p := 0; p < f.Packets; p++ {
			at := s.now + f.Start + float64(p)*f.Gap
			s.dep.InjectPacket(at, f.Ingress, f.Key, f.Size, uint64(p))
			if at > last {
				last = at
			}
		}
	}
	s.now = last + 5
	s.dep.Run(s.now)
	m := s.dep.Measurements()
	fmt.Printf("t=%.2fs delivered=%d redirects=%d drops=%+v\n",
		s.now, m.Delivered, m.Redirects, m.Drops)
}

// runCheck is the `difanectl check` subcommand: generate seeded scenarios,
// replay them through the selected deployments, and diff every packet
// verdict against the reference oracle. A failing seed is shrunk to a
// minimal repro before printing. Exits 1 on any failure.
func runCheck(args []string) int {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	seed := fs.Int64("seed", -1, "check a single seed (default: sweep 1..count)")
	count := fs.Int("count", 16, "number of seeds to sweep when -seed is unset")
	steps := fs.Int("steps", 16, "packet steps per scenario")
	mode := fs.String("mode", "all", "deployments to check: sim|baseline|wire|all")
	_ = fs.Parse(args)

	opt := difane.CheckOptions{}
	if *mode != "all" {
		opt.Modes = []string{*mode}
	}
	cfg := difane.ScenarioConfig{Packets: *steps, Faults: true, Updates: true}
	seeds := make([]int64, 0, *count)
	if *seed >= 0 {
		seeds = append(seeds, *seed)
	} else {
		for s := int64(1); s <= int64(*count); s++ {
			seeds = append(seeds, s)
		}
	}
	failed := 0
	for _, s := range seeds {
		res := difane.CheckSeed(s, cfg, opt)
		if !res.Failed() {
			fmt.Printf("seed %d: ok (%d packet checks)\n", s, res.PacketsChecked)
			continue
		}
		failed++
		fmt.Print(res.Report())
		shrunk := difane.ShrinkScenario(res.Scenario, difane.CheckOptions{
			Modes: []string{res.Failures[0].Mode}, MutatePolicy: opt.MutatePolicy})
		small := difane.CheckScenario(shrunk, difane.CheckOptions{
			Modes: []string{res.Failures[0].Mode}, MutatePolicy: opt.MutatePolicy})
		if small.Failed() {
			fmt.Printf("shrunk repro (%d steps, %d rules):\n%s", len(shrunk.Steps), len(shrunk.Policy), small.Report())
		}
	}
	if failed > 0 {
		fmt.Printf("%d/%d seeds failed\n", failed, len(seeds))
		return 1
	}
	fmt.Printf("all %d seeds ok\n", len(seeds))
	return 0
}
