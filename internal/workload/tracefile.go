package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"difane/internal/flowspace"
	"difane/internal/packet"
)

// Trace files are tab-separated, one flow per line:
//
//	start	ingress	ip_src	ip_dst	ip_proto	tp_src	tp_dst	packets	gap	size
//
// with a "#"-prefixed header. They let generated traces be archived and
// replayed bit-identically, and external traces be imported.

// WriteTrace serializes flows to w.
func WriteTrace(w io.Writer, flows []Flow) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# start\tingress\tip_src\tip_dst\tip_proto\ttp_src\ttp_dst\tpackets\tgap\tsize")
	for _, f := range flows {
		// Full float precision so replays are bit-identical.
		fmt.Fprintf(bw, "%s\t%d\t%s\t%s\t%d\t%d\t%d\t%d\t%s\t%d\n",
			strconv.FormatFloat(f.Start, 'g', -1, 64), f.Ingress,
			packet.IPString(uint32(f.Key[flowspace.FIPSrc])),
			packet.IPString(uint32(f.Key[flowspace.FIPDst])),
			f.Key[flowspace.FIPProto],
			f.Key[flowspace.FTPSrc], f.Key[flowspace.FTPDst],
			f.Packets, strconv.FormatFloat(f.Gap, 'g', -1, 64), f.Size)
	}
	return bw.Flush()
}

// ReadTrace parses a trace written by WriteTrace. Fields beyond the five
// header-tuple columns in the key (MACs, VLAN, in_port) are zero.
func ReadTrace(r io.Reader) ([]Flow, error) {
	var flows []Flow
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		cols := strings.Split(line, "\t")
		if len(cols) != 10 {
			return nil, fmt.Errorf("trace line %d: %d columns, want 10", lineNo, len(cols))
		}
		var f Flow
		var err error
		if f.Start, err = strconv.ParseFloat(cols[0], 64); err != nil {
			return nil, fmt.Errorf("trace line %d: start: %w", lineNo, err)
		}
		ingress, err := strconv.ParseUint(cols[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("trace line %d: ingress: %w", lineNo, err)
		}
		f.Ingress = uint32(ingress)
		src, err := parseIP(cols[2])
		if err != nil {
			return nil, fmt.Errorf("trace line %d: ip_src: %w", lineNo, err)
		}
		dst, err := parseIP(cols[3])
		if err != nil {
			return nil, fmt.Errorf("trace line %d: ip_dst: %w", lineNo, err)
		}
		proto, err := strconv.ParseUint(cols[4], 10, 8)
		if err != nil {
			return nil, fmt.Errorf("trace line %d: ip_proto: %w", lineNo, err)
		}
		sport, err := strconv.ParseUint(cols[5], 10, 16)
		if err != nil {
			return nil, fmt.Errorf("trace line %d: tp_src: %w", lineNo, err)
		}
		dport, err := strconv.ParseUint(cols[6], 10, 16)
		if err != nil {
			return nil, fmt.Errorf("trace line %d: tp_dst: %w", lineNo, err)
		}
		f.Key[flowspace.FIPSrc] = uint64(src)
		f.Key[flowspace.FIPDst] = uint64(dst)
		f.Key[flowspace.FIPProto] = proto
		f.Key[flowspace.FTPSrc] = sport
		f.Key[flowspace.FTPDst] = dport
		if f.Packets, err = strconv.Atoi(cols[7]); err != nil {
			return nil, fmt.Errorf("trace line %d: packets: %w", lineNo, err)
		}
		if f.Gap, err = strconv.ParseFloat(cols[8], 64); err != nil {
			return nil, fmt.Errorf("trace line %d: gap: %w", lineNo, err)
		}
		if f.Size, err = strconv.Atoi(cols[9]); err != nil {
			return nil, fmt.Errorf("trace line %d: size: %w", lineNo, err)
		}
		flows = append(flows, f)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return flows, nil
}

func parseIP(s string) (uint32, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("bad address %q", s)
	}
	var addr uint32
	for _, p := range parts {
		v, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("bad octet %q", p)
		}
		addr = addr<<8 | uint32(v)
	}
	return addr, nil
}
