package core

import (
	"difane/internal/metrics"
	"difane/internal/telemetry"
)

// This file bridges core.Measurements onto the telemetry registry, giving
// the simulated backends the same metric schema wire mode exports: the
// names below match wire's registry exactly, so a dashboard built against
// one backend reads the others unchanged.

// RegisterMeasurements registers the shared measurement schema on reg,
// collecting from snap at every scrape. snap must return the live
// Measurements; the distributions are internally synchronized, but the
// plain counters are written without atomics by the simulators, so scrape
// between Run calls (or from the driving goroutine) when the source is a
// discrete-event backend.
func RegisterMeasurements(reg *telemetry.Registry, snap func() *Measurements) {
	counter := func(name, help string, fn func(*Measurements) uint64) {
		reg.RegisterFunc(name, help, telemetry.TypeCounter, func() float64 {
			return float64(fn(snap()))
		})
	}
	summary := func(name, help string, sel func(*Measurements) *metrics.Dist) {
		reg.RegisterSummary(name, help, func() telemetry.SummaryView {
			return telemetry.DistSummary(sel(snap()))
		})
	}

	counter("difane_delivered_total", "Packets delivered to their egress.",
		func(m *Measurements) uint64 { return m.Delivered })
	counter("difane_redirects_total", "Cache misses redirected toward an authority switch.",
		func(m *Measurements) uint64 { return m.Redirects })
	counter("difane_setups_completed_total", "Flow setups resolved at an authority.",
		func(m *Measurements) uint64 { return m.SetupsCompleted })
	counter("difane_dropped_total", "Packets lost (queues, holes, unreachable, shed).",
		func(m *Measurements) uint64 {
			d := snap().Drops
			return d.Policy + d.Hole + d.AuthorityQueue + d.RedirectShed + d.Unreachable
		})

	reg.Register("difane_drops_total", "Terminal packet losses by kind.", telemetry.TypeCounter,
		func() []telemetry.Point {
			d := snap().Drops
			kind := func(k string, v uint64) telemetry.Point {
				return telemetry.Point{
					Labels: []telemetry.Label{{Key: "kind", Value: k}},
					Value:  float64(v),
				}
			}
			return []telemetry.Point{
				kind("policy", d.Policy),
				kind("hole", d.Hole),
				kind("queue", d.AuthorityQueue),
				kind("unreachable", d.Unreachable),
				kind("redirect-shed", d.RedirectShed),
			}
		})

	counter("difane_authority_deaths_total", "Switches the failure detector declared dead.",
		func(m *Measurements) uint64 { return m.AuthorityDeaths })
	counter("difane_failovers_local_total", "Ingress-local partition-rule repoints onto a backup authority.",
		func(m *Measurements) uint64 { return m.FailoversLocal })
	counter("difane_failovers_promoted_total", "Partition rules withdrawn by controller-driven promotion.",
		func(m *Measurements) uint64 { return m.FailoversPromoted })
	counter("difane_control_reconnects_total", "Control connections re-established.",
		func(m *Measurements) uint64 { return m.ControlReconnects })
	counter("difane_controller_outages_total", "Controller losses ridden out.",
		func(m *Measurements) uint64 { return m.ControllerOutages })
	counter("difane_outage_buffered_total", "Controller-bound events parked during outages.",
		func(m *Measurements) uint64 { return m.OutageBuffered })
	counter("difane_outage_drained_total", "Parked events replayed after outages.",
		func(m *Measurements) uint64 { return m.OutageDrained })
	counter("difane_outage_dropped_total", "Parked events shed on outage-buffer overflow.",
		func(m *Measurements) uint64 { return m.OutageDropped })
	counter("difane_stale_installs_rejected_total", "FlowMods refused by epoch fencing.",
		func(m *Measurements) uint64 { return m.StaleInstallsRejected })
	counter("difane_cache_installs_shed_total", "Cache installs suppressed by the install token bucket.",
		func(m *Measurements) uint64 { return m.CacheInstallsShed })
	counter("difane_policy_rule_installs_total", "Authority/partition rules installed by policy churn.",
		func(m *Measurements) uint64 { return m.PolicyRuleInstalls })
	counter("difane_policy_rule_deletes_total", "Authority/partition rules removed by policy churn.",
		func(m *Measurements) uint64 { return m.PolicyRuleDeletes })
	counter("difane_leader_elections_total", "Controller leader elections completed.",
		func(m *Measurements) uint64 { return m.LeaderElections })

	summary("difane_first_packet_delay_seconds",
		"Delivery latency of flow-setup packets (via an authority).",
		func(m *Measurements) *metrics.Dist { return &m.FirstPacketDelay })
	summary("difane_later_packet_delay_seconds",
		"Delivery latency of cache-hit packets.",
		func(m *Measurements) *metrics.Dist { return &m.LaterPacketDelay })
	summary("difane_stretch_ratio",
		"Path stretch of packets that took the authority detour.",
		func(m *Measurements) *metrics.Dist { return &m.Stretch })
	summary("difane_failover_detection_seconds",
		"Fault-injection to death-verdict detection latency.",
		func(m *Measurements) *metrics.Dist { return &m.FailoverDetection })
	summary("difane_leader_election_seconds",
		"Leader-kill to new-leader-seated election duration.",
		func(m *Measurements) *metrics.Dist { return &m.LeaderElection })
}

// Telemetry returns one scrape of the network's metric registry, including
// the flight recorder's trace accounting. The registry (and the health
// watchdog that scrapes it) is built on first call and collects from the
// live Measurements on every scrape.
func (n *Network) Telemetry() *telemetry.Snapshot {
	n.telOnce.Do(func() {
		reg := telemetry.NewRegistry()
		RegisterMeasurements(reg, func() *Measurements { return &n.M })
		reg.RegisterFunc("difane_cache_entries",
			"Installed cache rules across all switches.", telemetry.TypeGauge,
			func() float64 { return float64(n.CacheEntries()) })
		reg.RegisterFunc("difane_switches",
			"Switches in the simulated topology.", telemetry.TypeGauge,
			func() float64 { return float64(len(n.Switches)) })
		if n.cachePol != nil {
			n.cachePol.RegisterMetrics(reg)
		}
		reg.RegisterFunc("difane_trace_enabled",
			"1 while the flight recorder accepts events.", telemetry.TypeGauge,
			func() float64 {
				if n.rec.Enabled() {
					return 1
				}
				return 0
			})
		reg.RegisterFunc("difane_trace_writes_total",
			"Events ever published to the flight recorder.", telemetry.TypeCounter,
			func() float64 { return float64(n.rec.Stats().Writes) })
		reg.RegisterFunc("difane_trace_dropped_total",
			"Flight-recorder events lost to ring wraparound.", telemetry.TypeCounter,
			func() float64 { return float64(n.rec.Stats().Dropped) })
		reg.RegisterFunc("difane_trace_sample",
			"Per-packet trace sampling rate (1-in-N, 0 = off).", telemetry.TypeGauge,
			func() float64 { return float64(n.sampler.Rate()) })
		n.conv.RegisterMetrics(reg)
		n.wd = telemetry.NewWatchdog(reg, telemetry.DefaultHealthRules(n.cfg.Health))
		n.wd.RegisterMetrics(reg)
		n.telReg = reg
	})
	return &telemetry.Snapshot{Metrics: n.telReg.Snapshot(), Trace: n.rec.Stats()}
}

// Registry exposes the network's metric registry (built on first use), so
// callers can mount it on their own telemetry server.
func (n *Network) Registry() *telemetry.Registry {
	n.Telemetry()
	return n.telReg
}
